/**
 * @file
 * Agent designer: pick the most cost-effective agent configuration
 * under a latency budget.
 *
 * §V of the paper argues deployments should "maximize accuracy per
 * unit of compute" instead of chasing raw accuracy. This example
 * sweeps a design space (workflow x iteration budget x few-shot count
 * x tree width), computes each point's accuracy and cost, and reports
 * the Pareto frontier plus the best point under a user latency budget.
 *
 *   ./examples/agent_designer
 */

#include <cstdio>
#include <vector>

#include "core/probe.hh"
#include "core/table.hh"
#include "stats/pareto.hh"

namespace
{

using namespace agentsim;

struct Candidate
{
    std::string label;
    agents::AgentKind agent;
    agents::AgentConfig config;
    double accuracy = 0.0;
    double latency = 0.0;
    double energyWh = 0.0;
};

} // namespace

int
main()
{
    using namespace agentsim;

    const double latency_budget = 30.0; // seconds
    const auto bench = workload::Benchmark::HotpotQA;

    std::vector<Candidate> candidates;
    {
        agents::AgentConfig c;
        candidates.push_back({"CoT", agents::AgentKind::CoT, c});
    }
    for (int iters : {3, 7, 10}) {
        agents::AgentConfig c;
        c.maxIterations = iters;
        candidates.push_back({"ReAct it=" + std::to_string(iters),
                              agents::AgentKind::ReAct, c});
    }
    for (int refl : {1, 4}) {
        agents::AgentConfig c;
        c.maxReflections = refl;
        candidates.push_back({"Reflexion r=" + std::to_string(refl),
                              agents::AgentKind::Reflexion, c});
    }
    for (int kids : {2, 5, 10}) {
        agents::AgentConfig c;
        c.latsChildren = kids;
        candidates.push_back({"LATS c=" + std::to_string(kids),
                              agents::AgentKind::Lats, c});
    }
    {
        agents::AgentConfig c;
        candidates.push_back(
            {"LLMCompiler", agents::AgentKind::LlmCompiler, c});
    }

    std::vector<stats::DesignPoint> points;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        auto &cand = candidates[i];
        core::ProbeConfig cfg;
        cfg.agent = cand.agent;
        cfg.bench = bench;
        cfg.agentConfig = cand.config;
        cfg.engineConfig = core::enginePreset8b();
        cfg.numTasks = 40;
        cfg.seed = 11;
        const auto r = core::runProbe(cfg);
        cand.accuracy = r.accuracy();
        cand.latency = r.e2eSeconds().mean();
        cand.energyWh = r.meanEnergyWh();
        points.push_back({cand.latency, cand.accuracy, i});
    }

    const auto frontier = stats::paretoFrontier(points);
    std::vector<bool> on_frontier(candidates.size(), false);
    for (const auto &p : frontier)
        on_frontier[p.tag] = true;

    core::Table t("Design space on HotpotQA (40 tasks each)");
    t.header({"Design", "Accuracy", "Latency", "Energy (Wh)",
              "Acc/latency", "Pareto", "Fits budget"});
    const Candidate *best = nullptr;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const auto &cand = candidates[i];
        const bool fits = cand.latency <= latency_budget;
        if (fits && (best == nullptr ||
                     cand.accuracy > best->accuracy)) {
            best = &cand;
        }
        t.row({cand.label, core::fmtPercent(cand.accuracy),
               core::fmtSeconds(cand.latency),
               core::fmtDouble(cand.energyWh, 2),
               core::fmtDouble(cand.accuracy / cand.latency, 4),
               on_frontier[i] ? "*" : "", fits ? "yes" : "no"});
    }
    t.print();

    if (best != nullptr) {
        std::printf("\nRecommended under a %.0f s latency budget: %s "
                    "(%.0f%% accuracy at %.1f s, %.2f Wh/query).\n",
                    latency_budget, best->label.c_str(),
                    100.0 * best->accuracy, best->latency,
                    best->energyWh);
    }
    return 0;
}
