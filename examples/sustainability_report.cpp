/**
 * @file
 * Sustainability what-if: the infrastructure cost of switching a
 * chatbot fleet to agentic serving (paper §VI).
 *
 * Measures per-query energy for a single-turn chatbot and for two
 * agent workflows (sequential Reflexion, parallel LATS) on both
 * Llama-3.1-8B and 70B backends, then projects datacenter power at
 * user-selectable traffic, printing comparisons against real-world
 * yardsticks (Seattle's daily consumption, the U.S. grid).
 *
 *   ./examples/sustainability_report
 */

#include <cstdio>

#include "core/probe.hh"
#include "core/serving_system.hh"
#include "core/table.hh"
#include "energy/projection.hh"

namespace
{

using namespace agentsim;

double
agentWhPerQuery(agents::AgentKind agent, bool use70b)
{
    core::ProbeConfig cfg;
    cfg.agent = agent;
    cfg.bench = workload::Benchmark::HotpotQA;
    cfg.engineConfig =
        use70b ? core::enginePreset70b() : core::enginePreset8b();
    cfg.numTasks = 25;
    cfg.seed = 3;
    return core::runProbe(cfg).meanEnergyWh();
}

double
chatbotWhPerQuery(bool use70b)
{
    core::ServeConfig cfg;
    cfg.chatbot = true;
    cfg.engineConfig =
        use70b ? core::enginePreset70b() : core::enginePreset8b();
    cfg.closedLoop = true;
    cfg.numRequests = 60;
    cfg.seed = 3;
    const auto r = core::runServing(cfg);
    return r.energyWh / cfg.numRequests;
}

} // namespace

int
main()
{
    using namespace agentsim;

    const double daily_queries = energy::chatGptDailyQueries;

    core::Table t("Projected fleet demand at ChatGPT-scale traffic "
                  "(71.4 M queries/day)");
    t.header({"Workload", "Model", "Wh/query", "Daily energy",
              "Fleet power", "vs Seattle/day"});

    struct Row
    {
        const char *name;
        double wh;
    };
    for (bool use70b : {false, true}) {
        const Row rows[] = {
            {"Chatbot (single turn)", chatbotWhPerQuery(use70b)},
            {"Reflexion agent",
             agentWhPerQuery(agents::AgentKind::Reflexion, use70b)},
            {"LATS agent",
             agentWhPerQuery(agents::AgentKind::Lats, use70b)},
        };
        for (const Row &row : rows) {
            const double gwh =
                energy::dailyEnergyGWh(row.wh, daily_queries);
            t.row({row.name, use70b ? "70B" : "8B",
                   core::fmtDouble(row.wh, 2),
                   core::fmtDouble(gwh, 2) + " GWh",
                   core::fmtEng(energy::datacenterPowerWatts(
                                    row.wh, daily_queries),
                                "W"),
                   core::fmtPercent(gwh /
                                    energy::seattleDailyGWh)});
        }
    }
    t.print();

    std::printf("\nAt Google-search traffic (13.7 B queries/day) the "
                "same per-query figures scale %.0fx; a 70B agent "
                "fleet would then rival a substantial share of the "
                "%.0f GW average U.S. grid load — the paper's "
                "sustainability warning.\n",
                energy::googleDailyQueries /
                    energy::chatGptDailyQueries,
                energy::usGridAverageGW);
    return 0;
}
