/**
 * @file
 * Command-line experiment explorer: run any (agent, benchmark,
 * config) combination and print the measurement record — the ad-hoc
 * driver for poking at the design space beyond the canned benches.
 *
 *   ./examples/explore [agent] [benchmark] [tasks] [key=value...]
 *
 *   agent:      cot | react | reflexion | lats | llmcompiler |
 *               selfconsistency | actorcritic | tot | bestofn
 *               (default react)
 *   benchmark:  hotpotqa | webshop | math | humaneval
 *               (default hotpotqa)
 *   tasks:      number of tasks (default 20)
 *
 *   keys: iters=N refl=N children=N fewshot=N sc=N model=8b|70b
 *         caching=0|1 speculative=0|1 seed=N
 *
 * Examples:
 *   ./examples/explore lats hotpotqa 50 children=16 model=70b
 *   ./examples/explore react webshop 30 iters=10 caching=0
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/probe.hh"
#include "core/table.hh"

namespace
{

using namespace agentsim;

agents::AgentKind
parseAgent(const std::string &s)
{
    if (s == "cot")
        return agents::AgentKind::CoT;
    if (s == "react")
        return agents::AgentKind::ReAct;
    if (s == "reflexion")
        return agents::AgentKind::Reflexion;
    if (s == "lats")
        return agents::AgentKind::Lats;
    if (s == "llmcompiler")
        return agents::AgentKind::LlmCompiler;
    if (s == "selfconsistency")
        return agents::AgentKind::SelfConsistency;
    if (s == "actorcritic")
        return agents::AgentKind::ActorCritic;
    if (s == "tot")
        return agents::AgentKind::TreeOfThoughts;
    if (s == "bestofn")
        return agents::AgentKind::BestOfN;
    std::fprintf(stderr, "unknown agent '%s'\n", s.c_str());
    std::exit(2);
}

workload::Benchmark
parseBenchmark(const std::string &s)
{
    if (s == "hotpotqa")
        return workload::Benchmark::HotpotQA;
    if (s == "webshop")
        return workload::Benchmark::WebShop;
    if (s == "math")
        return workload::Benchmark::Math;
    if (s == "humaneval")
        return workload::Benchmark::HumanEval;
    std::fprintf(stderr, "unknown benchmark '%s'\n", s.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace agentsim;

    core::ProbeConfig cfg;
    cfg.agent = agents::AgentKind::ReAct;
    cfg.bench = workload::Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.numTasks = 20;
    cfg.seed = 1;

    if (argc > 1)
        cfg.agent = parseAgent(argv[1]);
    if (argc > 2)
        cfg.bench = parseBenchmark(argv[2]);
    if (argc > 3)
        cfg.numTasks = std::atoi(argv[3]);

    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            std::fprintf(stderr, "expected key=value, got '%s'\n",
                         arg.c_str());
            return 2;
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (key == "iters")
            cfg.agentConfig.maxIterations = std::atoi(value.c_str());
        else if (key == "refl")
            cfg.agentConfig.maxReflections = std::atoi(value.c_str());
        else if (key == "children")
            cfg.agentConfig.latsChildren = std::atoi(value.c_str());
        else if (key == "fewshot")
            cfg.agentConfig.fewShotExamples = std::atoi(value.c_str());
        else if (key == "sc")
            cfg.agentConfig.scSamples = std::atoi(value.c_str());
        else if (key == "speculative")
            cfg.agentConfig.speculativeTools = value == "1";
        else if (key == "caching")
            cfg.engineConfig.enablePrefixCaching = value == "1";
        else if (key == "model" && value == "70b")
            cfg.engineConfig = core::enginePreset70b();
        else if (key == "model" && value == "8b")
            ; // default
        else if (key == "seed")
            cfg.seed = static_cast<std::uint64_t>(
                std::atoll(value.c_str()));
        else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         key.c_str());
            return 2;
        }
    }

    if (!agents::agentSupports(cfg.agent, cfg.bench)) {
        std::fprintf(stderr, "%s is not applicable to %s\n",
                     std::string(agents::agentName(cfg.agent)).c_str(),
                     std::string(workload::benchmarkName(cfg.bench))
                         .c_str());
        return 2;
    }

    const auto r = core::runProbe(cfg);
    const auto e2e = r.e2eSeconds();

    core::Table t(std::string(agents::agentName(cfg.agent)) + " on " +
                  std::string(workload::benchmarkName(cfg.bench)) +
                  " (" + cfg.engineConfig.model.name + ")");
    t.header({"Metric", "Value"});
    t.row({"tasks", core::fmtCount(cfg.numTasks)});
    t.row({"accuracy", core::fmtPercent(r.accuracy())});
    t.row({"latency mean", core::fmtSeconds(e2e.mean())});
    t.row({"latency p95", core::fmtSeconds(e2e.percentile(95))});
    t.row({"LLM calls / request", core::fmtDouble(r.meanLlmCalls(), 1)});
    t.row({"tool calls / request",
           core::fmtDouble(r.meanToolCalls(), 1)});
    t.row({"energy / request", core::fmtDouble(r.meanEnergyWh(), 3) +
                                   " Wh"});
    t.row({"GPU idle share",
           core::fmtPercent(r.meanGpuIdleFraction())});
    t.row({"PFLOPs / request",
           core::fmtDouble(r.meanFlops() / 1e15, 2)});
    t.print();
    return 0;
}
