/**
 * @file
 * Quickstart: simulate one ReAct agent request end-to-end.
 *
 * Builds the serving stack (Llama-3.1-8B roofline model on one
 * simulated A100 with prefix caching), the HotpotQA tool belt, and
 * runs a single agent request, printing the measurements the paper's
 * experiments are made of.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "agents/accuracy.hh"
#include "agents/workflows.hh"
#include "core/probe.hh"
#include "workload/toolset_factory.hh"

int
main()
{
    using namespace agentsim;

    // 1. A virtual-time simulation and a vLLM-style serving engine.
    sim::Simulation sim;
    serving::EngineConfig engine_cfg;
    engine_cfg.model = llm::llama31_8b();
    engine_cfg.node = llm::singleA100();
    engine_cfg.enablePrefixCaching = true;
    serving::LlmEngine engine(sim, engine_cfg);

    // 2. The benchmark's tools and one sampled task.
    const auto bench = workload::Benchmark::HotpotQA;
    auto tools = workload::makeToolSet(bench, sim, engine, /*seed=*/1);
    workload::TaskGenerator tasks(bench, /*seed=*/1);

    // 3. Wire up the agent context and run ReAct.
    agents::AgentContext ctx;
    ctx.sim = &sim;
    ctx.engine = &engine;
    ctx.tools = tools.get();
    ctx.task = tasks.sample(0);
    ctx.kind = agents::AgentKind::ReAct;
    ctx.seed = 1;
    ctx.config.modelQuality =
        agents::modelQuality(engine_cfg.model.name);

    auto agent = agents::makeAgent(agents::AgentKind::ReAct);
    auto run = agent->run(ctx);
    sim.run(); // drain the virtual clock

    // 4. Inspect the measurements.
    const agents::AgentResult r = run.result();
    std::printf("solved:        %s\n", r.solved ? "yes" : "no");
    std::printf("latency:       %.2f s end-to-end\n", r.e2eSeconds);
    std::printf("  LLM time:    %.2f s\n", r.latency.llmOnlySeconds);
    std::printf("  tool time:   %.2f s\n", r.latency.toolOnlySeconds);
    std::printf("LLM calls:     %d (%lld output tokens)\n", r.llmCalls,
                static_cast<long long>(r.outputTokens));
    std::printf("tool calls:    %d\n", r.toolCalls);
    std::printf("context peak:  %lld tokens\n",
                static_cast<long long>(r.maxContextTokens));
    std::printf("prefix cache:  %lld of %lld prompt tokens reused\n",
                static_cast<long long>(r.cachedPromptTokensTotal),
                static_cast<long long>(r.promptTokensTotal));
    std::printf("GPU energy:    %.3f Wh (incl. idle during tools)\n",
                engine.energyJoules(sim.now()) / 3600.0);
    return 0;
}
