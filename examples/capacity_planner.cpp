/**
 * @file
 * Capacity planner: how many GPUs does an agent service need?
 *
 * The paper's serving analysis (§IV-C) shows agent workloads saturate
 * a node at a fraction of chatbot QPS and are acutely sensitive to
 * prefix caching and KV-pool size. This example turns that analysis
 * into a planning tool: given a target load and a p95 latency SLO, it
 * finds each configuration's per-node sustainable throughput and the
 * node count required.
 *
 *   ./examples/capacity_planner
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/probe.hh"
#include "core/serving_system.hh"
#include "core/table.hh"

namespace
{

using namespace agentsim;

struct Option
{
    const char *name;
    bool caching;
    double poolFractionOfWeights; // 0 = hardware default
};

/** Highest offered QPS meeting the SLO on one node. */
double
sustainableQps(const Option &option, double p95_slo_seconds)
{
    double best = 0.0;
    for (double qps : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0}) {
        core::ServeConfig cfg;
        cfg.agent = agents::AgentKind::ReAct;
        cfg.bench = workload::Benchmark::HotpotQA;
        cfg.engineConfig = core::enginePreset8b();
        cfg.engineConfig.enablePrefixCaching = option.caching;
        if (option.poolFractionOfWeights > 0) {
            cfg.engineConfig.kvPoolBytes = static_cast<std::int64_t>(
                option.poolFractionOfWeights *
                static_cast<double>(
                    cfg.engineConfig.model.weightBytes()));
        }
        cfg.qps = qps;
        cfg.numRequests = 80;
        cfg.seed = 7;
        const auto r = core::runServing(cfg);
        if (r.p95() <= p95_slo_seconds &&
            r.throughputQps() >= 0.9 * qps) {
            best = std::max(best, r.throughputQps());
        }
    }
    return best;
}

} // namespace

int
main()
{
    using namespace agentsim;

    const double target_qps = 50.0; // fleet-wide target load
    const double p95_slo = 60.0;    // seconds

    std::printf("Capacity plan: ReAct agents on HotpotQA, "
                "target %.0f QPS fleet-wide, p95 SLO %.0f s\n\n",
                target_qps, p95_slo);

    const std::vector<Option> options{
        {"prefix caching on, full KV pool", true, 0.0},
        {"prefix caching OFF, full KV pool", false, 0.0},
        {"prefix caching on, pool = 30% of weights", true, 0.30},
        {"prefix caching on, pool = 10% of weights", true, 0.10},
    };

    core::Table t("Per-node sustainable load and fleet size");
    t.header({"Configuration", "Node QPS @ SLO", "Nodes needed"});
    for (const auto &option : options) {
        const double node_qps = sustainableQps(option, p95_slo);
        const std::string nodes =
            node_qps > 0 ? core::fmtCount(std::ceil(target_qps /
                                                    node_qps))
                         : std::string("SLO unattainable");
        t.row({option.name, core::fmtDouble(node_qps, 2), nodes});
    }
    t.print();

    std::printf("\nTakeaway (paper keytakeaways #7-#9): provisioning "
                "agent serving without prefix caching or with a "
                "squeezed KV pool multiplies the required fleet.\n");
    return 0;
}
