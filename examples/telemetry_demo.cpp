/**
 * @file
 * Telemetry walkthrough: run a small ReAct serving workload with the
 * full observability stack attached and emit
 *
 *   telemetry_demo.prom — Prometheus text exposition of the engine's
 *                         metric families;
 *   telemetry_demo.csv  — one row per sampled engine iteration
 *                         (batch occupancy, token split, KV usage,
 *                         prefix-hit rate, preemptions);
 *   telemetry_demo.json — a cross-layer Chrome trace: engine
 *                         iterations, per-request lifecycle spans and
 *                         agent LLM/tool steps on a shared clock.
 *                         Load it in chrome://tracing or Perfetto.
 *
 * Usage: telemetry_demo [output-prefix]   (default "telemetry_demo")
 */

#include <cstdio>
#include <string>

#include "core/probe.hh"
#include "core/serving_system.hh"

using namespace agentsim;

int
main(int argc, char **argv)
{
    const std::string prefix =
        argc > 1 ? argv[1] : "telemetry_demo";

    telemetry::SessionTelemetry session;

    core::ServeConfig cfg;
    cfg.agent = agents::AgentKind::ReAct;
    cfg.bench = workload::Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 2.0;
    cfg.numRequests = 16;
    cfg.seed = 7;
    cfg.telemetry = &session;

    const core::ServeResult result = core::runServing(cfg);

    std::printf("ran %d ReAct/HotpotQA requests at %.1f QPS: "
                "p50 %.2f s, p95 %.2f s, %lld engine steps, "
                "prefix-hit rate %.1f%%\n",
                result.completed, cfg.qps, result.p50(), result.p95(),
                static_cast<long long>(result.engineStats.steps),
                100.0 * result.cacheHitRate);

    std::printf("collected: %zu metric families, %zu engine samples, "
                "%zu trace events\n",
                session.registry.families(),
                session.engineSamples.size(),
                session.trace.eventCount());

    bool ok = true;
    const std::string prom = prefix + ".prom";
    const std::string csv = prefix + ".csv";
    const std::string json = prefix + ".json";
    ok = session.writeMetrics(prom) && ok;
    ok = session.writeEngineCsv(csv) && ok;
    ok = session.writeTrace(json) && ok;
    if (!ok) {
        std::fprintf(stderr, "failed to write telemetry outputs\n");
        return 1;
    }
    std::printf("wrote %s, %s and %s\n", prom.c_str(), csv.c_str(),
                json.c_str());
    std::printf("open the trace in chrome://tracing or "
                "https://ui.perfetto.dev to see why agent steps "
                "stall: the agent track's LLM spans line up with "
                "request queued/prefill/decode phases and engine "
                "iterations.\n");
    return 0;
}
