/**
 * @file
 * Telemetry walkthrough: run a small ReAct serving workload with the
 * full observability stack attached and emit
 *
 *   telemetry_demo.prom — Prometheus text exposition of the engine's
 *                         metric families;
 *   telemetry_demo.csv  — one row per sampled engine iteration
 *                         (batch occupancy, token split, KV usage,
 *                         prefix-hit rate, preemptions);
 *   telemetry_demo.json — a cross-layer Chrome trace: engine
 *                         iterations, per-request lifecycle spans and
 *                         agent LLM/tool steps on a shared clock.
 *                         Load it in chrome://tracing or Perfetto.
 *
 * Then two cost/SLO walkthroughs on top of the same stack:
 *
 *  1. a per-agent cost report — CoT, ReAct and Reflexion probed on
 *     HotpotQA, each rollout's attributed resource ledger (GPU-s
 *     split prefill/decode, waste, cache savings, KV block-seconds,
 *     energy) rolled up into one table row per agent;
 *
 *  2. an online SLO monitor watching a live engine while periodic
 *     stalls are injected — the burn-rate alert fires mid-run (watch
 *     stderr) and lands in the metrics/trace output.
 *
 * Usage: telemetry_demo [output-prefix]   (default "telemetry_demo")
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/cost_report.hh"
#include "core/probe.hh"
#include "core/serving_system.hh"
#include "sim/awaitable.hh"
#include "telemetry/slo.hh"
#include "workload/token_stream.hh"

using namespace agentsim;

namespace
{

/** Submit one generation request and co_return its result. */
sim::Task<serving::GenResult>
submit(serving::LlmEngine &engine, std::uint64_t stream,
       std::int64_t prompt_tokens, std::int64_t out_tokens)
{
    serving::GenRequest req;
    req.prompt = workload::makeTokens(
        workload::streamId(9, "slo_demo") + stream, prompt_tokens);
    req.maxNewTokens = out_tokens;
    co_return co_await engine.generate(std::move(req));
}

/** Periodically extend the next engine step (driver hiccup). */
sim::Task<int>
stallInjector(sim::Simulation &sim, serving::LlmEngine &engine,
              int stalls, double period_s, double stall_s)
{
    for (int i = 0; i < stalls; ++i) {
        co_await sim::delaySec(sim, period_s);
        engine.injectStall(stall_s);
    }
    co_return 0;
}

/** Demo 1: classic serving-run telemetry (trace/metrics/CSV files). */
int
servingDemo(const std::string &prefix)
{
    telemetry::SessionTelemetry session;

    core::ServeConfig cfg;
    cfg.agent = agents::AgentKind::ReAct;
    cfg.bench = workload::Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 2.0;
    cfg.numRequests = 16;
    cfg.seed = 7;
    cfg.telemetry = &session;

    const core::ServeResult result = core::runServing(cfg);

    std::printf("ran %d ReAct/HotpotQA requests at %.1f QPS: "
                "p50 %.2f s, p95 %.2f s, %lld engine steps, "
                "prefix-hit rate %.1f%%\n",
                result.completed, cfg.qps, result.p50(), result.p95(),
                static_cast<long long>(result.engineStats.steps),
                100.0 * result.cacheHitRate);
    std::printf("attributed cost of the run: %.2f GPU-s "
                "(%.2f prefill / %.2f decode), %.2f GPU-s saved by "
                "the prefix cache, %.0f KV block-s held\n",
                result.totalCost.gpuSeconds(),
                result.totalCost.prefillGpuSeconds,
                result.totalCost.decodeGpuSeconds,
                result.totalCost.savedPrefillSeconds,
                result.totalCost.kvBlockSeconds);
    std::printf("simulator self-timing: %.0f events in %.3f s wall "
                "(%.0f events/s)\n",
                result.simEventsProcessed, result.simWallSeconds,
                result.simEventsPerSecond);

    std::printf("collected: %zu metric families, %zu engine samples, "
                "%zu trace events\n",
                session.registry.families(),
                session.engineSamples.size(),
                session.trace.eventCount());

    bool ok = true;
    const std::string prom = prefix + ".prom";
    const std::string csv = prefix + ".csv";
    const std::string json = prefix + ".json";
    ok = telemetry::writeArtifact(prom,
                                  session.registry.renderPrometheus(),
                                  "Prometheus metrics") &&
         ok;
    ok = telemetry::writeArtifact(
             csv,
             telemetry::EngineSampler::renderCsv(
                 session.engineSamples),
             "engine iteration CSV") &&
         ok;
    ok = telemetry::writeArtifact(json, session.trace.toJson(),
                                  "Chrome trace") &&
         ok;
    if (!ok)
        return 1;
    std::printf("open the trace in chrome://tracing or "
                "https://ui.perfetto.dev to see why agent steps "
                "stall: the agent track's LLM spans line up with "
                "request queued/prefill/decode phases and engine "
                "iterations.\n");
    return 0;
}

/** Demo 2: per-agent attributed cost report. */
void
costReportDemo()
{
    const int tasks = 8;
    core::CostReport report;
    for (agents::AgentKind kind :
         {agents::AgentKind::CoT, agents::AgentKind::ReAct,
          agents::AgentKind::Reflexion}) {
        core::ProbeConfig cfg;
        cfg.agent = kind;
        cfg.bench = workload::Benchmark::HotpotQA;
        cfg.engineConfig = core::enginePreset8b();
        cfg.numTasks = tasks;
        cfg.seed = 11;
        const core::ProbeResult probe = core::runProbe(cfg);
        report.add(std::string(agents::agentName(kind)),
                   probe.totalCost(), tasks);
    }
    std::printf("\nEvery engine step's time/energy is split across "
                "the requests in it, so rows are additive real "
                "resources — not overlapping wall-clock:\n");
    report
        .render("Per-agent attributed cost (HotpotQA, 8 tasks each)")
        .print();
}

/** Demo 3: online SLO monitor + burn-rate alert under stalls. */
int
sloAlertDemo(const std::string &prefix)
{
    sim::Simulation sim;
    serving::LlmEngine engine(sim, core::enginePreset8b());

    telemetry::SloConfig slo_cfg;
    slo_cfg.ttftTargetSeconds = 5.0;
    slo_cfg.tbtTargetSeconds = 0.2;
    slo_cfg.e2eTargetSeconds = 120.0;
    slo_cfg.windowSeconds = 5.0;
    telemetry::SloTracker slo(slo_cfg);
    telemetry::TraceSink trace;
    engine.attachTrace(&trace);
    engine.attachSlo(&slo);

    // A steady decode-heavy batch; the injector then stretches one
    // step a second to 10x the TBT target.
    std::vector<sim::Task<serving::GenResult>> gens;
    for (std::uint64_t i = 0; i < 6; ++i)
        gens.push_back(submit(engine, i, 256, 400));
    auto injector = stallInjector(sim, engine, 8, 1.0, 2.0);
    sim.run();

    std::printf("\nSLO monitor after %d stall injections: "
                "TBT p95 %.3f s (target %.2f s), attainment %.1f%%, "
                "%lld violations, %lld burn-rate alert(s) fired\n",
                8, slo.percentile(telemetry::SloMetric::Tbt, 95.0),
                slo_cfg.tbtTargetSeconds,
                100.0 * slo.attainment(telemetry::SloMetric::Tbt),
                static_cast<long long>(
                    slo.violations(telemetry::SloMetric::Tbt)),
                static_cast<long long>(slo.alertsFired()));
    if (slo.alertsFired() == 0) {
        std::fprintf(stderr, "error: expected the injected stalls to "
                             "fire at least one SLO alert\n");
        return 1;
    }

    telemetry::MetricsRegistry registry;
    slo.exportMetrics(registry, sim.now());
    const std::string slo_prom = prefix + "_slo.prom";
    const std::string slo_json = prefix + "_slo.json";
    bool ok = true;
    ok = telemetry::writeArtifact(slo_prom,
                                  registry.renderPrometheus(),
                                  "SLO metrics") &&
         ok;
    ok = telemetry::writeArtifact(slo_json, trace.toJson(),
                                  "SLO Chrome trace") &&
         ok;
    if (!ok)
        return 1;
    std::printf("the slo_alert instants in %s mark where the "
                "burn-rate tripped; the agentsim_slo_* families in "
                "%s carry the windowed percentiles.\n",
                slo_json.c_str(), slo_prom.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string prefix =
        argc > 1 ? argv[1] : "telemetry_demo";

    if (const int rc = servingDemo(prefix); rc != 0)
        return rc;
    costReportDemo();
    if (const int rc = sloAlertDemo(prefix); rc != 0)
        return rc;
    return 0;
}
