/**
 * @file
 * Tests for the workload layer: token streams, benchmark profiles,
 * task generation and the ShareGPT sampler.
 */

#include <gtest/gtest.h>

#include "workload/benchmark.hh"
#include "workload/token_stream.hh"
#include "workload/toolset_factory.hh"

#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "serving/engine.hh"

namespace
{

using namespace agentsim;
using workload::Benchmark;
using workload::ChatRequest;
using workload::ShareGptSampler;
using workload::TaskGenerator;
using workload::TaskInstance;

TEST(TokenStream, DeterministicAndOffsettable)
{
    const auto s = workload::streamId(42, "segment");
    const auto a = workload::makeTokens(s, 100);
    const auto b = workload::makeTokens(s, 100);
    EXPECT_EQ(a, b);
    const auto tail = workload::makeTokens(s, 40, 60);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(tail[static_cast<size_t>(i)],
                  a[static_cast<size_t>(60 + i)]);
}

TEST(TokenStream, DistinctStreamsDiffer)
{
    const auto a =
        workload::makeTokens(workload::streamId(42, "alpha"), 64);
    const auto b =
        workload::makeTokens(workload::streamId(42, "beta"), 64);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a[static_cast<size_t>(i)] == b[static_cast<size_t>(i)]);
    EXPECT_LE(same, 1);
}

TEST(Benchmark, NamesAndProfiles)
{
    EXPECT_EQ(workload::benchmarkName(Benchmark::HotpotQA), "HotpotQA");
    EXPECT_EQ(workload::benchmarkName(Benchmark::ShareGpt), "ShareGPT");
    const auto &p = workload::profile(Benchmark::HotpotQA);
    EXPECT_EQ(p.id, Benchmark::HotpotQA);
    EXPECT_GT(p.instructionTokens, 0);
    EXPECT_GT(p.fewShotTokensPerExample, 0);
}

TEST(Benchmark, InitialPromptAroundOneThousandTokens)
{
    // Paper Fig 9: initial agent inputs are ~1 k tokens.
    const auto &p = workload::profile(Benchmark::HotpotQA);
    const double initial =
        static_cast<double>(p.instructionTokens) +
        static_cast<double>(p.defaultFewShot *
                            p.fewShotTokensPerExample) +
        p.userTokenMean;
    EXPECT_GT(initial, 800.0);
    EXPECT_LT(initial, 1300.0);
}

TEST(Benchmark, SupportMatrixMatchesPaper)
{
    // Table II: CoT is omitted on WebShop; LLMCompiler on MATH and
    // HumanEval.
    EXPECT_FALSE(workload::profile(Benchmark::WebShop).supportsCot);
    EXPECT_TRUE(workload::profile(Benchmark::HotpotQA).supportsCot);
    EXPECT_FALSE(
        workload::profile(Benchmark::Math).supportsLlmCompiler);
    EXPECT_FALSE(
        workload::profile(Benchmark::HumanEval).supportsLlmCompiler);
    EXPECT_TRUE(
        workload::profile(Benchmark::WebShop).supportsLlmCompiler);
}

TEST(TaskGenerator, DeterministicAndInRange)
{
    TaskGenerator gen(Benchmark::HotpotQA, 99);
    const auto &p = workload::profile(Benchmark::HotpotQA);
    for (std::uint64_t i = 0; i < 200; ++i) {
        const TaskInstance t = gen.sample(i);
        const TaskInstance t2 = gen.sample(i);
        EXPECT_EQ(t.requiredHops, t2.requiredHops);
        EXPECT_DOUBLE_EQ(t.difficulty, t2.difficulty);
        EXPECT_GE(t.requiredHops, p.minHops);
        EXPECT_LE(t.requiredHops, p.maxHops);
        EXPECT_GE(t.difficulty, p.difficultyLo);
        EXPECT_LT(t.difficulty, p.difficultyHi);
        EXPECT_GE(t.userTokens, p.userTokenMin);
        EXPECT_LE(t.userTokens, p.userTokenMax);
    }
}

TEST(TaskGenerator, TasksVary)
{
    TaskGenerator gen(Benchmark::Math, 3);
    bool hops_vary = false;
    const int first = gen.sample(0).requiredHops;
    for (std::uint64_t i = 1; i < 50; ++i)
        hops_vary |= (gen.sample(i).requiredHops != first);
    EXPECT_TRUE(hops_vary);
}

TEST(ShareGpt, SampleDistributions)
{
    ShareGptSampler sampler(5);
    double prompt_total = 0.0;
    double out_total = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const ChatRequest r =
            sampler.sample(static_cast<std::uint64_t>(i));
        EXPECT_GE(r.promptTokens, 16);
        EXPECT_LE(r.promptTokens, 3000);
        EXPECT_GE(r.outputTokens, 16);
        EXPECT_LE(r.outputTokens, 1024);
        prompt_total += static_cast<double>(r.promptTokens);
        out_total += static_cast<double>(r.outputTokens);
    }
    EXPECT_NEAR(prompt_total / n, 310.0, 60.0);
    EXPECT_NEAR(out_total / n, 250.0, 40.0);
}

TEST(ToolsetFactory, MatchesTableTwo)
{
    sim::Simulation sim;
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    serving::LlmEngine engine(sim, cfg);

    const auto hotpot =
        workload::makeToolSet(Benchmark::HotpotQA, sim, engine, 1);
    EXPECT_EQ(hotpot->size(), 2u);
    EXPECT_EQ(hotpot->at(0).name(), "wikipedia.search");

    const auto shop =
        workload::makeToolSet(Benchmark::WebShop, sim, engine, 1);
    EXPECT_EQ(shop->size(), 2u);

    const auto math =
        workload::makeToolSet(Benchmark::Math, sim, engine, 1);
    EXPECT_EQ(math->size(), 2u);
    EXPECT_EQ(math->at(0).name(), "wolfram.alpha");

    const auto code =
        workload::makeToolSet(Benchmark::HumanEval, sim, engine, 1);
    EXPECT_EQ(code->size(), 1u);
    EXPECT_TRUE(code->at(0).usesGpu());
}

} // namespace
