/**
 * @file
 * Episode checkpointing and resumable recovery: the CheckpointStore
 * policy gate and delta journaling, the determinism contract (fault
 * streams unperturbed by checkpointing on/off and by the admission
 * knob), crash x parked-chain interaction, and cluster-level
 * resume accounting.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster.hh"
#include "core/cost_report.hh"
#include "core/probe.hh"
#include "serving/checkpoint.hh"
#include "serving/engine.hh"
#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "sim/simulation.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace agentsim;
using agents::AgentKind;
using workload::Benchmark;
using serving::CheckpointPolicy;
using serving::CheckpointStore;
using serving::EpisodeCheckpoint;
using serving::LlmEngine;
using sim::Simulation;
using sim::Task;

// ---------------------------------------------------------------
// CheckpointStore: policy gate and delta journaling.
// ---------------------------------------------------------------

TEST(CheckpointStore, DisabledPolicyNeverAdmits)
{
    CheckpointPolicy policy; // enabled defaults to false
    CheckpointStore store(policy, 1);
    for (int iter = 1; iter <= 8; ++iter)
        EXPECT_FALSE(store.shouldCheckpoint(0, iter));
}

TEST(CheckpointStore, EveryKAndMinIterationsGate)
{
    CheckpointPolicy policy;
    policy.enabled = true;
    policy.everyIterations = 2;
    policy.minIterations = 3;
    CheckpointStore store(policy, 1);
    // Below the age floor nothing is journaled, even on a k-multiple.
    EXPECT_FALSE(store.shouldCheckpoint(0, 1));
    EXPECT_FALSE(store.shouldCheckpoint(0, 2));
    // At and past the floor, only every 2nd iteration qualifies.
    EXPECT_FALSE(store.shouldCheckpoint(0, 3));
    EXPECT_TRUE(store.shouldCheckpoint(0, 4));
    EXPECT_FALSE(store.shouldCheckpoint(0, 5));
    EXPECT_TRUE(store.shouldCheckpoint(0, 6));
}

TEST(CheckpointStore, AdmitProbIsPerEpisodeDeterministic)
{
    CheckpointPolicy policy;
    policy.enabled = true;
    policy.admitProb = 0.5;
    CheckpointStore a(policy, 42);
    CheckpointStore b(policy, 42);
    // Same seed, same episode -> identical admission sequence (the
    // draw comes from a dedicated per-episode stream, so it cannot
    // depend on draw order across episodes).
    std::vector<bool> seq_a, seq_b;
    for (int iter = 1; iter <= 32; ++iter) {
        seq_a.push_back(a.shouldCheckpoint(7, iter));
        b.shouldCheckpoint(3, iter); // interleave another episode
        seq_b.push_back(b.shouldCheckpoint(7, iter));
    }
    EXPECT_EQ(seq_a, seq_b);
    // A 0.5 coin over 32 flips lands strictly between the extremes.
    const auto admitted = std::count(seq_a.begin(), seq_a.end(), true);
    EXPECT_GT(admitted, 0);
    EXPECT_LT(admitted, 32);
}

TEST(CheckpointStore, PutChargesDeltaBytesOnly)
{
    CheckpointPolicy policy;
    policy.enabled = true;
    policy.journalBytes = 1000;
    policy.wireBandwidth = 1e6; // 1 MB/s: seconds easy to eyeball
    CheckpointStore store(policy, 1);

    EpisodeCheckpoint first;
    first.iteration = 1;
    first.chainTokens.assign(100, 7);
    first.gpuSeconds = 1.0;
    store.put(0, std::move(first), /*bytes_per_token=*/10.0);
    // 100 tokens x 10 B + 1000 B journal overhead.
    EXPECT_EQ(store.stats().bytesWritten, 2000);
    EXPECT_DOUBLE_EQ(store.stats().snapshotSeconds, 2000 / 1e6);

    // Re-checkpointing the same episode pays only for the appended
    // tokens, not the whole chain again.
    EpisodeCheckpoint second;
    second.iteration = 2;
    second.chainTokens.assign(150, 7);
    second.gpuSeconds = 2.0;
    store.put(0, std::move(second), 10.0);
    EXPECT_EQ(store.stats().checkpointsTaken, 2);
    EXPECT_EQ(store.stats().bytesWritten, 2000 + 1500);

    // A shrinking chain (Reflexion trial boundary) costs only the
    // journal overhead.
    EpisodeCheckpoint third;
    third.iteration = 3;
    third.chainTokens.assign(50, 7);
    store.put(0, std::move(third), 10.0);
    EXPECT_EQ(store.stats().bytesWritten, 2000 + 1500 + 1000);

    const EpisodeCheckpoint *latest = store.find(0);
    ASSERT_NE(latest, nullptr);
    EXPECT_EQ(latest->iteration, 3);
    EXPECT_EQ(latest->chainTokens.size(), 50u);

    EXPECT_EQ(store.find(99), nullptr);
    store.erase(0);
    EXPECT_EQ(store.find(0), nullptr);
    EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------
// Determinism: checkpointing must not perturb the fault streams.
// ---------------------------------------------------------------

core::ClusterConfig
chaosCluster()
{
    core::ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;
    core::WorkloadSpec react;
    react.agent = AgentKind::ReAct;
    react.bench = Benchmark::HotpotQA;
    cfg.mix.push_back(react);
    core::WorkloadSpec reflexion;
    reflexion.agent = AgentKind::Reflexion;
    reflexion.bench = Benchmark::WebShop;
    cfg.mix.push_back(reflexion);
    cfg.qps = 2.0;
    cfg.numRequests = 40;
    cfg.seed = 11;
    cfg.faults.nodeMtbfSeconds = 30.0;
    cfg.faults.nodeRestartMeanSeconds = 4.0;
    return cfg;
}

TEST(Recovery, FaultScheduleIdenticalWithCheckpointingOnOrOff)
{
    auto cfg = chaosCluster();
    const auto off = core::runCluster(cfg);
    cfg.checkpoint.enabled = true;
    const auto on = core::runCluster(cfg);

    // The injector draws from its own streams; enabling checkpointing
    // (snapshot journaling, resume decisions, KV restores) must leave
    // every fault timestamp where it was. A resumed run can drain
    // earlier — and so live through fewer crashes — but every crash
    // both runs saw must land on the same sim time.
    ASSERT_GT(off.faultStats.crashes, 0);
    const auto &a = off.faultStats.crashSeconds;
    const auto &b = on.faultStats.crashSeconds;
    const std::size_t common = std::min(a.size(), b.size());
    ASSERT_GT(common, 0u);
    for (std::size_t i = 0; i < common; ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "crash " << i << " moved";
    EXPECT_DOUBLE_EQ(off.faultStats.stallSecondsInjected,
                     on.faultStats.stallSecondsInjected);
    // Baseline runs report zero recovery activity.
    EXPECT_EQ(off.recovery.resumes, 0);
    EXPECT_DOUBLE_EQ(off.recovery.recoveredGpuSeconds, 0.0);
}

TEST(Recovery, AdmitProbDrawsFromDedicatedStream)
{
    auto cfg = chaosCluster();
    cfg.checkpoint.enabled = true;
    const auto always = core::runCluster(cfg);
    // Thinning admission consumes draws only from the per-episode
    // "checkpoint" stream, so the fault schedule still cannot move.
    cfg.checkpoint.admitProb = 0.4;
    const auto thinned = core::runCluster(cfg);
    const auto &a = always.faultStats.crashSeconds;
    const auto &b = thinned.faultStats.crashSeconds;
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "crash " << i << " moved";
    EXPECT_LT(thinned.recovery.checkpointsTaken,
              always.recovery.checkpointsTaken);
}

// ---------------------------------------------------------------
// Cluster-level resume accounting.
// ---------------------------------------------------------------

TEST(Recovery, ResumeRecoversWorkAndReducesRecompute)
{
    auto cfg = chaosCluster();
    const auto off = core::runCluster(cfg);
    cfg.checkpoint.enabled = true;
    const auto on = core::runCluster(cfg);

    // Same crash schedule; the checkpointed run resumes instead of
    // replaying and recovers a strictly positive amount of work.
    EXPECT_EQ(on.completed + on.failed, cfg.numRequests);
    EXPECT_GT(on.recovery.checkpointsTaken, 0);
    EXPECT_GT(on.recovery.bytesWritten, 0);
    EXPECT_GT(on.recovery.resumes, 0);
    EXPECT_EQ(on.recovery.kvRestores + on.recovery.coldFallbacks,
              on.recovery.resumes);
    EXPECT_GT(on.recovery.recoveredGpuSeconds, 0.0);
    EXPECT_DOUBLE_EQ(on.recovery.recoveredCrashGpuSeconds +
                         on.recovery.recoveredShedGpuSeconds,
                     on.recovery.recoveredGpuSeconds);
    EXPECT_LT(on.recovery.lostGpuSeconds, off.recovery.lostGpuSeconds);

    // Retry/failover cause splits reconcile with the totals on both
    // runs.
    for (const auto *r : {&off, &on}) {
        EXPECT_EQ(r->retriesCrash + r->retriesShed +
                      r->retriesAdmission,
                  r->retries);
        EXPECT_EQ(r->failoversOffline + r->failoversBreaker +
                      r->failoversRebalance,
                  r->failovers);
    }
}

TEST(Recovery, CostReportFooterAttributesRecoveredWork)
{
    auto cfg = chaosCluster();
    cfg.checkpoint.enabled = true;
    const auto r = core::runCluster(cfg);
    core::CostReport report;
    report.add("episodes", r.episodeCost, r.completed);
    report.addRecoveredGpuSeconds(
        "crash", r.recovery.recoveredCrashGpuSeconds);
    report.addRecoveredGpuSeconds(
        "shed", r.recovery.recoveredShedGpuSeconds);
    report.addRecoveredGpuSeconds("crash", 0.0); // accumulates
    EXPECT_DOUBLE_EQ(report.recoveredGpuSeconds(),
                     r.recovery.recoveredGpuSeconds);
    // The footer rows render without disturbing the ledger rows.
    const auto table = report.render("episode cost");
    (void)table;
    EXPECT_DOUBLE_EQ(report.total().gpuSeconds(),
                     r.episodeCost.gpuSeconds());
}

// ---------------------------------------------------------------
// Crash x parked chain: a chain demoted to the spill tier for a
// tool wait dies with the node like everything else — no leaked
// tier blocks, clean restart, and the prefix can be re-wired.
// ---------------------------------------------------------------

serving::EngineConfig
parkingConfig()
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    cfg.hostCacheBlocks = 256;
    // Park unconditionally so the test exercises the mechanics.
    cfg.parkUtilizationThreshold = 0.0;
    return cfg;
}

std::vector<kv::TokenId>
testPrompt(std::uint64_t stream, std::int64_t n)
{
    return workload::makeTokens(
        workload::streamId(1, "recovery") + stream, n);
}

Task<serving::GenResult>
submitParked(LlmEngine &engine, std::vector<kv::TokenId> tokens,
             std::int64_t out, double park_seconds)
{
    serving::GenRequest req;
    req.prompt = std::move(tokens);
    req.maxNewTokens = out;
    req.expectedParkSeconds = park_seconds;
    co_return co_await engine.generate(std::move(req));
}

Task<void>
crashAt(Simulation &sim, LlmEngine &engine, double when)
{
    co_await sim::delaySec(sim, when);
    engine.crash();
}

TEST(Recovery, CrashWhileChainParkedLeaksNothing)
{
    Simulation sim;
    LlmEngine engine(sim, parkingConfig());

    // The request finishes quickly, parks its chain in the DRAM tier
    // for a long tool wait, and the node crashes mid-wait — before
    // the pre-wake prefetch fires.
    const auto p = testPrompt(0, 512);
    auto t = submitParked(engine, p, 32, /*park_seconds=*/20.0);
    auto c = crashAt(sim, engine, 5.0);
    sim.run();

    ASSERT_TRUE(t.result().ok());
    EXPECT_EQ(engine.stats().parkedChains, 1);
    EXPECT_GT(engine.stats().parkedBlocks, 0);
    // The crash beat the prefetch; the guarded callback must notice
    // the node died and promote nothing.
    EXPECT_EQ(engine.stats().prefetchedBlocks, 0);

    // Crash reset the whole hierarchy: no in-use blocks, no tier
    // residents, invariants hold.
    EXPECT_EQ(engine.blockManager().blocksInUse(), 0);
    EXPECT_EQ(engine.blockManager().hostCachedBlocks(), 0);
    EXPECT_EQ(engine.blockManager().nvmeCachedBlocks(), 0);
    engine.blockManager().checkInvariants();

    // After restart the store's chain can be re-wired into the cold
    // pool (the resume path's KV restore) and accounting stays sane.
    engine.restart();
    EXPECT_GT(engine.preloadPrefix(p), 0);
    engine.blockManager().checkInvariants();
}

TEST(Recovery, ClusterChaosWithParkingAndCheckpointing)
{
    auto cfg = chaosCluster();
    cfg.checkpoint.enabled = true;
    cfg.engineConfig.hostCacheBlocks = 512;
    cfg.engineConfig.parkUtilizationThreshold = 0.0;
    const auto r = core::runCluster(cfg);
    // Crashes, tool-wait parking and checkpoint-resume compose: every
    // request resolves, work is recovered, and the per-node engines
    // survived their invariant checks (checked on every free).
    EXPECT_EQ(r.completed + r.failed, cfg.numRequests);
    EXPECT_GT(r.faultStats.crashes, 0);
    EXPECT_GT(r.recovery.resumes, 0);
    EXPECT_GT(r.recovery.recoveredGpuSeconds, 0.0);
    std::int64_t parked = 0;
    for (const auto &node : r.nodes)
        parked += node.engineStats.parkedChains;
    EXPECT_GT(parked, 0);
}

} // namespace
