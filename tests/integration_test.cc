/**
 * @file
 * Cross-module integration and property tests: end-to-end agent runs
 * on every supported (agent, benchmark) pair, engine conservation
 * laws, failure injection with pathological KV pools, accuracy-model
 * statistics, and trace interval algebra.
 */

#include <gtest/gtest.h>

#include "agents/accuracy.hh"
#include "agents/workflows.hh"
#include "core/probe.hh"
#include "core/serving_system.hh"
#include "workload/token_stream.hh"
#include "workload/toolset_factory.hh"

namespace
{

using namespace agentsim;
using agents::AgentKind;
using workload::Benchmark;

// ---------------------------------------------------------------
// Every supported pair runs end to end and produces sane records.
// ---------------------------------------------------------------

struct PairCase
{
    AgentKind agent;
    Benchmark bench;
};

class EveryPair : public ::testing::TestWithParam<PairCase>
{
};

TEST_P(EveryPair, RunsEndToEnd)
{
    const auto [agent, bench] = GetParam();
    core::ProbeConfig cfg;
    cfg.agent = agent;
    cfg.bench = bench;
    cfg.engineConfig = core::enginePreset8b();
    cfg.numTasks = 3;
    cfg.seed = 42;
    const auto r = core::runProbe(cfg);
    ASSERT_EQ(r.requests.size(), 3u);
    for (const auto &req : r.requests) {
        const auto &res = req.result;
        EXPECT_GE(res.llmCalls, 1);
        EXPECT_GT(res.e2eSeconds, 0.0);
        EXPECT_GT(res.tokens.instruction, 0);
        EXPECT_GT(res.tokens.output, 0);
        EXPECT_EQ(res.perCall.size(),
                  static_cast<std::size_t>(res.llmCalls));
        // Latency decomposition must tile the window.
        const auto &lat = res.latency;
        EXPECT_NEAR(lat.llmOnlySeconds + lat.toolOnlySeconds +
                        lat.overlapSeconds + lat.otherSeconds,
                    lat.e2eSeconds, 1e-6);
        // Timeline spans stay inside the window.
        for (const auto &span : res.timeline)
            EXPECT_LE(span.start, span.end);
        // Tool-less agents never record tool spans.
        if (agent == AgentKind::CoT)
            EXPECT_EQ(res.toolCalls, 0);
        else
            EXPECT_GT(res.toolCalls, 0);
    }
}

std::vector<PairCase>
allPairs()
{
    std::vector<PairCase> cases;
    for (Benchmark b : workload::agenticBenchmarks) {
        for (AgentKind a : agents::allAgents) {
            if (agents::agentSupports(a, b))
                cases.push_back({a, b});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, EveryPair, ::testing::ValuesIn(allPairs()),
    [](const ::testing::TestParamInfo<PairCase> &info) {
        return std::string(workload::benchmarkName(
                   info.param.bench)) +
               "_" + std::string(agents::agentName(info.param.agent));
    });

// ---------------------------------------------------------------
// Engine conservation laws under concurrent load.
// ---------------------------------------------------------------

TEST(EngineConservation, TokensAndPhasesAddUp)
{
    core::ServeConfig cfg;
    cfg.agent = AgentKind::ReAct;
    cfg.bench = Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 1.0;
    cfg.numRequests = 30;
    cfg.seed = 5;
    const auto r = core::runServing(cfg);
    EXPECT_EQ(r.completed, 30);
    const auto &st = r.engineStats;
    EXPECT_EQ(st.requestsSubmitted, st.requestsCompleted);
    EXPECT_EQ(st.requestsFailed, 0);
    EXPECT_NEAR(st.prefillSeconds + st.decodeSeconds, st.busySeconds,
                1e-6);
    EXPECT_GT(st.decodeTokens, 0);
    EXPECT_GT(st.prefillTokens, 0);
    EXPECT_LE(st.coreActiveSeconds, st.busySeconds + 1e-9);
}

// ---------------------------------------------------------------
// Failure injection: pathological KV pool sizes never hang the
// simulation or lose requests.
// ---------------------------------------------------------------

class TinyPool : public ::testing::TestWithParam<int>
{
};

TEST_P(TinyPool, ServingCompletesOrFailsCleanly)
{
    core::ServeConfig cfg;
    cfg.agent = AgentKind::ReAct;
    cfg.bench = Benchmark::WebShop;
    cfg.engineConfig = core::enginePreset8b();
    cfg.engineConfig.kvPoolBytes =
        static_cast<std::int64_t>(GetParam()) * 16 *
        cfg.engineConfig.model.kvBytesPerToken();
    cfg.qps = 1.0;
    cfg.numRequests = 12;
    cfg.seed = 9;
    const auto r = core::runServing(cfg);
    // Every request terminates (success, truncation, or failure);
    // the run itself never wedges.
    EXPECT_EQ(r.completed, 12);
    EXPECT_GT(r.makespanSeconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PoolBlocks, TinyPool,
                         ::testing::Values(40, 80, 150, 300, 600));

// ---------------------------------------------------------------
// Accuracy-model statistics (property-style).
// ---------------------------------------------------------------

TEST(AccuracyModel, ContextCapabilityCentersOnBase)
{
    sim::Rng rng(3, "cap", 0);
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double c = agents::contextCapability(rng, 0.5, 0.1);
        EXPECT_GE(c, agents::Calibration::pMin);
        EXPECT_LE(c, agents::Calibration::pMax);
        total += c;
    }
    EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(AccuracyModel, AttemptHopRates)
{
    sim::Rng rng(3, "hop", 0);
    int capable_hits = 0;
    int incapable_hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        capable_hits += agents::attemptHop(rng, 0.9, 0.5);
        incapable_hits += agents::attemptHop(rng, 0.2, 0.5);
    }
    EXPECT_NEAR(static_cast<double>(capable_hits) / n,
                agents::Calibration::pFind, 0.02);
    EXPECT_NEAR(static_cast<double>(incapable_hits) / n,
                agents::Calibration::pLuck, 0.01);
}

TEST(AccuracyModel, WideExplorationLiftsHardTasks)
{
    // The LATS mechanism: max over many wide-noise draws clears
    // thresholds far above base; narrow serial draws rarely do.
    sim::Rng rng(3, "explore", 0);
    const double base = 0.3;
    const double hard = 0.8;
    int wide_clears = 0;
    int narrow_clears = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        bool wide = false;
        for (int b = 0; b < 10; ++b) {
            wide |= agents::contextCapability(
                        rng, base,
                        agents::Calibration::exploreSigmaBranch) >
                    hard;
        }
        wide_clears += wide;
        bool narrow = false;
        for (int b = 0; b < 4; ++b) {
            narrow |= agents::contextCapability(
                          rng, base,
                          agents::Calibration::exploreSigmaTrial) >
                      hard;
        }
        narrow_clears += narrow;
    }
    EXPECT_GT(wide_clears, 10 * std::max(1, narrow_clears));
}

TEST(AccuracyModel, OneShotRespectsThreshold)
{
    sim::Rng rng(3, "oneshot", 0);
    int above = 0;
    int below = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        above += agents::oneShotSolve(rng, 0.9, 0.5);
        below += agents::oneShotSolve(rng, 0.2, 0.5);
    }
    EXPECT_NEAR(static_cast<double>(above) / n,
                agents::Calibration::finishSuccess, 0.02);
    EXPECT_NEAR(static_cast<double>(below) / n,
                agents::Calibration::pLuck, 0.01);
}

// ---------------------------------------------------------------
// Accuracy orderings the paper reports (coarse, seeded).
// ---------------------------------------------------------------

double
accuracyOf(AgentKind agent, Benchmark bench, bool use70b)
{
    core::ProbeConfig cfg;
    cfg.agent = agent;
    cfg.bench = bench;
    cfg.engineConfig =
        use70b ? core::enginePreset70b() : core::enginePreset8b();
    cfg.numTasks = 50;
    cfg.seed = 2026;
    return core::runProbe(cfg).accuracy();
}

TEST(AccuracyOrdering, HotpotQaMatchesPaperShape)
{
    const double cot = accuracyOf(AgentKind::CoT,
                                  Benchmark::HotpotQA, false);
    const double react = accuracyOf(AgentKind::ReAct,
                                    Benchmark::HotpotQA, false);
    const double reflexion = accuracyOf(AgentKind::Reflexion,
                                        Benchmark::HotpotQA, false);
    const double lats = accuracyOf(AgentKind::Lats,
                                   Benchmark::HotpotQA, false);
    // Paper Table III anchors: Reflexion 38%, LATS 80% on the 8B
    // model; tree search dominates serial reflection by a wide
    // margin, which dominates plain ReAct and CoT.
    EXPECT_GT(lats, 0.60);
    EXPECT_LT(lats, 0.95);
    EXPECT_GT(reflexion, 0.18);
    EXPECT_LT(reflexion, 0.60);
    EXPECT_GT(lats, reflexion + 0.15);
    EXPECT_GE(reflexion, react);
    EXPECT_GE(react + 0.05, cot); // CoT no better than ReAct
}

TEST(AccuracyOrdering, BiggerModelHelpsReflexion)
{
    const double small = accuracyOf(AgentKind::Reflexion,
                                    Benchmark::HotpotQA, false);
    const double big = accuracyOf(AgentKind::Reflexion,
                                  Benchmark::HotpotQA, true);
    EXPECT_GT(big, small + 0.05);
}

TEST(AccuracyOrdering, ParallelScalingClosesModelGap)
{
    // Paper Fig 22: 8B + LATS approaches 70B LATS accuracy.
    const double lats8 = accuracyOf(AgentKind::Lats,
                                    Benchmark::HotpotQA, false);
    const double lats70 = accuracyOf(AgentKind::Lats,
                                     Benchmark::HotpotQA, true);
    EXPECT_LT(lats70 - lats8, 0.20);
}

// ---------------------------------------------------------------
// Trace interval algebra edge cases.
// ---------------------------------------------------------------

TEST(TraceAlgebra, DisjointAndNestedSpans)
{
    using agents::Span;
    std::vector<Span> spans{
        {Span::Kind::Llm, 0, 100, "a"},
        {Span::Kind::Llm, 50, 80, "nested"},
        {Span::Kind::Tool, 100, 200, "t"},
    };
    const auto b = agents::breakdownSpans(spans, 0, 250);
    EXPECT_DOUBLE_EQ(b.llmOnlySeconds, sim::toSeconds(100));
    EXPECT_DOUBLE_EQ(b.toolOnlySeconds, sim::toSeconds(100));
    EXPECT_DOUBLE_EQ(b.overlapSeconds, 0.0);
    EXPECT_DOUBLE_EQ(b.otherSeconds, sim::toSeconds(50));
}

TEST(TraceAlgebra, PartialOverlap)
{
    using agents::Span;
    std::vector<Span> spans{
        {Span::Kind::Llm, 0, 100, "l"},
        {Span::Kind::Tool, 60, 160, "t"},
    };
    const auto b = agents::breakdownSpans(spans, 0, 160);
    EXPECT_DOUBLE_EQ(b.overlapSeconds, sim::toSeconds(40));
    EXPECT_DOUBLE_EQ(b.llmOnlySeconds, sim::toSeconds(60));
    EXPECT_DOUBLE_EQ(b.toolOnlySeconds, sim::toSeconds(60));
    EXPECT_NEAR(b.otherSeconds, 0.0, 1e-12);
}

TEST(TraceAlgebra, EmptySpans)
{
    const auto b = agents::breakdownSpans({}, 0, 1000);
    EXPECT_DOUBLE_EQ(b.llmOnlySeconds, 0.0);
    EXPECT_DOUBLE_EQ(b.otherSeconds, sim::toSeconds(1000));
}

// ---------------------------------------------------------------
// Prompt builder bookkeeping.
// ---------------------------------------------------------------

TEST(PromptBuilder, BreakdownMatchesContent)
{
    using agents::PromptBuilder;
    using agents::SegmentKind;
    const auto instr = workload::makeTokens(1, 10);
    const auto user = workload::makeTokens(2, 5);
    const auto hist = workload::makeTokens(3, 7);
    PromptBuilder b;
    b.add(SegmentKind::Instruction, instr)
        .add(SegmentKind::User, user)
        .add(SegmentKind::LlmHistory, hist);
    const auto prompt = b.build();
    EXPECT_EQ(prompt.tokens.size(), 22u);
    EXPECT_EQ(prompt.breakdown.instruction, 10);
    EXPECT_EQ(prompt.breakdown.user, 5);
    EXPECT_EQ(prompt.breakdown.llmHistory, 7);
    EXPECT_EQ(prompt.breakdown.inputTotal(), 22);
    // Order preserved: instruction tokens first.
    EXPECT_EQ(prompt.tokens[0], instr[0]);
    EXPECT_EQ(prompt.tokens[10], user[0]);
}

TEST(TrajectoryMemory, CountsAndClear)
{
    using agents::SegmentKind;
    agents::TrajectoryMemory mem;
    mem.append(SegmentKind::LlmHistory, workload::makeTokens(1, 4));
    mem.append(SegmentKind::ToolHistory, workload::makeTokens(2, 6));
    mem.append(SegmentKind::LlmHistory, workload::makeTokens(3, 2));
    EXPECT_EQ(mem.tokenCount(SegmentKind::LlmHistory), 6);
    EXPECT_EQ(mem.tokenCount(SegmentKind::ToolHistory), 6);
    EXPECT_EQ(mem.totalTokens(), 12);
    mem.clear();
    EXPECT_EQ(mem.totalTokens(), 0);
}

TEST(PerfModel, PerSequenceOverheadScalesWithBatch)
{
    llm::PerfModel model(llm::llama31_8b(), llm::singleA100());
    llm::StepWork one;
    one.decodeContexts = {100};
    llm::StepWork many = one;
    for (int i = 0; i < 99; ++i)
        many.decodeContexts.push_back(100);
    const double t1 = model.stepCost(one).seconds;
    const double t100 = model.stepCost(many).seconds;
    // The batch costs at least the extra per-sequence overhead.
    EXPECT_GE(t100 - t1,
              99 * model.node().perSeqOverheadSec - 1e-9);
}

} // namespace
