/**
 * @file
 * Integration tests of the experiment harness: single-request probes,
 * the serving system, table rendering, and the energy projections.
 */

#include <gtest/gtest.h>

#include "core/probe.hh"
#include "core/serving_system.hh"
#include "core/table.hh"
#include "energy/projection.hh"

namespace
{

using namespace agentsim;
using agents::AgentKind;
using core::ProbeConfig;
using core::ServeConfig;
using workload::Benchmark;

ProbeConfig
probeCfg(AgentKind agent, Benchmark bench, int tasks = 6)
{
    ProbeConfig cfg;
    cfg.agent = agent;
    cfg.bench = bench;
    cfg.engineConfig = core::enginePreset8b();
    cfg.numTasks = tasks;
    return cfg;
}

TEST(Probe, ReactProducesFullMeasurements)
{
    const auto r = core::runProbe(probeCfg(AgentKind::ReAct,
                                           Benchmark::HotpotQA));
    ASSERT_EQ(r.requests.size(), 6u);
    for (const auto &req : r.requests) {
        EXPECT_GT(req.result.e2eSeconds, 0.0);
        EXPECT_GT(req.energyWh, 0.0);
        EXPECT_GT(req.gpuBusySeconds, 0.0);
        EXPECT_LE(req.gpuBusySeconds, req.result.e2eSeconds + 1e-9);
        EXPECT_GT(req.kvAvgBytes, 0.0);
        EXPECT_GE(req.kvMaxBytes, req.kvAvgBytes);
        EXPECT_GT(req.flops, 0.0);
    }
    EXPECT_GT(r.meanLlmCalls(), 1.0);
    EXPECT_GT(r.meanGpuIdleFraction(), 0.0);
    EXPECT_LT(r.meanGpuIdleFraction(), 1.0);
}

TEST(Probe, CotHasNoIdleFromTools)
{
    const auto cot =
        core::runProbe(probeCfg(AgentKind::CoT, Benchmark::HotpotQA));
    const auto react = core::runProbe(
        probeCfg(AgentKind::ReAct, Benchmark::HotpotQA));
    // Tool waits idle the GPU: ReAct idles more than CoT (Fig 6).
    EXPECT_LT(cot.meanGpuIdleFraction(),
              react.meanGpuIdleFraction());
}

TEST(Probe, DeterministicAcrossRuns)
{
    const auto a = core::runProbe(probeCfg(AgentKind::Reflexion,
                                           Benchmark::Math, 4));
    const auto b = core::runProbe(probeCfg(AgentKind::Reflexion,
                                           Benchmark::Math, 4));
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.requests[i].result.e2eSeconds,
                         b.requests[i].result.e2eSeconds);
        EXPECT_DOUBLE_EQ(a.requests[i].energyWh,
                         b.requests[i].energyWh);
    }
    EXPECT_DOUBLE_EQ(a.accuracy(), b.accuracy());
}

TEST(Probe, UnsupportedPairIsFatal)
{
    EXPECT_DEATH(
        {
            core::runProbe(
                probeCfg(AgentKind::CoT, Benchmark::WebShop, 1));
        },
        "does not evaluate");
}

TEST(Probe, SeventyBUsesMoreEnergyPerRequest)
{
    auto small = probeCfg(AgentKind::CoT, Benchmark::HotpotQA, 4);
    auto big = small;
    big.engineConfig = core::enginePreset70b();
    const auto r8 = core::runProbe(small);
    const auto r70 = core::runProbe(big);
    EXPECT_GT(r70.meanEnergyWh(), 3.0 * r8.meanEnergyWh());
}

TEST(Serving, ChatbotOpenLoopCompletes)
{
    ServeConfig cfg;
    cfg.chatbot = true;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 2.0;
    cfg.numRequests = 40;
    const auto r = core::runServing(cfg);
    EXPECT_EQ(r.completed, 40);
    EXPECT_GT(r.makespanSeconds, 0.0);
    EXPECT_GT(r.p95(), r.p50() * 0.99);
    EXPECT_GT(r.throughputQps(), 0.5);
}

TEST(Serving, AgentClosedLoopSequential)
{
    ServeConfig cfg;
    cfg.agent = AgentKind::ReAct;
    cfg.bench = Benchmark::WebShop;
    cfg.engineConfig = core::enginePreset8b();
    cfg.closedLoop = true;
    cfg.numRequests = 5;
    const auto r = core::runServing(cfg);
    EXPECT_EQ(r.completed, 5);
    // Sequential: makespan is the sum of latencies.
    EXPECT_NEAR(r.makespanSeconds, r.e2eSeconds.sum(), 1e-6);
}

TEST(Serving, ConcurrencyBeatsSequentialThroughput)
{
    ServeConfig seq;
    seq.agent = AgentKind::ReAct;
    seq.bench = Benchmark::HotpotQA;
    seq.engineConfig = core::enginePreset8b();
    seq.closedLoop = true;
    seq.numRequests = 8;
    const auto r_seq = core::runServing(seq);

    ServeConfig con = seq;
    con.closedLoop = false;
    con.qps = 2.0;
    const auto r_con = core::runServing(con);

    // Paper §IV-C: concurrency raises throughput substantially at
    // some latency cost.
    EXPECT_GT(r_con.throughputQps(), 2.0 * r_seq.throughputQps());
    EXPECT_GT(r_con.e2eSeconds.mean(), r_seq.e2eSeconds.mean());
}

TEST(Serving, PrefixCachingRaisesHitRate)
{
    ServeConfig cfg;
    cfg.agent = AgentKind::ReAct;
    cfg.bench = Benchmark::WebShop;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 1.0;
    cfg.numRequests = 20;
    const auto with = core::runServing(cfg);
    EXPECT_GT(with.cacheHitRate, 0.3);

    cfg.engineConfig.enablePrefixCaching = false;
    const auto without = core::runServing(cfg);
    EXPECT_DOUBLE_EQ(without.cacheHitRate, 0.0);
    // Caching reduces tail latency under identical load.
    EXPECT_LE(with.p95(), without.p95());
}

TEST(Serving, DeterministicAcrossRuns)
{
    ServeConfig cfg;
    cfg.chatbot = true;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 3.0;
    cfg.numRequests = 30;
    const auto a = core::runServing(cfg);
    const auto b = core::runServing(cfg);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.p95(), b.p95());
    EXPECT_DOUBLE_EQ(a.energyWh, b.energyWh);
}

TEST(Table, RendersAlignedCells)
{
    core::Table t("Demo");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22222"});
    const auto text = t.render();
    EXPECT_NE(text.find("Demo"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22222"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(core::fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(core::fmtPercent(0.1234), "12.3%");
    EXPECT_EQ(core::fmtSeconds(0.0005), "500 us");
    EXPECT_EQ(core::fmtSeconds(0.5), "500.0 ms");
    EXPECT_EQ(core::fmtSeconds(12.0), "12.00 s");
    EXPECT_EQ(core::fmtCount(5.0), "5");
    EXPECT_EQ(core::fmtEng(1.5e9, "W"), "1.50 GW");
}

TEST(Energy, ProjectionMath)
{
    // Paper Table III: 0.32 Wh/query at 71.4 M queries/day ~ 1.0 MW.
    const double watts = energy::datacenterPowerWatts(
        0.32, energy::chatGptDailyQueries);
    EXPECT_NEAR(watts / 1e6, 0.95, 0.05);
    // Reflexion 70B at Google scale ~ 198.9 GW.
    const double reflexion70 = energy::datacenterPowerWatts(
        348.41, energy::googleDailyQueries);
    EXPECT_NEAR(reflexion70 / 1e9, 198.9, 1.0);
    // Reflexion 8B daily energy at ChatGPT scale ~ 2.97 GWh.
    EXPECT_NEAR(energy::dailyEnergyGWh(41.53,
                                       energy::chatGptDailyQueries),
                2.97, 0.05);
}

TEST(Energy, WauSeriesIsMonotone)
{
    const auto series = energy::chatGptWauSeries();
    ASSERT_GE(series.size(), 4u);
    for (std::size_t i = 1; i < series.size(); ++i)
        EXPECT_GT(series[i].millions, series[i - 1].millions);
    EXPECT_DOUBLE_EQ(series.back().millions, 500.0);
}

} // namespace
