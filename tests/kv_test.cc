/**
 * @file
 * Unit and property tests for the paged KV-cache block manager:
 * allocation, prefix-cache hits, refcounting, LRU eviction, and
 * invariant preservation under randomized workloads.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "kv/block_manager.hh"
#include "sim/rng.hh"

namespace
{

using namespace agentsim;
using kv::BlockManager;
using kv::BlockManagerConfig;
using kv::TokenId;

std::vector<TokenId>
tokenRange(TokenId start, std::size_t n)
{
    std::vector<TokenId> v(n);
    std::iota(v.begin(), v.end(), start);
    return v;
}

BlockManagerConfig
cfg(std::int64_t blocks, int block_size = 16, bool prefix = true,
    std::int64_t host_blocks = 0)
{
    BlockManagerConfig c;
    c.numBlocks = blocks;
    c.blockSize = block_size;
    c.enablePrefixCaching = prefix;
    c.hostCacheBlocks = host_blocks;
    return c;
}

TEST(BlockManager, AllocateAndRelease)
{
    BlockManager mgr(cfg(100));
    const auto prompt = tokenRange(0, 50); // 4 blocks (3 full + partial)
    auto alloc = mgr.allocatePrompt(1, prompt);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->cachedTokens, 0);
    EXPECT_EQ(alloc->freshBlocks, 4);
    EXPECT_EQ(mgr.usedBlocks(), 4);
    EXPECT_EQ(mgr.freeBlocks(), 96);
    mgr.release(1);
    EXPECT_EQ(mgr.usedBlocks(), 0);
    // The 3 full blocks stay cached (evictable); the partial one is
    // returned to the free list.
    EXPECT_EQ(mgr.evictableBlocks(), 3);
    EXPECT_EQ(mgr.freeBlocks(), 97);
    mgr.checkInvariants();
}

TEST(BlockManager, BlocksNeededRoundsUp)
{
    BlockManager mgr(cfg(10, 16));
    EXPECT_EQ(mgr.blocksNeeded(1), 1);
    EXPECT_EQ(mgr.blocksNeeded(16), 1);
    EXPECT_EQ(mgr.blocksNeeded(17), 2);
    EXPECT_EQ(mgr.blocksNeeded(0), 0);
}

TEST(BlockManager, PrefixHitOnIdenticalPrompt)
{
    BlockManager mgr(cfg(100));
    const auto prompt = tokenRange(0, 64); // exactly 4 full blocks
    ASSERT_TRUE(mgr.allocatePrompt(1, prompt).has_value());
    auto second = mgr.allocatePrompt(2, prompt);
    ASSERT_TRUE(second.has_value());
    // All four blocks are shared with the live first sequence.
    EXPECT_EQ(second->cachedTokens, 64);
    EXPECT_EQ(second->freshBlocks, 0);
    EXPECT_EQ(mgr.usedBlocks(), 4);
    mgr.checkInvariants();
}

TEST(BlockManager, PrefixHitAfterRelease)
{
    BlockManager mgr(cfg(100));
    const auto prompt = tokenRange(0, 64);
    ASSERT_TRUE(mgr.allocatePrompt(1, prompt).has_value());
    mgr.release(1);
    auto second = mgr.allocatePrompt(2, prompt);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->cachedTokens, 64);
    EXPECT_EQ(mgr.stats().evictions, 0);
    mgr.checkInvariants();
}

TEST(BlockManager, PartialPrefixHit)
{
    BlockManager mgr(cfg(100));
    auto a = tokenRange(0, 64);
    // b shares the first 32 tokens (2 blocks), then diverges.
    auto b = tokenRange(0, 32);
    const auto tail = tokenRange(1000, 32);
    b.insert(b.end(), tail.begin(), tail.end());
    ASSERT_TRUE(mgr.allocatePrompt(1, a).has_value());
    auto alloc_b = mgr.allocatePrompt(2, b);
    ASSERT_TRUE(alloc_b.has_value());
    EXPECT_EQ(alloc_b->cachedTokens, 32);
    EXPECT_EQ(alloc_b->freshBlocks, 2);
    mgr.checkInvariants();
}

TEST(BlockManager, NoHitsWithCachingDisabled)
{
    BlockManager mgr(cfg(100, 16, false));
    const auto prompt = tokenRange(0, 64);
    ASSERT_TRUE(mgr.allocatePrompt(1, prompt).has_value());
    mgr.release(1);
    auto second = mgr.allocatePrompt(2, prompt);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->cachedTokens, 0);
    EXPECT_EQ(mgr.stats().hitTokens, 0);
    // Without caching, released blocks go straight to the free list.
    EXPECT_EQ(mgr.evictableBlocks(), 0);
    mgr.checkInvariants();
}

TEST(BlockManager, PartialLastBlockNeverCached)
{
    BlockManager mgr(cfg(100));
    const auto prompt = tokenRange(0, 40); // 2 full + 1 partial
    ASSERT_TRUE(mgr.allocatePrompt(1, prompt).has_value());
    mgr.release(1);
    auto second = mgr.allocatePrompt(2, prompt);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->cachedTokens, 32); // only the full blocks
    mgr.checkInvariants();
}

TEST(BlockManager, AllocationFailsWhenPoolExhausted)
{
    BlockManager mgr(cfg(4));
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 64)).has_value());
    // Different content: no hits possible, needs 4 fresh blocks.
    EXPECT_FALSE(mgr.allocatePrompt(2, tokenRange(5000, 64)).has_value());
    // Failure must not leak state.
    mgr.checkInvariants();
    EXPECT_EQ(mgr.usedBlocks(), 4);
    mgr.release(1);
    EXPECT_TRUE(mgr.allocatePrompt(2, tokenRange(5000, 64)).has_value());
    mgr.checkInvariants();
}

TEST(BlockManager, EvictionRecyclesCachedBlocks)
{
    BlockManager mgr(cfg(4));
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 64)).has_value());
    mgr.release(1); // 4 blocks now evictable
    EXPECT_EQ(mgr.evictableBlocks(), 4);
    ASSERT_TRUE(mgr.allocatePrompt(2, tokenRange(9000, 64)).has_value());
    EXPECT_EQ(mgr.stats().evictions, 4);
    mgr.checkInvariants();
}

TEST(BlockManager, LruEvictsOldestFirst)
{
    BlockManager mgr(cfg(8));
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 64)).has_value());
    ASSERT_TRUE(mgr.allocatePrompt(2, tokenRange(1000, 64)).has_value());
    mgr.release(1); // older
    mgr.release(2); // newer
    // Need 4 fresh blocks: evicts seq 1's blocks (oldest).
    ASSERT_TRUE(mgr.allocatePrompt(3, tokenRange(2000, 64)).has_value());
    // Seq 2's prefix must still be cached.
    auto again = mgr.allocatePrompt(4, tokenRange(1000, 64));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->cachedTokens, 64);
    mgr.checkInvariants();
}

TEST(BlockManager, AppendTokenCrossesBlockBoundary)
{
    BlockManager mgr(cfg(10, 16));
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 16)).has_value());
    EXPECT_EQ(mgr.usedBlocks(), 1);
    // Token 17 needs a second block.
    EXPECT_TRUE(mgr.appendToken(1, 100));
    EXPECT_EQ(mgr.usedBlocks(), 2);
    EXPECT_EQ(mgr.seqTokens(1), 17);
    mgr.checkInvariants();
}

TEST(BlockManager, AppendFailsWhenOutOfBlocks)
{
    BlockManager mgr(cfg(1, 16));
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 16)).has_value());
    EXPECT_FALSE(mgr.appendToken(1, 100));
    mgr.checkInvariants();
}

TEST(BlockManager, GeneratedBlocksBecomeCached)
{
    BlockManager mgr(cfg(50, 16));
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 16)).has_value());
    // Generate 16 tokens to fill a second block.
    for (TokenId t = 500; t < 516; ++t)
        ASSERT_TRUE(mgr.appendToken(1, t));
    mgr.release(1);
    // A new prompt equal to prompt+generation should fully hit.
    auto full = tokenRange(0, 16);
    const auto gen = tokenRange(500, 16);
    full.insert(full.end(), gen.begin(), gen.end());
    auto alloc = mgr.allocatePrompt(2, full);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->cachedTokens, 32);
    mgr.checkInvariants();
}

TEST(BlockManager, HitRateStatistic)
{
    BlockManager mgr(cfg(100));
    const auto prompt = tokenRange(0, 64);
    ASSERT_TRUE(mgr.allocatePrompt(1, prompt).has_value());
    ASSERT_TRUE(mgr.allocatePrompt(2, prompt).has_value());
    // 128 full-block tokens probed, 64 hit.
    EXPECT_EQ(mgr.stats().lookupTokens, 128);
    EXPECT_EQ(mgr.stats().hitTokens, 64);
    EXPECT_DOUBLE_EQ(mgr.stats().hitRate(), 0.5);
}

TEST(BlockManager, SharedPrefixAcrossParallelSequences)
{
    // Models LATS expanding many children with a common prompt: the
    // shared prefix occupies one set of blocks regardless of fanout.
    BlockManager mgr(cfg(100));
    const auto prompt = tokenRange(0, 64);
    for (kv::SeqId s = 1; s <= 8; ++s)
        ASSERT_TRUE(mgr.allocatePrompt(s, prompt).has_value());
    EXPECT_EQ(mgr.usedBlocks(), 4); // not 32
    for (kv::SeqId s = 1; s <= 8; ++s)
        mgr.release(s);
    mgr.checkInvariants();
}

TEST(BlockManager, DivergingGenerationsKeepPrivateBlocks)
{
    BlockManager mgr(cfg(100, 16));
    const auto prompt = tokenRange(0, 32);
    ASSERT_TRUE(mgr.allocatePrompt(1, prompt).has_value());
    ASSERT_TRUE(mgr.allocatePrompt(2, prompt).has_value());
    EXPECT_EQ(mgr.usedBlocks(), 2);
    // Each generates different tokens: private third blocks.
    ASSERT_TRUE(mgr.appendToken(1, 111));
    ASSERT_TRUE(mgr.appendToken(2, 222));
    EXPECT_EQ(mgr.usedBlocks(), 4);
    mgr.checkInvariants();
}

// Regression: a HostRestore entry preceding a GpuHit entry in the
// same allocatePrompt commit used to acquire its fresh block while the
// hit block was still on the eviction list; with an empty free list
// the eviction could pick the to-be-reused hit block as the victim,
// aliasing one physical block into two sequence positions (and, in
// longer runs, tripping the "idle cached block not on LRU" assert).
TEST(BlockManager, RestoreMustNotEvictPendingHit)
{
    // Pool of 2 blocks, host tier on.
    BlockManager mgr(cfg(2, 16, true, 4));
    const auto shared = tokenRange(0, 32); // 2 full blocks: h0, h1

    // Publish h0 + h1, then park both on the eviction list
    // (h0 older than h1).
    ASSERT_TRUE(mgr.allocatePrompt(1, shared).has_value());
    mgr.release(1);
    EXPECT_EQ(mgr.evictableBlocks(), 2);
    EXPECT_EQ(mgr.freeBlocks(), 0);

    // One fresh block of different content evicts h0's block (LRU),
    // spilling h0 to the host tier; h1 stays GPU-cached.
    ASSERT_TRUE(mgr.allocatePrompt(2, tokenRange(9000, 16)).has_value());
    EXPECT_EQ(mgr.stats().evictions, 1);
    EXPECT_EQ(mgr.hostCachedBlocks(), 1);
    mgr.release(2);

    // Free list is empty; eviction list holds h1's block (older key)
    // and seq 2's block (newer). Re-allocating the shared prompt
    // probes h0 as a host restore followed by h1 as a GPU hit. The
    // restore's fresh block must NOT come from evicting h1's block.
    EXPECT_EQ(mgr.freeBlocks(), 0);
    auto alloc = mgr.allocatePrompt(3, shared);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->restoredTokens, 16);
    EXPECT_EQ(alloc->cachedTokens, 16);
    // Two distinct physical blocks must back the two positions.
    EXPECT_EQ(mgr.usedBlocks(), 2);
    mgr.checkInvariants();
    mgr.release(3);
    mgr.checkInvariants();
    EXPECT_EQ(mgr.usedBlocks(), 0);
}

// Same hazard at three blocks: restore at position 0, hits at 1 and 2.
TEST(BlockManager, RestoreEvictionSkipsAllPendingHits)
{
    BlockManager mgr(cfg(3, 16, true, 4));
    const auto shared = tokenRange(0, 48); // h0, h1, h2
    ASSERT_TRUE(mgr.allocatePrompt(1, shared).has_value());
    mgr.release(1);
    // Evict h0's block only.
    ASSERT_TRUE(mgr.allocatePrompt(2, tokenRange(9000, 16)).has_value());
    EXPECT_EQ(mgr.stats().evictions, 1);
    mgr.release(2);
    EXPECT_EQ(mgr.freeBlocks(), 0);

    auto alloc = mgr.allocatePrompt(3, shared);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->restoredTokens, 16);
    EXPECT_EQ(alloc->cachedTokens, 32);
    EXPECT_EQ(mgr.usedBlocks(), 3);
    mgr.checkInvariants();
    mgr.release(3);
    mgr.checkInvariants();
}

// Property test: randomized allocate/append/release sequences keep all
// internal invariants and never lose blocks.
class BlockManagerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BlockManagerFuzz, InvariantsHoldUnderRandomWorkload)
{
    sim::Rng rng(GetParam(), "kv-fuzz", 0);
    BlockManager mgr(cfg(64, 8));
    std::vector<kv::SeqId> live;
    kv::SeqId next_id = 1;

    for (int step = 0; step < 2000; ++step) {
        const double action = rng.uniform();
        if (action < 0.4) {
            // Allocate a prompt; half the time reuse a popular prefix.
            const bool popular = rng.bernoulli(0.5);
            const TokenId base =
                popular ? 0
                        : static_cast<TokenId>(
                              rng.uniformInt(1, 1000) * 10000);
            const auto len =
                static_cast<std::size_t>(rng.uniformInt(1, 80));
            const auto prompt = tokenRange(base, len);
            const kv::SeqId id = next_id++;
            if (mgr.allocatePrompt(id, prompt).has_value())
                live.push_back(id);
        } else if (action < 0.8 && !live.empty()) {
            const auto idx = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            const TokenId t = static_cast<TokenId>(rng.next());
            mgr.appendToken(live[idx], t); // may fail; that's fine
        } else if (!live.empty()) {
            const auto idx = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            mgr.release(live[idx]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        if (step % 50 == 0)
            mgr.checkInvariants();
    }
    for (kv::SeqId id : live)
        mgr.release(id);
    mgr.checkInvariants();
    EXPECT_EQ(mgr.usedBlocks(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockManagerFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 1234));

// Host-tier fuzz: the same randomized workload over a tight pool with
// the spill tier on, so restore-plus-hit commits (the aliasing bug
// class above) occur under an empty free list. Invariants are checked
// after every allocation.
class BlockManagerHostFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BlockManagerHostFuzz, InvariantsHoldWithHostTier)
{
    sim::Rng rng(GetParam(), "kv-host-fuzz", 0);
    BlockManager mgr(cfg(24, 8, true, 32));
    std::vector<kv::SeqId> live;
    kv::SeqId next_id = 1;

    for (int step = 0; step < 3000; ++step) {
        const double action = rng.uniform();
        if (action < 0.5) {
            // Mostly popular prefixes so hits and restores interleave.
            const bool popular = rng.bernoulli(0.7);
            const TokenId base =
                popular ? static_cast<TokenId>(
                              rng.uniformInt(0, 2) * 100000)
                        : static_cast<TokenId>(
                              rng.uniformInt(1, 1000) * 10000);
            const auto len =
                static_cast<std::size_t>(rng.uniformInt(1, 64));
            const kv::SeqId id = next_id++;
            if (mgr.allocatePrompt(id, tokenRange(base, len))
                    .has_value()) {
                live.push_back(id);
            }
            mgr.checkInvariants();
        } else if (action < 0.75 && !live.empty()) {
            const auto idx = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            mgr.appendToken(live[idx],
                            static_cast<TokenId>(rng.next()));
        } else if (!live.empty()) {
            const auto idx = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            mgr.release(live[idx]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
    }
    for (kv::SeqId id : live)
        mgr.release(id);
    mgr.checkInvariants();
    EXPECT_EQ(mgr.usedBlocks(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockManagerHostFuzz,
                         ::testing::Values(1, 2, 3, 7, 42, 2026));

BlockManagerConfig
tierCfg(std::int64_t blocks, std::int64_t dram_blocks,
        std::int64_t nvme_blocks = 0, int block_size = 16)
{
    BlockManagerConfig c = cfg(blocks, block_size, true, dram_blocks);
    c.nvmeCacheBlocks = nvme_blocks;
    return c;
}

// Regression (tier residency): an Exclusive-mode restore must reclaim
// the tier entry. The pre-fix restore path left the DRAM copy behind
// with untouched recency — a stale duplicate wasting tier capacity.
TEST(BlockManagerTiers, ExclusiveRestoreReclaimsTierEntry)
{
    BlockManager mgr(tierCfg(4, 4)); // Exclusive is the default
    const auto shared = tokenRange(0, 32); // 2 full blocks
    ASSERT_TRUE(mgr.allocatePrompt(1, shared).has_value());
    mgr.release(1);
    EXPECT_EQ(mgr.parkChain(shared), 2);
    EXPECT_EQ(mgr.hostCachedBlocks(), 2);
    EXPECT_EQ(mgr.freeBlocks(), 4);

    auto alloc = mgr.allocatePrompt(2, shared);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->restoredTokens, 32);
    EXPECT_EQ(alloc->dramRestoredTokens, 32);
    EXPECT_EQ(alloc->nvmeRestoredTokens, 0);
    // Exclusive: both tier entries were consumed by the restore.
    EXPECT_EQ(mgr.hostCachedBlocks(), 0);
    EXPECT_EQ(mgr.stats().dram.restoredTokens, 32);
    mgr.checkInvariants();
}

// Regression (tier recency): an Inclusive-mode restore keeps the tier
// copy but must refresh its recency, so a restored-and-reused entry
// outlives colder ones. Pre-fix, the untouched entry stayed oldest and
// was evicted first despite being the hottest.
TEST(BlockManagerTiers, InclusiveRestoreRefreshesRecency)
{
    BlockManagerConfig c = tierCfg(8, 2);
    c.dramMode = kv::TierMode::Inclusive;
    BlockManager mgr(c);
    const auto a = tokenRange(0, 16);
    const auto b = tokenRange(1000, 16);
    const auto d = tokenRange(2000, 16);

    ASSERT_TRUE(mgr.allocatePrompt(1, a).has_value());
    mgr.release(1);
    EXPECT_EQ(mgr.parkChain(a), 1); // DRAM: {a}
    ASSERT_TRUE(mgr.allocatePrompt(2, b).has_value());
    mgr.release(2);
    EXPECT_EQ(mgr.parkChain(b), 1); // DRAM: {a, b}, a older

    // Restoring a refreshes its recency (Inclusive keeps the copy).
    auto ra = mgr.allocatePrompt(3, a);
    ASSERT_TRUE(ra.has_value());
    EXPECT_EQ(ra->dramRestoredTokens, 16);
    EXPECT_EQ(mgr.hostCachedBlocks(), 2);
    mgr.release(3);

    // A third parked chain hits DRAM capacity: the victim must be b
    // (now the coldest), not the just-restored a.
    ASSERT_TRUE(mgr.allocatePrompt(4, d).has_value());
    mgr.release(4);
    EXPECT_EQ(mgr.parkChain(d), 1);
    EXPECT_EQ(mgr.stats().dram.evictedBlocks, 1);

    auto rb = mgr.allocatePrompt(5, b);
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(rb->restoredTokens, 0); // b fell out of the hierarchy
    EXPECT_EQ(rb->freshBlocks, 1);
    mgr.checkInvariants();
}

// Regression (honest preload contract): -1 is reserved for a prefix
// that can never fit; a preload that stops early returns the count of
// blocks actually placed.
TEST(BlockManager, PreloadPrefixMinusOneOnlyWhenImpossible)
{
    BlockManager mgr(cfg(4));
    // 5 full blocks can never fit a 4-block pool.
    EXPECT_EQ(mgr.preloadPrefix(tokenRange(0, 80)), -1);
    EXPECT_EQ(mgr.evictableBlocks(), 0);
    // 4 full blocks + a partial tail fit exactly (the partial block is
    // not preloaded).
    EXPECT_EQ(mgr.preloadPrefix(tokenRange(0, 72)), 4);
    mgr.checkInvariants();
}

// Regression (preload self-eviction): filling the pool mid-preload
// must stop with a contiguous resident head, not evict the blocks the
// loop itself just placed. Pre-fix, the 4-block preload below
// "populated" all 4 by cannibalizing its own head, leaving only the
// tail resident — which no prefix probe can ever reach.
TEST(BlockManager, PreloadPrefixStopsAtPinnedPool)
{
    BlockManager mgr(cfg(4));
    // Pin half the pool with a live sequence.
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(9000, 32)).has_value());
    EXPECT_EQ(mgr.preloadPrefix(tokenRange(0, 64)), 2);
    // Nothing was evicted to make room: the loop stopped instead of
    // un-placing its own blocks, so the resident run is the *head*.
    EXPECT_EQ(mgr.stats().evictions, 0);
    EXPECT_EQ(mgr.usedBlocks(), 2);
    auto head = mgr.allocatePrompt(2, tokenRange(0, 32));
    ASSERT_TRUE(head.has_value());
    EXPECT_EQ(head->cachedTokens, 32);
    EXPECT_EQ(head->freshBlocks, 0);
    mgr.checkInvariants();
}

TEST(BlockManagerTiers, DramVictimSinksToNvme)
{
    BlockManager mgr(tierCfg(4, 1, 4));
    const auto a = tokenRange(0, 16);
    const auto b = tokenRange(1000, 16);
    ASSERT_TRUE(mgr.allocatePrompt(1, a).has_value());
    mgr.release(1);
    EXPECT_EQ(mgr.parkChain(a), 1); // DRAM: {a}
    ASSERT_TRUE(mgr.allocatePrompt(2, b).has_value());
    mgr.release(2);
    EXPECT_EQ(mgr.parkChain(b), 1); // a sinks: DRAM {b}, NVMe {a}
    EXPECT_EQ(mgr.hostCachedBlocks(), 1);
    EXPECT_EQ(mgr.nvmeCachedBlocks(), 1);
    EXPECT_EQ(mgr.stats().dram.evictedBlocks, 1);
    EXPECT_EQ(mgr.stats().nvme.demotedBlocks, 1);

    auto ra = mgr.allocatePrompt(3, a);
    ASSERT_TRUE(ra.has_value());
    EXPECT_EQ(ra->nvmeRestoredTokens, 16);
    EXPECT_EQ(ra->dramRestoredTokens, 0);
    auto rb = mgr.allocatePrompt(4, b);
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(rb->dramRestoredTokens, 16);
    mgr.checkInvariants();
}

TEST(BlockManagerTiers, NvmeOnlyTierTakesHbmEvictions)
{
    BlockManager mgr(tierCfg(2, 0, 8));
    const auto shared = tokenRange(0, 32);
    ASSERT_TRUE(mgr.allocatePrompt(1, shared).has_value());
    mgr.release(1);
    // Different content evicts both shared blocks straight into NVMe.
    ASSERT_TRUE(mgr.allocatePrompt(2, tokenRange(9000, 32)).has_value());
    EXPECT_EQ(mgr.hostCachedBlocks(), 0);
    EXPECT_EQ(mgr.nvmeCachedBlocks(), 2);
    mgr.release(2);

    auto alloc = mgr.allocatePrompt(3, shared);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->nvmeRestoredTokens, 32);
    EXPECT_EQ(alloc->dramRestoredTokens, 0);
    mgr.checkInvariants();
}

// A block resident in both tiers restores from DRAM (the cheaper
// transfer): the probe order is GPU, then DRAM, then NVMe.
TEST(BlockManagerTiers, DualResidencyRestoresFromDram)
{
    BlockManagerConfig c = tierCfg(4, 1, 4);
    c.nvmeMode = kv::TierMode::Inclusive;
    BlockManager mgr(c);
    const auto a = tokenRange(0, 16);
    const auto b = tokenRange(1000, 16);
    ASSERT_TRUE(mgr.allocatePrompt(1, a).has_value());
    mgr.release(1);
    EXPECT_EQ(mgr.parkChain(a), 1); // DRAM {a}
    ASSERT_TRUE(mgr.allocatePrompt(2, b).has_value());
    mgr.release(2);
    EXPECT_EQ(mgr.parkChain(b), 1); // DRAM {b}, NVMe {a}

    // Restore a from NVMe; Inclusive keeps the NVMe copy.
    auto ra = mgr.allocatePrompt(3, a);
    ASSERT_TRUE(ra.has_value());
    EXPECT_EQ(ra->nvmeRestoredTokens, 16);
    EXPECT_EQ(mgr.nvmeCachedBlocks(), 1);
    mgr.release(3);

    // Re-parking a puts it back in DRAM: now dual-resident.
    EXPECT_EQ(mgr.parkChain(a), 1);
    EXPECT_EQ(mgr.hostCachedBlocks(), 1);
    EXPECT_EQ(mgr.nvmeCachedBlocks(), 2); // b sank, a still there

    auto again = mgr.allocatePrompt(4, a);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->dramRestoredTokens, 16);
    EXPECT_EQ(again->nvmeRestoredTokens, 0);
    mgr.checkInvariants();
}

TEST(BlockManagerTiers, ZeroAdmitProbRejectsEveryVictim)
{
    BlockManagerConfig c = tierCfg(2, 4);
    c.dramAdmitProb = 0.0;
    BlockManager mgr(c);
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 32)).has_value());
    mgr.release(1);
    ASSERT_TRUE(mgr.allocatePrompt(2, tokenRange(9000, 32)).has_value());
    EXPECT_EQ(mgr.stats().evictions, 2);
    EXPECT_EQ(mgr.hostCachedBlocks(), 0);
    EXPECT_EQ(mgr.stats().dram.rejectedBlocks, 2);
    EXPECT_EQ(mgr.stats().dram.demotedBlocks, 0);
    mgr.checkInvariants();
}

// Probabilistic admission draws from a dedicated seeded stream: two
// managers with the same seed make identical admit/reject decisions.
TEST(BlockManagerTiers, ProbabilisticAdmissionIsSeedDeterministic)
{
    BlockManagerConfig c = tierCfg(2, 8);
    c.dramAdmitProb = 0.5;
    c.seed = 7;
    BlockManager a(c);
    BlockManager b(c);
    for (int i = 0; i < 20; ++i) {
        const auto prompt =
            tokenRange(static_cast<TokenId>(i) * 10000, 32);
        ASSERT_TRUE(a.allocatePrompt(1, prompt).has_value());
        a.release(1);
        ASSERT_TRUE(b.allocatePrompt(1, prompt).has_value());
        b.release(1);
    }
    EXPECT_EQ(a.hostCachedBlocks(), b.hostCachedBlocks());
    EXPECT_EQ(a.stats().dram.demotedBlocks,
              b.stats().dram.demotedBlocks);
    EXPECT_EQ(a.stats().dram.rejectedBlocks,
              b.stats().dram.rejectedBlocks);
    // The filter actually fired both ways at p = 0.5 over 38 draws.
    EXPECT_GT(a.stats().dram.demotedBlocks, 0);
    EXPECT_GT(a.stats().dram.rejectedBlocks, 0);
    a.checkInvariants();
    b.checkInvariants();
}

TEST(BlockManagerTiers, ParkChainFreesGpuAndPrefetchRestores)
{
    BlockManager mgr(tierCfg(4, 8));
    const auto chain = tokenRange(0, 64); // 4 full blocks
    ASSERT_TRUE(mgr.allocatePrompt(1, chain).has_value());
    mgr.release(1);
    EXPECT_EQ(mgr.parkChain(chain), 4);
    EXPECT_EQ(mgr.freeBlocks(), 4);
    EXPECT_EQ(mgr.hostCachedBlocks(), 4);
    EXPECT_EQ(mgr.stats().dram.demotedBlocks, 4);

    const kv::PrefetchResult pf = mgr.prefetchChain(chain);
    EXPECT_EQ(pf.blocks, 4);
    EXPECT_EQ(pf.dramTokens, 64);
    EXPECT_EQ(pf.nvmeTokens, 0);
    EXPECT_EQ(mgr.hostCachedBlocks(), 0); // Exclusive reclaim

    // The continuation now hits the GPU cache with no restore charge.
    auto alloc = mgr.allocatePrompt(2, chain);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->cachedTokens, 64);
    EXPECT_EQ(alloc->restoredTokens, 0);
    EXPECT_EQ(alloc->freshBlocks, 0);
    mgr.checkInvariants();
}

TEST(BlockManagerTiers, ParkChainSkipsLiveBlocks)
{
    BlockManager mgr(tierCfg(4, 8));
    const auto chain = tokenRange(0, 64);
    ASSERT_TRUE(mgr.allocatePrompt(1, chain).has_value());
    // Still referenced: nothing is idle, nothing parks.
    EXPECT_EQ(mgr.parkChain(chain), 0);
    EXPECT_EQ(mgr.usedBlocks(), 4);
    EXPECT_EQ(mgr.hostCachedBlocks(), 0);
    mgr.checkInvariants();
}

// Parking demotes tail-first so the chain *head* is the youngest tier
// entry: when the tier is too small for the chain, the head survives
// (a truncated tail still restores; a lost head forfeits everything).
TEST(BlockManagerTiers, ParkTailFirstKeepsHeadWhenTierTight)
{
    BlockManager mgr(tierCfg(4, 1));
    const auto chain = tokenRange(0, 32); // h0, h1
    ASSERT_TRUE(mgr.allocatePrompt(1, chain).has_value());
    mgr.release(1);
    EXPECT_EQ(mgr.parkChain(chain), 2);
    EXPECT_EQ(mgr.hostCachedBlocks(), 1); // h1 displaced by h0
    EXPECT_EQ(mgr.stats().dram.evictedBlocks, 1);

    // Prefetch promotes the head, then stops at the missing block.
    const kv::PrefetchResult pf = mgr.prefetchChain(chain);
    EXPECT_EQ(pf.blocks, 1);
    EXPECT_EQ(pf.dramTokens, 16);

    auto alloc = mgr.allocatePrompt(2, chain);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->cachedTokens, 16); // the head, GPU-hot
    EXPECT_EQ(alloc->freshBlocks, 1);
    mgr.checkInvariants();
}

// Tiered fuzz (DRAM + NVMe, probabilistic admission, park/prefetch/
// preload/import interleaved): invariants are checked after every
// operation. Seed parity flips the residency modes so both disciplines
// are fuzzed.
class BlockManagerTierFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BlockManagerTierFuzz, InvariantsHoldWithTieredWorkload)
{
    const std::uint64_t seed = GetParam();
    sim::Rng rng(seed, "kv-tier-fuzz", 0);
    BlockManagerConfig c = tierCfg(24, 16, 24, 8);
    c.dramAdmitProb = 0.8;
    c.nvmeAdmitProb = 0.9;
    c.dramMode = seed % 2 == 0 ? kv::TierMode::Exclusive
                               : kv::TierMode::Inclusive;
    c.nvmeMode = seed % 2 == 0 ? kv::TierMode::Inclusive
                               : kv::TierMode::Exclusive;
    c.seed = seed;
    BlockManager mgr(c);

    auto somePrompt = [&rng](bool popular) {
        const TokenId base =
            popular
                ? static_cast<TokenId>(rng.uniformInt(0, 3) * 100000)
                : static_cast<TokenId>(rng.uniformInt(1, 1000) * 10000);
        const auto len =
            static_cast<std::size_t>(rng.uniformInt(1, 64));
        return tokenRange(base, len);
    };

    std::vector<kv::SeqId> live;
    kv::SeqId next_id = 1;
    for (int step = 0; step < 3000; ++step) {
        const double action = rng.uniform();
        if (action < 0.35) {
            const kv::SeqId id = next_id++;
            if (mgr.allocatePrompt(id, somePrompt(rng.bernoulli(0.7)))
                    .has_value()) {
                live.push_back(id);
            }
        } else if (action < 0.45) {
            const kv::SeqId id = next_id++;
            if (mgr.importChain(id, somePrompt(rng.bernoulli(0.5)))
                    .has_value()) {
                live.push_back(id);
            }
        } else if (action < 0.6 && !live.empty()) {
            const auto idx = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            mgr.appendToken(live[idx],
                            static_cast<TokenId>(rng.next()));
        } else if (action < 0.7) {
            mgr.preloadPrefix(somePrompt(rng.bernoulli(0.5)));
        } else if (action < 0.8) {
            mgr.parkChain(somePrompt(true));
        } else if (action < 0.88) {
            mgr.prefetchChain(somePrompt(true));
        } else if (!live.empty()) {
            const auto idx = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(live.size()) - 1));
            mgr.release(live[idx]);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        mgr.checkInvariants();
    }
    for (kv::SeqId id : live)
        mgr.release(id);
    mgr.checkInvariants();
    EXPECT_EQ(mgr.usedBlocks(), 0);
    // The probabilistic filter exercised both outcomes.
    EXPECT_GT(mgr.stats().dram.demotedBlocks, 0);
    EXPECT_GT(mgr.stats().dram.rejectedBlocks, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockManagerTierFuzz,
                         ::testing::Values(1, 2, 3, 7, 42, 2026));

} // namespace
