/**
 * @file
 * Tests for per-request cost attribution: ledger conservation against
 * engine aggregates, cost-report rollups, and the machine-readable
 * perf-report harness (render/parse round trip, direction inference,
 * regression comparison).
 */

#include <gtest/gtest.h>

#include <string>

#include "core/cluster.hh"
#include "core/cost_report.hh"
#include "core/perf_report.hh"
#include "core/probe.hh"
#include "core/serving_system.hh"
#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "serving/engine.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace agentsim;
using serving::CostLedger;
using serving::GenRequest;
using serving::GenResult;
using serving::LlmEngine;
using sim::Simulation;
using sim::Task;

Task<GenResult>
submit(LlmEngine &engine, std::uint64_t stream, std::int64_t prompt_len,
       std::int64_t out)
{
    GenRequest req;
    req.prompt = workload::makeTokens(
        workload::streamId(3, "cost") + stream, prompt_len);
    req.maxNewTokens = out;
    co_return co_await engine.generate(std::move(req));
}

serving::EngineConfig
smallConfig()
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    return cfg;
}

Task<GenResult>
submitTracked(LlmEngine &engine, std::uint64_t stream,
              std::int64_t prompt_len, std::int64_t out,
              std::uint64_t *handle)
{
    GenRequest req;
    req.prompt = workload::makeTokens(
        workload::streamId(3, "cost") + stream, prompt_len);
    req.maxNewTokens = out;
    co_return co_await engine.generate(std::move(req), handle);
}

// ---------------------------------------------------------------------
// Ledger conservation.
// ---------------------------------------------------------------------

TEST(CostLedger, SingleRequestLedgerMatchesEngineAggregate)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, 0, 300, 60);
    sim.run();
    const GenResult r = t.result();
    ASSERT_TRUE(r.ok());

    EXPECT_GT(r.ledger.prefillGpuSeconds, 0.0);
    EXPECT_GT(r.ledger.decodeGpuSeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.ledger.queueSeconds, 0.0);
    EXPECT_GT(r.ledger.kvBlockSeconds, 0.0);
    EXPECT_GT(r.ledger.energyJoules, 0.0);

    // Alone in every step, the request owns all busy time and energy.
    EXPECT_NEAR(r.ledger.gpuSeconds(), engine.stats().busySeconds,
                1e-9);
    EXPECT_NEAR(r.ledger.energyJoules, engine.stats().busyJoules,
                1e-6);
    EXPECT_NEAR(r.ledger.kvBlockSeconds,
                engine.stats().kvBlockSeconds, 1e-9);
}

TEST(CostLedger, ConcurrentLedgersSumToEngineBusyTime)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    std::vector<Task<GenResult>> gens;
    for (std::uint64_t i = 0; i < 8; ++i)
        gens.push_back(submit(engine, i, 200 + 50 * i, 40 + 10 * i));
    sim.run();

    CostLedger sum;
    for (auto &t : gens) {
        ASSERT_TRUE(t.result().ok());
        sum += t.result().ledger;
    }
    // Attributed shares partition the shared batched steps exactly.
    EXPECT_NEAR(sum.gpuSeconds(), engine.stats().busySeconds,
                1e-9 * engine.stats().busySeconds);
    EXPECT_NEAR(sum.energyJoules, engine.stats().busyJoules,
                1e-9 * engine.stats().busyJoules);
    EXPECT_NEAR(sum.kvBlockSeconds, engine.stats().kvBlockSeconds,
                1e-9 * engine.stats().kvBlockSeconds);
}

TEST(CostLedger, PreemptionChargesWasteAndConservationHolds)
{
    // A KV pool too small for both long requests forces recompute
    // preemption; the re-prefilled tokens must show up as waste.
    auto cfg = smallConfig();
    cfg.kvPoolBytes = 96 * 16 * cfg.model.kvBytesPerToken();
    Simulation sim;
    LlmEngine engine(sim, cfg);
    std::vector<Task<GenResult>> gens;
    for (std::uint64_t i = 0; i < 3; ++i)
        gens.push_back(submit(engine, 40 + i, 500, 300));
    sim.run();

    ASSERT_GT(engine.stats().preemptions, 0);
    EXPECT_GT(engine.stats().wastedSeconds, 0.0);

    CostLedger sum;
    for (auto &t : gens) {
        ASSERT_TRUE(t.result().ok());
        sum += t.result().ledger;
    }
    EXPECT_NEAR(sum.wastedGpuSeconds, engine.stats().wastedSeconds,
                1e-9);
    // Waste is a subset of prefill time, not an extra term, so the
    // ledger total still reconciles with engine busy time.
    EXPECT_LE(sum.wastedGpuSeconds, sum.prefillGpuSeconds + 1e-12);
    EXPECT_NEAR(sum.gpuSeconds(), engine.stats().busySeconds,
                1e-9 * engine.stats().busySeconds);
}

TEST(CostLedger, LiveMigrationConservesGpuWork)
{
    // A warm live migration must not change what the request's GPU
    // work costs: the decode resumes where it left off, so migrated
    // ledger GPU-s matches the unmigrated baseline within tolerance
    // and the interconnect transfer shows up as a separate charge,
    // not as recompute.
    double baseline = 0.0;
    {
        Simulation sim;
        LlmEngine engine(sim, smallConfig());
        auto t = submit(engine, 70, 400, 200);
        sim.run();
        ASSERT_TRUE(t.result().ok());
        baseline = t.result().ledger.gpuSeconds();
    }

    Simulation sim;
    LlmEngine source(sim, smallConfig());
    LlmEngine target(sim, smallConfig());
    std::uint64_t handle = 0;
    auto t = submitTracked(source, 70, 400, 200, &handle);
    ASSERT_NE(handle, 0u);
    // Export mid-decode; the target is cache-cold, so the whole
    // computed chain crosses the interconnect.
    sim.schedule(sim::fromSeconds(1.5), [&] {
        auto m = source.exportRequest(handle);
        ASSERT_TRUE(m.has_value());
        target.importRequest(std::move(*m), /*interconnect=*/200e9);
    });
    sim.run();

    const GenResult r = t.result();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.tokens.size(), 200u);
    ASSERT_GT(baseline, 0.0);
    EXPECT_NEAR(r.ledger.gpuSeconds(), baseline, 0.02 * baseline);
    EXPECT_GT(r.ledger.transferSeconds, 0.0);
    EXPECT_NEAR(r.ledger.transferSeconds,
                target.stats().migrationSeconds, 1e-9);
    // Warm landing: nothing recomputed on either side.
    EXPECT_DOUBLE_EQ(r.ledger.wastedGpuSeconds, 0.0);
    EXPECT_DOUBLE_EQ(source.stats().wastedSeconds, 0.0);
    EXPECT_DOUBLE_EQ(target.stats().wastedSeconds, 0.0);
    // The split work reconciles with the two engines' busy time.
    EXPECT_NEAR(r.ledger.gpuSeconds(),
                source.stats().busySeconds + target.stats().busySeconds,
                0.02 * baseline);
    source.blockManager().checkInvariants();
    target.blockManager().checkInvariants();
}

TEST(CostLedger, WarmTargetMigrationChargesOnlyMissingBlocks)
{
    // Regression (KV wire accounting): the migration transfer is
    // sized by the *importing* side's allocation — blocks the target
    // already holds never cross the interconnect. A source-side chain
    // count would bill prefix-cached blocks the target reuses.
    auto runMigration = [](bool warm_target) {
        Simulation sim;
        LlmEngine source(sim, smallConfig());
        LlmEngine target(sim, smallConfig());
        if (warm_target) {
            // Same prompt stream: primes the target's prefix cache.
            auto w = submit(target, 70, 400, 1);
            sim.run();
            EXPECT_TRUE(w.result().ok());
        }
        std::uint64_t handle = 0;
        auto t = submitTracked(source, 70, 400, 200, &handle);
        sim.schedule(sim::fromSeconds(1.5), [&] {
            auto m = source.exportRequest(handle);
            ASSERT_TRUE(m.has_value());
            target.importRequest(std::move(*m), /*interconnect=*/200e9);
        });
        sim.run();
        GenResult r = t.result();
        EXPECT_TRUE(r.ok());
        return std::pair(std::move(r),
                         target.stats().migrationSeconds);
    };
    const auto [cold, cold_wire] = runMigration(false);
    const auto [warm, warm_wire] = runMigration(true);

    ASSERT_GT(cold_wire, 0.0);
    // The generated (unshared) tail still crosses the wire, but the
    // 400-token prompt prefix does not.
    EXPECT_GT(warm_wire, 0.0);
    EXPECT_LT(warm_wire, 0.5 * cold_wire);
    // Conservation: the cheaper wire charge is exactly what lands in
    // the request's ledger, and the reuse changes no GPU work.
    EXPECT_NEAR(warm.ledger.transferSeconds, warm_wire, 1e-9);
    EXPECT_NEAR(warm.ledger.gpuSeconds(), cold.ledger.gpuSeconds(),
                0.02 * cold.ledger.gpuSeconds());
    EXPECT_DOUBLE_EQ(warm.ledger.wastedGpuSeconds, 0.0);
}

TEST(CostLedger, ServingRunConservesWithinOnePercent)
{
    // Fig14-style open-loop agent serving: the sum of every rollout's
    // attributed ledger must reconcile with the engine aggregate
    // within 1% (ISSUE acceptance bound; slack only from requests
    // cancelled mid-step).
    core::ServeConfig cfg;
    cfg.agent = agents::AgentKind::ReAct;
    cfg.bench = workload::Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 2.0;
    cfg.numRequests = 20;
    cfg.seed = 5;
    const core::ServeResult r = core::runServing(cfg);

    ASSERT_GT(r.completed, 0);
    ASSERT_GT(r.engineStats.busySeconds, 0.0);
    EXPECT_NEAR(r.totalCost.gpuSeconds(), r.engineStats.busySeconds,
                0.01 * r.engineStats.busySeconds);
    EXPECT_NEAR(r.totalCost.energyJoules, r.engineStats.busyJoules,
                0.01 * r.engineStats.busyJoules);
    EXPECT_NEAR(r.totalCost.savedPrefillSeconds,
                r.engineStats.savedPrefillSeconds,
                0.01 * r.engineStats.savedPrefillSeconds + 1e-9);
}

TEST(CostLedger, ChatbotServingConserves)
{
    core::ServeConfig cfg;
    cfg.chatbot = true;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 3.0;
    cfg.numRequests = 40;
    cfg.seed = 9;
    const core::ServeResult r = core::runServing(cfg);

    ASSERT_GT(r.completed, 0);
    EXPECT_NEAR(r.totalCost.gpuSeconds(), r.engineStats.busySeconds,
                0.01 * r.engineStats.busySeconds);
}

// ---------------------------------------------------------------------
// Cost report rollup.
// ---------------------------------------------------------------------

CostLedger
ledgerOf(double prefill, double decode, double energy)
{
    CostLedger l;
    l.prefillGpuSeconds = prefill;
    l.decodeGpuSeconds = decode;
    l.energyJoules = energy;
    return l;
}

TEST(CostReport, RollsUpByLabelWithAdditiveTotal)
{
    core::CostReport report;
    report.add("ReAct", ledgerOf(1.0, 4.0, 100.0));
    report.add("ReAct", ledgerOf(0.5, 2.0, 50.0));
    report.add("CoT", ledgerOf(0.25, 1.0, 25.0), 3);

    EXPECT_EQ(report.rows(), 2u);
    EXPECT_DOUBLE_EQ(report.ledger("ReAct").gpuSeconds(), 7.5);
    EXPECT_DOUBLE_EQ(report.total().gpuSeconds(), 8.75);
    EXPECT_DOUBLE_EQ(report.total().energyJoules, 175.0);

    const std::string table =
        report.render("unit test").render();
    EXPECT_NE(table.find("ReAct"), std::string::npos);
    EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

TEST(CostReport, ExportsAggregateAndPerLabelFamilies)
{
    core::CostReport report;
    report.add("HotpotQA/ReAct", ledgerOf(1.0, 2.0, 30.0));
    telemetry::MetricsRegistry registry;
    report.exportMetrics(registry, 0);
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("agentsim_cost_gpu_seconds_total"),
              std::string::npos);
    EXPECT_NE(
        prom.find("agentsim_cost_gpu_seconds_hotpotqa_react_total"),
        std::string::npos);
}

TEST(CostReport, SanitizeMetricLabel)
{
    EXPECT_EQ(core::sanitizeMetricLabel("HotpotQA/ReAct"),
              "hotpotqa_react");
    EXPECT_EQ(core::sanitizeMetricLabel("a  b--C"), "a_b_c");
}

TEST(CostReport, ProvisionedFooterReportsElasticCapacity)
{
    core::CostReport report;
    report.add("chat", ledgerOf(1.0, 4.0, 100.0));

    // Without a provisioned figure the footer stays out of the way.
    EXPECT_EQ(report.render("unit test").render().find("PROVISIONED"),
              std::string::npos);

    report.setProvisionedGpuSeconds(10.0);
    EXPECT_DOUBLE_EQ(report.provisionedGpuSeconds(), 10.0);
    const std::string table = report.render("unit test").render();
    EXPECT_NE(table.find("PROVISIONED"), std::string::npos);

    telemetry::MetricsRegistry registry;
    report.exportMetrics(registry, 0);
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("agentsim_cost_provisioned_gpu_seconds_total"),
              std::string::npos);
    EXPECT_NE(prom.find("agentsim_cost_provisioned_utilization"),
              std::string::npos);

    report.clear();
    EXPECT_DOUBLE_EQ(report.provisionedGpuSeconds(), 0.0);
}

TEST(CostReport, ProvisionedBoundsAttributedBusySeconds)
{
    // An autoscaled cluster bills capacity from each scale-out
    // decision (warm-up included) to decommission or run end, so the
    // provisioned GPU-seconds must bound the busy GPU-seconds the
    // engines actually attributed to requests.
    core::ClusterConfig cfg;
    cfg.numNodes = 1;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;
    core::WorkloadSpec chat;
    chat.chatbot = true;
    cfg.mix.push_back(chat);
    cfg.numRequests = 150;
    cfg.seed = 7;
    cfg.arrival.kind = core::ArrivalPattern::Kind::Diurnal;
    cfg.arrival.periodSeconds = 60.0;
    cfg.arrival.baseQps = 0.5;
    cfg.arrival.peakQps = 5.0;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.maxNodes = 3;
    cfg.autoscaler.nodeServiceQps = 1.5;
    cfg.autoscaler.scaleOutCooldownSeconds = 5.0;
    const auto r = core::runCluster(cfg);

    double busy = 0.0;
    for (const auto &node : r.nodes)
        busy += node.engineStats.busySeconds;
    EXPECT_GT(r.provisionedGpuSeconds, 0.0);
    EXPECT_GE(r.provisionedGpuSeconds, busy);

    core::CostReport report;
    report.setProvisionedGpuSeconds(r.provisionedGpuSeconds);
    EXPECT_GE(report.provisionedGpuSeconds(), busy);
}

// ---------------------------------------------------------------------
// Perf report harness.
// ---------------------------------------------------------------------

TEST(PerfReport, RenderParseRoundTrip)
{
    core::PerfReport report;
    report.setGenerator("cost_test");
    report.set("react_p95_seconds", 12.5);
    report.set("react_throughput_qps", 2.25);
    report.set("sim_events_per_second", 1.5e6);
    report.set("react_p95_seconds", 13.0); // overwrite keeps order

    const auto parsed = core::PerfReport::parse(report.renderJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->generator(), "cost_test");
    ASSERT_EQ(parsed->metrics().size(), 3u);
    EXPECT_EQ(parsed->metrics()[0].first, "react_p95_seconds");
    EXPECT_DOUBLE_EQ(parsed->metrics()[0].second, 13.0);
    EXPECT_DOUBLE_EQ(*parsed->get("sim_events_per_second"), 1.5e6);
}

TEST(PerfReport, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(core::PerfReport::parse("").has_value());
    EXPECT_FALSE(core::PerfReport::parse("{").has_value());
    EXPECT_FALSE(core::PerfReport::parse("not json").has_value());
    EXPECT_FALSE(
        core::PerfReport::parse("{\"metrics\": {\"a\": \"x\"}}")
            .has_value());
}

TEST(PerfReport, DirectionInference)
{
    using core::MetricDirection;
    EXPECT_EQ(core::metricDirection("react_p95_seconds"),
              MetricDirection::LowerIsBetter);
    EXPECT_EQ(core::metricDirection("run_energy_wh"),
              MetricDirection::LowerIsBetter);
    // Throughput suffixes win over the trailing "_second(s)".
    EXPECT_EQ(core::metricDirection("chat_tokens_per_second"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(core::metricDirection("chat_throughput_qps"),
              MetricDirection::HigherIsBetter);
    // Host self-timing never gates a diff: nondeterministic.
    EXPECT_EQ(core::metricDirection("sim_events_per_second"),
              MetricDirection::Informational);
    EXPECT_EQ(core::metricDirection("sim_wall_seconds"),
              MetricDirection::Informational);
    EXPECT_EQ(core::metricDirection("crash_off_goodput"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(core::metricDirection("ttft_attainment"),
              MetricDirection::HigherIsBetter);
    EXPECT_EQ(core::metricDirection("slo_alerts"),
              MetricDirection::Informational);
}

TEST(PerfReport, CompareFlagsRegressionsByDirection)
{
    core::PerfReport base;
    base.set("p95_seconds", 10.0);
    base.set("throughput_qps", 4.0);
    base.set("slo_alerts", 2.0);
    base.set("only_in_base", 1.0);

    core::PerfReport cand;
    cand.set("p95_seconds", 11.5);    // +15% latency: regression
    cand.set("throughput_qps", 3.0);  // -25% throughput: regression
    cand.set("slo_alerts", 50.0);     // informational: never regresses
    cand.set("only_in_cand", 1.0);

    const auto cmp = core::compareReports(base, cand, 0.10);
    EXPECT_TRUE(cmp.hasRegression);
    ASSERT_EQ(cmp.deltas.size(), 3u);
    EXPECT_TRUE(cmp.deltas[0].regressed);
    EXPECT_TRUE(cmp.deltas[1].regressed);
    EXPECT_FALSE(cmp.deltas[2].regressed);
    ASSERT_EQ(cmp.missing.size(), 2u);

    // Within threshold: no regression; improvements flagged.
    core::PerfReport good;
    good.set("p95_seconds", 8.0);
    good.set("throughput_qps", 4.1);
    good.set("slo_alerts", 2.0);
    good.set("only_in_base", 1.0);
    const auto ok = core::compareReports(base, good, 0.10);
    EXPECT_FALSE(ok.hasRegression);
    EXPECT_TRUE(ok.deltas[0].improved);
    EXPECT_FALSE(ok.deltas[1].improved); // +2.5% under threshold
}

} // namespace
