/**
 * @file
 * Tier-1 coverage of the telemetry subsystem: registry exposition,
 * engine iteration sampling, cross-layer Chrome trace validity and
 * the jsonEscape control-character fix.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string>

#include "core/probe.hh"
#include "core/serving_system.hh"
#include "core/trace_export.hh"
#include "sim/logging.hh"
#include "telemetry/registry.hh"
#include "telemetry/sampler.hh"
#include "telemetry/session.hh"
#include "telemetry/slo.hh"
#include "telemetry/span.hh"
#include "telemetry/trace_sink.hh"

using namespace agentsim;

namespace
{

/**
 * Minimal recursive-descent JSON validator: structural validity only
 * (objects, arrays, strings with escapes, numbers, literals). Returns
 * true iff the whole input is one valid JSON value.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(std::string text) : s_(std::move(text)) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    std::string s_;
    std::size_t pos_ = 0;

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    bool eof() const { return pos_ >= s_.size(); }

    void
    skipWs()
    {
        while (!eof() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                          s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (!eof()) {
            const char c = s_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control char: invalid JSON
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (eof())
                    return false;
                const char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[pos_ + i])))
                            return false;
                    }
                    pos_ += 4;
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': {
              ++pos_;
              skipWs();
              if (peek() == '}') {
                  ++pos_;
                  return true;
              }
              for (;;) {
                  skipWs();
                  if (!string())
                      return false;
                  skipWs();
                  if (peek() != ':')
                      return false;
                  ++pos_;
                  if (!value())
                      return false;
                  skipWs();
                  if (peek() == ',') {
                      ++pos_;
                      continue;
                  }
                  if (peek() == '}') {
                      ++pos_;
                      return true;
                  }
                  return false;
              }
          }
          case '[': {
              ++pos_;
              skipWs();
              if (peek() == ']') {
                  ++pos_;
                  return true;
              }
              for (;;) {
                  if (!value())
                      return false;
                  skipWs();
                  if (peek() == ',') {
                      ++pos_;
                      continue;
                  }
                  if (peek() == ']') {
                      ++pos_;
                      return true;
                  }
                  return false;
              }
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }
};

/** Count occurrences of a substring. */
int
countOf(const std::string &hay, const std::string &needle)
{
    int n = 0;
    for (std::size_t p = hay.find(needle); p != std::string::npos;
         p = hay.find(needle, p + needle.size()))
        ++n;
    return n;
}

/** Run a small instrumented ReAct workload once. */
const telemetry::SessionTelemetry &
reactSession()
{
    static telemetry::SessionTelemetry session;
    static bool ran = false;
    if (!ran) {
        core::ServeConfig cfg;
        cfg.agent = agents::AgentKind::ReAct;
        cfg.bench = workload::Benchmark::HotpotQA;
        cfg.engineConfig = core::enginePreset8b();
        cfg.qps = 2.0;
        cfg.numRequests = 8;
        cfg.seed = 11;
        cfg.telemetry = &session;
        core::runServing(cfg);
        ran = true;
    }
    return session;
}

} // namespace

TEST(Telemetry, SamplerSeriesMonotoneAndComplete)
{
    const auto &session = reactSession();
    const auto &samples = session.engineSamples;
    ASSERT_GT(samples.size(), 10u);
    for (std::size_t i = 1; i < samples.size(); ++i) {
        EXPECT_GE(samples[i].tick, samples[i - 1].tick)
            << "sample " << i << " goes back in time";
        EXPECT_GT(samples[i].step, samples[i - 1].step);
    }
    for (const auto &s : samples) {
        EXPECT_GE(s.running, 0);
        EXPECT_GE(s.waiting, 0);
        EXPECT_GE(s.kvBlocksUsed, 0);
        EXPECT_GE(s.kvBlocksFree, 0);
        EXPECT_GE(s.prefixHitRate, 0.0);
        EXPECT_LE(s.prefixHitRate, 1.0);
        EXPECT_GT(s.stepSeconds, 0.0);
        // Every step does some work.
        EXPECT_GT(s.prefillTokens + s.decodeTokens, 0);
    }
    // CSV: header plus one row per sample.
    const std::string csv =
        telemetry::EngineSampler::renderCsv(samples);
    EXPECT_EQ(countOf(csv, "\n"),
              static_cast<int>(samples.size()) + 1);
}

TEST(Telemetry, PrometheusOutputParsesLineByLine)
{
    const auto &session = reactSession();
    const std::string text = session.registry.renderPrometheus();
    EXPECT_GE(session.registry.families(), 10u);

    std::size_t start = 0;
    int samples = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        ASSERT_NE(end, std::string::npos) << "missing final newline";
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        ASSERT_FALSE(line.empty());
        if (line[0] == '#') {
            EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                        line.rfind("# TYPE ", 0) == 0)
                << line;
            continue;
        }
        // Sample line: <name>[{labels}] <float>
        const std::size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        const std::string name = line.substr(0, sp);
        const std::string value = line.substr(sp + 1);
        EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])))
            << line;
        char *parse_end = nullptr;
        std::strtod(value.c_str(), &parse_end);
        EXPECT_EQ(*parse_end, '\0') << "unparsable value: " << line;
        ++samples;
    }
    EXPECT_GE(samples, 10);
    EXPECT_NE(text.find("agentsim_kv_blocks_used"), std::string::npos);
    EXPECT_NE(text.find("agentsim_request_e2e_seconds_bucket"),
              std::string::npos);
}

TEST(Telemetry, ChromeTraceIsValidCrossLayerJson)
{
    const auto &session = reactSession();
    const std::string json = session.trace.toJson();

    JsonValidator v(json);
    EXPECT_TRUE(v.valid());

    // All three layers are present on the shared clock.
    EXPECT_NE(json.find("\"name\":\"step\""), std::string::npos);
    EXPECT_NE(json.find("\"queued\""), std::string::npos);
    EXPECT_NE(json.find("\"prefill\""), std::string::npos);
    EXPECT_NE(json.find("\"decode\""), std::string::npos);
    EXPECT_NE(json.find("react.step"), std::string::npos);

    // Only M/X/C/i plus nestable-async b/e (the tail-exemplar span
    // track) are emitted; B/E must balance (we emit none, so both
    // counts are zero) and so must b/e.
    EXPECT_EQ(countOf(json, "\"ph\":\"B\""),
              countOf(json, "\"ph\":\"E\""));
    EXPECT_EQ(countOf(json, "\"ph\":\"b\""),
              countOf(json, "\"ph\":\"e\""));
    const int events = countOf(json, "\"ph\":\"");
    const int known = countOf(json, "\"ph\":\"M\"") +
                      countOf(json, "\"ph\":\"X\"") +
                      countOf(json, "\"ph\":\"C\"") +
                      countOf(json, "\"ph\":\"i\"") +
                      countOf(json, "\"ph\":\"b\"") +
                      countOf(json, "\"ph\":\"e\"");
    EXPECT_EQ(events, known);
    EXPECT_GT(events, 100);

    // Complete events never have negative durations.
    EXPECT_EQ(countOf(json, "\"dur\":-"), 0);
}

TEST(Telemetry, JsonEscapeHandlesControlCharacters)
{
    const std::string nasty =
        std::string("tab\there\r\n\"quote\"\\slash\x01\x1f");
    const std::string escaped = telemetry::jsonEscape(nasty);
    EXPECT_EQ(escaped,
              "tab\\there\\r\\n\\\"quote\\\"\\\\slash\\u0001\\u001f");

    // The whole string must round-trip through the validator as a
    // JSON document.
    JsonValidator v("\"" + escaped + "\"");
    EXPECT_TRUE(v.valid());
}

TEST(Telemetry, AgentTraceExportSurvivesTabsInLabels)
{
    agents::AgentResult result;
    agents::Span span;
    span.kind = agents::Span::Kind::Tool;
    span.start = 10;
    span.end = 20;
    span.label = "observe\tcol1\tcol2\r\x02";
    result.timeline.push_back(span);

    const std::string json =
        core::toChromeTrace(result, "escape\ttest");
    JsonValidator v(json);
    EXPECT_TRUE(v.valid());
    EXPECT_NE(json.find("\\u0002"), std::string::npos);
}

TEST(Telemetry, SamplerRingWrapKeepsChronologicalOrder)
{
    telemetry::SamplerConfig cfg;
    cfg.stride = 1;
    cfg.capacity = 8;
    telemetry::EngineSampler sampler(cfg);
    for (int i = 1; i <= 20; ++i) {
        telemetry::IterationSample s;
        s.tick = i * 100;
        s.step = i;
        sampler.record(s);
    }
    const auto samples = sampler.samples();
    ASSERT_EQ(samples.size(), 8u);
    EXPECT_EQ(sampler.dropped(), 12u);
    EXPECT_EQ(samples.front().step, 13);
    EXPECT_EQ(samples.back().step, 20);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GT(samples[i].tick, samples[i - 1].tick);
}

TEST(Telemetry, SamplerStrideAndDisable)
{
    telemetry::SamplerConfig strided;
    strided.stride = 3;
    telemetry::EngineSampler sampler(strided);
    for (int i = 1; i <= 10; ++i) {
        telemetry::IterationSample s;
        s.step = i;
        sampler.record(s);
    }
    const auto samples = sampler.samples();
    ASSERT_EQ(samples.size(), 4u); // steps 1, 4, 7, 10
    EXPECT_EQ(samples[1].step, 4);

    telemetry::SamplerConfig off;
    off.stride = 0;
    telemetry::EngineSampler disabled(off);
    telemetry::IterationSample s;
    disabled.record(s);
    EXPECT_FALSE(disabled.enabled());
    EXPECT_EQ(disabled.size(), 0u);
}

TEST(Telemetry, RegistryCsvSnapshots)
{
    telemetry::MetricsRegistry reg;
    auto &c = reg.counter("demo_total", "demo counter");
    auto &g = reg.gauge("demo_gauge", "demo gauge");
    auto &h = reg.histogram("demo_hist", "demo histogram", 0, 10, 5);

    c.add(1);
    g.set(0, 2.5);
    h.observe(3.0);
    reg.snapshot(sim::fromSeconds(1.0));
    c.add(2);
    h.observe(7.0);
    reg.snapshot(sim::fromSeconds(2.0));

    const std::string csv = reg.renderCsv();
    EXPECT_EQ(countOf(csv, "\n"), 3); // header + 2 rows
    EXPECT_NE(csv.find("time_s,demo_total,demo_gauge,demo_hist_count,"
                       "demo_hist_sum"),
              std::string::npos);
    EXPECT_NE(csv.find("\n2.000000000,3,2.5,2,10"), std::string::npos);

    // Re-registering with the same name returns the same metric.
    EXPECT_EQ(&reg.counter("demo_total", ""), &c);
    EXPECT_EQ(reg.families(), 3u);
}

TEST(Telemetry, LogLevelParsingAndFilter)
{
    using sim::LogLevel;
    EXPECT_EQ(sim::parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(sim::parseLogLevel("INFO"), LogLevel::Info);
    EXPECT_EQ(sim::parseLogLevel("Warning"), LogLevel::Warn);
    EXPECT_EQ(sim::parseLogLevel("quiet"), LogLevel::Error);
    EXPECT_EQ(sim::parseLogLevel("bogus"), std::nullopt);

    const LogLevel saved = sim::logLevel();
    sim::setLogLevel(LogLevel::Error);
    EXPECT_FALSE(sim::logEnabled(LogLevel::Warn));
    EXPECT_FALSE(sim::logEnabled(LogLevel::Info));
    EXPECT_TRUE(sim::logEnabled(LogLevel::Error));
    sim::setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(sim::logEnabled(LogLevel::Debug));
    sim::setLogLevel(saved);
}

TEST(Telemetry, BlockManagerExposesOccupancyGauges)
{
    kv::BlockManagerConfig cfg;
    cfg.numBlocks = 16;
    cfg.blockSize = 4;
    kv::BlockManager mgr(cfg);
    EXPECT_EQ(mgr.blocksInUse(), 0);
    EXPECT_EQ(mgr.blocksFree(), 16);

    std::vector<kv::TokenId> prompt(10, 42);
    for (std::size_t i = 0; i < prompt.size(); ++i)
        prompt[i] = 1000 + i;
    ASSERT_TRUE(mgr.allocatePrompt(1, prompt).has_value());
    EXPECT_EQ(mgr.blocksInUse(), 3); // ceil(10 / 4)
    EXPECT_EQ(mgr.blocksInUse() + mgr.blocksFree(), mgr.totalBlocks());

    mgr.release(1);
    EXPECT_EQ(mgr.blocksInUse(), 0);
    EXPECT_EQ(mgr.blocksFree(), 16);
}

// ---------------------------------------------------------------------
// Online SLO tracker (telemetry/slo.hh).
// ---------------------------------------------------------------------

namespace
{

using telemetry::SloConfig;
using telemetry::SloMetric;
using telemetry::SloTracker;

SloConfig
tightTtft()
{
    SloConfig cfg;
    cfg.ttftTargetSeconds = 1.0;
    cfg.tbtTargetSeconds = 0.0; // disabled
    cfg.e2eTargetSeconds = 0.0; // disabled
    cfg.windowSeconds = 10.0;
    cfg.attainmentTarget = 0.95;
    cfg.burnRateAlertThreshold = 2.0;
    cfg.minWindowSamples = 10;
    return cfg;
}

TEST(Slo, AttainmentCountsViolationsAndFailures)
{
    SloTracker slo(tightTtft());
    for (int i = 0; i < 8; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(0.1 * i), 0.5);
    slo.observe(SloMetric::Ttft, sim::fromSeconds(0.9), 3.0);
    slo.observeFailure(SloMetric::Ttft, sim::fromSeconds(1.0));
    EXPECT_EQ(slo.observations(SloMetric::Ttft), 10);
    EXPECT_EQ(slo.violations(SloMetric::Ttft), 2);
    EXPECT_NEAR(slo.attainment(SloMetric::Ttft), 0.8, 1e-12);
    // 2/10 violations against a 5% budget: burn rate 4x.
    EXPECT_NEAR(
        slo.windowBurnRate(SloMetric::Ttft, sim::fromSeconds(1.0)),
        4.0, 1e-12);
}

TEST(Slo, DisabledMetricRecordsNothing)
{
    SloTracker slo(tightTtft());
    slo.observe(SloMetric::Tbt, 0, 100.0);
    slo.observeFailure(SloMetric::E2e, 0);
    EXPECT_EQ(slo.observations(SloMetric::Tbt), 0);
    EXPECT_EQ(slo.observations(SloMetric::E2e), 0);
    EXPECT_EQ(slo.alertsFired(), 0);
}

TEST(Slo, AlertFiresOncePerWindowAndEmitsTraceInstant)
{
    SloTracker slo(tightTtft());
    telemetry::TraceSink trace;
    slo.attachTrace(&trace);
    const std::size_t baseline = trace.eventCount();

    // Window 1: 10 samples, 3 violations -> burn 6x, one alert even
    // though more violations keep arriving.
    for (int i = 0; i < 7; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(0.1 * i), 0.2);
    for (int i = 0; i < 5; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(1.0 + 0.1 * i),
                    5.0);
    EXPECT_EQ(slo.alertsFired(SloMetric::Ttft), 1);
    EXPECT_GT(trace.eventCount(), baseline);
    EXPECT_NE(trace.toJson().find("slo_alert_ttft"), std::string::npos);

    // Window 2 (t in [10, 20)): clean samples -> no new alert.
    for (int i = 0; i < 20; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(10.5 + 0.1 * i),
                    0.2);
    EXPECT_EQ(slo.alertsFired(SloMetric::Ttft), 1);

    // Window 3 (t in [20, 30)): violations again -> second alert.
    for (int i = 0; i < 10; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(20.5 + 0.1 * i),
                    5.0);
    EXPECT_EQ(slo.alertsFired(SloMetric::Ttft), 2);
}

TEST(Slo, WindowRotationJumpsEmptyWindows)
{
    SloTracker slo(tightTtft());
    for (int i = 0; i < 10; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(0.1 * i), 5.0);
    EXPECT_GT(
        slo.windowBurnRate(SloMetric::Ttft, sim::fromSeconds(1.0)),
        0.0);
    // Long quiet gap; the next observation lands in a fresh window
    // whose burn rate starts from zero despite lifetime violations.
    slo.observe(SloMetric::Ttft, sim::fromSeconds(500.0), 0.2);
    EXPECT_DOUBLE_EQ(
        slo.windowBurnRate(SloMetric::Ttft, sim::fromSeconds(500.0)),
        0.0);
    EXPECT_EQ(slo.violations(SloMetric::Ttft), 10);
}

TEST(Slo, MinWindowSamplesDebouncesAlerts)
{
    auto cfg = tightTtft();
    cfg.minWindowSamples = 50;
    SloTracker slo(cfg);
    // 100% violations but under the sample floor: no alert.
    for (int i = 0; i < 49; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(0.01 * i), 5.0);
    EXPECT_EQ(slo.alertsFired(), 0);
    slo.observe(SloMetric::Ttft, sim::fromSeconds(0.5), 5.0);
    EXPECT_EQ(slo.alertsFired(), 1);
}

TEST(Slo, ExportMetricsEmitsFamiliesOnlyForEnabledMetrics)
{
    SloTracker slo(tightTtft());
    for (int i = 0; i < 12; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(0.1 * i),
                    i % 2 == 0 ? 0.5 : 2.0);
    telemetry::MetricsRegistry registry;
    slo.exportMetrics(registry, sim::fromSeconds(1.2));
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("agentsim_slo_ttft_p95_seconds"),
              std::string::npos);
    EXPECT_NE(prom.find("agentsim_slo_ttft_attainment"),
              std::string::npos);
    EXPECT_NE(prom.find("agentsim_slo_ttft_violations_total"),
              std::string::npos);
    // Disabled metrics export nothing.
    EXPECT_EQ(prom.find("agentsim_slo_tbt"), std::string::npos);
    EXPECT_EQ(prom.find("agentsim_slo_e2e"), std::string::npos);
}

TEST(Slo, ResetPreservesTargets)
{
    SloTracker slo(tightTtft());
    for (int i = 0; i < 15; ++i)
        slo.observe(SloMetric::Ttft, sim::fromSeconds(0.1 * i), 5.0);
    EXPECT_GT(slo.alertsFired(), 0);
    slo.reset();
    EXPECT_EQ(slo.observations(SloMetric::Ttft), 0);
    EXPECT_EQ(slo.alertsFired(), 0);
    // Still tracking TTFT after reset (target survived).
    slo.observe(SloMetric::Ttft, 0, 0.5);
    EXPECT_EQ(slo.observations(SloMetric::Ttft), 1);
}

// ---- Causal span trees + critical-path blame ------------------------

using telemetry::SessionTelemetry;
using telemetry::BlameCategory;
using telemetry::SpanCollector;
using telemetry::SpanKind;
using telemetry::SpanRef;

TEST(Spans, NestingAndLinksStayValid)
{
    SpanCollector spans;
    const sim::Tick t0 = sim::fromSeconds(1.0);
    const SpanRef root = spans.beginRequest(7, "test/wf", t0);
    ASSERT_TRUE(root.valid());
    EXPECT_EQ(spans.openTrees(), 1u);

    const SpanRef iter = spans.child(root, SpanKind::Iteration,
                                     "iter", t0);
    const SpanRef call = spans.child(iter, SpanKind::LlmCall, "llm",
                                     t0);
    const SpanRef decode = spans.child(call, SpanKind::Decode,
                                       "decode", t0);
    const SpanRef retry = spans.child(root, SpanKind::Attempt,
                                      "attempt", sim::fromSeconds(2.0));
    spans.link(retry, iter);
    spans.end(decode, sim::fromSeconds(1.5));
    spans.end(call, sim::fromSeconds(1.5));
    spans.end(iter, sim::fromSeconds(2.0));
    // `retry` left open: finishRequest must close it defensively.
    spans.finishRequest(root, sim::fromSeconds(3.0));
    EXPECT_EQ(spans.openTrees(), 0u);
    EXPECT_EQ(spans.requestsFinished(), 1);

    ASSERT_EQ(spans.exemplars().size(), 1u);
    const auto &tree = spans.exemplars().front().tree;
    EXPECT_EQ(tree.workflow, "test/wf");
    EXPECT_EQ(tree.requestKey, 7u);
    ASSERT_GE(tree.spans.size(), 5u);
    // Root first; every parent/link index precedes its span and no
    // span is left open or extends past its parent-of-record window.
    EXPECT_EQ(tree.spans.front().parent, telemetry::kNoSpan);
    for (std::uint32_t i = 0; i < tree.spans.size(); ++i) {
        const auto &s = tree.spans[i];
        EXPECT_FALSE(s.open()) << "span " << i;
        if (i == 0)
            continue;
        ASSERT_NE(s.parent, telemetry::kNoSpan);
        EXPECT_LT(s.parent, i);
        EXPECT_GE(s.start, tree.spans[s.parent].start);
        if (s.followsFrom != telemetry::kNoSpan)
            EXPECT_LT(s.followsFrom, i);
    }
    // A child of a finished tree is refused.
    EXPECT_FALSE(
        spans.child(root, SpanKind::Decode, "late", t0).valid());
}

TEST(Spans, FanOutBlamesLastFinishingSibling)
{
    SpanCollector spans;
    const SpanRef root = spans.beginRequest(1, "test/fanout", 0);
    const SpanRef fan = spans.child(root, SpanKind::Iteration,
                                    "sc.fanout", 0);
    // Two overlapping siblings; the last finisher owns the shared
    // window, the earlier one only its uncovered prefix.
    const SpanRef a = spans.child(fan, SpanKind::ToolCall, "a", 0);
    const SpanRef b = spans.child(fan, SpanKind::ToolCall, "b", 0);
    spans.end(a, sim::fromSeconds(6.0));
    spans.end(b, sim::fromSeconds(10.0));
    spans.end(fan, sim::fromSeconds(10.0));
    const auto blame =
        spans.finishRequest(root, sim::fromSeconds(10.0));
    EXPECT_NEAR(blame[BlameCategory::Tool], 10.0, 1e-9);
    EXPECT_NEAR(blame[BlameCategory::Idle], 0.0, 1e-9);
    EXPECT_NEAR(blame.total(), 10.0, 1e-9);
}

TEST(Spans, BlameConservationOnGappyTree)
{
    SpanCollector spans;
    const SpanRef root = spans.beginRequest(1, "test/gaps", 0);
    const SpanRef iter = spans.child(root, SpanKind::Iteration, "it",
                                     sim::fromSeconds(1.0));
    const SpanRef call = spans.child(iter, SpanKind::LlmCall, "llm",
                                     sim::fromSeconds(1.5));
    const SpanRef pre = spans.child(call, SpanKind::Prefill, "prefill",
                                    sim::fromSeconds(1.5));
    spans.end(pre, sim::fromSeconds(2.0));
    const SpanRef dec = spans.child(call, SpanKind::Decode, "decode",
                                    sim::fromSeconds(2.5));
    spans.end(dec, sim::fromSeconds(5.0));
    spans.end(call, sim::fromSeconds(5.0));
    const SpanRef tool = spans.child(iter, SpanKind::ToolCall, "tool",
                                     sim::fromSeconds(5.0));
    spans.end(tool, sim::fromSeconds(7.0));
    spans.end(iter, sim::fromSeconds(8.0));
    const auto blame =
        spans.finishRequest(root, sim::fromSeconds(9.0));
    // Every uncovered gap lands in Idle; the sum is exactly the
    // request latency (conservation).
    EXPECT_NEAR(blame[BlameCategory::Prefill], 0.5, 1e-9);
    EXPECT_NEAR(blame[BlameCategory::Decode], 2.5, 1e-9);
    EXPECT_NEAR(blame[BlameCategory::Tool], 2.0, 1e-9);
    EXPECT_NEAR(blame[BlameCategory::Idle], 4.0, 1e-9);
    EXPECT_NEAR(blame.total(), 9.0, 1e-9);
}

TEST(Spans, ProbeBlameConservesEndToEndLatency)
{
    core::ProbeConfig cfg;
    cfg.agent = agents::AgentKind::ReAct;
    cfg.bench = workload::Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.numTasks = 3;
    cfg.seed = 11;
    telemetry::SpanCollector spans;
    cfg.spans = &spans;
    const auto r = core::runProbe(cfg);
    ASSERT_EQ(r.requests.size(), 3u);
    for (const auto &req : r.requests) {
        EXPECT_GT(req.blame.total(), 0.0);
        EXPECT_NEAR(req.blame.total(), req.result.e2eSeconds,
                    1e-6 + 1e-6 * req.result.e2eSeconds);
        // A tool-using agent must attribute both decode and tool
        // time somewhere.
        EXPECT_GT(req.blame[BlameCategory::Decode], 0.0);
    }
    EXPECT_EQ(spans.requestsFinished(), 3);
    EXPECT_EQ(spans.openTrees(), 0u);
}

TEST(Spans, TailRetainerEvictsWeakestUnderCap)
{
    SpanCollector::Config cfg;
    cfg.maxExemplars = 4;
    SpanCollector spans(cfg);
    for (int i = 1; i <= 10; ++i) {
        const SpanRef root = spans.beginRequest(
            static_cast<std::uint64_t>(i), "test/tail", 0);
        spans.finishRequest(root, sim::fromSeconds(i));
    }
    ASSERT_EQ(spans.exemplars().size(), 4u);
    EXPECT_EQ(spans.exemplarsEvicted(), 6);
    // The four slowest requests survive.
    double min_latency = 1e300;
    for (const auto &e : spans.exemplars())
        min_latency = std::min(min_latency, e.latencySeconds);
    EXPECT_NEAR(min_latency, 7.0, 1e-9);
}

TEST(Spans, SloViolationOutranksLatencyForRetention)
{
    SpanCollector::Config cfg;
    cfg.maxExemplars = 2;
    SpanCollector spans(cfg);
    auto run = [&](std::uint64_t key, double latency, bool violated) {
        const SpanRef root = spans.beginRequest(key, "test/slo", 0);
        spans.finishRequest(root, sim::fromSeconds(latency), violated);
    };
    run(1, 5.0, false);
    run(2, 1.0, true); // fast but SLO-violating: must be retained
    run(3, 4.0, false);
    ASSERT_EQ(spans.exemplars().size(), 2u);
    bool has_violated = false;
    for (const auto &e : spans.exemplars())
        has_violated = has_violated || e.sloViolated;
    EXPECT_TRUE(has_violated);
}

TEST(Spans, SessionResetClearsSpansAndEngineSamples)
{
    SessionTelemetry session;
    session.engineSamples.push_back({});
    const SpanRef root = session.spans.beginRequest(1, "test/reset", 0);
    session.spans.finishRequest(root, sim::fromSeconds(1.0));
    ASSERT_FALSE(session.spans.empty());
    session.reset();
    EXPECT_TRUE(session.engineSamples.empty());
    EXPECT_TRUE(session.spans.empty());
    EXPECT_EQ(session.spans.requestsFinished(), 0);
    EXPECT_TRUE(session.spans.exemplars().empty());
}

TEST(Spans, TraceSinkCapsEventsAndCountsDrops)
{
    telemetry::TraceSink trace;
    trace.setEventCapacity(5);
    for (int i = 0; i < 10; ++i)
        trace.instant(telemetry::TracePid::kEngine, 0, "tick", "test",
                      sim::fromSeconds(i));
    EXPECT_EQ(trace.eventCount(), 5u);
    EXPECT_EQ(trace.droppedEvents(), 5u);
    // Metadata is exempt (process/thread names must always land).
    trace.processName(telemetry::TracePid::kSpans, "spans");
    EXPECT_TRUE(JsonValidator(trace.toJson()).valid());
    trace.clear();
    EXPECT_EQ(trace.droppedEvents(), 0u);
}

} // namespace
