/**
 * @file
 * Unit tests for the statistics library.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "stats/gauge.hh"
#include "stats/hdr_histogram.hh"
#include "stats/histogram.hh"
#include "stats/pareto.hh"
#include "stats/quantile.hh"
#include "stats/summary.hh"

namespace
{

using namespace agentsim;
using stats::DesignPoint;
using stats::Histogram;
using stats::SampleSet;
using stats::Summary;
using stats::TimeWeightedGauge;

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    // Population variance is 4; sample variance is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, EmptyIsSafe)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesCombinedStream)
{
    Summary a;
    Summary b;
    Summary combined;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        combined.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), combined.min());
    EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(SampleSet, PercentilesInterpolate)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
    EXPECT_DOUBLE_EQ(s.median(), s.percentile(50));
}

TEST(SampleSet, SingleSample)
{
    SampleSet s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.percentile(0), 3.5);
    EXPECT_DOUBLE_EQ(s.percentile(50), 3.5);
    EXPECT_DOUBLE_EQ(s.percentile(100), 3.5);
}

TEST(SampleSet, InsertionAfterQueryResorts)
{
    SampleSet s;
    s.add(10.0);
    s.add(20.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 20.0);
    s.add(30.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 30.0);
}

TEST(SampleSet, MeanStdDev)
{
    SampleSet s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Histogram, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);   // bin 0
    h.add(1.99);  // bin 0
    h.add(2.0);   // bin 1
    h.add(9.99);  // bin 4
    h.add(10.0);  // overflow
    h.add(-0.1);  // underflow
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 4.0);
    EXPECT_NEAR(h.binFraction(0), 2.0 / 6.0, 1e-12);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 4.0, 2);
    h.add(1.0);
    h.add(1.5);
    h.add(3.0);
    const auto text = h.render(10);
    EXPECT_NE(text.find('#'), std::string::npos);
    EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(Gauge, TimeWeightedAverage)
{
    TimeWeightedGauge g;
    g.set(0, 10.0);
    g.set(100, 20.0); // value 10 held for 100 ticks
    g.set(200, 0.0);  // value 20 held for 100 ticks
    // Average over [0, 400]: (10*100 + 20*100 + 0*200) / 400 = 7.5
    EXPECT_DOUBLE_EQ(g.average(400), 7.5);
    EXPECT_DOUBLE_EQ(g.max(), 20.0);
    EXPECT_DOUBLE_EQ(g.current(), 0.0);
}

TEST(Gauge, AdjustAccumulates)
{
    TimeWeightedGauge g;
    g.set(0, 0.0);
    g.adjust(10, 5.0);
    g.adjust(20, 5.0);
    g.adjust(30, -3.0);
    EXPECT_DOUBLE_EQ(g.current(), 7.0);
    EXPECT_DOUBLE_EQ(g.max(), 10.0);
}

TEST(Gauge, IntegralAccumulates)
{
    TimeWeightedGauge g;
    g.set(0, 4.0);
    g.set(100, 2.0);
    EXPECT_DOUBLE_EQ(g.integral(100), 400.0);
    EXPECT_DOUBLE_EQ(g.integral(150), 400.0 + 2.0 * 50.0);
}

TEST(Gauge, MarkResetsWindowMax)
{
    TimeWeightedGauge g;
    g.set(0, 10.0);
    g.set(10, 3.0);
    g.mark();
    EXPECT_DOUBLE_EQ(g.maxSinceMark(), 3.0);
    g.set(20, 7.0);
    EXPECT_DOUBLE_EQ(g.maxSinceMark(), 7.0);
    EXPECT_DOUBLE_EQ(g.max(), 10.0); // lifetime max unaffected
}

TEST(Gauge, AverageBeforeAnySetIsCurrent)
{
    TimeWeightedGauge g;
    EXPECT_DOUBLE_EQ(g.average(100), 0.0);
}

TEST(Pareto, DominationRules)
{
    DesignPoint cheap_good{1.0, 0.9, 0};
    DesignPoint pricey_bad{2.0, 0.5, 1};
    DesignPoint equal_twin{1.0, 0.9, 2};
    EXPECT_TRUE(stats::dominates(cheap_good, pricey_bad));
    EXPECT_FALSE(stats::dominates(pricey_bad, cheap_good));
    EXPECT_FALSE(stats::dominates(cheap_good, equal_twin));
}

TEST(Pareto, FrontierExtraction)
{
    std::vector<DesignPoint> pts{
        {1.0, 0.30, 0}, // frontier
        {2.0, 0.20, 1}, // dominated by 0
        {3.0, 0.60, 2}, // frontier
        {4.0, 0.55, 3}, // dominated by 2
        {5.0, 0.90, 4}, // frontier
    };
    const auto frontier = stats::paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier[0].tag, 0u);
    EXPECT_EQ(frontier[1].tag, 2u);
    EXPECT_EQ(frontier[2].tag, 4u);
}

TEST(Pareto, FrontierIsSortedByCost)
{
    std::vector<DesignPoint> pts{
        {5.0, 0.9, 0}, {1.0, 0.1, 1}, {3.0, 0.5, 2}};
    const auto frontier = stats::paretoFrontier(pts);
    for (std::size_t i = 1; i < frontier.size(); ++i)
        EXPECT_LE(frontier[i - 1].cost, frontier[i].cost);
}

TEST(Pareto, EmptyInput)
{
    EXPECT_TRUE(stats::paretoFrontier({}).empty());
}

/** Deterministic uniform [0, 1) stream (64-bit LCG). */
class UniformStream
{
  public:
    explicit UniformStream(std::uint64_t seed) : state_(seed) {}

    double
    next()
    {
        state_ = state_ * 6364136223846793005ull +
                 1442695040888963407ull;
        return static_cast<double>(state_ >> 11) /
               9007199254740992.0; // 2^53
    }

  private:
    std::uint64_t state_;
};

TEST(P2Quantile, ExactOrderStatisticBelowFiveSamples)
{
    // Until the five markers are primed, value() must return an exact
    // order statistic of the buffered observations (type-1 empirical
    // quantile: smallest sample whose empirical CDF reaches p) —
    // never an interpolated value no sample ever took.
    stats::P2Quantile med(0.5);
    EXPECT_DOUBLE_EQ(med.value(), 0.0);
    med.add(30.0);
    EXPECT_DOUBLE_EQ(med.value(), 30.0);
    med.add(10.0);
    EXPECT_DOUBLE_EQ(med.value(), 10.0); // lower median of {10,30}
    med.add(20.0);
    EXPECT_DOUBLE_EQ(med.value(), 20.0);
    med.add(40.0);
    EXPECT_DOUBLE_EQ(med.value(), 20.0); // rank ceil(0.5*4)=2
    EXPECT_EQ(med.count(), 4u);
}

TEST(P2Quantile, SmallNTailQuantileIsAnObservedSample)
{
    // Regression: a p99 fed two samples used to interpolate between
    // them (rank 0.99 of {lo, hi}), reporting a latency nobody saw.
    stats::P2Quantile p99(0.99);
    p99.add(1.0);
    EXPECT_DOUBLE_EQ(p99.value(), 1.0);
    p99.add(100.0);
    EXPECT_DOUBLE_EQ(p99.value(), 100.0); // ceil(1.98) = 2nd of 2
    p99.add(2.0);
    p99.add(3.0);
    EXPECT_DOUBLE_EQ(p99.value(), 100.0); // ceil(3.96) = 4th of 4
}

TEST(P2Quantile, ConvergesOnUniformStream)
{
    stats::P2Quantile p50(0.50);
    stats::P2Quantile p95(0.95);
    stats::P2Quantile p99(0.99);
    UniformStream u(2026);
    for (int i = 0; i < 100000; ++i) {
        const double x = u.next();
        p50.add(x);
        p95.add(x);
        p99.add(x);
    }
    // True quantiles of U(0,1) are the quantile levels themselves.
    EXPECT_NEAR(p50.value(), 0.50, 0.01);
    EXPECT_NEAR(p95.value(), 0.95, 0.01);
    EXPECT_NEAR(p99.value(), 0.99, 0.005);
}

TEST(P2Quantile, TracksExactPercentileOnHeavyTail)
{
    // Exponential via inverse CDF; compare the streaming estimate to
    // the exact percentile of the full retained sample.
    stats::P2Quantile p95(0.95);
    SampleSet all;
    UniformStream u(7);
    for (int i = 0; i < 50000; ++i) {
        const double x = -std::log(1.0 - u.next());
        p95.add(x);
        all.add(x);
    }
    const double exact = all.percentile(95.0);
    EXPECT_NEAR(p95.value(), exact, 0.05 * exact);
}

TEST(P2Quantile, MonotoneShiftIsFollowed)
{
    // A regime change (latencies jump 10x) must pull the streaming
    // p50 into the new regime once it dominates the stream.
    stats::P2Quantile p50(0.5);
    for (int i = 0; i < 1000; ++i)
        p50.add(0.1);
    for (int i = 0; i < 9000; ++i)
        p50.add(1.0);
    EXPECT_GT(p50.value(), 0.5);
}

TEST(HdrHistogram, QuantileHoldsRelativeErrorBoundAcrossOctaves)
{
    // Every reported quantile must sit within the advertised relative
    // error of the true value, at every magnitude in range.
    stats::HdrHistogram h(1e-3, 3600.0, 0.01);
    EXPECT_LE(h.relError(), 0.01);
    for (double v = 1.5e-3; v < 3600.0; v *= 1.37) {
        stats::HdrHistogram one(1e-3, 3600.0, 0.01);
        one.add(v);
        const double q = one.quantile(0.5);
        EXPECT_NEAR(q, v, v * one.relError())
            << "value " << v << " reported as " << q;
    }
}

TEST(HdrHistogram, QuantilesMatchExactOnKnownStream)
{
    stats::HdrHistogram h(0.01, 100.0, 0.01);
    for (int i = 1; i <= 1000; ++i)
        h.add(i * 0.01); // uniform 0.01 .. 10.00
    EXPECT_EQ(h.count(), 1000);
    EXPECT_NEAR(h.quantile(0.50), 5.0, 5.0 * 2 * h.relError());
    EXPECT_NEAR(h.quantile(0.99), 9.9, 9.9 * 2 * h.relError());
    EXPECT_NEAR(h.mean(), 5.005, 0.001);
    EXPECT_DOUBLE_EQ(h.min(), 0.01);
    EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

TEST(HdrHistogram, OutOfRangeValuesClampAndCountOverflow)
{
    stats::HdrHistogram h(1.0, 8.0, 0.05);
    h.add(0.25);  // below min: clamps into the first bucket
    h.add(100.0); // above max: counted as overflow
    EXPECT_EQ(h.count(), 2);
    EXPECT_EQ(h.overflow(), 1);
    EXPECT_DOUBLE_EQ(h.min(), 0.25);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    // The clamped sample reports as the histogram floor, not zero.
    EXPECT_GE(h.quantile(0.01), 0.0);
}

TEST(HdrHistogram, TailExemplarsKeepLargestAndEvictWeakest)
{
    stats::HdrHistogram h(0.001, 100.0, 0.01, 3);
    for (std::uint64_t id = 1; id <= 10; ++id)
        h.add(static_cast<double>(id), id);
    const auto tail = h.tailExemplars();
    ASSERT_EQ(tail.size(), 3u);
    // Sorted descending; the three largest survive with their ids.
    EXPECT_DOUBLE_EQ(tail[0].value, 10.0);
    EXPECT_EQ(tail[0].id, 10u);
    EXPECT_DOUBLE_EQ(tail[1].value, 9.0);
    EXPECT_EQ(tail[1].id, 9u);
    EXPECT_DOUBLE_EQ(tail[2].value, 8.0);
    EXPECT_EQ(tail[2].id, 8u);
}

} // namespace
