/**
 * @file
 * Parameterized engine robustness matrix: the serving engine must
 * preserve its conservation laws and produce identical generations
 * across the full configuration grid (prefix caching x scheduler
 * policy x eviction policy x pool size x host tier), plus trace
 * export tests.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/probe.hh"
#include "core/trace_export.hh"
#include "serving/engine.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace agentsim;
using serving::EngineConfig;
using serving::GenRequest;
using serving::GenResult;
using serving::LlmEngine;
using serving::SchedulerPolicy;

// (caching, scheduler, eviction, pool blocks, host blocks)
using EngineParams =
    std::tuple<bool, SchedulerPolicy, kv::EvictionPolicy, int, int>;

class EngineMatrix : public ::testing::TestWithParam<EngineParams>
{
  protected:
    EngineConfig
    makeConfig() const
    {
        const auto [caching, sched, evict, pool_blocks, host_blocks] =
            GetParam();
        EngineConfig cfg;
        cfg.model = llm::llama31_8b();
        cfg.node = llm::singleA100();
        cfg.enablePrefixCaching = caching;
        cfg.schedulerPolicy = sched;
        cfg.evictionPolicy = evict;
        cfg.kvPoolBytes =
            static_cast<std::int64_t>(pool_blocks) * 16 *
            cfg.model.kvBytesPerToken();
        cfg.hostCacheBlocks = host_blocks;
        return cfg;
    }
};

sim::Task<GenResult>
submit(LlmEngine &engine, std::uint64_t stream, std::int64_t len,
       std::int64_t out)
{
    GenRequest req;
    req.prompt = workload::makeTokens(stream, len);
    req.maxNewTokens = out;
    co_return co_await engine.generate(std::move(req));
}

TEST_P(EngineMatrix, ConcurrentRequestsAllTerminate)
{
    sim::Simulation sim;
    LlmEngine engine(sim, makeConfig());
    std::vector<sim::Task<GenResult>> tasks;
    for (int i = 0; i < 12; ++i) {
        // Re-submit a few popular prompts to exercise sharing.
        const std::uint64_t stream = 100 + (i % 5);
        tasks.push_back(submit(engine, stream, 200 + 40 * (i % 4),
                               20 + i));
    }
    sim.run();
    int terminated = 0;
    for (auto &t : tasks) {
        ASSERT_TRUE(t.done());
        const GenResult r = t.result();
        EXPECT_TRUE(r.failed || r.truncated ||
                    static_cast<int>(r.tokens.size()) >= 20);
        ++terminated;
    }
    EXPECT_EQ(terminated, 12);
    const auto &st = engine.stats();
    EXPECT_EQ(st.requestsSubmitted,
              st.requestsCompleted + st.requestsFailed);
    EXPECT_NEAR(st.prefillSeconds + st.decodeSeconds, st.busySeconds,
                1e-6);
}

TEST_P(EngineMatrix, GeneratedTokensIndependentOfConfig)
{
    // The same request must yield identical output tokens no matter
    // how the engine is configured — scheduling and caching change
    // timing, never content.
    sim::Simulation sim;
    LlmEngine engine(sim, makeConfig());
    auto t = submit(engine, 7, 100, 16);
    sim.run();
    const GenResult r = t.result();
    if (r.failed || r.truncated)
        return; // tiny pools may legitimately truncate
    // Reference: default-config engine.
    EngineConfig ref_cfg;
    ref_cfg.model = llm::llama31_8b();
    ref_cfg.node = llm::singleA100();
    sim::Simulation ref_sim;
    LlmEngine ref(ref_sim, ref_cfg);
    auto rt = submit(ref, 7, 100, 16);
    ref_sim.run();
    EXPECT_EQ(r.tokens, rt.result().tokens);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineMatrix,
    ::testing::Combine(
        ::testing::Values(true, false),
        ::testing::Values(SchedulerPolicy::Fcfs,
                          SchedulerPolicy::ShortestPromptFirst),
        ::testing::Values(kv::EvictionPolicy::Lru,
                          kv::EvictionPolicy::Fifo),
        ::testing::Values(64, 512, 4096),
        ::testing::Values(0, 256)));

TEST(TraceExport, ChromeJsonStructure)
{
    agents::AgentResult result;
    result.timeline.push_back(
        {agents::Span::Kind::Llm, 0, 1500, "react.step"});
    result.timeline.push_back(
        {agents::Span::Kind::Tool, 1500, 2700,
         "wikipedia.\"search\""});
    const auto json =
        core::toChromeTrace(result, "ReAct / HotpotQA");
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"react.step\""), std::string::npos);
    // Quotes in labels are escaped.
    EXPECT_NE(json.find("wikipedia.\\\"search\\\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dur\":1200"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(TraceExport, WritesFile)
{
    agents::AgentResult result;
    result.timeline.push_back(
        {agents::Span::Kind::Llm, 10, 20, "x"});
    const std::string path = "/tmp/agentsim_trace_test.json";
    ASSERT_TRUE(core::writeChromeTrace(path, result, "test"));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

} // namespace
