/**
 * @file
 * Tests for the optimization features built from the paper's
 * keytakeaway proposals: KV eviction policies, the host-memory spill
 * tier, admission scheduling policies, speculative tool invocation,
 * and cluster routing.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "agents/workflows.hh"
#include "core/cluster.hh"
#include "core/probe.hh"
#include "core/serving_system.hh"
#include "core/table.hh"
#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "serving/disagg.hh"
#include "kv/block_manager.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace agentsim;
using agents::AgentKind;
using kv::BlockManager;
using kv::BlockManagerConfig;
using kv::EvictionPolicy;
using kv::TokenId;
using workload::Benchmark;

std::vector<TokenId>
tokenRange(TokenId start, std::size_t n)
{
    std::vector<TokenId> v(n);
    std::iota(v.begin(), v.end(), start);
    return v;
}

// ---------------------------------------------------------------
// Eviction policy.
// ---------------------------------------------------------------

TEST(EvictionPolicy, FifoEvictsFirstPublishedDespiteReuse)
{
    BlockManagerConfig cfg;
    cfg.numBlocks = 8;
    cfg.blockSize = 16;
    cfg.evictionPolicy = EvictionPolicy::Fifo;
    BlockManager mgr(cfg);

    // Publish A (4 blocks), then B (4 blocks); free both.
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 64)).has_value());
    ASSERT_TRUE(
        mgr.allocatePrompt(2, tokenRange(1000, 64)).has_value());
    mgr.release(1);
    mgr.release(2);

    // Touch A again (re-reference + release): under LRU this would
    // protect A; under FIFO it does not.
    auto again = mgr.allocatePrompt(3, tokenRange(0, 64));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->cachedTokens, 64);
    mgr.release(3);

    // Allocate fresh content requiring 4 evictions: FIFO removes A's
    // blocks (published first), so A misses afterwards but B hits.
    ASSERT_TRUE(
        mgr.allocatePrompt(4, tokenRange(2000, 64)).has_value());
    auto a_alloc = mgr.allocatePrompt(5, tokenRange(0, 64));
    // A was evicted: no hits (0 cached) — pool may be too tight to
    // even allocate; both are "A lost its cache" outcomes.
    if (a_alloc.has_value()) {
        EXPECT_EQ(a_alloc->cachedTokens, 0);
    }
    mgr.checkInvariants();
}

TEST(EvictionPolicy, LruProtectsRecentlyUsed)
{
    BlockManagerConfig cfg;
    cfg.numBlocks = 8;
    cfg.blockSize = 16;
    cfg.evictionPolicy = EvictionPolicy::Lru;
    BlockManager mgr(cfg);

    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 64)).has_value());
    ASSERT_TRUE(
        mgr.allocatePrompt(2, tokenRange(1000, 64)).has_value());
    mgr.release(1);
    mgr.release(2);
    // Touch A: now B is the LRU victim.
    auto again = mgr.allocatePrompt(3, tokenRange(0, 64));
    ASSERT_TRUE(again.has_value());
    mgr.release(3);

    ASSERT_TRUE(
        mgr.allocatePrompt(4, tokenRange(2000, 64)).has_value());
    mgr.release(4);
    // A survived the eviction wave.
    auto a_alloc = mgr.allocatePrompt(5, tokenRange(0, 64));
    ASSERT_TRUE(a_alloc.has_value());
    EXPECT_EQ(a_alloc->cachedTokens, 64);
    mgr.checkInvariants();
}

// ---------------------------------------------------------------
// Host-memory spill tier.
// ---------------------------------------------------------------

TEST(HostTier, EvictedBlocksRestoreFromHost)
{
    BlockManagerConfig cfg;
    cfg.numBlocks = 4;
    cfg.blockSize = 16;
    cfg.hostCacheBlocks = 64;
    BlockManager mgr(cfg);

    const auto prompt_a = tokenRange(0, 64);
    ASSERT_TRUE(mgr.allocatePrompt(1, prompt_a).has_value());
    mgr.release(1);
    // Force A's eviction with fresh content.
    ASSERT_TRUE(
        mgr.allocatePrompt(2, tokenRange(1000, 64)).has_value());
    mgr.release(2);
    EXPECT_EQ(mgr.hostCachedBlocks(), 4); // A spilled to host

    // A comes back as restores, not recompute misses.
    auto alloc = mgr.allocatePrompt(3, prompt_a);
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->cachedTokens, 0);
    EXPECT_EQ(alloc->restoredTokens, 64);
    EXPECT_EQ(alloc->reusedTokens(), 64);
    EXPECT_EQ(mgr.stats().restoredTokens, 64);
    mgr.checkInvariants();
}

TEST(HostTier, DisabledMeansNoRestores)
{
    BlockManagerConfig cfg;
    cfg.numBlocks = 4;
    cfg.blockSize = 16;
    cfg.hostCacheBlocks = 0;
    BlockManager mgr(cfg);
    ASSERT_TRUE(mgr.allocatePrompt(1, tokenRange(0, 64)).has_value());
    mgr.release(1);
    ASSERT_TRUE(
        mgr.allocatePrompt(2, tokenRange(1000, 64)).has_value());
    mgr.release(2);
    EXPECT_EQ(mgr.hostCachedBlocks(), 0);
    auto alloc = mgr.allocatePrompt(3, tokenRange(0, 64));
    ASSERT_TRUE(alloc.has_value());
    EXPECT_EQ(alloc->restoredTokens, 0);
}

TEST(HostTier, CapacityIsBounded)
{
    BlockManagerConfig cfg;
    cfg.numBlocks = 4;
    cfg.blockSize = 16;
    cfg.hostCacheBlocks = 6;
    BlockManager mgr(cfg);
    // Cycle many distinct prompts through the tiny GPU pool.
    for (kv::SeqId s = 1; s <= 10; ++s) {
        ASSERT_TRUE(
            mgr.allocatePrompt(s, tokenRange(s * 10000, 64))
                .has_value());
        mgr.release(s);
    }
    EXPECT_LE(mgr.hostCachedBlocks(), 6);
    mgr.checkInvariants();
}

TEST(HostTier, EngineChargesTransferTime)
{
    // Two engines with identical tiny GPU pools; only one has a host
    // tier. After thrashing, the host-tier engine restores instead of
    // recomputing, cutting prefill work.
    auto make_cfg = [](std::int64_t host_blocks) {
        serving::EngineConfig cfg;
        cfg.model = llm::llama31_8b();
        cfg.node = llm::singleA100();
        cfg.kvPoolBytes = 64 * 16 * cfg.model.kvBytesPerToken();
        cfg.hostCacheBlocks = host_blocks;
        return cfg;
    };

    auto run = [&](std::int64_t host_blocks) {
        sim::Simulation sim;
        serving::LlmEngine engine(sim, make_cfg(host_blocks));
        const auto a = workload::makeTokens(7, 800);
        const auto b = workload::makeTokens(8, 800);
        // a, then b (evicting a), then a again.
        for (const auto *p : {&a, &b, &a}) {
            serving::GenRequest req;
            req.prompt = *p;
            req.maxNewTokens = 4;
            auto t = engine.generate(std::move(req));
            sim.run();
            (void)t.result();
        }
        return engine.cacheStats();
    };

    const auto without = run(0);
    const auto with = run(100000);
    EXPECT_EQ(without.restoredTokens, 0);
    // Most of the evicted 800-token prompt comes back from the host
    // tier (a few blocks survive on the GPU as ordinary hits).
    EXPECT_GT(with.restoredTokens, 400);
}

// ---------------------------------------------------------------
// Admission scheduling policy.
// ---------------------------------------------------------------

TEST(Scheduler, ShortestPromptFirstReordersQueue)
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    cfg.schedulerPolicy = serving::SchedulerPolicy::ShortestPromptFirst;
    cfg.maxRunningSeqs = 1; // force queueing

    sim::Simulation sim;
    serving::LlmEngine engine(sim, cfg);

    auto submit = [&](std::uint64_t stream, std::int64_t len) {
        serving::GenRequest req;
        req.prompt = workload::makeTokens(stream, len);
        req.maxNewTokens = 8;
        return engine.generate(std::move(req));
    };
    // Long request first occupies the engine; then a long and a short
    // wait. SPF admits the short one next despite arrival order.
    auto first = submit(1, 2000);
    auto long_wait = submit(2, 2000);
    auto short_wait = submit(3, 64);
    sim.run();
    const auto r_long = long_wait.result();
    const auto r_short = short_wait.result();
    (void)first.result();
    EXPECT_LT(r_short.finishTick, r_long.finishTick);
}

TEST(Scheduler, FcfsPreservesArrivalOrder)
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    cfg.schedulerPolicy = serving::SchedulerPolicy::Fcfs;
    cfg.maxRunningSeqs = 1;

    sim::Simulation sim;
    serving::LlmEngine engine(sim, cfg);
    auto submit = [&](std::uint64_t stream, std::int64_t len) {
        serving::GenRequest req;
        req.prompt = workload::makeTokens(stream, len);
        req.maxNewTokens = 8;
        return engine.generate(std::move(req));
    };
    auto first = submit(1, 2000);
    auto long_wait = submit(2, 2000);
    auto short_wait = submit(3, 64);
    sim.run();
    (void)first.result();
    EXPECT_GT(short_wait.result().finishTick,
              long_wait.result().finishTick);
}

// ---------------------------------------------------------------
// Speculative tool invocation.
// ---------------------------------------------------------------

TEST(SpeculativeTools, ReducesLatencyOnSlowTools)
{
    auto run = [](bool speculative) {
        core::ProbeConfig cfg;
        cfg.agent = AgentKind::ReAct;
        cfg.bench = Benchmark::HotpotQA; // ~1.2 s tool calls
        cfg.engineConfig = core::enginePreset8b();
        cfg.agentConfig.speculativeTools = speculative;
        cfg.numTasks = 20;
        cfg.seed = 77;
        return core::runProbe(cfg);
    };
    const auto off = run(false);
    const auto on = run(true);
    EXPECT_LT(on.e2eSeconds().mean(), off.e2eSeconds().mean());
    // Wrong predictions cost extra tool calls.
    EXPECT_GT(on.meanToolCalls(), off.meanToolCalls());
}

TEST(SpeculativeTools, OverlapAppearsInTimeline)
{
    core::ProbeConfig cfg;
    cfg.agent = AgentKind::ReAct;
    cfg.bench = Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.agentConfig.speculativeTools = true;
    cfg.numTasks = 10;
    cfg.seed = 78;
    const auto r = core::runProbe(cfg);
    double overlap = 0.0;
    for (const auto &req : r.requests)
        overlap += req.result.latency.overlapSeconds;
    EXPECT_GT(overlap, 0.0);
}

// ---------------------------------------------------------------
// Cluster routing.
// ---------------------------------------------------------------

core::ClusterConfig
smallCluster(core::RoutePolicy policy)
{
    core::ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = policy;
    core::WorkloadSpec agent;
    agent.agent = AgentKind::ReAct;
    agent.bench = Benchmark::WebShop;
    agent.weight = 1.0;
    cfg.mix.push_back(agent);
    core::WorkloadSpec agent2;
    agent2.agent = AgentKind::ReAct;
    agent2.bench = Benchmark::HotpotQA;
    agent2.weight = 1.0;
    cfg.mix.push_back(agent2);
    core::WorkloadSpec chat;
    chat.chatbot = true;
    chat.weight = 1.0;
    cfg.mix.push_back(chat);
    cfg.qps = 2.0;
    cfg.numRequests = 60;
    cfg.seed = 4;
    return cfg;
}

TEST(Cluster, AllPoliciesCompleteEveryRequest)
{
    for (auto policy : {core::RoutePolicy::RoundRobin,
                        core::RoutePolicy::LeastLoaded,
                        core::RoutePolicy::CacheAffinity}) {
        const auto r = core::runCluster(smallCluster(policy));
        EXPECT_EQ(r.completed, 60)
            << core::routePolicyName(policy);
        int assigned = 0;
        for (const auto &node : r.nodes)
            assigned += node.requests;
        EXPECT_EQ(assigned, 60);
        EXPECT_GT(r.throughputQps(), 0.0);
    }
}

TEST(Cluster, RoundRobinSpreadsEvenly)
{
    const auto r =
        core::runCluster(smallCluster(core::RoutePolicy::RoundRobin));
    for (const auto &node : r.nodes)
        EXPECT_EQ(node.requests, 20);
}

TEST(Cluster, AffinityConcentratesWorkflows)
{
    // With an agents-only mix, affinity pins each workflow to a home
    // node, so the per-node request distribution is much more skewed
    // than round-robin's even spread.
    auto cfg = smallCluster(core::RoutePolicy::CacheAffinity);
    cfg.mix.pop_back(); // drop the chatbot component
    cfg.numRequests = 90;
    const auto affinity = core::runCluster(cfg);

    cfg.policy = core::RoutePolicy::RoundRobin;
    const auto rr = core::runCluster(cfg);

    auto spread = [](const core::ClusterResult &r) {
        int lo = r.nodes.front().requests;
        int hi = lo;
        for (const auto &node : r.nodes) {
            lo = std::min(lo, node.requests);
            hi = std::max(hi, node.requests);
        }
        return hi - lo;
    };
    EXPECT_GT(spread(affinity), spread(rr));
    EXPECT_EQ(affinity.completed, 90);
}

// ---------------------------------------------------------------
// Self-Consistency extension.
// ---------------------------------------------------------------

TEST(SelfConsistency, StructureAndParallelism)
{
    core::ProbeConfig cfg;
    cfg.agent = AgentKind::SelfConsistency;
    cfg.bench = Benchmark::HotpotQA;
    cfg.engineConfig = core::enginePreset8b();
    cfg.agentConfig.scSamples = 5;
    cfg.numTasks = 5;
    cfg.seed = 13;
    const auto r = core::runProbe(cfg);
    for (const auto &req : r.requests) {
        EXPECT_EQ(req.result.llmCalls, 5);
        EXPECT_EQ(req.result.toolCalls, 0);
    }
    // Parallel samples: e2e is far below 5x a single CoT rationale.
    core::ProbeConfig cot = cfg;
    cot.agent = AgentKind::CoT;
    const auto rc = core::runProbe(cot);
    EXPECT_LT(r.e2eSeconds().mean(),
              3.0 * rc.e2eSeconds().mean());
}

TEST(SelfConsistency, SamplesShareThePromptPrefix)
{
    core::ProbeConfig cfg;
    cfg.agent = AgentKind::SelfConsistency;
    cfg.bench = Benchmark::Math;
    cfg.engineConfig = core::enginePreset8b();
    cfg.agentConfig.scSamples = 8;
    cfg.numTasks = 3;
    cfg.seed = 14;
    const auto r = core::runProbe(cfg);
    // With identical prompts, most of each request's prompt tokens
    // come from the prefix cache.
    double cached = 0.0;
    double total = 0.0;
    for (const auto &req : r.requests) {
        cached += static_cast<double>(
            req.result.cachedPromptTokensTotal);
        total += static_cast<double>(req.result.promptTokensTotal);
    }
    EXPECT_GT(cached / total, 0.5);
}

TEST(SelfConsistency, MoreSamplesNeverHurtMuch)
{
    auto accuracy = [](int n) {
        core::ProbeConfig cfg;
        cfg.agent = AgentKind::SelfConsistency;
        cfg.bench = Benchmark::Math;
        cfg.engineConfig = core::enginePreset8b();
        cfg.agentConfig.scSamples = n;
        cfg.numTasks = 60;
        cfg.seed = 15;
        return core::runProbe(cfg).accuracy();
    };
    const double few = accuracy(3);
    const double many = accuracy(16);
    EXPECT_GE(many, few);
}

TEST(SelfConsistency, SupportsOnlyLanguageOnlyBenchmarks)
{
    EXPECT_FALSE(agents::agentSupports(AgentKind::SelfConsistency,
                                       Benchmark::WebShop));
    EXPECT_TRUE(agents::agentSupports(AgentKind::SelfConsistency,
                                      Benchmark::Math));
}

// ---------------------------------------------------------------
// Static-search extensions (Tree-of-Thoughts, Best-of-N).
// ---------------------------------------------------------------

TEST(StaticSearch, TreeOfThoughtsStructure)
{
    core::ProbeConfig cfg;
    cfg.agent = AgentKind::TreeOfThoughts;
    cfg.bench = Benchmark::Math;
    cfg.engineConfig = core::enginePreset8b();
    cfg.agentConfig.latsChildren = 3;
    cfg.numTasks = 6;
    cfg.seed = 41;
    const auto r = core::runProbe(cfg);
    for (const auto &req : r.requests) {
        EXPECT_EQ(req.result.toolCalls, 0); // tool-free search
        // At least one level of (propose + evaluate) plus the answer.
        EXPECT_GE(req.result.llmCalls, 3 + 3 + 1);
    }
}

TEST(StaticSearch, BestOfNIssuesSamplesAndVerifiers)
{
    core::ProbeConfig cfg;
    cfg.agent = AgentKind::BestOfN;
    cfg.bench = Benchmark::Math;
    cfg.engineConfig = core::enginePreset8b();
    cfg.agentConfig.scSamples = 4;
    cfg.numTasks = 6;
    cfg.seed = 42;
    const auto r = core::runProbe(cfg);
    for (const auto &req : r.requests) {
        EXPECT_EQ(req.result.llmCalls, 4 + 4); // samples + verifiers
        EXPECT_EQ(req.result.toolCalls, 0);
    }
}

TEST(StaticSearch, ToolLessMethodsStayBelowLatsOnKnowledgeTasks)
{
    auto accuracy = [](AgentKind agent) {
        core::ProbeConfig cfg;
        cfg.agent = agent;
        cfg.bench = Benchmark::HotpotQA;
        cfg.engineConfig = core::enginePreset8b();
        cfg.numTasks = 50;
        cfg.seed = 43;
        return core::runProbe(cfg).accuracy();
    };
    const double lats = accuracy(AgentKind::Lats);
    EXPECT_GT(lats, accuracy(AgentKind::TreeOfThoughts) + 0.2);
    EXPECT_GT(lats, accuracy(AgentKind::BestOfN) + 0.2);
    EXPECT_GT(lats, accuracy(AgentKind::SelfConsistency) + 0.2);
}

// ---------------------------------------------------------------
// Actor-critic multi-agent extension.
// ---------------------------------------------------------------

TEST(ActorCritic, StructureLiesBetweenReactAndReflexion)
{
    auto probe = [](AgentKind agent) {
        core::ProbeConfig cfg;
        cfg.agent = agent;
        cfg.bench = Benchmark::HotpotQA;
        cfg.engineConfig = core::enginePreset8b();
        cfg.numTasks = 40;
        cfg.seed = 31;
        return core::runProbe(cfg);
    };
    const auto react = probe(AgentKind::ReAct);
    const auto duo = probe(AgentKind::ActorCritic);
    // The duo adds critic calls on top of actor trials.
    EXPECT_GT(duo.meanLlmCalls(), react.meanLlmCalls());
    EXPECT_GT(duo.e2eSeconds().mean(), react.e2eSeconds().mean());
    EXPECT_GE(duo.accuracy(), react.accuracy());
}

TEST(ActorCritic, SupportedOnAllAgenticBenchmarks)
{
    for (Benchmark b : workload::agenticBenchmarks) {
        EXPECT_TRUE(
            agents::agentSupports(AgentKind::ActorCritic, b));
    }
    EXPECT_FALSE(agents::agentSupports(AgentKind::ActorCritic,
                                       Benchmark::ShareGpt));
}

TEST(ActorCritic, RespectsRoundBudget)
{
    core::ProbeConfig cfg;
    cfg.agent = AgentKind::ActorCritic;
    cfg.bench = Benchmark::WebShop;
    cfg.engineConfig = core::enginePreset8b();
    cfg.agentConfig.maxReflections = 1; // at most 2 rounds
    cfg.agentConfig.maxIterations = 3;
    cfg.numTasks = 10;
    cfg.seed = 32;
    const auto r = core::runProbe(cfg);
    for (const auto &req : r.requests) {
        EXPECT_LE(req.result.reflectionsUsed, 1);
        // <= 2 actor trials x (3 steps) + 2 critic reviews +
        // 1 feedback.
        EXPECT_LE(req.result.llmCalls, 2 * 3 + 2 + 1);
    }
}

// ---------------------------------------------------------------
// Program-aware (least-attained-service) scheduling.
// ---------------------------------------------------------------

TEST(LasScheduling, ProtectsShortProgramsInMixedTraffic)
{
    auto run = [](serving::SchedulerPolicy policy) {
        core::ClusterConfig cfg;
        cfg.numNodes = 1;
        cfg.engineConfig = core::enginePreset8b();
        cfg.engineConfig.schedulerPolicy = policy;
        cfg.engineConfig.maxRunningSeqs = 6;
        core::WorkloadSpec chat;
        chat.chatbot = true;
        chat.weight = 2.0;
        cfg.mix.push_back(chat);
        core::WorkloadSpec agent;
        agent.agent = AgentKind::ReAct;
        agent.bench = Benchmark::HotpotQA;
        agent.weight = 1.0;
        cfg.mix.push_back(agent);
        cfg.qps = 2.0;
        cfg.numRequests = 90;
        cfg.seed = 51;
        return core::runCluster(cfg);
    };
    const auto fcfs = run(serving::SchedulerPolicy::Fcfs);
    const auto las =
        run(serving::SchedulerPolicy::LeastAttainedService);
    ASSERT_EQ(las.completed, 90);
    // Chat (single-call sessions with zero attained service) gets
    // ahead of long agent programs.
    EXPECT_LT(las.perWorkloadSeconds[0].percentile(95),
              fcfs.perWorkloadSeconds[0].percentile(95));
}

TEST(LasScheduling, EquivalentToFcfsForFreshSessions)
{
    // With single-call sessions only, every session has zero attained
    // service, so LAS degenerates to arrival order.
    auto run = [](serving::SchedulerPolicy policy) {
        core::ServeConfig cfg;
        cfg.chatbot = true;
        cfg.engineConfig = core::enginePreset8b();
        cfg.engineConfig.schedulerPolicy = policy;
        cfg.engineConfig.maxRunningSeqs = 4;
        cfg.qps = 3.0;
        cfg.numRequests = 40;
        cfg.seed = 52;
        return core::runServing(cfg);
    };
    const auto fcfs = run(serving::SchedulerPolicy::Fcfs);
    const auto las =
        run(serving::SchedulerPolicy::LeastAttainedService);
    EXPECT_DOUBLE_EQ(fcfs.p95(), las.p95());
    EXPECT_DOUBLE_EQ(fcfs.makespanSeconds, las.makespanSeconds);
}

// ---------------------------------------------------------------
// Disaggregated prefill/decode serving.
// ---------------------------------------------------------------

sim::Task<serving::GenResult>
disaggSubmit(serving::DisaggServer &server,
             std::vector<kv::TokenId> prompt, std::int64_t out)
{
    serving::GenRequest req;
    req.prompt = std::move(prompt);
    req.maxNewTokens = out;
    co_return co_await server.generate(std::move(req));
}

TEST(Disagg, SplitsPhasesAcrossNodes)
{
    sim::Simulation sim;
    serving::DisaggConfig cfg;
    cfg.prefillNode = core::enginePreset8b();
    cfg.decodeNode = core::enginePreset8b();
    serving::DisaggServer server(sim, cfg);

    auto t = disaggSubmit(server, workload::makeTokens(3, 1200), 40);
    sim.run();
    const auto r = t.result();
    EXPECT_FALSE(r.failed);
    EXPECT_EQ(r.tokens.size(), 40u);
    // The prefill node did the prompt work; the decode node's prefill
    // was a cache hit on the transferred KV.
    EXPECT_GT(server.prefillEngine().stats().prefillTokens, 1100);
    EXPECT_LT(server.decodeEngine().stats().prefillTokens, 100);
    EXPECT_GE(server.decodeEngine().stats().decodeTokens, 38);
    EXPECT_GT(r.ttftSeconds, 0.0);
    EXPECT_LT(r.ttftSeconds, r.totalSeconds);
}

TEST(Disagg, OutputMatchesAggregatedEngine)
{
    // Disaggregation must not change generated content... but note
    // tokens are a function of (engine seed, request id, index), and
    // the two architectures assign different request ids. Instead
    // check the structural guarantees: deterministic across runs and
    // correct lengths.
    auto run = [] {
        sim::Simulation sim;
        serving::DisaggConfig cfg;
        cfg.prefillNode = core::enginePreset8b();
        cfg.decodeNode = core::enginePreset8b();
        serving::DisaggServer server(sim, cfg);
        auto t =
            disaggSubmit(server, workload::makeTokens(4, 500), 24);
        sim.run();
        return t.result();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_DOUBLE_EQ(a.totalSeconds, b.totalSeconds);
}

TEST(Disagg, SingleTokenRequestSkipsDecodeNode)
{
    sim::Simulation sim;
    serving::DisaggConfig cfg;
    cfg.prefillNode = core::enginePreset8b();
    cfg.decodeNode = core::enginePreset8b();
    serving::DisaggServer server(sim, cfg);
    auto t = disaggSubmit(server, workload::makeTokens(5, 300), 1);
    sim.run();
    EXPECT_EQ(t.result().tokens.size(), 1u);
    EXPECT_EQ(server.decodeEngine().stats().requestsSubmitted, 0);
}

TEST(Disagg, TransferTimeScalesWithPrompt)
{
    // Slower interconnect -> longer end-to-end for the same request.
    auto run = [](double bw) {
        sim::Simulation sim;
        serving::DisaggConfig cfg;
        cfg.prefillNode = core::enginePreset8b();
        cfg.decodeNode = core::enginePreset8b();
        cfg.interconnectBandwidth = bw;
        serving::DisaggServer server(sim, cfg);
        auto t =
            disaggSubmit(server, workload::makeTokens(6, 2000), 16);
        sim.run();
        return t.result().totalSeconds;
    };
    const double fast = run(200e9);
    const double slow = run(2e9);
    EXPECT_GT(slow, fast + 0.05);
}

// Regression (KV wire accounting): the decode-side preload reports
// how many blocks actually landed, and only those are charged to the
// interconnect. A second identical request finds the prefix already
// resident on the decode node and pays (nearly) nothing — pre-fix the
// caller billed the full prompt every time.
TEST(Disagg, WarmDecodePrefixSkipsWireTransfer)
{
    sim::Simulation sim;
    serving::DisaggConfig cfg;
    cfg.prefillNode = core::enginePreset8b();
    cfg.decodeNode = core::enginePreset8b();
    cfg.interconnectBandwidth = 2e9; // slow: the transfer dominates
    serving::DisaggServer server(sim, cfg);

    auto a = disaggSubmit(server, workload::makeTokens(7, 2000), 16);
    sim.run();
    const auto cold = a.result();
    ASSERT_FALSE(cold.failed);
    auto b = disaggSubmit(server, workload::makeTokens(7, 2000), 16);
    sim.run();
    const auto warm = b.result();
    ASSERT_FALSE(warm.failed);
    // 2000 tokens of KV at 2 GB/s is >100 ms of wire time the warm
    // request must not pay again.
    EXPECT_LT(warm.totalSeconds, cold.totalSeconds - 0.05);
}

// ---------------------------------------------------------------
// TTFT metric.
// ---------------------------------------------------------------

TEST(Ttft, ReportedAndOrderedSanely)
{
    core::ServeConfig cfg;
    cfg.chatbot = true;
    cfg.engineConfig = core::enginePreset8b();
    cfg.qps = 1.0;
    cfg.numRequests = 30;
    cfg.seed = 33;
    const auto r = core::runServing(cfg);
    ASSERT_EQ(r.ttftSeconds.count(), 30u);
    EXPECT_GT(r.ttftSeconds.min(), 0.0);
    // First token arrives well before the full response.
    EXPECT_LT(r.ttftSeconds.percentile(95), r.p50());
}

TEST(Ttft, CachingCutsFollowUpTtft)
{
    auto run = [](bool caching) {
        core::ServeConfig cfg;
        cfg.chatbot = true;
        cfg.multiTurn = true;
        cfg.engineConfig = core::enginePreset8b();
        cfg.engineConfig.enablePrefixCaching = caching;
        cfg.qps = 0.5;
        cfg.numRequests = 25;
        cfg.seed = 34;
        return core::runServing(cfg);
    };
    const auto with = run(true);
    const auto without = run(false);
    EXPECT_LT(with.ttftSeconds.percentile(95),
              0.6 * without.ttftSeconds.percentile(95));
}

// ---------------------------------------------------------------
// Multi-turn chat sessions (keytakeaway #8 extension).
// ---------------------------------------------------------------

TEST(MultiTurnChat, SessionSamplerDeterministicAndBounded)
{
    workload::ChatSessionSampler sampler(11);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const int turns = sampler.turnCount(i);
        EXPECT_GE(turns, 1);
        EXPECT_LE(turns, workload::ChatSessionSampler::maxTurns);
        EXPECT_EQ(turns, sampler.turnCount(i));
        for (int t = 0; t < turns; ++t) {
            const auto turn = sampler.turn(i, t);
            EXPECT_GT(turn.userTokens, 0);
            EXPECT_GT(turn.outputTokens, 0);
            EXPECT_EQ(turn.userTokens, sampler.turn(i, t).userTokens);
        }
    }
}

TEST(MultiTurnChat, TurnsVaryAcrossSessions)
{
    workload::ChatSessionSampler sampler(11);
    bool varies = false;
    const int first = sampler.turnCount(0);
    for (std::uint64_t i = 1; i < 50 && !varies; ++i)
        varies = sampler.turnCount(i) != first;
    EXPECT_TRUE(varies);
}

TEST(MultiTurnChat, CachingEliminatesMostPrefill)
{
    auto run = [](bool caching) {
        core::ServeConfig cfg;
        cfg.chatbot = true;
        cfg.multiTurn = true;
        cfg.engineConfig = core::enginePreset8b();
        cfg.engineConfig.enablePrefixCaching = caching;
        cfg.qps = 0.5;
        cfg.numRequests = 25;
        cfg.seed = 21;
        return core::runServing(cfg);
    };
    const auto with = run(true);
    const auto without = run(false);
    EXPECT_EQ(with.completed, 25);
    EXPECT_GT(with.turnSeconds.count(), 25u); // multi-turn sessions
    // Follow-up turns reuse the conversation prefix.
    EXPECT_GT(with.cacheHitRate, 0.5);
    EXPECT_LT(with.engineStats.prefillTokens,
              0.5 * static_cast<double>(
                        without.engineStats.prefillTokens));
}

// ---------------------------------------------------------------
// CSV export.
// ---------------------------------------------------------------

TEST(TableCsv, RenderEscapesAndSlugs)
{
    core::Table t("Fig 1: A / B (test)");
    t.header({"name", "value"});
    t.row({"plain", "1"});
    t.row({"with,comma", "quote\"inside"});
    const auto csv = t.renderCsv();
    EXPECT_NE(csv.find("name,value\n"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
    EXPECT_EQ(t.slug(), "fig-1-a-b-test");
}

TEST(TableCsv, WriteToFile)
{
    core::Table t("csv write test");
    t.header({"a", "b"});
    t.row({"1", "2"});
    const std::string path = "/tmp/agentsim_csv_test.csv";
    ASSERT_TRUE(t.writeCsv(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    std::fclose(f);
    EXPECT_STREQ(buf, "a,b\n");
    std::remove(path.c_str());
}

TEST(Cluster, Deterministic)
{
    const auto a = core::runCluster(
        smallCluster(core::RoutePolicy::LeastLoaded));
    const auto b = core::runCluster(
        smallCluster(core::RoutePolicy::LeastLoaded));
    EXPECT_DOUBLE_EQ(a.p95(), b.p95());
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
}

TEST(Chaos, ClusterSurvivesNodeCrashes)
{
    auto cfg = smallCluster(core::RoutePolicy::LeastLoaded);
    cfg.numRequests = 40;
    cfg.faults.nodeMtbfSeconds = 15.0;
    cfg.faults.nodeRestartMeanSeconds = 4.0;
    cfg.faults.stallMtbfSeconds = 10.0;
    cfg.faults.stallMeanSeconds = 0.2;
    cfg.faults.seed = 7;
    const auto r = core::runCluster(cfg);

    // Nothing hangs and nothing is lost: every request either
    // completed or was abandoned after exhausting its retries.
    EXPECT_EQ(r.completed + r.failed, 40);
    EXPECT_GT(r.completed, 20);
    EXPECT_GT(r.faultStats.crashes, 0);
    EXPECT_EQ(r.faultStats.crashes, r.faultStats.restarts);
    EXPECT_GT(r.faultStats.stalls, 0);
    EXPECT_GT(r.retries, 0);
    EXPECT_GT(r.failovers, 0);

    std::int64_t cancelled = 0;
    std::int64_t crashes = 0;
    double stall_seconds = 0.0;
    for (const auto &node : r.nodes) {
        cancelled += node.engineStats.requestsCancelled;
        crashes += node.engineStats.crashes;
        stall_seconds += node.engineStats.stallSeconds;
    }
    EXPECT_GT(cancelled, 0);
    EXPECT_EQ(crashes, r.faultStats.crashes);
    EXPECT_GT(stall_seconds, 0.0);
}

TEST(Chaos, DeterministicUnderFaults)
{
    auto cfg = smallCluster(core::RoutePolicy::RoundRobin);
    cfg.numRequests = 30;
    cfg.faults.nodeMtbfSeconds = 12.0;
    cfg.faults.nodeRestartMeanSeconds = 3.0;
    const auto a = core::runCluster(cfg);
    const auto b = core::runCluster(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.faultStats.crashes, b.faultStats.crashes);
    EXPECT_DOUBLE_EQ(a.p95(), b.p95());
}

TEST(Chaos, ToolFaultsAreNonFatal)
{
    auto cfg = smallCluster(core::RoutePolicy::RoundRobin);
    cfg.numRequests = 30;
    cfg.faults.toolFailureProb = 0.25;
    cfg.faults.toolSlowdownProb = 0.25;
    const auto r = core::runCluster(cfg);
    // Tool failures return an error observation the agent absorbs;
    // they never abort a rollout.
    EXPECT_EQ(r.completed, 30);
    EXPECT_EQ(r.failed, 0);
}

// ---------------------------------------------------------------
// Operational resilience: rolling maintenance, circuit breakers,
// overload brownout.
// ---------------------------------------------------------------

TEST(Resilience, RollingDrainMigrateLosesNoWork)
{
    auto cfg = smallCluster(core::RoutePolicy::LeastLoaded);
    cfg.numRequests = 60;
    cfg.maintenance.periodSeconds = 15.0;
    cfg.maintenance.drainDeadlineSeconds = 2.0;
    cfg.maintenance.downtimeSeconds = 3.0;
    cfg.maintenance.mode = sim::MaintenanceMode::DrainMigrate;
    const auto r = core::runCluster(cfg);

    // Nothing hangs and nothing is lost across the rolling restarts.
    EXPECT_EQ(r.completed + r.failed, 60);
    EXPECT_GT(r.maintenanceStats.cycles, 0);
    EXPECT_GT(r.drains, 0);
    EXPECT_GT(r.migratedRequests, 0);
    EXPECT_GT(r.migrationSeconds, 0.0);
    // Live migration keeps invested prefill alive: no request was
    // cancelled by a takedown, so no prefill GPU-s were thrown away.
    EXPECT_DOUBLE_EQ(r.lostPrefillSeconds, 0.0);
    for (const auto &node : r.nodes)
        EXPECT_EQ(node.engineStats.crashes, 0);
}

TEST(Resilience, CrashTakedownsLoseInvestedPrefill)
{
    auto cfg = smallCluster(core::RoutePolicy::LeastLoaded);
    cfg.numRequests = 60;
    cfg.maintenance.periodSeconds = 15.0;
    cfg.maintenance.downtimeSeconds = 3.0;
    cfg.maintenance.mode = sim::MaintenanceMode::Crash;
    const auto r = core::runCluster(cfg);

    EXPECT_EQ(r.completed + r.failed, 60);
    EXPECT_GT(r.maintenanceStats.cycles, 0);
    EXPECT_EQ(r.migratedRequests, 0);
    // The hard restarts destroyed in-flight prefill work that retries
    // then had to repeat — the bill drain+migrate avoids.
    EXPECT_GT(r.lostPrefillSeconds, 0.0);
    EXPECT_GT(r.retries, 0);
}

TEST(Resilience, DeterministicUnderMaintenance)
{
    auto cfg = smallCluster(core::RoutePolicy::LeastLoaded);
    cfg.numRequests = 40;
    cfg.maintenance.periodSeconds = 12.0;
    cfg.maintenance.drainDeadlineSeconds = 1.5;
    cfg.maintenance.downtimeSeconds = 2.0;
    cfg.maintenance.mode = sim::MaintenanceMode::DrainMigrate;
    const auto a = core::runCluster(cfg);
    const auto b = core::runCluster(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.migratedRequests, b.migratedRequests);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
}

TEST(Health, BreakerOpensOnSustainedFailureAndRecovers)
{
    core::HealthConfig hc; // defaults: open at 60% over >=4 events
    core::HealthRegistry reg(hc, 2);
    EXPECT_TRUE(reg.allows(0, 0));
    EXPECT_EQ(reg.state(0), core::BreakerState::Closed);

    for (int i = 0; i < 5; ++i)
        reg.reportFailure(0, sim::fromSeconds(0.1 * i));
    EXPECT_EQ(reg.state(0), core::BreakerState::Open);
    EXPECT_FALSE(reg.allows(0, sim::fromSeconds(1.0)));
    // The neighbour's breaker is independent.
    EXPECT_TRUE(reg.allows(1, sim::fromSeconds(1.0)));
    EXPECT_EQ(reg.opens(), 1);

    // Cool-down elapsed: the next pick is a half-open probe.
    EXPECT_TRUE(reg.allows(0, sim::fromSeconds(5.0)));
    EXPECT_EQ(reg.state(0), core::BreakerState::HalfOpen);
    // Two successful probes close it again.
    reg.reportSuccess(0, sim::fromSeconds(5.1));
    EXPECT_EQ(reg.state(0), core::BreakerState::HalfOpen);
    reg.reportSuccess(0, sim::fromSeconds(5.2));
    EXPECT_EQ(reg.state(0), core::BreakerState::Closed);
    EXPECT_EQ(reg.closes(), 1);
    // Closing reset the failure history: one new failure does not
    // immediately re-open on the stale EWMA.
    reg.reportFailure(0, sim::fromSeconds(5.3));
    EXPECT_EQ(reg.state(0), core::BreakerState::Closed);
}

TEST(Health, FailedProbeReopensForAFreshCoolDown)
{
    core::HealthConfig hc;
    core::HealthRegistry reg(hc, 1);
    for (int i = 0; i < 5; ++i)
        reg.reportFailure(0, sim::fromSeconds(0.1 * i));
    ASSERT_EQ(reg.state(0), core::BreakerState::Open);
    EXPECT_TRUE(reg.allows(0, sim::fromSeconds(5.0)));
    ASSERT_EQ(reg.state(0), core::BreakerState::HalfOpen);

    reg.reportFailure(0, sim::fromSeconds(5.1));
    EXPECT_EQ(reg.state(0), core::BreakerState::Open);
    EXPECT_EQ(reg.opens(), 2);
    // The cool-down restarts from the re-open, not the first open.
    EXPECT_FALSE(reg.allows(0, sim::fromSeconds(8.0)));
    EXPECT_TRUE(reg.allows(0, sim::fromSeconds(9.2)));
}

TEST(Health, DisabledBreakersAlwaysAllow)
{
    core::HealthConfig hc;
    hc.breakerEnabled = false;
    core::HealthRegistry reg(hc, 1);
    for (int i = 0; i < 20; ++i)
        reg.reportFailure(0, sim::fromSeconds(0.1 * i));
    EXPECT_TRUE(reg.allows(0, sim::fromSeconds(2.0)));
    EXPECT_EQ(reg.state(0), core::BreakerState::Closed);
    EXPECT_EQ(reg.opens(), 0);
    // The health EWMA still tracks, for observability.
    EXPECT_GT(reg.health(0).failureRate(sim::fromSeconds(2.0)), 0.9);
}

TEST(Brownout, EscalatesWithDwellAndRestoresWithHysteresis)
{
    core::BrownoutConfig bc;
    bc.enabled = true; // defaults: 0.90/0.65 KV, 1.5/0.75 burn, 4 s
    core::BrownoutController ctl(bc);
    EXPECT_EQ(ctl.level(), 0);

    // Pressure right away: the dwell time has not elapsed yet.
    ctl.observe(sim::fromSeconds(1.0), 0.95, 0.0);
    EXPECT_EQ(ctl.level(), 0);
    // One level per dwell window, never two at once.
    ctl.observe(sim::fromSeconds(5.0), 0.95, 0.0);
    EXPECT_EQ(ctl.level(), 1);
    ctl.observe(sim::fromSeconds(6.0), 0.5, 2.0); // burn alone
    EXPECT_EQ(ctl.level(), 1);                    // dwell again
    ctl.observe(sim::fromSeconds(10.0), 0.5, 2.0);
    EXPECT_EQ(ctl.level(), 2);
    ctl.observe(sim::fromSeconds(15.0), 0.95, 2.0);
    EXPECT_EQ(ctl.level(), 2); // capped at maxLevel

    // The mid-band holds the level (hysteresis): below the high
    // watermarks but not yet below the low ones.
    ctl.observe(sim::fromSeconds(20.0), 0.80, 1.0);
    EXPECT_EQ(ctl.level(), 2);
    // Full relief steps back down one dwell window at a time.
    ctl.observe(sim::fromSeconds(24.0), 0.5, 0.1);
    EXPECT_EQ(ctl.level(), 1);
    ctl.observe(sim::fromSeconds(25.0), 0.5, 0.1);
    EXPECT_EQ(ctl.level(), 1);
    ctl.observe(sim::fromSeconds(29.0), 0.5, 0.1);
    EXPECT_EQ(ctl.level(), 0);

    EXPECT_EQ(ctl.escalations(), 2);
    EXPECT_EQ(ctl.restorations(), 2);
    EXPECT_EQ(ctl.maxLevelReached(), 2);
}

TEST(Brownout, ApplyTrimsWidthThenDowngradesDeadlineless)
{
    core::BrownoutConfig bc;
    bc.enabled = true;
    core::BrownoutController ctl(bc);

    agents::AgentConfig base;
    base.latsChildren = 5;
    base.scSamples = 5;
    base.maxReflections = 3;

    // Level 0: rollouts run as configured.
    {
        AgentKind kind = AgentKind::Lats;
        agents::AgentConfig cfg = base;
        EXPECT_FALSE(ctl.apply(kind, cfg, Benchmark::WebShop));
        EXPECT_EQ(kind, AgentKind::Lats);
        EXPECT_EQ(cfg.latsChildren, 5);
    }

    ctl.observe(sim::fromSeconds(5.0), 0.95, 2.0);
    ASSERT_EQ(ctl.level(), 1);
    // Level 1 caps test-time-scaling width but keeps the workflow.
    {
        AgentKind kind = AgentKind::Lats;
        agents::AgentConfig cfg = base;
        EXPECT_TRUE(ctl.apply(kind, cfg, Benchmark::WebShop));
        EXPECT_EQ(kind, AgentKind::Lats);
        EXPECT_EQ(cfg.latsChildren, 2);
        EXPECT_EQ(cfg.scSamples, 2);
        EXPECT_EQ(cfg.maxReflections, 1);
    }

    ctl.observe(sim::fromSeconds(10.0), 0.95, 2.0);
    ASSERT_EQ(ctl.level(), 2);
    // Level 2 downgrades deadline-less rollouts to a cheaper
    // workflow...
    {
        AgentKind kind = AgentKind::Lats;
        agents::AgentConfig cfg = base;
        EXPECT_TRUE(ctl.apply(kind, cfg, Benchmark::WebShop));
        EXPECT_EQ(kind, AgentKind::ReAct);
    }
    // ...but deadline-bearing traffic keeps its configured workflow
    // (it is already bounded; swapping it mid-SLO helps nobody).
    {
        AgentKind kind = AgentKind::Lats;
        agents::AgentConfig cfg = base;
        cfg.llmDeadlineSeconds = 30.0;
        EXPECT_TRUE(ctl.apply(kind, cfg, Benchmark::WebShop));
        EXPECT_EQ(kind, AgentKind::Lats);
        EXPECT_EQ(cfg.latsChildren, 2);
    }
    EXPECT_GT(ctl.degradedRollouts(), 0);
}

// ---------------------------------------------------------------
// Autoscaler: controller state machine, warm-up pricing, admission
// control, and the elastic cluster end to end.
// ---------------------------------------------------------------

core::AutoscalerConfig
controllerConfig()
{
    core::AutoscalerConfig a;
    a.enabled = true;
    a.minNodes = 1;
    a.maxNodes = 4;
    a.arrivalTauSeconds = 20.0;
    a.nodeServiceQps = 1.0;
    a.targetUtilization = 0.75;
    a.scaleOutCooldownSeconds = 10.0;
    a.scaleInCooldownSeconds = 30.0;
    a.scaleInUtilization = 0.5;
    return a;
}

TEST(Autoscaler, CapacityPressureScalesOutAndCooldownSuppresses)
{
    core::AutoscalerController ctl(controllerConfig());

    // 4 requests/s sustained: after one tau the EWMA sits around
    // 4 * (1 - 1/e) ~ 2.5/s, well past one node's 0.75 * 1.0/s
    // capacity threshold.
    for (int i = 0; i <= 128; ++i)
        ctl.recordArrival(sim::fromSeconds(0.25 * i));
    const sim::Tick t20 = sim::fromSeconds(20.0);
    EXPECT_GT(ctl.predictedQps(t20), 2.0);

    EXPECT_EQ(ctl.evaluate(t20, 1, 0, 0.0),
              core::ScaleDecision::ScaleOut);
    EXPECT_EQ(ctl.lastReason(), "capacity");

    // Pressure persists but the cooldown window suppresses a second
    // order; the booting node already counts as provisioned.
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(22.0), 1, 1, 0.0),
              core::ScaleDecision::Hold);
    // Arrivals keep flowing (recorded through t=32), so once the
    // cooldown elapses demand still exceeds the now-2-node fleet and
    // the controller re-fires.
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(31.0), 2, 0, 0.0),
              core::ScaleDecision::ScaleOut);
    EXPECT_EQ(ctl.scaleOuts(), 2);
}

TEST(Autoscaler, QueueDelayAndBurnTriggersGateOnEvidence)
{
    auto cfg = controllerConfig();
    cfg.nodeServiceQps = 0.0; // capacity term off
    cfg.minDelaySamples = 4;
    cfg.queueDelayHighSeconds = 2.0;

    {
        core::AutoscalerController ctl(cfg);
        // Below minDelaySamples the estimator stays silent no matter
        // how bad the observations are.
        for (int i = 0; i < 3; ++i)
            ctl.recordQueueDelay(10.0);
        EXPECT_EQ(ctl.queueDelayPercentile(), 0.0);
        EXPECT_EQ(ctl.evaluate(sim::fromSeconds(1.0), 1, 0, 0.0),
                  core::ScaleDecision::Hold);
        ctl.recordQueueDelay(10.0);
        EXPECT_GT(ctl.queueDelayPercentile(), 2.0);
        EXPECT_EQ(ctl.evaluate(sim::fromSeconds(2.0), 1, 0, 0.0),
                  core::ScaleDecision::ScaleOut);
        EXPECT_EQ(ctl.lastReason(), "queue_delay");
        // Each decision resets the estimator: fresh evidence only.
        EXPECT_EQ(ctl.queueDelayPercentile(), 0.0);
    }
    {
        core::AutoscalerController ctl(cfg);
        EXPECT_EQ(ctl.evaluate(sim::fromSeconds(1.0), 1, 0, 2.0),
                  core::ScaleDecision::ScaleOut);
        EXPECT_EQ(ctl.lastReason(), "burn");
        // At the ceiling, pressure cannot order more nodes.
        EXPECT_EQ(ctl.evaluate(sim::fromSeconds(20.0), 4, 0, 5.0),
                  core::ScaleDecision::Hold);
    }
}

TEST(Autoscaler, ScaleInWaitsOutSustainedRelief)
{
    auto cfg = controllerConfig();
    cfg.scaleOutCooldownSeconds = 5.0;
    core::AutoscalerController ctl(cfg);

    // Load a 4/s estimate by t=10, then silence.
    for (int i = 0; i <= 40; ++i)
        ctl.recordArrival(sim::fromSeconds(0.25 * i));
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(10.0), 2, 0, 0.0),
              core::ScaleDecision::ScaleOut);

    // t=25: the estimate has decayed below pressure but not yet below
    // the scale-in band, and the relief window has not elapsed.
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(25.0), 3, 0, 0.0),
              core::ScaleDecision::Hold);
    // t=41: 31 s of quiet — past scaleInCooldownSeconds since both
    // the last pressure (t=10) and the last decision — and demand now
    // fits in one fewer node at scaleInUtilization.
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(41.0), 3, 0, 0.0),
              core::ScaleDecision::ScaleIn);
    EXPECT_EQ(ctl.lastReason(), "idle");
    // Back-to-back shrink is suppressed by the scale-in cooldown...
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(42.0), 2, 0, 0.0),
              core::ScaleDecision::Hold);
    // ...a warming node blocks shrink outright (capacity in flight
    // means the controller recently wanted MORE, not less)...
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(80.0), 2, 1, 0.0),
              core::ScaleDecision::Hold);
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(80.0), 2, 0, 0.0),
              core::ScaleDecision::ScaleIn);
    // ...and the floor is never breached.
    EXPECT_EQ(ctl.evaluate(sim::fromSeconds(200.0), 1, 0, 0.0),
              core::ScaleDecision::Hold);
    EXPECT_EQ(ctl.scaleIns(), 2);
}

TEST(Autoscaler, WarmupPricesBootPlusShardedWeightLoad)
{
    core::AutoscalerConfig a;
    a.nodeBootSeconds = 4.0;
    const llm::ModelSpec model = llm::llama31_8b();
    const llm::NodeSpec node = llm::singleA100();

    // Default bandwidth: the host->GPU (PCIe) offload link.
    const double expect_pcie =
        4.0 + model.weightBytes() /
                  static_cast<double>(node.numGpus) /
                  node.hostOffloadBandwidth;
    EXPECT_DOUBLE_EQ(core::nodeWarmupSeconds(a, model, node),
                     expect_pcie);

    // An explicit bandwidth overrides it; faster links load faster,
    // but the boot floor always remains.
    a.weightLoadBandwidth = 4.0 * node.hostOffloadBandwidth;
    const double fast = core::nodeWarmupSeconds(a, model, node);
    EXPECT_LT(fast, expect_pcie);
    EXPECT_GT(fast, a.nodeBootSeconds);
}

TEST(Admission, RejectsWhenProjectedDelayEatsBudget)
{
    auto cfg = controllerConfig();
    cfg.nodeServiceQps = 2.0;
    cfg.admissionDeadlineFraction = 0.5;
    core::AdmissionController ac(cfg);

    // Little's law with a pinned service rate: 4 queued / 2 per s.
    EXPECT_DOUBLE_EQ(ac.projectedDelaySeconds(4, 1, 0), 2.0);
    // 2 s projected vs a 5 s admissible share of a 10 s budget.
    EXPECT_TRUE(ac.admit(4, 1, 10.0, 0));
    // 15 s projected blows the same budget: reject-fast.
    EXPECT_FALSE(ac.admit(30, 1, 10.0, 0));
    EXPECT_EQ(ac.decisions(), 2);
    EXPECT_EQ(ac.rejects(), 1);
    // Deadline-less requests pass unless admissionMaxDelaySeconds
    // gates them.
    EXPECT_TRUE(ac.admit(1000, 1, 0.0, 0));
    cfg.admissionMaxDelaySeconds = 3.0;
    core::AdmissionController strict(cfg);
    EXPECT_FALSE(strict.admit(1000, 1, 0.0, 0));
}

TEST(Admission, ColdStartAdmitsUntilServiceRateIsLearned)
{
    auto cfg = controllerConfig();
    cfg.nodeServiceQps = 0.0; // learn the rate online
    core::AdmissionController ac(cfg);

    // No completions seen: no evidence of doom, everything admits.
    EXPECT_DOUBLE_EQ(ac.projectedDelaySeconds(100, 1, 0), 0.0);
    EXPECT_TRUE(ac.admit(100, 1, 1.0, 0));

    // Completions at 2/s teach the estimator; a deep queue on a
    // single node now projects far past a 1 s budget.
    for (int i = 0; i <= 40; ++i)
        ac.recordCompletion(sim::fromSeconds(0.5 * i));
    const sim::Tick t = sim::fromSeconds(20.0);
    EXPECT_GT(ac.projectedDelaySeconds(100, 1, t), 10.0);
    EXPECT_FALSE(ac.admit(100, 1, 1.0, t));
}

/** Small elastic cluster on a diurnal curve: chat-heavy so runs stay
 *  fast, sized so the controller demonstrably breathes. */
core::ClusterConfig
elasticCluster()
{
    core::ClusterConfig cfg;
    cfg.numNodes = 1;
    cfg.engineConfig = core::enginePreset8b();
    cfg.policy = core::RoutePolicy::LeastLoaded;
    core::WorkloadSpec chat;
    chat.chatbot = true;
    chat.weight = 1.0;
    cfg.mix.push_back(chat);
    cfg.numRequests = 300;
    cfg.seed = 11;
    cfg.chatDeadlineSeconds = 60.0;
    cfg.arrival.kind = core::ArrivalPattern::Kind::Diurnal;
    cfg.arrival.periodSeconds = 80.0;
    cfg.arrival.baseQps = 0.4;
    cfg.arrival.peakQps = 6.0;
    cfg.autoscaler.enabled = true;
    cfg.autoscaler.minNodes = 1;
    cfg.autoscaler.maxNodes = 3;
    cfg.autoscaler.nodeServiceQps = 1.5;
    cfg.autoscaler.scaleOutCooldownSeconds = 5.0;
    cfg.autoscaler.scaleInCooldownSeconds = 12.0;
    cfg.autoscaler.drainDeadlineSeconds = 3.0;
    return cfg;
}

TEST(Autoscaler, ElasticClusterScalesOutAndInLosslessly)
{
    const auto r = core::runCluster(elasticCluster());

    // Every request is accounted for and the fleet breathed.
    EXPECT_EQ(r.completed + r.failed, 300);
    EXPECT_GT(r.completed, 270);
    EXPECT_GE(r.scaleOuts, 1);
    EXPECT_GE(r.scaleIns, 1);
    EXPECT_GT(r.peakActiveNodes, 1);
    // Scale-in uses drain + live migration, never the crash path:
    // elasticity costs zero lost prefill and zero crash restarts.
    EXPECT_DOUBLE_EQ(r.lostPrefillSeconds, 0.0);
    for (const auto &node : r.nodes)
        EXPECT_EQ(node.engineStats.crashes, 0);
    // Capacity is billed from the scale-out decision to the end of
    // the run, so provisioned time bounds attributed busy time.
    double busy = 0.0;
    for (const auto &node : r.nodes)
        busy += node.engineStats.busySeconds;
    EXPECT_GE(r.provisionedGpuSeconds, busy);
    EXPECT_GT(r.warmupSecondsTotal, 0.0);
}

TEST(Autoscaler, DeterministicAcrossRuns)
{
    const auto a = core::runCluster(elasticCluster());
    const auto b = core::runCluster(elasticCluster());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.scaleOuts, b.scaleOuts);
    EXPECT_EQ(a.scaleIns, b.scaleIns);
    EXPECT_DOUBLE_EQ(a.makespanSeconds, b.makespanSeconds);
    EXPECT_DOUBLE_EQ(a.provisionedGpuSeconds,
                     b.provisionedGpuSeconds);
}

TEST(Autoscaler, WarmupIsChargedBeforeTrafficFlows)
{
    auto cfg = elasticCluster();
    // Boot takes longer than the whole run: scale-outs are ordered
    // and billed, but the nodes never finish warming.
    cfg.autoscaler.nodeBootSeconds = 10000.0;
    const auto r = core::runCluster(cfg);

    EXPECT_EQ(r.completed + r.failed, 300);
    EXPECT_GE(r.scaleOuts, 1);
    // No scaled-out node ever took a request...
    EXPECT_EQ(r.peakActiveNodes, 1);
    for (std::size_t i = 1; i < r.nodes.size(); ++i)
        EXPECT_EQ(r.nodes[i].requests, 0);
    // ...but its warm-up bill was still charged.
    EXPECT_GE(r.warmupSecondsTotal, 10000.0);
    EXPECT_EQ(r.scaleIns, 0);
}

TEST(ClusterValidation, RejectsNonsensicalConfigs)
{
    const auto valid = [] {
        core::ClusterConfig cfg;
        cfg.numNodes = 1;
        cfg.engineConfig = core::enginePreset8b();
        core::WorkloadSpec chat;
        chat.chatbot = true;
        cfg.mix.push_back(chat);
        return cfg;
    };
    // The baseline passes.
    core::validateClusterConfig(valid());

    {
        auto cfg = valid();
        cfg.autoscaler.enabled = true;
        cfg.autoscaler.minNodes = 3;
        cfg.autoscaler.maxNodes = 2;
        EXPECT_DEATH(core::validateClusterConfig(cfg),
                     "minNodes 3 > maxNodes 2");
    }
    {
        auto cfg = valid();
        cfg.autoscaler.enabled = true;
        cfg.autoscaler.minNodes = 0;
        EXPECT_DEATH(core::validateClusterConfig(cfg),
                     "0-node floor");
    }
    {
        auto cfg = valid();
        cfg.numNodes = 5;
        cfg.autoscaler.enabled = true; // maxNodes defaults to 4
        EXPECT_DEATH(core::validateClusterConfig(cfg),
                     "outside");
    }
    {
        auto cfg = valid();
        cfg.brownout.enabled = true;
        cfg.brownout.kvHighWatermark = 0.5;
        cfg.brownout.kvLowWatermark = 0.9;
        EXPECT_DEATH(core::validateClusterConfig(cfg),
                     "KV watermarks inverted");
    }
    {
        auto cfg = valid();
        cfg.arrival.kind = core::ArrivalPattern::Kind::Diurnal;
        cfg.arrival.periodSeconds = 100.0;
        cfg.arrival.burstStartFraction = 0.9;
        cfg.arrival.burstDurationSeconds = 20.0;
        EXPECT_DEATH(core::validateClusterConfig(cfg),
                     "overruns");
    }
    {
        auto cfg = valid();
        cfg.autoscaler.enabled = true;
        cfg.autoscaler.nodeServiceQps = 1.0;
        cfg.autoscaler.scaleInUtilization = 0.9; // >= target 0.75
        EXPECT_DEATH(core::validateClusterConfig(cfg),
                     "hysteresis");
    }
}

} // namespace
