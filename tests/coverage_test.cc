/**
 * @file
 * Breadth coverage: parameterized sweeps over the tool catalog and
 * benchmark profiles, energy cost/carbon math, kernel awaitable edge
 * cases, and engine limit enforcement.
 */

#include <gtest/gtest.h>

#include <functional>

#include "core/probe.hh"
#include "energy/projection.hh"
#include "sim/strfmt.hh"
#include "tools/catalog.hh"
#include "workload/token_stream.hh"
#include "workload/toolset_factory.hh"

namespace
{

using namespace agentsim;

// ---------------------------------------------------------------
// Tool catalog sweep: every CPU tool's sampled latency converges to
// its spec mean and observations respect their bounds.
// ---------------------------------------------------------------

struct ToolCase
{
    const char *name;
    std::function<std::unique_ptr<tools::Tool>(sim::Simulation &)>
        make;
};

class ToolCatalog : public ::testing::TestWithParam<ToolCase>
{
};

sim::Task<tools::ToolResult>
invokeOnce(tools::Tool &tool, sim::Rng &rng)
{
    co_return co_await tool.invoke(rng);
}

TEST_P(ToolCatalog, LatencyMatchesSpecMean)
{
    sim::Simulation sim;
    auto tool = GetParam().make(sim);
    auto *stochastic =
        dynamic_cast<tools::StochasticTool *>(tool.get());
    ASSERT_NE(stochastic, nullptr);

    sim::Rng rng(5, "catalog", 0);
    double total = 0.0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        auto t = invokeOnce(*tool, rng);
        sim.run();
        const auto r = t.result();
        total += r.latencySeconds;
        EXPECT_GE(r.observationTokens,
                  stochastic->observation().minTokens);
        EXPECT_LE(r.observationTokens,
                  stochastic->observation().maxTokens);
    }
    const double mean = total / n;
    EXPECT_NEAR(mean, stochastic->latency().mean(),
                0.12 * stochastic->latency().mean() + 1e-4);
    EXPECT_EQ(tool->invocations(), n);
    EXPECT_EQ(tool->name(), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    AllCpuTools, ToolCatalog,
    ::testing::Values(
        ToolCase{"wikipedia.search",
                 [](sim::Simulation &s) {
                     return tools::makeWikipediaSearch(s);
                 }},
        ToolCase{"wikipedia.lookup",
                 [](sim::Simulation &s) {
                     return tools::makeWikipediaLookup(s);
                 }},
        ToolCase{"webshop.search",
                 [](sim::Simulation &s) {
                     return tools::makeWebshopSearch(s);
                 }},
        ToolCase{"webshop.click",
                 [](sim::Simulation &s) {
                     return tools::makeWebshopClick(s);
                 }},
        ToolCase{"wolfram.alpha",
                 [](sim::Simulation &s) {
                     return tools::makeWolframAlpha(s);
                 }},
        ToolCase{"python.calc",
                 [](sim::Simulation &s) {
                     return tools::makePythonCalculator(s);
                 }}),
    [](const auto &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (c == '.')
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------
// Benchmark profile sweep.
// ---------------------------------------------------------------

class Profiles
    : public ::testing::TestWithParam<workload::Benchmark>
{
};

TEST_P(Profiles, FieldsAreSane)
{
    const auto &p = workload::profile(GetParam());
    EXPECT_EQ(p.id, GetParam());
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.taskDescription.empty());
    EXPECT_FALSE(p.toolDescription.empty());
    EXPECT_GT(p.instructionTokens, 0);
    EXPECT_GT(p.fewShotTokensPerExample, 0);
    EXPECT_GT(p.defaultFewShot, 0);
    EXPECT_GE(p.minHops, 1);
    EXPECT_GE(p.maxHops, p.minHops);
    EXPECT_GT(p.difficultyHi, p.difficultyLo);
    EXPECT_GT(p.noToolFactor, 0.0);
    EXPECT_LE(p.noToolFactor, 1.0);
    EXPECT_GT(p.dagFactor, 0.0);
    EXPECT_LE(p.dagFactor, 1.0);
    EXPECT_GE(p.dagDepProb, 0.0);
    EXPECT_LE(p.dagDepProb, 1.0);
}

TEST_P(Profiles, OutputSamplerRespectsFloor)
{
    const auto &p = workload::profile(GetParam());
    sim::Rng rng(9, "outputs", 0);
    for (int i = 0; i < 2000; ++i) {
        EXPECT_GE(p.sampleOutputTokens(rng, p.stepOutputMean), 8);
        EXPECT_GE(p.sampleUserTokens(rng), p.userTokenMin);
        EXPECT_LE(p.sampleUserTokens(rng), p.userTokenMax);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Agentic, Profiles,
    ::testing::ValuesIn(std::vector<workload::Benchmark>(
        workload::agenticBenchmarks.begin(),
        workload::agenticBenchmarks.end())),
    [](const auto &info) {
        return std::string(workload::benchmarkName(info.param));
    });

// ---------------------------------------------------------------
// Energy cost/carbon arithmetic.
// ---------------------------------------------------------------

TEST(EnergyEconomics, CostAndCarbonMath)
{
    // 1 Wh/query at 1M queries/day = 1 MWh/day.
    EXPECT_NEAR(energy::dailyCostUsd(1.0, 1e6),
                1000.0 * energy::usdPerKwh, 1e-9);
    EXPECT_NEAR(energy::dailyCo2Kg(1.0, 1e6),
                1000.0 * energy::kgCo2PerKwh, 1e-9);
    // Scale linearity.
    EXPECT_DOUBLE_EQ(energy::dailyCostUsd(2.0, 1e6),
                     2.0 * energy::dailyCostUsd(1.0, 1e6));
}

// ---------------------------------------------------------------
// strfmt edge cases.
// ---------------------------------------------------------------

TEST(Strfmt, Basics)
{
    EXPECT_EQ(sim::strfmt(nullptr), "");
    EXPECT_EQ(sim::strfmt("plain"), "plain");
    EXPECT_EQ(sim::strfmt("%d-%s", 7, "x"), "7-x");
    // Long outputs are not truncated.
    const std::string big = sim::strfmt("%0512d", 1);
    EXPECT_EQ(big.size(), 512u);
}

// ---------------------------------------------------------------
// Kernel awaitable edge cases.
// ---------------------------------------------------------------

TEST(Awaitables, AllOfEmptyVector)
{
    sim::Simulation sim;
    auto t = sim::allOf(std::vector<sim::Task<int>>{});
    sim.run();
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(t.result().empty());
}

sim::Task<void>
zeroDelay(sim::Simulation &sim, int *order, int id, int *next)
{
    co_await sim::delay(sim, 0);
    order[(*next)++] = id;
}

TEST(Awaitables, ZeroDelaysPreserveFifoOrder)
{
    sim::Simulation sim;
    int order[4] = {-1, -1, -1, -1};
    int next = 0;
    std::vector<sim::Task<void>> tasks;
    for (int i = 0; i < 4; ++i)
        tasks.push_back(zeroDelay(sim, order, i, &next));
    sim.run();
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(order[i], i);
    EXPECT_EQ(sim.now(), 0);
}

// ---------------------------------------------------------------
// Engine limit enforcement.
// ---------------------------------------------------------------

sim::Task<serving::GenResult>
submitOne(serving::LlmEngine &engine, std::uint64_t stream,
          std::int64_t len, std::int64_t out)
{
    serving::GenRequest req;
    req.prompt = workload::makeTokens(stream, len);
    req.maxNewTokens = out;
    co_return co_await engine.generate(std::move(req));
}

TEST(EngineLimits, MaxRunningSeqsBoundsTheBatch)
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    cfg.maxRunningSeqs = 4;
    sim::Simulation sim;
    serving::LlmEngine engine(sim, cfg);
    std::vector<sim::Task<serving::GenResult>> tasks;
    for (int i = 0; i < 16; ++i)
        tasks.push_back(
            submitOne(engine, 50 + static_cast<std::uint64_t>(i),
                      200, 40));
    sim.run();
    for (auto &t : tasks)
        EXPECT_EQ(t.result().tokens.size(), 40u);
    EXPECT_LE(engine.batchGauge().max(), 4.0);
}

TEST(EngineLimits, QueueDrainsToZero)
{
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    cfg.maxRunningSeqs = 2;
    sim::Simulation sim;
    serving::LlmEngine engine(sim, cfg);
    std::vector<sim::Task<serving::GenResult>> tasks;
    for (int i = 0; i < 6; ++i)
        tasks.push_back(
            submitOne(engine, 80 + static_cast<std::uint64_t>(i),
                      150, 10));
    sim.run();
    for (auto &t : tasks)
        (void)t.result();
    EXPECT_EQ(engine.queueDepth(), 0u);
    EXPECT_EQ(engine.runningCount(), 0u);
}

// ---------------------------------------------------------------
// Perf-model scaling properties.
// ---------------------------------------------------------------

TEST(PerfScaling, TensorParallelismSpeedsDecode)
{
    // The same model on more GPUs decodes faster (sub-linearly).
    auto node1 = llm::singleA100();
    auto node8 = llm::octoA100();
    // Use the 8B model (fits both) for an apples-to-apples check.
    llm::PerfModel m1(llm::llama31_8b(), node1);
    llm::PerfModel m8(llm::llama31_8b(), node8);
    const double t1 = m1.decodeSecondsSingle(1000);
    const double t8 = m8.decodeSecondsSingle(1000);
    EXPECT_LT(t8, t1);
    EXPECT_GT(t8, t1 / 8.0); // TP inefficiency
}

TEST(PerfScaling, AttentionCostGrowsWithContext)
{
    llm::PerfModel m(llm::llama31_8b(), llm::singleA100());
    const double short_ctx = m.decodeSecondsSingle(100);
    const double long_ctx = m.decodeSecondsSingle(60000);
    EXPECT_GT(long_ctx, 1.2 * short_ctx);
}

} // namespace
