/**
 * @file
 * Unit tests for the windowed time-series store and the flight
 * recorder: ring wraparound, windowed queries, trigger debounce, the
 * disk budget, the deadline-miss spike detector, and the recorder-off
 * bit-identity contract at the serving layer.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/probe.hh"
#include "core/serving_system.hh"
#include "sim/types.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/session.hh"
#include "telemetry/timeseries.hh"

namespace
{

using namespace agentsim;
using sim::fromSeconds;
using telemetry::FlightRecorder;
using telemetry::IncidentTrigger;
using telemetry::TimeSeriesStore;

/** Fresh per-test incident directory under the gtest temp dir. */
std::string
incidentDir(const std::string &name)
{
    const auto dir =
        std::filesystem::path(::testing::TempDir()) / "agentsim" / name;
    std::filesystem::remove_all(dir);
    return dir.string();
}

TEST(TimeSeries, RingWrapKeepsNewestPointsInOrder)
{
    TimeSeriesStore ts;
    TimeSeriesStore::Config cfg;
    cfg.capacity = 8;
    ts.setConfig(cfg);
    for (int i = 0; i < 20; ++i)
        ts.record("queue", fromSeconds(i), static_cast<double>(i));
    EXPECT_EQ(ts.seriesCount(), 1u);
    EXPECT_EQ(ts.pointsRetained(), 8u);

    const auto w = ts.window("queue", 0, fromSeconds(100));
    ASSERT_EQ(w.size(), 8u); // only the newest 8 survive the wrap
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w[i].tick, fromSeconds(12 + static_cast<int>(i)));
        EXPECT_DOUBLE_EQ(w[i].value, 12.0 + static_cast<double>(i));
    }
}

TEST(TimeSeries, WindowedRateAndDerivative)
{
    TimeSeriesStore ts;
    // A counter climbing 10/s, sampled once a second.
    for (int i = 0; i <= 10; ++i)
        ts.record("requests_total", fromSeconds(i), 10.0 * i);

    EXPECT_NEAR(ts.windowRate("requests_total", 0, fromSeconds(10)),
                10.0, 1e-9);
    // Restricting the window restricts the rate computation to the
    // in-window endpoints: (50 - 20) / 3s.
    EXPECT_NEAR(ts.windowRate("requests_total", fromSeconds(2),
                              fromSeconds(5)),
                10.0, 1e-9);
    EXPECT_NEAR(ts.windowDerivative("requests_total", 0,
                                    fromSeconds(10)),
                10.0, 1e-9);
    // Sub-two-point windows report 0 rather than inventing a slope.
    EXPECT_DOUBLE_EQ(ts.windowRate("requests_total", fromSeconds(4),
                                   fromSeconds(4)),
                     0.0);
    EXPECT_DOUBLE_EQ(ts.windowRate("absent", 0, fromSeconds(10)), 0.0);

    const auto stats =
        ts.windowStats("requests_total", fromSeconds(3), fromSeconds(7));
    EXPECT_EQ(stats.samples, 5u);
    EXPECT_DOUBLE_EQ(stats.min, 30.0);
    EXPECT_DOUBLE_EQ(stats.max, 70.0);
    EXPECT_DOUBLE_EQ(stats.mean, 50.0);
    EXPECT_DOUBLE_EQ(stats.last, 70.0);
}

TEST(TimeSeries, CsvWindowIsLongFormatAndClipped)
{
    TimeSeriesStore ts;
    ts.record("a", fromSeconds(1), 1.0);
    ts.record("a", fromSeconds(9), 9.0);
    ts.record("b", fromSeconds(5), 5.0);
    const std::string csv =
        ts.renderCsvWindow(fromSeconds(4), fromSeconds(10));
    EXPECT_NE(csv.find("series,time_s,value"), std::string::npos);
    EXPECT_NE(csv.find("a,9.000000,9"), std::string::npos);
    EXPECT_NE(csv.find("b,5.000000,5"), std::string::npos);
    EXPECT_EQ(csv.find("a,1.000000"), std::string::npos); // clipped
}

TEST(FlightRecorderTest, DebouncePerTriggerKind)
{
    FlightRecorder::Config cfg;
    cfg.incidentDir = incidentDir("debounce");
    cfg.debounceSeconds = 30.0;
    cfg.windowSeconds = 10.0;
    FlightRecorder rec(cfg);

    rec.trigger(IncidentTrigger::SloBurn, fromSeconds(10), "first");
    rec.trigger(IncidentTrigger::SloBurn, fromSeconds(20), "debounced");
    // A different kind has its own debounce clock.
    rec.trigger(IncidentTrigger::Brownout, fromSeconds(20), "other");
    // Past the debounce interval the kind may fire again.
    rec.trigger(IncidentTrigger::SloBurn, fromSeconds(45), "second");

    EXPECT_EQ(rec.incidentsDumped(), 3);
    EXPECT_EQ(rec.skippedDebounce(), 1);
    EXPECT_EQ(rec.writeFailures(), 0);
    for (const auto &path : rec.incidentPaths()) {
        EXPECT_TRUE(std::filesystem::exists(
            std::filesystem::path(path) / "manifest.json"))
            << path;
        EXPECT_TRUE(std::filesystem::exists(
            std::filesystem::path(path) / "trace.json"))
            << path;
        EXPECT_TRUE(std::filesystem::exists(
            std::filesystem::path(path) / "timeseries.csv"))
            << path;
    }
}

TEST(FlightRecorderTest, DiskBudgetStopsDumps)
{
    FlightRecorder::Config cfg;
    cfg.incidentDir = incidentDir("budget");
    cfg.debounceSeconds = 0.001;
    cfg.diskBudgetBytes = 64; // smaller than any bundle
    FlightRecorder rec(cfg);

    rec.trigger(IncidentTrigger::BreakerOpen, fromSeconds(1), "x");
    rec.trigger(IncidentTrigger::BreakerOpen, fromSeconds(2), "y");

    EXPECT_EQ(rec.incidentsDumped(), 0);
    EXPECT_EQ(rec.skippedBudget(), 2);
    EXPECT_EQ(rec.bytesWritten(), 0);
    EXPECT_FALSE(std::filesystem::exists(cfg.incidentDir));
}

TEST(FlightRecorderTest, DeadlineMissSpikeSelfTriggers)
{
    FlightRecorder::Config cfg;
    cfg.incidentDir = incidentDir("miss_spike");
    cfg.missSpikeCount = 3;
    cfg.missWindowSeconds = 5.0;
    FlightRecorder rec(cfg);

    // Two misses spread outside the window: no spike.
    rec.noteDeadlineMiss(fromSeconds(1));
    rec.noteDeadlineMiss(fromSeconds(10));
    EXPECT_EQ(rec.incidentsDumped(), 0);
    // A third miss within 5s of the second completes the spike.
    rec.noteDeadlineMiss(fromSeconds(11));
    rec.noteDeadlineMiss(fromSeconds(12));
    EXPECT_EQ(rec.incidentsDumped(), 1);
}

TEST(FlightRecorderTest, BundleWindowClipsRingContent)
{
    FlightRecorder::Config cfg;
    cfg.incidentDir = incidentDir("window");
    cfg.windowSeconds = 10.0;
    FlightRecorder rec(cfg);

    // One event well before the window, one inside it.
    rec.noteTraceEvent(fromSeconds(1), fromSeconds(2),
                       "{\"name\":\"ancient\",\"ph\":\"X\",\"ts\":1}");
    rec.noteTraceEvent(fromSeconds(55), fromSeconds(56),
                       "{\"name\":\"recent\",\"ph\":\"X\",\"ts\":2}");
    telemetry::SpanCompletion sc;
    sc.requestKey = 7;
    sc.workflow = "w";
    sc.latencySeconds = 3.0;
    sc.start = fromSeconds(53);
    sc.end = fromSeconds(56);
    rec.noteSpanCompletion(sc);

    rec.trigger(IncidentTrigger::Autoscale, fromSeconds(60), "clip");
    ASSERT_EQ(rec.incidentsDumped(), 1);

    std::ifstream in(std::filesystem::path(rec.incidentPaths()[0]) /
                     "trace.json");
    const std::string trace((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    EXPECT_NE(trace.find("recent"), std::string::npos);
    EXPECT_EQ(trace.find("ancient"), std::string::npos);

    std::ifstream min(std::filesystem::path(rec.incidentPaths()[0]) /
                      "manifest.json");
    const std::string manifest((std::istreambuf_iterator<char>(min)),
                               std::istreambuf_iterator<char>());
    EXPECT_NE(manifest.find("\"schema\": \"agentsim-incident-v1\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"trigger\": \"autoscale\""),
              std::string::npos);
    EXPECT_NE(manifest.find("\"span_completions\": 1"),
              std::string::npos);
}

TEST(FlightRecorderTest, ClearDropsStateButKeepsConfig)
{
    FlightRecorder::Config cfg;
    cfg.incidentDir = incidentDir("clear");
    FlightRecorder rec(cfg);
    rec.noteTraceEvent(fromSeconds(1), fromSeconds(2), "{}");
    rec.trigger(IncidentTrigger::SloBurn, fromSeconds(5), "x");
    EXPECT_EQ(rec.incidentsDumped(), 1);

    rec.clear();
    EXPECT_EQ(rec.incidentsDumped(), 0);
    EXPECT_EQ(rec.traceEventsRetained(), 0u);
    EXPECT_EQ(rec.bytesWritten(), 0);
    EXPECT_EQ(rec.config().incidentDir, cfg.incidentDir);
}

TEST(FlightRecorderTest, RecorderOffRunIsBitIdentical)
{
    // The whole observability stack must be a pure observer: a run
    // with time-series sampling + recorder rings attached produces
    // exactly the same sim-domain results as a bare run.
    core::ServeConfig bare;
    bare.chatbot = true;
    bare.closedLoop = true;
    bare.numRequests = 12;
    bare.seed = 99;
    bare.engineConfig = core::enginePreset8b();
    const auto r1 = core::runServing(bare);

    telemetry::SessionTelemetry session;
    session.recorder.setConfig(
        {.incidentDir = incidentDir("identity")});
    core::ServeConfig wired = bare;
    wired.telemetry = &session;
    wired.recorder = &session.recorder;
    wired.timeseries = &session.timeseries;
    const auto r2 = core::runServing(wired);

    EXPECT_EQ(r1.completed, r2.completed);
    EXPECT_EQ(r1.solved, r2.solved);
    EXPECT_DOUBLE_EQ(r1.p50(), r2.p50());
    EXPECT_DOUBLE_EQ(r1.p95(), r2.p95());
    EXPECT_DOUBLE_EQ(r1.makespanSeconds, r2.makespanSeconds);
    EXPECT_DOUBLE_EQ(r1.engineStats.busySeconds,
                     r2.engineStats.busySeconds);
    // energyWh is deliberately NOT compared: the sampler's final wake
    // extends the sim end by at most one period (the same idiom the
    // cluster monitor uses), so idle energy billed to sim teardown
    // may include up to periodSeconds of extra idle draw. Bounded:
    EXPECT_NEAR(r1.energyWh, r2.energyWh,
                r1.energyWh * 0.001 + 1e-6);
    // And the observers did observe.
    EXPECT_GT(session.timeseries.pointsRetained(), 0u);
    EXPECT_GT(session.recorder.traceEventsRetained(), 0u);
}

} // namespace
