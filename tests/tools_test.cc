/**
 * @file
 * Tests for the simulated tool environments.
 */

#include <gtest/gtest.h>

#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "serving/engine.hh"
#include "tools/catalog.hh"

namespace
{

using namespace agentsim;
using sim::Simulation;
using sim::Task;
using tools::LatencySpec;
using tools::ObservationSpec;
using tools::Tool;
using tools::ToolResult;

Task<ToolResult>
invokeOnce(Tool &tool, sim::Rng &rng)
{
    co_return co_await tool.invoke(rng);
}

TEST(LatencySpec, ConstantAndUniform)
{
    sim::Rng rng(1, "lat", 0);
    LatencySpec c{LatencySpec::Dist::Constant, 0.5, 0.0};
    EXPECT_DOUBLE_EQ(c.sample(rng), 0.5);
    EXPECT_DOUBLE_EQ(c.mean(), 0.5);

    LatencySpec u{LatencySpec::Dist::Uniform, 0.1, 0.3};
    for (int i = 0; i < 1000; ++i) {
        const double x = u.sample(rng);
        EXPECT_GE(x, 0.1);
        EXPECT_LE(x, 0.3);
    }
    EXPECT_DOUBLE_EQ(u.mean(), 0.2);
}

TEST(LatencySpec, LognormalMeanApproximatelyRight)
{
    sim::Rng rng(1, "lat", 1);
    LatencySpec l{LatencySpec::Dist::Lognormal, 1.2, 0.55};
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += l.sample(rng);
    EXPECT_NEAR(total / n, 1.2, 0.04);
    EXPECT_DOUBLE_EQ(l.mean(), 1.2);
}

TEST(ObservationSpec, ClampsToBounds)
{
    sim::Rng rng(1, "obs", 0);
    ObservationSpec spec{100.0, 500.0, 20, 150};
    for (int i = 0; i < 2000; ++i) {
        const auto n = spec.sample(rng);
        EXPECT_GE(n, 20);
        EXPECT_LE(n, 150);
    }
}

TEST(StochasticTool, AdvancesVirtualTime)
{
    Simulation sim;
    auto tool = tools::makeWikipediaSearch(sim);
    sim::Rng rng(1, "call", 0);
    auto t = invokeOnce(*tool, rng);
    sim.run();
    const ToolResult r = t.result();
    EXPECT_GT(r.latencySeconds, 0.0);
    EXPECT_GT(r.observationTokens, 0);
    EXPECT_FALSE(r.usedGpu);
    EXPECT_EQ(tool->invocations(), 1);
    EXPECT_NEAR(sim::toSeconds(sim.now()), r.latencySeconds, 1e-9);
}

TEST(StochasticTool, WebshopIsFastWikipediaIsSlow)
{
    Simulation sim;
    auto wiki = tools::makeWikipediaSearch(sim);
    auto shop = tools::makeWebshopSearch(sim);
    sim::Rng rng(1, "call", 0);
    double wiki_total = 0.0;
    double shop_total = 0.0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        auto a = invokeOnce(*wiki, rng);
        auto b = invokeOnce(*shop, rng);
        sim.run();
        wiki_total += a.result().latencySeconds;
        shop_total += b.result().latencySeconds;
    }
    // Paper: Wikipedia ~1.2 s, WebShop ~20 ms.
    EXPECT_NEAR(wiki_total / n, 1.2, 0.25);
    EXPECT_NEAR(shop_total / n, 0.022, 0.01);
    EXPECT_GT(wiki_total / n, 20.0 * shop_total / n);
}

TEST(SelfTestTool, UsesGpuThroughEngine)
{
    Simulation sim;
    serving::EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    serving::LlmEngine engine(sim, cfg);

    auto tool = tools::makeSelfTest(sim, engine, 7);
    EXPECT_TRUE(tool->usesGpu());
    sim::Rng rng(1, "call", 0);
    auto t = invokeOnce(*tool, rng);
    sim.run();
    const ToolResult r = t.result();
    EXPECT_TRUE(r.usedGpu);
    EXPECT_GT(r.observationTokens, 0);
    // The engine really served the test-generation call.
    EXPECT_EQ(engine.stats().requestsCompleted, 1);
    EXPECT_GT(engine.stats().busySeconds, 0.0);
    // Latency covers LLM generation plus sandbox execution.
    EXPECT_GT(r.latencySeconds, engine.stats().busySeconds);
}

TEST(ToolSet, PickCoversAllTools)
{
    Simulation sim;
    tools::ToolSet set;
    set.add(tools::makeWikipediaSearch(sim));
    set.add(tools::makeWikipediaLookup(sim));
    EXPECT_EQ(set.size(), 2u);
    sim::Rng rng(1, "pick", 0);
    bool saw0 = false;
    bool saw1 = false;
    for (int i = 0; i < 100; ++i) {
        tools::Tool &t = set.pick(rng);
        saw0 |= (&t == &set.at(0));
        saw1 |= (&t == &set.at(1));
    }
    EXPECT_TRUE(saw0);
    EXPECT_TRUE(saw1);
}

Task<void>
holdTool(Tool &tool, sim::Rng &rng)
{
    co_await tool.invoke(rng);
}

TEST(Tool, ConcurrencyLimitSerializesCalls)
{
    Simulation sim;
    tools::StochasticTool tool(
        sim, "limited", {LatencySpec::Dist::Constant, 1.0, 0.0},
        {50.0, 0.0, 50, 50}, /*max_concurrency=*/1);
    sim::Rng rng(1, "limited", 0);
    std::vector<Task<void>> calls;
    for (int i = 0; i < 3; ++i)
        calls.push_back(holdTool(tool, rng));
    sim.run();
    // Three serialized 1 s calls take 3 s.
    EXPECT_NEAR(sim::toSeconds(sim.now()), 3.0, 1e-6);
}

} // namespace
