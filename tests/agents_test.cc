/**
 * @file
 * Tests for the agent workflows: structural properties of each
 * workflow (call counts, timeline shape, token taxonomy), determinism,
 * the accuracy model, and cross-agent orderings the paper reports.
 */

#include <gtest/gtest.h>

#include <memory>

#include "agents/accuracy.hh"
#include "agents/plan.hh"
#include "agents/workflows.hh"
#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "workload/toolset_factory.hh"

namespace
{

using namespace agentsim;
using agents::AgentConfig;
using agents::AgentContext;
using agents::AgentKind;
using agents::AgentResult;
using workload::Benchmark;

/** A self-contained single-request agent harness. */
struct Harness
{
    sim::Simulation sim;
    serving::LlmEngine engine;
    std::unique_ptr<tools::ToolSet> tools;

    explicit Harness(std::uint64_t seed = 1)
        : engine(sim,
                 [] {
                     serving::EngineConfig cfg;
                     cfg.model = llm::llama31_8b();
                     cfg.node = llm::singleA100();
                     return cfg;
                 }()),
          seed_(seed)
    {
    }

    AgentResult
    runOne(AgentKind kind, Benchmark bench, std::uint64_t task_index,
           AgentConfig cfg = {})
    {
        tools = workload::makeToolSet(bench, sim, engine, seed_);
        workload::TaskGenerator gen(bench, seed_);
        AgentContext ctx;
        ctx.sim = &sim;
        ctx.engine = &engine;
        ctx.tools = tools.get();
        ctx.task = gen.sample(task_index);
        ctx.config = cfg;
        ctx.kind = kind;
        ctx.seed = seed_;

        auto agent = agents::makeAgent(kind);
        auto t = agent->run(ctx);
        sim.run();
        return t.result();
    }

  private:
    std::uint64_t seed_;
};

TEST(Capabilities, TableOne)
{
    const auto cot = agents::capabilities(AgentKind::CoT);
    EXPECT_TRUE(cot.reasoning);
    EXPECT_FALSE(cot.toolUse);
    const auto react = agents::capabilities(AgentKind::ReAct);
    EXPECT_TRUE(react.toolUse);
    EXPECT_FALSE(react.reflection);
    const auto reflexion = agents::capabilities(AgentKind::Reflexion);
    EXPECT_TRUE(reflexion.reflection);
    EXPECT_FALSE(reflexion.treeSearch);
    const auto lats = agents::capabilities(AgentKind::Lats);
    EXPECT_TRUE(lats.treeSearch);
    EXPECT_FALSE(lats.structuredPlanning);
    const auto compiler = agents::capabilities(AgentKind::LlmCompiler);
    EXPECT_TRUE(compiler.structuredPlanning);
}

TEST(Capabilities, SupportMatrix)
{
    EXPECT_FALSE(
        agents::agentSupports(AgentKind::CoT, Benchmark::WebShop));
    EXPECT_TRUE(
        agents::agentSupports(AgentKind::CoT, Benchmark::HotpotQA));
    EXPECT_FALSE(agents::agentSupports(AgentKind::LlmCompiler,
                                       Benchmark::Math));
    EXPECT_TRUE(agents::agentSupports(AgentKind::ReAct,
                                      Benchmark::HumanEval));
    EXPECT_FALSE(agents::agentSupports(AgentKind::ReAct,
                                       Benchmark::ShareGpt));
}

TEST(Accuracy, FewShotFactorShape)
{
    EXPECT_NEAR(agents::fewShotFactor(0), 0.62, 1e-9);
    EXPECT_GT(agents::fewShotFactor(4), agents::fewShotFactor(1));
    EXPECT_GT(agents::fewShotFactor(8), 0.95);
    // Overload: slightly declining past 8 examples.
    EXPECT_LT(agents::fewShotFactor(14), agents::fewShotFactor(8));
}

TEST(Accuracy, ReflectionFactorSaturates)
{
    EXPECT_DOUBLE_EQ(agents::reflectionFactor(0), 1.0);
    const double r1 = agents::reflectionFactor(1);
    const double r4 = agents::reflectionFactor(4);
    const double r8 = agents::reflectionFactor(8);
    EXPECT_GT(r1, 1.0);
    EXPECT_GT(r4, r1);
    EXPECT_LT(r8 - r4, r4 - r1); // diminishing
    EXPECT_LT(r8, 1.0 + agents::Calibration::reflectionGain + 1e-9);
}

TEST(Accuracy, HopProbabilityMonotonicities)
{
    const double base = agents::hopSuccessProb(0.5, 4, 0, 0.3);
    EXPECT_GT(agents::hopSuccessProb(0.7, 4, 0, 0.3), base);
    EXPECT_GT(agents::hopSuccessProb(0.5, 4, 2, 0.3), base);
    EXPECT_LT(agents::hopSuccessProb(0.5, 4, 0, 0.6), base);
    EXPECT_LT(agents::hopSuccessProb(0.5, 4, 0, 0.3, 0.5), base);
    EXPECT_GE(agents::hopSuccessProb(0.5, 4, 0, 5.0),
              agents::Calibration::pMin);
    EXPECT_LE(agents::hopSuccessProb(5.0, 40, 10, 0.0),
              agents::Calibration::pMax);
}

TEST(Accuracy, ModelQualityByName)
{
    EXPECT_DOUBLE_EQ(agents::modelQuality("Llama-3.1-8B-Instruct"),
                     agents::Calibration::quality8b);
    EXPECT_DOUBLE_EQ(agents::modelQuality("Llama-3.1-70B-Instruct"),
                     agents::Calibration::quality70b);
}

TEST(Accuracy, AnswerProbability)
{
    EXPECT_DOUBLE_EQ(agents::answerSuccessProb(3, 3),
                     agents::Calibration::finishSuccess);
    EXPECT_DOUBLE_EQ(agents::answerSuccessProb(0, 3), 0.0);
    EXPECT_LT(agents::answerSuccessProb(1, 3),
              agents::answerSuccessProb(2, 3));
}

TEST(PlanGraph, AcyclicAndWaved)
{
    sim::Rng rng(1, "plan", 0);
    const auto g = agents::PlanGraph::sample(rng, 8, 0.5);
    g.checkInvariants();
    const auto waves = g.topologicalWaves();
    int total = 0;
    for (const auto &w : waves)
        total += static_cast<int>(w.size());
    EXPECT_EQ(total, 8);
    EXPECT_EQ(g.criticalPathLength(),
              static_cast<int>(waves.size()));
}

TEST(PlanGraph, DenseDependenciesSerialize)
{
    sim::Rng rng(1, "plan", 1);
    double chain_len = 0.0;
    double free_len = 0.0;
    for (int i = 0; i < 50; ++i) {
        chain_len +=
            agents::PlanGraph::sample(rng, 6, 0.9).criticalPathLength();
        free_len +=
            agents::PlanGraph::sample(rng, 6, 0.1).criticalPathLength();
    }
    EXPECT_GT(chain_len, 2.0 * free_len);
}

TEST(Workflows, CotIsSingleCallNoTools)
{
    Harness h;
    const auto r = h.runOne(AgentKind::CoT, Benchmark::HotpotQA, 0);
    EXPECT_EQ(r.llmCalls, 1);
    EXPECT_EQ(r.toolCalls, 0);
    EXPECT_EQ(r.tokens.toolHistory, 0);
    EXPECT_EQ(r.tokens.llmHistory, 0);
    EXPECT_GT(r.tokens.output, 150); // long single rationale
    EXPECT_DOUBLE_EQ(r.latency.toolOnlySeconds, 0.0);
    EXPECT_DOUBLE_EQ(r.latency.overlapSeconds, 0.0);
}

TEST(Workflows, ReactAlternatesLlmAndTools)
{
    // Find a task where the agent takes at least two iterations (an
    // early premature-Finish on iteration one is legal behaviour).
    agents::AgentResult r;
    for (std::uint64_t task = 0; task < 16; ++task) {
        Harness h;
        r = h.runOne(AgentKind::ReAct, Benchmark::HotpotQA, task);
        if (r.llmCalls > 1)
            break;
    }
    EXPECT_GT(r.llmCalls, 1);
    EXPECT_GT(r.toolCalls, 0);
    EXPECT_LE(r.toolCalls, r.llmCalls);
    EXPECT_GT(r.tokens.toolHistory, 0);
    EXPECT_GT(r.tokens.llmHistory, 0);
    // Strictly sequential workflow: no LLM/tool overlap.
    EXPECT_DOUBLE_EQ(r.latency.overlapSeconds, 0.0);
    EXPECT_LE(r.iterationsUsed, AgentConfig{}.maxIterations);
}

TEST(Workflows, ReactRespectsIterationBudget)
{
    Harness h;
    AgentConfig cfg;
    cfg.maxIterations = 2;
    const auto r =
        h.runOne(AgentKind::ReAct, Benchmark::HotpotQA, 2, cfg);
    EXPECT_LE(r.llmCalls, 2);
    EXPECT_LE(r.toolCalls, 2);
}

TEST(Workflows, ContextGrowsAcrossReactIterations)
{
    Harness h;
    const auto r = h.runOne(AgentKind::ReAct, Benchmark::HotpotQA, 3);
    ASSERT_GE(r.perCall.size(), 2u);
    // Paper Fig 9: histories accumulate monotonically.
    for (std::size_t i = 1; i < r.perCall.size(); ++i) {
        EXPECT_GE(r.perCall[i].inputTotal(),
                  r.perCall[i - 1].inputTotal());
    }
    EXPECT_GT(r.perCall.back().inputTotal(),
              r.perCall.front().inputTotal());
    // Fixed segments stay constant.
    for (const auto &call : r.perCall) {
        EXPECT_EQ(call.instruction, r.perCall[0].instruction);
        EXPECT_EQ(call.fewShot, r.perCall[0].fewShot);
    }
}

TEST(Workflows, ReflexionRetriesAfterFailure)
{
    Harness h;
    AgentConfig cfg;
    // Force failure pressure: tiny iteration budget, several retries.
    cfg.maxIterations = 2;
    cfg.maxReflections = 3;
    const auto r =
        h.runOne(AgentKind::Reflexion, Benchmark::HotpotQA, 4, cfg);
    // With such a small budget at least one reflection is all but
    // certain; structurally we assert evaluate+reflect calls appear.
    if (r.reflectionsUsed > 0) {
        EXPECT_GT(r.llmCalls, r.iterationsUsed);
    }
    EXPECT_LE(r.reflectionsUsed, 3);
}

TEST(Workflows, LatsIssuesManyCallsWithParallelism)
{
    Harness h;
    const auto r = h.runOne(AgentKind::Lats, Benchmark::HotpotQA, 5);
    // Tree search multiplies LLM calls (paper: ~71 on average).
    EXPECT_GT(r.llmCalls, 8);
    EXPECT_GT(r.toolCalls, 4);
    // Parallel siblings: wall-clock LLM time is less than the sum of
    // individual spans would suggest — check via span overlap of the
    // timeline (at least two LLM spans share an instant).
    bool overlapping_llm = false;
    for (std::size_t i = 0; i < r.timeline.size() && !overlapping_llm;
         ++i) {
        for (std::size_t j = i + 1; j < r.timeline.size(); ++j) {
            const auto &a = r.timeline[i];
            const auto &b = r.timeline[j];
            if (a.kind == agents::Span::Kind::Llm &&
                b.kind == agents::Span::Kind::Llm &&
                a.start < b.end && b.start < a.end) {
                overlapping_llm = true;
                break;
            }
        }
    }
    EXPECT_TRUE(overlapping_llm);
}

TEST(Workflows, LatsChildCountScalesCalls)
{
    Harness h1;
    AgentConfig narrow;
    narrow.latsChildren = 1;
    narrow.maxIterations = 3;
    const auto r1 =
        h1.runOne(AgentKind::Lats, Benchmark::HotpotQA, 6, narrow);

    Harness h2;
    AgentConfig wide = narrow;
    wide.latsChildren = 6;
    const auto r6 =
        h2.runOne(AgentKind::Lats, Benchmark::HotpotQA, 6, wide);
    EXPECT_GT(r6.llmCalls, r1.llmCalls);
    EXPECT_GT(r6.toolCalls, r1.toolCalls);
}

TEST(Workflows, LlmCompilerOverlapsPlanningAndTools)
{
    Harness h;
    const auto r =
        h.runOne(AgentKind::LlmCompiler, Benchmark::HotpotQA, 7);
    EXPECT_GT(r.llmCalls, 1);
    EXPECT_GT(r.toolCalls, 0);
    // The signature feature: planning and tool execution overlap.
    EXPECT_GT(r.latency.overlapSeconds, 0.0);
}

TEST(Workflows, DeterministicAcrossRuns)
{
    for (AgentKind kind :
         {AgentKind::CoT, AgentKind::ReAct, AgentKind::Reflexion,
          AgentKind::Lats, AgentKind::LlmCompiler}) {
        Harness h1(99);
        Harness h2(99);
        const auto a = h1.runOne(kind, Benchmark::HotpotQA, 11);
        const auto b = h2.runOne(kind, Benchmark::HotpotQA, 11);
        EXPECT_EQ(a.llmCalls, b.llmCalls) << agents::agentName(kind);
        EXPECT_EQ(a.toolCalls, b.toolCalls);
        EXPECT_EQ(a.solved, b.solved);
        EXPECT_DOUBLE_EQ(a.e2eSeconds, b.e2eSeconds);
        EXPECT_DOUBLE_EQ(a.flops, b.flops);
    }
}

TEST(Workflows, ToolAugmentedAgentsCallLlmMoreThanCot)
{
    // Paper Fig 4: tool-augmented agents average ~9x CoT's single
    // call; LATS is the extreme.
    double cot = 0.0;
    double react = 0.0;
    double lats = 0.0;
    const int n = 8;
    for (int i = 0; i < n; ++i) {
        Harness hc;
        cot += hc.runOne(AgentKind::CoT, Benchmark::HotpotQA,
                         static_cast<std::uint64_t>(i))
                   .llmCalls;
        Harness hr;
        react += hr.runOne(AgentKind::ReAct, Benchmark::HotpotQA,
                           static_cast<std::uint64_t>(i))
                     .llmCalls;
        Harness hl;
        lats += hl.runOne(AgentKind::Lats, Benchmark::HotpotQA,
                          static_cast<std::uint64_t>(i))
                    .llmCalls;
    }
    EXPECT_DOUBLE_EQ(cot / n, 1.0);
    EXPECT_GT(react / n, 3.0);
    EXPECT_GT(lats / n, 2.5 * react / n);
}

TEST(Workflows, HotpotToolTimeDominatesWebshopDoesNot)
{
    // Paper Fig 5: slow Wikipedia calls dominate HotpotQA latency;
    // WebShop's 20 ms tools leave LLM time dominant.
    Harness h1;
    const auto hotpot =
        h1.runOne(AgentKind::ReAct, Benchmark::HotpotQA, 21);
    Harness h2;
    const auto shop =
        h2.runOne(AgentKind::ReAct, Benchmark::WebShop, 21);
    const double hotpot_tool_share =
        hotpot.latency.toolOnlySeconds / hotpot.e2eSeconds;
    const double shop_tool_share =
        shop.latency.toolOnlySeconds / shop.e2eSeconds;
    EXPECT_GT(hotpot_tool_share, 0.25);
    EXPECT_LT(shop_tool_share, 0.10);
}

} // namespace
