/**
 * @file
 * Unit tests for the discrete-event kernel: event queue ordering, the
 * clock, coroutine tasks, and awaitable primitives.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/awaitable.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace
{

using namespace agentsim;
using sim::Simulation;
using sim::Task;
using sim::Tick;

TEST(Types, SecondConversionsRoundTrip)
{
    EXPECT_EQ(sim::fromSeconds(1.0), sim::tickSec);
    EXPECT_EQ(sim::fromMillis(1.0), sim::tickMs);
    EXPECT_DOUBLE_EQ(sim::toSeconds(sim::fromSeconds(3.25)), 3.25);
    EXPECT_DOUBLE_EQ(sim::toMillis(sim::fromMillis(17.5)), 17.5);
}

TEST(EventQueue, OrdersByTime)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.push(30, [&] { order.push_back(3); });
    q.push(10, [&] { order.push_back(1); });
    q.push(20, [&] { order.push_back(2); });
    while (!q.empty())
        q.pop().action();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo)
{
    sim::EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.push(5, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().action();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulation, ClockAdvancesToEventTimes)
{
    Simulation s;
    std::vector<Tick> seen;
    s.schedule(100, [&] { seen.push_back(s.now()); });
    s.schedule(50, [&] { seen.push_back(s.now()); });
    const Tick end = s.run();
    EXPECT_EQ(end, 100);
    EXPECT_EQ(seen, (std::vector<Tick>{50, 100}));
}

TEST(Simulation, NestedScheduling)
{
    Simulation s;
    int fired = 0;
    s.schedule(10, [&] {
        s.schedule(5, [&] { fired = static_cast<int>(s.now()); });
    });
    s.run();
    EXPECT_EQ(fired, 15);
}

TEST(Simulation, RunUntilStopsAndSetsClock)
{
    Simulation s;
    int count = 0;
    for (Tick t = 10; t <= 100; t += 10)
        s.schedule(t, [&] { ++count; });
    s.runUntil(45);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(s.now(), 45);
    s.run();
    EXPECT_EQ(count, 10);
}

TEST(Simulation, ProcessedEventCount)
{
    Simulation s;
    for (int i = 0; i < 7; ++i)
        s.schedule(i, [] {});
    s.run();
    EXPECT_EQ(s.processedEvents(), 7u);
}

Task<void>
sleeper(Simulation &s, Tick d, Tick *woke)
{
    co_await sim::delay(s, d);
    *woke = s.now();
}

TEST(TaskCoroutine, DelayResumesAtRightTime)
{
    Simulation s;
    Tick woke = -1;
    auto t = sleeper(s, 250, &woke);
    EXPECT_FALSE(t.done());
    s.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(woke, 250);
}

Task<int>
answer(Simulation &s)
{
    co_await sim::delay(s, 10);
    co_return 42;
}

TEST(TaskCoroutine, ResultAfterRun)
{
    Simulation s;
    auto t = answer(s);
    s.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.result(), 42);
}

Task<int>
chained(Simulation &s)
{
    const int a = co_await answer(s);
    const int b = co_await answer(s);
    co_return a + b;
}

TEST(TaskCoroutine, AwaitingChildTasks)
{
    Simulation s;
    auto t = chained(s);
    s.run();
    EXPECT_EQ(t.result(), 84);
    EXPECT_EQ(s.now(), 20);
}

Task<int>
thrower(Simulation &s)
{
    co_await sim::delay(s, 1);
    throw std::runtime_error("boom");
}

Task<int>
catcher(Simulation &s, bool *caught)
{
    try {
        co_await thrower(s);
    } catch (const std::runtime_error &) {
        *caught = true;
    }
    co_return 7;
}

TEST(TaskCoroutine, ExceptionsPropagateToAwaiter)
{
    Simulation s;
    bool caught = false;
    auto t = catcher(s, &caught);
    s.run();
    EXPECT_TRUE(caught);
    EXPECT_EQ(t.result(), 7);
}

TEST(TaskCoroutine, ExceptionRethrownFromResult)
{
    Simulation s;
    auto t = thrower(s);
    s.run();
    EXPECT_THROW(t.result(), std::runtime_error);
}

Task<void>
detachee(Simulation &s, int *done)
{
    co_await sim::delay(s, 100);
    *done = 1;
}

TEST(TaskCoroutine, DetachedTaskKeepsRunning)
{
    Simulation s;
    int done = 0;
    {
        auto t = detachee(s, &done);
        // Task handle dropped here while the coroutine is suspended.
    }
    s.run();
    EXPECT_EQ(done, 1);
}

Task<std::vector<int>>
fanOut(Simulation &s)
{
    std::vector<Task<int>> children;
    for (int i = 0; i < 5; ++i)
        children.push_back(answer(s));
    co_return co_await sim::allOf(std::move(children));
}

TEST(TaskCoroutine, AllOfRunsChildrenConcurrently)
{
    Simulation s;
    auto t = fanOut(s);
    s.run();
    // All five children overlap: total virtual time is one delay.
    EXPECT_EQ(s.now(), 10);
    const auto results = t.result();
    ASSERT_EQ(results.size(), 5u);
    for (int v : results)
        EXPECT_EQ(v, 42);
}

Task<void>
completer(Simulation &s, sim::Completion<int> c)
{
    co_await sim::delay(s, 30);
    c.set(99);
}

Task<int>
waiter(sim::Completion<int> c)
{
    co_return co_await c;
}

TEST(Completion, WakesWaiters)
{
    Simulation s;
    sim::Completion<int> c(s);
    auto w1 = waiter(c);
    auto w2 = waiter(c);
    auto p = completer(s, c);
    s.run();
    EXPECT_EQ(w1.result(), 99);
    EXPECT_EQ(w2.result(), 99);
    EXPECT_EQ(s.now(), 30);
    EXPECT_TRUE(c.ready());
    EXPECT_EQ(c.peek(), 99);
}

TEST(Completion, AwaitAfterSetIsImmediate)
{
    Simulation s;
    sim::Completion<int> c(s);
    c.set(5);
    auto w = waiter(c);
    EXPECT_TRUE(w.done());
    EXPECT_EQ(w.result(), 5);
}

Task<void>
semUser(Simulation &s, sim::Semaphore &sem, Tick hold,
        std::vector<Tick> *entries)
{
    co_await sem.acquire();
    entries->push_back(s.now());
    co_await sim::delay(s, hold);
    sem.release();
}

TEST(Semaphore, LimitsConcurrency)
{
    Simulation s;
    sim::Semaphore sem(s, 2);
    std::vector<Tick> entries;
    std::vector<Task<void>> users;
    for (int i = 0; i < 4; ++i)
        users.push_back(semUser(s, sem, 10, &entries));
    s.run();
    ASSERT_EQ(entries.size(), 4u);
    // Two run immediately, two wait for the first releases.
    EXPECT_EQ(entries[0], 0);
    EXPECT_EQ(entries[1], 0);
    EXPECT_EQ(entries[2], 10);
    EXPECT_EQ(entries[3], 10);
    EXPECT_EQ(sem.available(), 2);
    EXPECT_EQ(sem.waiting(), 0u);
}

TEST(Rng, DeterministicStreams)
{
    sim::Rng a(1234, "test", 0);
    sim::Rng b(1234, "test", 0);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctStreamsDiffer)
{
    sim::Rng a(1234, "alpha", 0);
    sim::Rng b(1234, "beta", 0);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LE(same, 1);
}

TEST(Rng, UniformRange)
{
    sim::Rng r(7, "uniform", 0);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    sim::Rng r(7, "uniformInt", 0);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanApprox)
{
    sim::Rng r(7, "exp", 0);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += r.exponential(2.5);
    EXPECT_NEAR(total / n, 2.5, 0.05);
}

TEST(Rng, NormalMoments)
{
    sim::Rng r(7, "normal", 0);
    double total = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal(10.0, 3.0);
        total += x;
        sq += x * x;
    }
    const double mean = total / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, LognormalMeanMatchesRequestedMean)
{
    sim::Rng r(7, "lognormal", 0);
    double total = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        total += r.lognormalMean(1.2, 0.6);
    EXPECT_NEAR(total / n, 1.2, 0.03);
}

TEST(Rng, BernoulliFrequency)
{
    sim::Rng r(7, "bern", 0);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights)
{
    sim::Rng r(7, "cat", 0);
    std::vector<double> w{1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[r.categorical(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, PoissonMeanSmallAndLarge)
{
    sim::Rng r(7, "poisson", 0);
    double total_small = 0.0;
    double total_large = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        total_small += static_cast<double>(r.poisson(3.0));
        total_large += static_cast<double>(r.poisson(80.0));
    }
    EXPECT_NEAR(total_small / n, 3.0, 0.1);
    EXPECT_NEAR(total_large / n, 80.0, 0.5);
}

TEST(Hashing, Fnv1aStable)
{
    // Known stable values keep RNG streams reproducible across builds.
    EXPECT_EQ(sim::fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_NE(sim::fnv1a("a"), sim::fnv1a("b"));
    EXPECT_EQ(sim::fnv1a("agent"), sim::fnv1a("agent"));
}

} // namespace
