/**
 * @file
 * Tests for the vLLM-style serving engine: request lifecycle,
 * continuous batching, prefix caching, preemption, failure paths,
 * accounting, and energy.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "serving/engine.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace agentsim;
using serving::EngineConfig;
using serving::GenRequest;
using serving::GenResult;
using serving::LlmEngine;
using sim::Simulation;
using sim::Task;

EngineConfig
smallConfig(bool prefix_caching = true)
{
    EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    cfg.enablePrefixCaching = prefix_caching;
    return cfg;
}

std::vector<kv::TokenId>
prompt(std::uint64_t stream, std::int64_t n)
{
    return workload::makeTokens(workload::streamId(1, "test") + stream,
                                n);
}

Task<GenResult>
submit(LlmEngine &engine, std::vector<kv::TokenId> tokens,
       std::int64_t out)
{
    GenRequest req;
    req.prompt = std::move(tokens);
    req.maxNewTokens = out;
    co_return co_await engine.generate(std::move(req));
}

TEST(Engine, SingleRequestCompletes)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(0, 300), 50);
    sim.run();
    ASSERT_TRUE(t.done());
    const GenResult r = t.result();
    EXPECT_FALSE(r.failed);
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(r.tokens.size(), 50u);
    EXPECT_EQ(r.promptTokens, 300);
    EXPECT_GT(r.prefillSeconds, 0.0);
    EXPECT_GT(r.decodeSeconds, 0.0);
    EXPECT_GT(r.totalSeconds, r.prefillSeconds);
    EXPECT_DOUBLE_EQ(r.queueSeconds, 0.0);
    EXPECT_EQ(engine.stats().requestsCompleted, 1);
}

TEST(Engine, OutputTokensAreDeterministic)
{
    std::vector<kv::TokenId> first;
    for (int run = 0; run < 2; ++run) {
        Simulation sim;
        LlmEngine engine(sim, smallConfig());
        auto t = submit(engine, prompt(0, 100), 20);
        sim.run();
        auto r = t.result();
        if (run == 0)
            first = r.tokens;
        else
            EXPECT_EQ(first, r.tokens);
    }
}

TEST(Engine, DecodeLatencyInCalibratedRange)
{
    // ~250 output tokens at ~15-20 ms/token -> a few seconds
    // (ShareGPT-like single request, paper: 4.23 s average).
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(0, 310), 250);
    sim.run();
    const GenResult r = t.result();
    EXPECT_GT(r.totalSeconds, 2.0);
    EXPECT_LT(r.totalSeconds, 8.0);
}

TEST(Engine, PrefixCacheAcceleratesSecondRequest)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig(true));
    const auto p = prompt(7, 2000);
    auto t1 = submit(engine, p, 10);
    sim.run();
    const GenResult r1 = t1.result();

    auto t2 = submit(engine, p, 10);
    sim.run();
    const GenResult r2 = t2.result();

    EXPECT_EQ(r1.cachedPromptTokens, 0);
    EXPECT_GT(r2.cachedPromptTokens, 1900);
    EXPECT_LT(r2.prefillSeconds, 0.5 * r1.prefillSeconds);
}

TEST(Engine, NoCacheHitsWhenDisabled)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig(false));
    const auto p = prompt(7, 2000);
    auto t1 = submit(engine, p, 10);
    sim.run();
    auto t2 = submit(engine, p, 10);
    sim.run();
    EXPECT_EQ(t1.result().cachedPromptTokens, 0);
    EXPECT_EQ(t2.result().cachedPromptTokens, 0);
    EXPECT_EQ(engine.cacheStats().hitTokens, 0);
}

TEST(Engine, ContinuousBatchingOverlapsRequests)
{
    // Two concurrent requests should finish much sooner than twice the
    // single-request latency: decode steps share weight streaming.
    Simulation sim1;
    LlmEngine e1(sim1, smallConfig());
    auto a = submit(e1, prompt(1, 300), 100);
    sim1.run();
    const double solo = a.result().totalSeconds;

    Simulation sim2;
    LlmEngine e2(sim2, smallConfig());
    auto b = submit(e2, prompt(1, 300), 100);
    auto c = submit(e2, prompt(2, 300), 100);
    sim2.run();
    const double both = std::max(b.result().totalSeconds,
                                 c.result().totalSeconds);
    EXPECT_LT(both, 1.5 * solo);
    EXPECT_GT(both, solo);
}

TEST(Engine, ImpossiblePromptFails)
{
    auto cfg = smallConfig();
    // Tiny pool: 64 blocks of 16 tokens = 1024 tokens.
    cfg.kvPoolBytes = 64 * 16 * cfg.model.kvBytesPerToken();
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto t = submit(engine, prompt(0, 5000), 10);
    sim.run();
    const GenResult r = t.result();
    EXPECT_TRUE(r.failed);
    EXPECT_EQ(engine.stats().requestsFailed, 1);
}

TEST(Engine, ContextWindowRejection)
{
    auto cfg = smallConfig();
    cfg.model.contextWindow = 4096;
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto ok = submit(engine, prompt(1, 4000), 50);
    auto too_long = submit(engine, prompt(2, 4090), 50);
    sim.run();
    EXPECT_FALSE(ok.result().failed);
    const GenResult r = too_long.result();
    EXPECT_TRUE(r.failed);
    EXPECT_TRUE(r.tokens.empty());
    EXPECT_EQ(engine.stats().requestsFailed, 1);
}

TEST(Engine, PreemptionUnderMemoryPressure)
{
    auto cfg = smallConfig();
    // Room for roughly one long sequence at a time.
    cfg.kvPoolBytes = 48 * 16 * cfg.model.kvBytesPerToken();
    Simulation sim;
    LlmEngine engine(sim, cfg);
    // Two requests that each want most of the pool while generating.
    auto a = submit(engine, prompt(11, 320), 260);
    auto b = submit(engine, prompt(12, 320), 260);
    sim.run();
    const GenResult ra = a.result();
    const GenResult rb = b.result();
    EXPECT_FALSE(ra.failed);
    EXPECT_FALSE(rb.failed);
    EXPECT_EQ(ra.tokens.size(), 260u);
    EXPECT_EQ(rb.tokens.size(), 260u);
    EXPECT_GT(engine.stats().preemptions, 0);
}

TEST(Engine, LoneRequestTruncatesWhenPoolFills)
{
    auto cfg = smallConfig();
    cfg.kvPoolBytes = 8 * 16 * cfg.model.kvBytesPerToken(); // 128 toks
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto t = submit(engine, prompt(0, 100), 500);
    sim.run();
    const GenResult r = t.result();
    EXPECT_TRUE(r.truncated);
    EXPECT_LT(r.tokens.size(), 500u);
    EXPECT_FALSE(r.failed);
}

TEST(Engine, StatsAccounting)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto a = submit(engine, prompt(1, 400), 60);
    auto b = submit(engine, prompt(2, 600), 40);
    sim.run();
    (void)a.result();
    (void)b.result();
    const auto &st = engine.stats();
    EXPECT_EQ(st.requestsSubmitted, 2);
    EXPECT_EQ(st.requestsCompleted, 2);
    // Each request's first output token is emitted by the
    // prefill-completion step (vLLM semantics), so decode steps
    // account for outputs minus one per request.
    EXPECT_EQ(st.decodeTokens, 60 + 40 - 2);
    // Prefill processed every prompt token except cache hits; also the
    // split attribution sums back to busy time.
    EXPECT_GE(st.prefillTokens, 900);
    EXPECT_NEAR(st.prefillSeconds + st.decodeSeconds, st.busySeconds,
                1e-9);
    EXPECT_LE(st.busySeconds, sim::toSeconds(sim.now()) + 1e-9);
    EXPECT_GT(st.totalFlops, 0.0);
}

TEST(Engine, KvGaugeReturnsToZero)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(1, 500), 30);
    sim.run();
    (void)t.result();
    EXPECT_DOUBLE_EQ(engine.kvUsageGauge().current(), 0.0);
    EXPECT_GT(engine.kvUsageGauge().max(), 0.0);
}

TEST(Engine, EnergyIncludesIdleFloor)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(1, 300), 50);
    sim.run();
    (void)t.result();
    const double wall = sim::toSeconds(sim.now());
    const double idle_floor =
        engine.config().node.gpu.idlePower * wall;
    const double busy_ceiling =
        engine.config().node.gpu.tdp * wall;
    const double joules = engine.energyJoules(sim.now());
    EXPECT_GT(joules, idle_floor);
    EXPECT_LT(joules, busy_ceiling);
}

TEST(Engine, ManyConcurrentRequestsAllComplete)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    std::vector<Task<GenResult>> tasks;
    for (int i = 0; i < 32; ++i)
        tasks.push_back(submit(engine, prompt(100 + i, 200 + i), 30));
    sim.run();
    for (auto &t : tasks) {
        ASSERT_TRUE(t.done());
        EXPECT_EQ(t.result().tokens.size(), 30u);
    }
    EXPECT_EQ(engine.stats().requestsCompleted, 32);
    EXPECT_GT(engine.batchGauge().max(), 1.0);
}

TEST(Engine, SharedPrefixAcrossConcurrentRequests)
{
    // LATS-style: many parallel calls share a long prompt prefix; the
    // KV pool should hold far fewer blocks than sum of sequences.
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    const auto shared = prompt(42, 1600);
    std::vector<Task<GenResult>> tasks;
    for (int i = 0; i < 8; ++i) {
        auto p = shared;
        auto tail = prompt(900 + i, 64);
        p.insert(p.end(), tail.begin(), tail.end());
        tasks.push_back(submit(engine, std::move(p), 20));
    }
    sim.run();
    std::int64_t cached = 0;
    for (auto &t : tasks)
        cached += t.result().cachedPromptTokens;
    // At least the later seven should have hit the shared 1600-token
    // prefix (modulo chunked-prefill publication timing).
    EXPECT_GT(cached, 7 * 1200);
    const double seq_tokens = 8.0 * (1600 + 64 + 20);
    const double peak_blocks = engine.kvUsageGauge().max();
    EXPECT_LT(peak_blocks * 16, seq_tokens * 0.5);
}

Task<GenResult>
submitDeadline(LlmEngine &engine, std::vector<kv::TokenId> tokens,
               std::int64_t out, double deadline)
{
    GenRequest req;
    req.prompt = std::move(tokens);
    req.maxNewTokens = out;
    req.deadlineSeconds = deadline;
    co_return co_await engine.generate(std::move(req));
}

Task<GenResult>
submitTracked(LlmEngine &engine, std::vector<kv::TokenId> tokens,
              std::int64_t out, std::uint64_t *handle)
{
    GenRequest req;
    req.prompt = std::move(tokens);
    req.maxNewTokens = out;
    co_return co_await engine.generate(std::move(req), handle);
}

TEST(Engine, DeadlineExpiresWhileDecoding)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submitDeadline(engine, prompt(0, 300), 2000, 0.5);
    sim.run();
    const GenResult r = t.result();
    EXPECT_TRUE(r.timedOut);
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.retryable()); // the SLO is already missed
    // Partial decode output is returned with the timeout.
    EXPECT_GT(r.tokens.size(), 0u);
    EXPECT_LT(r.tokens.size(), 2000u);
    EXPECT_EQ(engine.stats().requestsTimedOut, 1);
    EXPECT_EQ(engine.stats().requestsCompleted, 0);
    EXPECT_EQ(engine.blockManager().usedBlocks(), 0);
    engine.blockManager().checkInvariants();
}

TEST(Engine, DeadlineExpiresWhileQueued)
{
    auto cfg = smallConfig();
    cfg.maxRunningSeqs = 1;
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto a = submit(engine, prompt(1, 300), 400);
    auto b = submitDeadline(engine, prompt(2, 300), 10, 0.2);
    sim.run();
    EXPECT_FALSE(a.result().timedOut);
    const GenResult rb = b.result();
    EXPECT_TRUE(rb.timedOut);
    EXPECT_EQ(rb.tokens.size(), 0u); // never scheduled
    EXPECT_DOUBLE_EQ(rb.queueSeconds, 0.0);
    EXPECT_EQ(engine.blockManager().usedBlocks(), 0);
    engine.blockManager().checkInvariants();
}

TEST(Engine, CancelWhileQueued)
{
    auto cfg = smallConfig();
    cfg.maxRunningSeqs = 1;
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto a = submit(engine, prompt(1, 300), 200);
    std::uint64_t handle = 0;
    auto b = submitTracked(engine, prompt(2, 300), 10, &handle);
    ASSERT_NE(handle, 0u); // valid as soon as generate() returns
    sim.schedule(sim::fromSeconds(0.05),
                 [&] { EXPECT_TRUE(engine.cancel(handle)); });
    sim.run();
    EXPECT_FALSE(a.result().cancelled);
    const GenResult rb = b.result();
    EXPECT_TRUE(rb.cancelled);
    EXPECT_FALSE(rb.nodeFailure);
    EXPECT_EQ(rb.tokens.size(), 0u);
    EXPECT_EQ(engine.stats().requestsCancelled, 1);
    // The id is gone: a second cancel is a no-op.
    EXPECT_FALSE(engine.cancel(handle));
    EXPECT_EQ(engine.blockManager().usedBlocks(), 0);
    engine.blockManager().checkInvariants();
}

TEST(Engine, CancelWhileDecodingMidStep)
{
    // Regression: the cancel lands while an engine step holding the
    // request in plan.decoders is in flight. commitStep must skip the
    // finished request instead of appending a token to its released
    // (now unknown) sequence.
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    std::uint64_t handle = 0;
    auto t = submitTracked(engine, prompt(3, 300), 2000, &handle);
    sim.schedule(sim::fromSeconds(0.8),
                 [&] { EXPECT_TRUE(engine.cancel(handle)); });
    sim.run();
    const GenResult r = t.result();
    EXPECT_TRUE(r.cancelled);
    EXPECT_GT(r.tokens.size(), 0u); // partial decode returned
    EXPECT_GT(r.decodeSeconds, 0.0);
    EXPECT_EQ(engine.blockManager().usedBlocks(), 0);
    EXPECT_DOUBLE_EQ(engine.kvUsageGauge().current(), 0.0);
    engine.blockManager().checkInvariants();
}

TEST(Engine, ShedUnderOverload)
{
    auto cfg = smallConfig();
    cfg.maxQueueDepth = 2;
    Simulation sim;
    LlmEngine engine(sim, cfg);
    std::vector<Task<GenResult>> tasks;
    for (int i = 0; i < 5; ++i)
        tasks.push_back(submit(engine, prompt(10 + i, 200), 5));
    sim.run();
    int shed = 0, completed = 0;
    for (auto &t : tasks) {
        const GenResult r = t.result();
        if (r.shed) {
            ++shed;
            EXPECT_TRUE(r.retryable());
            EXPECT_EQ(r.tokens.size(), 0u);
        } else {
            ++completed;
            EXPECT_TRUE(r.ok());
        }
    }
    // All five arrive before the first engine step: two queue, the
    // rest bounce off the depth limit.
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(shed, 3);
    EXPECT_EQ(engine.stats().requestsShed, 3);
    EXPECT_EQ(engine.stats().requestsCompleted, 2);
}

TEST(Engine, CrashCancelsEverythingAndColdRestarts)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());

    // Warm the prefix cache.
    auto warm = submit(engine, prompt(7, 512), 4);
    sim.run();
    EXPECT_TRUE(warm.result().ok());
    auto warm2 = submit(engine, prompt(7, 512), 4);
    sim.run();
    EXPECT_GT(warm2.result().cachedPromptTokens, 0);

    // Crash mid-decode: the victim resumes with a retryable failure.
    auto victim = submit(engine, prompt(7, 512), 2000);
    sim.schedule(sim::fromSeconds(0.5), [&] { engine.crash(); });
    sim.run();
    const GenResult rv = victim.result();
    EXPECT_TRUE(rv.cancelled);
    EXPECT_TRUE(rv.nodeFailure);
    EXPECT_TRUE(rv.retryable());
    EXPECT_FALSE(engine.online());
    EXPECT_EQ(engine.stats().crashes, 1);
    EXPECT_EQ(engine.blockManager().usedBlocks(), 0);
    engine.blockManager().checkInvariants();

    // While down, the engine refuses work without queueing it.
    auto refused = submit(engine, prompt(7, 512), 4);
    sim.run();
    EXPECT_TRUE(refused.result().nodeFailure);

    // After restart the node serves again — with a cold cache.
    engine.restart();
    EXPECT_TRUE(engine.online());
    auto cold = submit(engine, prompt(7, 512), 4);
    sim.run();
    const GenResult rc = cold.result();
    EXPECT_TRUE(rc.ok());
    EXPECT_EQ(rc.cachedPromptTokens, 0);
}

TEST(Engine, HostRestoreTimeIsAccounted)
{
    auto cfg = smallConfig();
    cfg.kvPoolBytes = 48 * 16 * cfg.model.kvBytesPerToken();
    cfg.hostCacheBlocks = 64;
    Simulation sim;
    LlmEngine engine(sim, cfg);

    // Fill with A, then evict it to the host tier with B.
    auto a = submit(engine, prompt(21, 512), 1);
    sim.run();
    ASSERT_TRUE(a.result().ok());
    auto b = submit(engine, prompt(22, 704), 1);
    sim.run();
    ASSERT_TRUE(b.result().ok());

    // Re-running A's prompt restores spilled blocks over PCIe; the
    // transfer time must show up in both per-request and engine
    // accounting (it is wall time, not GPU-busy time).
    auto c = submit(engine, prompt(21, 512), 1);
    sim.run();
    const GenResult rc = c.result();
    ASSERT_TRUE(rc.ok());
    EXPECT_GT(rc.cachedPromptTokens, 0);
    EXPECT_GT(rc.transferSeconds, 0.0);
    EXPECT_GT(engine.cacheStats().restoredTokens, 0);
    EXPECT_NEAR(engine.stats().transferSeconds, rc.transferSeconds,
                1e-12);
    engine.blockManager().checkInvariants();
}

TEST(Engine, NvmeRestoreCostsMoreThanDramRestore)
{
    // Same spill workload through a DRAM-only and an NVMe-only
    // hierarchy: the flash restore pays the (much lower) NVMe read
    // bandwidth, so its transfer charge is a multiple of the PCIe one.
    auto run = [](std::int64_t dram_blocks, std::int64_t nvme_blocks) {
        auto cfg = smallConfig();
        cfg.kvPoolBytes = 48 * 16 * cfg.model.kvBytesPerToken();
        cfg.hostCacheBlocks = dram_blocks;
        cfg.nvmeCacheBlocks = nvme_blocks;
        Simulation sim;
        LlmEngine engine(sim, cfg);
        auto a = submit(engine, prompt(21, 512), 1);
        sim.run();
        EXPECT_TRUE(a.result().ok());
        auto b = submit(engine, prompt(22, 704), 1);
        sim.run();
        EXPECT_TRUE(b.result().ok());
        auto c = submit(engine, prompt(21, 512), 1);
        sim.run();
        return c.result();
    };
    const GenResult dram = run(64, 0);
    const GenResult nvme = run(0, 64);
    // Identical eviction/restore pattern, different price.
    EXPECT_EQ(dram.cachedPromptTokens, nvme.cachedPromptTokens);
    EXPECT_GT(dram.transferSeconds, 0.0);
    // A100 PCIe 25 GB/s vs NVMe read 3.5 GB/s: ~7x.
    EXPECT_GT(nvme.transferSeconds, 5.0 * dram.transferSeconds);
}

Task<GenResult>
submitParked(LlmEngine &engine, std::vector<kv::TokenId> tokens,
             std::int64_t out, double park_seconds)
{
    GenRequest req;
    req.prompt = std::move(tokens);
    req.maxNewTokens = out;
    req.expectedParkSeconds = park_seconds;
    co_return co_await engine.generate(std::move(req));
}

TEST(Engine, ToolParkingDemotesAndPrefetchesChain)
{
    auto cfg = smallConfig();
    cfg.hostCacheBlocks = 256;
    // Exercise the parking mechanics unconditionally; the pressure
    // gate has its own test below.
    cfg.parkUtilizationThreshold = 0.0;
    Simulation sim;
    LlmEngine engine(sim, cfg);

    // Without a hint, finishing a request parks nothing.
    auto control = submit(engine, prompt(30, 256), 16);
    sim.run();
    ASSERT_TRUE(control.result().ok());
    EXPECT_EQ(engine.stats().parkedChains, 0);

    // A request carrying an expected tool wait parks its chain on
    // completion; the scheduled prefetch promotes it back before the
    // continuation arrives.
    const auto p = prompt(31, 512);
    auto t = submitParked(engine, p, 32, 1.2);
    sim.run();
    const GenResult parked = t.result();
    ASSERT_TRUE(parked.ok());
    EXPECT_EQ(engine.stats().parkedChains, 1);
    EXPECT_GT(engine.stats().parkedBlocks, 0);
    EXPECT_EQ(engine.stats().prefetchedBlocks,
              engine.stats().parkedBlocks);
    EXPECT_GT(engine.stats().parkDemoteSeconds, 0.0);
    EXPECT_GT(engine.stats().parkRestoreSeconds, 0.0);

    // The continuation (prompt + previous output) hits the GPU cache;
    // no restore transfer is charged on its critical path.
    auto continuation = p;
    continuation.insert(continuation.end(), parked.tokens.begin(),
                        parked.tokens.end());
    auto t2 = submit(engine, continuation, 8);
    sim.run();
    const GenResult cont = t2.result();
    ASSERT_TRUE(cont.ok());
    EXPECT_GT(cont.cachedPromptTokens, 500);
    EXPECT_DOUBLE_EQ(cont.transferSeconds, 0.0);
    engine.blockManager().checkInvariants();
}

TEST(Engine, ParkingSkippedWhenPoolUncontended)
{
    // With the default pressure gate, a hinted request finishing on
    // an idle, mostly-empty pool keeps its chain in HBM: demoting it
    // would trade a free HBM hit for a priced restore.
    auto cfg = smallConfig();
    cfg.hostCacheBlocks = 256;
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto t = submitParked(engine, prompt(33, 512), 16, 1.2);
    sim.run();
    const GenResult r = t.result();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(engine.stats().parkedChains, 0);
    EXPECT_EQ(engine.stats().parkedBlocks, 0);
    EXPECT_EQ(engine.blockManager().hostCachedBlocks(), 0);
    engine.blockManager().checkInvariants();
}

TEST(Engine, ParkingIsInertWithoutSpillTiers)
{
    // The hint is advisory: with no tier configured the engine must
    // not park (and the run must match a hint-less run exactly).
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submitParked(engine, prompt(32, 256), 16, 1.2);
    sim.run();
    const GenResult hinted = t.result();
    ASSERT_TRUE(hinted.ok());
    EXPECT_EQ(engine.stats().parkedChains, 0);
    EXPECT_EQ(engine.stats().parkedBlocks, 0);

    Simulation sim2;
    LlmEngine plain(sim2, smallConfig());
    auto t2 = submit(plain, prompt(32, 256), 16);
    sim2.run();
    const GenResult bare = t2.result();
    EXPECT_EQ(hinted.tokens, bare.tokens);
    EXPECT_DOUBLE_EQ(hinted.totalSeconds, bare.totalSeconds);
}

TEST(Engine, InjectedStallExtendsWallClockNotBusyTime)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    engine.injectStall(0.25);
    auto t = submit(engine, prompt(5, 200), 20);
    sim.run();
    EXPECT_TRUE(t.result().ok());
    EXPECT_NEAR(engine.stats().stallSeconds, 0.25, 1e-12);
    // The stall extended the first step's wall time.
    EXPECT_GT(t.result().totalSeconds, 0.25);
    EXPECT_LT(engine.stats().busySeconds,
              t.result().totalSeconds);
}

// ---------------------------------------------------------------
// Graceful drain and live migration.
// ---------------------------------------------------------------

Task<serving::DrainOutcome>
drainAt(Simulation &sim, LlmEngine &engine, double when,
        double deadline, bool export_leftovers)
{
    co_await sim::delaySec(sim, when);
    co_return co_await engine.drain(deadline, export_leftovers);
}

Task<GenResult>
submitAt(Simulation &sim, LlmEngine &engine, double when,
         std::vector<kv::TokenId> tokens, std::int64_t out)
{
    co_await sim::delaySec(sim, when);
    co_return co_await submit(engine, std::move(tokens), out);
}

/** submitAt with a session id, for program-aware scheduler tests. */
Task<GenResult>
submitSessionAt(Simulation &sim, LlmEngine &engine, double when,
                std::vector<kv::TokenId> tokens, std::int64_t out,
                std::uint64_t sid)
{
    co_await sim::delaySec(sim, when);
    GenRequest req;
    req.prompt = std::move(tokens);
    req.maxNewTokens = out;
    req.sessionId = sid;
    co_return co_await engine.generate(std::move(req));
}

/** Drain @p source at @p when and land every leftover on @p target. */
Task<void>
drainInto(Simulation &sim, LlmEngine &source, LlmEngine &target,
          double when, double deadline, int *migrated)
{
    co_await sim::delaySec(sim, when);
    auto outcome = co_await source.drain(deadline,
                                         /*export_leftovers=*/true);
    EXPECT_FALSE(outcome.crashed);
    for (auto &m : outcome.leftovers) {
        ++*migrated;
        target.importRequest(std::move(m), /*interconnect=*/200e9);
    }
}

TEST(Engine, DrainCompletesRunningAndRejectsNew)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto a = submit(engine, prompt(0, 300), 50);
    // Generous deadline: the running request finishes in place.
    auto d = drainAt(sim, engine, 0.2, 30.0, /*export=*/false);
    // Arrives after the drain began: bounced as a retryable node
    // failure, exactly like an offline node.
    auto late = submitAt(sim, engine, 0.3, prompt(1, 100), 10);
    sim.run();

    EXPECT_TRUE(a.result().ok());
    const auto outcome = d.result();
    EXPECT_EQ(outcome.completed, 1);
    EXPECT_TRUE(outcome.leftovers.empty());
    EXPECT_FALSE(outcome.crashed);
    EXPECT_TRUE(late.result().nodeFailure);
    EXPECT_TRUE(late.result().retryable());
    EXPECT_EQ(engine.stats().drains, 1);
    // Drain ends in the offline state (process restart semantics).
    EXPECT_FALSE(engine.online());
    engine.restart();
    EXPECT_TRUE(engine.accepting());
    EXPECT_EQ(engine.blockManager().usedBlocks(), 0);
    engine.blockManager().checkInvariants();
}

TEST(Engine, DrainMigrationResumesWarmOnTarget)
{
    Simulation sim;
    LlmEngine source(sim, smallConfig());
    LlmEngine target(sim, smallConfig());
    auto t = submit(source, prompt(7, 400), 300);
    int migrated = 0;
    // The short deadline guarantees the request is still decoding at
    // the cutoff and gets exported mid-flight.
    auto d = drainInto(sim, source, target, 1.0, 0.3, &migrated);
    sim.run();

    EXPECT_EQ(migrated, 1);
    const GenResult r = t.result();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.tokens.size(), 300u);
    EXPECT_EQ(source.stats().requestsMigratedOut, 1);
    EXPECT_EQ(target.stats().requestsMigratedIn, 1);
    EXPECT_EQ(target.stats().migrationFallbacks, 0);
    // The target's cache is cold, so the chain paid an interconnect
    // transfer; decode resumed warm, so nothing was recomputed.
    EXPECT_GT(target.stats().migrationSeconds, 0.0);
    EXPECT_DOUBLE_EQ(target.stats().wastedSeconds, 0.0);
    EXPECT_GT(r.ledger.transferSeconds, 0.0);
    // Nothing was cancelled: migration is invisible to the client.
    EXPECT_EQ(source.stats().requestsCancelled, 0);
    EXPECT_DOUBLE_EQ(source.stats().lostPrefillSeconds, 0.0);
    EXPECT_EQ(source.blockManager().usedBlocks(), 0);
    source.blockManager().checkInvariants();
    target.blockManager().checkInvariants();
}

TEST(Engine, MigrationFallsBackColdWhenTargetPoolIsFull)
{
    auto cfg = smallConfig();
    Simulation sim;
    LlmEngine source(sim, smallConfig());
    // Target pool: 48 blocks. The resident request below holds ~30+
    // of them at import time, so the migrated chain cannot land and
    // the import falls back to recompute-preemption semantics.
    cfg.kvPoolBytes = 48 * 16 * cfg.model.kvBytesPerToken();
    LlmEngine target(sim, cfg);
    auto resident = submit(target, prompt(20, 480), 200);
    auto t = submit(source, prompt(21, 400), 300);
    int migrated = 0;
    auto d = drainInto(sim, source, target, 1.0, 0.3, &migrated);
    sim.run();

    EXPECT_EQ(migrated, 1);
    EXPECT_TRUE(resident.result().ok());
    EXPECT_EQ(target.stats().migrationFallbacks, 1);
    // The request still completes — cold: its generated tokens folded
    // into the prompt and the re-prefill was charged as waste.
    const GenResult r = t.result();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.tokens.size(), 300u);
    EXPECT_GT(target.stats().wastedSeconds, 0.0);
    EXPECT_EQ(source.blockManager().usedBlocks(), 0);
    EXPECT_EQ(target.blockManager().usedBlocks(), 0);
    source.blockManager().checkInvariants();
    target.blockManager().checkInvariants();
}

TEST(Engine, AbortedMigrationResumesClientWithNodeFailure)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(3, 400), 300);
    auto d = drainAt(sim, engine, 1.0, 0.3, /*export=*/true);
    sim.run();
    // drain() leaves the leftover unresolved until the caller routes
    // it; sim.run() returns with the export still in flight.
    auto outcome = d.result();
    ASSERT_EQ(outcome.leftovers.size(), 1u);
    EXPECT_FALSE(t.done());
    engine.abortMigration(std::move(outcome.leftovers.front()));
    sim.run();
    const GenResult r = t.result();
    EXPECT_TRUE(r.nodeFailure);
    EXPECT_TRUE(r.retryable());
    engine.blockManager().checkInvariants();
}

// ---------------------------------------------------------------
// Re-admission vs admission control (PR 4 bugfix).
// ---------------------------------------------------------------

TEST(Engine, RequeuedVictimsDoNotConsumeQueueDepth)
{
    // Regression: preemption re-admissions used to count against
    // maxQueueDepth, so a node paging KV in and out shed fresh
    // arrivals even though its real backlog was empty.
    auto cfg = smallConfig();
    cfg.kvPoolBytes = 48 * 16 * cfg.model.kvBytesPerToken();
    cfg.maxQueueDepth = 1;
    Simulation sim;
    LlmEngine engine(sim, cfg);
    // Two long requests thrash the pool (staggered so the second is
    // admitted before the queue-depth gate can see the first).
    auto a = submit(engine, prompt(11, 320), 260);
    auto b = submitAt(sim, engine, 0.5, prompt(12, 320), 260);
    // A small fresh arrival while the preemption victim sits requeued
    // must still be accepted: the victim is not backlog.
    auto probe = submitAt(sim, engine, 3.0, prompt(30, 32), 2);
    sim.run();

    EXPECT_GT(engine.stats().preemptions, 0);
    EXPECT_EQ(engine.stats().requestsShed, 0);
    EXPECT_TRUE(a.result().ok());
    EXPECT_TRUE(b.result().ok());
    EXPECT_TRUE(probe.result().ok());
    engine.blockManager().checkInvariants();
}

TEST(Engine, DeadlineExpiringMidStepEmitsNothing)
{
    // Regression: expiry was only checked at the top of the engine
    // loop, so a request whose deadline landed inside a step was
    // still charged for — and received — that step's token.
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    // 500 prompt tokens prefill in one step (several tens of ms); the
    // 10 ms deadline expires inside it, before the first token is
    // emitted by prefill completion.
    auto t = submitDeadline(engine, prompt(9, 500), 100, 0.01);
    sim.run();
    const GenResult r = t.result();
    EXPECT_TRUE(r.timedOut);
    EXPECT_EQ(r.tokens.size(), 0u);
    EXPECT_EQ(engine.stats().requestsTimedOut, 1);
    EXPECT_EQ(engine.blockManager().usedBlocks(), 0);
    engine.blockManager().checkInvariants();
}

// ---------------------------------------------------------------
// Scheduler orderings across preemption churn.
// ---------------------------------------------------------------

TEST(Engine, SpfOrderHoldsAcrossPreemptionRequeue)
{
    // A preemption victim re-enters at the deque front with its
    // generated tokens folded into a now-larger prompt. Under SPF a
    // small fresh arrival must still be admitted ahead of it.
    auto cfg = smallConfig();
    cfg.schedulerPolicy = serving::SchedulerPolicy::ShortestPromptFirst;
    cfg.kvPoolBytes = 48 * 16 * cfg.model.kvBytesPerToken();
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto a = submit(engine, prompt(11, 320), 260);
    auto b = submit(engine, prompt(12, 320), 260);
    auto c = submitAt(sim, engine, 2.0, prompt(13, 64), 4);
    sim.run();

    EXPECT_GT(engine.stats().preemptions, 0);
    EXPECT_TRUE(a.result().ok());
    EXPECT_TRUE(b.result().ok());
    const GenResult rc = c.result();
    EXPECT_TRUE(rc.ok());
    // The probe jumped the requeued 300+-token victims; under FCFS it
    // would sit behind them for seconds.
    EXPECT_LT(rc.queueSeconds, 0.5);
    engine.blockManager().checkInvariants();
}

TEST(Engine, LasOrderHoldsAcrossPreemptionRequeue)
{
    // Same churn, program-aware scheduling: the requeued victims
    // belong to a session with heavy attained service, so a fresh
    // zero-service session is admitted first.
    auto cfg = smallConfig();
    cfg.schedulerPolicy =
        serving::SchedulerPolicy::LeastAttainedService;
    cfg.kvPoolBytes = 48 * 16 * cfg.model.kvBytesPerToken();
    Simulation sim;
    LlmEngine engine(sim, cfg);
    // Attained service is accrued per completed call, so the session
    // must finish an earlier call before its heavy ones are churned.
    auto a1 = submitSessionAt(sim, engine, 0.0, prompt(10, 320), 60,
                              /*sid=*/7);
    auto a2 = submitSessionAt(sim, engine, 1.5, prompt(11, 320), 260,
                              /*sid=*/7);
    auto b = submitSessionAt(sim, engine, 1.5, prompt(12, 320), 260,
                             /*sid=*/7);
    auto c = submitSessionAt(sim, engine, 3.5, prompt(13, 16), 2,
                             /*sid=*/9);
    sim.run();

    EXPECT_GT(engine.stats().preemptions, 0);
    EXPECT_TRUE(a1.result().ok());
    EXPECT_TRUE(a2.result().ok());
    EXPECT_TRUE(b.result().ok());
    const GenResult rc = c.result();
    EXPECT_TRUE(rc.ok());
    EXPECT_LT(rc.queueSeconds, 0.5);
    engine.blockManager().checkInvariants();
}

} // namespace
