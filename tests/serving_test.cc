/**
 * @file
 * Tests for the vLLM-style serving engine: request lifecycle,
 * continuous batching, prefix caching, preemption, failure paths,
 * accounting, and energy.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "serving/engine.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace agentsim;
using serving::EngineConfig;
using serving::GenRequest;
using serving::GenResult;
using serving::LlmEngine;
using sim::Simulation;
using sim::Task;

EngineConfig
smallConfig(bool prefix_caching = true)
{
    EngineConfig cfg;
    cfg.model = llm::llama31_8b();
    cfg.node = llm::singleA100();
    cfg.enablePrefixCaching = prefix_caching;
    return cfg;
}

std::vector<kv::TokenId>
prompt(std::uint64_t stream, std::int64_t n)
{
    return workload::makeTokens(workload::streamId(1, "test") + stream,
                                n);
}

Task<GenResult>
submit(LlmEngine &engine, std::vector<kv::TokenId> tokens,
       std::int64_t out)
{
    GenRequest req;
    req.prompt = std::move(tokens);
    req.maxNewTokens = out;
    co_return co_await engine.generate(std::move(req));
}

TEST(Engine, SingleRequestCompletes)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(0, 300), 50);
    sim.run();
    ASSERT_TRUE(t.done());
    const GenResult r = t.result();
    EXPECT_FALSE(r.failed);
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(r.tokens.size(), 50u);
    EXPECT_EQ(r.promptTokens, 300);
    EXPECT_GT(r.prefillSeconds, 0.0);
    EXPECT_GT(r.decodeSeconds, 0.0);
    EXPECT_GT(r.totalSeconds, r.prefillSeconds);
    EXPECT_DOUBLE_EQ(r.queueSeconds, 0.0);
    EXPECT_EQ(engine.stats().requestsCompleted, 1);
}

TEST(Engine, OutputTokensAreDeterministic)
{
    std::vector<kv::TokenId> first;
    for (int run = 0; run < 2; ++run) {
        Simulation sim;
        LlmEngine engine(sim, smallConfig());
        auto t = submit(engine, prompt(0, 100), 20);
        sim.run();
        auto r = t.result();
        if (run == 0)
            first = r.tokens;
        else
            EXPECT_EQ(first, r.tokens);
    }
}

TEST(Engine, DecodeLatencyInCalibratedRange)
{
    // ~250 output tokens at ~15-20 ms/token -> a few seconds
    // (ShareGPT-like single request, paper: 4.23 s average).
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(0, 310), 250);
    sim.run();
    const GenResult r = t.result();
    EXPECT_GT(r.totalSeconds, 2.0);
    EXPECT_LT(r.totalSeconds, 8.0);
}

TEST(Engine, PrefixCacheAcceleratesSecondRequest)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig(true));
    const auto p = prompt(7, 2000);
    auto t1 = submit(engine, p, 10);
    sim.run();
    const GenResult r1 = t1.result();

    auto t2 = submit(engine, p, 10);
    sim.run();
    const GenResult r2 = t2.result();

    EXPECT_EQ(r1.cachedPromptTokens, 0);
    EXPECT_GT(r2.cachedPromptTokens, 1900);
    EXPECT_LT(r2.prefillSeconds, 0.5 * r1.prefillSeconds);
}

TEST(Engine, NoCacheHitsWhenDisabled)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig(false));
    const auto p = prompt(7, 2000);
    auto t1 = submit(engine, p, 10);
    sim.run();
    auto t2 = submit(engine, p, 10);
    sim.run();
    EXPECT_EQ(t1.result().cachedPromptTokens, 0);
    EXPECT_EQ(t2.result().cachedPromptTokens, 0);
    EXPECT_EQ(engine.cacheStats().hitTokens, 0);
}

TEST(Engine, ContinuousBatchingOverlapsRequests)
{
    // Two concurrent requests should finish much sooner than twice the
    // single-request latency: decode steps share weight streaming.
    Simulation sim1;
    LlmEngine e1(sim1, smallConfig());
    auto a = submit(e1, prompt(1, 300), 100);
    sim1.run();
    const double solo = a.result().totalSeconds;

    Simulation sim2;
    LlmEngine e2(sim2, smallConfig());
    auto b = submit(e2, prompt(1, 300), 100);
    auto c = submit(e2, prompt(2, 300), 100);
    sim2.run();
    const double both = std::max(b.result().totalSeconds,
                                 c.result().totalSeconds);
    EXPECT_LT(both, 1.5 * solo);
    EXPECT_GT(both, solo);
}

TEST(Engine, ImpossiblePromptFails)
{
    auto cfg = smallConfig();
    // Tiny pool: 64 blocks of 16 tokens = 1024 tokens.
    cfg.kvPoolBytes = 64 * 16 * cfg.model.kvBytesPerToken();
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto t = submit(engine, prompt(0, 5000), 10);
    sim.run();
    const GenResult r = t.result();
    EXPECT_TRUE(r.failed);
    EXPECT_EQ(engine.stats().requestsFailed, 1);
}

TEST(Engine, ContextWindowRejection)
{
    auto cfg = smallConfig();
    cfg.model.contextWindow = 4096;
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto ok = submit(engine, prompt(1, 4000), 50);
    auto too_long = submit(engine, prompt(2, 4090), 50);
    sim.run();
    EXPECT_FALSE(ok.result().failed);
    const GenResult r = too_long.result();
    EXPECT_TRUE(r.failed);
    EXPECT_TRUE(r.tokens.empty());
    EXPECT_EQ(engine.stats().requestsFailed, 1);
}

TEST(Engine, PreemptionUnderMemoryPressure)
{
    auto cfg = smallConfig();
    // Room for roughly one long sequence at a time.
    cfg.kvPoolBytes = 48 * 16 * cfg.model.kvBytesPerToken();
    Simulation sim;
    LlmEngine engine(sim, cfg);
    // Two requests that each want most of the pool while generating.
    auto a = submit(engine, prompt(11, 320), 260);
    auto b = submit(engine, prompt(12, 320), 260);
    sim.run();
    const GenResult ra = a.result();
    const GenResult rb = b.result();
    EXPECT_FALSE(ra.failed);
    EXPECT_FALSE(rb.failed);
    EXPECT_EQ(ra.tokens.size(), 260u);
    EXPECT_EQ(rb.tokens.size(), 260u);
    EXPECT_GT(engine.stats().preemptions, 0);
}

TEST(Engine, LoneRequestTruncatesWhenPoolFills)
{
    auto cfg = smallConfig();
    cfg.kvPoolBytes = 8 * 16 * cfg.model.kvBytesPerToken(); // 128 toks
    Simulation sim;
    LlmEngine engine(sim, cfg);
    auto t = submit(engine, prompt(0, 100), 500);
    sim.run();
    const GenResult r = t.result();
    EXPECT_TRUE(r.truncated);
    EXPECT_LT(r.tokens.size(), 500u);
    EXPECT_FALSE(r.failed);
}

TEST(Engine, StatsAccounting)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto a = submit(engine, prompt(1, 400), 60);
    auto b = submit(engine, prompt(2, 600), 40);
    sim.run();
    (void)a.result();
    (void)b.result();
    const auto &st = engine.stats();
    EXPECT_EQ(st.requestsSubmitted, 2);
    EXPECT_EQ(st.requestsCompleted, 2);
    // Each request's first output token is emitted by the
    // prefill-completion step (vLLM semantics), so decode steps
    // account for outputs minus one per request.
    EXPECT_EQ(st.decodeTokens, 60 + 40 - 2);
    // Prefill processed every prompt token except cache hits; also the
    // split attribution sums back to busy time.
    EXPECT_GE(st.prefillTokens, 900);
    EXPECT_NEAR(st.prefillSeconds + st.decodeSeconds, st.busySeconds,
                1e-9);
    EXPECT_LE(st.busySeconds, sim::toSeconds(sim.now()) + 1e-9);
    EXPECT_GT(st.totalFlops, 0.0);
}

TEST(Engine, KvGaugeReturnsToZero)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(1, 500), 30);
    sim.run();
    (void)t.result();
    EXPECT_DOUBLE_EQ(engine.kvUsageGauge().current(), 0.0);
    EXPECT_GT(engine.kvUsageGauge().max(), 0.0);
}

TEST(Engine, EnergyIncludesIdleFloor)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    auto t = submit(engine, prompt(1, 300), 50);
    sim.run();
    (void)t.result();
    const double wall = sim::toSeconds(sim.now());
    const double idle_floor =
        engine.config().node.gpu.idlePower * wall;
    const double busy_ceiling =
        engine.config().node.gpu.tdp * wall;
    const double joules = engine.energyJoules(sim.now());
    EXPECT_GT(joules, idle_floor);
    EXPECT_LT(joules, busy_ceiling);
}

TEST(Engine, ManyConcurrentRequestsAllComplete)
{
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    std::vector<Task<GenResult>> tasks;
    for (int i = 0; i < 32; ++i)
        tasks.push_back(submit(engine, prompt(100 + i, 200 + i), 30));
    sim.run();
    for (auto &t : tasks) {
        ASSERT_TRUE(t.done());
        EXPECT_EQ(t.result().tokens.size(), 30u);
    }
    EXPECT_EQ(engine.stats().requestsCompleted, 32);
    EXPECT_GT(engine.batchGauge().max(), 1.0);
}

TEST(Engine, SharedPrefixAcrossConcurrentRequests)
{
    // LATS-style: many parallel calls share a long prompt prefix; the
    // KV pool should hold far fewer blocks than sum of sequences.
    Simulation sim;
    LlmEngine engine(sim, smallConfig());
    const auto shared = prompt(42, 1600);
    std::vector<Task<GenResult>> tasks;
    for (int i = 0; i < 8; ++i) {
        auto p = shared;
        auto tail = prompt(900 + i, 64);
        p.insert(p.end(), tail.begin(), tail.end());
        tasks.push_back(submit(engine, std::move(p), 20));
    }
    sim.run();
    std::int64_t cached = 0;
    for (auto &t : tasks)
        cached += t.result().cachedPromptTokens;
    // At least the later seven should have hit the shared 1600-token
    // prefix (modulo chunked-prefill publication timing).
    EXPECT_GT(cached, 7 * 1200);
    const double seq_tokens = 8.0 * (1600 + 64 + 20);
    const double peak_blocks = engine.kvUsageGauge().max();
    EXPECT_LT(peak_blocks * 16, seq_tokens * 0.5);
}

} // namespace
