/**
 * @file
 * Unit tests for the model specs, hardware descriptions, and the
 * roofline performance model, including calibration sanity checks
 * against publicly known Llama-3.1 / A100 figures.
 */

#include <gtest/gtest.h>

#include "llm/hardware.hh"
#include "llm/model_spec.hh"
#include "llm/perf_model.hh"

namespace
{

using namespace agentsim;
using llm::ModelSpec;
using llm::NodeSpec;
using llm::PerfModel;
using llm::StepWork;

TEST(ModelSpec, Llama8bParameterCount)
{
    const auto m = llm::llama31_8b();
    // Llama-3.1-8B has ~8.03B parameters.
    EXPECT_NEAR(static_cast<double>(m.paramCount()), 8.03e9, 0.15e9);
}

TEST(ModelSpec, Llama70bParameterCount)
{
    const auto m = llm::llama31_70b();
    // Llama-3.1-70B has ~70.6B parameters.
    EXPECT_NEAR(static_cast<double>(m.paramCount()), 70.6e9, 1.5e9);
}

TEST(ModelSpec, KvBytesPerToken)
{
    // 2 (K,V) * layers * kv_heads * head_dim * 2 bytes.
    EXPECT_EQ(llm::llama31_8b().kvBytesPerToken(), 131072);
    EXPECT_EQ(llm::llama31_70b().kvBytesPerToken(), 327680);
}

TEST(ModelSpec, KvCompressionShrinksFootprint)
{
    auto m = llm::llama31_8b();
    const auto raw = m.kvBytesPerToken();
    m.kvCompression = 2.0;
    EXPECT_EQ(m.kvBytesPerToken(), raw / 2);
    m.kvCompression = 4.0;
    EXPECT_EQ(m.kvBytesPerToken(), raw / 4);
}

TEST(ModelSpec, DenseFlopsScaleWithParams)
{
    const auto m8 = llm::llama31_8b();
    const auto m70 = llm::llama31_70b();
    // ~2 FLOPs per parameter per token (embeddings excluded from GEMMs,
    // LM head included), so the ratio tracks the parameter ratio.
    const double ratio =
        m70.denseFlopsPerToken() / m8.denseFlopsPerToken();
    EXPECT_GT(ratio, 8.0);
    EXPECT_LT(ratio, 10.0);
}

TEST(ModelSpec, AttentionFlopsLinearInContext)
{
    const auto m = llm::llama31_8b();
    EXPECT_DOUBLE_EQ(m.attentionFlops(0), 0.0);
    EXPECT_DOUBLE_EQ(m.attentionFlops(2000),
                     2.0 * m.attentionFlops(1000));
}

TEST(Hardware, A100Spec)
{
    const auto g = llm::a100_40gb();
    EXPECT_DOUBLE_EQ(g.peakFlops, 312e12);
    EXPECT_DOUBLE_EQ(g.memBandwidth, 1555e9);
    EXPECT_GT(g.decodePower, g.idlePower);
    EXPECT_GE(g.tdp, g.prefillPower);
}

TEST(Hardware, H100OutclassesA100)
{
    const auto a100 = llm::a100_40gb();
    const auto h100 = llm::h100_80gb();
    EXPECT_GT(h100.peakFlops, 2.5 * a100.peakFlops);
    EXPECT_GT(h100.memBandwidth, 2.0 * a100.memBandwidth);
    EXPECT_EQ(h100.memCapacity, 2 * a100.memCapacity);
    EXPECT_GT(h100.tdp, a100.tdp);
    const auto node = llm::singleH100();
    EXPECT_EQ(node.numGpus, 1);
    // Faster silicon means faster decode for the same model.
    llm::PerfModel fast(llm::llama31_8b(), node);
    llm::PerfModel slow(llm::llama31_8b(), llm::singleA100());
    EXPECT_LT(fast.decodeSecondsSingle(1000),
              slow.decodeSecondsSingle(1000));
}

TEST(Hardware, NodeAggregation)
{
    const auto node = llm::octoA100();
    EXPECT_EQ(node.numGpus, 8);
    EXPECT_DOUBLE_EQ(node.totalMemory(), 8.0 * 40e9);
    // TP efficiency < 1 means less than linear scaling.
    const auto single = llm::singleA100();
    EXPECT_LT(node.effectiveBandwidth(),
              8.0 * single.effectiveBandwidth());
    EXPECT_GT(node.effectiveBandwidth(),
              4.0 * single.effectiveBandwidth());
}

TEST(PerfModel, ModelMustFit)
{
    // 70B weights (~141 GB) cannot fit one A100-40GB; the constructor
    // treats that as a fatal configuration error. Death test keeps us
    // honest about the check.
    EXPECT_DEATH(
        { PerfModel m(llm::llama31_70b(), llm::singleA100()); }, "fit");
}

class PerfModel8b : public ::testing::Test
{
  protected:
    PerfModel8b() : model(llm::llama31_8b(), llm::singleA100()) {}
    PerfModel model;
};

TEST_F(PerfModel8b, EmptyStepIsFree)
{
    const auto cost = model.stepCost({});
    EXPECT_DOUBLE_EQ(cost.seconds, 0.0);
    EXPECT_DOUBLE_EQ(cost.flops, 0.0);
}

TEST_F(PerfModel8b, DecodeIsMemoryBound)
{
    StepWork w;
    w.decodeContexts = {1000};
    const auto cost = model.stepCost(w);
    EXPECT_FALSE(cost.computeBound());
    // Single-token decode on an A100 should land in the 10-30 ms range
    // (weights streaming dominated).
    EXPECT_GT(cost.seconds, 0.010);
    EXPECT_LT(cost.seconds, 0.030);
}

TEST_F(PerfModel8b, LargePrefillIsComputeBound)
{
    StepWork w;
    w.prefills.push_back({4096, 0});
    const auto cost = model.stepCost(w);
    EXPECT_TRUE(cost.computeBound());
    // ~4k tokens of 8B prefill: a few hundred milliseconds.
    EXPECT_GT(cost.seconds, 0.1);
    EXPECT_LT(cost.seconds, 1.0);
}

TEST_F(PerfModel8b, BatchedDecodeAmortizesWeights)
{
    StepWork one;
    one.decodeContexts = {500};
    StepWork many;
    for (int i = 0; i < 32; ++i)
        many.decodeContexts.push_back(500);
    const double t1 = model.stepCost(one).seconds;
    const double t32 = model.stepCost(many).seconds;
    // 32 sequences decode nearly as fast as 1: weight streaming
    // dominates and is shared across the batch.
    EXPECT_LT(t32, 2.0 * t1);
}

TEST_F(PerfModel8b, PrefillFlopsArithmeticSeries)
{
    // Splitting a chunk must conserve FLOPs.
    const double whole = model.prefillFlops(100, 0);
    const double split =
        model.prefillFlops(60, 0) + model.prefillFlops(40, 60);
    EXPECT_NEAR(whole, split, whole * 1e-12);
}

TEST_F(PerfModel8b, CachedPrefixReducesPrefillTime)
{
    // Prefilling only the non-cached suffix is cheaper than the whole
    // prompt, even accounting for attention over the cached prefix.
    const double full = model.prefillSeconds(2000, 0);
    const double suffix_only = model.prefillSeconds(500, 1500);
    EXPECT_LT(suffix_only, 0.5 * full);
}

TEST_F(PerfModel8b, DecodeFlopsGrowWithContext)
{
    EXPECT_GT(model.decodeFlops(4000), model.decodeFlops(100));
}

TEST(PerfModel70b, DecodeSlowerThan8bDespite8Gpus)
{
    PerfModel m70(llm::llama31_70b(), llm::octoA100());
    PerfModel m8(llm::llama31_8b(), llm::singleA100());
    const double t70 = m70.decodeSecondsSingle(1000);
    const double t8 = m8.decodeSecondsSingle(1000);
    // 70B per-token decode is slower than 8B: ~9x the weights over
    // ~6x the effective bandwidth.
    EXPECT_GT(t70, t8);
    EXPECT_LT(t70, 3.0 * t8);
}

TEST(PerfModelCalibration, ShareGptLikeLatency)
{
    // A ~300-token prompt answered with ~250 tokens should take a few
    // seconds on the 8B/A100 configuration (paper: 4.23 s average).
    PerfModel m(llm::llama31_8b(), llm::singleA100());
    double total = m.prefillSeconds(300, 0);
    for (int i = 0; i < 250; ++i)
        total += m.decodeSecondsSingle(300 + i);
    EXPECT_GT(total, 2.0);
    EXPECT_LT(total, 8.0);
}

} // namespace
