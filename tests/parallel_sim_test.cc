/**
 * @file
 * Tests for the parallel discrete-event engine: the bucketed event
 * queue (ordering vs a reference model, bucket recycling), the
 * coroutine frame pool, ShardedSimulation's conservative-window
 * execution (parallel == sequential bit-identity, run-to-run
 * determinism, lookahead-violation detection), and the sharded
 * cluster's end-to-end determinism contract (docs/DETERMINISM.md).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/probe.hh"
#include "core/sharded_cluster.hh"
#include "serving/engine.hh"
#include "sim/awaitable.hh"
#include "sim/event_queue.hh"
#include "sim/frame_pool.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/strfmt.hh"
#include "sim/task.hh"
#include "workload/token_stream.hh"

namespace
{

using namespace agentsim;
using sim::Tick;

// ---------------------------------------------------------------------
// Bucketed event queue.

TEST(BucketQueue, MatchesReferenceModelUnderRandomLoad)
{
    // The bucket queue must pop in exactly (when, push order) — the
    // same order a stable multimap over insertion sequence produces.
    sim::EventQueue q;
    std::multimap<Tick, int> model;
    std::vector<int> popped;
    sim::Rng rng(7, "test.queue", 0);
    int next_id = 0;
    for (int round = 0; round < 2000; ++round) {
        const bool push = model.empty() || rng.uniform() < 0.6;
        if (push) {
            // Small tick range forces heavy same-tick bucketing.
            const Tick when =
                static_cast<Tick>(rng.uniform(0.0, 50.0));
            const int id = next_id++;
            model.emplace(when, id);
            q.push(when, [&popped, id] { popped.push_back(id); });
        } else {
            ASSERT_FALSE(q.empty());
            ASSERT_EQ(q.nextTime(), model.begin()->first);
            const int expect = model.begin()->second;
            model.erase(model.begin());
            auto ev = q.pop();
            ev.action();
            ASSERT_EQ(popped.back(), expect);
        }
    }
    while (!q.empty()) {
        ASSERT_EQ(q.nextTime(), model.begin()->first);
        const int expect = model.begin()->second;
        model.erase(model.begin());
        q.pop().action();
        ASSERT_EQ(popped.back(), expect);
    }
    EXPECT_TRUE(model.empty());
    EXPECT_EQ(popped.size(), static_cast<std::size_t>(next_id));
}

TEST(BucketQueue, SameTickRepushGetsLaterSequence)
{
    // An action that reschedules itself at the *current* tick must run
    // after everything already queued at that tick — the bucket is
    // retired before the action runs, so the re-push starts a fresh
    // bucket with later sequence numbers.
    sim::EventQueue q;
    std::vector<std::string> order;
    q.push(5, [&] {
        order.push_back("a");
        q.push(5, [&] { order.push_back("a2"); });
    });
    q.push(5, [&] { order.push_back("b"); });
    while (!q.empty())
        q.pop().action();
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a2"}));
}

TEST(BucketQueue, RecyclesBuckets)
{
    sim::EventQueue q;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 8; ++i)
            q.push(round * 100 + i, [] {});
        while (!q.empty())
            q.pop().action();
    }
    // 80 distinct ticks drained; after the first few rounds the free
    // list satisfies every bucket demand.
    EXPECT_GT(q.bucketsRecycled(), 0u);
    EXPECT_LT(q.bucketsAllocated(), 80u);
}

// ---------------------------------------------------------------------
// Coroutine frame pool.

sim::Task<int> trivialTask() { co_return 42; }

TEST(FramePool, ReusesCoroutineFrames)
{
    const auto before = sim::framePoolStats();
    for (int i = 0; i < 64; ++i) {
        auto t = trivialTask();
        EXPECT_TRUE(t.done());
        EXPECT_EQ(t.result(), 42);
    }
    const auto after = sim::framePoolStats();
    if (sim::framePoolEnabled()) {
        EXPECT_GE(after.allocations - before.allocations, 64u);
        // Identical frames: every allocation after the first must be
        // served from the free bins.
        EXPECT_GE(after.poolHits - before.poolHits, 63u);
    } else {
        // Sanitizer build: the pool is a passthrough by design, so
        // asan/tsan keep seeing raw frame lifetimes.
        EXPECT_EQ(after.poolHits, before.poolHits);
    }
}

// ---------------------------------------------------------------------
// ShardedSimulation.

/** Ping-pong over N shards; returns per-shard receive logs. */
std::vector<std::vector<Tick>>
runPingPong(int shards, bool parallel)
{
    sim::ShardedConfig cfg;
    cfg.shards = shards;
    cfg.windowTicks = 10;
    cfg.parallel = parallel;
    sim::ShardedSimulation sharded(cfg);
    std::vector<std::vector<Tick>> log(
        static_cast<std::size_t>(shards));

    // Each shard fires a few local events, each of which posts to the
    // next shard with latency >= the window.
    for (int s = 0; s < shards; ++s) {
        sharded.shard(s).schedule(s, [&sharded, &log, s, shards] {
            log[static_cast<std::size_t>(s)].push_back(
                sharded.shard(s).now());
            for (int hop = 1; hop <= 3; ++hop) {
                const int target = (s + hop) % shards;
                const Tick when =
                    sharded.shard(s).now() + 10 * hop;
                sharded.post(s, target, when,
                             [&sharded, &log, target] {
                                 log[static_cast<std::size_t>(target)]
                                     .push_back(sharded.shard(target)
                                                    .now());
                             });
            }
        });
    }
    sharded.run();
    return log;
}

TEST(ShardedSimulation, ParallelMatchesSequential)
{
    for (int shards : {2, 3, 5}) {
        const auto seq = runPingPong(shards, false);
        const auto par = runPingPong(shards, true);
        EXPECT_EQ(seq, par) << shards << " shards";
    }
}

TEST(ShardedSimulation, ParallelIsRunToRunDeterministic)
{
    const auto a = runPingPong(4, true);
    const auto b = runPingPong(4, true);
    EXPECT_EQ(a, b);
}

TEST(ShardedSimulation, SingleShardDeliversImmediately)
{
    // One shard is the legacy engine: post() may target any tick >=
    // now with no window constraint.
    sim::ShardedConfig cfg;
    cfg.shards = 1;
    sim::ShardedSimulation sharded(cfg);
    bool ran = false;
    sharded.post(0, 0, 1, [&ran] { ran = true; });
    sharded.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(sharded.windowsExecuted(), 0u);
}

TEST(ShardedSimulationDeathTest, LookaheadViolationPanics)
{
    // A cross-shard message timestamped inside the sender's own
    // window breaks the conservative argument and must die loudly.
    auto violate = [] {
        sim::ShardedConfig cfg;
        cfg.shards = 2;
        cfg.windowTicks = 100;
        cfg.parallel = false;
        sim::ShardedSimulation sharded(cfg);
        sharded.shard(0).schedule(0, [&sharded] {
            sharded.post(0, 1, sharded.shard(0).now() + 1, [] {});
        });
        sharded.run();
    };
    EXPECT_DEATH(violate(), "conservative sync violated");
}

TEST(ShardedSimulation, CountsWindowsAndMessages)
{
    sim::ShardedConfig cfg;
    cfg.shards = 2;
    cfg.windowTicks = 10;
    cfg.parallel = false;
    sim::ShardedSimulation sharded(cfg);
    sharded.shard(0).schedule(0, [&sharded] {
        sharded.post(0, 1, 10, [] {});
    });
    sharded.run();
    EXPECT_GE(sharded.windowsExecuted(), 1u);
    EXPECT_EQ(sharded.shardStats()[0].messagesOut, 1u);
    EXPECT_EQ(sharded.shardStats()[1].messagesIn, 1u);
    EXPECT_EQ(sharded.totalEvents(), 2u);
}

/** The same serving workload, event for event, on @p sim. */
std::string
serveDigest(sim::Simulation &sim)
{
    serving::LlmEngine engine(sim, core::enginePreset8b());
    std::vector<sim::Task<void>> episodes;
    std::vector<serving::GenResult> results(6);
    for (int i = 0; i < 6; ++i) {
        episodes.push_back([](sim::Simulation &s,
                              serving::LlmEngine &eng, int idx,
                              serving::GenResult *out)
                               -> sim::Task<void> {
            co_await sim::delay(s, idx * 1000);
            serving::GenRequest req;
            req.prompt = workload::makeTokens(
                workload::streamId(7, "test.serve"), 200 + idx * 40);
            req.maxNewTokens = 30 + idx;
            serving::GenResult r =
                co_await eng.generate(std::move(req));
            *out = r;
        }(sim, engine, i, &results[static_cast<std::size_t>(i)]));
    }
    sim.run();
    std::string d;
    for (const auto &r : results)
        d += sim::strfmt("[%lld %zu %.9f %.9f]",
                         static_cast<long long>(r.promptTokens),
                         r.tokens.size(), r.ttftSeconds,
                         r.totalSeconds);
    d += sim::strfmt(" ev=%llu t=%.9f",
                     static_cast<unsigned long long>(
                         sim.processedEvents()),
                     sim.nowSec());
    return d;
}

TEST(ShardedSimulation, OneShardIsTheLegacyEngine)
{
    // An LlmEngine workload on a 1-shard ShardedSimulation must be
    // bit-identical to the same workload on a plain Simulation — the
    // single-shard path is literally the legacy engine (no threads,
    // no windows, direct delivery).
    sim::Simulation legacy;
    const std::string legacy_digest = serveDigest(legacy);

    sim::ShardedConfig cfg;
    cfg.shards = 1;
    sim::ShardedSimulation sharded(cfg);
    const std::string sharded_digest = serveDigest(sharded.shard(0));

    EXPECT_EQ(legacy_digest, sharded_digest);
}

// ---------------------------------------------------------------------
// Sharded cluster end-to-end determinism.

core::ShardedClusterConfig
smallCluster(int nodes, bool parallel)
{
    core::ShardedClusterConfig cfg;
    cfg.simShards = nodes;
    cfg.engineConfig = core::enginePreset8b();
    core::WorkloadSpec agents;
    agents.agent = agents::AgentKind::ReAct;
    agents.bench = workload::Benchmark::HotpotQA;
    core::WorkloadSpec chat;
    chat.chatbot = true;
    cfg.mix = {agents, chat};
    cfg.qps = 3.0;
    cfg.numRequests = 24;
    cfg.seed = 11;
    cfg.parallel = parallel;
    return cfg;
}

std::string
clusterDigest(const core::ShardedClusterResult &r)
{
    std::string d = sim::strfmt(
        "c=%d s=%d p50=%.9f p95=%.9f mk=%.9f ev=%llu", r.completed,
        r.solved, r.p50(), r.p95(), r.makespanSeconds,
        static_cast<unsigned long long>(r.totalEvents));
    for (const auto &node : r.nodes)
        d += sim::strfmt(" n%d/%.6f", node.requests,
                         node.cacheHitRate);
    return d;
}

TEST(ShardedCluster, DeterministicForFixedSeedAndShards)
{
    const auto a = core::runShardedCluster(smallCluster(2, true));
    const auto b = core::runShardedCluster(smallCluster(2, true));
    EXPECT_EQ(clusterDigest(a), clusterDigest(b));
}

TEST(ShardedCluster, ParallelMatchesSequential)
{
    const auto seq = core::runShardedCluster(smallCluster(3, false));
    const auto par = core::runShardedCluster(smallCluster(3, true));
    EXPECT_EQ(clusterDigest(seq), clusterDigest(par));
}

TEST(ShardedCluster, TaskContentStableAcrossShardCounts)
{
    // Request content is keyed by the global request index, so the
    // number of *solved* tasks (a pure function of task content +
    // model quality draws) must agree across shard counts even though
    // queueing interleavings differ.
    const auto one = core::runShardedCluster(smallCluster(1, true));
    const auto four = core::runShardedCluster(smallCluster(4, true));
    EXPECT_EQ(one.completed, four.completed);
    EXPECT_EQ(one.solved, four.solved);
}

TEST(ShardedCluster, ValidatesConfig)
{
    auto bad = smallCluster(2, true);
    bad.windowSeconds = 1.0; // above the latency floor
    EXPECT_DEATH(core::runShardedCluster(bad),
                 "exceeds the cross-shard latency floor");

    auto affinity = smallCluster(2, true);
    affinity.policy = core::RoutePolicy::CacheAffinity;
    EXPECT_DEATH(core::runShardedCluster(affinity), "CacheAffinity");
}

} // namespace
