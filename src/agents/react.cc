/**
 * @file
 * ReAct: iterate (thought+action LLM call, tool execution,
 * observation) until the agent believes it can answer or the
 * iteration budget runs out.
 */

#include "agents/accuracy.hh"
#include "agents/workflows.hh"

namespace agentsim::agents
{

std::vector<kv::TokenId>
trialChainTokens(const AgentContext &ctx,
                 const EpisodicMemory &episodic,
                 const TrajectoryMemory &memory)
{
    PromptBuilder builder;
    builder.add(SegmentKind::Instruction, ctx.instructionTokens());
    builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
    builder.add(SegmentKind::User, ctx.userTokens());
    episodic.appendTo(builder);
    memory.appendTo(builder);
    return builder.build().tokens;
}

double
kvBytesPerToken(const serving::LlmEngine &engine)
{
    return static_cast<double>(engine.blockBytes()) /
           static_cast<double>(engine.config().blockSize);
}

sim::Task<TrialOutcome>
runToolLoopTrial(AgentContext &ctx, Trace &trace, sim::Rng &rng,
                 TrajectoryMemory &memory,
                 const EpisodicMemory &episodic, int reflections,
                 std::uint64_t call_base,
                 const ReactEpisodeState *resume,
                 const TrialCheckpointFn &checkpoint)
{
    const auto &prof = ctx.profile();
    const int few_shot = ctx.config.resolveFewShot(prof);
    const int required = ctx.task.requiredHops;

    // One trial = one execution context: its capability is drawn once
    // (latent-threshold model, accuracy.hh), so repeating trials on a
    // hard task mostly repeats the failure. A resumed trial reuses
    // the journaled draw (the restored rng stream sits past it); a
    // trial-boundary snapshot draws from the restored stream exactly
    // where the uninterrupted run would have.
    const double base = hopSuccessProb(ctx.config.modelQuality,
                                       few_shot, reflections,
                                       ctx.task.difficulty);
    const double capability =
        (resume != nullptr && resume->capabilityDrawn)
            ? resume->capability
            : contextCapability(rng, base,
                                Calibration::exploreSigmaTrial);

    TrialOutcome outcome;
    if (resume != nullptr)
        outcome = resume->outcome;
    for (int iter = outcome.iterations;
         iter < ctx.config.maxIterations; ++iter) {
        SpanScope iteration(ctx, telemetry::SpanKind::Iteration,
                            "react.iter");
        PromptBuilder builder;
        builder.add(SegmentKind::Instruction, ctx.instructionTokens());
        builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
        builder.add(SegmentKind::User, ctx.userTokens());
        episodic.appendTo(builder);
        memory.appendTo(builder);

        // Speculative tool invocation (keytakeaway #1): predict the
        // next action and launch its tool call concurrently with the
        // reasoning LLM call. Skipped when the agent is about to
        // Finish (it knows no tool is needed).
        std::optional<sim::Task<tools::ToolResult>> speculated;
        if (ctx.config.speculativeTools &&
            outcome.hopsFound < required) {
            tools::Tool &guess = ctx.tools->pick(rng);
            speculated.emplace(callTool(ctx, trace, rng, guess));
        }

        // A tool call follows unless this step is the Finish action
        // (or the tool already runs concurrently via speculation), so
        // hint the engine to park this chain over the expected wait.
        const double park =
            (outcome.hopsFound < required && !speculated)
                ? ctx.tools->meanLatencySeconds()
                : 0.0;
        serving::GenResult gen = co_await callLlm(
            ctx, trace, rng, builder.build(), prof.stepOutputMean,
            "react.step", park);
        memory.append(SegmentKind::LlmHistory, gen.tokens);
        ++outcome.iterations;

        if (outcome.hopsFound >= required) {
            // That call was the Finish action: commit to an answer.
            outcome.answeredCorrectly =
                sampleAnswer(rng, outcome.hopsFound, required);
            co_return outcome;
        }

        // Act: obtain the observation — from the speculated call if
        // the prediction matched, otherwise by invoking the tool the
        // LLM actually chose (the speculation is wasted work).
        tools::ToolResult obs;
        if (speculated &&
            rng.bernoulli(Calibration::specToolHitProb)) {
            obs = co_await *speculated;
        } else {
            if (speculated)
                co_await *speculated; // discard the wrong prefetch
            tools::Tool &tool = ctx.tools->pick(rng);
            obs = co_await callTool(ctx, trace, rng, tool);
        }
        memory.append(SegmentKind::ToolHistory,
                      ctx.toolObservationTokens(
                          obs.observationTokens,
                          call_base + static_cast<std::uint64_t>(iter)));

        const bool found =
            attemptHop(rng, capability, ctx.task.solveThreshold);
        if (found) {
            ++outcome.hopsFound;
        } else if (outcome.hopsFound < required &&
                   rng.bernoulli(Calibration::earlyFinishProb)) {
            // Premature Finish: the agent concludes from partial
            // evidence (a real ReAct failure mode, and the source of
            // the wide per-request step-count variance).
            outcome.answeredCorrectly =
                sampleAnswer(rng, outcome.hopsFound, required);
            co_return outcome;
        }

        // Iteration complete (every draw included): journal. Episodes
        // that return above finished — nothing left to recover.
        if (checkpoint)
            checkpoint(outcome, memory, capability, rng);
    }

    // Budget exhausted: forced answer from partial evidence.
    outcome.answeredCorrectly =
        sampleAnswer(rng, outcome.hopsFound, required);
    co_return outcome;
}

sim::Task<AgentResult>
ReActAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    sim::Rng rng = ctx.makeRng("run");

    TrajectoryMemory memory;
    EpisodicMemory episodic;

    // Journal replay: restore the trial exactly as checkpointed at
    // the last completed iteration of the previous attempt.
    const ReactEpisodeState *resume = nullptr;
    std::shared_ptr<const void> resume_keepalive;
    if (ctx.resumeFrom != nullptr &&
        ctx.resumeFrom->kindTag ==
            static_cast<int>(AgentKind::ReAct)) {
        // Re-checkpointing overwrites the store entry mid-run; pin
        // the snapshot we are replaying from.
        resume_keepalive = ctx.resumeFrom->state;
        resume = static_cast<const ReactEpisodeState *>(
            resume_keepalive.get());
        trace = resume->trace;
        rng = resume->rng;
        memory = resume->memory;
    }

    TrialCheckpointFn checkpoint;
    if (ctx.checkpoints != nullptr && ctx.checkpoints->policy().enabled) {
        checkpoint = [&ctx, &trace, &episodic](
                         const TrialOutcome &outcome,
                         const TrajectoryMemory &memory_now,
                         double capability, const sim::Rng &rng_now) {
            if (!ctx.checkpoints->shouldCheckpoint(ctx.episodeKey,
                                                   outcome.iterations))
                return;
            auto state =
                std::make_shared<ReactEpisodeState>(rng_now, trace);
            state->outcome = outcome;
            state->memory = memory_now;
            state->capabilityDrawn = true;
            state->capability = capability;
            serving::EpisodeCheckpoint ckpt;
            ckpt.kindTag = static_cast<int>(AgentKind::ReAct);
            ckpt.iteration = outcome.iterations;
            ckpt.takenTick = ctx.sim->now();
            ckpt.chainTokens =
                trialChainTokens(ctx, episodic, memory_now);
            ckpt.gpuSeconds = trace.cost().gpuSeconds();
            ckpt.state = std::move(state);
            ctx.checkpoints->put(ctx.episodeKey, std::move(ckpt),
                                 kvBytesPerToken(*ctx.engine));
        };
    }

    TrialOutcome outcome = co_await runToolLoopTrial(
        ctx, trace, rng, memory, episodic, 0, 0, resume, checkpoint);

    trace.setIterations(outcome.iterations);
    co_return trace.finish(outcome.answeredCorrectly, ctx.sim->now());
}

} // namespace agentsim::agents
