/**
 * @file
 * The latent-progress accuracy model.
 *
 * A task requires `requiredHops` reasoning hops (facts to retrieve,
 * subgoals to reach). Each agent iteration attempts one hop; tree
 * search attempts one hop per child of an expansion. The per-attempt
 * success probability is
 *
 *   p = quality(model) x fewShotFactor(n) x reflectionFactor(r)
 *       x (1 - difficultySlope x d) x toolFactor
 *
 * clamped to [pMin, pMax]. The wide difficulty range with a steep
 * slope makes hard tasks stay hard across retries — which is what
 * produces the paper's saturating accuracy curves and its finding
 * that parallel exploration (LATS) lifts the ceiling where serial
 * retries (Reflexion) cannot.
 *
 * All constants live in Calibration so experiments and tests can
 * reference one source of truth.
 */

#ifndef AGENTSIM_AGENTS_ACCURACY_HH
#define AGENTSIM_AGENTS_ACCURACY_HH

#include <string_view>

#include "sim/rng.hh"
#include "workload/benchmark.hh"

namespace agentsim::agents
{

/** Tunable constants of the accuracy model. */
struct Calibration
{
    /** Per-hop base competence by backbone model. */
    static constexpr double quality8b = 0.55;
    static constexpr double quality70b = 0.80;

    /** Few-shot prompting: floor at zero examples... */
    static constexpr double fewShotFloor = 0.62;
    /** ...saturating with this example-count scale... */
    static constexpr double fewShotScale = 2.2;
    /** ...and decaying slightly past this count (prompt overload). */
    static constexpr int fewShotOverload = 8;
    static constexpr double fewShotOverloadDecay = 0.985;

    /** Reflection boost: asymptote and rate. */
    static constexpr double reflectionGain = 0.20;
    static constexpr double reflectionScale = 1.4;

    /**
     * Exploration noise of an execution context (see the latent-
     * threshold model below): serial trials replay a similar strategy
     * (small sigma), sampled tree branches genuinely diversify
     * (large sigma).
     */
    static constexpr double exploreSigmaTrial = 0.15;
    static constexpr double exploreSigmaBranch = 0.35;
    /**
     * Decoding-temperature diversity of tool-less samples
     * (Self-Consistency): it varies the reasoning path but cannot
     * create knowledge the model lacks, so it is the narrowest.
     */
    static constexpr double exploreSigmaSample = 0.08;

    /** Per-attempt evidence success when the context is capable. */
    static constexpr double pFind = 0.55;
    /** Residual luck when it is not. */
    static constexpr double pLuck = 0.03;

    /** Difficulty slope (p falls linearly in difficulty d). */
    static constexpr double difficultySlope = 1.0;

    static constexpr double pMin = 0.02;
    static constexpr double pMax = 0.95;

    /** Probability the final answer is phrased correctly once all
     *  hops are found. */
    static constexpr double finishSuccess = 0.96;

    /** Partial-credit guess quality when the budget runs out. */
    static constexpr double guessBase = 0.12;

    /**
     * Probability per fruitless iteration that the agent prematurely
     * emits Finish (miscalibrated confidence). This is what spreads
     * the per-request step counts and produces the heavy-tailed agent
     * latency distribution of Fig 7.
     */
    static constexpr double earlyFinishProb = 0.08;

    /**
     * Probability a speculatively prefetched tool call matches the
     * action the LLM actually chose (AgentConfig::speculativeTools).
     */
    static constexpr double specToolHitProb = 0.6;

    /**
     * The LLM critic of the ActorCritic extension is a fallible
     * judge: it approves correct drafts with the first probability
     * and wrongly approves incorrect ones with the second.
     */
    static constexpr double criticApproveCorrect = 0.90;
    static constexpr double criticApproveWrong = 0.15;
};

/** Per-hop base competence for a backbone model, by name. */
double modelQuality(std::string_view model_name);

/** Few-shot prompting factor for @p examples examples. */
double fewShotFactor(int examples);

/** Reflection factor after @p reflections reflections. */
double reflectionFactor(int reflections);

/**
 * Per-attempt hop-success probability.
 *
 * @param quality backbone model competence.
 * @param examples few-shot examples in the prompt.
 * @param reflections reflections accumulated in episodic memory.
 * @param difficulty the task's latent difficulty.
 * @param tool_factor tool effectiveness (1 normally; the benchmark's
 *        noToolFactor for CoT, dagFactor for LLMCompiler).
 */
double hopSuccessProb(double quality, int examples, int reflections,
                      double difficulty, double tool_factor = 1.0);

/*
 * Latent-threshold progression model.
 *
 * A task carries a fixed solvability threshold u (TaskInstance::
 * solveThreshold). An *execution context* — one ReAct/Reflexion trial,
 * one LATS child branch, one LLMCompiler plan round — draws a
 * capability c = clamp(base + N(0, sigma)), where base is
 * hopSuccessProb(...). The context can make progress iff c > u;
 * within a capable context, each evidence-gathering attempt (tool
 * iteration, planned call) finds a hop with probability pFind (pLuck
 * otherwise).
 *
 * Consequences, matching the paper:
 *  - retries of the same strategy are strongly correlated (hard tasks
 *    stay hard), so Reflexion adds only modest accuracy at large
 *    latency cost;
 *  - wide parallel sampling (LATS children, sigma = exploreSigmaBranch)
 *    genuinely explores and lifts the accuracy ceiling — parallel
 *    scaling can compensate for a weaker backbone (Fig 22);
 *  - accuracy saturates with more compute (diminishing returns).
 */

/**
 * Draw a context capability around @p base with exploration noise
 * @p sigma, clamped to [pMin, pMax].
 */
double contextCapability(sim::Rng &rng, double base, double sigma);

/**
 * One evidence-gathering attempt within a context of capability
 * @p capability against a task threshold @p threshold.
 */
bool attemptHop(sim::Rng &rng, double capability, double threshold);

/**
 * CoT's single holistic pass: succeeds iff the (tool-less) context
 * clears the threshold and the answer is phrased correctly.
 */
bool oneShotSolve(sim::Rng &rng, double capability, double threshold);

/**
 * Probability the final answer is judged correct given progress.
 * Full hops: near certain; otherwise a weak partial-credit guess.
 */
double answerSuccessProb(int hops_found, int required_hops);

/** Sample a final-answer outcome. */
bool sampleAnswer(sim::Rng &rng, int hops_found, int required_hops);

} // namespace agentsim::agents

#endif // AGENTSIM_AGENTS_ACCURACY_HH
