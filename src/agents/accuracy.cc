#include "agents/accuracy.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace agentsim::agents
{

double
modelQuality(std::string_view model_name)
{
    if (model_name.find("70B") != std::string_view::npos)
        return Calibration::quality70b;
    if (model_name.find("8B") != std::string_view::npos)
        return Calibration::quality8b;
    AGENTSIM_WARN("unknown model '%.*s'; assuming 8B-class quality",
                  static_cast<int>(model_name.size()),
                  model_name.data());
    return Calibration::quality8b;
}

double
fewShotFactor(int examples)
{
    AGENTSIM_ASSERT(examples >= 0, "negative few-shot count");
    const double rise =
        Calibration::fewShotFloor +
        (1.0 - Calibration::fewShotFloor) *
            (1.0 - std::exp(-static_cast<double>(examples) /
                            Calibration::fewShotScale));
    if (examples <= Calibration::fewShotOverload)
        return rise;
    // Past the useful range, long prompts start to hurt slightly
    // (paper Fig 20: accuracy can regress with excessive examples).
    return rise * std::pow(Calibration::fewShotOverloadDecay,
                           examples - Calibration::fewShotOverload);
}

double
reflectionFactor(int reflections)
{
    AGENTSIM_ASSERT(reflections >= 0, "negative reflection count");
    return 1.0 +
           Calibration::reflectionGain *
               (1.0 - std::exp(-static_cast<double>(reflections) /
                               Calibration::reflectionScale));
}

double
hopSuccessProb(double quality, int examples, int reflections,
               double difficulty, double tool_factor)
{
    const double p = quality * fewShotFactor(examples) *
                     reflectionFactor(reflections) *
                     (1.0 - Calibration::difficultySlope * difficulty) *
                     tool_factor;
    return std::clamp(p, Calibration::pMin, Calibration::pMax);
}

double
contextCapability(sim::Rng &rng, double base, double sigma)
{
    return std::clamp(base + rng.normal(0.0, sigma), Calibration::pMin,
                      Calibration::pMax);
}

bool
attemptHop(sim::Rng &rng, double capability, double threshold)
{
    const double p = capability > threshold ? Calibration::pFind
                                            : Calibration::pLuck;
    return rng.bernoulli(p);
}

bool
oneShotSolve(sim::Rng &rng, double capability, double threshold)
{
    if (capability > threshold)
        return rng.bernoulli(Calibration::finishSuccess);
    return rng.bernoulli(Calibration::pLuck);
}

double
answerSuccessProb(int hops_found, int required_hops)
{
    AGENTSIM_ASSERT(required_hops > 0, "task with no hops");
    if (hops_found >= required_hops)
        return Calibration::finishSuccess;
    const double frac = static_cast<double>(hops_found) /
                        static_cast<double>(required_hops);
    return Calibration::guessBase * frac * frac;
}

bool
sampleAnswer(sim::Rng &rng, int hops_found, int required_hops)
{
    return rng.bernoulli(answerSuccessProb(hops_found, required_hops));
}

} // namespace agentsim::agents
