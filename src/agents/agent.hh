/**
 * @file
 * The agent core: workflow kinds, the capability matrix (Table I), the
 * design-space configuration (§V), the execution context wiring an
 * agent to the serving engine and tools, and the Agent interface.
 */

#ifndef AGENTSIM_AGENTS_AGENT_HH
#define AGENTSIM_AGENTS_AGENT_HH

#include <memory>
#include <stdexcept>
#include <string>

#include "agents/prompt.hh"
#include "agents/trace.hh"
#include "serving/checkpoint.hh"
#include "serving/engine.hh"
#include "sim/rng.hh"
#include "sim/task.hh"
#include "tools/catalog.hh"
#include "workload/benchmark.hh"

namespace agentsim::agents
{

/**
 * The agent workflows. The first five are the paper's evaluated set
 * (Table I); SelfConsistency is this library's extension implementing
 * the static multi-sample decoding of the paper's Fig 1(b) taxonomy
 * (Wang et al., ICLR'23) as a comparison baseline.
 */
enum class AgentKind
{
    CoT,
    ReAct,
    Reflexion,
    Lats,
    LlmCompiler,
    SelfConsistency,
    /** Extension: two-role collaboration (actor + LLM critic), the
     *  AutoGen/CAMEL pattern of the paper's related work (§VII). */
    ActorCritic,
    /** Extension: tool-less deliberate tree search over thoughts
     *  (Tree-of-Thoughts, §I taxonomy). */
    TreeOfThoughts,
    /** Extension: N samples ranked by an LLM verifier (Best-of-N,
     *  §I taxonomy). */
    BestOfN,
};

/** The paper's evaluated agents, in paper order. */
constexpr std::array<AgentKind, 5> allAgents{
    AgentKind::CoT, AgentKind::ReAct, AgentKind::Reflexion,
    AgentKind::Lats, AgentKind::LlmCompiler};

std::string_view agentName(AgentKind kind);

/** Capability matrix row (paper Table I). */
struct Capabilities
{
    bool reasoning = false;
    bool toolUse = false;
    bool reflection = false;
    bool treeSearch = false;
    bool structuredPlanning = false;
};

Capabilities capabilities(AgentKind kind);

/** True if the paper evaluates this agent x benchmark pair. */
bool agentSupports(AgentKind kind, workload::Benchmark benchmark);

/**
 * Design-space knobs of §V. Values of -1 mean "benchmark default".
 */
struct AgentConfig
{
    /** Few-shot examples in the prompt (-1: benchmark default). */
    int fewShotExamples = -1;
    /** Reasoning/tool iterations per trial (ReAct & trials within
     *  Reflexion; MCTS rounds for LATS). */
    int maxIterations = 7;
    /** Maximum reflection retries after a failed trial (Reflexion). */
    int maxReflections = 2;
    /** Children per tree expansion (LATS parallel scaling). */
    int latsChildren = 5;
    /** Plan-execute-join rounds (LLMCompiler). */
    int compilerMaxRounds = 2;
    /**
     * Speculative tool invocation (paper keytakeaway #1): launch a
     * predicted tool call concurrently with each reasoning LLM call;
     * correct predictions hide the tool latency, wrong ones waste a
     * call. ReAct-style loops only.
     */
    bool speculativeTools = false;
    /** Parallel samples for SelfConsistency's majority vote. */
    int scSamples = 5;
    /** Backbone per-hop competence (see accuracy.hh). */
    double modelQuality = 0.50;
    /**
     * Per-LLM-call SLO deadline, seconds (0 disables). Set on every
     * GenRequest the rollout issues; an expired call surfaces as
     * GenResult.timedOut and the rollout is abandoned (see
     * RolloutAbandoned).
     */
    double llmDeadlineSeconds = 0.0;

    /** Resolve the few-shot count against a benchmark profile. */
    int resolveFewShot(const workload::BenchmarkProfile &profile) const
    {
        return fewShotExamples >= 0 ? fewShotExamples
                                    : profile.defaultFewShot;
    }
};

/**
 * Everything an agent run needs. Cheap to copy; owns its RNG stream
 * and trace.
 */
struct AgentContext
{
    sim::Simulation *sim = nullptr;
    serving::LlmEngine *engine = nullptr;
    tools::ToolSet *tools = nullptr;
    workload::TaskInstance task;
    AgentConfig config;
    AgentKind kind{};
    std::uint64_t seed = 1;

    /**
     * Optional cross-layer trace sink: when set, every LLM and tool
     * call is emitted as a span on the agent track (pid
     * telemetry::TracePid::kAgents, lane @ref traceTid), sharing the
     * simulator clock with the engine and request tracks.
     */
    telemetry::TraceSink *traceSink = nullptr;
    /** Trace lane for this rollout (e.g. the task index). */
    std::uint64_t traceTid = 0;

    /**
     * Optional causal span collector: when set (with a valid
     * @ref spanParent), callLlm/callTool attach LlmCall/ToolCall
     * spans under the current parent, and workflows scope iteration
     * spans via SpanScope. The engine picks the LlmCall span up
     * through GenRequest::parentSpan.
     */
    telemetry::SpanCollector *spans = nullptr;
    /** Current span to attach children under (episode, attempt or
     *  iteration — SpanScope pushes/pops it). */
    telemetry::SpanRef spanParent;

    /**
     * Optional episode checkpoint store. When set (and its policy
     * enabled), workflows journal an EpisodeCheckpoint at iteration
     * boundaries under @ref episodeKey so the cluster's retry path
     * can resume instead of replaying the episode (DESIGN.md §3j).
     */
    serving::CheckpointStore *checkpoints = nullptr;
    /** Store key of this episode (the cluster request index). */
    std::uint64_t episodeKey = 0;
    /**
     * Checkpoint to resume from, or null for a fresh start. The
     * caller must have matched kindTag against @ref kind (brownout
     * may downgrade the workflow between attempts) and restored the
     * prefix KV if priced cheaper than recompute; the workflow casts
     * `state` back and replays the journal.
     */
    const serving::EpisodeCheckpoint *resumeFrom = nullptr;

    const workload::BenchmarkProfile &
    profile() const
    {
        return workload::profile(task.benchmark);
    }

    /** Request-level RNG stream (behavioural randomness). */
    sim::Rng makeRng(std::string_view purpose) const;

    /** Fixed instruction tokens for (agent, benchmark). */
    std::vector<kv::TokenId> instructionTokens() const;

    /** Fixed few-shot tokens (resolved example count). */
    std::vector<kv::TokenId> fewShotTokens() const;

    /** Per-task user-query tokens. */
    std::vector<kv::TokenId> userTokens() const;

    /** Deterministic observation tokens for tool call @p index. */
    std::vector<kv::TokenId> toolObservationTokens(
        std::int64_t count, std::uint64_t index) const;

    /** Deterministic reflection tokens for reflection @p index. */
    std::vector<kv::TokenId> reflectionTokens(std::int64_t count,
                                              std::uint64_t index)
        const;
};

/**
 * An LLM call hit a retryable serving failure: the node crashed (or
 * was offline) or shed the request at admission. The rollout cannot
 * continue on this node — its KV and conversation state are tied to
 * in-flight work that is gone — so the whole rollout should be
 * retried, typically on another node (see core::RetryPolicy).
 */
class NodeFailureError : public std::runtime_error
{
  public:
    NodeFailureError(std::string what, bool shed_)
        : std::runtime_error(std::move(what)), shed(shed_)
    {
    }

    /** True for admission-control shedding, false for a crash. */
    bool shed = false;
    /**
     * GPU-seconds the episode had attributed when the failure hit —
     * what a from-scratch retry recomputes. The cluster's recovery
     * accounting subtracts the last checkpoint's share to price what
     * checkpoint-resume actually saved.
     */
    double investedGpuSeconds = 0.0;
};

/**
 * An LLM call blew its per-call deadline (AgentConfig
 * ::llmDeadlineSeconds). Not retryable: the SLO is already missed, so
 * the rollout is abandoned and counted against goodput.
 */
class DeadlineExceededError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Issue one LLM call: build the request, await the engine, record the
 * span and token breakdown in @p trace, and return the result.
 *
 * Throws NodeFailureError when the engine reports a retryable failure
 * (node crash / load shed) and DeadlineExceededError when the call's
 * deadline expired; both propagate through the rollout's coroutine
 * chain to the cluster worker driving it.
 *
 * @param output_mean mean output length for this call role.
 * @param label trace label, e.g. "react.step" or "lats.value".
 * @param expected_park_seconds expected GPU-idle wait *after* this
 *        call (an imminent tool invocation); forwarded to the engine
 *        as the KV-parking hint. 0 when nothing idle follows.
 */
sim::Task<serving::GenResult>
callLlm(AgentContext &ctx, Trace &trace, sim::Rng &rng, Prompt prompt,
        double output_mean, std::string label,
        double expected_park_seconds = 0.0);

/**
 * Invoke a tool and record the span; returns the observation.
 */
sim::Task<tools::ToolResult> callTool(AgentContext &ctx, Trace &trace,
                                      sim::Rng &rng, tools::Tool &tool);

/**
 * RAII scope for a structural span (an agent iteration, a fan-out
 * stage): opens a child of ctx.spanParent and redirects the context's
 * parent to it for the scope's lifetime, so nested callLlm/callTool
 * (and parallel children launched inside the scope) attach under it.
 * The destructor closes the span at the current sim time — also on
 * exception unwind — and restores the previous parent. No-op when no
 * collector is attached.
 */
class SpanScope
{
  public:
    SpanScope(AgentContext &ctx, telemetry::SpanKind kind,
              std::string label)
        : ctx_(ctx), saved_(ctx.spanParent)
    {
        if (ctx_.spans != nullptr && ctx_.spanParent.valid()) {
            span_ = ctx_.spans->child(ctx_.spanParent, kind,
                                      std::move(label),
                                      ctx_.sim->now());
            ctx_.spanParent = span_;
        }
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    ~SpanScope()
    {
        if (span_.valid())
            ctx_.spans->end(span_, ctx_.sim->now());
        ctx_.spanParent = saved_;
    }

    const telemetry::SpanRef &ref() const { return span_; }

  private:
    AgentContext &ctx_;
    telemetry::SpanRef saved_;
    telemetry::SpanRef span_;
};

/** The agent interface: one workflow, stateless across runs. */
class Agent
{
  public:
    virtual ~Agent() = default;

    virtual AgentKind kind() const = 0;

    /** Execute one request; returns the full measurement record. */
    virtual sim::Task<AgentResult> run(AgentContext ctx) = 0;
};

/** Construct a workflow implementation. */
std::unique_ptr<Agent> makeAgent(AgentKind kind);

} // namespace agentsim::agents

#endif // AGENTSIM_AGENTS_AGENT_HH
