/**
 * @file
 * Actor-critic collaboration (extension): the role-based multi-agent
 * pattern of CAMEL/AutoGen (paper §VII related work) distilled to two
 * roles. The *actor* runs a ReAct-style tool loop to draft an answer;
 * the *critic* — a second LLM role — reviews the full trajectory and
 * either accepts it or returns feedback that the actor folds into its
 * episodic memory before retrying.
 *
 * The critic is an internal, fallible judge (unlike Reflexion, whose
 * retries are driven by the environment's exact-match reward): it
 * sometimes ships a wrong answer and sometimes sends a correct one
 * back for a pointless, expensive revision — the cost/quality
 * trade-off the ext_multi_agent bench quantifies.
 */

#include "agents/accuracy.hh"
#include "agents/workflows.hh"

namespace agentsim::agents
{

sim::Task<AgentResult>
ActorCriticAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    sim::Rng rng = ctx.makeRng("run");
    const auto &prof = ctx.profile();

    EpisodicMemory critiques;
    bool solved = false;
    int iterations_total = 0;
    int rounds_used = 0;

    for (int round = 0; round <= ctx.config.maxReflections; ++round) {
        ++rounds_used;
        // Actor: draft a solution with a fresh short-term trajectory,
        // carrying the critic's accumulated feedback.
        TrajectoryMemory memory;
        TrialOutcome draft = co_await runToolLoopTrial(
            ctx, trace, rng, memory, critiques, round,
            (static_cast<std::uint64_t>(round) << 32) | 0xac0000ULL);
        iterations_total += draft.iterations;

        // Critic: review the trajectory (separate role, own call).
        PromptBuilder review;
        review.add(SegmentKind::Instruction, ctx.instructionTokens());
        review.add(SegmentKind::User, ctx.userTokens());
        critiques.appendTo(review);
        memory.appendTo(review);
        serving::GenResult verdict = co_await callLlm(
            ctx, trace, rng, review.build(), prof.valueOutputMean,
            "critic.review");

        const double approve_prob =
            draft.answeredCorrectly
                ? Calibration::criticApproveCorrect
                : Calibration::criticApproveWrong;
        if (rng.bernoulli(approve_prob) ||
            round == ctx.config.maxReflections) {
            // Accepted (or out of rounds): the draft is the answer —
            // right or wrong.
            solved = draft.answeredCorrectly;
            break;
        }

        // Rejected: the critic writes actionable feedback the actor
        // carries into the next round.
        PromptBuilder feedback;
        feedback.add(SegmentKind::Instruction, ctx.instructionTokens());
        feedback.add(SegmentKind::User, ctx.userTokens());
        critiques.appendTo(feedback);
        memory.appendTo(feedback);
        feedback.add(SegmentKind::LlmHistory, verdict.tokens);
        serving::GenResult critique = co_await callLlm(
            ctx, trace, rng, feedback.build(),
            prof.reflectionOutputMean, "critic.feedback");
        critiques.addReflection(critique.tokens);
    }

    trace.setIterations(iterations_total);
    trace.setReflections(rounds_used - 1);
    co_return trace.finish(solved, ctx.sim->now());
}

} // namespace agentsim::agents
