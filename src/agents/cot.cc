/**
 * @file
 * Chain-of-Thought: a single LLM call mapping the prompt straight to a
 * long rationale plus answer, with no external interaction.
 */

#include "agents/accuracy.hh"
#include "agents/workflows.hh"

namespace agentsim::agents
{

sim::Task<AgentResult>
CotAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    sim::Rng rng = ctx.makeRng("run");

    PromptBuilder builder;
    builder.add(SegmentKind::Instruction, ctx.instructionTokens());
    builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
    builder.add(SegmentKind::User, ctx.userTokens());

    co_await callLlm(ctx, trace, rng, builder.build(),
                     ctx.profile().cotOutputMean, "cot.reason");

    // One holistic attempt from parametric knowledge: no tool access
    // (the benchmark's noToolFactor) and no retries.
    const double base = hopSuccessProb(
        ctx.config.modelQuality,
        ctx.config.resolveFewShot(ctx.profile()), 0,
        ctx.task.difficulty, ctx.profile().noToolFactor);
    const double capability = contextCapability(
        rng, base, Calibration::exploreSigmaTrial);
    const bool solved =
        oneShotSolve(rng, capability, ctx.task.solveThreshold);

    trace.setIterations(1);
    co_return trace.finish(solved, ctx.sim->now());
}

} // namespace agentsim::agents
