/**
 * @file
 * Reflexion: run ReAct-style trials; after a failed trial, evaluate
 * the trajectory and distill a verbal reflection into episodic
 * (long-term) memory, then retry with a cleared short-term trajectory.
 * Reflections raise subsequent per-hop success probabilities but each
 * retry replays the full iteration cost — the paper's canonical
 * *sequential* test-time scaling.
 */

#include "agents/accuracy.hh"
#include "agents/workflows.hh"

namespace agentsim::agents
{

sim::Task<AgentResult>
ReflexionAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    sim::Rng rng = ctx.makeRng("run");
    const auto &prof = ctx.profile();

    EpisodicMemory episodic;
    bool solved = false;
    int iterations_total = 0;
    int reflections_used = 0;

    for (int trial = 0; trial <= ctx.config.maxReflections; ++trial) {
        TrajectoryMemory memory; // short-term memory resets per trial
        TrialOutcome outcome = co_await runToolLoopTrial(
            ctx, trace, rng, memory, episodic, reflections_used,
            static_cast<std::uint64_t>(trial) << 32);
        iterations_total += outcome.iterations;

        if (outcome.answeredCorrectly) {
            solved = true;
            break;
        }
        if (trial == ctx.config.maxReflections)
            break; // no retries left

        // Self-evaluation over the failed trajectory.
        PromptBuilder eval_builder;
        eval_builder.add(SegmentKind::Instruction,
                         ctx.instructionTokens());
        eval_builder.add(SegmentKind::User, ctx.userTokens());
        episodic.appendTo(eval_builder);
        memory.appendTo(eval_builder);
        co_await callLlm(ctx, trace, rng, eval_builder.build(),
                         prof.valueOutputMean, "reflexion.evaluate");

        // Verbal reflection, appended to long-term memory. The
        // reflection text is the LLM's own output tokens, so later
        // prompts that embed it share its token ids.
        PromptBuilder refl_builder;
        refl_builder.add(SegmentKind::Instruction,
                         ctx.instructionTokens());
        refl_builder.add(SegmentKind::User, ctx.userTokens());
        episodic.appendTo(refl_builder);
        memory.appendTo(refl_builder);
        serving::GenResult reflection = co_await callLlm(
            ctx, trace, rng, refl_builder.build(),
            prof.reflectionOutputMean, "reflexion.reflect");
        episodic.addReflection(reflection.tokens);
        ++reflections_used;
    }

    trace.setIterations(iterations_total);
    trace.setReflections(reflections_used);
    co_return trace.finish(solved, ctx.sim->now());
}

} // namespace agentsim::agents
