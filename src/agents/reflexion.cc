/**
 * @file
 * Reflexion: run ReAct-style trials; after a failed trial, evaluate
 * the trajectory and distill a verbal reflection into episodic
 * (long-term) memory, then retry with a cleared short-term trajectory.
 * Reflections raise subsequent per-hop success probabilities but each
 * retry replays the full iteration cost — the paper's canonical
 * *sequential* test-time scaling.
 */

#include "agents/accuracy.hh"
#include "agents/workflows.hh"

namespace agentsim::agents
{

namespace
{

/**
 * Full Reflexion episode snapshot: the inner trial state plus the
 * cross-trial loop position. Snapshots taken between trials (after a
 * reflection) carry a fresh inner state with capabilityDrawn=false —
 * the resumed trial draws its capability from the restored stream,
 * exactly as the uninterrupted run would have.
 */
struct ReflexionEpisodeState
{
    ReactEpisodeState inner;
    EpisodicMemory episodic;
    int trial = 0;
    /** iterations_total before the current trial started. */
    int iterationsBefore = 0;
    int reflectionsUsed = 0;

    ReflexionEpisodeState(const sim::Rng &rng, const Trace &trace)
        : inner(rng, trace)
    {
    }
};

} // namespace

sim::Task<AgentResult>
ReflexionAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    sim::Rng rng = ctx.makeRng("run");
    const auto &prof = ctx.profile();

    EpisodicMemory episodic;
    bool solved = false;
    int iterations_total = 0;
    int reflections_used = 0;
    int first_trial = 0;

    // Journal replay: rejoin the trial loop exactly where the last
    // checkpoint of the previous attempt left it.
    const ReflexionEpisodeState *resume = nullptr;
    std::shared_ptr<const void> resume_keepalive;
    if (ctx.resumeFrom != nullptr &&
        ctx.resumeFrom->kindTag ==
            static_cast<int>(AgentKind::Reflexion)) {
        // Re-checkpointing overwrites the store entry mid-run; pin
        // the snapshot we are replaying from.
        resume_keepalive = ctx.resumeFrom->state;
        resume = static_cast<const ReflexionEpisodeState *>(
            resume_keepalive.get());
        trace = resume->inner.trace;
        rng = resume->inner.rng;
        episodic = resume->episodic;
        iterations_total = resume->iterationsBefore;
        reflections_used = resume->reflectionsUsed;
        first_trial = resume->trial;
    }

    const bool journaling = ctx.checkpoints != nullptr &&
                            ctx.checkpoints->policy().enabled;
    auto journal = [&](std::shared_ptr<ReflexionEpisodeState> state,
                       int completed_iterations,
                       const TrajectoryMemory &memory_now) {
        serving::EpisodeCheckpoint ckpt;
        ckpt.kindTag = static_cast<int>(AgentKind::Reflexion);
        ckpt.iteration = completed_iterations;
        ckpt.takenTick = ctx.sim->now();
        ckpt.chainTokens = trialChainTokens(ctx, episodic, memory_now);
        ckpt.gpuSeconds = trace.cost().gpuSeconds();
        ckpt.state = std::move(state);
        ctx.checkpoints->put(ctx.episodeKey, std::move(ckpt),
                             kvBytesPerToken(*ctx.engine));
    };

    for (int trial = first_trial; trial <= ctx.config.maxReflections;
         ++trial) {
        TrajectoryMemory memory; // short-term memory resets per trial
        const ReactEpisodeState *inner_resume = nullptr;
        if (resume != nullptr && trial == first_trial) {
            inner_resume = &resume->inner;
            memory = resume->inner.memory;
        }

        TrialCheckpointFn checkpoint;
        if (journaling) {
            const int iterations_before = iterations_total;
            checkpoint = [&, trial, iterations_before](
                             const TrialOutcome &outcome,
                             const TrajectoryMemory &memory_now,
                             double capability,
                             const sim::Rng &rng_now) {
                const int completed =
                    iterations_before + outcome.iterations;
                if (!ctx.checkpoints->shouldCheckpoint(ctx.episodeKey,
                                                       completed))
                    return;
                auto state = std::make_shared<ReflexionEpisodeState>(
                    rng_now, trace);
                state->inner.outcome = outcome;
                state->inner.memory = memory_now;
                state->inner.capabilityDrawn = true;
                state->inner.capability = capability;
                state->episodic = episodic;
                state->trial = trial;
                state->iterationsBefore = iterations_before;
                state->reflectionsUsed = reflections_used;
                journal(std::move(state), completed, memory_now);
            };
        }

        TrialOutcome outcome = co_await runToolLoopTrial(
            ctx, trace, rng, memory, episodic, reflections_used,
            static_cast<std::uint64_t>(trial) << 32, inner_resume,
            checkpoint);
        iterations_total += outcome.iterations;

        if (outcome.answeredCorrectly) {
            solved = true;
            break;
        }
        if (trial == ctx.config.maxReflections)
            break; // no retries left

        // Self-evaluation over the failed trajectory.
        PromptBuilder eval_builder;
        eval_builder.add(SegmentKind::Instruction,
                         ctx.instructionTokens());
        eval_builder.add(SegmentKind::User, ctx.userTokens());
        episodic.appendTo(eval_builder);
        memory.appendTo(eval_builder);
        co_await callLlm(ctx, trace, rng, eval_builder.build(),
                         prof.valueOutputMean, "reflexion.evaluate");

        // Verbal reflection, appended to long-term memory. The
        // reflection text is the LLM's own output tokens, so later
        // prompts that embed it share its token ids.
        PromptBuilder refl_builder;
        refl_builder.add(SegmentKind::Instruction,
                         ctx.instructionTokens());
        refl_builder.add(SegmentKind::User, ctx.userTokens());
        episodic.appendTo(refl_builder);
        memory.appendTo(refl_builder);
        serving::GenResult reflection = co_await callLlm(
            ctx, trace, rng, refl_builder.build(),
            prof.reflectionOutputMean, "reflexion.reflect");
        episodic.addReflection(reflection.tokens);
        ++reflections_used;

        // Trial-boundary snapshot: without it, a crash during the
        // next trial's first iteration (or during evaluate/reflect)
        // would replay this whole trial's tail. The fresh inner state
        // (capabilityDrawn=false) makes the resumed trial draw its
        // capability from the restored stream.
        if (journaling &&
            ctx.checkpoints->shouldCheckpoint(ctx.episodeKey,
                                              iterations_total)) {
            auto state =
                std::make_shared<ReflexionEpisodeState>(rng, trace);
            state->episodic = episodic;
            state->trial = trial + 1;
            state->iterationsBefore = iterations_total;
            state->reflectionsUsed = reflections_used;
            journal(std::move(state), iterations_total,
                    TrajectoryMemory{});
        }
    }

    trace.setIterations(iterations_total);
    trace.setReflections(reflections_used);
    co_return trace.finish(solved, ctx.sim->now());
}

} // namespace agentsim::agents
