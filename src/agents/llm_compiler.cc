/**
 * @file
 * LLMCompiler: a planner LLM emits a DAG of tool calls which a
 * streaming executor dispatches as soon as (a) the plan fragment
 * naming them has been generated and (b) their dependencies have
 * completed. Planning and tool execution therefore overlap — the pink
 * "Overlap" share of the paper's Fig 5 — and a joiner LLM call fuses
 * the results (with bounded replanning rounds).
 *
 * On benchmarks whose tool calls are highly interdependent (WebShop),
 * the sampled DAG degenerates toward a chain and planned calls lose
 * effectiveness (dagFactor), reproducing the paper's §V-A finding.
 */

#include <algorithm>
#include <cmath>

#include "agents/accuracy.hh"
#include "agents/plan.hh"
#include "agents/workflows.hh"

namespace agentsim::agents
{

namespace
{

/** Result of one executed plan node. */
struct NodeOutcome
{
    int id = 0;
    std::int64_t observationTokens = 0;
    bool foundHop = false;
};

/**
 * Execute plan node @p id: wait for its dependencies, run the tool,
 * report completion.
 */
sim::Task<NodeOutcome>
executeNode(AgentContext &ctx, Trace &trace, int id,
            const std::vector<int> deps,
            std::vector<sim::Completion<int>> &done, double capability,
            double threshold, sim::Rng rng)
{
    for (int dep : deps)
        co_await done[static_cast<std::size_t>(dep)];

    tools::Tool &tool = ctx.tools->pick(rng);
    tools::ToolResult obs = co_await callTool(ctx, trace, rng, tool);

    NodeOutcome outcome;
    outcome.id = id;
    outcome.observationTokens = obs.observationTokens;
    outcome.foundHop = attemptHop(rng, capability, threshold);
    done[static_cast<std::size_t>(id)].set(1);
    co_return outcome;
}

} // namespace

sim::Task<AgentResult>
LlmCompilerAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    sim::Rng rng = ctx.makeRng("run");
    const auto &prof = ctx.profile();
    const int required = ctx.task.requiredHops;
    const int few_shot = ctx.config.resolveFewShot(prof);

    TrajectoryMemory memory;
    int hops = 0;
    bool solved = false;
    int rounds_used = 0;

    for (int round = 0; round < ctx.config.compilerMaxRounds; ++round) {
        SpanScope iteration(ctx, telemetry::SpanKind::Iteration,
                            "compiler.round");
        ++rounds_used;

        // Plan size: remaining hops inflated by DAG over-fetch.
        const int remaining = required - hops;
        const int plan_size = std::clamp(
            static_cast<int>(std::lround(
                remaining * (1.0 + prof.dagOverFetch))),
            2, 8);
        PlanGraph plan =
            PlanGraph::sample(rng, plan_size, prof.dagDepProb);
        plan.checkInvariants();

        // One plan-execute round is one execution context; DAG-planned
        // calls lose effectiveness where tool use is interdependent.
        const double base = hopSuccessProb(
            ctx.config.modelQuality, few_shot, 0, ctx.task.difficulty,
            prof.dagFactor);
        const double capability = contextCapability(
            rng, base, Calibration::exploreSigmaTrial);

        // Streamed planning: the plan is generated in plan_size
        // fragments; each fragment's tool task launches immediately
        // (subject to DAG dependencies) while later fragments are
        // still being planned — this is the LLM/tool overlap.
        std::vector<sim::Completion<int>> done;
        done.reserve(static_cast<std::size_t>(plan_size));
        for (int i = 0; i < plan_size; ++i)
            done.emplace_back(*ctx.sim);

        std::vector<sim::Task<NodeOutcome>> node_tasks;
        node_tasks.reserve(static_cast<std::size_t>(plan_size));

        const double fragment_mean =
            prof.plannerOutputMean / plan_size;
        for (int i = 0; i < plan_size; ++i) {
            PromptBuilder builder;
            builder.add(SegmentKind::Instruction,
                        ctx.instructionTokens());
            builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
            builder.add(SegmentKind::User, ctx.userTokens());
            memory.appendTo(builder);

            // Earlier fragments overlap with already-launched tool
            // tasks (the GPU stays busy planning); only after the
            // *last* fragment does the agent block on the DAG's
            // remaining tool calls, so only it carries a parking hint.
            const double park = i == plan_size - 1
                                    ? ctx.tools->meanLatencySeconds()
                                    : 0.0;
            serving::GenResult fragment = co_await callLlm(
                ctx, trace, rng, builder.build(), fragment_mean,
                "compiler.plan", park);
            memory.append(SegmentKind::LlmHistory, fragment.tokens);

            const auto obs_index =
                (static_cast<std::uint64_t>(round) << 16) |
                static_cast<std::uint64_t>(i);
            sim::Rng node_rng(
                ctx.seed, "compiler.node",
                sim::hashCombine(ctx.task.taskId, obs_index));
            node_tasks.push_back(executeNode(
                ctx, trace, i,
                plan.nodes()[static_cast<std::size_t>(i)].deps, done,
                capability, ctx.task.solveThreshold, node_rng));
        }

        std::vector<NodeOutcome> outcomes =
            co_await sim::allOf(std::move(node_tasks));

        for (const auto &outcome : outcomes) {
            memory.append(
                SegmentKind::ToolHistory,
                ctx.toolObservationTokens(
                    outcome.observationTokens,
                    (static_cast<std::uint64_t>(round) << 16) |
                        static_cast<std::uint64_t>(outcome.id)));
            if (outcome.foundHop && hops < required)
                ++hops;
        }

        // Joiner: fuse observations; answer or decide to replan.
        PromptBuilder join_builder;
        join_builder.add(SegmentKind::Instruction,
                         ctx.instructionTokens());
        join_builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
        join_builder.add(SegmentKind::User, ctx.userTokens());
        memory.appendTo(join_builder);
        serving::GenResult join = co_await callLlm(
            ctx, trace, rng, join_builder.build(),
            prof.finalOutputMean, "compiler.join");
        memory.append(SegmentKind::LlmHistory, join.tokens);

        if (hops >= required) {
            solved = sampleAnswer(rng, hops, required);
            break;
        }
    }

    if (!solved && hops < required) {
        // All rounds spent: forced answer from partial evidence.
        solved = sampleAnswer(rng, hops, required);
    }

    trace.setIterations(rounds_used);
    co_return trace.finish(solved, ctx.sim->now());
}

} // namespace agentsim::agents
