/**
 * @file
 * LATS (Language Agent Tree Search): Monte-Carlo tree search over
 * reasoning/acting trajectories.
 *
 * Each MCTS round selects a leaf by UCT and expands C children in
 * three synchronized parallel phases, matching the paper's optimized
 * implementation (Fig 3d): C concurrent action-sampling LLM calls,
 * then C concurrent tool invocations, then C concurrent LLM value
 * calls; values backpropagate up the tree. Prompts carry only the
 * root-to-node path, so contexts stay shorter than full-history
 * agents (Fig 8) while the shared path prefix makes the parallel
 * siblings prime prefix-cache beneficiaries (Fig 12).
 */

#include <algorithm>
#include <cmath>
#include <memory>

#include "agents/accuracy.hh"
#include "agents/workflows.hh"
#include "sim/logging.hh"

namespace agentsim::agents
{

namespace
{

/** One node of the search tree. */
struct Node
{
    Node *parent = nullptr;
    int hops = 0;
    int depth = 0;
    double valueSum = 0.0;
    int visits = 0;
    /** Branch capability drawn at expansion (latent-threshold model);
     *  inherited by rollout continuations of this branch. */
    double capability = 0.0;
    /** Action text sampled for this node (LLM output tokens). */
    std::vector<kv::TokenId> llmTokens;
    /** Observation returned by this node's tool call. */
    std::vector<kv::TokenId> obsTokens;
    std::vector<std::unique_ptr<Node>> children;
};

/** Build the prompt for a node: fixed blocks + root-to-node path. */
Prompt
pathPrompt(const AgentContext &ctx, const EpisodicMemory &episodic,
           const Node *node)
{
    PromptBuilder builder;
    builder.add(SegmentKind::Instruction, ctx.instructionTokens());
    builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
    builder.add(SegmentKind::User, ctx.userTokens());
    episodic.appendTo(builder);

    std::vector<const Node *> path;
    for (const Node *n = node; n != nullptr && n->parent != nullptr;
         n = n->parent) {
        path.push_back(n);
    }
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        builder.add(SegmentKind::LlmHistory, (*it)->llmTokens);
        builder.add(SegmentKind::ToolHistory, (*it)->obsTokens);
    }
    return builder.build();
}

/** UCT descent from the root to an unexpanded leaf. */
Node *
selectLeaf(Node *root)
{
    Node *node = root;
    while (!node->children.empty()) {
        Node *best = nullptr;
        double best_score = -1e300;
        for (const auto &child : node->children) {
            const double exploit =
                child->valueSum / std::max(1, child->visits);
            const double explore = std::sqrt(
                2.0 * std::log(static_cast<double>(node->visits + 1)) /
                static_cast<double>(std::max(1, child->visits)));
            const double score = exploit + explore;
            if (score > best_score) {
                best_score = score;
                best = child.get();
            }
        }
        node = best;
    }
    return node;
}

/** Phase-1 helper: one child's action-sampling LLM call. */
sim::Task<serving::GenResult>
sampleAction(AgentContext &ctx, Trace &trace,
             const EpisodicMemory &episodic, Node *parent, sim::Rng rng)
{
    co_return co_await callLlm(ctx, trace, rng,
                               pathPrompt(ctx, episodic, parent),
                               ctx.profile().stepOutputMean,
                               "lats.expand");
}

/** Phase-2 helper: one child's tool invocation. */
sim::Task<tools::ToolResult>
actChild(AgentContext &ctx, Trace &trace, sim::Rng rng)
{
    tools::Tool &tool = ctx.tools->pick(rng);
    co_return co_await callTool(ctx, trace, rng, tool);
}

/** Phase-3 helper: one child's LLM value call. */
sim::Task<serving::GenResult>
valueChild(AgentContext &ctx, Trace &trace,
           const EpisodicMemory &episodic, const Node *child,
           sim::Rng rng)
{
    co_return co_await callLlm(ctx, trace, rng,
                               pathPrompt(ctx, episodic, child),
                               ctx.profile().valueOutputMean,
                               "lats.value");
}

/** Deep copy of a search (sub)tree with parent pointers rebuilt. */
std::unique_ptr<Node>
cloneTree(const Node &src, Node *parent)
{
    auto dst = std::make_unique<Node>();
    dst->parent = parent;
    dst->hops = src.hops;
    dst->depth = src.depth;
    dst->valueSum = src.valueSum;
    dst->visits = src.visits;
    dst->capability = src.capability;
    dst->llmTokens = src.llmTokens;
    dst->obsTokens = src.obsTokens;
    dst->children.reserve(src.children.size());
    for (const auto &child : src.children)
        dst->children.push_back(cloneTree(*child, dst.get()));
    return dst;
}

/** Preorder position of @p target in the tree, -1 if absent. */
int
preorderIndexOf(const Node *node, const Node *target, int &counter)
{
    if (node == target)
        return counter;
    ++counter;
    for (const auto &child : node->children) {
        const int found =
            preorderIndexOf(child.get(), target, counter);
        if (found >= 0)
            return found;
    }
    return -1;
}

/** Node at preorder position @p index (counterpart of the above). */
Node *
nodeAtPreorder(Node *node, int index, int &counter)
{
    if (counter == index)
        return node;
    ++counter;
    for (const auto &child : node->children) {
        Node *found = nodeAtPreorder(child.get(), index, counter);
        if (found != nullptr)
            return found;
    }
    return nullptr;
}

/**
 * Journaled LATS episode snapshot: the search tree (deep-copied so
 * the live tree keeps mutating), the incumbent best node as a
 * preorder index, and the round-loop position. Snapshots are taken
 * only at round boundaries with no terminal found, so a resume always
 * re-enters the loop. Per-child RNG streams need no journaling — they
 * reconstruct from (seed, round, child) discriminators.
 */
struct LatsEpisodeState
{
    std::unique_ptr<Node> root;
    int bestIndex = 0;
    int reflections = 0;
    int roundsUsed = 0;
    EpisodicMemory episodic;
    sim::Rng rng;
    Trace trace;

    LatsEpisodeState(const sim::Rng &rng_, const Trace &trace_)
        : rng(rng_), trace(trace_)
    {
    }
};

} // namespace

sim::Task<AgentResult>
LatsAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    sim::Rng rng = ctx.makeRng("run");
    const auto &prof = ctx.profile();
    const int required = ctx.task.requiredHops;
    const int width = std::max(1, ctx.config.latsChildren);

    EpisodicMemory episodic;
    auto root = std::make_unique<Node>();
    root->visits = 1;

    Node *best = root.get();
    Node *terminal = nullptr;
    int reflections = 0;
    int rounds_used = 0;
    int first_round = 0;

    // Journal replay: re-clone the checkpointed tree (the stored copy
    // stays immutable for repeated resumes) and rejoin the round loop.
    if (ctx.resumeFrom != nullptr &&
        ctx.resumeFrom->kindTag == static_cast<int>(AgentKind::Lats)) {
        // The tree is re-cloned and scalars copied below, so no
        // keepalive is needed past this block — but the store entry
        // must not be touched while we read it, which holds: the
        // first re-checkpoint happens at the earliest one round in.
        const auto *state = static_cast<const LatsEpisodeState *>(
            ctx.resumeFrom->state.get());
        trace = state->trace;
        rng = state->rng;
        episodic = state->episodic;
        reflections = state->reflections;
        rounds_used = state->roundsUsed;
        first_round = state->roundsUsed;
        root = cloneTree(*state->root, nullptr);
        int counter = 0;
        best = nodeAtPreorder(root.get(), state->bestIndex, counter);
        AGENTSIM_ASSERT(best != nullptr,
                        "LATS resume lost its best node");
    }

    for (int round = first_round; round < ctx.config.maxIterations;
         ++round) {
        SpanScope iteration(ctx, telemetry::SpanKind::Iteration,
                            "lats.round");
        ++rounds_used;
        Node *leaf = selectLeaf(root.get());
        if (leaf->hops >= required) {
            terminal = leaf;
            break;
        }

        // Per-child deterministic RNG streams (stable regardless of
        // event interleaving).
        std::vector<sim::Rng> child_rngs;
        for (int c = 0; c < width; ++c) {
            const auto disc =
                (static_cast<std::uint64_t>(round) << 16) |
                static_cast<std::uint64_t>(c);
            child_rngs.emplace_back(
                ctx.seed, "lats.child",
                sim::hashCombine(ctx.task.taskId, disc));
        }

        // Phase 1: sample C candidate actions in parallel.
        std::vector<sim::Task<serving::GenResult>> action_tasks;
        for (int c = 0; c < width; ++c) {
            action_tasks.push_back(sampleAction(
                ctx, trace, episodic, leaf, child_rngs
                [static_cast<std::size_t>(c)]));
        }
        std::vector<serving::GenResult> actions =
            co_await sim::allOf(std::move(action_tasks));

        // Phase 2: execute the C tool calls in parallel.
        std::vector<sim::Task<tools::ToolResult>> tool_tasks;
        for (int c = 0; c < width; ++c) {
            tool_tasks.push_back(actChild(
                ctx, trace, child_rngs[static_cast<std::size_t>(c)]));
        }
        std::vector<tools::ToolResult> observations =
            co_await sim::allOf(std::move(tool_tasks));

        // Materialize the children.
        std::vector<std::unique_ptr<Node>> children;
        for (int c = 0; c < width; ++c) {
            auto child = std::make_unique<Node>();
            child->parent = leaf;
            child->depth = leaf->depth + 1;
            child->llmTokens =
                actions[static_cast<std::size_t>(c)].tokens;
            const auto disc =
                (static_cast<std::uint64_t>(round) << 16) |
                static_cast<std::uint64_t>(c);
            child->obsTokens = ctx.toolObservationTokens(
                observations[static_cast<std::size_t>(c)]
                    .observationTokens,
                disc);
            // Each sampled child is an independent exploration branch
            // with wide capability noise — this is what lets tree
            // search solve tasks serial retries cannot.
            const double base = hopSuccessProb(
                ctx.config.modelQuality,
                ctx.config.resolveFewShot(prof), reflections,
                ctx.task.difficulty);
            auto &crng = child_rngs[static_cast<std::size_t>(c)];
            child->capability = contextCapability(
                crng, base, Calibration::exploreSigmaBranch);
            child->hops =
                leaf->hops + (attemptHop(crng, child->capability,
                                         ctx.task.solveThreshold)
                                  ? 1
                                  : 0);
            children.push_back(std::move(child));
        }

        // Phase 3: LLM value function scores each child in parallel.
        std::vector<sim::Task<serving::GenResult>> value_tasks;
        for (int c = 0; c < width; ++c) {
            value_tasks.push_back(valueChild(
                ctx, trace, episodic,
                children[static_cast<std::size_t>(c)].get(),
                child_rngs[static_cast<std::size_t>(c)]));
        }
        co_await sim::allOf(std::move(value_tasks));

        // Backpropagate and attach.
        const int prev_best_hops = best->hops;
        for (int c = 0; c < width; ++c) {
            auto &child = children[static_cast<std::size_t>(c)];
            const double noise =
                child_rngs[static_cast<std::size_t>(c)].normal(0.0,
                                                               0.12);
            const double value = std::clamp(
                static_cast<double>(child->hops) /
                        static_cast<double>(required) +
                    noise,
                0.0, 1.0);
            child->valueSum = value;
            child->visits = 1;
            for (Node *n = leaf; n != nullptr; n = n->parent) {
                n->valueSum += value;
                ++n->visits;
            }
            if (child->hops > best->hops)
                best = child.get();
            if (child->hops >= required && terminal == nullptr)
                terminal = child.get();
            leaf->children.push_back(std::move(child));
        }
        if (terminal != nullptr)
            break;

        // Simulation (rollout): greedily play the most promising new
        // child out toward a terminal state — LATS' MCTS simulation
        // phase. The rollout continues that branch's capability.
        Node *roll = nullptr;
        for (std::size_t i = leaf->children.size() -
                             static_cast<std::size_t>(width);
             i < leaf->children.size(); ++i) {
            Node *cand = leaf->children[i].get();
            if (roll == nullptr || cand->hops > roll->hops ||
                (cand->hops == roll->hops &&
                 cand->valueSum > roll->valueSum)) {
                roll = cand;
            }
        }
        int roll_budget = required - roll->hops + 1;
        int roll_step = 0;
        while (roll_budget-- > 0 && roll->hops < required) {
            serving::GenResult step = co_await callLlm(
                ctx, trace, rng, pathPrompt(ctx, episodic, roll),
                prof.stepOutputMean, "lats.rollout",
                ctx.tools->meanLatencySeconds());
            tools::Tool &tool = ctx.tools->pick(rng);
            tools::ToolResult obs =
                co_await callTool(ctx, trace, rng, tool);

            auto node = std::make_unique<Node>();
            node->parent = roll;
            node->depth = roll->depth + 1;
            node->capability = roll->capability;
            node->llmTokens = step.tokens;
            node->obsTokens = ctx.toolObservationTokens(
                obs.observationTokens,
                (static_cast<std::uint64_t>(round) << 16) | 0x8000u |
                    static_cast<std::uint64_t>(roll_step++));
            node->hops =
                roll->hops + (attemptHop(rng, roll->capability,
                                         ctx.task.solveThreshold)
                                  ? 1
                                  : 0);
            node->visits = 1;
            node->valueSum = static_cast<double>(node->hops) /
                             static_cast<double>(required);

            Node *attach = roll;
            roll = node.get();
            const double v = node->valueSum;
            attach->children.push_back(std::move(node));
            for (Node *n = attach; n != nullptr; n = n->parent) {
                n->valueSum += v;
                ++n->visits;
            }
        }
        if (roll->hops > best->hops)
            best = roll;
        if (roll->hops >= required) {
            terminal = roll;
            break;
        }

        // A fruitless round triggers a verbal reflection (LATS keeps
        // Reflexion's mechanism, Table I).
        if (best->hops == prev_best_hops &&
            reflections < ctx.config.maxReflections) {
            serving::GenResult reflection = co_await callLlm(
                ctx, trace, rng, pathPrompt(ctx, episodic, best),
                prof.reflectionOutputMean, "lats.reflect");
            episodic.addReflection(reflection.tokens);
            ++reflections;
        }

        // Round complete without a terminal: journal the tree. The
        // chain snapshot is the incumbent best path — the prefix the
        // resumed answer/rollout calls are most likely to reuse.
        if (ctx.checkpoints != nullptr &&
            ctx.checkpoints->policy().enabled &&
            ctx.checkpoints->shouldCheckpoint(ctx.episodeKey,
                                              rounds_used)) {
            auto state = std::make_shared<LatsEpisodeState>(rng, trace);
            state->root = cloneTree(*root, nullptr);
            int counter = 0;
            state->bestIndex =
                preorderIndexOf(root.get(), best, counter);
            state->reflections = reflections;
            state->roundsUsed = rounds_used;
            state->episodic = episodic;
            serving::EpisodeCheckpoint ckpt;
            ckpt.kindTag = static_cast<int>(AgentKind::Lats);
            ckpt.iteration = rounds_used;
            ckpt.takenTick = ctx.sim->now();
            ckpt.chainTokens =
                pathPrompt(ctx, episodic, best).tokens;
            ckpt.gpuSeconds = trace.cost().gpuSeconds();
            ckpt.state = std::move(state);
            ctx.checkpoints->put(ctx.episodeKey, std::move(ckpt),
                                 kvBytesPerToken(*ctx.engine));
        }
    }

    // Final answer from the terminal (or best) trajectory.
    Node *answer_node = terminal != nullptr ? terminal : best;
    co_await callLlm(ctx, trace, rng,
                     pathPrompt(ctx, episodic, answer_node),
                     prof.finalOutputMean, "lats.answer");
    const bool solved = sampleAnswer(rng, answer_node->hops, required);

    trace.setIterations(rounds_used);
    trace.setReflections(reflections);
    co_return trace.finish(solved, ctx.sim->now());
}

} // namespace agentsim::agents
