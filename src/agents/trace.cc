#include "agents/trace.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace agentsim::agents
{

std::string_view
segmentKindName(SegmentKind k)
{
    switch (k) {
      case SegmentKind::Instruction:
        return "Instruction";
      case SegmentKind::FewShot:
        return "Few-shot";
      case SegmentKind::User:
        return "User";
      case SegmentKind::LlmHistory:
        return "LLM history";
      case SegmentKind::ToolHistory:
        return "Tool history";
      case SegmentKind::Output:
        return "Output";
    }
    AGENTSIM_PANIC("unknown segment kind");
}

CallTokens &
CallTokens::operator+=(const CallTokens &other)
{
    instruction += other.instruction;
    fewShot += other.fewShot;
    user += other.user;
    llmHistory += other.llmHistory;
    toolHistory += other.toolHistory;
    output += other.output;
    return *this;
}

namespace
{

/** Merge spans of one kind into disjoint sorted intervals. */
std::vector<std::pair<sim::Tick, sim::Tick>>
mergedIntervals(const std::vector<Span> &spans, Span::Kind kind)
{
    std::vector<std::pair<sim::Tick, sim::Tick>> ivals;
    for (const auto &s : spans) {
        if (s.kind == kind && s.end > s.start)
            ivals.emplace_back(s.start, s.end);
    }
    std::sort(ivals.begin(), ivals.end());
    std::vector<std::pair<sim::Tick, sim::Tick>> merged;
    for (const auto &iv : ivals) {
        if (!merged.empty() && iv.first <= merged.back().second)
            merged.back().second = std::max(merged.back().second,
                                            iv.second);
        else
            merged.push_back(iv);
    }
    return merged;
}

/** Total length of the intersection of two disjoint interval lists. */
sim::Tick
intersectionLength(
    const std::vector<std::pair<sim::Tick, sim::Tick>> &a,
    const std::vector<std::pair<sim::Tick, sim::Tick>> &b)
{
    sim::Tick total = 0;
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.size() && j < b.size()) {
        const sim::Tick lo = std::max(a[i].first, b[j].first);
        const sim::Tick hi = std::min(a[i].second, b[j].second);
        if (hi > lo)
            total += hi - lo;
        if (a[i].second < b[j].second)
            ++i;
        else
            ++j;
    }
    return total;
}

sim::Tick
totalLength(const std::vector<std::pair<sim::Tick, sim::Tick>> &ivals)
{
    sim::Tick total = 0;
    for (const auto &iv : ivals)
        total += iv.second - iv.first;
    return total;
}

} // namespace

LatencyBreakdown
breakdownSpans(const std::vector<Span> &spans, sim::Tick start,
               sim::Tick end)
{
    LatencyBreakdown b;
    const auto llm = mergedIntervals(spans, Span::Kind::Llm);
    const auto tool = mergedIntervals(spans, Span::Kind::Tool);
    const sim::Tick llm_total = totalLength(llm);
    const sim::Tick tool_total = totalLength(tool);
    const sim::Tick overlap = intersectionLength(llm, tool);

    b.overlapSeconds = sim::toSeconds(overlap);
    b.llmOnlySeconds = sim::toSeconds(llm_total - overlap);
    b.toolOnlySeconds = sim::toSeconds(tool_total - overlap);
    b.e2eSeconds = sim::toSeconds(end - start);
    b.otherSeconds =
        std::max(0.0, b.e2eSeconds - b.llmOnlySeconds -
                          b.toolOnlySeconds - b.overlapSeconds);
    return b;
}

void
Trace::addLlmCall(const CallTokens &tokens,
                  const serving::GenResult &gen, sim::Tick start,
                  sim::Tick end, const std::string &label)
{
    ++llmCalls_;
    totals_ += tokens;
    perCall_.push_back(tokens);
    timeline_.push_back(Span{Span::Kind::Llm, start, end, label});
    flops_ += gen.flops;
    outputTokens_ += static_cast<std::int64_t>(gen.tokens.size());
    promptTokens_ += gen.promptTokens;
    cachedTokens_ += gen.cachedPromptTokens;
    queueSeconds_ += gen.queueSeconds;
    cost_ += gen.ledger;
    perCallCost_.push_back(gen.ledger);
    noteContextTokens(gen.promptTokens +
                      static_cast<std::int64_t>(gen.tokens.size()));
}

void
Trace::addToolCall(const std::string &name, sim::Tick start,
                   sim::Tick end)
{
    ++toolCalls_;
    timeline_.push_back(Span{Span::Kind::Tool, start, end, name});
}

void
Trace::noteContextTokens(std::int64_t tokens)
{
    maxContextTokens_ = std::max(maxContextTokens_, tokens);
}

AgentResult
Trace::finish(bool solved, sim::Tick end) const
{
    AgentResult r;
    r.solved = solved;
    r.llmCalls = llmCalls_;
    r.toolCalls = toolCalls_;
    r.iterationsUsed = iterations_;
    r.reflectionsUsed = reflections_;
    r.e2eSeconds = sim::toSeconds(end - start_);
    r.latency = breakdownSpans(timeline_, start_, end);
    r.tokens = totals_;
    r.perCall = perCall_;
    r.timeline = timeline_;
    r.flops = flops_;
    r.outputTokens = outputTokens_;
    r.promptTokensTotal = promptTokens_;
    r.cachedPromptTokensTotal = cachedTokens_;
    r.queueSeconds = queueSeconds_;
    r.maxContextTokens = maxContextTokens_;
    r.cost = cost_;
    r.perCallCost = perCallCost_;
    return r;
}

} // namespace agentsim::agents
