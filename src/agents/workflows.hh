/**
 * @file
 * The five evaluated agent workflows (paper §III, Fig 3):
 *
 *  - CotAgent          one internal-reasoning LLM call, no tools.
 *  - ReActAgent        interleaved thought/action/observation loop.
 *  - ReflexionAgent    ReAct trials + verbal self-reflection retries.
 *  - LatsAgent         Monte-Carlo tree search with parallel child
 *                      expansion, LLM value scoring and reflection.
 *  - LlmCompilerAgent  DAG planning with streamed, dependency-aware
 *                      asynchronous tool execution and a joiner.
 */

#ifndef AGENTSIM_AGENTS_WORKFLOWS_HH
#define AGENTSIM_AGENTS_WORKFLOWS_HH

#include <functional>

#include "agents/agent.hh"

namespace agentsim::agents
{

/** Chain-of-Thought static reasoning (Fig 3a). */
class CotAgent : public Agent
{
  public:
    AgentKind kind() const override { return AgentKind::CoT; }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/** ReAct: reason + act loop (Fig 3b). */
class ReActAgent : public Agent
{
  public:
    AgentKind kind() const override { return AgentKind::ReAct; }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/** Reflexion: ReAct trials with episodic reflection (Fig 3c). */
class ReflexionAgent : public Agent
{
  public:
    AgentKind kind() const override { return AgentKind::Reflexion; }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/** Language Agent Tree Search (Fig 3d). */
class LatsAgent : public Agent
{
  public:
    AgentKind kind() const override { return AgentKind::Lats; }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/** LLMCompiler: plan-and-execute with streaming (Fig 3e). */
class LlmCompilerAgent : public Agent
{
  public:
    AgentKind kind() const override { return AgentKind::LlmCompiler; }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/**
 * Self-Consistency (extension): N parallel CoT samples followed by a
 * majority vote — the static *parallel* test-time scaling of the
 * paper's Fig 1(b) taxonomy, for comparison against agentic scaling.
 */
class SelfConsistencyAgent : public Agent
{
  public:
    AgentKind
    kind() const override
    {
        return AgentKind::SelfConsistency;
    }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/**
 * Actor-critic collaboration (extension): a tool-using actor drafts a
 * solution; an LLM critic reviews the trajectory and either accepts
 * it or sends the actor back with feedback. Unlike Reflexion, the
 * judge is a fallible internal model, not the environment's reward.
 */
class ActorCriticAgent : public Agent
{
  public:
    AgentKind kind() const override { return AgentKind::ActorCritic; }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/**
 * Tree-of-Thoughts (extension): breadth-limited deliberate search
 * over internal reasoning steps with LLM state evaluation — the §I
 * taxonomy's structured static scaling, tool-free.
 */
class TreeOfThoughtsAgent : public Agent
{
  public:
    AgentKind
    kind() const override
    {
        return AgentKind::TreeOfThoughts;
    }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/**
 * Best-of-N (extension): N parallel samples, each scored by an LLM
 * verifier; the top-ranked sample is the answer.
 */
class BestOfNAgent : public Agent
{
  public:
    AgentKind kind() const override { return AgentKind::BestOfN; }
    sim::Task<AgentResult> run(AgentContext ctx) override;
};

/** Outcome of one tool-loop trial (shared by ReAct and Reflexion). */
struct TrialOutcome
{
    int hopsFound = 0;
    int iterations = 0;
    bool answeredCorrectly = false;
};

/**
 * Journaled snapshot of an in-progress tool-loop trial — everything
 * runToolLoopTrial needs to continue at the next iteration exactly as
 * if the episode had never been interrupted: outcome counters, the
 * trajectory, the drawn per-trial capability, the behavioural RNG
 * positioned at the iteration boundary, and the accumulated trace.
 * ReAct journals this directly; Reflexion wraps it with its
 * cross-trial loop position (DESIGN.md §3j).
 */
struct ReactEpisodeState
{
    TrialOutcome outcome;
    TrajectoryMemory memory;
    /** False for a snapshot taken before the trial's capability draw
     *  (a Reflexion trial boundary) — resume draws it from `rng`. */
    bool capabilityDrawn = false;
    double capability = 0.0;
    sim::Rng rng;
    Trace trace;

    ReactEpisodeState(const sim::Rng &rng_, const Trace &trace_)
        : rng(rng_), trace(trace_)
    {
    }
};

/**
 * Checkpoint hook runToolLoopTrial invokes after each completed
 * iteration (all of the iteration's RNG draws included), with the
 * live loop state. The workflow decides whether/what to journal.
 */
using TrialCheckpointFn = std::function<void(
    const TrialOutcome &outcome, const TrajectoryMemory &memory,
    double capability, const sim::Rng &rng)>;

/**
 * One ReAct-style trial: up to config.maxIterations iterations of
 * (LLM step, tool call, progress). Used directly by ReActAgent and as
 * the inner loop of ReflexionAgent.
 *
 * @param reflections reflections accumulated so far (boosts the hop
 *        success probability).
 * @param call_base discriminator for observation token streams.
 * @param resume restored mid-trial state to continue from (caller
 *        already copied its memory into @p memory and its rng/trace
 *        into @p rng / @p trace); null starts fresh.
 * @param checkpoint per-iteration journal hook (empty disables).
 */
sim::Task<TrialOutcome>
runToolLoopTrial(AgentContext &ctx, Trace &trace, sim::Rng &rng,
                 TrajectoryMemory &memory,
                 const EpisodicMemory &episodic, int reflections,
                 std::uint64_t call_base,
                 const ReactEpisodeState *resume = nullptr,
                 const TrialCheckpointFn &checkpoint = {});

/**
 * Conversation-prefix token chain the next trial iteration would
 * prefill with — what an episode checkpoint records for KV restore on
 * the surviving node.
 */
std::vector<kv::TokenId>
trialChainTokens(const AgentContext &ctx, const EpisodicMemory &episodic,
                 const TrajectoryMemory &memory);

/** KV bytes per token on @p engine (prices checkpoint snapshots). */
double kvBytesPerToken(const serving::LlmEngine &engine);

} // namespace agentsim::agents

#endif // AGENTSIM_AGENTS_WORKFLOWS_HH
