/**
 * @file
 * PlanGraph — the DAG of interdependent tool actions produced by
 * LLMCompiler's planner (paper Fig 2 "Plan" component, §III).
 *
 * Nodes are tool calls; an edge i -> j means call j consumes call i's
 * result and cannot start before it finishes. Benchmarks with highly
 * interdependent tool use (WebShop navigation) sample dense chains,
 * which serializes execution and erodes LLMCompiler's advantage —
 * exactly the paper's observation in §V-A.
 */

#ifndef AGENTSIM_AGENTS_PLAN_HH
#define AGENTSIM_AGENTS_PLAN_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace agentsim::agents
{

/** One planned tool action. */
struct PlanNode
{
    int id = 0;
    /** Indices of nodes this action depends on (all < id). */
    std::vector<int> deps;
};

/** A directed acyclic plan over tool calls. */
class PlanGraph
{
  public:
    /**
     * Sample a plan of @p n nodes. Each node depends on its
     * predecessor with probability @p dep_prob (chaining), and with
     * probability dep_prob/2 on one random earlier node (fan-in).
     */
    static PlanGraph sample(sim::Rng &rng, int n, double dep_prob);

    const std::vector<PlanNode> &nodes() const { return nodes_; }
    int size() const { return static_cast<int>(nodes_.size()); }

    /**
     * Topological wave partition: wave w holds nodes whose longest
     * dependency chain has length w. Nodes within a wave may run in
     * parallel.
     */
    std::vector<std::vector<int>> topologicalWaves() const;

    /** Length of the longest dependency chain (waves count). */
    int criticalPathLength() const;

    /** Panics unless all edges point backwards (acyclic by build). */
    void checkInvariants() const;

  private:
    std::vector<PlanNode> nodes_;
};

} // namespace agentsim::agents

#endif // AGENTSIM_AGENTS_PLAN_HH
