#include "agents/plan.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace agentsim::agents
{

PlanGraph
PlanGraph::sample(sim::Rng &rng, int n, double dep_prob)
{
    AGENTSIM_ASSERT(n > 0, "empty plan");
    PlanGraph g;
    g.nodes_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto &node = g.nodes_[static_cast<std::size_t>(i)];
        node.id = i;
        if (i == 0)
            continue;
        if (rng.bernoulli(dep_prob))
            node.deps.push_back(i - 1);
        if (i >= 2 && rng.bernoulli(dep_prob * 0.5)) {
            const int other =
                static_cast<int>(rng.uniformInt(0, i - 2));
            if (std::find(node.deps.begin(), node.deps.end(), other) ==
                node.deps.end()) {
                node.deps.push_back(other);
            }
        }
    }
    return g;
}

std::vector<std::vector<int>>
PlanGraph::topologicalWaves() const
{
    std::vector<int> depth(nodes_.size(), 0);
    int max_depth = 0;
    for (const auto &node : nodes_) {
        int d = 0;
        for (int dep : node.deps)
            d = std::max(d, depth[static_cast<std::size_t>(dep)] + 1);
        depth[static_cast<std::size_t>(node.id)] = d;
        max_depth = std::max(max_depth, d);
    }
    std::vector<std::vector<int>> waves(
        static_cast<std::size_t>(max_depth + 1));
    for (const auto &node : nodes_)
        waves[static_cast<std::size_t>(
                  depth[static_cast<std::size_t>(node.id)])]
            .push_back(node.id);
    return waves;
}

int
PlanGraph::criticalPathLength() const
{
    return static_cast<int>(topologicalWaves().size());
}

void
PlanGraph::checkInvariants() const
{
    for (const auto &node : nodes_) {
        for (int dep : node.deps) {
            AGENTSIM_ASSERT(dep >= 0 && dep < node.id,
                            "plan edge is not backward: %d -> %d", dep,
                            node.id);
        }
    }
}

} // namespace agentsim::agents
