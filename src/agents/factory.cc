/**
 * @file
 * Agent factory.
 */

#include "agents/workflows.hh"
#include "sim/logging.hh"

namespace agentsim::agents
{

std::unique_ptr<Agent>
makeAgent(AgentKind kind)
{
    switch (kind) {
      case AgentKind::CoT:
        return std::make_unique<CotAgent>();
      case AgentKind::ReAct:
        return std::make_unique<ReActAgent>();
      case AgentKind::Reflexion:
        return std::make_unique<ReflexionAgent>();
      case AgentKind::Lats:
        return std::make_unique<LatsAgent>();
      case AgentKind::LlmCompiler:
        return std::make_unique<LlmCompilerAgent>();
      case AgentKind::SelfConsistency:
        return std::make_unique<SelfConsistencyAgent>();
      case AgentKind::ActorCritic:
        return std::make_unique<ActorCriticAgent>();
      case AgentKind::TreeOfThoughts:
        return std::make_unique<TreeOfThoughtsAgent>();
      case AgentKind::BestOfN:
        return std::make_unique<BestOfNAgent>();
    }
    AGENTSIM_PANIC("unknown agent kind");
}

} // namespace agentsim::agents
