#include "agents/agent.hh"

#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "workload/token_stream.hh"

namespace agentsim::agents
{

std::string_view
agentName(AgentKind kind)
{
    switch (kind) {
      case AgentKind::CoT:
        return "CoT";
      case AgentKind::ReAct:
        return "ReAct";
      case AgentKind::Reflexion:
        return "Reflexion";
      case AgentKind::Lats:
        return "LATS";
      case AgentKind::LlmCompiler:
        return "LLMCompiler";
      case AgentKind::SelfConsistency:
        return "SelfConsistency";
      case AgentKind::ActorCritic:
        return "ActorCritic";
      case AgentKind::TreeOfThoughts:
        return "ToT";
      case AgentKind::BestOfN:
        return "BestOfN";
    }
    AGENTSIM_PANIC("unknown agent kind");
}

Capabilities
capabilities(AgentKind kind)
{
    // Paper Table I.
    switch (kind) {
      case AgentKind::CoT:
        return {true, false, false, false, false};
      case AgentKind::ReAct:
        return {true, true, false, false, false};
      case AgentKind::Reflexion:
        return {true, true, true, false, false};
      case AgentKind::Lats:
        return {true, true, true, true, false};
      case AgentKind::LlmCompiler:
        return {true, true, true, false, true};
      case AgentKind::SelfConsistency:
        // Static reasoning with multi-sample decoding: no tools.
        return {true, false, false, false, false};
      case AgentKind::ActorCritic:
        // Tool-using actor plus a reflective critic role.
        return {true, true, true, false, false};
      case AgentKind::TreeOfThoughts:
        // Tree search over internal thoughts, no tools.
        return {true, false, false, true, false};
      case AgentKind::BestOfN:
        return {true, false, false, false, false};
    }
    AGENTSIM_PANIC("unknown agent kind");
}

bool
agentSupports(AgentKind kind, workload::Benchmark benchmark)
{
    if (benchmark == workload::Benchmark::ShareGpt)
        return false; // non-agentic baseline
    const auto &prof = workload::profile(benchmark);
    if (kind == AgentKind::CoT ||
        kind == AgentKind::SelfConsistency ||
        kind == AgentKind::TreeOfThoughts ||
        kind == AgentKind::BestOfN) {
        // Language-only reasoning: needs a benchmark solvable without
        // environment interaction.
        return prof.supportsCot;
    }
    if (kind == AgentKind::LlmCompiler)
        return prof.supportsLlmCompiler;
    return true;
}

sim::Rng
AgentContext::makeRng(std::string_view purpose) const
{
    const std::uint64_t stream = sim::hashCombine(
        sim::hashCombine(sim::fnv1a(agentName(kind)),
                         sim::fnv1a(workload::benchmarkName(
                             task.benchmark))),
        sim::fnv1a(purpose));
    return sim::Rng(seed, "agent", sim::hashCombine(stream, task.taskId));
}

std::vector<kv::TokenId>
AgentContext::instructionTokens() const
{
    // Shared across every task of (agent, benchmark): the serving-level
    // cross-request prefix hits of Fig 15 come from here.
    const auto stream = workload::streamId(
        seed, sim::strfmt("instr.%s.%s",
                          std::string(agentName(kind)).c_str(),
                          std::string(workload::benchmarkName(
                                          task.benchmark))
                              .c_str()));
    return workload::makeTokens(stream, profile().instructionTokens);
}

std::vector<kv::TokenId>
AgentContext::fewShotTokens() const
{
    const auto stream = workload::streamId(
        seed, sim::strfmt("fewshot.%s.%s",
                          std::string(agentName(kind)).c_str(),
                          std::string(workload::benchmarkName(
                                          task.benchmark))
                              .c_str()));
    const int examples = config.resolveFewShot(profile());
    return workload::makeTokens(stream,
                                examples *
                                    profile().fewShotTokensPerExample);
}

std::vector<kv::TokenId>
AgentContext::userTokens() const
{
    const auto stream = workload::substream(
        workload::streamId(
            seed, sim::strfmt("user.%s",
                              std::string(workload::benchmarkName(
                                              task.benchmark))
                                  .c_str())),
        task.taskId);
    return workload::makeTokens(stream, task.userTokens);
}

std::vector<kv::TokenId>
AgentContext::toolObservationTokens(std::int64_t count,
                                    std::uint64_t index) const
{
    const auto stream = workload::substream(
        workload::substream(workload::streamId(seed, "tool.obs"),
                            task.taskId),
        sim::hashCombine(sim::fnv1a(agentName(kind)), index));
    return workload::makeTokens(stream, count);
}

std::vector<kv::TokenId>
AgentContext::reflectionTokens(std::int64_t count,
                               std::uint64_t index) const
{
    const auto stream = workload::substream(
        workload::substream(workload::streamId(seed, "reflection"),
                            task.taskId),
        sim::hashCombine(sim::fnv1a(agentName(kind)), index));
    return workload::makeTokens(stream, count);
}

sim::Task<serving::GenResult>
callLlm(AgentContext &ctx, Trace &trace, sim::Rng &rng, Prompt prompt,
        double output_mean, std::string label,
        double expected_park_seconds)
{
    serving::GenRequest req;
    req.prompt = std::move(prompt.tokens);
    req.maxNewTokens =
        ctx.profile().sampleOutputTokens(rng, output_mean);
    req.deadlineSeconds = ctx.config.llmDeadlineSeconds;
    req.expectedParkSeconds = expected_park_seconds;
    // All calls of one rollout share a session id so program-aware
    // schedulers (Autellix-style LAS) can track attained service.
    req.sessionId = sim::hashCombine(
        sim::hashCombine(ctx.seed, sim::fnv1a(agentName(ctx.kind))),
        ctx.task.taskId);

    const sim::Tick start = ctx.sim->now();
    telemetry::SpanRef call_span;
    if (ctx.spans != nullptr && ctx.spanParent.valid()) {
        call_span = ctx.spans->child(
            ctx.spanParent, telemetry::SpanKind::LlmCall, label, start);
        req.parentSpan = call_span;
    }
    serving::GenResult gen =
        co_await ctx.engine->generate(std::move(req));
    const sim::Tick end = ctx.sim->now();
    if (call_span.valid())
        ctx.spans->end(call_span, end);

    if (gen.retryable()) {
        NodeFailureError err(
            sim::strfmt("%s: %s", label.c_str(),
                        gen.shed ? "request shed" : "node failure"),
            gen.shed);
        // Price what a from-scratch retry would recompute: everything
        // the episode has attributed so far (the failed call itself
        // charges nothing — it never ran).
        err.investedGpuSeconds = trace.cost().gpuSeconds();
        throw err;
    }
    if (gen.timedOut) {
        throw DeadlineExceededError(sim::strfmt(
            "%s: deadline exceeded after %.3f s", label.c_str(),
            gen.totalSeconds));
    }

    CallTokens tokens = prompt.breakdown;
    tokens.output = static_cast<std::int64_t>(gen.tokens.size());
    trace.addLlmCall(tokens, gen, start, end, label);
    if (ctx.traceSink != nullptr) {
        ctx.traceSink->complete(
            telemetry::TracePid::kAgents, ctx.traceTid, label, "llm",
            start, end,
            sim::strfmt("\"prompt_tokens\":%lld,\"output_tokens\":%lld,"
                        "\"queue_s\":%.6f",
                        static_cast<long long>(gen.promptTokens),
                        static_cast<long long>(gen.tokens.size()),
                        gen.queueSeconds));
    }
    co_return gen;
}

sim::Task<tools::ToolResult>
callTool(AgentContext &ctx, Trace &trace, sim::Rng &rng,
         tools::Tool &tool)
{
    const sim::Tick start = ctx.sim->now();
    telemetry::SpanRef call_span;
    if (ctx.spans != nullptr && ctx.spanParent.valid()) {
        call_span =
            ctx.spans->child(ctx.spanParent, telemetry::SpanKind::ToolCall,
                             std::string(tool.name()), start);
    }
    tools::ToolResult result = co_await tool.invoke(rng);
    if (call_span.valid())
        ctx.spans->end(call_span, ctx.sim->now());
    trace.addToolCall(tool.name(), start, ctx.sim->now());
    if (ctx.traceSink != nullptr) {
        ctx.traceSink->complete(telemetry::TracePid::kAgents,
                                ctx.traceTid, std::string(tool.name()),
                                "tool", start, ctx.sim->now());
        if (result.failed) {
            ctx.traceSink->instant(telemetry::TracePid::kAgents,
                                   ctx.traceTid, "tool_fault", "tool",
                                   ctx.sim->now());
        }
    }
    co_return result;
}

} // namespace agentsim::agents
