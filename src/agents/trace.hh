/**
 * @file
 * Per-request agent execution records: the timeline of LLM/tool spans
 * (Fig 3, 5), the input/output token taxonomy (Fig 8, 9), and the
 * aggregate AgentResult consumed by every experiment.
 */

#ifndef AGENTSIM_AGENTS_TRACE_HH
#define AGENTSIM_AGENTS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serving/request.hh"
#include "sim/types.hh"

namespace agentsim::agents
{

/** Prompt-segment taxonomy of the paper's Fig 8. */
enum class SegmentKind
{
    Instruction,
    FewShot,
    User,
    LlmHistory,
    ToolHistory,
    Output,
};

std::string_view segmentKindName(SegmentKind k);

/** Token counts of one LLM call, by segment kind. */
struct CallTokens
{
    std::int64_t instruction = 0;
    std::int64_t fewShot = 0;
    std::int64_t user = 0;
    std::int64_t llmHistory = 0;
    std::int64_t toolHistory = 0;
    std::int64_t output = 0;

    std::int64_t
    inputTotal() const
    {
        return instruction + fewShot + user + llmHistory + toolHistory;
    }

    CallTokens &operator+=(const CallTokens &other);
};

/** One timeline span. */
struct Span
{
    enum class Kind
    {
        Llm,
        Tool,
    };

    Kind kind{};
    sim::Tick start = 0;
    sim::Tick end = 0;
    std::string label;
};

/** Latency decomposition of a set of spans over a request window. */
struct LatencyBreakdown
{
    double llmOnlySeconds = 0.0;
    double toolOnlySeconds = 0.0;
    /** Both an LLM call and a tool call in flight (LLMCompiler). */
    double overlapSeconds = 0.0;
    /** Agent-logic gaps with neither in flight. */
    double otherSeconds = 0.0;
    double e2eSeconds = 0.0;
};

/** Compute the decomposition of @p spans over [start, end]. */
LatencyBreakdown breakdownSpans(const std::vector<Span> &spans,
                                sim::Tick start, sim::Tick end);

/** Everything measured about one agent request. */
struct AgentResult
{
    bool solved = false;
    int llmCalls = 0;
    int toolCalls = 0;
    int iterationsUsed = 0;
    int reflectionsUsed = 0;

    double e2eSeconds = 0.0;
    LatencyBreakdown latency;

    /** Totals across all LLM calls (inputs counted per call). */
    CallTokens tokens;
    /** Per-LLM-call breakdowns, in call order (Fig 9). */
    std::vector<CallTokens> perCall;
    /** Full timeline (Fig 3). */
    std::vector<Span> timeline;

    double flops = 0.0;
    std::int64_t outputTokens = 0;
    std::int64_t promptTokensTotal = 0;
    std::int64_t cachedPromptTokensTotal = 0;
    /** Sum of engine queueing delays across LLM calls. */
    double queueSeconds = 0.0;
    /** Peak KV footprint proxy: max concurrent sequence tokens. */
    std::int64_t maxContextTokens = 0;

    /** Attributed resource cost summed over all LLM calls. */
    serving::CostLedger cost;
    /** Per-LLM-call ledgers, in call order (per-step attribution). */
    std::vector<serving::CostLedger> perCallCost;
};

/**
 * Mutable trace accumulator an agent writes into while running.
 */
class Trace
{
  public:
    explicit Trace(sim::Tick start) : start_(start) {}

    /** Record a completed LLM call. */
    void addLlmCall(const CallTokens &tokens,
                    const serving::GenResult &gen, sim::Tick start,
                    sim::Tick end, const std::string &label);

    /** Record a completed tool call. */
    void addToolCall(const std::string &name, sim::Tick start,
                     sim::Tick end);

    void setIterations(int n) { iterations_ = n; }
    void setReflections(int n) { reflections_ = n; }
    void noteContextTokens(std::int64_t tokens);

    int llmCalls() const { return llmCalls_; }
    int toolCalls() const { return toolCalls_; }

    /** Attributed cost so far (checkpoint/recovery pricing reads the
     *  invested GPU-seconds mid-episode). */
    const serving::CostLedger &cost() const { return cost_; }

    /** Finalize into an AgentResult at time @p end. */
    AgentResult finish(bool solved, sim::Tick end) const;

  private:
    sim::Tick start_;
    int llmCalls_ = 0;
    int toolCalls_ = 0;
    int iterations_ = 0;
    int reflections_ = 0;
    CallTokens totals_;
    std::vector<CallTokens> perCall_;
    std::vector<Span> timeline_;
    double flops_ = 0.0;
    std::int64_t outputTokens_ = 0;
    std::int64_t promptTokens_ = 0;
    std::int64_t cachedTokens_ = 0;
    double queueSeconds_ = 0.0;
    std::int64_t maxContextTokens_ = 0;
    serving::CostLedger cost_;
    std::vector<serving::CostLedger> perCallCost_;
};

} // namespace agentsim::agents

#endif // AGENTSIM_AGENTS_TRACE_HH
