/**
 * @file
 * Prompt assembly and the agent's memory components (paper Fig 2):
 * short-term trajectory memory (LLM outputs + tool observations) and
 * long-term episodic memory (Reflexion's reflections).
 *
 * Prompts carry deterministic token ids, so the serving engine's
 * prefix cache sees the same sharing structure real agents produce:
 * fixed instruction/few-shot blocks shared across requests, and
 * per-request histories shared across a request's successive calls.
 */

#ifndef AGENTSIM_AGENTS_PROMPT_HH
#define AGENTSIM_AGENTS_PROMPT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "agents/trace.hh"
#include "kv/block_manager.hh"

namespace agentsim::agents
{

/** A fully assembled prompt: token ids plus the per-kind breakdown. */
struct Prompt
{
    std::vector<kv::TokenId> tokens;
    CallTokens breakdown;
};

/**
 * Ordered accumulation of prompt segments.
 */
class PromptBuilder
{
  public:
    /** Append a segment of @p kind. */
    PromptBuilder &add(SegmentKind kind,
                       std::span<const kv::TokenId> tokens);

    /** Current total token count. */
    std::int64_t size() const
    {
        return static_cast<std::int64_t>(tokens_.size());
    }

    /** Finalize (the builder may be reused afterwards). */
    Prompt build() const;

  private:
    std::vector<kv::TokenId> tokens_;
    CallTokens breakdown_;
};

/**
 * Short-term memory: the interleaved trajectory of LLM outputs and
 * tool observations accumulated over a request's iterations.
 */
class TrajectoryMemory
{
  public:
    struct Segment
    {
        SegmentKind kind{};
        std::vector<kv::TokenId> tokens;
    };

    /** Append an LLM output or tool observation. */
    void append(SegmentKind kind, std::vector<kv::TokenId> tokens);

    /** Reset for a fresh trial (Reflexion). */
    void clear() { segments_.clear(); }

    const std::vector<Segment> &segments() const { return segments_; }

    /** Token count of a given kind. */
    std::int64_t tokenCount(SegmentKind kind) const;

    /** Total token count. */
    std::int64_t totalTokens() const;

    /** Append every segment to a prompt builder, in order. */
    void appendTo(PromptBuilder &builder) const;

  private:
    std::vector<Segment> segments_;
};

/**
 * Long-term episodic memory: verbal reflections distilled from failed
 * trials (Reflexion, LATS). Rendered into prompts as LLM history.
 */
class EpisodicMemory
{
  public:
    void addReflection(std::vector<kv::TokenId> tokens);

    std::size_t reflectionCount() const { return reflections_.size(); }
    std::int64_t totalTokens() const;

    void appendTo(PromptBuilder &builder) const;

  private:
    std::vector<std::vector<kv::TokenId>> reflections_;
};

} // namespace agentsim::agents

#endif // AGENTSIM_AGENTS_PROMPT_HH
