/**
 * @file
 * The remaining static test-time-scaling baselines of the paper's §I
 * taxonomy (Fig 1b):
 *
 *  - Tree-of-Thoughts: breadth-limited deliberate search over
 *    internal reasoning steps with an LLM evaluator pruning the
 *    frontier — structured exploration without tools.
 *  - Best-of-N: N independent samples, each scored by an LLM
 *    verifier; the top-ranked sample is the answer.
 *
 * Both are knowledge-capped (no external evidence), so they improve
 * reasoning-heavy tasks (MATH) far more than knowledge-gated ones
 * (HotpotQA) — the contrast motivating the paper's focus on dynamic,
 * tool-augmented reasoning.
 */

#include <algorithm>

#include "agents/accuracy.hh"
#include "agents/workflows.hh"

namespace agentsim::agents
{

namespace
{

/** A thought node: one internal reasoning step. */
struct Thought
{
    /** Progress toward the solution, in hops. */
    int hops = 0;
    /** Branch capability (latent-threshold model). */
    double capability = 0.0;
    /** LLM output tokens along the path (for prompt growth). */
    std::vector<kv::TokenId> pathTokens;
};

/** Shared tool-less base capability for the current task. */
double
toollessBase(const AgentContext &ctx)
{
    return hopSuccessProb(ctx.config.modelQuality,
                          ctx.config.resolveFewShot(ctx.profile()), 0,
                          ctx.task.difficulty,
                          ctx.profile().noToolFactor);
}

/** One candidate thought expansion: an LLM call on the path. */
sim::Task<serving::GenResult>
proposeThought(AgentContext &ctx, Trace &trace, const Prompt &base,
               const Thought &parent, sim::Rng rng)
{
    PromptBuilder builder;
    builder.add(SegmentKind::Instruction, ctx.instructionTokens());
    builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
    builder.add(SegmentKind::User, ctx.userTokens());
    builder.add(SegmentKind::LlmHistory, parent.pathTokens);
    (void)base;
    co_return co_await callLlm(ctx, trace, rng, builder.build(),
                               ctx.profile().stepOutputMean,
                               "tot.think");
}

/** One verifier call over a sampled rationale / thought path. */
sim::Task<serving::GenResult>
scoreState(AgentContext &ctx, Trace &trace,
           const std::vector<kv::TokenId> &path, sim::Rng rng,
           const char *label)
{
    PromptBuilder builder;
    builder.add(SegmentKind::Instruction, ctx.instructionTokens());
    builder.add(SegmentKind::User, ctx.userTokens());
    builder.add(SegmentKind::LlmHistory, path);
    co_return co_await callLlm(ctx, trace, rng, builder.build(),
                               ctx.profile().valueOutputMean, label);
}

} // namespace

sim::Task<AgentResult>
TreeOfThoughtsAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    const int breadth = std::max(1, ctx.config.latsChildren);
    const int depth = std::max(1, std::min(ctx.config.maxIterations,
                                           ctx.task.requiredHops + 2));
    const int keep = 2; // frontier width after pruning
    const double base = toollessBase(ctx);

    PromptBuilder fixed;
    fixed.add(SegmentKind::Instruction, ctx.instructionTokens());
    fixed.add(SegmentKind::FewShot, ctx.fewShotTokens());
    fixed.add(SegmentKind::User, ctx.userTokens());
    const Prompt fixed_prompt = fixed.build();

    std::vector<Thought> frontier{Thought{}};
    Thought best;
    int rounds = 0;

    for (int level = 0; level < depth; ++level) {
        ++rounds;
        // Propose `breadth` thoughts per frontier state, in parallel.
        std::vector<sim::Task<serving::GenResult>> proposals;
        std::vector<Thought> parents;
        std::vector<sim::Rng> rngs;
        for (std::size_t f = 0; f < frontier.size(); ++f) {
            for (int b = 0; b < breadth; ++b) {
                const auto disc =
                    (static_cast<std::uint64_t>(level) << 20) |
                    (static_cast<std::uint64_t>(f) << 10) |
                    static_cast<std::uint64_t>(b);
                rngs.emplace_back(ctx.seed, "tot.branch",
                                  sim::hashCombine(ctx.task.taskId,
                                                   disc));
                proposals.push_back(proposeThought(
                    ctx, trace, fixed_prompt, frontier[f],
                    rngs.back()));
                parents.push_back(frontier[f]);
            }
        }
        std::vector<serving::GenResult> outputs =
            co_await sim::allOf(std::move(proposals));

        // Evaluate each candidate with the LLM (parallel).
        std::vector<Thought> candidates;
        std::vector<sim::Task<serving::GenResult>> scores;
        for (std::size_t i = 0; i < outputs.size(); ++i) {
            Thought child = parents[i];
            child.pathTokens.insert(child.pathTokens.end(),
                                    outputs[i].tokens.begin(),
                                    outputs[i].tokens.end());
            // Structured, evaluator-guided exploration searches the
            // reasoning space more deliberately than plain sampling
            // (trial-level sigma), but cannot conjure knowledge.
            child.capability = contextCapability(
                rngs[i], base, Calibration::exploreSigmaTrial);
            if (attemptHop(rngs[i], child.capability,
                           ctx.task.solveThreshold)) {
                ++child.hops;
            }
            scores.push_back(scoreState(ctx, trace, child.pathTokens,
                                        rngs[i], "tot.evaluate"));
            candidates.push_back(std::move(child));
        }
        co_await sim::allOf(std::move(scores));

        // Prune: keep the most advanced states.
        std::sort(candidates.begin(), candidates.end(),
                  [](const Thought &a, const Thought &b) {
                      return a.hops > b.hops;
                  });
        if (static_cast<int>(candidates.size()) > keep)
            candidates.resize(static_cast<std::size_t>(keep));
        frontier = candidates;
        if (frontier.front().hops > best.hops)
            best = frontier.front();
        if (best.hops >= ctx.task.requiredHops)
            break;
    }

    // Final answer from the best path.
    sim::Rng rng = ctx.makeRng("answer");
    co_await scoreState(ctx, trace, best.pathTokens, rng,
                        "tot.answer");
    const bool solved =
        sampleAnswer(rng, best.hops, ctx.task.requiredHops);

    trace.setIterations(rounds);
    co_return trace.finish(solved, ctx.sim->now());
}

sim::Task<AgentResult>
BestOfNAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    const auto &prof = ctx.profile();
    const int samples = std::max(1, ctx.config.scSamples);
    const double base = toollessBase(ctx);

    // Phase 1: N parallel full rationales.
    PromptBuilder builder;
    builder.add(SegmentKind::Instruction, ctx.instructionTokens());
    builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
    builder.add(SegmentKind::User, ctx.userTokens());
    const Prompt prompt = builder.build();

    struct Sampled
    {
        bool correct = false;
        std::vector<kv::TokenId> tokens;
    };
    std::vector<sim::Task<serving::GenResult>> gens;
    std::vector<sim::Rng> rngs;
    for (int s = 0; s < samples; ++s) {
        rngs.emplace_back(ctx.seed, "bon.sample",
                          sim::hashCombine(ctx.task.taskId,
                                           static_cast<std::uint64_t>(
                                               s)));
        Prompt copy = prompt;
        gens.push_back(callLlm(ctx, trace, rngs.back(),
                               std::move(copy), prof.cotOutputMean,
                               "bon.sample"));
    }
    std::vector<serving::GenResult> outputs =
        co_await sim::allOf(std::move(gens));

    std::vector<Sampled> sampled;
    for (int s = 0; s < samples; ++s) {
        Sampled entry;
        entry.tokens = outputs[static_cast<std::size_t>(s)].tokens;
        const double capability = contextCapability(
            rngs[static_cast<std::size_t>(s)], base,
            Calibration::exploreSigmaSample);
        entry.correct = oneShotSolve(
            rngs[static_cast<std::size_t>(s)], capability,
            ctx.task.solveThreshold);
        sampled.push_back(std::move(entry));
    }

    // Phase 2: one verifier call per sample, in parallel.
    std::vector<sim::Task<serving::GenResult>> verifications;
    for (int s = 0; s < samples; ++s) {
        verifications.push_back(scoreState(
            ctx, trace, sampled[static_cast<std::size_t>(s)].tokens,
            rngs[static_cast<std::size_t>(s)], "bon.verify"));
    }
    co_await sim::allOf(std::move(verifications));

    // Ranking: a fallible verifier surfaces a correct sample, if any,
    // with criticApproveCorrect probability; otherwise the top pick
    // is wrong (tiny luck term covers lenient graders).
    sim::Rng rng = ctx.makeRng("rank");
    bool any_correct = false;
    for (const auto &entry : sampled)
        any_correct |= entry.correct;
    const bool solved =
        any_correct
            ? rng.bernoulli(Calibration::criticApproveCorrect)
            : rng.bernoulli(Calibration::pLuck);

    trace.setIterations(1);
    co_return trace.finish(solved, ctx.sim->now());
}

} // namespace agentsim::agents
