#include "agents/prompt.hh"

#include "sim/logging.hh"

namespace agentsim::agents
{

PromptBuilder &
PromptBuilder::add(SegmentKind kind, std::span<const kv::TokenId> tokens)
{
    tokens_.insert(tokens_.end(), tokens.begin(), tokens.end());
    const auto n = static_cast<std::int64_t>(tokens.size());
    switch (kind) {
      case SegmentKind::Instruction:
        breakdown_.instruction += n;
        break;
      case SegmentKind::FewShot:
        breakdown_.fewShot += n;
        break;
      case SegmentKind::User:
        breakdown_.user += n;
        break;
      case SegmentKind::LlmHistory:
        breakdown_.llmHistory += n;
        break;
      case SegmentKind::ToolHistory:
        breakdown_.toolHistory += n;
        break;
      case SegmentKind::Output:
        AGENTSIM_PANIC("Output is not an input segment");
    }
    return *this;
}

Prompt
PromptBuilder::build() const
{
    return Prompt{tokens_, breakdown_};
}

void
TrajectoryMemory::append(SegmentKind kind,
                         std::vector<kv::TokenId> tokens)
{
    AGENTSIM_ASSERT(kind == SegmentKind::LlmHistory ||
                        kind == SegmentKind::ToolHistory,
                    "trajectory holds only history segments");
    segments_.push_back(Segment{kind, std::move(tokens)});
}

std::int64_t
TrajectoryMemory::tokenCount(SegmentKind kind) const
{
    std::int64_t total = 0;
    for (const auto &s : segments_) {
        if (s.kind == kind)
            total += static_cast<std::int64_t>(s.tokens.size());
    }
    return total;
}

std::int64_t
TrajectoryMemory::totalTokens() const
{
    std::int64_t total = 0;
    for (const auto &s : segments_)
        total += static_cast<std::int64_t>(s.tokens.size());
    return total;
}

void
TrajectoryMemory::appendTo(PromptBuilder &builder) const
{
    for (const auto &s : segments_)
        builder.add(s.kind, s.tokens);
}

void
EpisodicMemory::addReflection(std::vector<kv::TokenId> tokens)
{
    reflections_.push_back(std::move(tokens));
}

std::int64_t
EpisodicMemory::totalTokens() const
{
    std::int64_t total = 0;
    for (const auto &r : reflections_)
        total += static_cast<std::int64_t>(r.size());
    return total;
}

void
EpisodicMemory::appendTo(PromptBuilder &builder) const
{
    for (const auto &r : reflections_)
        builder.add(SegmentKind::LlmHistory, r);
}

} // namespace agentsim::agents
