/**
 * @file
 * Self-Consistency: sample N independent chain-of-thought rationales
 * in parallel (high-temperature decoding) and majority-vote the final
 * answers. Wrong rationales scatter across distinct answers while
 * correct ones agree, so the vote succeeds once at least two samples
 * are right — the classic static parallel test-time scaling this
 * library adds as a baseline against the paper's agentic scaling.
 *
 * The N samples share their entire prompt, so with prefix caching the
 * engine computes the prefill once — the same sharing pattern LATS's
 * parallel expansions exhibit (Fig 12).
 */

#include <algorithm>

#include "agents/accuracy.hh"
#include "agents/workflows.hh"

namespace agentsim::agents
{

namespace
{

/** One sampled rationale: the LLM call plus its latent correctness. */
sim::Task<bool>
sampleRationale(AgentContext &ctx, Trace &trace, Prompt prompt,
                sim::Rng rng)
{
    co_await callLlm(ctx, trace, rng, std::move(prompt),
                     ctx.profile().cotOutputMean, "sc.sample");
    // Each high-temperature sample is its own exploration context —
    // but decoding diversity only varies the reasoning path; it
    // cannot supply knowledge the model lacks (narrow sigma).
    const double base = hopSuccessProb(
        ctx.config.modelQuality,
        ctx.config.resolveFewShot(ctx.profile()), 0,
        ctx.task.difficulty, ctx.profile().noToolFactor);
    const double capability = contextCapability(
        rng, base, Calibration::exploreSigmaSample);
    co_return oneShotSolve(rng, capability, ctx.task.solveThreshold);
}

} // namespace

sim::Task<AgentResult>
SelfConsistencyAgent::run(AgentContext ctx)
{
    Trace trace(ctx.sim->now());
    const int samples = std::max(1, ctx.config.scSamples);

    PromptBuilder builder;
    builder.add(SegmentKind::Instruction, ctx.instructionTokens());
    builder.add(SegmentKind::FewShot, ctx.fewShotTokens());
    builder.add(SegmentKind::User, ctx.userTokens());
    const Prompt prompt = builder.build();

    // One iteration span scopes the sample fan-out: the N sc.sample
    // LlmCall children overlap, and critical-path blame lands on the
    // last-finishing sibling.
    std::vector<bool> verdicts;
    {
        SpanScope fanout(ctx, telemetry::SpanKind::Iteration,
                         "sc.fanout");
        std::vector<sim::Task<bool>> tasks;
        tasks.reserve(static_cast<std::size_t>(samples));
        for (int s = 0; s < samples; ++s) {
            sim::Rng sample_rng(ctx.seed, "sc.sample",
                                sim::hashCombine(
                                    ctx.task.taskId,
                                    static_cast<std::uint64_t>(s)));
            tasks.push_back(
                sampleRationale(ctx, trace, prompt, sample_rng));
        }
        verdicts = co_await sim::allOf(std::move(tasks));
    }

    // Plurality vote: correct answers agree; incorrect ones scatter,
    // so two agreeing correct samples beat any wrong singleton. A
    // lone sample degenerates to plain CoT.
    const auto correct = static_cast<int>(
        std::count(verdicts.begin(), verdicts.end(), true));
    const bool solved =
        samples == 1 ? correct == 1 : correct >= 2;

    trace.setIterations(1);
    co_return trace.finish(solved, ctx.sim->now());
}

} // namespace agentsim::agents
