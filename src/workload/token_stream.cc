#include "workload/token_stream.hh"

#include "sim/logging.hh"

namespace agentsim::workload
{

std::vector<kv::TokenId>
makeTokens(std::uint64_t stream, std::int64_t count, std::int64_t offset)
{
    AGENTSIM_ASSERT(count >= 0, "negative token count");
    std::vector<kv::TokenId> out;
    out.reserve(static_cast<std::size_t>(count));
    for (std::int64_t i = 0; i < count; ++i) {
        out.push_back(
            tokenAt(stream, static_cast<std::uint64_t>(offset + i)));
    }
    return out;
}

} // namespace agentsim::workload
