/**
 * @file
 * Deterministic synthetic token streams.
 *
 * Prompts are vectors of 64-bit token ids derived from named streams.
 * Two prompt segments with the same (seed, labels...) produce identical
 * token ids, so logically shared prefixes (the instruction block of an
 * agent, a task's accumulated history) are *literally* shared and the
 * KV prefix cache behaves as it would on real text.
 */

#ifndef AGENTSIM_WORKLOAD_TOKEN_STREAM_HH
#define AGENTSIM_WORKLOAD_TOKEN_STREAM_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "kv/block_manager.hh"
#include "sim/rng.hh"

namespace agentsim::workload
{

/** Build a stream id from a seed and a label. */
inline std::uint64_t
streamId(std::uint64_t seed, std::string_view label)
{
    return sim::hashCombine(seed, sim::fnv1a(label));
}

/** Extend a stream id with a numeric discriminator. */
inline std::uint64_t
substream(std::uint64_t stream, std::uint64_t index)
{
    return sim::hashCombine(stream, index);
}

/** The @p index-th token of a stream. */
inline kv::TokenId
tokenAt(std::uint64_t stream, std::uint64_t index)
{
    return sim::hashMix(stream ^
                        (index * 0x9e3779b97f4a7c15ULL + 0x2545f491ULL));
}

/** Materialize @p count tokens of a stream starting at @p offset. */
std::vector<kv::TokenId> makeTokens(std::uint64_t stream,
                                    std::int64_t count,
                                    std::int64_t offset = 0);

} // namespace agentsim::workload

#endif // AGENTSIM_WORKLOAD_TOKEN_STREAM_HH
