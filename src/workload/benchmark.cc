#include "workload/benchmark.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace agentsim::workload
{

std::string_view
benchmarkName(Benchmark b)
{
    switch (b) {
      case Benchmark::HotpotQA:
        return "HotpotQA";
      case Benchmark::WebShop:
        return "WebShop";
      case Benchmark::Math:
        return "MATH";
      case Benchmark::HumanEval:
        return "HumanEval";
      case Benchmark::ShareGpt:
        return "ShareGPT";
    }
    AGENTSIM_PANIC("unknown benchmark");
}

std::int64_t
BenchmarkProfile::sampleUserTokens(sim::Rng &rng) const
{
    const double x = rng.normal(userTokenMean, userTokenSd);
    return std::clamp(static_cast<std::int64_t>(std::llround(x)),
                      userTokenMin, userTokenMax);
}

std::int64_t
BenchmarkProfile::sampleOutputTokens(sim::Rng &rng, double mean) const
{
    const double x = rng.normal(mean, mean * outputSdFraction);
    return std::max<std::int64_t>(
        8, static_cast<std::int64_t>(std::llround(x)));
}

namespace
{

BenchmarkProfile
makeHotpotQa()
{
    BenchmarkProfile p;
    p.id = Benchmark::HotpotQA;
    p.name = "HotpotQA";
    p.taskDescription = "Multi-hop question answering";
    p.toolDescription = "Wikipedia APIs (search, lookup keywords)";
    p.instructionTokens = 220;
    p.fewShotTokensPerExample = 130;
    p.defaultFewShot = 6;
    p.userTokenMean = 32.0;
    p.userTokenSd = 10.0;
    p.cotOutputMean = 380.0;
    p.stepOutputMean = 80.0;
    p.minHops = 2;
    p.maxHops = 4;
    p.difficultyLo = 0.10;
    p.difficultyHi = 0.75;
    // Multi-hop facts are hard to recall parametrically.
    p.noToolFactor = 0.45;
    // Independent lookups parallelize well under DAG planning.
    p.dagFactor = 1.0;
    p.dagOverFetch = 0.25;
    p.dagDepProb = 0.15;
    return p;
}

BenchmarkProfile
makeWebShop()
{
    BenchmarkProfile p;
    p.id = Benchmark::WebShop;
    p.name = "WebShop";
    p.taskDescription = "Online shopping";
    p.toolDescription = "Interactive web navigation (search, click)";
    p.instructionTokens = 260;
    p.fewShotTokensPerExample = 160;
    p.defaultFewShot = 3;
    p.userTokenMean = 45.0;
    p.userTokenSd = 14.0;
    p.stepOutputMean = 60.0;
    p.minHops = 3;
    p.maxHops = 6;
    p.difficultyLo = 0.15;
    p.difficultyHi = 0.70;
    // Each navigation step depends on the page reached by the last:
    // DAG planning over-fetches and loses effectiveness (paper §V-A).
    p.dagFactor = 0.70;
    p.dagOverFetch = 0.8;
    p.dagDepProb = 0.85;
    // CoT cannot browse at all (pair omitted in the paper).
    p.supportsCot = false;
    return p;
}

BenchmarkProfile
makeMath()
{
    BenchmarkProfile p;
    p.id = Benchmark::Math;
    p.name = "MATH";
    p.taskDescription = "Math problem solving";
    p.toolDescription = "Wolfram Alpha API, Python-based calculator";
    p.instructionTokens = 160;
    p.fewShotTokensPerExample = 210;
    p.defaultFewShot = 4;
    p.userTokenMean = 85.0;
    p.userTokenSd = 30.0;
    p.cotOutputMean = 460.0;
    p.stepOutputMean = 150.0; // longer internal derivations
    p.minHops = 2;
    p.maxHops = 5;
    p.difficultyLo = 0.15;
    p.difficultyHi = 0.80;
    // Models carry real arithmetic/algebra competence without tools.
    p.noToolFactor = 0.70;
    // Sequential derivations do not fit DAG-style planning; the paper
    // omits the pair.
    p.supportsLlmCompiler = false;
    return p;
}

BenchmarkProfile
makeHumanEval()
{
    BenchmarkProfile p;
    p.id = Benchmark::HumanEval;
    p.name = "HumanEval";
    p.taskDescription = "Programming";
    p.toolDescription = "Executing self-generated test code";
    p.instructionTokens = 140;
    p.fewShotTokensPerExample = 260;
    p.defaultFewShot = 2;
    p.userTokenMean = 130.0;
    p.userTokenSd = 40.0;
    p.cotOutputMean = 420.0;
    p.stepOutputMean = 200.0; // code-bearing steps
    p.minHops = 1;
    p.maxHops = 3;
    p.difficultyLo = 0.10;
    p.difficultyHi = 0.80;
    p.noToolFactor = 0.75;
    p.supportsLlmCompiler = false;
    return p;
}

} // namespace

const BenchmarkProfile &
profile(Benchmark b)
{
    static const BenchmarkProfile hotpot = makeHotpotQa();
    static const BenchmarkProfile webshop = makeWebShop();
    static const BenchmarkProfile math = makeMath();
    static const BenchmarkProfile humaneval = makeHumanEval();
    switch (b) {
      case Benchmark::HotpotQA:
        return hotpot;
      case Benchmark::WebShop:
        return webshop;
      case Benchmark::Math:
        return math;
      case Benchmark::HumanEval:
        return humaneval;
      case Benchmark::ShareGpt:
        AGENTSIM_FATAL("ShareGPT is not an agentic benchmark");
    }
    AGENTSIM_PANIC("unknown benchmark");
}

TaskGenerator::TaskGenerator(Benchmark benchmark, std::uint64_t seed)
    : benchmark_(benchmark), seed_(seed)
{
    AGENTSIM_ASSERT(benchmark != Benchmark::ShareGpt,
                    "TaskGenerator is for agentic benchmarks");
}

TaskInstance
TaskGenerator::sample(std::uint64_t index) const
{
    const BenchmarkProfile &p = profile(benchmark_);
    sim::Rng rng(seed_,
                 std::string("task.") + std::string(benchmarkName(
                                            benchmark_)),
                 index);
    TaskInstance t;
    t.benchmark = benchmark_;
    t.taskId = index;
    t.requiredHops =
        static_cast<int>(rng.uniformInt(p.minHops, p.maxHops));
    t.difficulty = rng.uniform(p.difficultyLo, p.difficultyHi);
    t.solveThreshold = rng.uniform();
    t.userTokens = p.sampleUserTokens(rng);
    return t;
}

ChatSessionSampler::ChatSessionSampler(std::uint64_t seed)
    : seed_(seed)
{
}

int
ChatSessionSampler::turnCount(std::uint64_t index) const
{
    sim::Rng rng(seed_, "chat.session", index);
    // Geometric-ish: most sessions are short, some run long.
    int turns = 1;
    while (turns < maxTurns && rng.bernoulli(0.62))
        ++turns;
    return turns;
}

ChatTurn
ChatSessionSampler::turn(std::uint64_t index, int turn) const
{
    sim::Rng rng(seed_, "chat.turn",
                 sim::hashCombine(index,
                                  static_cast<std::uint64_t>(turn)));
    ChatTurn t;
    // Opening messages are longer; follow-ups terse.
    const double user_mean = turn == 0 ? 180.0 : 60.0;
    t.userTokens = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(rng.lognormalMean(user_mean, 0.7)),
        8, 1500);
    t.outputTokens = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(rng.lognormalMean(220.0, 0.55)), 16,
        1024);
    return t;
}

double
ChatSessionSampler::thinkTimeSeconds(sim::Rng &rng) const
{
    // Users read the reply and type the follow-up.
    return rng.lognormalMean(12.0, 0.8);
}

ShareGptSampler::ShareGptSampler(std::uint64_t seed) : seed_(seed) {}

ChatRequest
ShareGptSampler::sample(std::uint64_t index) const
{
    sim::Rng rng(seed_, "sharegpt", index);
    ChatRequest r;
    // Conversation prompts: a few hundred tokens, heavy tailed;
    // responses similar (calibrated so single-request latency lands in
    // the paper's 3-7 s band on the 8B/A100 configuration).
    r.promptTokens = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(rng.lognormalMean(310.0, 0.8)), 16,
        3000);
    r.outputTokens = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(rng.lognormalMean(250.0, 0.55)), 16,
        1024);
    return r;
}

} // namespace agentsim::workload
