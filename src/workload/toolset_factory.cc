#include "workload/toolset_factory.hh"

#include "sim/logging.hh"

namespace agentsim::workload
{

std::unique_ptr<tools::ToolSet>
makeToolSet(Benchmark benchmark, sim::Simulation &sim,
            serving::LlmEngine &engine, std::uint64_t seed)
{
    auto set = std::make_unique<tools::ToolSet>();
    switch (benchmark) {
      case Benchmark::HotpotQA:
        set->add(tools::makeWikipediaSearch(sim));
        set->add(tools::makeWikipediaLookup(sim));
        break;
      case Benchmark::WebShop:
        set->add(tools::makeWebshopSearch(sim));
        set->add(tools::makeWebshopClick(sim));
        break;
      case Benchmark::Math:
        set->add(tools::makeWolframAlpha(sim));
        set->add(tools::makePythonCalculator(sim));
        break;
      case Benchmark::HumanEval:
        set->add(tools::makeSelfTest(sim, engine, seed));
        break;
      case Benchmark::ShareGpt:
        AGENTSIM_FATAL("ShareGPT has no tools");
    }
    return set;
}

} // namespace agentsim::workload
