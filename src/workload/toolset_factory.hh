/**
 * @file
 * Per-benchmark tool-set assembly (Table II's Tool column).
 */

#ifndef AGENTSIM_WORKLOAD_TOOLSET_FACTORY_HH
#define AGENTSIM_WORKLOAD_TOOLSET_FACTORY_HH

#include <memory>

#include "serving/engine.hh"
#include "tools/catalog.hh"
#include "workload/benchmark.hh"

namespace agentsim::workload
{

/**
 * Build the tool belt for a benchmark.
 *
 * @param engine LLM engine, needed by GPU-backed tools (HumanEval).
 * @param seed deterministic seed for tool-internal LLM prompts.
 */
std::unique_ptr<tools::ToolSet>
makeToolSet(Benchmark benchmark, sim::Simulation &sim,
            serving::LlmEngine &engine, std::uint64_t seed);

} // namespace agentsim::workload

#endif // AGENTSIM_WORKLOAD_TOOLSET_FACTORY_HH
