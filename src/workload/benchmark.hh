/**
 * @file
 * Benchmark descriptions (paper Table II) and their statistical task
 * models: prompt-segment sizes, per-role output-length distributions,
 * latent task structure (required reasoning hops, difficulty) and
 * agent-suitability flags.
 */

#ifndef AGENTSIM_WORKLOAD_BENCHMARK_HH
#define AGENTSIM_WORKLOAD_BENCHMARK_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/rng.hh"

namespace agentsim::workload
{

/** The evaluated benchmarks; ShareGpt is the non-agentic baseline. */
enum class Benchmark
{
    HotpotQA,
    WebShop,
    Math,
    HumanEval,
    ShareGpt,
};

/** All agentic benchmarks, in paper order. */
constexpr std::array<Benchmark, 4> agenticBenchmarks{
    Benchmark::HotpotQA, Benchmark::WebShop, Benchmark::Math,
    Benchmark::HumanEval};

/** Stable display name. */
std::string_view benchmarkName(Benchmark b);

/**
 * The statistical model of one benchmark. Token figures calibrated to
 * the paper's Fig 8/9 (initial agent prompts around 1 k tokens,
 * growing 3-4x over iterations).
 */
struct BenchmarkProfile
{
    Benchmark id{};
    std::string name;
    std::string taskDescription;
    std::string toolDescription;

    /** Fixed instruction prompt tokens (role + objective). */
    std::int64_t instructionTokens = 0;
    /** Tokens per in-context example. */
    std::int64_t fewShotTokensPerExample = 0;
    /** Default number of few-shot examples. */
    int defaultFewShot = 4;

    /** User-query length distribution. */
    double userTokenMean = 30.0;
    double userTokenSd = 10.0;
    std::int64_t userTokenMin = 8;
    std::int64_t userTokenMax = 400;

    /** Per-LLM-call output lengths by call role. */
    double cotOutputMean = 420.0;     ///< one-shot CoT rationale
    double stepOutputMean = 85.0;     ///< thought+action of one step
    double reflectionOutputMean = 140.0;
    double plannerOutputMean = 190.0; ///< DAG plan (LLMCompiler)
    double valueOutputMean = 30.0;    ///< LATS value scores
    double finalOutputMean = 60.0;    ///< final answer call
    double outputSdFraction = 0.25;   ///< sd as a fraction of the mean

    /** Latent task structure. */
    int minHops = 2;
    int maxHops = 4;
    double difficultyLo = 0.10;
    double difficultyHi = 0.75;

    /**
     * Penalty on per-hop success when solving from parametric
     * knowledge alone (CoT without tools).
     */
    double noToolFactor = 0.55;
    /** Per-hop effectiveness of DAG-planned tool calls (LLMCompiler);
     *  < 1 where tool use is highly interdependent (WebShop). */
    double dagFactor = 1.0;
    /** Extra planned tool calls per hop under DAG planning. */
    double dagOverFetch = 0.3;
    /** Probability a planned tool call depends on an earlier one
     *  (serializing the DAG; high for interactive navigation). */
    double dagDepProb = 0.2;

    bool supportsCot = true;
    bool supportsLlmCompiler = true;

    /** Sample a user-query length. */
    std::int64_t sampleUserTokens(sim::Rng &rng) const;

    /** Sample an output length for a call with mean @p mean. */
    std::int64_t sampleOutputTokens(sim::Rng &rng, double mean) const;
};

/** The profile of a benchmark (ShareGpt has no agentic profile). */
const BenchmarkProfile &profile(Benchmark b);

/** One sampled task instance. */
struct TaskInstance
{
    Benchmark benchmark{};
    std::uint64_t taskId = 0;
    /** Facts/steps the agent must uncover to answer. */
    int requiredHops = 0;
    /** Latent difficulty in [0, 1); scales per-step failure odds. */
    double difficulty = 0.0;
    /**
     * Latent solvability threshold in [0, 1): an execution context
     * whose capability exceeds it can make progress on this task.
     * Fixed per task, so retries are correlated (hard tasks stay
     * hard) — see agents/accuracy.hh.
     */
    double solveThreshold = 0.0;
    /** User-query token count. */
    std::int64_t userTokens = 0;
};

/** Deterministic task sampler for a benchmark. */
class TaskGenerator
{
  public:
    TaskGenerator(Benchmark benchmark, std::uint64_t seed);

    /** The @p index-th task (stable across calls). */
    TaskInstance sample(std::uint64_t index) const;

    Benchmark benchmark() const { return benchmark_; }

  private:
    Benchmark benchmark_;
    std::uint64_t seed_;
};

/** Single-turn chatbot request (the non-agentic ShareGPT baseline). */
struct ChatRequest
{
    std::int64_t promptTokens = 0;
    std::int64_t outputTokens = 0;
};

/** Deterministic ShareGPT-style request sampler. */
class ShareGptSampler
{
  public:
    explicit ShareGptSampler(std::uint64_t seed);

    ChatRequest sample(std::uint64_t index) const;

  private:
    std::uint64_t seed_;
};

/** One turn of a multi-turn conversation. */
struct ChatTurn
{
    std::int64_t userTokens = 0;
    std::int64_t outputTokens = 0;
};

/**
 * Deterministic multi-turn conversation sampler (ShareGPT-style
 * sessions). Successive turns extend the same context, so a session's
 * turns share ever-growing prompt prefixes — the cross-query prefix
 * persistence the paper's keytakeaway #8 advocates exploiting.
 */
class ChatSessionSampler
{
  public:
    explicit ChatSessionSampler(std::uint64_t seed);

    /** Number of turns in session @p index (1..maxTurns). */
    int turnCount(std::uint64_t index) const;

    /** The @p turn-th turn of session @p index. */
    ChatTurn turn(std::uint64_t index, int turn) const;

    /** Sample the user think time before a follow-up turn, seconds. */
    double thinkTimeSeconds(sim::Rng &rng) const;

    static constexpr int maxTurns = 8;

  private:
    std::uint64_t seed_;
};

} // namespace agentsim::workload

#endif // AGENTSIM_WORKLOAD_BENCHMARK_HH
