#include "energy/projection.hh"

#include <array>

namespace agentsim::energy
{

std::span<const WauPoint>
chatGptWauSeries()
{
    static const std::array<WauPoint, 6> series{{
        {"2023-02", 100.0}, // fastest-growing app on record
        {"2023-11", 150.0},
        {"2024-08", 200.0},
        {"2024-12", 300.0},
        {"2025-02", 400.0},
        {"2025-04", 500.0},
    }};
    return series;
}

} // namespace agentsim::energy
