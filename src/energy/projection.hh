/**
 * @file
 * Energy accounting and the datacenter-scale projection arithmetic of
 * paper §VI: per-query Wh, fleet power under today's (ChatGPT-scale)
 * and tomorrow's (Google-search-scale) traffic, and the ChatGPT WAU
 * growth series behind Fig 23.
 */

#ifndef AGENTSIM_ENERGY_PROJECTION_HH
#define AGENTSIM_ENERGY_PROJECTION_HH

#include <span>
#include <string>

namespace agentsim::energy
{

/** Joules to watt-hours. */
constexpr double
wattHours(double joules)
{
    return joules / 3600.0;
}

/**
 * Datacenter-wide power (watts) to serve @p queries_per_day requests
 * of @p wh_per_query each: P = Wh/query x queries/day / 24 h.
 */
constexpr double
datacenterPowerWatts(double wh_per_query, double queries_per_day)
{
    return wh_per_query * queries_per_day / 24.0;
}

/**
 * Today's traffic assumption (§VI): ~500 M weekly active users →
 * ~71.4 M daily actives, one agentic query each.
 */
constexpr double chatGptDailyQueries = 71.4e6;

/** Tomorrow's traffic assumption: Google-search volume. */
constexpr double googleDailyQueries = 13.7e9;

/** Seattle-and-surroundings daily electricity (GWh), for scale. */
constexpr double seattleDailyGWh = 24.8;

/** Average U.S. grid load (GW), for scale. */
constexpr double usGridAverageGW = 476.9;

/** U.S. industrial electricity price, $/kWh (EIA 2024 ballpark). */
constexpr double usdPerKwh = 0.083;

/** U.S. grid average carbon intensity, kg CO2 per kWh. */
constexpr double kgCo2PerKwh = 0.37;

/** Electricity cost of a daily fleet energy budget, $/day. */
constexpr double
dailyCostUsd(double wh_per_query, double queries_per_day)
{
    return wh_per_query * queries_per_day / 1000.0 * usdPerKwh;
}

/** Carbon emissions of a daily fleet energy budget, kg CO2/day. */
constexpr double
dailyCo2Kg(double wh_per_query, double queries_per_day)
{
    return wh_per_query * queries_per_day / 1000.0 * kgCo2PerKwh;
}

/** One point of the ChatGPT weekly-active-user series (Fig 23). */
struct WauPoint
{
    std::string date;
    double millions;
};

/** The reported WAU growth series [refs 31, 35, 36, 39-41]. */
std::span<const WauPoint> chatGptWauSeries();

/**
 * Fleet daily energy (GWh) for @p queries_per_day queries at
 * @p wh_per_query each.
 */
constexpr double
dailyEnergyGWh(double wh_per_query, double queries_per_day)
{
    return wh_per_query * queries_per_day / 1e9;
}

} // namespace agentsim::energy

#endif // AGENTSIM_ENERGY_PROJECTION_HH
