/**
 * @file
 * Paged KV-cache block manager with content-hash prefix caching.
 *
 * Mirrors vLLM's PagedAttention block manager:
 *  - GPU KV memory is divided into fixed-size blocks (default 16
 *    tokens); each sequence owns a block table.
 *  - With prefix caching enabled, every *full* block is identified by a
 *    chain hash of its token contents and all preceding tokens. A new
 *    sequence whose prompt shares a prefix with a cached chain reuses
 *    those blocks (refcounted) and skips their prefill computation.
 *  - Blocks whose refcount drops to zero stay in the cache table on an
 *    LRU list and are evicted only when a fresh block is needed —
 *    so constrained pools exhibit genuine cache thrashing (Fig 17).
 *
 * Token IDs are opaque 64-bit values; the workload layer generates them
 * deterministically so logically-shared prefixes share literal IDs.
 */

#ifndef AGENTSIM_KV_BLOCK_MANAGER_HH
#define AGENTSIM_KV_BLOCK_MANAGER_HH

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace agentsim::kv
{

/** Opaque synthetic token identifier. */
using TokenId = std::uint64_t;

/** Sequence identifier assigned by the serving engine. */
using SeqId = std::uint64_t;

/** Index of a physical KV block. */
using BlockId = std::int32_t;

/** Eviction order for unreferenced cached blocks. */
enum class EvictionPolicy
{
    /** Least recently used (vLLM default). */
    Lru,
    /** First published, first evicted (ignores reuse recency). */
    Fifo,
};

/** Block-manager configuration. */
struct BlockManagerConfig
{
    /** Number of physical blocks in the pool. */
    std::int64_t numBlocks = 0;
    /** Tokens per block. */
    int blockSize = 16;
    /** Enable content-hash prefix caching. */
    bool enablePrefixCaching = true;
    /** Eviction order among unreferenced cached blocks. */
    EvictionPolicy evictionPolicy = EvictionPolicy::Lru;
    /**
     * Host-memory (CPU DRAM) spill tier, in blocks; 0 disables.
     * Blocks evicted from the GPU cache keep a host copy; later
     * prompt allocations restore them over PCIe instead of
     * recomputing (paper keytakeaway #6).
     */
    std::int64_t hostCacheBlocks = 0;
};

/** Result of a prompt allocation. */
struct PromptAlloc
{
    /** Number of leading prompt tokens whose KV was found cached on
     *  the GPU; prefill for these tokens is skipped. */
    std::int64_t cachedTokens = 0;
    /** Tokens restored from the host tier: prefill skipped, but a
     *  PCIe transfer must be charged by the engine. */
    std::int64_t restoredTokens = 0;
    /** Blocks newly taken from the pool for this allocation. */
    std::int64_t freshBlocks = 0;

    /** Tokens whose computation is skipped (cached + restored). */
    std::int64_t
    reusedTokens() const
    {
        return cachedTokens + restoredTokens;
    }
};

/**
 * Snapshot of a sequence's block chain, taken by exportChain() on the
 * source node of a live migration. Token ids are enough to rebuild the
 * chain anywhere: block contents are implied by the tokens, and the
 * chain hashes are recomputed identically on the target.
 */
struct ChainExport
{
    /** All tokens of the sequence (prompt plus generated output). */
    std::vector<TokenId> tokens;
    /** Blocks the chain occupied on the source (transfer sizing). */
    std::int64_t blocks = 0;
};

/** Aggregate cache statistics. */
struct CacheStats
{
    std::int64_t lookupTokens = 0;
    std::int64_t hitTokens = 0;
    /** Tokens served from the host spill tier. */
    std::int64_t restoredTokens = 0;
    std::int64_t evictions = 0;
    std::int64_t allocatedBlocks = 0;

    double
    hitRate() const
    {
        return lookupTokens == 0
                   ? 0.0
                   : static_cast<double>(hitTokens) /
                         static_cast<double>(lookupTokens);
    }
};

/**
 * The paged block pool. Single-threaded; owned by one serving engine.
 */
class BlockManager
{
  public:
    explicit BlockManager(const BlockManagerConfig &config);

    /**
     * Allocate blocks for a new sequence's prompt.
     *
     * Reuses cached blocks for the longest contiguous prefix of full
     * blocks (when prefix caching is on) and takes fresh blocks for the
     * rest. Fails without side effects if the pool cannot supply the
     * fresh blocks even after evicting all unreferenced cached blocks.
     *
     * @param seq_id caller-unique sequence id.
     * @param tokens full prompt token ids.
     * @return allocation summary, or nullopt if out of blocks.
     */
    std::optional<PromptAlloc>
    allocatePrompt(SeqId seq_id, std::span<const TokenId> tokens);

    /**
     * Append one generated token to a sequence, taking a fresh block at
     * block boundaries. @return false if the pool is exhausted (caller
     * should preempt).
     */
    bool appendToken(SeqId seq_id, TokenId token);

    /** Release all blocks of a sequence (request finished/preempted). */
    void release(SeqId seq_id);

    /**
     * Drop every sequence, cached block and host-tier entry — the KV
     * state after a node crash and restart. Cumulative CacheStats are
     * preserved (they describe the node's history, not its contents).
     */
    void reset();

    /**
     * Inject externally computed KV for @p tokens: every full block
     * is allocated and published as if prefilled here (disaggregated
     * serving transfers KV from a prefill node). Existing cached
     * blocks are left in place. @return blocks newly populated, or
     * -1 if the pool cannot hold the prefix.
     */
    std::int64_t preloadPrefix(std::span<const TokenId> tokens);

    /**
     * Snapshot a sequence's chain for live migration. The sequence
     * stays allocated; the caller releases it once the snapshot is
     * handed off.
     */
    ChainExport exportChain(SeqId seq_id) const;

    /**
     * Rebuild a migrated chain on this (target) pool: allocate blocks
     * for @p tokens exactly like a prompt allocation, reusing any
     * locally cached prefix — reused tokens need no interconnect
     * transfer, so the returned PromptAlloc tells the engine how many
     * tokens must actually cross the wire. @return nullopt if the pool
     * cannot hold the chain (caller falls back to recompute).
     */
    std::optional<PromptAlloc> importChain(SeqId seq_id,
                                           std::span<const TokenId> tokens);

    /** True if the sequence is currently allocated. */
    bool hasSeq(SeqId seq_id) const { return seqs_.contains(seq_id); }

    /** Number of tokens currently stored for a sequence. */
    std::int64_t seqTokens(SeqId seq_id) const;

    /**
     * Blocks a prompt of @p token_count would need *ignoring* cache
     * hits — the admission-control upper bound.
     */
    std::int64_t blocksNeeded(std::int64_t token_count) const;

    /** Blocks immediately available: free plus evictable. */
    std::int64_t availableBlocks() const;

    /** Blocks on the free list (never-used or fully recycled). */
    std::int64_t freeBlocks() const
    {
        return static_cast<std::int64_t>(freeList_.size());
    }

    /** Unreferenced cached blocks awaiting reuse or eviction. */
    std::int64_t evictableBlocks() const
    {
        return static_cast<std::int64_t>(evictable_.size());
    }

    /** Blocks currently resident in the host spill tier. */
    std::int64_t hostCachedBlocks() const
    {
        return static_cast<std::int64_t>(hostCache_.size());
    }

    /** Blocks referenced by live sequences (shared counted once). */
    std::int64_t usedBlocks() const;

    /**
     * Gauge: blocks pinned by live sequences right now. The telemetry
     * sampler reads this directly instead of deriving occupancy from
     * CacheStats deltas.
     */
    std::int64_t blocksInUse() const { return usedBlocks(); }

    /**
     * Gauge: blocks not pinned by any sequence (free list plus
     * unreferenced cached blocks awaiting reuse or eviction).
     */
    std::int64_t blocksFree() const
    {
        return totalBlocks() - usedBlocks();
    }

    /** Pool size in blocks. */
    std::int64_t totalBlocks() const { return config_.numBlocks; }

    int blockSize() const { return config_.blockSize; }

    bool prefixCachingEnabled() const
    {
        return config_.enablePrefixCaching;
    }

    const CacheStats &stats() const { return stats_; }

    /** Verify internal invariants; panics on violation (tests). */
    void checkInvariants() const;

  private:
    struct Block
    {
        int refCount = 0;
        std::uint64_t hash = 0;
        /** True if this block is the cache-table entry for its hash. */
        bool inTable = false;
        /** Eviction-order key when evictable; 0 otherwise. */
        std::uint64_t lruKey = 0;
        /** Publish-order key (FIFO eviction). */
        std::uint64_t publishKey = 0;
    };

    struct Seq
    {
        std::vector<BlockId> blocks;
        std::vector<TokenId> tokens;
        /** Chain hash per completed block. */
        std::vector<std::uint64_t> chainHashes;
    };

    BlockManagerConfig config_;
    std::vector<Block> blocks_;
    std::vector<BlockId> freeList_;
    /** hash -> block holding that content. */
    std::unordered_map<std::uint64_t, BlockId> cacheTable_;
    /** lruKey -> block, ordered oldest first. */
    std::map<std::uint64_t, BlockId> evictable_;
    std::unordered_map<SeqId, Seq> seqs_;
    std::uint64_t lruCounter_ = 1;
    CacheStats stats_;

    /** Host spill tier: hash -> host LRU key (contents implicit). */
    std::unordered_map<std::uint64_t, std::uint64_t> hostCache_;
    /** Host LRU order: key -> hash. */
    std::map<std::uint64_t, std::uint64_t> hostLru_;

    /** Insert a hash into the host tier (evicting host LRU). */
    void spillToHost(std::uint64_t hash);

    /** Chain hash of block @p index given the previous chain hash. */
    std::uint64_t chunkHash(std::uint64_t prev_hash,
                            std::span<const TokenId> chunk) const;

    /** Take one block from free list or evict the LRU cached block. */
    BlockId acquireFreshBlock();

    /** Re-reference a cached block (removing it from the LRU if idle). */
    void refCachedBlock(BlockId id);

    /** Try to publish a just-completed block into the cache table. */
    void publishBlock(BlockId id, std::uint64_t hash);

    /** Drop one reference; recycle or park on the LRU at zero. */
    void unrefBlock(BlockId id);
};

} // namespace agentsim::kv

#endif // AGENTSIM_KV_BLOCK_MANAGER_HH
