/**
 * @file
 * Paged KV-cache block manager with content-hash prefix caching and a
 * tiered spill hierarchy (HBM -> host DRAM -> simulated NVMe).
 *
 * Mirrors vLLM's PagedAttention block manager:
 *  - GPU KV memory is divided into fixed-size blocks (default 16
 *    tokens); each sequence owns a block table.
 *  - With prefix caching enabled, every *full* block is identified by a
 *    chain hash of its token contents and all preceding tokens. A new
 *    sequence whose prompt shares a prefix with a cached chain reuses
 *    those blocks (refcounted) and skips their prefill computation.
 *  - Blocks whose refcount drops to zero stay in the cache table on an
 *    LRU list and are evicted only when a fresh block is needed —
 *    so constrained pools exhibit genuine cache thrashing (Fig 17).
 *
 * Below the GPU pool sit up to two spill tiers (Spitfire-style
 * probabilistic migration crossed with dicedb-spill's transparent
 * evict/auto-restore):
 *  - blocks evicted from HBM demote into the DRAM tier with a
 *    configurable admission probability; DRAM capacity victims sink
 *    into the NVMe tier with their own admission probability;
 *  - a prompt allocation restores tier-resident prefix blocks back to
 *    the GPU instead of recomputing them; the caller prices the
 *    transfer (PCIe for DRAM, NVMe read for the flash tier) from the
 *    PromptAlloc tier split;
 *  - each tier is explicitly inclusive (a restore leaves the tier
 *    entry in place, recency refreshed) or exclusive (a restore
 *    reclaims the entry, dicedb-spill semantics — the default);
 *  - parkChain()/prefetchChain() let the serving layer proactively
 *    demote an idle chain while its agent waits on a tool call and
 *    promote it back just before the continuation wakes.
 *
 * Token IDs are opaque 64-bit values; the workload layer generates them
 * deterministically so logically-shared prefixes share literal IDs.
 */

#ifndef AGENTSIM_KV_BLOCK_MANAGER_HH
#define AGENTSIM_KV_BLOCK_MANAGER_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/rng.hh"

namespace agentsim::kv
{

/** Opaque synthetic token identifier. */
using TokenId = std::uint64_t;

/** Sequence identifier assigned by the serving engine. */
using SeqId = std::uint64_t;

/** Index of a physical KV block. */
using BlockId = std::int32_t;

/** Eviction order for unreferenced cached blocks. */
enum class EvictionPolicy
{
    /** Least recently used (vLLM default). */
    Lru,
    /** First published, first evicted (ignores reuse recency). */
    Fifo,
};

/** Residency discipline between the GPU pool and one spill tier. */
enum class TierMode
{
    /**
     * A restore reclaims the tier entry: contents live in exactly one
     * place, so tier capacity is never wasted on GPU-resident
     * duplicates (dicedb-spill removes restored keys from RocksDB).
     */
    Exclusive,
    /**
     * A restore leaves the tier entry in place with refreshed
     * recency: a later GPU eviction needs no write-back, at the cost
     * of duplicate footprint.
     */
    Inclusive,
};

/** The spill tiers, in restore-cost order. */
enum class Tier
{
    Dram = 0,
    Nvme = 1,
};

/** Spill tiers in the hierarchy below HBM. */
inline constexpr std::size_t kNumSpillTiers = 2;

/** Block-manager configuration. */
struct BlockManagerConfig
{
    /** Number of physical blocks in the pool. */
    std::int64_t numBlocks = 0;
    /** Tokens per block. */
    int blockSize = 16;
    /** Enable content-hash prefix caching. */
    bool enablePrefixCaching = true;
    /** Eviction order among unreferenced cached blocks. */
    EvictionPolicy evictionPolicy = EvictionPolicy::Lru;
    /**
     * Host-memory (CPU DRAM) spill tier, in blocks; 0 disables.
     * Blocks evicted from the GPU cache keep a host copy; later
     * prompt allocations restore them over PCIe instead of
     * recomputing (paper keytakeaway #6).
     */
    std::int64_t hostCacheBlocks = 0;
    /** Probability an HBM eviction victim is admitted into DRAM. */
    double dramAdmitProb = 1.0;
    /** Residency discipline of the DRAM tier. */
    TierMode dramMode = TierMode::Exclusive;
    /**
     * Simulated NVMe spill tier, in blocks; 0 disables. DRAM capacity
     * victims sink here instead of vanishing; restores pay the NVMe
     * read bandwidth instead of PCIe.
     */
    std::int64_t nvmeCacheBlocks = 0;
    /** Probability a DRAM victim (or HBM victim when DRAM is
     *  disabled) is admitted into NVMe. */
    double nvmeAdmitProb = 1.0;
    /** Residency discipline of the NVMe tier. */
    TierMode nvmeMode = TierMode::Exclusive;
    /**
     * Seed of the probabilistic-migration stream. Only consulted when
     * a spill tier is enabled with an admission probability < 1, so
     * deterministic configurations never touch it.
     */
    std::uint64_t seed = 1;
};

/** Result of a prompt allocation. */
struct PromptAlloc
{
    /** Number of leading prompt tokens whose KV was found cached on
     *  the GPU; prefill for these tokens is skipped. */
    std::int64_t cachedTokens = 0;
    /** Tokens restored from the spill tiers (DRAM + NVMe): prefill
     *  skipped, but the tier transfer must be priced by the engine. */
    std::int64_t restoredTokens = 0;
    /** Tokens restored from the DRAM tier (priced at PCIe). */
    std::int64_t dramRestoredTokens = 0;
    /** Tokens restored from the NVMe tier (priced at NVMe read). */
    std::int64_t nvmeRestoredTokens = 0;
    /** Blocks newly taken from the pool for this allocation. */
    std::int64_t freshBlocks = 0;

    /** Tokens whose computation is skipped (cached + restored). */
    std::int64_t
    reusedTokens() const
    {
        return cachedTokens + restoredTokens;
    }
};

/**
 * Snapshot of a sequence's block chain, taken by exportChain() on the
 * source node of a live migration. Token ids are enough to rebuild the
 * chain anywhere: block contents are implied by the tokens, and the
 * chain hashes are recomputed identically on the target.
 *
 * Deliberately carries no source-side block count: the source's chain
 * includes prefix-cached blocks shared with other sequences, so sizing
 * the wire transfer from it over-charges for blocks the target reuses
 * from its own cache. Transfer sizing belongs to the *importing* side:
 * importChain()'s PromptAlloc reports exactly the tokens that missed.
 */
struct ChainExport
{
    /** All tokens of the sequence (prompt plus generated output). */
    std::vector<TokenId> tokens;
};

/** Per-spill-tier cumulative counters. */
struct TierStats
{
    /** Entries admitted into this tier (HBM demotions or sink-downs). */
    std::int64_t demotedBlocks = 0;
    /** Candidate entries skipped by probabilistic admission. */
    std::int64_t rejectedBlocks = 0;
    /** Entries pushed out of this tier by its own capacity. */
    std::int64_t evictedBlocks = 0;
    /** Tokens restored from this tier back to the GPU. */
    std::int64_t restoredTokens = 0;
};

/** Aggregate cache statistics. */
struct CacheStats
{
    std::int64_t lookupTokens = 0;
    std::int64_t hitTokens = 0;
    /** Tokens served from the spill tiers (DRAM + NVMe). */
    std::int64_t restoredTokens = 0;
    std::int64_t evictions = 0;
    std::int64_t allocatedBlocks = 0;

    /** DRAM (host memory) spill-tier counters. */
    TierStats dram;
    /** NVMe spill-tier counters. */
    TierStats nvme;

    double
    hitRate() const
    {
        return lookupTokens == 0
                   ? 0.0
                   : static_cast<double>(hitTokens) /
                         static_cast<double>(lookupTokens);
    }
};

/** What prefetchChain() promoted back to the GPU. */
struct PrefetchResult
{
    /** Blocks restored from the spill tiers. */
    std::int64_t blocks = 0;
    /** Tokens restored from the DRAM tier (priced at PCIe). */
    std::int64_t dramTokens = 0;
    /** Tokens restored from the NVMe tier (priced at NVMe read). */
    std::int64_t nvmeTokens = 0;
};

/**
 * The paged block pool. Single-threaded; owned by one serving engine.
 */
class BlockManager
{
  public:
    explicit BlockManager(const BlockManagerConfig &config);

    /**
     * Allocate blocks for a new sequence's prompt.
     *
     * Reuses cached blocks for the longest contiguous prefix of full
     * blocks (when prefix caching is on) and takes fresh blocks for the
     * rest. Fails without side effects if the pool cannot supply the
     * fresh blocks even after evicting all unreferenced cached blocks.
     *
     * @param seq_id caller-unique sequence id.
     * @param tokens full prompt token ids.
     * @return allocation summary, or nullopt if out of blocks.
     */
    std::optional<PromptAlloc>
    allocatePrompt(SeqId seq_id, std::span<const TokenId> tokens);

    /**
     * Append one generated token to a sequence, taking a fresh block at
     * block boundaries. @return false if the pool is exhausted (caller
     * should preempt).
     */
    bool appendToken(SeqId seq_id, TokenId token);

    /** Release all blocks of a sequence (request finished/preempted). */
    void release(SeqId seq_id);

    /**
     * Drop every sequence, cached block and spill-tier entry — the KV
     * state after a node crash and restart. Cumulative CacheStats are
     * preserved (they describe the node's history, not its contents).
     */
    void reset();

    /**
     * Inject externally computed KV for @p tokens: every full block
     * is allocated and published as if prefilled here (disaggregated
     * serving transfers KV from a prefill node). Existing cached
     * blocks are left in place.
     *
     * @return the number of blocks *newly* populated — the caller
     * sizes the wire transfer from it, since already-resident blocks
     * never cross the interconnect — or -1 when the prefix can never
     * fit (more full blocks than the pool has). The preload may be
     * partial: it stops (returning the count so far) once the pool is
     * full or once placing another block would evict a block of this
     * very prefix, so every block paid for stays resident and the
     * resident run is a contiguous head of the prefix.
     */
    std::int64_t preloadPrefix(std::span<const TokenId> tokens);

    /**
     * Snapshot a sequence's chain for live migration. The sequence
     * stays allocated; the caller releases it once the snapshot is
     * handed off.
     */
    ChainExport exportChain(SeqId seq_id) const;

    /**
     * Rebuild a migrated chain on this (target) pool: allocate blocks
     * for @p tokens exactly like a prompt allocation, reusing any
     * locally cached prefix — reused tokens need no interconnect
     * transfer, so the returned PromptAlloc tells the engine how many
     * tokens must actually cross the wire. @return nullopt if the pool
     * cannot hold the chain (caller falls back to recompute).
     */
    std::optional<PromptAlloc> importChain(SeqId seq_id,
                                           std::span<const TokenId> tokens);

    /**
     * Tool-call-aware parking: demote every currently unreferenced
     * GPU-cached full block of @p tokens' chain into the DRAM tier
     * (or NVMe when DRAM is disabled), freeing the HBM blocks. The
     * demotion is deliberate, so it bypasses the probabilistic
     * admission filter. Blocks referenced by live sequences are
     * skipped (they are not idle). No-op when no tier is enabled or
     * prefix caching is off. @return blocks demoted.
     */
    std::int64_t parkChain(std::span<const TokenId> tokens);

    /**
     * Promote the chain of @p tokens back to the GPU ahead of a
     * continuation: walks the chain's full blocks, restoring
     * spill-tier entries onto fresh GPU blocks (published, parked on
     * the eviction list exactly like preloadPrefix) until the first
     * block resident nowhere. The caller prices the reported per-tier
     * token counts as a background transfer. Stops early when the
     * pool has no free-or-evictable block left.
     */
    PrefetchResult prefetchChain(std::span<const TokenId> tokens);

    /** True if the sequence is currently allocated. */
    bool hasSeq(SeqId seq_id) const { return seqs_.contains(seq_id); }

    /** Number of tokens currently stored for a sequence. */
    std::int64_t seqTokens(SeqId seq_id) const;

    /**
     * Blocks a prompt of @p token_count would need *ignoring* cache
     * hits — the admission-control upper bound.
     */
    std::int64_t blocksNeeded(std::int64_t token_count) const;

    /** Blocks immediately available: free plus evictable. */
    std::int64_t availableBlocks() const;

    /** Blocks on the free list (never-used or fully recycled). */
    std::int64_t freeBlocks() const
    {
        return static_cast<std::int64_t>(freeList_.size());
    }

    /** Unreferenced cached blocks awaiting reuse or eviction. */
    std::int64_t evictableBlocks() const
    {
        return static_cast<std::int64_t>(evictable_.size());
    }

    /** Blocks currently resident in the DRAM (host) spill tier. */
    std::int64_t hostCachedBlocks() const
    {
        return tierBlocks(Tier::Dram);
    }

    /** Blocks currently resident in the NVMe spill tier. */
    std::int64_t nvmeCachedBlocks() const
    {
        return tierBlocks(Tier::Nvme);
    }

    /** Blocks currently resident in spill tier @p tier. */
    std::int64_t tierBlocks(Tier tier) const
    {
        return static_cast<std::int64_t>(
            tiers_[static_cast<std::size_t>(tier)].entries.size());
    }

    /** Configured capacity of spill tier @p tier, in blocks. */
    std::int64_t tierCapacity(Tier tier) const
    {
        return tiers_[static_cast<std::size_t>(tier)].capacity;
    }

    /** True when at least one spill tier has capacity. */
    bool spillTiersEnabled() const
    {
        return tiers_[0].enabled() || tiers_[1].enabled();
    }

    /** Blocks referenced by live sequences (shared counted once). */
    std::int64_t usedBlocks() const;

    /**
     * Gauge: blocks pinned by live sequences right now. The telemetry
     * sampler reads this directly instead of deriving occupancy from
     * CacheStats deltas.
     */
    std::int64_t blocksInUse() const { return usedBlocks(); }

    /**
     * Gauge: blocks not pinned by any sequence (free list plus
     * unreferenced cached blocks awaiting reuse or eviction).
     */
    std::int64_t blocksFree() const
    {
        return totalBlocks() - usedBlocks();
    }

    /** Pool size in blocks. */
    std::int64_t totalBlocks() const { return config_.numBlocks; }

    int blockSize() const { return config_.blockSize; }

    bool prefixCachingEnabled() const
    {
        return config_.enablePrefixCaching;
    }

    const CacheStats &stats() const { return stats_; }

    /** Verify internal invariants; panics on violation (tests). */
    void checkInvariants() const;

  private:
    struct Block
    {
        int refCount = 0;
        std::uint64_t hash = 0;
        /** True if this block is the cache-table entry for its hash. */
        bool inTable = false;
        /** Eviction-order key when evictable; 0 otherwise. */
        std::uint64_t lruKey = 0;
        /** Publish-order key (FIFO eviction). */
        std::uint64_t publishKey = 0;
    };

    struct Seq
    {
        std::vector<BlockId> blocks;
        std::vector<TokenId> tokens;
        /** Chain hash per completed block. */
        std::vector<std::uint64_t> chainHashes;
    };

    /** One spill tier: an LRU-ordered hash set (contents implicit). */
    struct SpillTier
    {
        std::int64_t capacity = 0;
        double admitProb = 1.0;
        TierMode mode = TierMode::Exclusive;
        /** hash -> LRU key. */
        std::unordered_map<std::uint64_t, std::uint64_t> entries;
        /** LRU key -> hash, ordered oldest first. */
        std::map<std::uint64_t, std::uint64_t> lru;

        bool enabled() const { return capacity > 0; }
        bool contains(std::uint64_t hash) const
        {
            return entries.contains(hash);
        }
    };

    BlockManagerConfig config_;
    std::vector<Block> blocks_;
    std::vector<BlockId> freeList_;
    /** hash -> block holding that content. */
    std::unordered_map<std::uint64_t, BlockId> cacheTable_;
    /** lruKey -> block, ordered oldest first. */
    std::map<std::uint64_t, BlockId> evictable_;
    std::unordered_map<SeqId, Seq> seqs_;
    std::uint64_t lruCounter_ = 1;
    CacheStats stats_;

    /** Spill hierarchy: [0] DRAM, [1] NVMe. */
    std::array<SpillTier, kNumSpillTiers> tiers_;
    /**
     * Probabilistic-migration stream. Engaged only when some enabled
     * tier has admitProb < 1; never consulted otherwise, keeping
     * deterministic configurations bit-identical whether or not the
     * stream exists.
     */
    std::optional<sim::Rng> tierRng_;

    /** Mutable per-tier counter access. */
    TierStats &tierStats(std::size_t index);

    /**
     * Offer a hash evicted from HBM to the spill hierarchy: admit
     * into the first enabled tier with its admission probability
     * (bypassed when @p forced — deliberate parking).
     */
    void demoteFromGpu(std::uint64_t hash, bool forced);

    /**
     * Insert @p hash into tier @p index (refreshing recency if
     * already resident); a capacity victim sinks into the next
     * enabled tier through its own admission filter.
     */
    void spillToTier(std::size_t index, std::uint64_t hash);

    /**
     * A restore consumed tier @p index's entry for @p hash: reclaim
     * it (Exclusive) or refresh its recency (Inclusive).
     */
    void noteTierRestore(std::size_t index, std::uint64_t hash);

    /** Bernoulli draw against tier @p index's admission probability. */
    bool tierAdmits(std::size_t index);

    /** Chain hash of block @p index given the previous chain hash. */
    std::uint64_t chunkHash(std::uint64_t prev_hash,
                            std::span<const TokenId> chunk) const;

    /** Chain hashes of every full block of @p tokens. */
    std::vector<std::uint64_t>
    chainHashes(std::span<const TokenId> tokens) const;

    /** Take one block from free list or evict the LRU cached block. */
    BlockId acquireFreshBlock();

    /** Re-reference a cached block (removing it from the LRU if idle). */
    void refCachedBlock(BlockId id);

    /** Try to publish a just-completed block into the cache table. */
    void publishBlock(BlockId id, std::uint64_t hash);

    /** Drop one reference; recycle or park on the LRU at zero. */
    void unrefBlock(BlockId id);

    /** Publish a caller-less block parked directly on the LRU
     *  (preload / prefetch placement). */
    void publishEvictable(BlockId id, std::uint64_t hash);
};

} // namespace agentsim::kv

#endif // AGENTSIM_KV_BLOCK_MANAGER_HH
