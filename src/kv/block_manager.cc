#include "kv/block_manager.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace agentsim::kv
{

BlockManager::BlockManager(const BlockManagerConfig &config)
    : config_(config)
{
    if (config_.numBlocks <= 0)
        AGENTSIM_FATAL("KV pool needs at least one block");
    if (config_.blockSize <= 0)
        AGENTSIM_FATAL("KV block size must be positive");
    if (config_.hostCacheBlocks < 0)
        AGENTSIM_FATAL("negative host cache size");

    blocks_.resize(static_cast<std::size_t>(config_.numBlocks));
    freeList_.reserve(blocks_.size());
    // Pop order: ascending ids first (cosmetic determinism).
    for (std::int64_t i = config_.numBlocks - 1; i >= 0; --i)
        freeList_.push_back(static_cast<BlockId>(i));
}

std::uint64_t
BlockManager::chunkHash(std::uint64_t prev_hash,
                        std::span<const TokenId> chunk) const
{
    std::uint64_t h = sim::hashMix(prev_hash ^ 0x9d5a3f7c1e284b69ULL);
    for (TokenId t : chunk)
        h = sim::hashCombine(h, t);
    return h;
}

std::int64_t
BlockManager::blocksNeeded(std::int64_t token_count) const
{
    return (token_count + config_.blockSize - 1) / config_.blockSize;
}

std::int64_t
BlockManager::availableBlocks() const
{
    return freeBlocks() + evictableBlocks();
}

std::int64_t
BlockManager::usedBlocks() const
{
    return config_.numBlocks - availableBlocks();
}

std::int64_t
BlockManager::seqTokens(SeqId seq_id) const
{
    auto it = seqs_.find(seq_id);
    AGENTSIM_ASSERT(it != seqs_.end(), "seqTokens of unknown sequence");
    return static_cast<std::int64_t>(it->second.tokens.size());
}

std::optional<PromptAlloc>
BlockManager::allocatePrompt(SeqId seq_id,
                             std::span<const TokenId> tokens)
{
    AGENTSIM_ASSERT(!seqs_.contains(seq_id),
                    "allocatePrompt: seq %llu already allocated",
                    static_cast<unsigned long long>(seq_id));
    AGENTSIM_ASSERT(!tokens.empty(), "allocatePrompt with empty prompt");

    const int bs = config_.blockSize;
    const std::int64_t n_tokens =
        static_cast<std::int64_t>(tokens.size());
    const std::int64_t n_full = n_tokens / bs;
    const std::int64_t n_blocks = blocksNeeded(n_tokens);

    // Phase 1: probe for the longest contiguous run of reusable full
    // blocks from position zero — GPU-cached (hit) or host-resident
    // (restore). No state is mutated.
    enum class Reuse
    {
        GpuHit,
        HostRestore,
    };
    struct Probe
    {
        Reuse kind;
        BlockId block; // valid for GpuHit
        std::uint64_t hash;
    };
    std::vector<std::uint64_t> hashes;
    std::vector<Probe> reuse;
    {
        std::uint64_t prev = 0;
        bool chain_alive = config_.enablePrefixCaching;
        for (std::int64_t b = 0; b < n_full; ++b) {
            const std::uint64_t h = chunkHash(
                prev, tokens.subspan(static_cast<std::size_t>(b * bs),
                                     static_cast<std::size_t>(bs)));
            hashes.push_back(h);
            prev = h;
            if (!chain_alive)
                continue;
            if (auto it = cacheTable_.find(h);
                it != cacheTable_.end()) {
                reuse.push_back({Reuse::GpuHit, it->second, h});
            } else if (hostCache_.contains(h)) {
                reuse.push_back(
                    {Reuse::HostRestore, BlockId{-1}, h});
            } else {
                chain_alive = false;
            }
        }
    }

    std::int64_t gpu_hits = 0;
    std::int64_t restores = 0;
    for (const auto &p : reuse) {
        if (p.kind == Reuse::GpuHit)
            ++gpu_hits;
        else
            ++restores;
    }
    if (config_.enablePrefixCaching) {
        stats_.lookupTokens += n_full * bs;
        stats_.hitTokens += gpu_hits * bs;
        stats_.restoredTokens += restores * bs;
    }

    // Phase 2: feasibility. GPU-hit blocks that are currently
    // evictable will be re-referenced, so they cannot double as
    // eviction victims. Restores need fresh blocks like misses.
    std::int64_t evictable_hits = 0;
    for (const auto &p : reuse) {
        if (p.kind == Reuse::GpuHit &&
            blocks_[static_cast<std::size_t>(p.block)].refCount == 0) {
            ++evictable_hits;
        }
    }
    const std::int64_t fresh_needed = n_blocks - gpu_hits;
    const std::int64_t fresh_available =
        freeBlocks() + evictableBlocks() - evictable_hits;
    if (fresh_needed > fresh_available)
        return std::nullopt;

    // Phase 3: commit. All GPU-hit blocks are re-referenced *first*:
    // a hit block idling on the eviction list must be pinned before
    // any acquireFreshBlock() call below may run the evictor, or the
    // eviction could pick a pending hit as its victim and alias one
    // physical block into two sequence positions.
    Seq seq;
    seq.tokens.assign(tokens.begin(), tokens.end());
    seq.chainHashes = hashes;
    seq.blocks.assign(static_cast<std::size_t>(n_blocks), BlockId{-1});

    for (std::size_t i = 0; i < reuse.size(); ++i) {
        if (reuse[i].kind == Reuse::GpuHit) {
            refCachedBlock(reuse[i].block);
            seq.blocks[i] = reuse[i].block;
        }
    }
    for (std::size_t i = 0; i < reuse.size(); ++i) {
        if (reuse[i].kind == Reuse::HostRestore) {
            // Restore from host: a fresh GPU block receives the
            // transferred contents and is re-published.
            const BlockId id = acquireFreshBlock();
            blocks_[static_cast<std::size_t>(id)].refCount = 1;
            seq.blocks[i] = id;
            publishBlock(id, reuse[i].hash);
        }
    }
    for (std::int64_t b = static_cast<std::int64_t>(reuse.size());
         b < n_blocks; ++b) {
        const BlockId id = acquireFreshBlock();
        blocks_[static_cast<std::size_t>(id)].refCount = 1;
        seq.blocks[static_cast<std::size_t>(b)] = id;
        // Full blocks become immediately publishable: their KV will be
        // computed by the upcoming prefill.
        if (config_.enablePrefixCaching && b < n_full)
            publishBlock(id, hashes[static_cast<std::size_t>(b)]);
    }

    PromptAlloc result;
    result.cachedTokens = gpu_hits * bs;
    result.restoredTokens = restores * bs;
    result.freshBlocks = fresh_needed;
    seqs_.emplace(seq_id, std::move(seq));
    // The restore+hit interleaving is the risky path; verify the
    // whole pool after it (cheap relative to the PCIe transfer the
    // restore itself models).
    if (restores > 0 && gpu_hits > 0)
        checkInvariants();
    return result;
}

bool
BlockManager::appendToken(SeqId seq_id, TokenId token)
{
    auto it = seqs_.find(seq_id);
    AGENTSIM_ASSERT(it != seqs_.end(),
                    "appendToken to unknown sequence");
    Seq &seq = it->second;
    const int bs = config_.blockSize;

    const std::int64_t pos = static_cast<std::int64_t>(seq.tokens.size());
    if (pos % bs == 0) {
        // Crossing into a new block.
        if (availableBlocks() == 0)
            return false;
        const BlockId id = acquireFreshBlock();
        blocks_[static_cast<std::size_t>(id)].refCount = 1;
        seq.blocks.push_back(id);
    }

    seq.tokens.push_back(token);
    const std::int64_t new_size =
        static_cast<std::int64_t>(seq.tokens.size());
    if (new_size % bs == 0) {
        const std::uint64_t prev =
            seq.chainHashes.empty() ? 0 : seq.chainHashes.back();
        const std::uint64_t h = chunkHash(
            prev,
            std::span<const TokenId>(seq.tokens)
                .subspan(static_cast<std::size_t>(new_size - bs),
                         static_cast<std::size_t>(bs)));
        seq.chainHashes.push_back(h);
        if (config_.enablePrefixCaching)
            publishBlock(seq.blocks.back(), h);
    }
    return true;
}

ChainExport
BlockManager::exportChain(SeqId seq_id) const
{
    auto it = seqs_.find(seq_id);
    AGENTSIM_ASSERT(it != seqs_.end(),
                    "exportChain of unknown sequence");
    ChainExport out;
    out.tokens = it->second.tokens;
    out.blocks = static_cast<std::int64_t>(it->second.blocks.size());
    return out;
}

std::optional<PromptAlloc>
BlockManager::importChain(SeqId seq_id, std::span<const TokenId> tokens)
{
    // An import is a prompt allocation in disguise: the chain hashes
    // are content-derived, so any prefix already resident here (same
    // workflow instructions, shared conversation head) is reused and
    // never crosses the interconnect.
    return allocatePrompt(seq_id, tokens);
}

void
BlockManager::release(SeqId seq_id)
{
    auto it = seqs_.find(seq_id);
    AGENTSIM_ASSERT(it != seqs_.end(), "release of unknown sequence");
    for (BlockId id : it->second.blocks)
        unrefBlock(id);
    seqs_.erase(it);
}

void
BlockManager::reset()
{
    for (auto &b : blocks_)
        b = Block{};
    freeList_.clear();
    for (std::int64_t i = config_.numBlocks - 1; i >= 0; --i)
        freeList_.push_back(static_cast<BlockId>(i));
    cacheTable_.clear();
    evictable_.clear();
    seqs_.clear();
    hostCache_.clear();
    hostLru_.clear();
}

std::int64_t
BlockManager::preloadPrefix(std::span<const TokenId> tokens)
{
    AGENTSIM_ASSERT(config_.enablePrefixCaching,
                    "preload requires prefix caching");
    const int bs = config_.blockSize;
    const std::int64_t n_full =
        static_cast<std::int64_t>(tokens.size()) / bs;
    if (n_full > config_.numBlocks)
        return -1;

    std::int64_t populated = 0;
    std::uint64_t prev = 0;
    for (std::int64_t b = 0; b < n_full; ++b) {
        const std::uint64_t h = chunkHash(
            prev, tokens.subspan(static_cast<std::size_t>(b * bs),
                                 static_cast<std::size_t>(bs)));
        prev = h;
        if (cacheTable_.contains(h))
            continue; // already resident
        if (availableBlocks() == 0)
            return populated; // pool full: partial preload
        const BlockId id = acquireFreshBlock();
        Block &block = blocks_[static_cast<std::size_t>(id)];
        publishBlock(id, h);
        // Immediately evictable: owned by the cache, not a sequence.
        block.lruKey = config_.evictionPolicy == EvictionPolicy::Lru
                           ? lruCounter_++
                           : block.publishKey;
        evictable_.emplace(block.lruKey, id);
        ++populated;
    }
    return populated;
}

BlockId
BlockManager::acquireFreshBlock()
{
    ++stats_.allocatedBlocks;
    if (!freeList_.empty()) {
        const BlockId id = freeList_.back();
        freeList_.pop_back();
        Block &b = blocks_[static_cast<std::size_t>(id)];
        b = Block{};
        return id;
    }
    AGENTSIM_ASSERT(!evictable_.empty(),
                    "acquireFreshBlock with no candidates");
    // Evict the lowest-key cached block (LRU or FIFO order).
    auto victim = evictable_.begin();
    const BlockId id = victim->second;
    evictable_.erase(victim);
    Block &b = blocks_[static_cast<std::size_t>(id)];
    if (b.inTable) {
        cacheTable_.erase(b.hash);
        // The contents spill to the host tier instead of vanishing.
        if (config_.hostCacheBlocks > 0)
            spillToHost(b.hash);
    }
    ++stats_.evictions;
    b = Block{};
    return id;
}

void
BlockManager::refCachedBlock(BlockId id)
{
    Block &b = blocks_[static_cast<std::size_t>(id)];
    if (b.refCount == 0) {
        AGENTSIM_ASSERT(b.lruKey != 0, "idle cached block not on LRU");
        evictable_.erase(b.lruKey);
        b.lruKey = 0;
    }
    ++b.refCount;
}

void
BlockManager::publishBlock(BlockId id, std::uint64_t hash)
{
    Block &b = blocks_[static_cast<std::size_t>(id)];
    b.hash = hash;
    // First writer wins; duplicate content in another live block simply
    // stays private to its sequence.
    auto [it, inserted] = cacheTable_.try_emplace(hash, id);
    (void)it;
    b.inTable = inserted;
    if (inserted)
        b.publishKey = lruCounter_++;
}

void
BlockManager::unrefBlock(BlockId id)
{
    Block &b = blocks_[static_cast<std::size_t>(id)];
    AGENTSIM_ASSERT(b.refCount > 0, "unref of unreferenced block");
    if (--b.refCount > 0)
        return;
    if (b.inTable) {
        // Park on the eviction list; the contents stay reusable until
        // evicted. The ordering key realizes the configured policy.
        b.lruKey = config_.evictionPolicy == EvictionPolicy::Lru
                       ? lruCounter_++
                       : b.publishKey;
        evictable_.emplace(b.lruKey, id);
    } else {
        freeList_.push_back(id);
    }
}

void
BlockManager::spillToHost(std::uint64_t hash)
{
    if (auto it = hostCache_.find(hash); it != hostCache_.end()) {
        // Refresh recency.
        hostLru_.erase(it->second);
        it->second = lruCounter_++;
        hostLru_.emplace(it->second, hash);
        return;
    }
    if (static_cast<std::int64_t>(hostCache_.size()) >=
        config_.hostCacheBlocks) {
        // Evict the oldest host entry.
        auto oldest = hostLru_.begin();
        hostCache_.erase(oldest->second);
        hostLru_.erase(oldest);
    }
    const std::uint64_t key = lruCounter_++;
    hostCache_.emplace(hash, key);
    hostLru_.emplace(key, hash);
}

void
BlockManager::checkInvariants() const
{
    std::int64_t referenced = 0;
    for (const auto &b : blocks_) {
        if (b.refCount > 0)
            ++referenced;
    }
    const auto free_count = static_cast<std::int64_t>(freeList_.size());
    const auto evict_count =
        static_cast<std::int64_t>(evictable_.size());
    AGENTSIM_ASSERT(referenced + free_count + evict_count ==
                        config_.numBlocks,
                    "block accounting broken: %lld + %lld + %lld != %lld",
                    static_cast<long long>(referenced),
                    static_cast<long long>(free_count),
                    static_cast<long long>(evict_count),
                    static_cast<long long>(config_.numBlocks));
    for (const auto &[key, id] : evictable_) {
        const Block &b = blocks_[static_cast<std::size_t>(id)];
        AGENTSIM_ASSERT(b.refCount == 0 && b.lruKey == key &&
                            b.inTable,
                        "corrupt evictable entry");
    }
    for (const auto &[hash, id] : cacheTable_) {
        const Block &b = blocks_[static_cast<std::size_t>(id)];
        AGENTSIM_ASSERT(b.inTable && b.hash == hash,
                        "corrupt cache-table entry");
    }
    AGENTSIM_ASSERT(hostCache_.size() == hostLru_.size(),
                    "host tier maps out of sync");
    AGENTSIM_ASSERT(static_cast<std::int64_t>(hostCache_.size()) <=
                        std::max<std::int64_t>(config_.hostCacheBlocks,
                                               0),
                    "host tier over capacity");
    for (const auto &[key, hash] : hostLru_) {
        auto it = hostCache_.find(hash);
        AGENTSIM_ASSERT(it != hostCache_.end() && it->second == key,
                        "corrupt host LRU entry");
    }
}

} // namespace agentsim::kv
