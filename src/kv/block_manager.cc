#include "kv/block_manager.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace agentsim::kv
{

BlockManager::BlockManager(const BlockManagerConfig &config)
    : config_(config)
{
    if (config_.numBlocks <= 0)
        AGENTSIM_FATAL("KV pool needs at least one block");
    if (config_.blockSize <= 0)
        AGENTSIM_FATAL("KV block size must be positive");
    if (config_.hostCacheBlocks < 0)
        AGENTSIM_FATAL("negative host cache size");
    if (config_.nvmeCacheBlocks < 0)
        AGENTSIM_FATAL("negative NVMe cache size");
    if (config_.dramAdmitProb < 0.0 || config_.dramAdmitProb > 1.0)
        AGENTSIM_FATAL("dramAdmitProb outside [0, 1]");
    if (config_.nvmeAdmitProb < 0.0 || config_.nvmeAdmitProb > 1.0)
        AGENTSIM_FATAL("nvmeAdmitProb outside [0, 1]");

    blocks_.resize(static_cast<std::size_t>(config_.numBlocks));
    freeList_.reserve(blocks_.size());
    // Pop order: ascending ids first (cosmetic determinism).
    for (std::int64_t i = config_.numBlocks - 1; i >= 0; --i)
        freeList_.push_back(static_cast<BlockId>(i));

    tiers_[0].capacity = config_.hostCacheBlocks;
    tiers_[0].admitProb = config_.dramAdmitProb;
    tiers_[0].mode = config_.dramMode;
    tiers_[1].capacity = config_.nvmeCacheBlocks;
    tiers_[1].admitProb = config_.nvmeAdmitProb;
    tiers_[1].mode = config_.nvmeMode;

    // The migration stream exists only when a probabilistic decision
    // can actually occur; deterministic configs never construct (or
    // advance) it, so they stay bit-identical to a build without it.
    const bool probabilistic =
        (tiers_[0].enabled() && tiers_[0].admitProb < 1.0) ||
        (tiers_[1].enabled() && tiers_[1].admitProb < 1.0);
    if (probabilistic)
        tierRng_.emplace(config_.seed, "kv.tier");
}

std::uint64_t
BlockManager::chunkHash(std::uint64_t prev_hash,
                        std::span<const TokenId> chunk) const
{
    std::uint64_t h = sim::hashMix(prev_hash ^ 0x9d5a3f7c1e284b69ULL);
    for (TokenId t : chunk)
        h = sim::hashCombine(h, t);
    return h;
}

std::vector<std::uint64_t>
BlockManager::chainHashes(std::span<const TokenId> tokens) const
{
    const int bs = config_.blockSize;
    const std::int64_t n_full =
        static_cast<std::int64_t>(tokens.size()) / bs;
    std::vector<std::uint64_t> hashes;
    hashes.reserve(static_cast<std::size_t>(n_full));
    std::uint64_t prev = 0;
    for (std::int64_t b = 0; b < n_full; ++b) {
        prev = chunkHash(
            prev, tokens.subspan(static_cast<std::size_t>(b * bs),
                                 static_cast<std::size_t>(bs)));
        hashes.push_back(prev);
    }
    return hashes;
}

std::int64_t
BlockManager::blocksNeeded(std::int64_t token_count) const
{
    return (token_count + config_.blockSize - 1) / config_.blockSize;
}

std::int64_t
BlockManager::availableBlocks() const
{
    return freeBlocks() + evictableBlocks();
}

std::int64_t
BlockManager::usedBlocks() const
{
    return config_.numBlocks - availableBlocks();
}

std::int64_t
BlockManager::seqTokens(SeqId seq_id) const
{
    auto it = seqs_.find(seq_id);
    AGENTSIM_ASSERT(it != seqs_.end(), "seqTokens of unknown sequence");
    return static_cast<std::int64_t>(it->second.tokens.size());
}

std::optional<PromptAlloc>
BlockManager::allocatePrompt(SeqId seq_id,
                             std::span<const TokenId> tokens)
{
    AGENTSIM_ASSERT(!seqs_.contains(seq_id),
                    "allocatePrompt: seq %llu already allocated",
                    static_cast<unsigned long long>(seq_id));
    AGENTSIM_ASSERT(!tokens.empty(), "allocatePrompt with empty prompt");

    const int bs = config_.blockSize;
    const std::int64_t n_tokens =
        static_cast<std::int64_t>(tokens.size());
    const std::int64_t n_full = n_tokens / bs;
    const std::int64_t n_blocks = blocksNeeded(n_tokens);

    // Phase 1: probe for the longest contiguous run of reusable full
    // blocks from position zero — GPU-cached (hit) or spill-tier
    // resident (restore; DRAM probed before NVMe so a dual-resident
    // block restores at the cheaper price). No state is mutated.
    enum class Reuse
    {
        GpuHit,
        TierRestore,
    };
    struct Probe
    {
        Reuse kind;
        BlockId block; // valid for GpuHit
        std::uint64_t hash;
        std::size_t tier; // valid for TierRestore
    };
    std::vector<std::uint64_t> hashes;
    std::vector<Probe> reuse;
    {
        std::uint64_t prev = 0;
        bool chain_alive = config_.enablePrefixCaching;
        for (std::int64_t b = 0; b < n_full; ++b) {
            const std::uint64_t h = chunkHash(
                prev, tokens.subspan(static_cast<std::size_t>(b * bs),
                                     static_cast<std::size_t>(bs)));
            hashes.push_back(h);
            prev = h;
            if (!chain_alive)
                continue;
            if (auto it = cacheTable_.find(h);
                it != cacheTable_.end()) {
                reuse.push_back({Reuse::GpuHit, it->second, h, 0});
            } else if (tiers_[0].contains(h)) {
                reuse.push_back({Reuse::TierRestore, BlockId{-1}, h, 0});
            } else if (tiers_[1].contains(h)) {
                reuse.push_back({Reuse::TierRestore, BlockId{-1}, h, 1});
            } else {
                chain_alive = false;
            }
        }
    }

    std::int64_t gpu_hits = 0;
    std::int64_t dram_restores = 0;
    std::int64_t nvme_restores = 0;
    for (const auto &p : reuse) {
        if (p.kind == Reuse::GpuHit)
            ++gpu_hits;
        else if (p.tier == 0)
            ++dram_restores;
        else
            ++nvme_restores;
    }
    const std::int64_t restores = dram_restores + nvme_restores;
    if (config_.enablePrefixCaching) {
        stats_.lookupTokens += n_full * bs;
        stats_.hitTokens += gpu_hits * bs;
        stats_.restoredTokens += restores * bs;
        stats_.dram.restoredTokens += dram_restores * bs;
        stats_.nvme.restoredTokens += nvme_restores * bs;
    }

    // Phase 2: feasibility. GPU-hit blocks that are currently
    // evictable will be re-referenced, so they cannot double as
    // eviction victims. Restores need fresh blocks like misses.
    std::int64_t evictable_hits = 0;
    for (const auto &p : reuse) {
        if (p.kind == Reuse::GpuHit &&
            blocks_[static_cast<std::size_t>(p.block)].refCount == 0) {
            ++evictable_hits;
        }
    }
    const std::int64_t fresh_needed = n_blocks - gpu_hits;
    const std::int64_t fresh_available =
        freeBlocks() + evictableBlocks() - evictable_hits;
    if (fresh_needed > fresh_available)
        return std::nullopt;

    // Phase 3: commit. All GPU-hit blocks are re-referenced *first*:
    // a hit block idling on the eviction list must be pinned before
    // any acquireFreshBlock() call below may run the evictor, or the
    // eviction could pick a pending hit as its victim and alias one
    // physical block into two sequence positions.
    Seq seq;
    seq.tokens.assign(tokens.begin(), tokens.end());
    seq.chainHashes = hashes;
    seq.blocks.assign(static_cast<std::size_t>(n_blocks), BlockId{-1});

    for (std::size_t i = 0; i < reuse.size(); ++i) {
        if (reuse[i].kind == Reuse::GpuHit) {
            refCachedBlock(reuse[i].block);
            seq.blocks[i] = reuse[i].block;
        }
    }
    for (std::size_t i = 0; i < reuse.size(); ++i) {
        if (reuse[i].kind == Reuse::TierRestore) {
            // Restore from the spill tier: a fresh GPU block receives
            // the transferred contents and is re-published. The tier
            // entry is consumed per the tier's residency mode.
            const BlockId id = acquireFreshBlock();
            blocks_[static_cast<std::size_t>(id)].refCount = 1;
            seq.blocks[i] = id;
            publishBlock(id, reuse[i].hash);
            noteTierRestore(reuse[i].tier, reuse[i].hash);
        }
    }
    for (std::int64_t b = static_cast<std::int64_t>(reuse.size());
         b < n_blocks; ++b) {
        const BlockId id = acquireFreshBlock();
        blocks_[static_cast<std::size_t>(id)].refCount = 1;
        seq.blocks[static_cast<std::size_t>(b)] = id;
        // Full blocks become immediately publishable: their KV will be
        // computed by the upcoming prefill.
        if (config_.enablePrefixCaching && b < n_full)
            publishBlock(id, hashes[static_cast<std::size_t>(b)]);
    }

    PromptAlloc result;
    result.cachedTokens = gpu_hits * bs;
    result.restoredTokens = restores * bs;
    result.dramRestoredTokens = dram_restores * bs;
    result.nvmeRestoredTokens = nvme_restores * bs;
    result.freshBlocks = fresh_needed;
    seqs_.emplace(seq_id, std::move(seq));
    // The restore+hit interleaving is the risky path; verify the
    // whole pool after it (cheap relative to the PCIe transfer the
    // restore itself models).
    if (restores > 0 && gpu_hits > 0)
        checkInvariants();
    return result;
}

bool
BlockManager::appendToken(SeqId seq_id, TokenId token)
{
    auto it = seqs_.find(seq_id);
    AGENTSIM_ASSERT(it != seqs_.end(),
                    "appendToken to unknown sequence");
    Seq &seq = it->second;
    const int bs = config_.blockSize;

    const std::int64_t pos = static_cast<std::int64_t>(seq.tokens.size());
    if (pos % bs == 0) {
        // Crossing into a new block.
        if (availableBlocks() == 0)
            return false;
        const BlockId id = acquireFreshBlock();
        blocks_[static_cast<std::size_t>(id)].refCount = 1;
        seq.blocks.push_back(id);
    }

    seq.tokens.push_back(token);
    const std::int64_t new_size =
        static_cast<std::int64_t>(seq.tokens.size());
    if (new_size % bs == 0) {
        const std::uint64_t prev =
            seq.chainHashes.empty() ? 0 : seq.chainHashes.back();
        const std::uint64_t h = chunkHash(
            prev,
            std::span<const TokenId>(seq.tokens)
                .subspan(static_cast<std::size_t>(new_size - bs),
                         static_cast<std::size_t>(bs)));
        seq.chainHashes.push_back(h);
        if (config_.enablePrefixCaching)
            publishBlock(seq.blocks.back(), h);
    }
    return true;
}

ChainExport
BlockManager::exportChain(SeqId seq_id) const
{
    auto it = seqs_.find(seq_id);
    AGENTSIM_ASSERT(it != seqs_.end(),
                    "exportChain of unknown sequence");
    ChainExport out;
    out.tokens = it->second.tokens;
    return out;
}

std::optional<PromptAlloc>
BlockManager::importChain(SeqId seq_id, std::span<const TokenId> tokens)
{
    // An import is a prompt allocation in disguise: the chain hashes
    // are content-derived, so any prefix already resident here (same
    // workflow instructions, shared conversation head) is reused and
    // never crosses the interconnect.
    return allocatePrompt(seq_id, tokens);
}

void
BlockManager::release(SeqId seq_id)
{
    auto it = seqs_.find(seq_id);
    AGENTSIM_ASSERT(it != seqs_.end(), "release of unknown sequence");
    for (BlockId id : it->second.blocks)
        unrefBlock(id);
    seqs_.erase(it);
}

void
BlockManager::reset()
{
    for (auto &b : blocks_)
        b = Block{};
    freeList_.clear();
    for (std::int64_t i = config_.numBlocks - 1; i >= 0; --i)
        freeList_.push_back(static_cast<BlockId>(i));
    cacheTable_.clear();
    evictable_.clear();
    seqs_.clear();
    for (auto &tier : tiers_) {
        tier.entries.clear();
        tier.lru.clear();
    }
}

std::int64_t
BlockManager::preloadPrefix(std::span<const TokenId> tokens)
{
    AGENTSIM_ASSERT(config_.enablePrefixCaching,
                    "preload requires prefix caching");
    const int bs = config_.blockSize;
    const std::int64_t n_full =
        static_cast<std::int64_t>(tokens.size()) / bs;
    if (n_full > config_.numBlocks)
        return -1; // can never fit, even in an empty pool

    // Blocks of *this* prefix: every one already resident or placed
    // below. The eviction guard keeps them off the victim list so a
    // partial preload is always a contiguous, resident head — without
    // the guard, acquireFreshBlock() could silently cannibalize the
    // blocks this very loop just paid to transfer.
    std::unordered_set<BlockId> prefix_blocks;
    std::int64_t populated = 0;
    std::uint64_t prev = 0;
    for (std::int64_t b = 0; b < n_full; ++b) {
        const std::uint64_t h = chunkHash(
            prev, tokens.subspan(static_cast<std::size_t>(b * bs),
                                 static_cast<std::size_t>(bs)));
        prev = h;
        if (auto it = cacheTable_.find(h); it != cacheTable_.end()) {
            // Already resident. Shield it like a placed block, and
            // under LRU refresh its recency (a preload is an access).
            Block &block = blocks_[static_cast<std::size_t>(it->second)];
            if (block.refCount == 0 &&
                config_.evictionPolicy == EvictionPolicy::Lru) {
                evictable_.erase(block.lruKey);
                block.lruKey = lruCounter_++;
                evictable_.emplace(block.lruKey, it->second);
            }
            prefix_blocks.insert(it->second);
            continue;
        }
        if (availableBlocks() == 0)
            return populated; // pool full: honest partial preload
        if (freeList_.empty() &&
            prefix_blocks.contains(evictable_.begin()->second)) {
            // The only eviction victim left is part of this prefix:
            // placing one more block would un-place another.
            return populated;
        }
        const BlockId id = acquireFreshBlock();
        publishEvictable(id, h);
        prefix_blocks.insert(id);
        ++populated;
    }
    return populated;
}

std::int64_t
BlockManager::parkChain(std::span<const TokenId> tokens)
{
    if (!config_.enablePrefixCaching || !spillTiersEnabled())
        return 0;
    const auto hashes = chainHashes(tokens);
    std::int64_t parked = 0;
    // Tail first: the restore probe dies at the first missing block,
    // so the chain head must be the *youngest* tier entry — losing the
    // tail truncates, losing the head forfeits the whole chain.
    for (auto it = hashes.rbegin(); it != hashes.rend(); ++it) {
        auto entry = cacheTable_.find(*it);
        if (entry == cacheTable_.end())
            continue;
        const BlockId id = entry->second;
        Block &b = blocks_[static_cast<std::size_t>(id)];
        if (b.refCount > 0)
            continue; // pinned by a live sequence: not idle
        AGENTSIM_ASSERT(b.lruKey != 0, "idle cached block not on LRU");
        evictable_.erase(b.lruKey);
        cacheTable_.erase(entry);
        // Deliberate demotion bypasses the probabilistic filter.
        demoteFromGpu(b.hash, /*forced=*/true);
        freeList_.push_back(id);
        b = Block{};
        ++parked;
    }
    return parked;
}

PrefetchResult
BlockManager::prefetchChain(std::span<const TokenId> tokens)
{
    PrefetchResult out;
    if (!config_.enablePrefixCaching)
        return out;
    const int bs = config_.blockSize;
    const auto hashes = chainHashes(tokens);
    std::unordered_set<BlockId> placed;
    for (const std::uint64_t h : hashes) {
        if (cacheTable_.contains(h))
            continue; // already on the GPU
        std::size_t tier = kNumSpillTiers;
        if (tiers_[0].contains(h))
            tier = 0;
        else if (tiers_[1].contains(h))
            tier = 1;
        if (tier == kNumSpillTiers)
            break; // chain dead beyond this point
        if (availableBlocks() == 0)
            break; // pool full: promote what we could
        if (freeList_.empty() &&
            placed.contains(evictable_.begin()->second))
            break; // would cannibalize a block promoted just now
        const BlockId id = acquireFreshBlock();
        publishEvictable(id, h);
        placed.insert(id);
        noteTierRestore(tier, h);
        ++out.blocks;
        if (tier == 0) {
            out.dramTokens += bs;
            stats_.dram.restoredTokens += bs;
        } else {
            out.nvmeTokens += bs;
            stats_.nvme.restoredTokens += bs;
        }
        stats_.restoredTokens += bs;
    }
    return out;
}

BlockId
BlockManager::acquireFreshBlock()
{
    ++stats_.allocatedBlocks;
    if (!freeList_.empty()) {
        const BlockId id = freeList_.back();
        freeList_.pop_back();
        Block &b = blocks_[static_cast<std::size_t>(id)];
        b = Block{};
        return id;
    }
    AGENTSIM_ASSERT(!evictable_.empty(),
                    "acquireFreshBlock with no candidates");
    // Evict the lowest-key cached block (LRU or FIFO order).
    auto victim = evictable_.begin();
    const BlockId id = victim->second;
    evictable_.erase(victim);
    Block &b = blocks_[static_cast<std::size_t>(id)];
    if (b.inTable) {
        cacheTable_.erase(b.hash);
        // The contents demote into the spill hierarchy instead of
        // vanishing (subject to probabilistic admission).
        demoteFromGpu(b.hash, /*forced=*/false);
    }
    ++stats_.evictions;
    b = Block{};
    return id;
}

void
BlockManager::refCachedBlock(BlockId id)
{
    Block &b = blocks_[static_cast<std::size_t>(id)];
    if (b.refCount == 0) {
        AGENTSIM_ASSERT(b.lruKey != 0, "idle cached block not on LRU");
        evictable_.erase(b.lruKey);
        b.lruKey = 0;
    }
    ++b.refCount;
}

void
BlockManager::publishBlock(BlockId id, std::uint64_t hash)
{
    Block &b = blocks_[static_cast<std::size_t>(id)];
    b.hash = hash;
    // First writer wins; duplicate content in another live block simply
    // stays private to its sequence.
    auto [it, inserted] = cacheTable_.try_emplace(hash, id);
    (void)it;
    b.inTable = inserted;
    if (inserted)
        b.publishKey = lruCounter_++;
}

void
BlockManager::publishEvictable(BlockId id, std::uint64_t hash)
{
    Block &block = blocks_[static_cast<std::size_t>(id)];
    publishBlock(id, hash);
    AGENTSIM_ASSERT(block.inTable,
                    "publishEvictable of already-cached hash");
    // Immediately evictable: owned by the cache, not a sequence.
    block.lruKey = config_.evictionPolicy == EvictionPolicy::Lru
                       ? lruCounter_++
                       : block.publishKey;
    evictable_.emplace(block.lruKey, id);
}

void
BlockManager::unrefBlock(BlockId id)
{
    Block &b = blocks_[static_cast<std::size_t>(id)];
    AGENTSIM_ASSERT(b.refCount > 0, "unref of unreferenced block");
    if (--b.refCount > 0)
        return;
    if (b.inTable) {
        // Park on the eviction list; the contents stay reusable until
        // evicted. The ordering key realizes the configured policy.
        b.lruKey = config_.evictionPolicy == EvictionPolicy::Lru
                       ? lruCounter_++
                       : b.publishKey;
        evictable_.emplace(b.lruKey, id);
    } else {
        freeList_.push_back(id);
    }
}

TierStats &
BlockManager::tierStats(std::size_t index)
{
    return index == 0 ? stats_.dram : stats_.nvme;
}

bool
BlockManager::tierAdmits(std::size_t index)
{
    const double p = tiers_[index].admitProb;
    // Degenerate probabilities never draw, so configs without real
    // randomness leave the stream untouched (and unconstructed).
    if (p >= 1.0)
        return true;
    if (p <= 0.0)
        return false;
    AGENTSIM_ASSERT(tierRng_.has_value(),
                    "probabilistic tier without migration stream");
    return tierRng_->bernoulli(p);
}

void
BlockManager::demoteFromGpu(std::uint64_t hash, bool forced)
{
    for (std::size_t i = 0; i < kNumSpillTiers; ++i) {
        if (!tiers_[i].enabled())
            continue;
        if (forced || tierAdmits(i))
            spillToTier(i, hash);
        else
            ++tierStats(i).rejectedBlocks;
        return;
    }
}

void
BlockManager::spillToTier(std::size_t index, std::uint64_t hash)
{
    SpillTier &tier = tiers_[index];
    AGENTSIM_ASSERT(tier.enabled(), "spill into disabled tier");
    if (auto it = tier.entries.find(hash); it != tier.entries.end()) {
        // Already resident: refresh recency.
        tier.lru.erase(it->second);
        it->second = lruCounter_++;
        tier.lru.emplace(it->second, hash);
        return;
    }
    if (static_cast<std::int64_t>(tier.entries.size()) >=
        tier.capacity) {
        // Capacity victim sinks into the next enabled tier (through
        // its own admission filter) or falls out of the hierarchy.
        auto oldest = tier.lru.begin();
        const std::uint64_t victim = oldest->second;
        tier.entries.erase(victim);
        tier.lru.erase(oldest);
        ++tierStats(index).evictedBlocks;
        for (std::size_t next = index + 1; next < kNumSpillTiers;
             ++next) {
            if (!tiers_[next].enabled())
                continue;
            if (tierAdmits(next))
                spillToTier(next, victim);
            else
                ++tierStats(next).rejectedBlocks;
            break;
        }
    }
    const std::uint64_t key = lruCounter_++;
    tier.entries.emplace(hash, key);
    tier.lru.emplace(key, hash);
    ++tierStats(index).demotedBlocks;
}

void
BlockManager::noteTierRestore(std::size_t index, std::uint64_t hash)
{
    SpillTier &tier = tiers_[index];
    auto it = tier.entries.find(hash);
    if (it == tier.entries.end())
        return; // pushed out by demotions earlier in this commit
    if (tier.mode == TierMode::Exclusive) {
        // Reclaim: the contents now live on the GPU; keeping the tier
        // copy would waste capacity on a duplicate whose recency
        // never updates (the pre-tier design's exact bug).
        tier.lru.erase(it->second);
        tier.entries.erase(it);
    } else {
        // Inclusive: keep the copy, but mark it as just-used so cold
        // entries are evicted before it.
        tier.lru.erase(it->second);
        it->second = lruCounter_++;
        tier.lru.emplace(it->second, hash);
    }
}

void
BlockManager::checkInvariants() const
{
    std::int64_t referenced = 0;
    for (const auto &b : blocks_) {
        if (b.refCount > 0)
            ++referenced;
    }
    const auto free_count = static_cast<std::int64_t>(freeList_.size());
    const auto evict_count =
        static_cast<std::int64_t>(evictable_.size());
    AGENTSIM_ASSERT(referenced + free_count + evict_count ==
                        config_.numBlocks,
                    "block accounting broken: %lld + %lld + %lld != %lld",
                    static_cast<long long>(referenced),
                    static_cast<long long>(free_count),
                    static_cast<long long>(evict_count),
                    static_cast<long long>(config_.numBlocks));
    for (const auto &[key, id] : evictable_) {
        const Block &b = blocks_[static_cast<std::size_t>(id)];
        AGENTSIM_ASSERT(b.refCount == 0 && b.lruKey == key &&
                            b.inTable,
                        "corrupt evictable entry");
    }
    for (const auto &[hash, id] : cacheTable_) {
        const Block &b = blocks_[static_cast<std::size_t>(id)];
        AGENTSIM_ASSERT(b.inTable && b.hash == hash,
                        "corrupt cache-table entry");
    }
    for (std::size_t i = 0; i < kNumSpillTiers; ++i) {
        const SpillTier &tier = tiers_[i];
        AGENTSIM_ASSERT(tier.entries.size() == tier.lru.size(),
                        "tier %zu maps out of sync", i);
        AGENTSIM_ASSERT(static_cast<std::int64_t>(tier.entries.size()) <=
                            std::max<std::int64_t>(tier.capacity, 0),
                        "tier %zu over capacity", i);
        for (const auto &[key, hash] : tier.lru) {
            auto it = tier.entries.find(hash);
            AGENTSIM_ASSERT(it != tier.entries.end() &&
                                it->second == key,
                            "corrupt tier %zu LRU entry", i);
        }
    }
}

} // namespace agentsim::kv
