#include "stats/pareto.hh"

#include <algorithm>

namespace agentsim::stats
{

bool
dominates(const DesignPoint &a, const DesignPoint &b)
{
    const bool no_worse = a.cost <= b.cost && a.quality >= b.quality;
    const bool better = a.cost < b.cost || a.quality > b.quality;
    return no_worse && better;
}

std::vector<DesignPoint>
paretoFrontier(const std::vector<DesignPoint> &points)
{
    std::vector<DesignPoint> sorted = points;
    std::sort(sorted.begin(), sorted.end(),
              [](const DesignPoint &a, const DesignPoint &b) {
                  if (a.cost != b.cost)
                      return a.cost < b.cost;
                  return a.quality > b.quality;
              });

    std::vector<DesignPoint> frontier;
    double best_quality = -1e300;
    for (const auto &p : sorted) {
        if (p.quality > best_quality) {
            frontier.push_back(p);
            best_quality = p.quality;
        }
    }
    return frontier;
}

} // namespace agentsim::stats
