/**
 * @file
 * Log-linear (HDR-style) histogram with a bounded relative error and
 * tail-bucket exemplars.
 *
 * Buckets are laid out in powers-of-two octaves above a configured
 * floor, with m equal-width sub-buckets per octave. A value v in
 * octave e lands in a sub-bucket of width 2^e / m, and since v >= 2^e
 * the bucket's relative width is at most 1/m — so reporting the
 * bucket midpoint is within 1/(2m) of the true value. The constructor
 * takes the desired relative error and derives m = ceil(1 / (2 eps)),
 * which keeps quantile queries within eps across the whole dynamic
 * range using O(octaves * m) memory, unlike the fixed-bin
 * stats::Histogram whose error grows with the range.
 *
 * Tail exemplars: observations may carry an id (a request/span key).
 * The histogram retains the top-K observations by value, so a p99
 * bucket can name the concrete requests that landed in it.
 */

#ifndef AGENTSIM_STATS_HDR_HISTOGRAM_HH
#define AGENTSIM_STATS_HDR_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace agentsim::stats
{

/** One retained tail observation (value + caller-supplied id). */
struct HdrExemplar {
    double value = 0.0;
    std::uint64_t id = 0;
};

class HdrHistogram
{
  public:
    /**
     * @param min_value smallest distinguishable value (> 0); smaller
     *        positive observations clamp into the first bucket.
     * @param max_value largest trackable value (> min_value); larger
     *        observations saturate into the top bucket and are
     *        tallied by overflow().
     * @param rel_error bound on the relative quantile error in
     *        (0, 0.5]; e.g. 0.01 keeps every quantile within 1%.
     * @param max_exemplars top-K observations (by value) retained
     *        with their ids; 0 disables exemplar tracking.
     */
    HdrHistogram(double min_value, double max_value, double rel_error,
                 std::size_t max_exemplars = 0);

    /** Record one observation (id links back to a request/span). */
    void add(double x, std::uint64_t id = 0);

    std::size_t count() const { return total_; }
    std::size_t overflow() const { return overflow_; }
    double sum() const { return sum_; }
    double min() const { return total_ > 0 ? min_ : 0.0; }
    double max() const { return total_ > 0 ? max_ : 0.0; }
    double mean() const
    {
        return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
    }

    /**
     * Type-1 empirical quantile @p q in [0, 1], reported as the
     * midpoint of the bucket holding that rank (within relError() of
     * the true order statistic). Recorded min/max are exact.
     */
    double quantile(double q) const;

    /** Configured relative-error bound (<= the requested one). */
    double relError() const { return 0.5 / static_cast<double>(subBuckets_); }

    std::size_t buckets() const { return counts_.size(); }
    std::size_t binCount(std::size_t i) const { return counts_[i]; }
    /** Inclusive lower edge of bucket @p i. */
    double binLow(std::size_t i) const;
    /** Exclusive upper edge of bucket @p i. */
    double binHigh(std::size_t i) const;

    /**
     * Retained top-K observations, largest value first. Ties keep the
     * earlier observation.
     */
    std::vector<HdrExemplar> tailExemplars() const;

    /**
     * ASCII bar chart over the occupied bucket range (one row per
     * non-empty coarse row, like stats::Histogram::render), used by
     * the distribution figures.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double minValue_;
    double maxValue_;
    std::size_t subBuckets_; ///< m: sub-buckets per power-of-two octave.
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
    std::size_t overflow_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;

    std::size_t maxExemplars_;
    /** Min-heap on value: the weakest retained exemplar is at [0]. */
    std::vector<HdrExemplar> exemplars_;

    std::size_t bucketIndex(double x) const;
    void offerExemplar(double x, std::uint64_t id);
};

} // namespace agentsim::stats

#endif // AGENTSIM_STATS_HDR_HISTOGRAM_HH
