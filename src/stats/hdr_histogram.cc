#include "stats/hdr_histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace agentsim::stats
{

namespace
{

bool
exemplarWeaker(const HdrExemplar &a, const HdrExemplar &b)
{
    // Min-heap on value so the weakest retained exemplar sits at the
    // root; on equal values prefer evicting the later arrival (higher
    // insertion order is not tracked, so equal values stay stable via
    // strict comparison).
    return a.value > b.value;
}

} // namespace

HdrHistogram::HdrHistogram(double min_value, double max_value,
                           double rel_error, std::size_t max_exemplars)
    : minValue_(min_value), maxValue_(max_value),
      maxExemplars_(max_exemplars)
{
    AGENTSIM_ASSERT(min_value > 0.0, "hdr floor must be positive");
    AGENTSIM_ASSERT(max_value > min_value, "hdr range must be non-empty");
    AGENTSIM_ASSERT(rel_error > 0.0 && rel_error <= 0.5,
                    "hdr relative error must lie in (0, 0.5]");
    subBuckets_ = static_cast<std::size_t>(
        std::ceil(1.0 / (2.0 * rel_error)));
    const auto octaves = static_cast<std::size_t>(
        std::ceil(std::log2(max_value / min_value)));
    counts_.assign((octaves + 1) * subBuckets_, 0);
    if (maxExemplars_ > 0)
        exemplars_.reserve(maxExemplars_);
}

std::size_t
HdrHistogram::bucketIndex(double x) const
{
    if (x <= minValue_)
        return 0;
    const double ratio = x / minValue_;
    const auto octave =
        static_cast<std::size_t>(std::floor(std::log2(ratio)));
    const double base = std::ldexp(1.0, static_cast<int>(octave));
    auto sub = static_cast<std::size_t>(
        (ratio / base - 1.0) * static_cast<double>(subBuckets_));
    sub = std::min(sub, subBuckets_ - 1);
    return std::min(octave * subBuckets_ + sub, counts_.size() - 1);
}

void
HdrHistogram::add(double x, std::uint64_t id)
{
    // Values beyond the configured ceiling saturate into the top
    // bucket (and are tallied) rather than being dropped: quantiles
    // then under-report the extreme tail at a known place instead of
    // silently excluding it. min/max/sum/mean stay exact.
    if (x > maxValue_)
        ++overflow_;
    if (total_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++counts_[bucketIndex(std::min(x, maxValue_))];
    ++total_;
    sum_ += x;
    offerExemplar(x, id);
}

void
HdrHistogram::offerExemplar(double x, std::uint64_t id)
{
    if (maxExemplars_ == 0)
        return;
    if (exemplars_.size() < maxExemplars_) {
        exemplars_.push_back({x, id});
        std::push_heap(exemplars_.begin(), exemplars_.end(),
                       exemplarWeaker);
        return;
    }
    if (x <= exemplars_.front().value)
        return; // weaker than everything retained
    std::pop_heap(exemplars_.begin(), exemplars_.end(), exemplarWeaker);
    exemplars_.back() = {x, id};
    std::push_heap(exemplars_.begin(), exemplars_.end(), exemplarWeaker);
}

double
HdrHistogram::binLow(std::size_t i) const
{
    const std::size_t octave = i / subBuckets_;
    const std::size_t sub = i % subBuckets_;
    const double base =
        minValue_ * std::ldexp(1.0, static_cast<int>(octave));
    return base * (1.0 + static_cast<double>(sub) /
                             static_cast<double>(subBuckets_));
}

double
HdrHistogram::binHigh(std::size_t i) const
{
    const std::size_t octave = i / subBuckets_;
    const std::size_t sub = i % subBuckets_;
    const double base =
        minValue_ * std::ldexp(1.0, static_cast<int>(octave));
    return base * (1.0 + static_cast<double>(sub + 1) /
                             static_cast<double>(subBuckets_));
}

double
HdrHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0.0;
    AGENTSIM_ASSERT(q >= 0.0 && q <= 1.0, "quantile outside [0, 1]");
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;
    const auto rank = static_cast<std::size_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(total_))));
    std::size_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            // Midpoint of the bucket, clamped to the observed range
            // so sparse tails never report beyond the recorded max.
            const double mid = 0.5 * (binLow(i) + binHigh(i));
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

std::vector<HdrExemplar>
HdrHistogram::tailExemplars() const
{
    std::vector<HdrExemplar> out = exemplars_;
    std::sort(out.begin(), out.end(),
              [](const HdrExemplar &a, const HdrExemplar &b) {
                  return a.value > b.value;
              });
    return out;
}

std::string
HdrHistogram::render(std::size_t width) const
{
    std::string out;
    if (total_ == 0)
        return out;
    // Collapse to one row per octave-quarter so the chart stays
    // readable at tight error bounds (m can be 50+ sub-buckets).
    const std::size_t group = std::max<std::size_t>(1, subBuckets_ / 4);
    std::size_t first = counts_.size();
    std::size_t last = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] > 0) {
            first = std::min(first, i);
            last = std::max(last, i);
        }
    }
    first = (first / group) * group;
    std::size_t peak = 0;
    for (std::size_t i = first; i <= last; i += group) {
        std::size_t row = 0;
        for (std::size_t j = i; j < std::min(i + group, counts_.size());
             ++j)
            row += counts_[j];
        peak = std::max(peak, row);
    }
    char line[160];
    for (std::size_t i = first; i <= last; i += group) {
        std::size_t row = 0;
        for (std::size_t j = i; j < std::min(i + group, counts_.size());
             ++j)
            row += counts_[j];
        const std::size_t hi_bucket =
            std::min(i + group, counts_.size()) - 1;
        const auto bar = static_cast<std::size_t>(
            peak > 0 ? row * width / peak : 0);
        std::snprintf(line, sizeof line, "  [%8.3f, %8.3f) %6zu |",
                      binLow(i), binHigh(hi_bucket), row);
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    if (overflow_ > 0) {
        std::snprintf(line, sizeof line, "  overflow %6zu\n",
                      overflow_);
        out += line;
    }
    return out;
}

} // namespace agentsim::stats
