#include "stats/gauge.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace agentsim::stats
{

void
TimeWeightedGauge::set(sim::Tick now, double value)
{
    if (!started_) {
        started_ = true;
        start_ = now;
        last_ = now;
    }
    AGENTSIM_ASSERT(now >= last_, "gauge time went backwards");
    weightedSum_ += value_ * static_cast<double>(now - last_);
    last_ = now;
    value_ = value;
    max_ = std::max(max_, value);
    windowMax_ = std::max(windowMax_, value);
}

double
TimeWeightedGauge::integral(sim::Tick now) const
{
    if (!started_)
        return 0.0;
    AGENTSIM_ASSERT(now >= last_, "gauge integral query in the past");
    return weightedSum_ + value_ * static_cast<double>(now - last_);
}

void
TimeWeightedGauge::mark()
{
    windowMax_ = value_;
}

void
TimeWeightedGauge::adjust(sim::Tick now, double delta)
{
    set(now, value_ + delta);
}

double
TimeWeightedGauge::average(sim::Tick now) const
{
    if (!started_ || now <= start_)
        return value_;
    AGENTSIM_ASSERT(now >= last_, "gauge average query in the past");
    const double total = weightedSum_ +
                         value_ * static_cast<double>(now - last_);
    return total / static_cast<double>(now - start_);
}

} // namespace agentsim::stats
