/**
 * @file
 * Time-weighted gauge: tracks a piecewise-constant quantity (KV blocks
 * in use, batch size, GPU busy state) over virtual time and reports its
 * time-average and maximum. Used by the memory figures (Fig 12, 16).
 */

#ifndef AGENTSIM_STATS_GAUGE_HH
#define AGENTSIM_STATS_GAUGE_HH

#include "sim/types.hh"

namespace agentsim::stats
{

/**
 * Piecewise-constant value integrated over virtual time.
 *
 * Callers report every change via set(now, value); queries integrate
 * up to the supplied "now".
 */
class TimeWeightedGauge
{
  public:
    /** Record that the value becomes @p value at time @p now. */
    void set(sim::Tick now, double value);

    /** Add @p delta to the current value at time @p now. */
    void adjust(sim::Tick now, double delta);

    /** Current value. */
    double current() const { return value_; }

    /** Maximum value ever set. */
    double max() const { return max_; }

    /** Time-average over [start, now]; 0 if no time has elapsed. */
    double average(sim::Tick now) const;

    /** Integral of the value over [start, now] (value x ticks). */
    double integral(sim::Tick now) const;

    /**
     * Start a measurement window: maxSinceMark() then reports the
     * maximum over values set after this call (plus the current one).
     */
    void mark();

    /** Maximum value observed since the last mark(). */
    double maxSinceMark() const { return windowMax_; }

  private:
    double value_ = 0.0;
    double max_ = 0.0;
    double windowMax_ = 0.0;
    double weightedSum_ = 0.0;
    sim::Tick start_ = 0;
    sim::Tick last_ = 0;
    bool started_ = false;
};

} // namespace agentsim::stats

#endif // AGENTSIM_STATS_GAUGE_HH
