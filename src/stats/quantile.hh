/**
 * @file
 * Streaming quantile estimation for online SLO monitoring.
 *
 * P2Quantile implements the P² algorithm (Jain & Chlamtac, CACM '85):
 * a single quantile is tracked with five markers in O(1) memory and
 * O(1) time per observation — no sample buffer, so the SLO tracker can
 * watch TTFT/TBT/E2E percentiles over millions of requests without
 * growing with the run. For fewer than five observations the estimate
 * is exact (order statistics of the stored samples).
 */

#ifndef AGENTSIM_STATS_QUANTILE_HH
#define AGENTSIM_STATS_QUANTILE_HH

#include <array>
#include <cstddef>

namespace agentsim::stats
{

/**
 * P² estimator of a single quantile p in (0, 1).
 */
class P2Quantile
{
  public:
    /** Track the @p p quantile (e.g. 0.99 for the p99). */
    explicit P2Quantile(double p);

    /** Add one observation. */
    void add(double x);

    /**
     * Current estimate of the tracked quantile. Exact for fewer than
     * five observations; 0 before the first.
     */
    double value() const;

    /** Tracked quantile in (0, 1). */
    double quantile() const { return p_; }

    /** Observations seen so far. */
    std::size_t count() const { return count_; }

  private:
    double p_;
    std::size_t count_ = 0;
    /** Marker heights (estimates of the 0, p/2, p, (1+p)/2, 1
     *  quantiles once five observations have arrived). */
    std::array<double, 5> q_{};
    /** Actual marker positions (1-based observation ranks). */
    std::array<double, 5> n_{};
    /** Desired marker positions. */
    std::array<double, 5> target_{};
    /** Desired-position increments per observation. */
    std::array<double, 5> dtarget_{};

    /** Piecewise-parabolic (P²) height adjustment for marker @p i. */
    double parabolic(int i, double d) const;
    double linear(int i, int d) const;
};

} // namespace agentsim::stats

#endif // AGENTSIM_STATS_QUANTILE_HH
