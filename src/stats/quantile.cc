#include "stats/quantile.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace agentsim::stats
{

P2Quantile::P2Quantile(double p) : p_(p)
{
    AGENTSIM_ASSERT(p > 0.0 && p < 1.0,
                    "quantile must lie strictly inside (0, 1)");
    dtarget_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
}

double
P2Quantile::parabolic(int i, double d) const
{
    const auto ui = static_cast<std::size_t>(i);
    return q_[ui] +
           d / (n_[ui + 1] - n_[ui - 1]) *
               ((n_[ui] - n_[ui - 1] + d) * (q_[ui + 1] - q_[ui]) /
                    (n_[ui + 1] - n_[ui]) +
                (n_[ui + 1] - n_[ui] - d) * (q_[ui] - q_[ui - 1]) /
                    (n_[ui] - n_[ui - 1]));
}

double
P2Quantile::linear(int i, int d) const
{
    const auto ui = static_cast<std::size_t>(i);
    const auto uj = static_cast<std::size_t>(i + d);
    return q_[ui] + d * (q_[uj] - q_[ui]) / (n_[uj] - n_[ui]);
}

void
P2Quantile::add(double x)
{
    if (count_ < 5) {
        q_[count_++] = x;
        if (count_ == 5) {
            std::sort(q_.begin(), q_.end());
            for (std::size_t i = 0; i < 5; ++i) {
                n_[i] = static_cast<double>(i + 1);
                target_[i] = 1.0 + 4.0 * dtarget_[i];
            }
        }
        return;
    }
    ++count_;

    // Find the cell k such that q_[k] <= x < q_[k+1], growing the
    // extreme markers when x falls outside the current range.
    int k;
    if (x < q_[0]) {
        q_[0] = x;
        k = 0;
    } else if (x >= q_[4]) {
        q_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= q_[static_cast<std::size_t>(k + 1)])
            ++k;
    }

    for (std::size_t i = static_cast<std::size_t>(k + 1); i < 5; ++i)
        n_[i] += 1.0;
    for (std::size_t i = 0; i < 5; ++i)
        target_[i] += dtarget_[i];

    // Nudge the three interior markers toward their desired positions.
    for (int i = 1; i <= 3; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const double d = target_[ui] - n_[ui];
        if ((d >= 1.0 && n_[ui + 1] - n_[ui] > 1.0) ||
            (d <= -1.0 && n_[ui - 1] - n_[ui] < -1.0)) {
            const int dir = d >= 0 ? 1 : -1;
            const double candidate = parabolic(i, dir);
            if (q_[ui - 1] < candidate && candidate < q_[ui + 1])
                q_[ui] = candidate;
            else
                q_[ui] = linear(i, dir);
            n_[ui] += dir;
        }
    }
}

double
P2Quantile::value() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ < 5) {
        // Exact type-1 empirical quantile over the buffered
        // observations: the smallest stored sample whose empirical
        // CDF reaches p. Interpolating here would invent values never
        // observed (and, at n=1..2, badly misstate tail quantiles).
        std::array<double, 5> sorted = q_;
        std::sort(sorted.begin(),
                  sorted.begin() + static_cast<std::ptrdiff_t>(count_));
        const double scaled = p_ * static_cast<double>(count_);
        auto rank = static_cast<std::size_t>(std::ceil(scaled));
        if (rank == 0)
            rank = 1;
        rank = std::min(rank, count_);
        return sorted[rank - 1];
    }
    return q_[2];
}

} // namespace agentsim::stats
