#include "stats/summary.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/logging.hh"

namespace agentsim::stats
{

void
Summary::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
}

double
Summary::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
Summary::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
Summary::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

void
SampleSet::add(double x)
{
    values_.push_back(x);
    sortedValid_ = false;
}

double
SampleSet::mean() const
{
    if (values_.empty())
        return 0.0;
    return sum() / static_cast<double>(values_.size());
}

double
SampleSet::sum() const
{
    return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double
SampleSet::min() const
{
    AGENTSIM_ASSERT(!values_.empty(), "min of empty sample set");
    return *std::min_element(values_.begin(), values_.end());
}

double
SampleSet::max() const
{
    AGENTSIM_ASSERT(!values_.empty(), "max of empty sample set");
    return *std::max_element(values_.begin(), values_.end());
}

double
SampleSet::stddev() const
{
    if (values_.size() < 2)
        return 0.0;
    const double m = mean();
    double m2 = 0.0;
    for (double v : values_)
        m2 += (v - m) * (v - m);
    return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

void
SampleSet::ensureSorted() const
{
    if (!sortedValid_) {
        sorted_ = values_;
        std::sort(sorted_.begin(), sorted_.end());
        sortedValid_ = true;
    }
}

double
SampleSet::percentile(double p) const
{
    AGENTSIM_ASSERT(!values_.empty(), "percentile of empty sample set");
    AGENTSIM_ASSERT(p >= 0.0 && p <= 100.0, "percentile %f out of range",
                    p);
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_.front();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

} // namespace agentsim::stats
