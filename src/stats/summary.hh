/**
 * @file
 * Streaming summary statistics (Welford) and an exact sample set with
 * percentile queries, used by every experiment reporter.
 */

#ifndef AGENTSIM_STATS_SUMMARY_HH
#define AGENTSIM_STATS_SUMMARY_HH

#include <cstddef>
#include <vector>

namespace agentsim::stats
{

/**
 * Constant-memory running statistics: count, mean, variance, min, max.
 * Uses Welford's online algorithm for numerical stability.
 */
class Summary
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another summary into this one. */
    void merge(const Summary &other);

    std::size_t count() const { return count_; }
    double mean() const;
    /** Unbiased sample variance (0 for < 2 samples). */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return mean() * static_cast<double>(count_); }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Stores every observation; supports exact percentile queries via
 * linear interpolation between order statistics.
 */
class SampleSet
{
  public:
    /** Add one observation. */
    void add(double x);

    std::size_t count() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    double mean() const;
    double min() const;
    double max() const;
    double sum() const;
    double stddev() const;

    /**
     * Percentile in [0, 100] via linear interpolation.
     * Panics on an empty set.
     */
    double percentile(double p) const;

    /** Median shorthand. */
    double median() const { return percentile(50.0); }

    /** Read access to the raw samples (unsorted, insertion order). */
    const std::vector<double> &values() const { return values_; }

  private:
    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;

    void ensureSorted() const;
};

} // namespace agentsim::stats

#endif // AGENTSIM_STATS_SUMMARY_HH
