/**
 * @file
 * Pareto-frontier extraction for the accuracy-vs-cost design-space
 * analysis (Fig 18).
 */

#ifndef AGENTSIM_STATS_PARETO_HH
#define AGENTSIM_STATS_PARETO_HH

#include <cstddef>
#include <vector>

namespace agentsim::stats
{

/** One design point: a cost (minimize) and a quality (maximize). */
struct DesignPoint
{
    double cost = 0.0;
    double quality = 0.0;
    /** Caller-defined identifier (index into a config table). */
    std::size_t tag = 0;
};

/**
 * Return the Pareto-optimal subset of @p points (no other point has
 * both lower-or-equal cost and higher-or-equal quality with at least
 * one strict). Result is sorted by ascending cost.
 */
std::vector<DesignPoint>
paretoFrontier(const std::vector<DesignPoint> &points);

/** True if @p a dominates @p b (a is no worse on both, better on one). */
bool dominates(const DesignPoint &a, const DesignPoint &b);

} // namespace agentsim::stats

#endif // AGENTSIM_STATS_PARETO_HH
