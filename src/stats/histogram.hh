/**
 * @file
 * Fixed-bin histogram for latency-distribution figures (Fig 7).
 */

#ifndef AGENTSIM_STATS_HISTOGRAM_HH
#define AGENTSIM_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace agentsim::stats
{

/**
 * Histogram over [lo, hi) with equal-width bins plus underflow and
 * overflow counters.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the binned range.
     * @param hi exclusive upper bound (> lo).
     * @param bins number of equal-width bins (> 0).
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation. */
    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::size_t count() const { return total_; }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }

    /** Count in bin @p i. */
    std::size_t binCount(std::size_t i) const;

    /** Inclusive lower edge of bin @p i. */
    double binLow(std::size_t i) const;

    /** Exclusive upper edge of bin @p i. */
    double binHigh(std::size_t i) const;

    /** Fraction of all observations landing in bin @p i. */
    double binFraction(std::size_t i) const;

    /**
     * Render an ASCII bar chart (one row per bin), used by the
     * distribution benches to mirror the paper's figures.
     *
     * @param width maximum bar width in characters.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    double binWidth_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

} // namespace agentsim::stats

#endif // AGENTSIM_STATS_HISTOGRAM_HH
