#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace agentsim::stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), binWidth_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    AGENTSIM_ASSERT(hi > lo, "histogram range [%f, %f) is empty", lo, hi);
    AGENTSIM_ASSERT(bins > 0, "histogram with zero bins");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / binWidth_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    AGENTSIM_ASSERT(i < counts_.size(), "bin index out of range");
    return counts_[i];
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + binWidth_ * static_cast<double>(i);
}

double
Histogram::binHigh(std::size_t i) const
{
    return lo_ + binWidth_ * static_cast<double>(i + 1);
}

double
Histogram::binFraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(binCount(i)) /
           static_cast<double>(total_);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = 1;
    for (std::size_t c : counts_)
        peak = std::max(peak, c);

    std::string out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<std::size_t>(
            std::llround(static_cast<double>(counts_[i]) * width / peak));
        out += sim::strfmt("%10.2f - %10.2f | %-6zu |", binLow(i),
                           binHigh(i), counts_[i]);
        out += std::string(bar_len, '#');
        out += '\n';
    }
    if (underflow_ > 0)
        out += sim::strfmt("underflow: %zu\n", underflow_);
    if (overflow_ > 0)
        out += sim::strfmt("overflow: %zu\n", overflow_);
    return out;
}

} // namespace agentsim::stats
