/**
 * @file
 * Simulator self-timing export: the simulation executive's own
 * performance (events processed, host wall-clock time, events/sec) as
 * registry gauges. This is what lets a perf report compare *simulator*
 * throughput across commits without any external timer plumbing — the
 * executive already timed its run loops.
 */

#ifndef AGENTSIM_TELEMETRY_SIM_METRICS_HH
#define AGENTSIM_TELEMETRY_SIM_METRICS_HH

#include "sim/simulation.hh"
#include "telemetry/registry.hh"

namespace agentsim::telemetry
{

/** Export agentsim_sim_* self-timing gauges for @p sim. */
inline void
exportSimMetrics(MetricsRegistry &registry, const sim::Simulation &sim)
{
    const sim::Tick now = sim.now();
    registry
        .gauge("agentsim_sim_events_processed",
               "Events processed by the simulation executive")
        .set(now, static_cast<double>(sim.processedEvents()));
    registry
        .gauge("agentsim_sim_wall_seconds",
               "Host wall-clock seconds inside run()/runUntil()")
        .set(now, sim.wallSeconds());
    registry
        .gauge("agentsim_sim_events_per_second",
               "Simulator throughput: events per host wall-clock second")
        .set(now, sim.eventsPerSecond());
    registry
        .gauge("agentsim_sim_virtual_seconds",
               "Virtual time reached by the simulation clock")
        .set(now, sim.nowSec());
}

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_SIM_METRICS_HH
