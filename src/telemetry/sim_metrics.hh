/**
 * @file
 * Simulator self-timing export: the simulation executive's own
 * performance (events processed, host wall-clock time, events/sec) as
 * registry gauges. This is what lets a perf report compare *simulator*
 * throughput across commits without any external timer plumbing — the
 * executive already timed its run loops.
 */

#ifndef AGENTSIM_TELEMETRY_SIM_METRICS_HH
#define AGENTSIM_TELEMETRY_SIM_METRICS_HH

#include "sim/frame_pool.hh"
#include "sim/simulation.hh"
#include "telemetry/registry.hh"

namespace agentsim::telemetry
{

/** Export agentsim_sim_* self-timing gauges for @p sim. */
inline void
exportSimMetrics(MetricsRegistry &registry, const sim::Simulation &sim)
{
    const sim::Tick now = sim.now();
    registry
        .gauge("agentsim_sim_events_processed",
               "Events processed by the simulation executive")
        .set(now, static_cast<double>(sim.processedEvents()));
    registry
        .gauge("agentsim_sim_wall_seconds",
               "Host wall-clock seconds inside run()/runUntil()")
        .set(now, sim.wallSeconds());
    registry
        .gauge("agentsim_sim_events_per_second",
               "Simulator throughput: events per host wall-clock second")
        .set(now, sim.eventsPerSecond());
    registry
        .gauge("agentsim_sim_virtual_seconds",
               "Virtual time reached by the simulation clock")
        .set(now, sim.nowSec());
    registry
        .gauge("agentsim_sim_queue_buckets_allocated",
               "Event-queue tick buckets allocated (pool misses)")
        .set(now, static_cast<double>(sim.queueBucketsAllocated()));
    registry
        .gauge("agentsim_sim_queue_buckets_recycled",
               "Event-queue tick buckets served from the free list")
        .set(now, static_cast<double>(sim.queueBucketsRecycled()));
    const sim::FramePoolStats frames = sim::framePoolStats();
    registry
        .gauge("agentsim_sim_frame_pool_allocations",
               "Coroutine frame allocations routed through the pool")
        .set(now, static_cast<double>(frames.allocations));
    registry
        .gauge("agentsim_sim_frame_pool_hits",
               "Coroutine frames served from a thread-local bin")
        .set(now, static_cast<double>(frames.poolHits));
}

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_SIM_METRICS_HH
