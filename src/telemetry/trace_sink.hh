/**
 * @file
 * Cross-layer Chrome trace sink: one session-wide trace-event JSON
 * combining engine iterations, per-request lifecycle spans and agent
 * steps on the shared simulator clock.
 *
 * Tracks (Chrome "processes"):
 *   pid 1 — the serving engine: one "step" span per iteration plus
 *           counter series (KV blocks, batch occupancy);
 *   pid 2 — requests: one thread per request id, with its
 *           queued / prefill / decode phases as spans and preemption
 *           instants;
 *   pid 3 — agents: one thread per rollout, LLM and tool call spans.
 *
 * All timestamps are virtual-time microseconds (the sim tick), which
 * is exactly Chrome's trace-event "ts" unit — load the file in
 * chrome://tracing or Perfetto and the three layers line up.
 */

#ifndef AGENTSIM_TELEMETRY_TRACE_SINK_HH
#define AGENTSIM_TELEMETRY_TRACE_SINK_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace agentsim::telemetry
{

class FlightRecorder;

/**
 * Escape a string for inclusion in a JSON string literal. Handles the
 * short escapes (quote, backslash, \b \f \n \r \t) and renders every
 * other control character below 0x20 as \uXXXX, so arbitrary tool
 * observations stay valid JSON.
 */
std::string jsonEscape(const std::string &s);

/** Well-known track (process) ids of the cross-layer trace. */
struct TracePid
{
    static constexpr int kEngine = 1;
    static constexpr int kRequests = 2;
    static constexpr int kAgents = 3;
    /** Online SLO monitor: burn-rate alert instants. */
    static constexpr int kSlo = 4;
    /** Operational resilience: circuit-breaker transitions (tid =
     *  node index) and brownout level changes (tid 0). */
    static constexpr int kResilience = 5;
    /** Tail exemplars: retained causal span trees rendered as async
     *  lanes (one id per request) with blame annotations. */
    static constexpr int kSpans = 6;
};

/**
 * Append-only trace-event accumulator. Events are rendered to JSON at
 * emit time; toJson() only joins them. Single-threaded.
 *
 * Retention is bounded: once eventCount() reaches the capacity, new
 * data events are dropped (and counted) instead of growing the sink
 * without limit across million-event sims. Track/lane metadata is
 * always admitted so the trace stays well-formed.
 */
class TraceSink
{
  public:
    /** Default data-event capacity (~a few hundred MB of JSON). */
    static constexpr std::size_t kDefaultEventCapacity = 2'000'000;

    /** Name a track (emitted once per pid). */
    void processName(int pid, const std::string &name);

    /** Name a lane within a track (emitted once per (pid, tid)). */
    void threadName(int pid, std::uint64_t tid,
                    const std::string &name);

    /**
     * Add a complete ("X") span.
     *
     * @param args_json optional pre-rendered JSON object *contents*
     *        (`"key":1,"other":2`), no braces.
     */
    void complete(int pid, std::uint64_t tid, const std::string &name,
                  const char *cat, sim::Tick start, sim::Tick end,
                  const std::string &args_json = "");

    /** Add an instant ("i") event. */
    void instant(int pid, std::uint64_t tid, const std::string &name,
                 const char *cat, sim::Tick at);

    /**
     * Add a counter ("C") sample; @p args_json holds the series
     * values (`"used":12,"free":4`).
     */
    void counter(int pid, const std::string &name, sim::Tick at,
                 const std::string &args_json);

    /**
     * Open a nestable async ("b") span on lane @p id. Async events
     * may overlap within one id, which Perfetto renders as stacked
     * slices — used for the tail-exemplar span-tree track where
     * sibling fan-out genuinely overlaps.
     */
    void asyncBegin(int pid, std::uint64_t id, const std::string &name,
                    const char *cat, sim::Tick at,
                    const std::string &args_json = "");

    /** Close the innermost open async span of (pid, cat, id). */
    void asyncEnd(int pid, std::uint64_t id, const std::string &name,
                  const char *cat, sim::Tick at);

    /**
     * Cap retained data events (0 = unlimited). Events beyond the cap
     * are dropped and counted in droppedEvents().
     */
    void setEventCapacity(std::size_t capacity)
    {
        capacity_ = capacity;
    }
    std::size_t eventCapacity() const { return capacity_; }

    /** Data events dropped because the capacity was reached. */
    std::uint64_t droppedEvents() const { return dropped_; }

    /**
     * Tee every emitted event into a flight recorder's retroactive
     * ring (nullptr detaches). The recorder keeps receiving events
     * even after this sink's own capacity saturates — its ring is
     * separately bounded, so incident bundles stay fresh on runs long
     * enough to fill the main trace.
     */
    void attachRecorder(FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Events emitted so far (metadata included). */
    std::size_t eventCount() const { return events_.size(); }

    /** Render the complete trace JSON document. */
    std::string toJson() const;

    /** Write the trace JSON to @p path. @return success. */
    bool writeJson(const std::string &path) const;

    void clear();

  private:
    std::vector<std::string> events_;
    /** (pid, tid) lanes already named; pid alone uses tid = -1. */
    std::set<std::pair<int, std::int64_t>> named_;
    std::size_t capacity_ = kDefaultEventCapacity;
    std::uint64_t dropped_ = 0;
    FlightRecorder *recorder_ = nullptr;

    /** @return whether a data event may be appended (counts drops). */
    bool admit();
};

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_TRACE_SINK_HH
