/**
 * @file
 * Critical-path extraction over finished span trees.
 *
 * Walks a tree backwards from each span's end, always descending into
 * the child whose (clipped) end is latest — so at fan-out nodes (LATS
 * siblings, self-consistency samples, LLMCompiler DAG nodes) the
 * *last-finishing* sibling takes the blame, which is exactly the
 * sibling that gated the join. Every tick of the root's window is
 * attributed to exactly one category, so the blame vector sums to the
 * request latency by construction (conservation).
 */

#ifndef AGENTSIM_TELEMETRY_CRITICAL_PATH_HH
#define AGENTSIM_TELEMETRY_CRITICAL_PATH_HH

#include <cstdint>
#include <vector>

#include "telemetry/span.hh"

namespace agentsim::telemetry
{

/** Blame vector plus the spans visited on the critical path. */
struct CriticalPath
{
    BlameVector blame;
    /** Tree-local indices of spans on the path, root first. */
    std::vector<std::uint32_t> spans;
};

/**
 * Extract the critical path of a finished tree. Requires every span
 * closed (end >= start); spans extending past their parent's window
 * are clipped. Empty trees yield an empty result.
 */
CriticalPath criticalPath(const SpanTree &tree);

/** Just the blame vector of criticalPath(). */
BlameVector criticalPathBlame(const SpanTree &tree);

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_CRITICAL_PATH_HH
