#include "telemetry/flight_recorder.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace_sink.hh"

namespace agentsim::telemetry
{

const char *
incidentTriggerName(IncidentTrigger t)
{
    switch (t) {
      case IncidentTrigger::SloBurn:
        return "slo_burn";
      case IncidentTrigger::Brownout:
        return "brownout";
      case IncidentTrigger::BreakerOpen:
        return "breaker_open";
      case IncidentTrigger::Autoscale:
        return "autoscale";
      case IncidentTrigger::DeadlineMissSpike:
        return "deadline_miss_spike";
    }
    return "unknown";
}

stats::HdrHistogram
FlightRecorder::makeLatencyHistogram() const
{
    // 1 ms .. 1 h at 1% relative error covers every latency family
    // the sim produces; exemplar ids are request keys.
    return stats::HdrHistogram(1e-3, 3600.0, 0.01,
                               config_.latencyExemplars);
}

FlightRecorder::FlightRecorder() : FlightRecorder(Config{}) {}

FlightRecorder::FlightRecorder(Config config)
    : config_(std::move(config)), latency_(makeLatencyHistogram())
{
    lastDump_.fill(-1);
}

void
FlightRecorder::setConfig(Config config)
{
    AGENTSIM_ASSERT(config.windowSeconds > 0.0,
                    "incident window must be positive");
    AGENTSIM_ASSERT(config.traceEventCapacity > 0 &&
                        config.spanCapacity > 0,
                    "recorder rings need capacity");
    config_ = std::move(config);
    latency_ = makeLatencyHistogram();
}

void
FlightRecorder::noteTraceEvent(sim::Tick start, sim::Tick end,
                               const std::string &json)
{
    if (traceRing_.size() >= config_.traceEventCapacity)
        traceRing_.pop_front();
    traceRing_.push_back({start, end, json});
}

void
FlightRecorder::noteMetadata(const std::string &json)
{
    if (metadata_.size() >= config_.metadataCapacity) {
        ++metadataDropped_;
        return;
    }
    metadata_.push_back(json);
}

void
FlightRecorder::noteSpanCompletion(const SpanCompletion &completion)
{
    if (spanRing_.size() >= config_.spanCapacity)
        spanRing_.pop_front();
    spanRing_.push_back(completion);
    latency_.add(completion.latencySeconds, completion.requestKey);
}

void
FlightRecorder::noteDeadlineMiss(sim::Tick now)
{
    const sim::Tick horizon =
        now - sim::fromSeconds(config_.missWindowSeconds);
    recentMisses_.push_back(now);
    while (!recentMisses_.empty() && recentMisses_.front() < horizon)
        recentMisses_.pop_front();
    if (static_cast<int>(recentMisses_.size()) >= config_.missSpikeCount) {
        trigger(IncidentTrigger::DeadlineMissSpike, now,
                sim::strfmt("%zu deadline misses within %.1fs",
                            recentMisses_.size(),
                            config_.missWindowSeconds));
    }
}

void
FlightRecorder::trigger(IncidentTrigger kind, sim::Tick now,
                        const std::string &detail)
{
    const auto k = static_cast<std::size_t>(kind);
    const sim::Tick debounce =
        sim::fromSeconds(config_.debounceSeconds);
    if (lastDump_[k] >= 0 && now - lastDump_[k] < debounce) {
        ++skippedDebounce_;
        return;
    }
    lastDump_[k] = now;
    dumpBundle(kind, now, detail);
}

std::string
FlightRecorder::renderBundleTrace(sim::Tick from, sim::Tick to) const
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    auto append = [&](const std::string &ev) {
        out += first ? "\n" : ",\n";
        out += ev;
        first = false;
    };
    for (const std::string &meta : metadata_)
        append(meta);
    for (const TraceEntry &entry : traceRing_) {
        if (entry.end >= from && entry.start <= to)
            append(entry.json);
    }
    // Window span completions as nestable-async lanes on the span
    // track, clipped to the window so begin/end always balance and
    // stay inside the bundle's time bounds.
    for (const SpanCompletion &sc : spanRing_) {
        if (sc.end < from || sc.start > to)
            continue;
        const sim::Tick bts = std::clamp(sc.start, from, to);
        const sim::Tick ets = std::clamp(sc.end, from, to);
        std::string args;
        for (std::size_t i = 0; i < kBlameCategories; ++i) {
            args += sim::strfmt(
                "\"%s_s\":%.6f,",
                blameCategoryName(static_cast<BlameCategory>(i)),
                sc.blame.seconds[i]);
        }
        args += sim::strfmt("\"latency_s\":%.6f,\"slo_violated\":%s",
                            sc.latencySeconds,
                            sc.sloViolated ? "true" : "false");
        append(sim::strfmt(
            "{\"name\":\"%s\",\"cat\":\"incident\",\"ph\":\"b\","
            "\"id\":\"0x%llx\",\"ts\":%lld,\"pid\":%d,\"tid\":%llu,"
            "\"args\":{%s}}",
            jsonEscape(sc.workflow).c_str(),
            static_cast<unsigned long long>(sc.requestKey),
            static_cast<long long>(bts), TracePid::kSpans,
            static_cast<unsigned long long>(sc.requestKey),
            args.c_str()));
        append(sim::strfmt(
            "{\"name\":\"%s\",\"cat\":\"incident\",\"ph\":\"e\","
            "\"id\":\"0x%llx\",\"ts\":%lld,\"pid\":%d,\"tid\":%llu}",
            jsonEscape(sc.workflow).c_str(),
            static_cast<unsigned long long>(sc.requestKey),
            static_cast<long long>(ets), TracePid::kSpans,
            static_cast<unsigned long long>(sc.requestKey)));
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

std::string
FlightRecorder::renderManifest(
    IncidentTrigger kind, sim::Tick now, const std::string &detail,
    sim::Tick from, sim::Tick to, std::size_t trace_events,
    const std::vector<const SpanCompletion *> &window_spans) const
{
    BlameVector blame;
    for (const SpanCompletion *sc : window_spans)
        blame += sc->blame;

    std::vector<const SpanCompletion *> slowest = window_spans;
    std::sort(slowest.begin(), slowest.end(),
              [](const SpanCompletion *a, const SpanCompletion *b) {
                  return a->latencySeconds > b->latencySeconds;
              });
    if (slowest.size() > 5)
        slowest.resize(5);

    std::string out = "{\n";
    out += "  \"schema\": \"agentsim-incident-v1\",\n";
    out += sim::strfmt("  \"trigger\": \"%s\",\n",
                       incidentTriggerName(kind));
    out += sim::strfmt("  \"detail\": \"%s\",\n",
                       jsonEscape(detail).c_str());
    out += sim::strfmt("  \"trigger_time_s\": %.6f,\n",
                       sim::toSeconds(now));
    out += sim::strfmt("  \"window_from_s\": %.6f,\n",
                       sim::toSeconds(from));
    out += sim::strfmt("  \"window_to_s\": %.6f,\n",
                       sim::toSeconds(to));
    out += sim::strfmt("  \"trace_events\": %zu,\n", trace_events);
    out += sim::strfmt("  \"span_completions\": %zu,\n",
                       window_spans.size());

    out += "  \"blame_seconds\": {";
    for (std::size_t i = 0; i < kBlameCategories; ++i) {
        out += sim::strfmt(
            "%s\"%s\": %.6f", i == 0 ? "" : ", ",
            blameCategoryName(static_cast<BlameCategory>(i)),
            blame.seconds[i]);
    }
    out += "},\n";
    out += sim::strfmt("  \"blame_total_seconds\": %.6f,\n",
                       blame.total());

    out += "  \"top_requests\": [";
    for (std::size_t i = 0; i < slowest.size(); ++i) {
        const SpanCompletion &sc = *slowest[i];
        out += i == 0 ? "\n" : ",\n";
        std::string b;
        for (std::size_t c = 0; c < kBlameCategories; ++c) {
            b += sim::strfmt(
                "%s\"%s\": %.6f", c == 0 ? "" : ", ",
                blameCategoryName(static_cast<BlameCategory>(c)),
                sc.blame.seconds[c]);
        }
        out += sim::strfmt(
            "    {\"request\": %llu, \"workflow\": \"%s\", "
            "\"latency_s\": %.6f, \"slo_violated\": %s, "
            "\"blame\": {%s}}",
            static_cast<unsigned long long>(sc.requestKey),
            jsonEscape(sc.workflow).c_str(), sc.latencySeconds,
            sc.sloViolated ? "true" : "false", b.c_str());
    }
    out += "\n  ],\n";

    const std::size_t ts_points =
        timeseries_ != nullptr ? timeseries_->pointsRetained() : 0;
    out += sim::strfmt(
        "  \"timeseries\": {\"series\": %zu, \"points_retained\": %zu},\n",
        timeseries_ != nullptr ? timeseries_->seriesCount() : 0,
        ts_points);

    out += sim::strfmt(
        "  \"latency\": {\"count\": %zu, \"p50_s\": %.6f, "
        "\"p99_s\": %.6f, \"max_s\": %.6f, \"exemplars\": [",
        latency_.count(), latency_.quantile(0.50),
        latency_.quantile(0.99), latency_.max());
    const auto exemplars = latency_.tailExemplars();
    for (std::size_t i = 0; i < exemplars.size(); ++i) {
        out += sim::strfmt(
            "%s{\"request\": %llu, \"latency_s\": %.6f}",
            i == 0 ? "" : ", ",
            static_cast<unsigned long long>(exemplars[i].id),
            exemplars[i].value);
    }
    out += "]}\n";
    out += "}\n";
    return out;
}

void
FlightRecorder::dumpBundle(IncidentTrigger kind, sim::Tick now,
                           const std::string &detail)
{
    const sim::Tick from = std::max<sim::Tick>(
        0, now - sim::fromSeconds(config_.windowSeconds));
    const sim::Tick to = now;

    std::size_t trace_events = 0;
    for (const TraceEntry &entry : traceRing_) {
        if (entry.end >= from && entry.start <= to)
            ++trace_events;
    }
    std::vector<const SpanCompletion *> window_spans;
    for (const SpanCompletion &sc : spanRing_) {
        if (sc.end >= from && sc.start <= to)
            window_spans.push_back(&sc);
    }

    const std::string trace_json = renderBundleTrace(from, to);
    const std::string timeseries_csv =
        timeseries_ != nullptr ? timeseries_->renderCsvWindow(from, to)
                               : std::string("series,time_s,value\n");
    const std::string manifest = renderManifest(
        kind, now, detail, from, to, trace_events, window_spans);

    const auto total = static_cast<std::int64_t>(
        trace_json.size() + timeseries_csv.size() + manifest.size());
    if (config_.diskBudgetBytes > 0 &&
        bytesWritten_ + total > config_.diskBudgetBytes) {
        ++skippedBudget_;
        return;
    }

    const std::string dir = sim::strfmt(
        "%s/incident-%03zu-%s", config_.incidentDir.c_str(),
        incidents_.size() + 1, incidentTriggerName(kind));
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "telemetry: cannot create incident dir %s: %s\n",
                     dir.c_str(), ec.message().c_str());
        ++writeFailures_;
        return;
    }

    bool ok = true;
    ok = writeArtifact(dir + "/trace.json", trace_json,
                       "incident trace") &&
         ok;
    ok = writeArtifact(dir + "/timeseries.csv", timeseries_csv,
                       "incident time series") &&
         ok;
    ok = writeArtifact(dir + "/manifest.json", manifest,
                       "incident manifest") &&
         ok;
    if (!ok) {
        ++writeFailures_;
        return;
    }
    bytesWritten_ += total;
    incidents_.push_back(dir);
}

void
FlightRecorder::exportMetrics(MetricsRegistry &registry) const
{
    registry
        .counter("agentsim_incidents_total",
                 "Incident bundles dumped by the flight recorder")
        .set(static_cast<double>(incidentsDumped()));
    registry
        .counter("agentsim_incidents_skipped_debounce_total",
                 "Incident triggers suppressed by per-kind debounce")
        .set(static_cast<double>(skippedDebounce_));
    registry
        .counter("agentsim_incidents_skipped_budget_total",
                 "Incident triggers suppressed by the disk budget")
        .set(static_cast<double>(skippedBudget_));
    registry
        .counter("agentsim_incident_bytes_total",
                 "Bytes of incident bundles written")
        .set(static_cast<double>(bytesWritten_));
}

void
FlightRecorder::clear()
{
    traceRing_.clear();
    spanRing_.clear();
    metadata_.clear();
    metadataDropped_ = 0;
    recentMisses_.clear();
    latency_ = makeLatencyHistogram();
    lastDump_.fill(-1);
    incidents_.clear();
    skippedDebounce_ = 0;
    skippedBudget_ = 0;
    writeFailures_ = 0;
    bytesWritten_ = 0;
}

} // namespace agentsim::telemetry
