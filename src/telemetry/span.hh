/**
 * @file
 * Causal span trees: per-request distributed-tracing-style spans on
 * the shared sim clock, with parent/child and follows-from links.
 *
 * Every request (a chat turn, an agent episode, a probe task) owns one
 * tree rooted at an Episode span. Layers attach children as the
 * request moves through them:
 *
 *   Episode                        agent rollout / chat turn
 *   ├── Attempt                    one retry/failover hop (cluster)
 *   │   ├── Iteration              agent loop round (react.iter, ...)
 *   │   │   ├── LlmCall            agents::callLlm
 *   │   │   │   ├── Queue          engine admission queue episode
 *   │   │   │   ├── Prefill        chunked prefill phase
 *   │   │   │   │   └── KvRestore  host-spill restore inside prefill
 *   │   │   │   ├── Preempt        recompute preemption (instant)
 *   │   │   │   ├── Migration      live KV migration transfer
 *   │   │   │   └── Decode         decode phase
 *   │   │   └── ToolCall           agents::callTool
 *   │   └── ...
 *   └── Backoff                    retry backoff sleep
 *
 * Sibling fan-out (LATS expansion, self-consistency samples,
 * LLMCompiler DAG nodes) is expressed by multiple children sharing a
 * parent and overlapping in time; retry chains add follows-from links
 * between consecutive Attempt spans.
 *
 * The collector keeps memory bounded: when a request finishes, its
 * tree is collapsed to a per-category blame vector (see
 * critical_path.hh) folded into per-workflow aggregates, and the full
 * tree is retained only for SLO-violating and top-k-latency requests
 * (the tail exemplars), up to a configurable cap.
 */

#ifndef AGENTSIM_TELEMETRY_SPAN_HH
#define AGENTSIM_TELEMETRY_SPAN_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "stats/quantile.hh"

namespace agentsim::telemetry
{

class FlightRecorder;

/** What a span represents; determines its blame category. */
enum class SpanKind
{
    /** Whole request: agent episode, chat turn, probe task. */
    Episode,
    /** One retry/failover hop of an episode (cluster workers). */
    Attempt,
    /** Client-side retry backoff sleep. */
    Backoff,
    /** One agent loop round (react.iter, lats.round, ...). */
    Iteration,
    /** agents::callLlm — submit to completion of one generate. */
    LlmCall,
    /** agents::callTool — one tool invocation. */
    ToolCall,
    /** Engine admission queue episode (initial or post-preempt). */
    Queue,
    /** Engine chunked-prefill phase. */
    Prefill,
    /** Engine decode phase. */
    Decode,
    /** Recompute preemption event (zero duration). */
    Preempt,
    /** KV restore from host spill, nested inside Prefill. */
    KvRestore,
    /** Live KV migration transfer between engines. */
    Migration,
};

/** Stable lower-case name for traces and tables. */
const char *spanKindName(SpanKind kind);

/** Where critical-path seconds are attributed. */
enum class BlameCategory
{
    Queue,
    Prefill,
    Decode,
    Tool,
    Migration,
    /** Time on the critical path covered by no finer span: agent
     *  think-gaps between iterations, client think time. */
    Idle,
};

constexpr std::size_t kBlameCategories = 6;

const char *blameCategoryName(BlameCategory cat);

/**
 * Blame category charged for a span's *own* time (the part of its
 * critical-path window not covered by any child). Structural kinds
 * (Episode, Attempt, Iteration, LlmCall, Preempt) charge Idle;
 * Backoff charges Queue (it is time spent waiting for service).
 */
BlameCategory blameCategory(SpanKind kind);

/** Per-request seconds attributed to each blame category. */
struct BlameVector
{
    std::array<double, kBlameCategories> seconds{};

    double &operator[](BlameCategory cat)
    {
        return seconds[static_cast<std::size_t>(cat)];
    }
    double operator[](BlameCategory cat) const
    {
        return seconds[static_cast<std::size_t>(cat)];
    }

    /** Sum over categories == request latency (conservation). */
    double total() const
    {
        double t = 0.0;
        for (double s : seconds)
            t += s;
        return t;
    }

    BlameVector &operator+=(const BlameVector &other)
    {
        for (std::size_t i = 0; i < kBlameCategories; ++i)
            seconds[i] += other.seconds[i];
        return *this;
    }
};

/** Index of a span within its tree; kNoSpan means "none". */
constexpr std::uint32_t kNoSpan = 0xffffffffu;

/** One node of a span tree. Timestamps are sim ticks. */
struct Span
{
    SpanKind kind = SpanKind::Episode;
    std::string label;
    sim::Tick start = 0;
    /** End tick; negative while the span is still open. */
    sim::Tick end = -1;
    /** Parent span index within the tree (kNoSpan for the root). */
    std::uint32_t parent = kNoSpan;
    /** Causal-but-not-nested predecessor (retry chains). */
    std::uint32_t followsFrom = kNoSpan;

    bool open() const { return end < start; }
    double seconds() const
    {
        return open() ? 0.0 : sim::toSeconds(end - start);
    }
};

/** A finished (or in-flight) per-request span tree; spans[0] is the
 *  root and every parent index precedes its children. */
struct SpanTree
{
    /** Harness-assigned request key (task/request index). */
    std::uint64_t requestKey = 0;
    /** Workflow label aggregates group by ("HotpotQA/ReAct", ...). */
    std::string workflow;
    std::vector<Span> spans;

    const Span &root() const { return spans.front(); }
};

/**
 * Cheap copyable handle to a span in a collector. Carried inside
 * GenRequest and AgentContext so lower layers can attach children
 * without knowing about the collector's internals. A default
 * constructed ref is invalid and makes every operation a no-op.
 */
struct SpanRef
{
    std::uint64_t tree = 0;
    std::uint32_t span = kNoSpan;

    bool valid() const { return tree != 0 && span != kNoSpan; }
};

/** A fully retained tail exemplar. */
struct SpanExemplar
{
    SpanTree tree;
    BlameVector blame;
    double latencySeconds = 0.0;
    bool sloViolated = false;
};

/** Mean + p95 blame aggregate for one workflow label. */
struct BlameAggregate
{
    explicit BlameAggregate(std::string workflow_label)
        : workflow(std::move(workflow_label)),
          p95{stats::P2Quantile(0.95), stats::P2Quantile(0.95),
              stats::P2Quantile(0.95), stats::P2Quantile(0.95),
              stats::P2Quantile(0.95), stats::P2Quantile(0.95)},
          latencyP95(0.95)
    {
    }

    std::string workflow;
    std::int64_t requests = 0;
    /** Per-category blame sums (mean = sum / requests). */
    BlameVector sum;
    /** Streaming per-category p95 of per-request blame seconds. */
    std::array<stats::P2Quantile, kBlameCategories> p95;
    double latencySum = 0.0;
    stats::P2Quantile latencyP95;

    double meanLatency() const
    {
        return requests > 0 ? latencySum / requests : 0.0;
    }
    double meanBlame(BlameCategory cat) const
    {
        return requests > 0 ? sum[cat] / requests : 0.0;
    }
    double p95Blame(BlameCategory cat) const
    {
        return p95[static_cast<std::size_t>(cat)].value();
    }
};

/**
 * Owns in-flight span trees, runs critical-path blame extraction on
 * finish, folds results into per-workflow aggregates and retains tail
 * exemplars under a bounded cap. Single-threaded, like the simulator.
 */
class SpanCollector
{
  public:
    struct Config
    {
        /** Max fully retained span trees (tail exemplars). */
        std::size_t maxExemplars = 32;
        /** Latency above this marks a request SLO-violating for
         *  retention (0 disables the latency criterion). */
        double sloLatencySeconds = 0.0;
    };

    SpanCollector() = default;
    explicit SpanCollector(Config config) : config_(config) {}

    /** Reconfigure (call between runs; does not drop state). */
    void setConfig(Config config) { config_ = config; }
    const Config &config() const { return config_; }

    /**
     * Tee every finished request (key, workflow, blame, latency,
     * root window) into a flight recorder's span-completion ring
     * (nullptr detaches).
     */
    void attachRecorder(FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Open a request tree; the returned ref is the Episode root. */
    SpanRef beginRequest(std::uint64_t request_key,
                         std::string workflow, sim::Tick now);

    /**
     * Attach a child span under @p parent starting at @p start.
     * Returns an invalid ref (all downstream calls no-ops) if
     * @p parent is invalid or its tree has already finished.
     */
    SpanRef child(SpanRef parent, SpanKind kind, std::string label,
                  sim::Tick start);

    /** Close @p span at @p end (may lie in the future, e.g. a
     *  migration transfer completing after the call site). */
    void end(SpanRef span, sim::Tick end_tick);

    /** Record a follows-from link (retry chains). Both refs must
     *  belong to the same tree. */
    void link(SpanRef span, SpanRef predecessor);

    /**
     * Finish the request: closes the root (and defensively any span
     * still open) at @p now, extracts the critical-path blame vector,
     * folds it into the workflow aggregate and decides retention.
     * The tree is destroyed unless retained as a tail exemplar.
     */
    BlameVector finishRequest(SpanRef root, sim::Tick now,
                              bool slo_violated = false);

    /** Per-workflow aggregates in first-seen order. */
    const std::vector<BlameAggregate> &aggregates() const
    {
        return aggregates_;
    }

    /** Retained tail exemplars (at most config().maxExemplars). */
    const std::vector<SpanExemplar> &exemplars() const
    {
        return exemplars_;
    }

    std::int64_t requestsFinished() const { return finished_; }
    /** Exemplar candidates dropped or displaced by the cap. */
    std::int64_t exemplarsEvicted() const { return evicted_; }
    /** Trees begun but not yet finished. */
    std::size_t openTrees() const { return open_.size(); }

    bool empty() const { return finished_ == 0 && open_.empty(); }

    /** Drop all state (reused across bench sweep points). */
    void clear();

  private:
    Config config_;
    std::uint64_t nextTree_ = 1;
    std::unordered_map<std::uint64_t, SpanTree> open_;
    std::vector<BlameAggregate> aggregates_;
    std::unordered_map<std::string, std::size_t> aggregateIndex_;
    std::vector<SpanExemplar> exemplars_;
    std::int64_t finished_ = 0;
    std::int64_t evicted_ = 0;
    FlightRecorder *recorder_ = nullptr;

    BlameAggregate &aggregateFor(const std::string &workflow);
    void retain(SpanTree &&tree, const BlameVector &blame,
                double latency_seconds, bool slo_violated);
};

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_SPAN_HH
