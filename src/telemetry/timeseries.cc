#include "telemetry/timeseries.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "telemetry/registry.hh"

namespace agentsim::telemetry
{

void
TimeSeriesStore::setConfig(Config config)
{
    AGENTSIM_ASSERT(config.periodSeconds > 0.0,
                    "time-series cadence must be positive");
    AGENTSIM_ASSERT(config.capacity >= 2,
                    "time-series ring needs at least two points");
    config_ = config;
}

void
TimeSeriesStore::Ring::push(const TsPoint &p, std::size_t capacity)
{
    if (points.size() < capacity) {
        points.push_back(p);
        return;
    }
    points[head] = p;
    head = (head + 1) % capacity;
    full = true;
}

std::vector<TsPoint>
TimeSeriesStore::Ring::window(sim::Tick from, sim::Tick to) const
{
    std::vector<TsPoint> out;
    const std::size_t n = points.size();
    // Oldest-first iteration order: once the ring has wrapped, the
    // oldest point sits at head (the next overwrite target).
    const std::size_t start = full ? head : 0;
    for (std::size_t i = 0; i < n; ++i) {
        const TsPoint &p = points[(start + i) % n];
        if (p.tick >= from && p.tick <= to)
            out.push_back(p);
    }
    return out;
}

TimeSeriesStore::Ring &
TimeSeriesStore::ringFor(const std::string &name)
{
    auto it = index_.find(name);
    if (it != index_.end())
        return series_[it->second];
    index_.emplace(name, series_.size());
    series_.push_back(Ring{name, {}, 0, false});
    series_.back().points.reserve(config_.capacity);
    return series_.back();
}

const TimeSeriesStore::Ring *
TimeSeriesStore::findRing(const std::string &name) const
{
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &series_[it->second];
}

void
TimeSeriesStore::record(const std::string &name, sim::Tick now,
                        double value)
{
    ringFor(name).push({now, value}, config_.capacity);
}

void
TimeSeriesStore::sample(const MetricsRegistry &registry, sim::Tick now)
{
    registry.forEachScalar([&](const std::string &name, double value) {
        record(name, now, value);
    });
}

std::vector<TsPoint>
TimeSeriesStore::window(const std::string &name, sim::Tick from,
                        sim::Tick to) const
{
    const Ring *ring = findRing(name);
    return ring != nullptr ? ring->window(from, to)
                           : std::vector<TsPoint>{};
}

TsWindowStats
TimeSeriesStore::windowStats(const std::string &name, sim::Tick from,
                             sim::Tick to) const
{
    TsWindowStats stats;
    const std::vector<TsPoint> pts = window(name, from, to);
    if (pts.empty())
        return stats;
    stats.samples = pts.size();
    stats.min = pts.front().value;
    stats.max = pts.front().value;
    double sum = 0.0;
    for (const TsPoint &p : pts) {
        stats.min = std::min(stats.min, p.value);
        stats.max = std::max(stats.max, p.value);
        sum += p.value;
    }
    stats.mean = sum / static_cast<double>(pts.size());
    stats.last = pts.back().value;
    return stats;
}

double
TimeSeriesStore::windowRate(const std::string &name, sim::Tick from,
                            sim::Tick to) const
{
    const std::vector<TsPoint> pts = window(name, from, to);
    if (pts.size() < 2)
        return 0.0;
    const double elapsed =
        sim::toSeconds(pts.back().tick - pts.front().tick);
    if (elapsed <= 0.0)
        return 0.0;
    return (pts.back().value - pts.front().value) / elapsed;
}

double
TimeSeriesStore::windowDerivative(const std::string &name,
                                  sim::Tick from, sim::Tick to) const
{
    const std::vector<TsPoint> pts = window(name, from, to);
    if (pts.size() < 2)
        return 0.0;
    const TsPoint &a = pts[pts.size() - 2];
    const TsPoint &b = pts.back();
    const double elapsed = sim::toSeconds(b.tick - a.tick);
    if (elapsed <= 0.0)
        return 0.0;
    return (b.value - a.value) / elapsed;
}

std::string
TimeSeriesStore::renderCsvWindow(sim::Tick from, sim::Tick to) const
{
    std::string out = "series,time_s,value\n";
    for (const Ring &ring : series_) {
        for (const TsPoint &p : ring.window(from, to)) {
            out += sim::strfmt("%s,%.6f,%.17g\n", ring.name.c_str(),
                               sim::toSeconds(p.tick), p.value);
        }
    }
    return out;
}

std::size_t
TimeSeriesStore::pointsRetained() const
{
    std::size_t total = 0;
    for (const Ring &ring : series_)
        total += ring.points.size();
    return total;
}

void
TimeSeriesStore::clear()
{
    series_.clear();
    index_.clear();
}

} // namespace agentsim::telemetry
