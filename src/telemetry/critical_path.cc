#include "telemetry/critical_path.hh"

#include <algorithm>

namespace agentsim::telemetry
{

namespace
{

struct Walker
{
    const SpanTree &tree;
    const std::vector<std::vector<std::uint32_t>> &children;
    CriticalPath &out;
    std::vector<bool> used;

    Walker(const SpanTree &t,
           const std::vector<std::vector<std::uint32_t>> &c,
           CriticalPath &o)
        : tree(t), children(c), out(o), used(t.spans.size(), false)
    {
    }

    void
    blame(BlameCategory cat, sim::Tick lo, sim::Tick hi)
    {
        if (hi > lo)
            out.blame[cat] += sim::toSeconds(hi - lo);
    }

    /**
     * Attribute the window [lo, hi] of span @p index. Walk backwards
     * from hi: repeatedly pick the not-yet-used child overlapping the
     * cursor whose clipped end is latest (the last finisher), charge
     * the gap between that end and the cursor to the span's own
     * category, recurse into the child, and continue from the child's
     * start. Whatever remains at the front is the span's own time.
     */
    void
    walk(std::uint32_t index, sim::Tick lo, sim::Tick hi)
    {
        out.spans.push_back(index);
        BlameCategory own = blameCategory(tree.spans[index].kind);
        sim::Tick cursor = hi;
        while (cursor > lo) {
            std::uint32_t best = kNoSpan;
            sim::Tick best_end = 0;
            for (std::uint32_t c : children[index]) {
                if (used[c])
                    continue;
                const Span &child = tree.spans[c];
                if (child.start >= cursor || child.end <= lo)
                    continue;
                sim::Tick eff_end = std::min(child.end, cursor);
                // Ties go to the later-starting (shorter) child so
                // the walk is deterministic.
                if (best == kNoSpan || eff_end > best_end ||
                    (eff_end == best_end &&
                     child.start > tree.spans[best].start)) {
                    best = c;
                    best_end = eff_end;
                }
            }
            if (best == kNoSpan) {
                blame(own, lo, cursor);
                return;
            }
            used[best] = true;
            blame(own, best_end, cursor);
            sim::Tick eff_lo = std::max(tree.spans[best].start, lo);
            walk(best, eff_lo, best_end);
            cursor = eff_lo;
        }
    }
};

} // namespace

CriticalPath
criticalPath(const SpanTree &tree)
{
    CriticalPath out;
    if (tree.spans.empty())
        return out;
    std::vector<std::vector<std::uint32_t>> children(tree.spans.size());
    for (std::uint32_t i = 1; i < tree.spans.size(); ++i) {
        std::uint32_t parent = tree.spans[i].parent;
        if (parent < tree.spans.size())
            children[parent].push_back(i);
    }
    Walker walker(tree, children, out);
    const Span &root = tree.spans.front();
    walker.walk(0, root.start, std::max(root.end, root.start));
    return out;
}

BlameVector
criticalPathBlame(const SpanTree &tree)
{
    return criticalPath(tree).blame;
}

} // namespace agentsim::telemetry
