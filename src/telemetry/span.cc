#include "telemetry/span.hh"

#include <algorithm>
#include <cassert>

#include "telemetry/critical_path.hh"
#include "telemetry/flight_recorder.hh"

namespace agentsim::telemetry
{

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Episode:
        return "episode";
      case SpanKind::Attempt:
        return "attempt";
      case SpanKind::Backoff:
        return "backoff";
      case SpanKind::Iteration:
        return "iteration";
      case SpanKind::LlmCall:
        return "llm_call";
      case SpanKind::ToolCall:
        return "tool_call";
      case SpanKind::Queue:
        return "queue";
      case SpanKind::Prefill:
        return "prefill";
      case SpanKind::Decode:
        return "decode";
      case SpanKind::Preempt:
        return "preempt";
      case SpanKind::KvRestore:
        return "kv_restore";
      case SpanKind::Migration:
        return "migration";
    }
    return "unknown";
}

const char *
blameCategoryName(BlameCategory cat)
{
    switch (cat) {
      case BlameCategory::Queue:
        return "queue";
      case BlameCategory::Prefill:
        return "prefill";
      case BlameCategory::Decode:
        return "decode";
      case BlameCategory::Tool:
        return "tool";
      case BlameCategory::Migration:
        return "migration";
      case BlameCategory::Idle:
        return "idle";
    }
    return "unknown";
}

BlameCategory
blameCategory(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Queue:
      case SpanKind::Backoff:
        return BlameCategory::Queue;
      case SpanKind::Prefill:
        return BlameCategory::Prefill;
      case SpanKind::Decode:
        return BlameCategory::Decode;
      case SpanKind::ToolCall:
        return BlameCategory::Tool;
      case SpanKind::KvRestore:
      case SpanKind::Migration:
        return BlameCategory::Migration;
      case SpanKind::Episode:
      case SpanKind::Attempt:
      case SpanKind::Iteration:
      case SpanKind::LlmCall:
      case SpanKind::Preempt:
        break;
    }
    return BlameCategory::Idle;
}

SpanRef
SpanCollector::beginRequest(std::uint64_t request_key,
                            std::string workflow, sim::Tick now)
{
    std::uint64_t id = nextTree_++;
    SpanTree &tree = open_[id];
    tree.requestKey = request_key;
    tree.workflow = std::move(workflow);
    Span root;
    root.kind = SpanKind::Episode;
    root.label = tree.workflow;
    root.start = now;
    tree.spans.push_back(std::move(root));
    return SpanRef{id, 0};
}

SpanRef
SpanCollector::child(SpanRef parent, SpanKind kind, std::string label,
                     sim::Tick start)
{
    if (!parent.valid())
        return {};
    auto it = open_.find(parent.tree);
    if (it == open_.end() || parent.span >= it->second.spans.size())
        return {};
    SpanTree &tree = it->second;
    Span span;
    span.kind = kind;
    span.label = std::move(label);
    span.start = start;
    span.parent = parent.span;
    std::uint32_t index = static_cast<std::uint32_t>(tree.spans.size());
    tree.spans.push_back(std::move(span));
    return SpanRef{parent.tree, index};
}

void
SpanCollector::end(SpanRef span, sim::Tick end_tick)
{
    if (!span.valid())
        return;
    auto it = open_.find(span.tree);
    if (it == open_.end() || span.span >= it->second.spans.size())
        return;
    Span &s = it->second.spans[span.span];
    s.end = std::max(end_tick, s.start);
}

void
SpanCollector::link(SpanRef span, SpanRef predecessor)
{
    if (!span.valid() || !predecessor.valid() ||
        span.tree != predecessor.tree)
        return;
    auto it = open_.find(span.tree);
    if (it == open_.end() || span.span >= it->second.spans.size() ||
        predecessor.span >= it->second.spans.size())
        return;
    it->second.spans[span.span].followsFrom = predecessor.span;
}

BlameVector
SpanCollector::finishRequest(SpanRef root, sim::Tick now,
                             bool slo_violated)
{
    if (!root.valid())
        return {};
    auto it = open_.find(root.tree);
    if (it == open_.end())
        return {};
    SpanTree tree = std::move(it->second);
    open_.erase(it);

    // Close the root and, defensively, anything a layer left open
    // (abandoned coroutines on failure paths).
    for (Span &span : tree.spans) {
        if (span.open())
            span.end = std::max(now, span.start);
    }

    BlameVector blame = criticalPathBlame(tree);
    double latency = tree.root().seconds();

    if (config_.sloLatencySeconds > 0.0 &&
        latency > config_.sloLatencySeconds)
        slo_violated = true;

    BlameAggregate &agg = aggregateFor(tree.workflow);
    ++agg.requests;
    agg.sum += blame;
    for (std::size_t i = 0; i < kBlameCategories; ++i)
        agg.p95[i].add(blame.seconds[i]);
    agg.latencySum += latency;
    agg.latencyP95.add(latency);
    ++finished_;

    if (recorder_ != nullptr) {
        recorder_->noteSpanCompletion({tree.requestKey, tree.workflow,
                                       blame, latency, slo_violated,
                                       tree.root().start,
                                       tree.root().end});
    }

    retain(std::move(tree), blame, latency, slo_violated);
    return blame;
}

BlameAggregate &
SpanCollector::aggregateFor(const std::string &workflow)
{
    auto it = aggregateIndex_.find(workflow);
    if (it != aggregateIndex_.end())
        return aggregates_[it->second];
    aggregateIndex_.emplace(workflow, aggregates_.size());
    aggregates_.emplace_back(workflow);
    return aggregates_.back();
}

void
SpanCollector::retain(SpanTree &&tree, const BlameVector &blame,
                      double latency_seconds, bool slo_violated)
{
    if (config_.maxExemplars == 0) {
        ++evicted_;
        return;
    }
    // Retention score: SLO violators outrank clean requests; within a
    // class, higher latency wins. The cap is absolute — when full, the
    // lowest-scoring retained exemplar is displaced, so memory stays
    // bounded at maxExemplars full trees.
    auto score = [](bool violated, double latency) {
        return std::make_pair(violated ? 1 : 0, latency);
    };
    auto candidate = score(slo_violated, latency_seconds);
    if (exemplars_.size() >= config_.maxExemplars) {
        std::size_t weakest = 0;
        auto weakest_score = score(exemplars_[0].sloViolated,
                                   exemplars_[0].latencySeconds);
        for (std::size_t i = 1; i < exemplars_.size(); ++i) {
            auto s = score(exemplars_[i].sloViolated,
                           exemplars_[i].latencySeconds);
            if (s < weakest_score) {
                weakest = i;
                weakest_score = s;
            }
        }
        if (candidate <= weakest_score) {
            ++evicted_;
            return;
        }
        exemplars_.erase(exemplars_.begin() +
                         static_cast<std::ptrdiff_t>(weakest));
        ++evicted_;
    }
    SpanExemplar ex;
    ex.tree = std::move(tree);
    ex.blame = blame;
    ex.latencySeconds = latency_seconds;
    ex.sloViolated = slo_violated;
    exemplars_.push_back(std::move(ex));
}

void
SpanCollector::clear()
{
    open_.clear();
    aggregates_.clear();
    aggregateIndex_.clear();
    exemplars_.clear();
    nextTree_ = 1;
    finished_ = 0;
    evicted_ = 0;
}

} // namespace agentsim::telemetry
