#include "telemetry/registry.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace agentsim::telemetry
{

Metric *
MetricsRegistry::find(const std::string &name, MetricKind kind)
{
    auto it = index_.find(name);
    if (it == index_.end())
        return nullptr;
    Metric *m = metrics_[it->second].get();
    AGENTSIM_ASSERT(m->kind() == kind,
                    "metric %s re-registered with a different kind",
                    name.c_str());
    return m;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    if (Metric *m = find(name, MetricKind::Counter))
        return static_cast<Counter &>(*m);
    index_[name] = metrics_.size();
    metrics_.push_back(std::make_unique<Counter>(name, help));
    return static_cast<Counter &>(*metrics_.back());
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    if (Metric *m = find(name, MetricKind::Gauge))
        return static_cast<Gauge &>(*m);
    index_[name] = metrics_.size();
    metrics_.push_back(std::make_unique<Gauge>(name, help));
    return static_cast<Gauge &>(*metrics_.back());
}

HistogramMetric &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help, double lo, double hi,
                           std::size_t bins)
{
    if (Metric *m = find(name, MetricKind::Histogram))
        return static_cast<HistogramMetric &>(*m);
    index_[name] = metrics_.size();
    metrics_.push_back(
        std::make_unique<HistogramMetric>(name, help, lo, hi, bins));
    return static_cast<HistogramMetric &>(*metrics_.back());
}

std::vector<std::string>
MetricsRegistry::csvColumns() const
{
    std::vector<std::string> cols;
    cols.reserve(metrics_.size() + 1);
    for (const auto &m : metrics_) {
        if (m->kind() == MetricKind::Histogram) {
            cols.push_back(m->name() + "_count");
            cols.push_back(m->name() + "_sum");
        } else {
            cols.push_back(m->name());
        }
    }
    return cols;
}

std::vector<double>
MetricsRegistry::csvValues() const
{
    std::vector<double> vals;
    vals.reserve(metrics_.size() + 1);
    for (const auto &m : metrics_) {
        switch (m->kind()) {
          case MetricKind::Counter:
            vals.push_back(static_cast<const Counter &>(*m).value());
            break;
          case MetricKind::Gauge:
            vals.push_back(static_cast<const Gauge &>(*m).value());
            break;
          case MetricKind::Histogram: {
              const auto &h = static_cast<const HistogramMetric &>(*m);
              vals.push_back(static_cast<double>(h.count()));
              vals.push_back(h.sum());
              break;
          }
        }
    }
    return vals;
}

void
MetricsRegistry::snapshot(sim::Tick now)
{
    rows_.push_back({now, csvValues()});
}

void
MetricsRegistry::forEachScalar(
    const std::function<void(const std::string &, double)> &fn) const
{
    for (const auto &m : metrics_) {
        switch (m->kind()) {
          case MetricKind::Counter:
            fn(m->name(), static_cast<const Counter &>(*m).value());
            break;
          case MetricKind::Gauge:
            fn(m->name(), static_cast<const Gauge &>(*m).value());
            break;
          case MetricKind::Histogram: {
              const auto &h = static_cast<const HistogramMetric &>(*m);
              fn(m->name() + "_count",
                 static_cast<double>(h.count()));
              fn(m->name() + "_sum", h.sum());
              break;
          }
        }
    }
}

std::string
MetricsRegistry::renderPrometheus() const
{
    std::string out;
    for (const auto &m : metrics_) {
        out += sim::strfmt("# HELP %s %s\n", m->name().c_str(),
                           m->help().c_str());
        switch (m->kind()) {
          case MetricKind::Counter:
            out += sim::strfmt("# TYPE %s counter\n",
                               m->name().c_str());
            out += sim::strfmt(
                "%s %.17g\n", m->name().c_str(),
                static_cast<const Counter &>(*m).value());
            break;
          case MetricKind::Gauge:
            out += sim::strfmt("# TYPE %s gauge\n", m->name().c_str());
            out += sim::strfmt("%s %.17g\n", m->name().c_str(),
                               static_cast<const Gauge &>(*m).value());
            break;
          case MetricKind::Histogram: {
              const auto &hm = static_cast<const HistogramMetric &>(*m);
              const stats::Histogram &h = hm.histogram();
              out += sim::strfmt("# TYPE %s histogram\n",
                                 m->name().c_str());
              std::size_t cumulative = h.underflow();
              for (std::size_t i = 0; i < h.bins(); ++i) {
                  cumulative += h.binCount(i);
                  out += sim::strfmt(
                      "%s_bucket{le=\"%.17g\"} %zu\n",
                      m->name().c_str(), h.binHigh(i), cumulative);
              }
              out += sim::strfmt("%s_bucket{le=\"+Inf\"} %zu\n",
                                 m->name().c_str(), h.count());
              out += sim::strfmt("%s_sum %.17g\n", m->name().c_str(),
                                 hm.sum());
              out += sim::strfmt("%s_count %zu\n", m->name().c_str(),
                                 h.count());
              break;
          }
        }
    }
    return out;
}

std::string
MetricsRegistry::renderCsv() const
{
    std::string out = "time_s";
    for (const auto &col : csvColumns())
        out += "," + col;
    out += "\n";
    const std::size_t width = csvColumns().size();
    for (const auto &row : rows_) {
        out += sim::strfmt("%.9f", sim::toSeconds(row.tick));
        for (std::size_t i = 0; i < width; ++i) {
            // Rows snapshot before a late registration are padded so
            // every line has the full column count.
            const double v =
                i < row.values.size() ? row.values[i] : 0.0;
            out += sim::strfmt(",%.17g", v);
        }
        out += "\n";
    }
    return out;
}

void
MetricsRegistry::clear()
{
    metrics_.clear();
    index_.clear();
    rows_.clear();
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return written == text.size();
}

bool
writeArtifact(const std::string &path, const std::string &text,
              const std::string &what)
{
    errno = 0;
    if (writeTextFile(path, text)) {
        std::printf("telemetry: wrote %s to %s\n", what.c_str(),
                    path.c_str());
        return true;
    }
    std::fprintf(stderr, "error: failed to write %s to %s%s%s\n",
                 what.c_str(), path.c_str(),
                 errno != 0 ? ": " : "",
                 errno != 0 ? std::strerror(errno) : "");
    return false;
}

} // namespace agentsim::telemetry
