/**
 * @file
 * SessionTelemetry: the bundle a harness (probe, serving system,
 * bench binary, example) hands to a run to collect everything at
 * once — the metrics registry, the cross-layer trace and a copy of
 * the engine's iteration time series.
 */

#ifndef AGENTSIM_TELEMETRY_SESSION_HH
#define AGENTSIM_TELEMETRY_SESSION_HH

#include <string>
#include <vector>

#include "telemetry/flight_recorder.hh"
#include "telemetry/registry.hh"
#include "telemetry/sampler.hh"
#include "telemetry/span.hh"
#include "telemetry/timeseries.hh"
#include "telemetry/trace_sink.hh"

namespace agentsim::telemetry
{

/**
 * Aggregated per-run telemetry. The run attaches the trace sink to
 * its engine and agents, exports end-of-run metrics into the
 * registry, and copies the engine sampler's series out before the
 * engine is destroyed.
 */
struct SessionTelemetry
{
    MetricsRegistry registry;
    TraceSink trace;
    /** Causal span trees, blame aggregates and tail exemplars. */
    SpanCollector spans;
    /** Windowed metric rings sampled at a fixed sim-clock cadence. */
    TimeSeriesStore timeseries;
    /** Retroactive incident capture (off unless a run attaches it). */
    FlightRecorder recorder;
    /** Engine iteration series, copied out of the engine post-run. */
    std::vector<IterationSample> engineSamples;

    /** Drop all collected state (reused across bench sweep points). */
    void
    reset()
    {
        registry.clear();
        trace.clear();
        spans.clear();
        timeseries.clear();
        recorder.clear();
        engineSamples.clear();
    }

    /** Write the Prometheus exposition. @return success. */
    bool
    writeMetrics(const std::string &path) const
    {
        return writeTextFile(path, registry.renderPrometheus());
    }

    /** Write the engine iteration series as CSV. @return success. */
    bool
    writeEngineCsv(const std::string &path) const
    {
        return writeTextFile(path,
                             EngineSampler::renderCsv(engineSamples));
    }

    /** Write the Chrome trace JSON. @return success. */
    bool
    writeTrace(const std::string &path) const
    {
        return trace.writeJson(path);
    }
};

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_SESSION_HH
