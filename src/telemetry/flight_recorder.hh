/**
 * @file
 * Flight recorder: bounded retroactive capture that turns alerts into
 * self-explaining incident bundles.
 *
 * The recorder continuously tees the last few thousand trace events
 * and span completions into ring buffers — cheap enough to leave on —
 * and does nothing else until an anomaly trigger fires: an SLO
 * burn-rate alert, a brownout level change, a circuit-breaker open,
 * an autoscaler scale-out (or scale flap), or a spike of deadline
 * misses. At that moment it dumps an **incident bundle**: a directory
 * holding
 *
 *   trace.json      — Perfetto trace of the retroactive window
 *                     (recent trace events intersecting the window,
 *                     plus the window's span completions as async
 *                     lanes with blame annotations);
 *   timeseries.csv  — every sampled metric series restricted to the
 *                     window (from the attached TimeSeriesStore);
 *   manifest.json   — trigger identity, window bounds, the windowed
 *                     critical-path blame table aggregated over the
 *                     window's span completions, and the slowest
 *                     requests with their blame splits.
 *
 * Per-trigger debounce and a global disk budget keep a flapping
 * system from writing unbounded bundles. Everything here is a pure
 * observer: the recorder reads sim state and writes host files, never
 * consumes sim RNG or mutates sim state, so recorder-off runs are
 * bit-identical to recorder-on runs.
 */

#ifndef AGENTSIM_TELEMETRY_FLIGHT_RECORDER_HH
#define AGENTSIM_TELEMETRY_FLIGHT_RECORDER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "stats/hdr_histogram.hh"
#include "telemetry/span.hh"
#include "telemetry/timeseries.hh"

namespace agentsim::telemetry
{

class MetricsRegistry;

/** Anomaly sources that can dump an incident bundle. */
enum class IncidentTrigger
{
    SloBurn,           ///< SLO burn-rate alert (telemetry/slo)
    Brownout,          ///< brownout level transition (core/brownout)
    BreakerOpen,       ///< circuit breaker opened (core/health)
    Autoscale,         ///< autoscaler scale-out or flap (core/autoscaler)
    DeadlineMissSpike, ///< burst of request deadline misses (cluster)
};

constexpr std::size_t kIncidentTriggers = 5;

const char *incidentTriggerName(IncidentTrigger t);

/** One span completion retained in the recorder's ring. */
struct SpanCompletion
{
    std::uint64_t requestKey = 0;
    std::string workflow;
    BlameVector blame;
    double latencySeconds = 0.0;
    bool sloViolated = false;
    sim::Tick start = 0;
    sim::Tick end = 0;
};

class FlightRecorder
{
  public:
    struct Config
    {
        /** Directory incident bundles are written under. */
        std::string incidentDir = "incidents";
        /** Retroactive window dumped per incident, virtual seconds. */
        double windowSeconds = 30.0;
        /** Trace-event ring capacity. */
        std::size_t traceEventCapacity = 65536;
        /** Span-completion ring capacity. */
        std::size_t spanCapacity = 4096;
        /** Metadata (process/thread name) events retained. */
        std::size_t metadataCapacity = 4096;
        /** Per-trigger-kind minimum spacing between dumps,
         *  virtual seconds. */
        double debounceSeconds = 30.0;
        /** Global cap on bundle bytes written (0 = unlimited). */
        std::int64_t diskBudgetBytes = 64ll << 20;
        /** Deadline misses within missWindowSeconds that constitute
         *  a spike. */
        int missSpikeCount = 8;
        double missWindowSeconds = 5.0;
        /** Tail exemplars kept by the latency histogram. */
        std::size_t latencyExemplars = 8;
    };

    FlightRecorder();
    explicit FlightRecorder(Config config);

    /** Reconfigure; call before the run (resets the latency ring). */
    void setConfig(Config config);
    const Config &config() const { return config_; }

    /** Attach the time-series store exported into bundles
     *  (nullptr detaches). */
    void attachTimeSeries(const TimeSeriesStore *store)
    {
        timeseries_ = store;
    }

    // ---- continuous tees (called by TraceSink / SpanCollector) ----

    /** Retain a rendered trace event spanning [start, end]. */
    void noteTraceEvent(sim::Tick start, sim::Tick end,
                        const std::string &json);

    /** Retain a metadata (M) event; always included in bundles. */
    void noteMetadata(const std::string &json);

    /** Retain a finished request with its critical-path blame. */
    void noteSpanCompletion(const SpanCompletion &completion);

    /** Feed the deadline-miss spike detector; may self-trigger. */
    void noteDeadlineMiss(sim::Tick now);

    // ---- triggers ----

    /**
     * Fire an anomaly trigger at @p now. Dumps a bundle unless the
     * kind is within its debounce interval or the disk budget is
     * exhausted (both counted).
     */
    void trigger(IncidentTrigger kind, sim::Tick now,
                 const std::string &detail);

    // ---- results ----

    /** Bundle directories dumped, in order. */
    const std::vector<std::string> &incidentPaths() const
    {
        return incidents_;
    }

    std::int64_t incidentsDumped() const
    {
        return static_cast<std::int64_t>(incidents_.size());
    }
    std::int64_t skippedDebounce() const { return skippedDebounce_; }
    std::int64_t skippedBudget() const { return skippedBudget_; }
    std::int64_t writeFailures() const { return writeFailures_; }
    std::int64_t bytesWritten() const { return bytesWritten_; }
    std::size_t traceEventsRetained() const { return traceRing_.size(); }
    std::size_t spansRetained() const { return spanRing_.size(); }

    /** HDR latency distribution over every retained completion, with
     *  tail exemplars naming request keys. */
    const stats::HdrHistogram &latency() const { return latency_; }

    /** Export agentsim_incident_* counters into @p registry. */
    void exportMetrics(MetricsRegistry &registry) const;

    /** Drop all state (reused across bench sweep points). */
    void clear();

  private:
    struct TraceEntry
    {
        sim::Tick start = 0;
        sim::Tick end = 0;
        std::string json;
    };

    Config config_;
    const TimeSeriesStore *timeseries_ = nullptr;

    std::deque<TraceEntry> traceRing_;
    std::deque<SpanCompletion> spanRing_;
    std::vector<std::string> metadata_;
    std::int64_t metadataDropped_ = 0;

    std::deque<sim::Tick> recentMisses_;

    stats::HdrHistogram latency_;

    /** Last dump tick per trigger kind (-1 = never fired). */
    std::array<sim::Tick, kIncidentTriggers> lastDump_;
    std::vector<std::string> incidents_;
    std::int64_t skippedDebounce_ = 0;
    std::int64_t skippedBudget_ = 0;
    std::int64_t writeFailures_ = 0;
    std::int64_t bytesWritten_ = 0;

    stats::HdrHistogram makeLatencyHistogram() const;
    void dumpBundle(IncidentTrigger kind, sim::Tick now,
                    const std::string &detail);
    std::string renderBundleTrace(sim::Tick from, sim::Tick to) const;
    std::string renderManifest(IncidentTrigger kind, sim::Tick now,
                               const std::string &detail, sim::Tick from,
                               sim::Tick to, std::size_t trace_events,
                               const std::vector<const SpanCompletion *>
                                   &window_spans) const;
};

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_FLIGHT_RECORDER_HH
