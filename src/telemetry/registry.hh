/**
 * @file
 * Metrics registry: named counters, gauges and histograms with
 * snapshot-at-sim-time sampling, Prometheus text exposition and CSV
 * time-series export.
 *
 * The registry is the pull side of the telemetry subsystem: subsystems
 * register (or look up) metrics by name and update them; exporters
 * render the whole registry at once. Gauges reuse the time-weighted
 * machinery from stats/ so a gauge reports not just its last value but
 * its virtual-time average and peak.
 */

#ifndef AGENTSIM_TELEMETRY_REGISTRY_HH
#define AGENTSIM_TELEMETRY_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "stats/gauge.hh"
#include "stats/histogram.hh"

namespace agentsim::telemetry
{

/** Metric families the registry can hold. */
enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/** Common metric identity. */
class Metric
{
  public:
    Metric(MetricKind kind, std::string name, std::string help)
        : kind_(kind), name_(std::move(name)), help_(std::move(help))
    {
    }
    virtual ~Metric() = default;

    MetricKind kind() const { return kind_; }
    const std::string &name() const { return name_; }
    const std::string &help() const { return help_; }

  private:
    MetricKind kind_;
    std::string name_;
    std::string help_;
};

/** Monotone counter (doubles cover both token and FLOP counts). */
class Counter : public Metric
{
  public:
    Counter(std::string name, std::string help)
        : Metric(MetricKind::Counter, std::move(name), std::move(help))
    {
    }

    /** Increment by @p delta (>= 0). */
    void add(double delta = 1.0) { value_ += delta; }

    /**
     * Overwrite with an externally accumulated total (end-of-run
     * export from an EngineStats-style aggregate).
     */
    void set(double total) { value_ = total; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Point-in-time gauge with a time-weighted history. */
class Gauge : public Metric
{
  public:
    Gauge(std::string name, std::string help)
        : Metric(MetricKind::Gauge, std::move(name), std::move(help))
    {
    }

    /** Record that the gauge becomes @p value at sim time @p now. */
    void set(sim::Tick now, double value)
    {
        series_.set(now, value);
    }

    double value() const { return series_.current(); }

    /** Time-weighted history (average / max queries). */
    const stats::TimeWeightedGauge &series() const { return series_; }

  private:
    stats::TimeWeightedGauge series_;
};

/** Fixed-bucket histogram (Prometheus cumulative-bucket exposition). */
class HistogramMetric : public Metric
{
  public:
    HistogramMetric(std::string name, std::string help, double lo,
                    double hi, std::size_t bins)
        : Metric(MetricKind::Histogram, std::move(name),
                 std::move(help)),
          hist_(lo, hi, bins)
    {
    }

    void observe(double x)
    {
        hist_.add(x);
        sum_ += x;
    }

    std::size_t count() const { return hist_.count(); }
    double sum() const { return sum_; }
    const stats::Histogram &histogram() const { return hist_; }

  private:
    stats::Histogram hist_;
    double sum_ = 0.0;
};

/**
 * The registry. Metrics are created on first use and keep registration
 * order in every export. Single-threaded, like the simulator.
 */
class MetricsRegistry
{
  public:
    /** Find-or-create a counter. Panics on a kind mismatch. */
    Counter &counter(const std::string &name, const std::string &help);

    /** Find-or-create a gauge. */
    Gauge &gauge(const std::string &name, const std::string &help);

    /**
     * Find-or-create a histogram over [lo, hi) with @p bins equal
     * buckets. Range arguments are ignored if the name exists.
     */
    HistogramMetric &histogram(const std::string &name,
                               const std::string &help, double lo,
                               double hi, std::size_t bins);

    /** Number of registered metric families. */
    std::size_t families() const { return metrics_.size(); }

    /**
     * Append one CSV row capturing every scalar metric at sim time
     * @p now (counters and gauges by value; histograms as _count and
     * _sum columns). Metrics registered after the first snapshot
     * start appearing in later exports with empty leading cells kept
     * consistent by column order, so register before sampling.
     */
    void snapshot(sim::Tick now);

    /** Rows recorded by snapshot(). */
    std::size_t snapshots() const { return rows_.size(); }

    /**
     * Visit every scalar the registry exposes (counters and gauges by
     * value; histograms as <name>_count and <name>_sum), in
     * registration order. This is the hook the time-series store uses
     * to sample the whole registry at a fixed cadence.
     */
    void forEachScalar(
        const std::function<void(const std::string &, double)> &fn)
        const;

    /**
     * Prometheus text exposition of current values: # HELP / # TYPE
     * per family; histograms as cumulative le-buckets plus _sum and
     * _count.
     */
    std::string renderPrometheus() const;

    /** CSV of all snapshot() rows: time_s column plus one per scalar. */
    std::string renderCsv() const;

    /** Drop all metrics and snapshots. */
    void clear();

  private:
    std::vector<std::unique_ptr<Metric>> metrics_;
    std::unordered_map<std::string, std::size_t> index_;
    /** Snapshot rows: time plus values in column order. */
    struct Row
    {
        sim::Tick tick;
        std::vector<double> values;
    };
    std::vector<Row> rows_;

    Metric *find(const std::string &name, MetricKind kind);

    /** CSV column headers for the current metric set. */
    std::vector<std::string> csvColumns() const;

    /** CSV cell values for the current metric set. */
    std::vector<double> csvValues() const;
};

/** Write @p text to @p path (truncating). @return success. */
bool writeTextFile(const std::string &path, const std::string &text);

/**
 * Write a telemetry/report artifact with uniform outcome reporting:
 * on success prints "telemetry: wrote <what> to <path>" to stdout; on
 * failure prints an error (with errno detail) to stderr. Binaries
 * writing artifacts route through this so an unwritable path is
 * always loud — and they exit non-zero when it returns false.
 */
bool writeArtifact(const std::string &path, const std::string &text,
                   const std::string &what);

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_REGISTRY_HH
