/**
 * @file
 * Windowed time-series store: per-metric ring buffers sampled at a
 * fixed sim-clock cadence.
 *
 * The metrics registry answers "what is the value now"; the Chrome
 * trace answers "what happened to this request". Neither answers the
 * operator question "what did the system look like over the last N
 * seconds" without unbounded retention. This store does: every
 * registered metric (plus any live signal recorded directly) is
 * sampled into a bounded ring, so windowed queries — rate of a
 * counter, derivative of a gauge, min/mean/max over an interval —
 * stay O(window) at a fixed memory cost regardless of run length.
 *
 * The flight recorder exports a window of this store into each
 * incident bundle, giving every alert its surrounding context.
 */

#ifndef AGENTSIM_TELEMETRY_TIMESERIES_HH
#define AGENTSIM_TELEMETRY_TIMESERIES_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace agentsim::telemetry
{

class MetricsRegistry;

/** One (tick, value) observation in a series ring. */
struct TsPoint
{
    sim::Tick tick = 0;
    double value = 0.0;
};

/** Aggregate of the points inside a query window. */
struct TsWindowStats
{
    std::size_t samples = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double last = 0.0;
};

class TimeSeriesStore
{
  public:
    struct Config
    {
        /** Sampling cadence, virtual seconds (sample() callers honor
         *  this; record() is cadence-free). */
        double periodSeconds = 0.5;
        /** Points retained per series (ring capacity). */
        std::size_t capacity = 512;
    };

    TimeSeriesStore() = default;
    explicit TimeSeriesStore(Config config) : config_(config) {}

    void setConfig(Config config);
    const Config &config() const { return config_; }

    /** Record one point of a named live signal. */
    void record(const std::string &name, sim::Tick now, double value);

    /**
     * Sample every scalar the registry exposes at @p now (one ring
     * point per metric). The periodic sampler coroutine calls this at
     * config().periodSeconds cadence.
     */
    void sample(const MetricsRegistry &registry, sim::Tick now);

    std::size_t seriesCount() const { return series_.size(); }
    bool has(const std::string &name) const
    {
        return index_.count(name) != 0;
    }

    /** Retained points of @p name inside [from, to], oldest first. */
    std::vector<TsPoint> window(const std::string &name, sim::Tick from,
                                sim::Tick to) const;

    /** Min/max/mean/last of @p name inside [from, to]. */
    TsWindowStats windowStats(const std::string &name, sim::Tick from,
                              sim::Tick to) const;

    /**
     * Average increase per second of @p name across [from, to]
     * (last - first over elapsed): the windowed *rate* of a counter.
     * 0 with fewer than two in-window points.
     */
    double windowRate(const std::string &name, sim::Tick from,
                      sim::Tick to) const;

    /**
     * Instantaneous derivative at the newest in-window point (slope
     * of the last two points): the direction a gauge is heading.
     * 0 with fewer than two in-window points.
     */
    double windowDerivative(const std::string &name, sim::Tick from,
                            sim::Tick to) const;

    /**
     * CSV of every series restricted to [from, to]: long format
     * (series,time_s,value) so rings with different cadences export
     * cleanly side by side.
     */
    std::string renderCsvWindow(sim::Tick from, sim::Tick to) const;

    /** Total points currently retained across all rings. */
    std::size_t pointsRetained() const;

    /** Drop all series (reused across bench sweep points). */
    void clear();

  private:
    /** Fixed-capacity ring of (tick, value) points. */
    struct Ring
    {
        std::string name;
        std::vector<TsPoint> points; ///< size <= capacity
        std::size_t head = 0;        ///< next write slot once full
        bool full = false;

        void push(const TsPoint &p, std::size_t capacity);
        /** Points in [from, to], oldest first. */
        std::vector<TsPoint> window(sim::Tick from, sim::Tick to) const;
    };

    Config config_;
    std::vector<Ring> series_;
    std::unordered_map<std::string, std::size_t> index_;

    Ring &ringFor(const std::string &name);
    const Ring *findRing(const std::string &name) const;
};

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_TIMESERIES_HH
