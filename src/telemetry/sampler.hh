/**
 * @file
 * Per-iteration engine sampler: a ring-buffer time series of one
 * sample per (strided) engine step, recording the batch composition,
 * token budget split, KV-pool occupancy and cache behaviour the
 * paper's serving figures are plotted from.
 *
 * The sampler is cheap enough to stay on by default: recording is one
 * struct copy into a preallocated ring; no allocation, no I/O. The
 * CSV export is what plotting scripts consume.
 */

#ifndef AGENTSIM_TELEMETRY_SAMPLER_HH
#define AGENTSIM_TELEMETRY_SAMPLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace agentsim::telemetry
{

/** One engine-iteration observation. */
struct IterationSample
{
    /** Sim time at step completion. */
    sim::Tick tick = 0;
    /** Engine step ordinal (1-based, counts unsampled steps too). */
    std::int64_t step = 0;

    /** Sequences in the running batch after this step. */
    std::int32_t running = 0;
    /** Requests still waiting for admission. */
    std::int32_t waiting = 0;

    /** Prompt tokens prefilled in this step (chunked prefill). */
    std::int64_t prefillTokens = 0;
    /** Decode tokens generated in this step. */
    std::int64_t decodeTokens = 0;

    /** KV blocks referenced by live sequences. */
    std::int64_t kvBlocksUsed = 0;
    /** KV blocks not referenced (free list + evictable cache). */
    std::int64_t kvBlocksFree = 0;

    /** Cumulative prefix-cache token hit rate in [0, 1]. */
    double prefixHitRate = 0.0;
    /** Cumulative preemption count. */
    std::int64_t preemptions = 0;
    /** Cumulative cache-block evictions. */
    std::int64_t evictions = 0;

    /** Wall-clock duration of this step, seconds. */
    double stepSeconds = 0.0;
};

/** Sampler knobs. */
struct SamplerConfig
{
    /** Keep every Nth step (1 = all); 0 disables sampling. */
    int stride = 1;
    /** Ring capacity in samples; older samples are overwritten. */
    std::size_t capacity = 1 << 16;
};

/**
 * Strided ring buffer of IterationSamples. Owned by the engine; read
 * by exporters after (or during) a run.
 */
class EngineSampler
{
  public:
    explicit EngineSampler(const SamplerConfig &config = {});

    bool enabled() const { return config_.stride > 0; }
    const SamplerConfig &config() const { return config_; }

    /**
     * Offer one step observation; kept only on stride boundaries.
     * @p sample.step must increase across calls.
     */
    void record(const IterationSample &sample);

    /** Samples currently held, oldest first (ring-wrap resolved). */
    std::vector<IterationSample> samples() const;

    /** Samples kept (<= capacity once the ring wraps). */
    std::size_t size() const;

    /** Samples overwritten after the ring wrapped. */
    std::size_t dropped() const { return dropped_; }

    /** Steps offered to record(), sampled or not. */
    std::int64_t stepsSeen() const { return seen_; }

    void clear();

    /** Render samples as CSV (header + one row per sample). */
    static std::string renderCsv(
        const std::vector<IterationSample> &samples);

  private:
    SamplerConfig config_;
    std::vector<IterationSample> ring_;
    std::size_t next_ = 0;
    bool wrapped_ = false;
    std::size_t dropped_ = 0;
    std::int64_t seen_ = 0;
};

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_SAMPLER_HH
