#include "telemetry/sampler.hh"

#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace agentsim::telemetry
{

EngineSampler::EngineSampler(const SamplerConfig &config)
    : config_(config)
{
    AGENTSIM_ASSERT(config_.stride >= 0, "negative sampler stride");
    if (enabled()) {
        AGENTSIM_ASSERT(config_.capacity > 0,
                        "sampler enabled with zero capacity");
        ring_.reserve(config_.capacity);
    }
}

void
EngineSampler::record(const IterationSample &sample)
{
    if (!enabled())
        return;
    ++seen_;
    if ((seen_ - 1) % config_.stride != 0)
        return;
    if (ring_.size() < config_.capacity) {
        ring_.push_back(sample);
        return;
    }
    // Ring is full: overwrite the oldest slot.
    wrapped_ = true;
    ++dropped_;
    ring_[next_] = sample;
    next_ = (next_ + 1) % config_.capacity;
}

std::size_t
EngineSampler::size() const
{
    return ring_.size();
}

std::vector<IterationSample>
EngineSampler::samples() const
{
    std::vector<IterationSample> out;
    out.reserve(ring_.size());
    if (!wrapped_) {
        out = ring_;
        return out;
    }
    // Oldest sample sits at next_ once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    return out;
}

void
EngineSampler::clear()
{
    ring_.clear();
    next_ = 0;
    wrapped_ = false;
    dropped_ = 0;
    seen_ = 0;
}

std::string
EngineSampler::renderCsv(const std::vector<IterationSample> &samples)
{
    std::string out =
        "time_s,step,running,waiting,prefill_tokens,decode_tokens,"
        "kv_blocks_used,kv_blocks_free,prefix_hit_rate,preemptions,"
        "evictions,step_seconds\n";
    for (const auto &s : samples) {
        out += sim::strfmt(
            "%.9f,%lld,%d,%d,%lld,%lld,%lld,%lld,%.6f,%lld,%lld,%.9f\n",
            sim::toSeconds(s.tick), static_cast<long long>(s.step),
            s.running, s.waiting,
            static_cast<long long>(s.prefillTokens),
            static_cast<long long>(s.decodeTokens),
            static_cast<long long>(s.kvBlocksUsed),
            static_cast<long long>(s.kvBlocksFree), s.prefixHitRate,
            static_cast<long long>(s.preemptions),
            static_cast<long long>(s.evictions), s.stepSeconds);
    }
    return out;
}

} // namespace agentsim::telemetry
