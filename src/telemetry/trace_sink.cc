#include "telemetry/trace_sink.hh"

#include "telemetry/flight_recorder.hh"
#include "telemetry/registry.hh"

#include "sim/strfmt.hh"

namespace agentsim::telemetry
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += sim::strfmt("\\u%04x",
                                   static_cast<unsigned>(
                                       static_cast<unsigned char>(c)));
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
TraceSink::processName(int pid, const std::string &name)
{
    if (!named_.insert({pid, -1}).second)
        return;
    events_.push_back(sim::strfmt(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
        "\"args\":{\"name\":\"%s\"}}",
        pid, jsonEscape(name).c_str()));
    if (recorder_ != nullptr)
        recorder_->noteMetadata(events_.back());
}

void
TraceSink::threadName(int pid, std::uint64_t tid,
                      const std::string &name)
{
    if (!named_.insert({pid, static_cast<std::int64_t>(tid)}).second)
        return;
    events_.push_back(sim::strfmt(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
        "\"tid\":%llu,\"args\":{\"name\":\"%s\"}}",
        pid, static_cast<unsigned long long>(tid),
        jsonEscape(name).c_str()));
    if (recorder_ != nullptr)
        recorder_->noteMetadata(events_.back());
}

bool
TraceSink::admit()
{
    if (capacity_ != 0 && events_.size() >= capacity_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
TraceSink::complete(int pid, std::uint64_t tid, const std::string &name,
                    const char *cat, sim::Tick start, sim::Tick end,
                    const std::string &args_json)
{
    // The recorder's ring keeps capturing even once this sink's own
    // capacity saturates, so it sees every event.
    const bool keep = admit();
    if (!keep && recorder_ == nullptr)
        return;
    std::string ev = sim::strfmt(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":%d,\"tid\":%llu",
        jsonEscape(name).c_str(), cat, static_cast<long long>(start),
        static_cast<long long>(end - start), pid,
        static_cast<unsigned long long>(tid));
    if (!args_json.empty())
        ev += ",\"args\":{" + args_json + "}";
    ev += "}";
    if (recorder_ != nullptr)
        recorder_->noteTraceEvent(start, end, ev);
    if (keep)
        events_.push_back(std::move(ev));
}

void
TraceSink::instant(int pid, std::uint64_t tid, const std::string &name,
                   const char *cat, sim::Tick at)
{
    const bool keep = admit();
    if (!keep && recorder_ == nullptr)
        return;
    std::string ev = sim::strfmt(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%lld,"
        "\"pid\":%d,\"tid\":%llu,\"s\":\"t\"}",
        jsonEscape(name).c_str(), cat, static_cast<long long>(at), pid,
        static_cast<unsigned long long>(tid));
    if (recorder_ != nullptr)
        recorder_->noteTraceEvent(at, at, ev);
    if (keep)
        events_.push_back(std::move(ev));
}

void
TraceSink::counter(int pid, const std::string &name, sim::Tick at,
                   const std::string &args_json)
{
    const bool keep = admit();
    if (!keep && recorder_ == nullptr)
        return;
    std::string ev = sim::strfmt(
        "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%lld,\"pid\":%d,"
        "\"args\":{%s}}",
        jsonEscape(name).c_str(), static_cast<long long>(at), pid,
        args_json.c_str());
    if (recorder_ != nullptr)
        recorder_->noteTraceEvent(at, at, ev);
    if (keep)
        events_.push_back(std::move(ev));
}

void
TraceSink::asyncBegin(int pid, std::uint64_t id,
                      const std::string &name, const char *cat,
                      sim::Tick at, const std::string &args_json)
{
    const bool keep = admit();
    if (!keep && recorder_ == nullptr)
        return;
    std::string ev = sim::strfmt(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"b\",\"id\":\"0x%llx\","
        "\"ts\":%lld,\"pid\":%d,\"tid\":%llu",
        jsonEscape(name).c_str(), cat,
        static_cast<unsigned long long>(id),
        static_cast<long long>(at), pid,
        static_cast<unsigned long long>(id));
    if (!args_json.empty())
        ev += ",\"args\":{" + args_json + "}";
    ev += "}";
    if (recorder_ != nullptr)
        recorder_->noteTraceEvent(at, at, ev);
    if (keep)
        events_.push_back(std::move(ev));
}

void
TraceSink::asyncEnd(int pid, std::uint64_t id, const std::string &name,
                    const char *cat, sim::Tick at)
{
    const bool keep = admit();
    if (!keep && recorder_ == nullptr)
        return;
    std::string ev = sim::strfmt(
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"e\",\"id\":\"0x%llx\","
        "\"ts\":%lld,\"pid\":%d,\"tid\":%llu}",
        jsonEscape(name).c_str(), cat,
        static_cast<unsigned long long>(id),
        static_cast<long long>(at), pid,
        static_cast<unsigned long long>(id));
    if (recorder_ != nullptr)
        recorder_->noteTraceEvent(at, at, ev);
    if (keep)
        events_.push_back(std::move(ev));
}

std::string
TraceSink::toJson() const
{
    std::string out = "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += events_[i];
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
TraceSink::writeJson(const std::string &path) const
{
    return writeTextFile(path, toJson());
}

void
TraceSink::clear()
{
    events_.clear();
    named_.clear();
    dropped_ = 0;
}

} // namespace agentsim::telemetry
