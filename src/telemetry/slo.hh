/**
 * @file
 * Online SLO monitoring: streaming TTFT/TBT/E2E percentiles, windowed
 * SLO attainment, and burn-rate alerting — watching the serving system
 * *while it runs* rather than summarizing after the fact.
 *
 * The tracker follows the SRE error-budget formulation: each latency
 * metric has a target (e.g. "TTFT under 1 s for 95% of requests"); the
 * error budget is the tolerated violation fraction (1 - attainment
 * target); the *burn rate* of a time window is the window's violation
 * fraction divided by that budget. A burn rate of 1 consumes the
 * budget exactly; a crash or stall pushes it far above 1 long before
 * the end-of-run histogram would show anything. When a window's burn
 * rate crosses the alert threshold, the tracker logs a warning, emits
 * a trace instant on the SLO track, and counts the alert — so fault
 * injection (bench/chaos_slo) visibly trips alerts in both the log and
 * the Chrome trace.
 *
 * Percentiles come from constant-memory P² estimators (stats/quantile)
 * so the tracker never grows with the run.
 */

#ifndef AGENTSIM_TELEMETRY_SLO_HH
#define AGENTSIM_TELEMETRY_SLO_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/types.hh"
#include "stats/quantile.hh"
#include "telemetry/registry.hh"
#include "telemetry/trace_sink.hh"

namespace agentsim::telemetry
{

/** The latency metrics the tracker watches. */
enum class SloMetric
{
    Ttft, ///< time to first token
    Tbt,  ///< time between tokens (per decode step)
    E2e,  ///< submission-to-completion latency
};

std::string_view sloMetricName(SloMetric m);

/** SLO objectives and alerting policy. */
struct SloConfig
{
    /** Per-metric latency targets, seconds (<= 0 disables a metric). */
    double ttftTargetSeconds = 1.0;
    double tbtTargetSeconds = 0.25;
    double e2eTargetSeconds = 60.0;

    /** Fraction of observations that must meet the target (the SLO
     *  objective, e.g. 0.95 for "95% under target"). */
    double attainmentTarget = 0.95;

    /** Evaluation window length, virtual seconds. */
    double windowSeconds = 10.0;

    /** Alert when a window's burn rate reaches this multiple of the
     *  error budget. */
    double burnRateAlertThreshold = 2.0;

    /** Observations a window needs before it can alert (debounce). */
    std::int64_t minWindowSamples = 10;
};

/**
 * The tracker. Feed it observations stamped with virtual time; it
 * maintains streaming percentiles, lifetime and windowed attainment,
 * and fires at most one burn-rate alert per metric per window.
 * Single-threaded, like everything on the simulation clock.
 */
class SloTracker
{
  public:
    explicit SloTracker(const SloConfig &config);

    /** Attach a trace sink for alert instants (nullptr detaches). */
    void attachTrace(TraceSink *sink);

    /** Attach a flight recorder: every burn-rate alert becomes an
     *  incident trigger (nullptr detaches). */
    void attachRecorder(FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

    /** Record a latency observation for @p metric at time @p now. */
    void observe(SloMetric metric, sim::Tick now, double seconds);

    /**
     * Record an unconditional violation (request cancelled, shed or
     * lost to a node failure — it has no meaningful latency but it
     * burns budget all the same).
     */
    void observeFailure(SloMetric metric, sim::Tick now);

    /** Streaming percentile estimate (q in {0.5, 0.95, 0.99}). */
    double percentile(SloMetric metric, double q) const;

    /** Lifetime attainment: fraction of observations under target. */
    double attainment(SloMetric metric) const;

    /** Burn rate of the current (possibly partial) window. */
    double windowBurnRate(SloMetric metric, sim::Tick now) const;

    /** Burn-rate alerts fired so far, all metrics. */
    std::int64_t alertsFired() const;

    /** Alerts fired for one metric. */
    std::int64_t alertsFired(SloMetric metric) const;

    /** Lifetime observations for one metric. */
    std::int64_t observations(SloMetric metric) const;

    /** Lifetime violations for one metric. */
    std::int64_t violations(SloMetric metric) const;

    /**
     * Export agentsim_slo_* families (percentile gauges, attainment,
     * burn rate, violation and alert counters) into @p registry.
     */
    void exportMetrics(MetricsRegistry &registry, sim::Tick now) const;

    /** Drop all state (reused across bench sweep points). */
    void reset();

    const SloConfig &config() const { return config_; }

  private:
    struct Tracker
    {
        double targetSeconds = 0.0;
        stats::P2Quantile p50{0.50};
        stats::P2Quantile p95{0.95};
        stats::P2Quantile p99{0.99};
        std::int64_t total = 0;
        std::int64_t violations = 0;
        /** Current window: [windowStart, windowStart + window). */
        sim::Tick windowStart = 0;
        std::int64_t windowTotal = 0;
        std::int64_t windowViolations = 0;
        bool windowAlerted = false;
        std::int64_t alerts = 0;
    };

    SloConfig config_;
    sim::Tick windowTicks_ = 0;
    std::array<Tracker, 3> trackers_;
    TraceSink *trace_ = nullptr;
    FlightRecorder *recorder_ = nullptr;

    Tracker &tracker(SloMetric m);
    const Tracker &tracker(SloMetric m) const;

    /** Roll the metric's window forward to contain @p now. */
    void rotateWindow(Tracker &t, sim::Tick now);

    /** Account one observation; @p violated forces a violation. */
    void record(SloMetric metric, sim::Tick now, double seconds,
                bool violated, bool has_latency);

    /** Evaluate the burn rate and fire an alert if warranted. */
    void maybeAlert(SloMetric metric, Tracker &t, sim::Tick now);
};

} // namespace agentsim::telemetry

#endif // AGENTSIM_TELEMETRY_SLO_HH
