#include "telemetry/slo.hh"

#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "telemetry/flight_recorder.hh"

namespace agentsim::telemetry
{

std::string_view
sloMetricName(SloMetric m)
{
    switch (m) {
    case SloMetric::Ttft:
        return "ttft";
    case SloMetric::Tbt:
        return "tbt";
    case SloMetric::E2e:
        return "e2e";
    }
    return "?";
}

SloTracker::SloTracker(const SloConfig &config) : config_(config)
{
    AGENTSIM_ASSERT(config.windowSeconds > 0.0,
                    "SLO window must be positive");
    AGENTSIM_ASSERT(config.attainmentTarget > 0.0 &&
                        config.attainmentTarget < 1.0,
                    "attainment target must lie inside (0, 1)");
    windowTicks_ = sim::fromSeconds(config.windowSeconds);
    trackers_[0].targetSeconds = config.ttftTargetSeconds;
    trackers_[1].targetSeconds = config.tbtTargetSeconds;
    trackers_[2].targetSeconds = config.e2eTargetSeconds;
}

void
SloTracker::attachTrace(TraceSink *sink)
{
    trace_ = sink;
    if (trace_ == nullptr)
        return;
    trace_->processName(TracePid::kSlo, "SLO monitor");
    trace_->threadName(TracePid::kSlo, 1, "burn-rate alerts");
}

SloTracker::Tracker &
SloTracker::tracker(SloMetric m)
{
    return trackers_[static_cast<std::size_t>(m)];
}

const SloTracker::Tracker &
SloTracker::tracker(SloMetric m) const
{
    return trackers_[static_cast<std::size_t>(m)];
}

void
SloTracker::rotateWindow(Tracker &t, sim::Tick now)
{
    if (now < t.windowStart + windowTicks_)
        return;
    // Jump straight to the window containing `now`; intervening empty
    // windows carry no samples and thus no alerts.
    const sim::Tick elapsed = now - t.windowStart;
    t.windowStart += (elapsed / windowTicks_) * windowTicks_;
    t.windowTotal = 0;
    t.windowViolations = 0;
    t.windowAlerted = false;
}

void
SloTracker::record(SloMetric metric, sim::Tick now, double seconds,
                   bool violated, bool has_latency)
{
    Tracker &t = tracker(metric);
    if (t.targetSeconds <= 0.0)
        return;
    rotateWindow(t, now);

    if (has_latency) {
        t.p50.add(seconds);
        t.p95.add(seconds);
        t.p99.add(seconds);
        violated = violated || seconds > t.targetSeconds;
    }
    ++t.total;
    ++t.windowTotal;
    if (violated) {
        ++t.violations;
        ++t.windowViolations;
    }
    maybeAlert(metric, t, now);
}

void
SloTracker::observe(SloMetric metric, sim::Tick now, double seconds)
{
    record(metric, now, seconds, false, true);
}

void
SloTracker::observeFailure(SloMetric metric, sim::Tick now)
{
    record(metric, now, 0.0, true, false);
}

void
SloTracker::maybeAlert(SloMetric metric, Tracker &t, sim::Tick now)
{
    if (t.windowAlerted || t.windowTotal < config_.minWindowSamples)
        return;
    const double budget = 1.0 - config_.attainmentTarget;
    const double frac = static_cast<double>(t.windowViolations) /
                        static_cast<double>(t.windowTotal);
    const double burn = frac / budget;
    if (burn < config_.burnRateAlertThreshold)
        return;

    t.windowAlerted = true;
    ++t.alerts;
    const std::string name(sloMetricName(metric));
    AGENTSIM_WARN("SLO burn-rate alert: %s burn %.1fx budget "
                  "(%lld/%lld over target %.3fs in window at t=%.1fs)",
                  name.c_str(), burn,
                  static_cast<long long>(t.windowViolations),
                  static_cast<long long>(t.windowTotal),
                  t.targetSeconds, sim::toSeconds(now));
    if (trace_ != nullptr) {
        trace_->instant(TracePid::kSlo, 1,
                        sim::strfmt("slo_alert_%s burn=%.1fx",
                                    name.c_str(), burn),
                        "slo", now);
    }
    if (recorder_ != nullptr) {
        recorder_->trigger(IncidentTrigger::SloBurn, now,
                           sim::strfmt("%s burn %.1fx budget "
                                       "(%lld/%lld over %.3fs)",
                                       name.c_str(), burn,
                                       static_cast<long long>(
                                           t.windowViolations),
                                       static_cast<long long>(
                                           t.windowTotal),
                                       t.targetSeconds));
    }
}

double
SloTracker::percentile(SloMetric metric, double q) const
{
    const Tracker &t = tracker(metric);
    if (q <= 0.5)
        return t.p50.value();
    if (q <= 0.95)
        return t.p95.value();
    return t.p99.value();
}

double
SloTracker::attainment(SloMetric metric) const
{
    const Tracker &t = tracker(metric);
    if (t.total == 0)
        return 1.0;
    return 1.0 - static_cast<double>(t.violations) /
                     static_cast<double>(t.total);
}

double
SloTracker::windowBurnRate(SloMetric metric, sim::Tick now) const
{
    const Tracker &t = tracker(metric);
    if (now >= t.windowStart + windowTicks_ || t.windowTotal == 0)
        return 0.0;
    const double budget = 1.0 - config_.attainmentTarget;
    return static_cast<double>(t.windowViolations) /
           static_cast<double>(t.windowTotal) / budget;
}

std::int64_t
SloTracker::alertsFired() const
{
    std::int64_t total = 0;
    for (const Tracker &t : trackers_)
        total += t.alerts;
    return total;
}

std::int64_t
SloTracker::alertsFired(SloMetric metric) const
{
    return tracker(metric).alerts;
}

std::int64_t
SloTracker::observations(SloMetric metric) const
{
    return tracker(metric).total;
}

std::int64_t
SloTracker::violations(SloMetric metric) const
{
    return tracker(metric).violations;
}

void
SloTracker::exportMetrics(MetricsRegistry &registry, sim::Tick now) const
{
    for (std::size_t i = 0; i < trackers_.size(); ++i) {
        const auto metric = static_cast<SloMetric>(i);
        const Tracker &t = trackers_[i];
        if (t.targetSeconds <= 0.0)
            continue;
        const std::string base =
            sim::strfmt("agentsim_slo_%s",
                        std::string(sloMetricName(metric)).c_str());
        registry.gauge(base + "_p50_seconds", "streaming p50 latency")
            .set(now, t.p50.value());
        registry.gauge(base + "_p95_seconds", "streaming p95 latency")
            .set(now, t.p95.value());
        registry.gauge(base + "_p99_seconds", "streaming p99 latency")
            .set(now, t.p99.value());
        registry
            .gauge(base + "_attainment",
                   "lifetime fraction of observations under target")
            .set(now, attainment(metric));
        registry
            .gauge(base + "_burn_rate",
                   "current-window burn rate (violation fraction / "
                   "error budget)")
            .set(now, windowBurnRate(metric, now));
        registry
            .counter(base + "_violations_total",
                     "observations over target (failures included)")
            .set(static_cast<double>(t.violations));
        registry
            .counter(base + "_alerts_total",
                     "burn-rate alerts fired")
            .set(static_cast<double>(t.alerts));
    }
}

void
SloTracker::reset()
{
    for (std::size_t i = 0; i < trackers_.size(); ++i) {
        const double target = trackers_[i].targetSeconds;
        trackers_[i] = Tracker{};
        trackers_[i].targetSeconds = target;
    }
}

} // namespace agentsim::telemetry
