/**
 * @file
 * Public request/result types of the LLM serving engine.
 */

#ifndef AGENTSIM_SERVING_REQUEST_HH
#define AGENTSIM_SERVING_REQUEST_HH

#include <cstdint>
#include <vector>

#include "kv/block_manager.hh"
#include "serving/cost.hh"
#include "sim/types.hh"
#include "telemetry/span.hh"

namespace agentsim::serving
{

/** One generation request submitted to the engine. */
struct GenRequest
{
    /** Prompt token ids (deterministic synthetic content). */
    std::vector<kv::TokenId> prompt;
    /**
     * Exact number of tokens to generate. The workload layer samples
     * realistic output lengths, so the engine does not model EOS.
     */
    std::int64_t maxNewTokens = 1;

    /**
     * Program/session identity: all LLM calls of one agent rollout
     * share a session id, letting program-aware schedulers (Autellix
     * [23]) prioritize by cumulative service. 0 = standalone.
     */
    std::uint64_t sessionId = 0;

    /**
     * SLO deadline measured from submission, seconds; the engine
     * cancels the request (result.timedOut) once it expires, whether
     * it is still queued or already decoding. 0 disables.
     */
    double deadlineSeconds = 0.0;

    /**
     * Agent-layer hint: expected seconds until this session's next
     * request, because the agent will block on a tool call in between
     * (paper §IV-A: ~1.2 s Wikipedia lookups with the GPU idle). When
     * > 0 and a KV spill tier is configured, the engine parks the
     * finished request's chain — demoting it out of HBM for the wait
     * and prefetching it back just before the continuation arrives.
     * 0 (default) disables parking.
     */
    double expectedParkSeconds = 0.0;

    /**
     * Caller's causal span (the LlmCall of an agent step, or a chat
     * turn root). When valid and a SpanCollector is attached, the
     * engine hangs queue/prefill/decode/migration phase spans under
     * it. Invalid (default) = no span emission.
     */
    telemetry::SpanRef parentSpan;
};

/** Completed generation with full accounting. */
struct GenResult
{
    /** Generated token ids, in order. */
    std::vector<kv::TokenId> tokens;

    /** Request could never fit in the KV pool. */
    bool failed = false;
    /** Generation was cut short by unrecoverable memory pressure. */
    bool truncated = false;
    /** Cancelled (explicit cancel() or node crash) before finishing. */
    bool cancelled = false;
    /** Cancelled because its deadline expired. */
    bool timedOut = false;
    /** Rejected at admission by queue-depth load shedding. */
    bool shed = false;
    /** The serving node crashed or was offline; retry elsewhere. */
    bool nodeFailure = false;

    /** True when generation ran to completion. */
    bool ok() const
    {
        return !failed && !cancelled && !timedOut && !shed &&
               !nodeFailure;
    }

    /** True when a client-side retry on another node makes sense. */
    bool retryable() const { return shed || nodeFailure; }

    std::int64_t promptTokens = 0;
    /** Prompt tokens served from the prefix cache on first admission. */
    std::int64_t cachedPromptTokens = 0;

    /** Seconds spent queued before first scheduling. */
    double queueSeconds = 0.0;
    /** Seconds of engine steps in which this request prefilled. */
    double prefillSeconds = 0.0;
    /** Seconds of engine steps in which this request decoded. */
    double decodeSeconds = 0.0;
    /** Host->GPU PCIe time restoring this request's spilled KV. */
    double transferSeconds = 0.0;
    /** Submission-to-completion wall time, seconds. */
    double totalSeconds = 0.0;
    /** Time to first output token (queueing + prefill), seconds. */
    double ttftSeconds = 0.0;

    /** FLOPs attributed to this request. */
    double flops = 0.0;
    /** Times this request was preempted (recompute). */
    int preemptions = 0;

    /**
     * Attributed resource ledger (GPU-second shares, KV block-seconds,
     * waste, cache savings, energy). Request ledgers sum to the
     * engine's aggregates — see serving/cost.hh.
     */
    CostLedger ledger;

    sim::Tick submitTick = 0;
    sim::Tick finishTick = 0;
};

} // namespace agentsim::serving

#endif // AGENTSIM_SERVING_REQUEST_HH
