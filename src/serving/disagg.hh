/**
 * @file
 * Disaggregated prefill/decode serving (Splitwise [37] /
 * DistServe [67], both cited by the paper's §IV phase analysis).
 *
 * A prefill node runs the compute-bound prompt phase and emits the
 * first token; the computed KV cache then crosses the interconnect to
 * a decode node which generates the remaining tokens. Decode traffic
 * never queues behind long prefills, which is exactly the
 * interference the paper blames for agent-serving tail latency
 * (keytakeaway #5/#8).
 */

#ifndef AGENTSIM_SERVING_DISAGG_HH
#define AGENTSIM_SERVING_DISAGG_HH

#include <memory>

#include "serving/engine.hh"

namespace agentsim::serving
{

/** Disaggregated-pair configuration. */
struct DisaggConfig
{
    /** Node dedicated to prompt processing. */
    EngineConfig prefillNode;
    /** Node dedicated to token generation. */
    EngineConfig decodeNode;
    /** KV-transfer bandwidth between the nodes, bytes/s
     *  (NVLink/InfiniBand class). */
    double interconnectBandwidth = 200e9;
};

/**
 * A prefill/decode node pair behind a single generate() API.
 */
class DisaggServer
{
  public:
    DisaggServer(sim::Simulation &sim, const DisaggConfig &config);

    DisaggServer(const DisaggServer &) = delete;
    DisaggServer &operator=(const DisaggServer &) = delete;

    /**
     * Serve one request: prefill on the prefill node, KV transfer,
     * decode on the decode node. The returned record merges both
     * phases (ttftSeconds reflects the prefill node + transfer).
     */
    sim::Task<GenResult> generate(GenRequest request);

    const LlmEngine &prefillEngine() const { return *prefill_; }
    const LlmEngine &decodeEngine() const { return *decode_; }

    /** Total GPU energy across both nodes up to @p now, joules. */
    double energyJoules(sim::Tick now) const;

  private:
    sim::Simulation &sim_;
    DisaggConfig config_;
    std::unique_ptr<LlmEngine> prefill_;
    std::unique_ptr<LlmEngine> decode_;
};

} // namespace agentsim::serving

#endif // AGENTSIM_SERVING_DISAGG_HH
