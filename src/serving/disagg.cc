#include "serving/disagg.hh"

#include "sim/logging.hh"

namespace agentsim::serving
{

DisaggServer::DisaggServer(sim::Simulation &sim,
                           const DisaggConfig &config)
    : sim_(sim), config_(config),
      prefill_(std::make_unique<LlmEngine>(sim, config.prefillNode)),
      decode_(std::make_unique<LlmEngine>(sim, config.decodeNode))
{
    if (!config_.decodeNode.enablePrefixCaching) {
        AGENTSIM_FATAL("disaggregated decode node needs prefix "
                       "caching to receive transferred KV");
    }
    if (config_.interconnectBandwidth <= 0)
        AGENTSIM_FATAL("non-positive interconnect bandwidth");
}

double
DisaggServer::energyJoules(sim::Tick now) const
{
    return prefill_->energyJoules(now) + decode_->energyJoules(now);
}

sim::Task<GenResult>
DisaggServer::generate(GenRequest request)
{
    const sim::Tick submit = sim_.now();
    const std::int64_t want = request.maxNewTokens;
    std::vector<kv::TokenId> prompt = std::move(request.prompt);

    // Phase 1: prompt processing + first token on the prefill node.
    GenRequest prefill_req;
    prefill_req.prompt = prompt;
    prefill_req.maxNewTokens = 1;
    GenResult head = co_await prefill_->generate(std::move(prefill_req));
    if (head.failed || head.tokens.empty() || want == 1) {
        head.totalSeconds = sim::toSeconds(sim_.now() - submit);
        head.submitTick = submit;
        co_return head;
    }

    // Phase 2: the prompt's KV crosses the interconnect. Preload
    // first, then charge for what actually landed: blocks the decode
    // node already holds (a shared workflow prefix, an earlier turn)
    // never cross the wire, and a partial preload — the pool filled,
    // or one more block would have evicted this prefix's own head —
    // only pays for the blocks that stayed resident.
    prompt.push_back(head.tokens.front());
    const std::int64_t populated = decode_->preloadPrefix(prompt);
    if (populated > 0) {
        const double wire_bytes =
            static_cast<double>(populated) *
            static_cast<double>(config_.decodeNode.blockSize) *
            static_cast<double>(
                config_.decodeNode.model.kvBytesPerToken());
        co_await sim::delaySec(
            sim_, wire_bytes / config_.interconnectBandwidth);
    }

    // Phase 3: remaining tokens on the decode node; the preloaded
    // prefix turns its "prefill" into a cache hit.
    GenRequest decode_req;
    decode_req.prompt = prompt;
    decode_req.maxNewTokens = want - 1;
    GenResult tail = co_await decode_->generate(std::move(decode_req));

    // Merge the two phase records into one request view.
    GenResult out;
    out.tokens = std::move(head.tokens);
    out.tokens.insert(out.tokens.end(), tail.tokens.begin(),
                      tail.tokens.end());
    out.failed = tail.failed;
    out.truncated = tail.truncated;
    out.promptTokens = head.promptTokens;
    out.cachedPromptTokens = head.cachedPromptTokens;
    out.queueSeconds = head.queueSeconds + tail.queueSeconds;
    out.prefillSeconds = head.prefillSeconds + tail.prefillSeconds;
    out.decodeSeconds = head.decodeSeconds + tail.decodeSeconds;
    out.ttftSeconds = head.ttftSeconds;
    out.flops = head.flops + tail.flops;
    out.preemptions = head.preemptions + tail.preemptions;
    out.submitTick = submit;
    out.finishTick = sim_.now();
    out.totalSeconds = sim::toSeconds(out.finishTick - submit);
    co_return out;
}

} // namespace agentsim::serving
