#include "serving/engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace agentsim::serving
{

namespace
{

/** Deterministic synthetic output token for (seed, request, index). */
kv::TokenId
outputToken(std::uint64_t seed, std::uint64_t req_id, std::uint64_t idx)
{
    return sim::hashCombine(sim::hashCombine(seed, req_id ^ 0xa5a5a5a5u),
                            idx);
}

} // namespace

std::int64_t
LlmEngine::derivePoolBlocks(const EngineConfig &config)
{
    std::int64_t pool_bytes = config.kvPoolBytes;
    if (pool_bytes == 0) {
        const std::int64_t total = config.node.totalMemory();
        const std::int64_t weights = config.model.weightBytes();
        const auto reserve =
            static_cast<std::int64_t>(0.10 * static_cast<double>(total));
        pool_bytes = total - weights - reserve;
        if (pool_bytes <= 0) {
            AGENTSIM_FATAL("no GPU memory left for KV cache "
                           "(total %lld, weights %lld)",
                           static_cast<long long>(total),
                           static_cast<long long>(weights));
        }
    }
    const std::int64_t block_bytes =
        config.model.kvBytesPerToken() * config.blockSize;
    const std::int64_t blocks = pool_bytes / block_bytes;
    if (blocks <= 0)
        AGENTSIM_FATAL("KV pool smaller than one block");
    return blocks;
}

LlmEngine::LlmEngine(sim::Simulation &sim, const EngineConfig &config)
    : sim_(sim), config_(config), perf_(config.model, config.node),
      blocks_(kv::BlockManagerConfig{derivePoolBlocks(config),
                                     config.blockSize,
                                     config.enablePrefixCaching,
                                     config.evictionPolicy,
                                     config.hostCacheBlocks}),
      sampler_(telemetry::SamplerConfig{config.samplerStride,
                                        config.samplerCapacity}),
      loop_(runLoop())
{
}

void
LlmEngine::attachTrace(telemetry::TraceSink *sink)
{
    trace_ = sink;
    if (trace_ == nullptr)
        return;
    trace_->processName(telemetry::TracePid::kEngine, "LLM engine");
    trace_->threadName(telemetry::TracePid::kEngine, 1, "iterations");
    trace_->processName(telemetry::TracePid::kRequests, "requests");
}

void
LlmEngine::attachSlo(telemetry::SloTracker *slo)
{
    slo_ = slo;
    if (slo_ != nullptr && trace_ != nullptr)
        slo_->attachTrace(trace_);
}

void
LlmEngine::chargeKv(Req &req)
{
    const sim::Tick now = sim_.now();
    if (req.heldBlocks > 0 && now > req.kvMarkTick) {
        const double charge = static_cast<double>(req.heldBlocks) *
                              sim::toSeconds(now - req.kvMarkTick);
        req.ledger.kvBlockSeconds += charge;
        stats_.kvBlockSeconds += charge;
    }
    req.kvMarkTick = now;
    req.heldBlocks = blocks_.hasSeq(req.id)
                         ? blocks_.blocksNeeded(blocks_.seqTokens(req.id))
                         : 0;
}

void
LlmEngine::chargeQueue(Req &req)
{
    if (req.queuedSince < 0)
        return;
    req.ledger.queueSeconds += sim::toSeconds(sim_.now() - req.queuedSince);
    req.queuedSince = -1;
}

void
LlmEngine::sloFailure(const Req &req)
{
    if (slo_ == nullptr)
        return;
    const sim::Tick now = sim_.now();
    if (req.firstTokenTick < 0)
        slo_->observeFailure(telemetry::SloMetric::Ttft, now);
    slo_->observeFailure(telemetry::SloMetric::E2e, now);
}

void
LlmEngine::tracePhaseBegin(Req &req, const char *phase)
{
    req.tracePhase = phase;
    req.tracePhaseStart = sim_.now();
}

void
LlmEngine::tracePhaseEnd(Req &req)
{
    if (req.tracePhase == nullptr)
        return;
    if (trace_ != nullptr) {
        trace_->complete(telemetry::TracePid::kRequests, req.id,
                         req.tracePhase, "request",
                         req.tracePhaseStart, sim_.now());
    }
    req.tracePhase = nullptr;
}

std::int64_t
LlmEngine::blockBytes() const
{
    return config_.model.kvBytesPerToken() * config_.blockSize;
}

double
LlmEngine::energyJoules(sim::Tick now) const
{
    const double wall = sim::toSeconds(now);
    const double idle_seconds = std::max(0.0, wall - stats_.busySeconds);
    const double idle_power =
        config_.node.gpu.idlePower * config_.node.numGpus;
    return stats_.busyJoules + idle_power * idle_seconds;
}

sim::Task<GenResult>
LlmEngine::generate(GenRequest request, std::uint64_t *handle_out)
{
    AGENTSIM_ASSERT(!request.prompt.empty(),
                    "generate() with empty prompt");
    AGENTSIM_ASSERT(request.maxNewTokens >= 1,
                    "generate() must produce at least one token");
    if (handle_out != nullptr)
        *handle_out = 0;

    ++stats_.requestsSubmitted;

    // A crashed node refuses connections; the client should retry
    // against another node once the router notices.
    if (!online_) {
        GenResult r;
        r.nodeFailure = true;
        r.promptTokens =
            static_cast<std::int64_t>(request.prompt.size());
        r.submitTick = sim_.now();
        r.finishTick = sim_.now();
        co_return r;
    }

    // Requests beyond the model's context window are rejected up
    // front, as a real serving endpoint would do.
    if (static_cast<std::int64_t>(request.prompt.size()) +
            request.maxNewTokens >
        config_.model.contextWindow) {
        ++stats_.requestsFailed;
        AGENTSIM_WARN("request exceeds the %lld-token context window",
                      static_cast<long long>(
                          config_.model.contextWindow));
        GenResult r;
        r.failed = true;
        r.promptTokens =
            static_cast<std::int64_t>(request.prompt.size());
        r.submitTick = sim_.now();
        r.finishTick = sim_.now();
        co_return r;
    }

    // Admission control: bound the waiting queue rather than letting
    // overload turn into unbounded queueing delay (SLO load shedding).
    if (config_.maxQueueDepth > 0 &&
        waiting_.size() >= config_.maxQueueDepth) {
        ++stats_.requestsShed;
        if (trace_ != nullptr) {
            trace_->instant(telemetry::TracePid::kEngine, 1, "shed",
                            "engine", sim_.now());
        }
        if (slo_ != nullptr) {
            slo_->observeFailure(telemetry::SloMetric::Ttft, sim_.now());
            slo_->observeFailure(telemetry::SloMetric::E2e, sim_.now());
        }
        GenResult r;
        r.shed = true;
        r.promptTokens =
            static_cast<std::int64_t>(request.prompt.size());
        r.submitTick = sim_.now();
        r.finishTick = sim_.now();
        co_return r;
    }

    auto req = std::make_shared<Req>(sim_);
    req->id = nextId_++;
    req->sessionId = request.sessionId;
    req->prompt = std::move(request.prompt);
    req->maxNewTokens = request.maxNewTokens;
    req->submitTick = sim_.now();
    req->firstPromptLen = static_cast<std::int64_t>(req->prompt.size());
    if (request.deadlineSeconds > 0) {
        req->deadlineTick =
            sim_.now() + sim::fromSeconds(request.deadlineSeconds);
    }
    if (handle_out != nullptr)
        *handle_out = req->id;

    req->queuedSince = sim_.now();
    waiting_.push_back(req);
    if (trace_ != nullptr) {
        trace_->threadName(telemetry::TracePid::kRequests, req->id,
                           sim::strfmt("req %llu",
                                       static_cast<unsigned long long>(
                                           req->id)));
    }
    tracePhaseBegin(*req, "queued");
    if (wake_ && !wake_->ready())
        wake_->set(1);

    GenResult result = co_await req->done;
    co_return result;
}

sim::Task<void>
LlmEngine::runLoop()
{
    for (;;) {
        if (waiting_.empty() && running_.empty()) {
            wake_.emplace(sim_);
            co_await *wake_;
            wake_.reset();
        }
        expireDeadlines();
        StepPlan plan = buildStep();
        if (plan.work.empty())
            continue; // everything failed at admission; re-check
        const llm::StepCost cost = perf_.stepCost(plan.work);
        const sim::Tick step_start = sim_.now();
        co_await sim::delay(
            sim_, sim::fromSeconds(cost.seconds + plan.extraSeconds +
                                   plan.stallSeconds));
        commitStep(plan, cost, step_start);
    }
}

void
LlmEngine::preemptOne(StepPlan &plan)
{
    AGENTSIM_ASSERT(!running_.empty(), "preempt with empty batch");
    ReqPtr victim = running_.back();
    running_.pop_back();
    std::erase(plan.decoders, victim);

    // Settle the occupancy charge and remember how much KV is being
    // thrown away: re-prefilling below this watermark is pure waste.
    chargeKv(*victim);
    victim->recomputeWatermark = blocks_.seqTokens(victim->id);
    blocks_.release(victim->id);
    victim->heldBlocks = 0;
    // Recompute-style preemption: generated tokens fold into the
    // prompt; on re-admission the prefix cache usually restores them.
    victim->prompt.insert(victim->prompt.end(), victim->output.begin(),
                          victim->output.end());
    victim->prefillDone = 0;
    victim->decoding = false;
    ++victim->preemptions;
    ++stats_.preemptions;
    tracePhaseEnd(*victim);
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kRequests, victim->id,
                        "preempt", "request", sim_.now());
    }
    tracePhaseBegin(*victim, "queued");
    victim->queuedSince = sim_.now();
    waiting_.push_front(victim);
}

void
LlmEngine::failRequest(const ReqPtr &req)
{
    ++stats_.requestsFailed;
    AGENTSIM_WARN("request %llu cannot fit in the KV pool; failing",
                  static_cast<unsigned long long>(req->id));
    req->finished = true;
    req->decoding = false;
    chargeQueue(*req);
    tracePhaseEnd(*req);
    sloFailure(*req);
    GenResult r;
    r.failed = true;
    r.promptTokens = req->firstPromptLen;
    r.submitTick = req->submitTick;
    r.finishTick = sim_.now();
    r.totalSeconds = sim::toSeconds(r.finishTick - r.submitTick);
    r.ledger = req->ledger;
    req->done.set(std::move(r));
}

void
LlmEngine::finishRequest(const ReqPtr &req)
{
    chargeKv(*req);
    blocks_.release(req->id);
    req->heldBlocks = 0;
    std::erase(running_, req);
    req->finished = true;
    req->decoding = false;
    tracePhaseEnd(*req);
    ++stats_.requestsCompleted;
    sessionService_[req->sessionId] +=
        req->prefillSecondsAcc + req->decodeSecondsAcc;

    GenResult r;
    r.tokens = req->output;
    r.truncated = req->truncated;
    r.promptTokens = req->firstPromptLen;
    r.cachedPromptTokens = req->cachedPromptTokens;
    r.queueSeconds =
        sim::toSeconds(req->firstScheduleTick - req->submitTick);
    r.prefillSeconds = req->prefillSecondsAcc;
    r.decodeSeconds = req->decodeSecondsAcc;
    r.transferSeconds = req->transferSecondsAcc;
    r.flops = req->flopsAcc;
    r.preemptions = req->preemptions;
    r.submitTick = req->submitTick;
    r.finishTick = sim_.now();
    r.totalSeconds = sim::toSeconds(r.finishTick - r.submitTick);
    if (req->firstTokenTick >= 0) {
        r.ttftSeconds =
            sim::toSeconds(req->firstTokenTick - req->submitTick);
    }
    r.ledger = req->ledger;
    if (slo_ != nullptr) {
        slo_->observe(telemetry::SloMetric::E2e, sim_.now(),
                      r.totalSeconds);
    }
    req->done.set(std::move(r));
}

void
LlmEngine::cancelRequest(const ReqPtr &req, CancelCause cause)
{
    AGENTSIM_ASSERT(!req->finished, "cancel of a finished request");
    chargeKv(*req);
    if (blocks_.hasSeq(req->id))
        blocks_.release(req->id);
    req->heldBlocks = 0;
    chargeQueue(*req);
    std::erase(running_, req);
    if (auto it = std::find(waiting_.begin(), waiting_.end(), req);
        it != waiting_.end()) {
        waiting_.erase(it);
    }
    req->finished = true;
    req->decoding = false;
    tracePhaseEnd(*req);

    const char *label = nullptr;
    GenResult r;
    switch (cause) {
      case CancelCause::Client:
        ++stats_.requestsCancelled;
        r.cancelled = true;
        label = "cancel";
        break;
      case CancelCause::Deadline:
        ++stats_.requestsTimedOut;
        r.timedOut = true;
        label = "deadline";
        break;
      case CancelCause::NodeFailure:
        ++stats_.requestsCancelled;
        r.cancelled = true;
        r.nodeFailure = true;
        label = "node_failure";
        break;
    }
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kRequests, req->id, label,
                        "request", sim_.now());
    }

    // Partial output and accrued accounting still reach the caller.
    r.tokens = req->output;
    r.promptTokens = req->firstPromptLen;
    r.cachedPromptTokens = req->cachedPromptTokens;
    if (req->firstScheduleTick >= 0) {
        r.queueSeconds =
            sim::toSeconds(req->firstScheduleTick - req->submitTick);
    }
    r.prefillSeconds = req->prefillSecondsAcc;
    r.decodeSeconds = req->decodeSecondsAcc;
    r.transferSeconds = req->transferSecondsAcc;
    r.flops = req->flopsAcc;
    r.preemptions = req->preemptions;
    r.submitTick = req->submitTick;
    r.finishTick = sim_.now();
    r.totalSeconds = sim::toSeconds(r.finishTick - r.submitTick);
    if (req->firstTokenTick >= 0) {
        r.ttftSeconds =
            sim::toSeconds(req->firstTokenTick - req->submitTick);
    }
    r.ledger = req->ledger;
    sloFailure(*req);
    req->done.set(std::move(r));
}

bool
LlmEngine::cancel(std::uint64_t request_id)
{
    auto match = [&](const ReqPtr &req) {
        return req->id == request_id && !req->finished;
    };
    for (const auto &req : waiting_) {
        if (match(req)) {
            cancelRequest(req, CancelCause::Client);
            updateGauges();
            return true;
        }
    }
    for (const auto &req : running_) {
        if (match(req)) {
            cancelRequest(req, CancelCause::Client);
            updateGauges();
            return true;
        }
    }
    return false;
}

void
LlmEngine::expireDeadlines()
{
    const sim::Tick now = sim_.now();
    std::vector<ReqPtr> expired;
    auto collect = [&](const ReqPtr &req) {
        if (!req->finished && req->deadlineTick >= 0 &&
            now >= req->deadlineTick) {
            expired.push_back(req);
        }
    };
    for (const auto &req : waiting_)
        collect(req);
    for (const auto &req : running_)
        collect(req);
    for (const auto &req : expired)
        cancelRequest(req, CancelCause::Deadline);
    if (!expired.empty())
        updateGauges();
}

void
LlmEngine::crash()
{
    AGENTSIM_ASSERT(online_, "crash() on an offline engine");
    online_ = false;
    ++stats_.crashes;
    AGENTSIM_INFORM("engine crash: dropping %zu waiting + %zu running "
                    "requests, KV cache lost",
                    waiting_.size(), running_.size());

    std::vector<ReqPtr> victims(waiting_.begin(), waiting_.end());
    victims.insert(victims.end(), running_.begin(), running_.end());
    for (const auto &req : victims)
        cancelRequest(req, CancelCause::NodeFailure);
    // The node's memory is gone: prefix cache and host tier come back
    // cold after restart().
    blocks_.reset();
    pendingStallSeconds_ = 0.0;
    updateGauges();
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kEngine, 1, "crash",
                        "engine", sim_.now());
    }
}

void
LlmEngine::restart()
{
    AGENTSIM_ASSERT(!online_, "restart() on an online engine");
    online_ = true;
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kEngine, 1, "restart",
                        "engine", sim_.now());
    }
}

void
LlmEngine::injectStall(double seconds)
{
    AGENTSIM_ASSERT(seconds >= 0, "negative stall");
    pendingStallSeconds_ += seconds;
}

kv::TokenId
LlmEngine::genToken(Req &req)
{
    return outputToken(config_.seed, req.id, req.output.size());
}

std::int64_t
LlmEngine::preloadPrefix(std::span<const kv::TokenId> tokens)
{
    const std::int64_t populated = blocks_.preloadPrefix(tokens);
    updateGauges();
    return populated;
}

LlmEngine::StepPlan
LlmEngine::buildStep()
{
    StepPlan plan;
    const int bs = config_.blockSize;

    // Injected stalls (fault layer) extend the next step's wall time.
    if (pendingStallSeconds_ > 0) {
        plan.stallSeconds = pendingStallSeconds_;
        pendingStallSeconds_ = 0.0;
    }

    // 1. Every decoding sequence gets one token this step.
    for (const auto &req : running_) {
        if (req->decoding)
            plan.decoders.push_back(req);
    }

    // 2. Reserve append capacity for decoders crossing a block
    //    boundary; preempt the newest request until it fits.
    auto append_need = [&] {
        std::int64_t need = 0;
        for (const auto &req : plan.decoders) {
            if (blocks_.seqTokens(req->id) % bs == 0)
                ++need;
        }
        return need;
    };
    while (append_need() > blocks_.availableBlocks()) {
        if (running_.size() <= 1) {
            // A lone request has filled the entire pool: truncate it.
            ReqPtr req = running_.front();
            AGENTSIM_WARN("KV pool exhausted by request %llu; "
                          "truncating output",
                          static_cast<unsigned long long>(req->id));
            req->truncated = true;
            plan.decoders.clear();
            finishRequest(req);
            break;
        }
        preemptOne(plan);
    }

    for (const auto &req : plan.decoders)
        plan.work.decodeContexts.push_back(blocks_.seqTokens(req->id));

    std::int64_t budget =
        std::max<std::int64_t>(0, config_.maxBatchTokens -
                                      static_cast<std::int64_t>(
                                          plan.decoders.size()));

    // 3. Continue chunked prefill of already-admitted requests.
    for (const auto &req : running_) {
        if (budget == 0)
            break;
        if (req->decoding)
            continue;
        const auto prompt_len =
            static_cast<std::int64_t>(req->prompt.size());
        std::int64_t chunk =
            std::min(budget, prompt_len - req->prefillDone);
        if (chunk <= 0)
            continue;
        // Completing a prompt that ends exactly on a block boundary
        // emits its first output token into a fresh block; defer the
        // final prompt token if no block could be available.
        const bool completes = req->prefillDone + chunk == prompt_len;
        if (completes && prompt_len % bs == 0 &&
            blocks_.availableBlocks() == 0) {
            --chunk;
        }
        if (chunk <= 0)
            continue;
        plan.prefills.push_back({req, chunk});
        plan.work.prefills.push_back({chunk, req->prefillDone});
        budget -= chunk;
    }

    // 4. Admit waiting requests while budget and memory allow, in the
    //    order the scheduler policy dictates.
    while (budget > 0 && !waiting_.empty() &&
           running_.size() < static_cast<std::size_t>(
                                 config_.maxRunningSeqs)) {
        auto candidate = nextAdmissionCandidate();
        ReqPtr req = *candidate;
        const auto prompt_len =
            static_cast<std::int64_t>(req->prompt.size());
        const std::int64_t upper_bound =
            blocks_.blocksNeeded(prompt_len) + 1;
        if (upper_bound > blocks_.totalBlocks()) {
            waiting_.erase(candidate);
            failRequest(req);
            continue;
        }
        if (upper_bound > blocks_.availableBlocks())
            break; // the policy's best candidate does not fit

        auto alloc = blocks_.allocatePrompt(req->id, req->prompt);
        AGENTSIM_ASSERT(alloc.has_value(),
                        "allocation failed despite capacity check");
        waiting_.erase(candidate);
        running_.push_back(req);
        chargeQueue(*req);
        chargeKv(*req); // opens the occupancy charging interval

        // Host-tier restores skip prefill but pay a PCIe transfer.
        if (alloc->restoredTokens > 0) {
            const double restore_seconds =
                static_cast<double>(alloc->restoredTokens *
                                    config_.model.kvBytesPerToken()) /
                config_.node.hostOffloadBandwidth;
            plan.extraSeconds += restore_seconds;
            req->transferSecondsAcc += restore_seconds;
            req->ledger.transferSeconds += restore_seconds;
        }

        req->prefillDone = alloc->reusedTokens();
        if (req->prefillDone >= prompt_len) {
            // Fully cached prompt: recompute the last token to obtain
            // logits (vLLM does the same).
            req->prefillDone = prompt_len - 1;
        }
        if (req->prefillDone > 0) {
            // Counterfactual: what the reused tokens would have cost
            // to prefill from scratch.
            const double saved =
                perf_.prefillSeconds(req->prefillDone, 0);
            req->ledger.savedPrefillSeconds += saved;
            stats_.savedPrefillSeconds += saved;
        }
        if (req->firstScheduleTick < 0) {
            req->firstScheduleTick = sim_.now();
            req->cachedPromptTokens = alloc->reusedTokens();
        }
        tracePhaseEnd(*req); // queued
        tracePhaseBegin(*req, "prefill");

        std::int64_t chunk =
            std::min(budget, prompt_len - req->prefillDone);
        const bool completes = req->prefillDone + chunk == prompt_len;
        if (completes && prompt_len % bs == 0 &&
            blocks_.availableBlocks() == 0) {
            --chunk;
        }
        if (chunk > 0) {
            plan.prefills.push_back({req, chunk});
            plan.work.prefills.push_back({chunk, req->prefillDone});
            budget -= chunk;
        }
    }

    if (plan.work.empty() && !running_.empty()) {
        // Pathological: a lone prompt fills the pool leaving no room
        // for its first output token. Finish it truncated rather than
        // spinning forever.
        ReqPtr req = running_.front();
        AGENTSIM_WARN("request %llu starved of append blocks; "
                      "truncating",
                      static_cast<unsigned long long>(req->id));
        req->truncated = true;
        finishRequest(req);
    }

    updateGauges();
    return plan;
}

void
LlmEngine::commitStep(const StepPlan &plan, const llm::StepCost &cost,
                      sim::Tick step_start)
{
    ++stats_.steps;
    stats_.busySeconds += cost.seconds;
    stats_.transferSeconds += plan.extraSeconds;
    stats_.stallSeconds += plan.stallSeconds;
    stats_.coreActiveSeconds +=
        std::min(cost.computeSeconds, cost.seconds);
    stats_.prefillTokens += cost.prefillTokens;
    stats_.decodeTokens += cost.decodeTokens;
    stats_.totalFlops += cost.flops;

    // Attribute step time to prefill vs decode by the cost each phase
    // would have alone (both include the fixed step overhead, which
    // therefore splits proportionally).
    double prefill_share = 0.0;
    double decode_share = 0.0;
    {
        llm::StepWork prefill_only;
        prefill_only.prefills = plan.work.prefills;
        llm::StepWork decode_only;
        decode_only.decodeContexts = plan.work.decodeContexts;
        const double tp = perf_.stepCost(prefill_only).seconds;
        const double td = perf_.stepCost(decode_only).seconds;
        const double total = tp + td;
        if (total > 0) {
            prefill_share = cost.seconds * (tp / total);
            decode_share = cost.seconds * (td / total);
            stats_.prefillSeconds += prefill_share;
            stats_.decodeSeconds += decode_share;
        }
    }

    // Energy: compute-bound steps draw prefill power, memory-bound
    // steps decode power, across all GPUs of the node.
    const double power = (cost.computeBound()
                              ? config_.node.gpu.prefillPower
                              : config_.node.gpu.decodePower) *
                         config_.node.numGpus;
    stats_.busyJoules += power * cost.seconds;

    const double step_wall =
        cost.seconds + plan.extraSeconds + plan.stallSeconds;

    // Advance prefills; a completed prompt emits its first token.
    for (const auto &part : plan.prefills) {
        const ReqPtr &req = part.req;
        if (req->finished)
            continue; // cancelled/expired while the step was in flight
        req->prefillSecondsAcc += cost.seconds;
        req->flopsAcc += perf_.prefillFlops(part.tokens,
                                            req->prefillDone);

        // Ledger: this chunk's token-weighted share of the step's
        // prefill time, with the part re-prefilling preempted work
        // also flagged as waste.
        if (cost.prefillTokens > 0) {
            const double attributed =
                prefill_share * static_cast<double>(part.tokens) /
                static_cast<double>(cost.prefillTokens);
            req->ledger.prefillGpuSeconds += attributed;
            req->ledger.energyJoules += power * attributed;
            const std::int64_t redone =
                std::max<std::int64_t>(
                    0, std::min(req->prefillDone + part.tokens,
                                req->recomputeWatermark) -
                           req->prefillDone);
            if (redone > 0) {
                const double wasted =
                    attributed * static_cast<double>(redone) /
                    static_cast<double>(part.tokens);
                req->ledger.wastedGpuSeconds += wasted;
                stats_.wastedSeconds += wasted;
            }
        }
        req->prefillDone += part.tokens;
        const auto prompt_len =
            static_cast<std::int64_t>(req->prompt.size());
        if (req->prefillDone == prompt_len) {
            const kv::TokenId tok = genToken(*req);
            if (!blocks_.appendToken(req->id, tok)) {
                AGENTSIM_WARN("append failed at prefill completion; "
                              "truncating request %llu",
                              static_cast<unsigned long long>(req->id));
                req->truncated = true;
                finishRequest(req);
                continue;
            }
            req->output.push_back(tok);
            req->decoding = true;
            tracePhaseEnd(*req); // prefill
            tracePhaseBegin(*req, "decode");
            if (req->firstTokenTick < 0) {
                req->firstTokenTick = sim_.now();
                if (slo_ != nullptr) {
                    slo_->observe(
                        telemetry::SloMetric::Ttft, sim_.now(),
                        sim::toSeconds(sim_.now() - req->submitTick));
                }
            }
            if (static_cast<std::int64_t>(req->output.size()) >=
                req->maxNewTokens) {
                finishRequest(req);
            }
        }
    }

    // Decoders each produced one token.
    const std::size_t planned_decoders = plan.work.decodeContexts.size();
    for (const auto &req : plan.decoders) {
        if (req->finished || !req->decoding)
            continue; // finished, cancelled or truncated meanwhile
        req->decodeSecondsAcc += cost.seconds;
        req->flopsAcc += perf_.decodeFlops(blocks_.seqTokens(req->id));
        if (planned_decoders > 0) {
            // Ledger: an equal share of the step's decode time per
            // decoded token (every decoder produced exactly one).
            const double attributed =
                decode_share / static_cast<double>(planned_decoders);
            req->ledger.decodeGpuSeconds += attributed;
            req->ledger.energyJoules += power * attributed;
        }
        if (slo_ != nullptr) {
            slo_->observe(telemetry::SloMetric::Tbt, sim_.now(),
                          step_wall);
        }
        const kv::TokenId tok = genToken(*req);
        const bool ok = blocks_.appendToken(req->id, tok);
        AGENTSIM_ASSERT(ok, "decode append failed despite reservation");
        req->output.push_back(tok);
        if (static_cast<std::int64_t>(req->output.size()) >=
            req->maxNewTokens) {
            finishRequest(req);
        }
    }

    // Settle KV occupancy for the survivors at their (possibly grown)
    // block counts; finished requests settled when released.
    for (const auto &req : running_)
        chargeKv(*req);

    updateGauges();

    // Telemetry: one iteration sample (strided ring write) plus, when
    // a trace sink is attached, the engine-track span and counters.
    {
        telemetry::IterationSample s;
        s.tick = sim_.now();
        s.step = stats_.steps;
        s.running = static_cast<std::int32_t>(running_.size());
        s.waiting = static_cast<std::int32_t>(waiting_.size());
        s.prefillTokens = cost.prefillTokens;
        s.decodeTokens = cost.decodeTokens;
        s.kvBlocksUsed = blocks_.blocksInUse();
        s.kvBlocksFree = blocks_.blocksFree();
        s.prefixHitRate = blocks_.stats().hitRate();
        s.preemptions = stats_.preemptions;
        s.evictions = blocks_.stats().evictions;
        s.stepSeconds =
            cost.seconds + plan.extraSeconds + plan.stallSeconds;
        sampler_.record(s);

        if (trace_ != nullptr) {
            trace_->complete(
                telemetry::TracePid::kEngine, 1, "step", "engine",
                step_start, sim_.now(),
                sim::strfmt("\"prefill_tokens\":%lld,"
                            "\"decode_tokens\":%lld,\"running\":%d,"
                            "\"waiting\":%d",
                            static_cast<long long>(cost.prefillTokens),
                            static_cast<long long>(cost.decodeTokens),
                            s.running, s.waiting));
            trace_->counter(
                telemetry::TracePid::kEngine, "kv_blocks", sim_.now(),
                sim::strfmt("\"used\":%lld,\"free\":%lld",
                            static_cast<long long>(s.kvBlocksUsed),
                            static_cast<long long>(s.kvBlocksFree)));
            trace_->counter(
                telemetry::TracePid::kEngine, "batch", sim_.now(),
                sim::strfmt("\"running\":%d,\"waiting\":%d", s.running,
                            s.waiting));
        }
    }
}

std::deque<LlmEngine::ReqPtr>::iterator
LlmEngine::nextAdmissionCandidate()
{
    AGENTSIM_ASSERT(!waiting_.empty(), "no admission candidates");
    switch (config_.schedulerPolicy) {
      case SchedulerPolicy::Fcfs:
        return waiting_.begin();
      case SchedulerPolicy::ShortestPromptFirst: {
          auto best = waiting_.begin();
          for (auto it = waiting_.begin(); it != waiting_.end();
               ++it) {
              if ((*it)->prompt.size() < (*best)->prompt.size())
                  best = it;
          }
          return best;
      }
      case SchedulerPolicy::LeastAttainedService: {
          auto service = [&](const ReqPtr &req) {
              auto it = sessionService_.find(req->sessionId);
              return it == sessionService_.end() ? 0.0 : it->second;
          };
          auto best = waiting_.begin();
          for (auto it = waiting_.begin(); it != waiting_.end();
               ++it) {
              if (service(*it) < service(*best))
                  best = it;
          }
          return best;
      }
    }
    AGENTSIM_PANIC("unknown scheduler policy");
}

void
LlmEngine::exportMetrics(telemetry::MetricsRegistry &registry) const
{
    const sim::Tick now = sim_.now();
    auto set_counter = [&](const char *name, const char *help,
                           double value) {
        registry.counter(name, help).set(value);
    };
    auto set_gauge = [&](const char *name, const char *help,
                         double value) {
        registry.gauge(name, help).set(now, value);
    };

    set_counter("agentsim_requests_submitted_total",
                "Generation requests submitted to the engine",
                static_cast<double>(stats_.requestsSubmitted));
    set_counter("agentsim_requests_completed_total",
                "Generation requests completed",
                static_cast<double>(stats_.requestsCompleted));
    set_counter("agentsim_requests_failed_total",
                "Requests rejected or failed (context window, KV pool)",
                static_cast<double>(stats_.requestsFailed));
    set_counter("agentsim_requests_cancelled_total",
                "Requests cancelled (client cancel or node crash)",
                static_cast<double>(stats_.requestsCancelled));
    set_counter("agentsim_requests_timed_out_total",
                "Requests cancelled by deadline expiry",
                static_cast<double>(stats_.requestsTimedOut));
    set_counter("agentsim_requests_shed_total",
                "Requests rejected by queue-depth load shedding",
                static_cast<double>(stats_.requestsShed));
    set_counter("agentsim_node_crashes_total",
                "Simulated node crashes",
                static_cast<double>(stats_.crashes));
    set_counter("agentsim_preemptions_total",
                "Recompute preemptions under memory pressure",
                static_cast<double>(stats_.preemptions));
    set_counter("agentsim_engine_steps_total",
                "Continuous-batching engine iterations",
                static_cast<double>(stats_.steps));
    set_counter("agentsim_prefill_tokens_total",
                "Prompt tokens prefilled",
                static_cast<double>(stats_.prefillTokens));
    set_counter("agentsim_decode_tokens_total",
                "Output tokens decoded",
                static_cast<double>(stats_.decodeTokens));
    set_counter("agentsim_gpu_busy_seconds_total",
                "Wall-clock seconds the GPU executed steps",
                stats_.busySeconds);
    set_counter("agentsim_kv_transfer_seconds_total",
                "Host->GPU PCIe seconds restoring spilled KV",
                stats_.transferSeconds);
    set_counter("agentsim_engine_stall_seconds_total",
                "Injected engine-stall seconds (fault injection)",
                stats_.stallSeconds);
    set_counter("agentsim_gpu_core_active_seconds_total",
                "Roofline estimate of SM-active seconds",
                stats_.coreActiveSeconds);
    set_counter("agentsim_gpu_prefill_seconds_total",
                "Busy seconds attributed to prefill work",
                stats_.prefillSeconds);
    set_counter("agentsim_gpu_decode_seconds_total",
                "Busy seconds attributed to decode work",
                stats_.decodeSeconds);
    set_counter("agentsim_gpu_energy_joules_total",
                "Node GPU energy including idle draw",
                energyJoules(now));
    set_counter("agentsim_model_flops_total",
                "FLOPs executed by the engine",
                stats_.totalFlops);
    set_counter("agentsim_cost_wasted_gpu_seconds_total",
                "GPU seconds re-prefilling preempted (discarded) work",
                stats_.wastedSeconds);
    set_counter("agentsim_cost_saved_prefill_seconds_total",
                "Estimated prefill seconds avoided by prefix caching",
                stats_.savedPrefillSeconds);
    set_counter("agentsim_cost_kv_block_seconds_total",
                "KV occupancy integral (blocks held x seconds held)",
                stats_.kvBlockSeconds);

    const kv::CacheStats &cache = blocks_.stats();
    set_counter("agentsim_kv_lookup_tokens_total",
                "Prompt tokens looked up in the prefix cache",
                static_cast<double>(cache.lookupTokens));
    set_counter("agentsim_kv_hit_tokens_total",
                "Prompt tokens served from the prefix cache",
                static_cast<double>(cache.hitTokens));
    set_counter("agentsim_kv_restored_tokens_total",
                "Tokens restored from the host spill tier",
                static_cast<double>(cache.restoredTokens));
    set_counter("agentsim_kv_evictions_total",
                "Cached blocks evicted",
                static_cast<double>(cache.evictions));

    set_gauge("agentsim_kv_blocks_used",
              "KV blocks pinned by live sequences",
              static_cast<double>(blocks_.blocksInUse()));
    set_gauge("agentsim_kv_blocks_free",
              "KV blocks free or evictable",
              static_cast<double>(blocks_.blocksFree()));
    set_gauge("agentsim_kv_blocks_total", "KV pool size in blocks",
              static_cast<double>(blocks_.totalBlocks()));
    set_gauge("agentsim_kv_prefix_hit_rate",
              "Cumulative prefix-cache token hit rate",
              cache.hitRate());
    set_gauge("agentsim_batch_running",
              "Sequences in the running batch",
              static_cast<double>(running_.size()));
    set_gauge("agentsim_queue_depth",
              "Requests waiting for admission",
              static_cast<double>(waiting_.size()));
}

void
LlmEngine::updateGauges()
{
    kvUsed_.set(sim_.now(), static_cast<double>(blocks_.usedBlocks()));
    batchSize_.set(sim_.now(), static_cast<double>(running_.size()));
}

} // namespace agentsim::serving
