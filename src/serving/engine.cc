#include "serving/engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace agentsim::serving
{

namespace
{

/** Deterministic synthetic output token for (seed, request, index). */
kv::TokenId
outputToken(std::uint64_t seed, std::uint64_t req_id, std::uint64_t idx)
{
    return sim::hashCombine(sim::hashCombine(seed, req_id ^ 0xa5a5a5a5u),
                            idx);
}

} // namespace

std::int64_t
LlmEngine::derivePoolBlocks(const EngineConfig &config)
{
    std::int64_t pool_bytes = config.kvPoolBytes;
    if (pool_bytes == 0) {
        const std::int64_t total = config.node.totalMemory();
        const std::int64_t weights = config.model.weightBytes();
        const auto reserve =
            static_cast<std::int64_t>(0.10 * static_cast<double>(total));
        pool_bytes = total - weights - reserve;
        if (pool_bytes <= 0) {
            AGENTSIM_FATAL("no GPU memory left for KV cache "
                           "(total %lld, weights %lld)",
                           static_cast<long long>(total),
                           static_cast<long long>(weights));
        }
    }
    const std::int64_t block_bytes =
        config.model.kvBytesPerToken() * config.blockSize;
    const std::int64_t blocks = pool_bytes / block_bytes;
    if (blocks <= 0)
        AGENTSIM_FATAL("KV pool smaller than one block");
    return blocks;
}

LlmEngine::LlmEngine(sim::Simulation &sim, const EngineConfig &config)
    : sim_(sim), config_(config), perf_(config.model, config.node),
      blocks_(kv::BlockManagerConfig{derivePoolBlocks(config),
                                     config.blockSize,
                                     config.enablePrefixCaching,
                                     config.evictionPolicy,
                                     config.hostCacheBlocks,
                                     config.kvDramAdmitProb,
                                     config.kvDramTierMode,
                                     config.nvmeCacheBlocks,
                                     config.kvNvmeAdmitProb,
                                     config.kvNvmeTierMode,
                                     config.seed}),
      sampler_(telemetry::SamplerConfig{config.samplerStride,
                                        config.samplerCapacity}),
      loop_(runLoop())
{
}

LlmEngine::~LlmEngine()
{
    // The run loop is an infinite coroutine parked on wake_; detaching
    // it (the Task destructor default) would leak its frame, so tear
    // it down explicitly. Safe: the simulation has drained, so nothing
    // else holds a handle to the suspended frame.
    loop_.destroy();
}

void
LlmEngine::attachTrace(telemetry::TraceSink *sink)
{
    trace_ = sink;
    if (trace_ == nullptr)
        return;
    trace_->processName(telemetry::TracePid::kEngine, "LLM engine");
    trace_->threadName(telemetry::TracePid::kEngine, 1, "iterations");
    trace_->processName(telemetry::TracePid::kRequests, "requests");
}

void
LlmEngine::attachSlo(telemetry::SloTracker *slo)
{
    slo_ = slo;
    if (slo_ != nullptr && trace_ != nullptr)
        slo_->attachTrace(trace_);
}

void
LlmEngine::attachSpans(telemetry::SpanCollector *spans)
{
    spans_ = spans;
}

void
LlmEngine::chargeKv(Req &req)
{
    const sim::Tick now = sim_.now();
    if (req.heldBlocks > 0 && now > req.kvMarkTick) {
        const double charge = static_cast<double>(req.heldBlocks) *
                              sim::toSeconds(now - req.kvMarkTick);
        req.ledger.kvBlockSeconds += charge;
        stats_.kvBlockSeconds += charge;
    }
    req.kvMarkTick = now;
    req.heldBlocks = blocks_.hasSeq(req.id)
                         ? blocks_.blocksNeeded(blocks_.seqTokens(req.id))
                         : 0;
}

void
LlmEngine::chargeQueue(Req &req)
{
    if (req.queuedSince < 0)
        return;
    req.ledger.queueSeconds += sim::toSeconds(sim_.now() - req.queuedSince);
    req.queuedSince = -1;
}

void
LlmEngine::sloFailure(const Req &req)
{
    if (slo_ == nullptr)
        return;
    const sim::Tick now = sim_.now();
    if (req.firstTokenTick < 0)
        slo_->observeFailure(telemetry::SloMetric::Ttft, now);
    slo_->observeFailure(telemetry::SloMetric::E2e, now);
}

void
LlmEngine::tracePhaseBegin(Req &req, const char *phase,
                           telemetry::SpanKind kind)
{
    req.tracePhase = phase;
    req.tracePhaseStart = sim_.now();
    req.phaseSpan = {};
    if (spans_ != nullptr && req.parentSpan.valid())
        req.phaseSpan =
            spans_->child(req.parentSpan, kind, phase, sim_.now());
}

void
LlmEngine::tracePhaseEnd(Req &req)
{
    if (req.tracePhase == nullptr)
        return;
    if (trace_ != nullptr) {
        trace_->complete(telemetry::TracePid::kRequests, req.id,
                         req.tracePhase, "request",
                         req.tracePhaseStart, sim_.now());
    }
    if (spans_ != nullptr && req.phaseSpan.valid())
        spans_->end(req.phaseSpan, sim_.now());
    req.phaseSpan = {};
    req.tracePhase = nullptr;
}

std::int64_t
LlmEngine::blockBytes() const
{
    return config_.model.kvBytesPerToken() * config_.blockSize;
}

double
LlmEngine::energyJoules(sim::Tick now) const
{
    const double wall = sim::toSeconds(now);
    const double idle_seconds = std::max(0.0, wall - stats_.busySeconds);
    const double idle_power =
        config_.node.gpu.idlePower * config_.node.numGpus;
    return stats_.busyJoules + idle_power * idle_seconds;
}

sim::Task<GenResult>
LlmEngine::generate(GenRequest request, std::uint64_t *handle_out)
{
    AGENTSIM_ASSERT(!request.prompt.empty(),
                    "generate() with empty prompt");
    AGENTSIM_ASSERT(request.maxNewTokens >= 1,
                    "generate() must produce at least one token");
    if (handle_out != nullptr)
        *handle_out = 0;

    ++stats_.requestsSubmitted;

    // A crashed or draining node refuses connections; the client
    // should retry against another node once the router notices.
    if (!online_ || draining_) {
        GenResult r;
        r.nodeFailure = true;
        r.promptTokens =
            static_cast<std::int64_t>(request.prompt.size());
        r.submitTick = sim_.now();
        r.finishTick = sim_.now();
        co_return r;
    }

    // Requests beyond the model's context window are rejected up
    // front, as a real serving endpoint would do.
    if (static_cast<std::int64_t>(request.prompt.size()) +
            request.maxNewTokens >
        config_.model.contextWindow) {
        ++stats_.requestsFailed;
        AGENTSIM_WARN("request exceeds the %lld-token context window",
                      static_cast<long long>(
                          config_.model.contextWindow));
        GenResult r;
        r.failed = true;
        r.promptTokens =
            static_cast<std::int64_t>(request.prompt.size());
        r.submitTick = sim_.now();
        r.finishTick = sim_.now();
        co_return r;
    }

    // Admission control: bound the waiting queue rather than letting
    // overload turn into unbounded queueing delay (SLO load shedding).
    // Only fresh arrivals count against the depth: preemption victims
    // and migration fallbacks are work already admitted once, and
    // counting them would shed new requests during transient KV
    // pressure that the preemptions themselves resolve.
    if (config_.maxQueueDepth > 0 &&
        waiting_.size() - requeuedInWaiting_ >= config_.maxQueueDepth) {
        ++stats_.requestsShed;
        if (trace_ != nullptr) {
            trace_->instant(telemetry::TracePid::kEngine, 1, "shed",
                            "engine", sim_.now());
        }
        if (slo_ != nullptr) {
            slo_->observeFailure(telemetry::SloMetric::Ttft, sim_.now());
            slo_->observeFailure(telemetry::SloMetric::E2e, sim_.now());
        }
        GenResult r;
        r.shed = true;
        r.promptTokens =
            static_cast<std::int64_t>(request.prompt.size());
        r.submitTick = sim_.now();
        r.finishTick = sim_.now();
        co_return r;
    }

    auto req = std::make_shared<Req>(sim_);
    req->owner = this;
    req->id = nextId_++;
    req->sessionId = request.sessionId;
    req->prompt = std::move(request.prompt);
    req->maxNewTokens = request.maxNewTokens;
    req->parkSeconds = request.expectedParkSeconds;
    req->submitTick = sim_.now();
    req->firstPromptLen = static_cast<std::int64_t>(req->prompt.size());
    if (request.deadlineSeconds > 0) {
        req->deadlineTick =
            sim_.now() + sim::fromSeconds(request.deadlineSeconds);
    }
    if (handle_out != nullptr)
        *handle_out = req->id;

    req->parentSpan = request.parentSpan;
    req->queuedSince = sim_.now();
    waiting_.push_back(req);
    if (trace_ != nullptr) {
        trace_->threadName(telemetry::TracePid::kRequests, req->id,
                           sim::strfmt("req %llu",
                                       static_cast<unsigned long long>(
                                           req->id)));
    }
    tracePhaseBegin(*req, "queued", telemetry::SpanKind::Queue);
    if (wake_ && !wake_->ready())
        wake_->set(1);

    GenResult result = co_await req->done;
    co_return result;
}

sim::Task<void>
LlmEngine::runLoop()
{
    for (;;) {
        if (waiting_.empty() && running_.empty()) {
            wake_.emplace(sim_);
            co_await *wake_;
            wake_.reset();
        }
        expireDeadlines();
        StepPlan &plan = buildStep();
        if (plan.work.empty())
            continue; // everything failed at admission; re-check
        const llm::StepCost cost = perf_.stepCost(plan.work);
        const sim::Tick step_start = sim_.now();
        co_await sim::delay(
            sim_, sim::fromSeconds(cost.seconds + plan.extraSeconds +
                                   plan.stallSeconds));
        commitStep(plan, cost, step_start);
    }
}

void
LlmEngine::preemptOne(StepPlan &plan)
{
    AGENTSIM_ASSERT(!running_.empty(), "preempt with empty batch");
    ReqPtr victim = running_.back();
    running_.pop_back();
    std::erase(plan.decoders, victim);

    // Settle the occupancy charge and remember how much KV is being
    // thrown away: re-prefilling below this watermark is pure waste.
    chargeKv(*victim);
    victim->recomputeWatermark = blocks_.seqTokens(victim->id);
    blocks_.release(victim->id);
    victim->heldBlocks = 0;
    // Recompute-style preemption: generated tokens fold into the
    // prompt; on re-admission the prefix cache usually restores them.
    victim->prompt.insert(victim->prompt.end(), victim->output.begin(),
                          victim->output.end());
    victim->prefillDone = 0;
    victim->decoding = false;
    ++victim->preemptions;
    ++stats_.preemptions;
    tracePhaseEnd(*victim);
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kRequests, victim->id,
                        "preempt", "request", sim_.now());
    }
    if (spans_ != nullptr && victim->parentSpan.valid()) {
        auto marker =
            spans_->child(victim->parentSpan, telemetry::SpanKind::Preempt,
                          "preempt", sim_.now());
        spans_->end(marker, sim_.now());
    }
    requeueRequest(victim, /*front=*/true);
}

void
LlmEngine::noteLeftWaiting(Req &req)
{
    if (req.requeued) {
        req.requeued = false;
        AGENTSIM_ASSERT(requeuedInWaiting_ > 0,
                        "re-admission count underflow");
        --requeuedInWaiting_;
    }
}

void
LlmEngine::requeueRequest(const ReqPtr &req, bool front)
{
    tracePhaseBegin(*req, "queued", telemetry::SpanKind::Queue);
    req->queuedSince = sim_.now();
    req->requeued = true;
    ++requeuedInWaiting_;
    if (front)
        waiting_.push_front(req);
    else
        waiting_.push_back(req);
}

void
LlmEngine::failRequest(const ReqPtr &req)
{
    ++stats_.requestsFailed;
    AGENTSIM_WARN("request %llu cannot fit in the KV pool; failing",
                  static_cast<unsigned long long>(req->id));
    req->finished = true;
    req->decoding = false;
    chargeQueue(*req);
    tracePhaseEnd(*req);
    sloFailure(*req);
    GenResult r;
    r.failed = true;
    r.promptTokens = req->firstPromptLen;
    r.submitTick = req->submitTick;
    r.finishTick = sim_.now();
    r.totalSeconds = sim::toSeconds(r.finishTick - r.submitTick);
    r.ledger = req->ledger;
    req->done.set(std::move(r));
}

void
LlmEngine::finishRequest(const ReqPtr &req)
{
    chargeKv(*req);
    blocks_.release(req->id);
    req->heldBlocks = 0;
    std::erase(running_, req);
    req->finished = true;
    req->decoding = false;
    tracePhaseEnd(*req);
    ++stats_.requestsCompleted;
    sessionService_[req->sessionId] +=
        req->prefillSecondsAcc + req->decodeSecondsAcc;
    maybeParkChain(req);

    GenResult r;
    r.tokens = req->output;
    r.truncated = req->truncated;
    r.promptTokens = req->firstPromptLen;
    r.cachedPromptTokens = req->cachedPromptTokens;
    r.queueSeconds =
        sim::toSeconds(req->firstScheduleTick - req->submitTick);
    r.prefillSeconds = req->prefillSecondsAcc;
    r.decodeSeconds = req->decodeSecondsAcc;
    r.transferSeconds = req->transferSecondsAcc;
    r.flops = req->flopsAcc;
    r.preemptions = req->preemptions;
    r.submitTick = req->submitTick;
    r.finishTick = sim_.now();
    r.totalSeconds = sim::toSeconds(r.finishTick - r.submitTick);
    if (req->firstTokenTick >= 0) {
        r.ttftSeconds =
            sim::toSeconds(req->firstTokenTick - req->submitTick);
    }
    r.ledger = req->ledger;
    if (slo_ != nullptr) {
        slo_->observe(telemetry::SloMetric::E2e, sim_.now(),
                      r.totalSeconds);
    }
    req->done.set(std::move(r));
}

void
LlmEngine::maybeParkChain(const ReqPtr &req)
{
    if (req->parkSeconds <= 0.0 || !config_.enablePrefixCaching ||
        !blocks_.spillTiersEnabled()) {
        return;
    }
    // Parking trades a free HBM hit for a priced restore, so it only
    // pays off under contention: someone is waiting for blocks, or
    // live sequences pin most of the pool (the finishing request's
    // own blocks were already released above).
    const double pinned_fraction =
        static_cast<double>(blocks_.usedBlocks()) /
        static_cast<double>(std::max<std::int64_t>(
            blocks_.totalBlocks(), 1));
    if (waiting_.empty() &&
        pinned_fraction < config_.parkUtilizationThreshold) {
        return;
    }
    // The continuation's prompt extends this request's full chain
    // (prompt + output); that is what must survive the tool wait.
    std::vector<kv::TokenId> chain = req->prompt;
    chain.insert(chain.end(), req->output.begin(), req->output.end());
    const std::int64_t parked = blocks_.parkChain(chain);
    if (parked <= 0)
        return;
    ++stats_.parkedChains;
    stats_.parkedBlocks += parked;

    const double block_bytes = static_cast<double>(blockBytes());
    const double demote_seconds =
        static_cast<double>(parked) * block_bytes /
        config_.node.hostOffloadBandwidth;
    stats_.parkDemoteSeconds += demote_seconds;
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kRequests, req->id,
                        "kv_park", "request", sim_.now());
    }

    // Schedule the promotion so it completes just before the
    // continuation wakes: lead time = the restore estimate (parking
    // demotes into the first enabled tier — DRAM unless only NVMe is
    // configured). Never earlier than the demotion itself finishes.
    const double restore_bw = blocks_.tierCapacity(kv::Tier::Dram) > 0
                                  ? config_.node.hostOffloadBandwidth
                                  : config_.node.nvmeReadBandwidth;
    const double restore_estimate =
        static_cast<double>(parked) * block_bytes / restore_bw;
    const double delay = std::max(
        demote_seconds, req->parkSeconds - restore_estimate);
    const std::uint64_t trace_id = req->id;
    sim_.schedule(
        sim::fromSeconds(delay),
        [this, trace_id, chain = std::move(chain)]() {
            if (!online_)
                return; // chain died with the node's memory
            const auto got = blocks_.prefetchChain(chain);
            if (got.blocks <= 0)
                return;
            stats_.prefetchedBlocks += got.blocks;
            const double kv_bytes = static_cast<double>(
                config_.model.kvBytesPerToken());
            stats_.parkRestoreSeconds +=
                static_cast<double>(got.dramTokens) * kv_bytes /
                    config_.node.hostOffloadBandwidth +
                static_cast<double>(got.nvmeTokens) * kv_bytes /
                    config_.node.nvmeReadBandwidth;
            updateGauges();
            if (trace_ != nullptr) {
                trace_->instant(telemetry::TracePid::kRequests,
                                trace_id, "kv_prefetch", "request",
                                sim_.now());
            }
        });
    updateGauges();
}

void
LlmEngine::cancelRequest(const ReqPtr &req, CancelCause cause)
{
    AGENTSIM_ASSERT(!req->finished, "cancel of a finished request");
    chargeKv(*req);
    if (blocks_.hasSeq(req->id))
        blocks_.release(req->id);
    req->heldBlocks = 0;
    chargeQueue(*req);
    std::erase(running_, req);
    if (auto it = std::find(waiting_.begin(), waiting_.end(), req);
        it != waiting_.end()) {
        noteLeftWaiting(*req);
        waiting_.erase(it);
    }
    req->finished = true;
    req->decoding = false;
    tracePhaseEnd(*req);

    const char *label = nullptr;
    GenResult r;
    switch (cause) {
      case CancelCause::Client:
        ++stats_.requestsCancelled;
        r.cancelled = true;
        label = "cancel";
        break;
      case CancelCause::Deadline:
        ++stats_.requestsTimedOut;
        r.timedOut = true;
        label = "deadline";
        break;
      case CancelCause::NodeFailure:
        ++stats_.requestsCancelled;
        r.cancelled = true;
        r.nodeFailure = true;
        label = "node_failure";
        // Prefill work invested in this request dies with the node;
        // the client's retry pays it again from scratch.
        stats_.lostPrefillSeconds += req->ledger.prefillGpuSeconds;
        break;
    }
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kRequests, req->id, label,
                        "request", sim_.now());
    }

    // Partial output and accrued accounting still reach the caller.
    r.tokens = req->output;
    r.promptTokens = req->firstPromptLen;
    r.cachedPromptTokens = req->cachedPromptTokens;
    if (req->firstScheduleTick >= 0) {
        r.queueSeconds =
            sim::toSeconds(req->firstScheduleTick - req->submitTick);
    }
    r.prefillSeconds = req->prefillSecondsAcc;
    r.decodeSeconds = req->decodeSecondsAcc;
    r.transferSeconds = req->transferSecondsAcc;
    r.flops = req->flopsAcc;
    r.preemptions = req->preemptions;
    r.submitTick = req->submitTick;
    r.finishTick = sim_.now();
    r.totalSeconds = sim::toSeconds(r.finishTick - r.submitTick);
    if (req->firstTokenTick >= 0) {
        r.ttftSeconds =
            sim::toSeconds(req->firstTokenTick - req->submitTick);
    }
    r.ledger = req->ledger;
    sloFailure(*req);
    req->done.set(std::move(r));
}

bool
LlmEngine::cancel(std::uint64_t request_id)
{
    auto match = [&](const ReqPtr &req) {
        return req->id == request_id && !req->finished;
    };
    for (const auto &req : waiting_) {
        if (match(req)) {
            cancelRequest(req, CancelCause::Client);
            updateGauges();
            return true;
        }
    }
    for (const auto &req : running_) {
        if (match(req)) {
            cancelRequest(req, CancelCause::Client);
            updateGauges();
            return true;
        }
    }
    return false;
}

void
LlmEngine::expireDeadlines()
{
    const sim::Tick now = sim_.now();
    std::vector<ReqPtr> expired;
    auto collect = [&](const ReqPtr &req) {
        if (!req->finished && req->deadlineTick >= 0 &&
            now >= req->deadlineTick) {
            expired.push_back(req);
        }
    };
    for (const auto &req : waiting_)
        collect(req);
    for (const auto &req : running_)
        collect(req);
    for (const auto &req : expired)
        cancelRequest(req, CancelCause::Deadline);
    if (!expired.empty())
        updateGauges();
}

void
LlmEngine::crash()
{
    AGENTSIM_ASSERT(online_, "crash() on an offline engine");
    online_ = false;
    ++stats_.crashes;
    AGENTSIM_INFORM("engine crash: dropping %zu waiting + %zu running "
                    "requests, KV cache lost",
                    waiting_.size(), running_.size());

    std::vector<ReqPtr> victims(waiting_.begin(), waiting_.end());
    victims.insert(victims.end(), running_.begin(), running_.end());
    for (const auto &req : victims)
        cancelRequest(req, CancelCause::NodeFailure);
    // The node's memory is gone: prefix cache and host tier come back
    // cold after restart().
    blocks_.reset();
    pendingStallSeconds_ = 0.0;
    updateGauges();
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kEngine, 1, "crash",
                        "engine", sim_.now());
    }
}

void
LlmEngine::standby()
{
    AGENTSIM_ASSERT(online_, "standby() on an offline engine");
    AGENTSIM_ASSERT(!draining_, "standby() while draining");
    AGENTSIM_ASSERT(waiting_.empty() && running_.empty(),
                    "standby() with requests in flight");
    online_ = false;
    // Power down cleanly: the KV pool empties (nothing referenced it)
    // and the prefix cache comes back cold on restart().
    blocks_.reset();
    updateGauges();
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kEngine, 1, "standby",
                        "engine", sim_.now());
    }
}

void
LlmEngine::restart()
{
    AGENTSIM_ASSERT(!online_, "restart() on an online engine");
    online_ = true;
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kEngine, 1, "restart",
                        "engine", sim_.now());
    }
}

namespace
{
/** Drain progress poll period, seconds (sim clock; cheap events). */
constexpr double kDrainPollSeconds = 0.02;
} // namespace

sim::Task<DrainOutcome>
LlmEngine::drain(double deadline_seconds, bool export_leftovers)
{
    AGENTSIM_ASSERT(online_, "drain() on an offline engine");
    AGENTSIM_ASSERT(!draining_, "drain() re-entered");
    AGENTSIM_ASSERT(deadline_seconds >= 0, "negative drain deadline");
    draining_ = true;
    const std::int64_t completed_before = stats_.requestsCompleted;
    const sim::Tick deadline =
        sim_.now() + sim::fromSeconds(deadline_seconds);
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kEngine, 1, "drain_begin",
                        "engine", sim_.now());
    }
    AGENTSIM_INFORM("engine drain: %zu waiting + %zu running, "
                    "deadline %.2fs, migration %s",
                    waiting_.size(), running_.size(), deadline_seconds,
                    export_leftovers ? "on" : "off");

    while (online_ && sim_.now() < deadline &&
           (!waiting_.empty() || !running_.empty())) {
        co_await sim::delaySec(sim_, kDrainPollSeconds);
    }

    DrainOutcome out;
    out.completed = stats_.requestsCompleted - completed_before;
    if (!online_) {
        // Crashed mid-drain; crash() already cancelled everything and
        // reset the pool. Nothing left to shut down.
        draining_ = false;
        out.crashed = true;
        co_return out;
    }

    // Deadline (or empty): whatever is left either migrates or is
    // cancelled like a crash victim (the client retries elsewhere).
    std::vector<ReqPtr> leftovers(waiting_.begin(), waiting_.end());
    leftovers.insert(leftovers.end(), running_.begin(), running_.end());
    for (const auto &req : leftovers) {
        if (export_leftovers) {
            auto migrated = exportRequest(req->id);
            AGENTSIM_ASSERT(migrated.has_value(),
                            "drain failed to export a live request");
            out.leftovers.push_back(std::move(*migrated));
        } else {
            cancelRequest(req, CancelCause::NodeFailure);
        }
    }

    // Planned shutdown: the process restarts, so the prefix cache and
    // host tier come back cold — identical cache semantics to crash(),
    // minus the dropped requests.
    online_ = false;
    draining_ = false;
    blocks_.reset();
    pendingStallSeconds_ = 0.0;
    ++stats_.drains;
    updateGauges();
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kEngine, 1,
                        "drain_complete", "engine", sim_.now());
    }
    co_return out;
}

std::optional<MigratedRequest>
LlmEngine::exportRequest(std::uint64_t id)
{
    ReqPtr req;
    for (const auto &r : running_) {
        if (r->id == id && !r->finished) {
            req = r;
            break;
        }
    }
    if (!req) {
        for (const auto &r : waiting_) {
            if (r->id == id && !r->finished) {
                req = r;
                break;
            }
        }
    }
    if (!req)
        return std::nullopt;

    chargeKv(*req);
    chargeQueue(*req);

    MigratedRequest out;
    if (blocks_.hasSeq(req->id)) {
        kv::ChainExport chain = blocks_.exportChain(req->id);
        out.chainTokens = std::move(chain.tokens);
        // KV exists only for the prefilled part of the prompt plus
        // every generated token; trailing prompt blocks are allocated
        // but not yet computed and need no transfer.
        out.computedTokens =
            req->prefillDone +
            static_cast<std::int64_t>(req->output.size());
        blocks_.release(req->id);
        req->heldBlocks = 0;
    } else {
        // Still queued: nothing computed, the snapshot is just the
        // request state; the target admits it like a fresh arrival.
        out.chainTokens = req->prompt;
        out.computedTokens = 0;
    }

    std::erase(running_, req);
    if (auto it = std::find(waiting_.begin(), waiting_.end(), req);
        it != waiting_.end()) {
        noteLeftWaiting(*req);
        waiting_.erase(it);
    }
    req->exported = true;
    req->owner = nullptr;
    tracePhaseEnd(*req);
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kRequests, req->id,
                        "migrate_out", "request", sim_.now());
    }
    ++stats_.requestsMigratedOut;
    updateGauges();
    out.state = req;
    return out;
}

void
LlmEngine::importRequest(MigratedRequest migrated,
                         double interconnect_bandwidth)
{
    AGENTSIM_ASSERT(migrated.valid(), "import of an empty migration");
    AGENTSIM_ASSERT(interconnect_bandwidth > 0,
                    "import needs a positive interconnect bandwidth");
    auto req = std::static_pointer_cast<Req>(migrated.state);
    AGENTSIM_ASSERT(req->exported && !req->finished,
                    "import of a request that is not in flight");
    AGENTSIM_ASSERT(accepting(), "import into a non-accepting engine");

    req->owner = this;
    req->id = nextId_++;
    ++stats_.requestsMigratedIn;
    if (trace_ != nullptr) {
        trace_->threadName(
            telemetry::TracePid::kRequests, req->id,
            sim::strfmt("req %llu", static_cast<unsigned long long>(
                                        req->id)));
    }

    // Try to land the KV chain now; the blocks are reserved while the
    // transfer is in flight (the realistic order — the target commits
    // memory before the wire copy starts).
    double transfer_seconds = 0.0;
    bool warm = false;
    if (migrated.computedTokens > 0) {
        auto alloc = blocks_.importChain(req->id, migrated.chainTokens);
        if (alloc.has_value()) {
            warm = true;
            // Locally cached (or tier-resident) prefix blocks never
            // cross the interconnect; tier restores pay PCIe (DRAM)
            // or the NVMe read instead. Wire size comes from this
            // import-side allocation — the source's block count would
            // include prefix-cached blocks we reuse locally.
            const std::int64_t wire_tokens = std::max<std::int64_t>(
                0, migrated.computedTokens - alloc->reusedTokens());
            const double kv_bytes = static_cast<double>(
                config_.model.kvBytesPerToken());
            transfer_seconds =
                static_cast<double>(wire_tokens) * kv_bytes /
                    interconnect_bandwidth +
                static_cast<double>(alloc->dramRestoredTokens) *
                    kv_bytes / config_.node.hostOffloadBandwidth +
                static_cast<double>(alloc->nvmeRestoredTokens) *
                    kv_bytes / config_.node.nvmeReadBandwidth;
            req->transferSecondsAcc += transfer_seconds;
            req->ledger.transferSeconds += transfer_seconds;
            stats_.migrationSeconds += transfer_seconds;
            // Open the occupancy interval at the reserved chain size.
            req->kvMarkTick = sim_.now();
            req->heldBlocks =
                blocks_.blocksNeeded(blocks_.seqTokens(req->id));
        } else {
            ++stats_.migrationFallbacks;
        }
    }
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kRequests, req->id,
                        warm ? "migrate_in" : "migrate_in_cold",
                        "request", sim_.now());
    }
    if (transfer_seconds > 0.0 && spans_ != nullptr &&
        req->parentSpan.valid()) {
        auto transfer = spans_->child(req->parentSpan,
                                      telemetry::SpanKind::Migration,
                                      "migrate_kv", sim_.now());
        spans_->end(transfer,
                    sim_.now() + sim::fromSeconds(transfer_seconds));
    }

    if (transfer_seconds <= 0.0) {
        activateImported(req, std::move(migrated.chainTokens),
                         migrated.computedTokens);
        return;
    }
    sim_.schedule(
        sim::fromSeconds(transfer_seconds),
        [this, req, tokens = std::move(migrated.chainTokens),
         computed = migrated.computedTokens]() mutable {
            activateImported(req, std::move(tokens), computed);
        });
}

void
LlmEngine::activateImported(const ReqPtr &req,
                            std::vector<kv::TokenId> chain_tokens,
                            std::int64_t computed_tokens)
{
    AGENTSIM_ASSERT(!req->finished, "activation of a finished import");
    req->exported = false;

    // The node may have crashed (losing the reserved chain) or begun
    // draining again while the transfer was in flight; cancelRequest
    // releases the chain if it survived.
    if (!accepting()) {
        cancelRequest(req, CancelCause::NodeFailure);
        return;
    }
    if (req->deadlineTick >= 0 && sim_.now() >= req->deadlineTick) {
        cancelRequest(req, CancelCause::Deadline);
        return;
    }

    if (blocks_.hasSeq(req->id)) {
        // Warm landing: the chain survived; resume decode (or chunked
        // prefill) exactly where the source left off.
        running_.push_back(req);
        chargeKv(*req);
        tracePhaseBegin(*req, req->decoding ? "decode" : "prefill",
                        req->decoding ? telemetry::SpanKind::Decode
                                      : telemetry::SpanKind::Prefill);
    } else {
        // Cold landing: recompute-preemption semantics. Generated
        // tokens fold into the prompt (the chain snapshot is exactly
        // that folded form) and re-prefilling below the old watermark
        // is charged as waste.
        if (!chain_tokens.empty())
            req->prompt = std::move(chain_tokens);
        req->recomputeWatermark =
            std::max(req->recomputeWatermark, computed_tokens);
        req->prefillDone = 0;
        req->decoding = false;
        requeueRequest(req, /*front=*/false);
    }
    updateGauges();
    if (wake_ && !wake_->ready())
        wake_->set(1);
}

void
LlmEngine::abortMigration(MigratedRequest migrated)
{
    AGENTSIM_ASSERT(migrated.valid(), "abort of an empty migration");
    auto req = std::static_pointer_cast<Req>(migrated.state);
    AGENTSIM_ASSERT(req->exported && !req->finished,
                    "abort of a request that is not in flight");
    // Not in any queue and holding no blocks: resolve the awaiter
    // directly with crash semantics so the client retries.
    req->exported = false;
    cancelRequest(req, CancelCause::NodeFailure);
}

void
LlmEngine::injectStall(double seconds)
{
    AGENTSIM_ASSERT(seconds >= 0, "negative stall");
    pendingStallSeconds_ += seconds;
    if (trace_ != nullptr) {
        trace_->instant(telemetry::TracePid::kEngine, 1,
                        sim::strfmt("stall %.2fs", seconds), "engine",
                        sim_.now());
    }
}

kv::TokenId
LlmEngine::genToken(Req &req)
{
    return outputToken(config_.seed, req.id, req.output.size());
}

std::int64_t
LlmEngine::preloadPrefix(std::span<const kv::TokenId> tokens)
{
    const std::int64_t populated = blocks_.preloadPrefix(tokens);
    updateGauges();
    return populated;
}

LlmEngine::StepPlan &
LlmEngine::buildStep()
{
    StepPlan &plan = planScratch_;
    plan.reset();
    const int bs = config_.blockSize;

    // Injected stalls (fault layer) extend the next step's wall time.
    if (pendingStallSeconds_ > 0) {
        plan.stallSeconds = pendingStallSeconds_;
        pendingStallSeconds_ = 0.0;
    }

    // 1. Every decoding sequence gets one token this step.
    for (const auto &req : running_) {
        if (req->decoding)
            plan.decoders.push_back(req);
    }

    // 2. Reserve append capacity for decoders crossing a block
    //    boundary; preempt the newest request until it fits.
    auto append_need = [&] {
        std::int64_t need = 0;
        for (const auto &req : plan.decoders) {
            if (blocks_.seqTokens(req->id) % bs == 0)
                ++need;
        }
        return need;
    };
    while (append_need() > blocks_.availableBlocks()) {
        if (running_.size() <= 1) {
            // A lone request has filled the entire pool: truncate it.
            ReqPtr req = running_.front();
            AGENTSIM_WARN("KV pool exhausted by request %llu; "
                          "truncating output",
                          static_cast<unsigned long long>(req->id));
            req->truncated = true;
            plan.decoders.clear();
            finishRequest(req);
            break;
        }
        preemptOne(plan);
    }

    for (const auto &req : plan.decoders)
        plan.work.decodeContexts.push_back(blocks_.seqTokens(req->id));

    std::int64_t budget =
        std::max<std::int64_t>(0, config_.maxBatchTokens -
                                      static_cast<std::int64_t>(
                                          plan.decoders.size()));

    // 3. Continue chunked prefill of already-admitted requests.
    for (const auto &req : running_) {
        if (budget == 0)
            break;
        if (req->decoding)
            continue;
        const auto prompt_len =
            static_cast<std::int64_t>(req->prompt.size());
        std::int64_t chunk =
            std::min(budget, prompt_len - req->prefillDone);
        if (chunk <= 0)
            continue;
        // Completing a prompt that ends exactly on a block boundary
        // emits its first output token into a fresh block; defer the
        // final prompt token if no block could be available.
        const bool completes = req->prefillDone + chunk == prompt_len;
        if (completes && prompt_len % bs == 0 &&
            blocks_.availableBlocks() == 0) {
            --chunk;
        }
        if (chunk <= 0)
            continue;
        plan.prefills.push_back({req, chunk});
        plan.work.prefills.push_back({chunk, req->prefillDone});
        budget -= chunk;
    }

    // 4. Admit waiting requests while budget and memory allow, in the
    //    order the scheduler policy dictates.
    while (budget > 0 && !waiting_.empty() &&
           running_.size() < static_cast<std::size_t>(
                                 config_.maxRunningSeqs)) {
        auto candidate = nextAdmissionCandidate();
        ReqPtr req = *candidate;
        const auto prompt_len =
            static_cast<std::int64_t>(req->prompt.size());
        const std::int64_t upper_bound =
            blocks_.blocksNeeded(prompt_len) + 1;
        if (upper_bound > blocks_.totalBlocks()) {
            noteLeftWaiting(*req);
            waiting_.erase(candidate);
            failRequest(req);
            continue;
        }
        if (upper_bound > blocks_.availableBlocks())
            break; // the policy's best candidate does not fit

        auto alloc = blocks_.allocatePrompt(req->id, req->prompt);
        AGENTSIM_ASSERT(alloc.has_value(),
                        "allocation failed despite capacity check");
        noteLeftWaiting(*req);
        waiting_.erase(candidate);
        running_.push_back(req);
        chargeQueue(*req);
        chargeKv(*req); // opens the occupancy charging interval

        // Spill-tier restores skip prefill but pay the transfer back
        // to HBM: PCIe for the DRAM tier, NVMe read for the flash
        // tier.
        double restore_seconds = 0.0;
        if (alloc->restoredTokens > 0) {
            const double kv_bytes = static_cast<double>(
                config_.model.kvBytesPerToken());
            restore_seconds =
                static_cast<double>(alloc->dramRestoredTokens) *
                    kv_bytes / config_.node.hostOffloadBandwidth +
                static_cast<double>(alloc->nvmeRestoredTokens) *
                    kv_bytes / config_.node.nvmeReadBandwidth;
            plan.extraSeconds += restore_seconds;
            req->transferSecondsAcc += restore_seconds;
            req->ledger.transferSeconds += restore_seconds;
        }

        req->prefillDone = alloc->reusedTokens();
        if (req->prefillDone >= prompt_len) {
            // Fully cached prompt: recompute the last token to obtain
            // logits (vLLM does the same).
            req->prefillDone = prompt_len - 1;
        }
        if (req->prefillDone > 0) {
            // Counterfactual: what the reused tokens would have cost
            // to prefill from scratch.
            const double saved =
                perf_.prefillSeconds(req->prefillDone, 0);
            req->ledger.savedPrefillSeconds += saved;
            stats_.savedPrefillSeconds += saved;
        }
        if (req->firstScheduleTick < 0) {
            req->firstScheduleTick = sim_.now();
            req->cachedPromptTokens = alloc->reusedTokens();
        }
        tracePhaseEnd(*req); // queued
        tracePhaseBegin(*req, "prefill", telemetry::SpanKind::Prefill);
        // The restore happens inside the prefill step's wall time;
        // nesting it under the prefill span routes those seconds to
        // Migration blame while the remainder stays Prefill.
        if (restore_seconds > 0.0 && spans_ != nullptr &&
            req->phaseSpan.valid()) {
            auto restore = spans_->child(req->phaseSpan,
                                         telemetry::SpanKind::KvRestore,
                                         "kv_restore", sim_.now());
            spans_->end(restore,
                        sim_.now() + sim::fromSeconds(restore_seconds));
        }

        std::int64_t chunk =
            std::min(budget, prompt_len - req->prefillDone);
        const bool completes = req->prefillDone + chunk == prompt_len;
        if (completes && prompt_len % bs == 0 &&
            blocks_.availableBlocks() == 0) {
            --chunk;
        }
        if (chunk > 0) {
            plan.prefills.push_back({req, chunk});
            plan.work.prefills.push_back({chunk, req->prefillDone});
            budget -= chunk;
        }
    }

    if (plan.work.empty() && !running_.empty()) {
        // Pathological: a lone prompt fills the pool leaving no room
        // for its first output token. Finish it truncated rather than
        // spinning forever.
        ReqPtr req = running_.front();
        AGENTSIM_WARN("request %llu starved of append blocks; "
                      "truncating",
                      static_cast<unsigned long long>(req->id));
        req->truncated = true;
        finishRequest(req);
    }

    updateGauges();
    return plan;
}

void
LlmEngine::commitStep(const StepPlan &plan, const llm::StepCost &cost,
                      sim::Tick step_start)
{
    // A deadline landing mid-step expires *before* the step's results
    // are charged and emitted: the request neither receives nor pays
    // for tokens generated after its deadline. (The loop-top expiry
    // alone would cancel at the same tick but after the charge.)
    expireDeadlines();

    ++stats_.steps;
    stats_.busySeconds += cost.seconds;
    stats_.transferSeconds += plan.extraSeconds;
    stats_.stallSeconds += plan.stallSeconds;
    stats_.coreActiveSeconds +=
        std::min(cost.computeSeconds, cost.seconds);
    stats_.prefillTokens += cost.prefillTokens;
    stats_.decodeTokens += cost.decodeTokens;
    stats_.totalFlops += cost.flops;

    // Attribute step time to prefill vs decode by the cost each phase
    // would have alone (both include the fixed step overhead, which
    // therefore splits proportionally).
    double prefill_share = 0.0;
    double decode_share = 0.0;
    {
        llm::StepWork prefill_only;
        prefill_only.prefills = plan.work.prefills;
        llm::StepWork decode_only;
        decode_only.decodeContexts = plan.work.decodeContexts;
        const double tp = perf_.stepCost(prefill_only).seconds;
        const double td = perf_.stepCost(decode_only).seconds;
        const double total = tp + td;
        if (total > 0) {
            prefill_share = cost.seconds * (tp / total);
            decode_share = cost.seconds * (td / total);
            stats_.prefillSeconds += prefill_share;
            stats_.decodeSeconds += decode_share;
        }
    }

    // Energy: compute-bound steps draw prefill power, memory-bound
    // steps decode power, across all GPUs of the node.
    const double power = (cost.computeBound()
                              ? config_.node.gpu.prefillPower
                              : config_.node.gpu.decodePower) *
                         config_.node.numGpus;
    stats_.busyJoules += power * cost.seconds;

    const double step_wall =
        cost.seconds + plan.extraSeconds + plan.stallSeconds;

    // Advance prefills; a completed prompt emits its first token.
    for (const auto &part : plan.prefills) {
        const ReqPtr &req = part.req;
        if (req->finished || req->exported || req->owner != this)
            continue; // cancelled/expired/migrated mid-step
        req->prefillSecondsAcc += cost.seconds;
        req->flopsAcc += perf_.prefillFlops(part.tokens,
                                            req->prefillDone);

        // Ledger: this chunk's token-weighted share of the step's
        // prefill time, with the part re-prefilling preempted work
        // also flagged as waste.
        if (cost.prefillTokens > 0) {
            const double attributed =
                prefill_share * static_cast<double>(part.tokens) /
                static_cast<double>(cost.prefillTokens);
            req->ledger.prefillGpuSeconds += attributed;
            req->ledger.energyJoules += power * attributed;
            const std::int64_t redone =
                std::max<std::int64_t>(
                    0, std::min(req->prefillDone + part.tokens,
                                req->recomputeWatermark) -
                           req->prefillDone);
            if (redone > 0) {
                const double wasted =
                    attributed * static_cast<double>(redone) /
                    static_cast<double>(part.tokens);
                req->ledger.wastedGpuSeconds += wasted;
                stats_.wastedSeconds += wasted;
            }
        }
        req->prefillDone += part.tokens;
        const auto prompt_len =
            static_cast<std::int64_t>(req->prompt.size());
        if (req->prefillDone == prompt_len) {
            const kv::TokenId tok = genToken(*req);
            if (!blocks_.appendToken(req->id, tok)) {
                AGENTSIM_WARN("append failed at prefill completion; "
                              "truncating request %llu",
                              static_cast<unsigned long long>(req->id));
                req->truncated = true;
                finishRequest(req);
                continue;
            }
            req->output.push_back(tok);
            req->decoding = true;
            tracePhaseEnd(*req); // prefill
            tracePhaseBegin(*req, "decode", telemetry::SpanKind::Decode);
            if (req->firstTokenTick < 0) {
                req->firstTokenTick = sim_.now();
                if (slo_ != nullptr) {
                    slo_->observe(
                        telemetry::SloMetric::Ttft, sim_.now(),
                        sim::toSeconds(sim_.now() - req->submitTick));
                }
            }
            if (static_cast<std::int64_t>(req->output.size()) >=
                req->maxNewTokens) {
                finishRequest(req);
            }
        }
    }

    // Decoders each produced one token.
    const std::size_t planned_decoders = plan.work.decodeContexts.size();
    for (const auto &req : plan.decoders) {
        if (req->finished || req->exported || req->owner != this ||
            !req->decoding) {
            continue; // finished, cancelled or migrated meanwhile
        }
        req->decodeSecondsAcc += cost.seconds;
        req->flopsAcc += perf_.decodeFlops(blocks_.seqTokens(req->id));
        if (planned_decoders > 0) {
            // Ledger: an equal share of the step's decode time per
            // decoded token (every decoder produced exactly one).
            const double attributed =
                decode_share / static_cast<double>(planned_decoders);
            req->ledger.decodeGpuSeconds += attributed;
            req->ledger.energyJoules += power * attributed;
        }
        if (slo_ != nullptr) {
            slo_->observe(telemetry::SloMetric::Tbt, sim_.now(),
                          step_wall);
        }
        const kv::TokenId tok = genToken(*req);
        const bool ok = blocks_.appendToken(req->id, tok);
        AGENTSIM_ASSERT(ok, "decode append failed despite reservation");
        req->output.push_back(tok);
        if (static_cast<std::int64_t>(req->output.size()) >=
            req->maxNewTokens) {
            finishRequest(req);
        }
    }

    // Settle KV occupancy for the survivors at their (possibly grown)
    // block counts; finished requests settled when released.
    for (const auto &req : running_)
        chargeKv(*req);

    updateGauges();

    // Telemetry: one iteration sample (strided ring write) plus, when
    // a trace sink is attached, the engine-track span and counters.
    {
        telemetry::IterationSample s;
        s.tick = sim_.now();
        s.step = stats_.steps;
        s.running = static_cast<std::int32_t>(running_.size());
        s.waiting = static_cast<std::int32_t>(waiting_.size());
        s.prefillTokens = cost.prefillTokens;
        s.decodeTokens = cost.decodeTokens;
        s.kvBlocksUsed = blocks_.blocksInUse();
        s.kvBlocksFree = blocks_.blocksFree();
        s.prefixHitRate = blocks_.stats().hitRate();
        s.preemptions = stats_.preemptions;
        s.evictions = blocks_.stats().evictions;
        s.stepSeconds =
            cost.seconds + plan.extraSeconds + plan.stallSeconds;
        sampler_.record(s);

        if (trace_ != nullptr) {
            trace_->complete(
                telemetry::TracePid::kEngine, 1, "step", "engine",
                step_start, sim_.now(),
                sim::strfmt("\"prefill_tokens\":%lld,"
                            "\"decode_tokens\":%lld,\"running\":%d,"
                            "\"waiting\":%d",
                            static_cast<long long>(cost.prefillTokens),
                            static_cast<long long>(cost.decodeTokens),
                            s.running, s.waiting));
            trace_->counter(
                telemetry::TracePid::kEngine, "kv_blocks", sim_.now(),
                sim::strfmt("\"used\":%lld,\"free\":%lld",
                            static_cast<long long>(s.kvBlocksUsed),
                            static_cast<long long>(s.kvBlocksFree)));
            trace_->counter(
                telemetry::TracePid::kEngine, "batch", sim_.now(),
                sim::strfmt("\"running\":%d,\"waiting\":%d", s.running,
                            s.waiting));
        }
    }
}

std::deque<LlmEngine::ReqPtr>::iterator
LlmEngine::nextAdmissionCandidate()
{
    AGENTSIM_ASSERT(!waiting_.empty(), "no admission candidates");
    switch (config_.schedulerPolicy) {
      case SchedulerPolicy::Fcfs:
        return waiting_.begin();
      case SchedulerPolicy::ShortestPromptFirst: {
          auto best = waiting_.begin();
          for (auto it = waiting_.begin(); it != waiting_.end();
               ++it) {
              if ((*it)->prompt.size() < (*best)->prompt.size())
                  best = it;
          }
          return best;
      }
      case SchedulerPolicy::LeastAttainedService: {
          auto service = [&](const ReqPtr &req) {
              auto it = sessionService_.find(req->sessionId);
              return it == sessionService_.end() ? 0.0 : it->second;
          };
          auto best = waiting_.begin();
          for (auto it = waiting_.begin(); it != waiting_.end();
               ++it) {
              if (service(*it) < service(*best))
                  best = it;
          }
          return best;
      }
    }
    AGENTSIM_PANIC("unknown scheduler policy");
}

void
LlmEngine::exportMetrics(telemetry::MetricsRegistry &registry) const
{
    const sim::Tick now = sim_.now();
    auto set_counter = [&](const char *name, const char *help,
                           double value) {
        registry.counter(name, help).set(value);
    };
    auto set_gauge = [&](const char *name, const char *help,
                         double value) {
        registry.gauge(name, help).set(now, value);
    };

    set_counter("agentsim_requests_submitted_total",
                "Generation requests submitted to the engine",
                static_cast<double>(stats_.requestsSubmitted));
    set_counter("agentsim_requests_completed_total",
                "Generation requests completed",
                static_cast<double>(stats_.requestsCompleted));
    set_counter("agentsim_requests_failed_total",
                "Requests rejected or failed (context window, KV pool)",
                static_cast<double>(stats_.requestsFailed));
    set_counter("agentsim_requests_cancelled_total",
                "Requests cancelled (client cancel or node crash)",
                static_cast<double>(stats_.requestsCancelled));
    set_counter("agentsim_requests_timed_out_total",
                "Requests cancelled by deadline expiry",
                static_cast<double>(stats_.requestsTimedOut));
    set_counter("agentsim_requests_shed_total",
                "Requests rejected by queue-depth load shedding",
                static_cast<double>(stats_.requestsShed));
    set_counter("agentsim_node_crashes_total",
                "Simulated node crashes",
                static_cast<double>(stats_.crashes));
    set_counter("agentsim_resilience_drains_total",
                "Graceful drains completed by this engine",
                static_cast<double>(stats_.drains));
    set_counter("agentsim_resilience_migrations_out_total",
                "Requests exported by live migration",
                static_cast<double>(stats_.requestsMigratedOut));
    set_counter("agentsim_resilience_migrations_in_total",
                "Requests imported by live migration",
                static_cast<double>(stats_.requestsMigratedIn));
    set_counter("agentsim_resilience_migration_fallbacks_total",
                "Imports that fell back to recompute (pool full)",
                static_cast<double>(stats_.migrationFallbacks));
    set_counter("agentsim_resilience_migration_seconds_total",
                "Interconnect+PCIe seconds moving migrated KV in",
                stats_.migrationSeconds);
    set_counter("agentsim_resilience_lost_prefill_seconds_total",
                "Prefill GPU-s discarded by node-failure cancels",
                stats_.lostPrefillSeconds);
    set_counter("agentsim_preemptions_total",
                "Recompute preemptions under memory pressure",
                static_cast<double>(stats_.preemptions));
    set_counter("agentsim_engine_steps_total",
                "Continuous-batching engine iterations",
                static_cast<double>(stats_.steps));
    set_counter("agentsim_prefill_tokens_total",
                "Prompt tokens prefilled",
                static_cast<double>(stats_.prefillTokens));
    set_counter("agentsim_decode_tokens_total",
                "Output tokens decoded",
                static_cast<double>(stats_.decodeTokens));
    set_counter("agentsim_gpu_busy_seconds_total",
                "Wall-clock seconds the GPU executed steps",
                stats_.busySeconds);
    set_counter("agentsim_kv_transfer_seconds_total",
                "Host->GPU PCIe seconds restoring spilled KV",
                stats_.transferSeconds);
    set_counter("agentsim_engine_stall_seconds_total",
                "Injected engine-stall seconds (fault injection)",
                stats_.stallSeconds);
    set_counter("agentsim_gpu_core_active_seconds_total",
                "Roofline estimate of SM-active seconds",
                stats_.coreActiveSeconds);
    set_counter("agentsim_gpu_prefill_seconds_total",
                "Busy seconds attributed to prefill work",
                stats_.prefillSeconds);
    set_counter("agentsim_gpu_decode_seconds_total",
                "Busy seconds attributed to decode work",
                stats_.decodeSeconds);
    set_counter("agentsim_gpu_energy_joules_total",
                "Node GPU energy including idle draw",
                energyJoules(now));
    set_counter("agentsim_model_flops_total",
                "FLOPs executed by the engine",
                stats_.totalFlops);
    set_counter("agentsim_cost_wasted_gpu_seconds_total",
                "GPU seconds re-prefilling preempted (discarded) work",
                stats_.wastedSeconds);
    set_counter("agentsim_cost_saved_prefill_seconds_total",
                "Estimated prefill seconds avoided by prefix caching",
                stats_.savedPrefillSeconds);
    set_counter("agentsim_cost_kv_block_seconds_total",
                "KV occupancy integral (blocks held x seconds held)",
                stats_.kvBlockSeconds);

    const kv::CacheStats &cache = blocks_.stats();
    set_counter("agentsim_kv_lookup_tokens_total",
                "Prompt tokens looked up in the prefix cache",
                static_cast<double>(cache.lookupTokens));
    set_counter("agentsim_kv_hit_tokens_total",
                "Prompt tokens served from the prefix cache",
                static_cast<double>(cache.hitTokens));
    set_counter("agentsim_kv_restored_tokens_total",
                "Tokens restored from the KV spill tiers",
                static_cast<double>(cache.restoredTokens));
    set_counter("agentsim_kv_evictions_total",
                "Cached blocks evicted",
                static_cast<double>(cache.evictions));

    auto tier_counters = [&](const char *tier, const kv::TierStats &t,
                             std::int64_t resident,
                             std::int64_t capacity) {
        auto name = [&](const char *suffix) {
            return sim::strfmt("agentsim_kv_tier_%s_%s", tier, suffix);
        };
        registry
            .counter(name("demotions_total"),
                     "Blocks admitted into this KV spill tier")
            .set(static_cast<double>(t.demotedBlocks));
        registry
            .counter(name("rejects_total"),
                     "Demotion candidates skipped by probabilistic "
                     "admission")
            .set(static_cast<double>(t.rejectedBlocks));
        registry
            .counter(name("evictions_total"),
                     "Blocks pushed out of this tier by its capacity")
            .set(static_cast<double>(t.evictedBlocks));
        registry
            .counter(name("restored_tokens_total"),
                     "Tokens restored from this tier back to HBM")
            .set(static_cast<double>(t.restoredTokens));
        registry.gauge(name("blocks"), "Blocks resident in this tier")
            .set(now, static_cast<double>(resident));
        registry
            .gauge(name("capacity_blocks"),
                   "Configured tier capacity in blocks")
            .set(now, static_cast<double>(capacity));
    };
    tier_counters("dram", cache.dram, blocks_.hostCachedBlocks(),
                  blocks_.tierCapacity(kv::Tier::Dram));
    tier_counters("nvme", cache.nvme, blocks_.nvmeCachedBlocks(),
                  blocks_.tierCapacity(kv::Tier::Nvme));
    set_counter("agentsim_kv_park_chains_total",
                "Chains demoted by tool-call-aware parking",
                static_cast<double>(stats_.parkedChains));
    set_counter("agentsim_kv_park_blocks_total",
                "Blocks demoted by tool-call-aware parking",
                static_cast<double>(stats_.parkedBlocks));
    set_counter("agentsim_kv_park_prefetched_blocks_total",
                "Blocks promoted back by the pre-wake prefetch",
                static_cast<double>(stats_.prefetchedBlocks));
    set_counter("agentsim_kv_park_demote_seconds_total",
                "Background PCIe seconds writing parked chains out",
                stats_.parkDemoteSeconds);
    set_counter("agentsim_kv_park_restore_seconds_total",
                "Background seconds prefetching parked chains back",
                stats_.parkRestoreSeconds);

    set_gauge("agentsim_kv_blocks_used",
              "KV blocks pinned by live sequences",
              static_cast<double>(blocks_.blocksInUse()));
    set_gauge("agentsim_kv_blocks_free",
              "KV blocks free or evictable",
              static_cast<double>(blocks_.blocksFree()));
    set_gauge("agentsim_kv_blocks_total", "KV pool size in blocks",
              static_cast<double>(blocks_.totalBlocks()));
    set_gauge("agentsim_kv_prefix_hit_rate",
              "Cumulative prefix-cache token hit rate",
              cache.hitRate());
    set_gauge("agentsim_batch_running",
              "Sequences in the running batch",
              static_cast<double>(running_.size()));
    set_gauge("agentsim_queue_depth",
              "Requests waiting for admission",
              static_cast<double>(waiting_.size()));
}

void
LlmEngine::updateGauges()
{
    kvUsed_.set(sim_.now(), static_cast<double>(blocks_.usedBlocks()));
    batchSize_.set(sim_.now(), static_cast<double>(running_.size()));
}

} // namespace agentsim::serving
