/**
 * @file
 * LlmEngine — a vLLM-style serving engine on the simulation clock.
 *
 * The engine implements iteration-level continuous batching over the
 * paged KV cache:
 *  - a FCFS waiting queue feeds a running batch;
 *  - every engine step gives each decoding sequence one token and
 *    spends the remaining per-step token budget on chunked prefill;
 *  - prompts are allocated block tables up-front, reusing prefix-cached
 *    blocks (skipping their prefill);
 *  - under memory pressure the latest-arrived running request is
 *    preempted by recompute (blocks released, request requeued with its
 *    generated tokens folded into the prompt);
 *  - step latency comes from the roofline PerfModel, making prefill
 *    compute-bound and decode memory-bound.
 *
 * Agents interact through the awaitable generate() API.
 */

#ifndef AGENTSIM_SERVING_ENGINE_HH
#define AGENTSIM_SERVING_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "kv/block_manager.hh"
#include "llm/perf_model.hh"
#include "serving/request.hh"
#include "sim/awaitable.hh"
#include "sim/rng.hh"
#include "sim/simulation.hh"
#include "sim/task.hh"
#include "stats/gauge.hh"
#include "telemetry/registry.hh"
#include "telemetry/sampler.hh"
#include "telemetry/slo.hh"
#include "telemetry/span.hh"
#include "telemetry/trace_sink.hh"

namespace agentsim::serving
{

/** Waiting-queue admission order. */
enum class SchedulerPolicy
{
    /** First come, first served (vLLM default; paper setup). */
    Fcfs,
    /** Admit the smallest waiting prompt first (SJF-style). */
    ShortestPromptFirst,
    /**
     * Program-aware least-attained-service (Autellix [23]): admit the
     * request whose session (agent rollout) has consumed the least
     * GPU service so far, keeping young programs from starving behind
     * long-running multi-call agents.
     */
    LeastAttainedService,
};

/** Engine configuration. */
struct EngineConfig
{
    llm::ModelSpec model;
    llm::NodeSpec node;

    /** Enable block-level prefix caching. */
    bool enablePrefixCaching = true;
    /** KV block size in tokens. */
    int blockSize = 16;
    /** Admission order for waiting requests. */
    SchedulerPolicy schedulerPolicy = SchedulerPolicy::Fcfs;
    /** Eviction order among unreferenced cached blocks. */
    kv::EvictionPolicy evictionPolicy = kv::EvictionPolicy::Lru;
    /** Host-memory KV spill tier, in blocks (0 disables). */
    std::int64_t hostCacheBlocks = 0;
    /** Probability an HBM eviction victim is admitted into the DRAM
     *  tier (Spitfire-style probabilistic migration). */
    double kvDramAdmitProb = 1.0;
    /** Residency discipline of the DRAM tier. */
    kv::TierMode kvDramTierMode = kv::TierMode::Exclusive;
    /** Simulated NVMe KV spill tier, in blocks (0 disables). DRAM
     *  capacity victims sink here; restores pay the NVMe read. */
    std::int64_t nvmeCacheBlocks = 0;
    /** Probability a DRAM victim (or HBM victim when the DRAM tier is
     *  disabled) is admitted into the NVMe tier. */
    double kvNvmeAdmitProb = 1.0;
    /** Residency discipline of the NVMe tier. */
    kv::TierMode kvNvmeTierMode = kv::TierMode::Exclusive;
    /**
     * Tool-call parking engages only when the HBM pool is contended:
     * requests are waiting, or live sequences pin at least this
     * fraction of the pool. An uncontended pool keeps the chain
     * resident — demoting it would trade a free HBM hit for a priced
     * restore. 0 parks every hinted chain unconditionally.
     */
    double parkUtilizationThreshold = 0.5;
    /**
     * Bytes of GPU memory reserved for the KV pool. Zero means
     * "derive from hardware": total HBM minus weights minus a 10%
     * activation reserve.
     */
    std::int64_t kvPoolBytes = 0;
    /** Per-step token budget (decode tokens + chunked prefill). */
    std::int64_t maxBatchTokens = 512;
    /** Maximum concurrently running sequences. */
    int maxRunningSeqs = 256;
    /**
     * Admission control: shed new requests once the waiting queue
     * holds this many entries (result.shed, never queued). 0 = accept
     * everything, the pre-SLO behaviour.
     */
    std::size_t maxQueueDepth = 0;
    /** Seed for the generated-token streams. */
    std::uint64_t seed = 1;

    /**
     * Iteration-sampler stride: keep every Nth step in the telemetry
     * ring (1 = every step, 0 disables). On by default — recording is
     * one struct copy into a preallocated ring.
     */
    int samplerStride = 1;
    /** Iteration-sampler ring capacity, in samples. */
    std::size_t samplerCapacity = 1 << 16;
};

/** Aggregated engine-level statistics. */
struct EngineStats
{
    std::int64_t requestsSubmitted = 0;
    std::int64_t requestsCompleted = 0;
    std::int64_t requestsFailed = 0;
    /** Requests cancelled (explicit cancel() or node crash). */
    std::int64_t requestsCancelled = 0;
    /** Requests cancelled by deadline expiry. */
    std::int64_t requestsTimedOut = 0;
    /** Requests rejected by queue-depth load shedding. */
    std::int64_t requestsShed = 0;
    std::int64_t preemptions = 0;
    std::int64_t steps = 0;
    /** Simulated node crashes (crash()). */
    std::int64_t crashes = 0;
    /** Graceful drains completed (drain() reaching shutdown). */
    std::int64_t drains = 0;
    /** Requests exported to another node by live migration. */
    std::int64_t requestsMigratedOut = 0;
    /** Requests imported from another node by live migration. */
    std::int64_t requestsMigratedIn = 0;
    /**
     * Imports that could not land their KV chain (target pool full or
     * KV lost in transit) and fell back to recompute-preemption
     * semantics: the request requeues cold and re-prefills.
     */
    std::int64_t migrationFallbacks = 0;

    /** Wall-clock seconds during which the GPU executed steps. */
    double busySeconds = 0.0;
    /**
     * Host->GPU PCIe seconds restoring spilled KV. Extends step wall
     * time but is not GPU-busy time: energy-wise the GPU idles while
     * the transfer is in flight.
     */
    double transferSeconds = 0.0;
    /** Injected engine-stall seconds (fault injection). */
    double stallSeconds = 0.0;
    /**
     * Roofline estimate of SM-active seconds (DCGM-style "core
     * utilization"): a memory-bound step keeps the cores active only
     * for its compute-time share.
     */
    double coreActiveSeconds = 0.0;
    /** busySeconds attributed to prefill / decode work. */
    double prefillSeconds = 0.0;
    double decodeSeconds = 0.0;

    std::int64_t prefillTokens = 0;
    std::int64_t decodeTokens = 0;
    double totalFlops = 0.0;

    /** Node-wide GPU energy dissipated while busy, joules. */
    double busyJoules = 0.0;

    /**
     * GPU-seconds spent re-prefilling tokens discarded by recompute
     * preemptions (a subset of prefillSeconds, not an addition).
     */
    double wastedSeconds = 0.0;
    /** Estimated prefill seconds avoided by prefix-cache reuse. */
    double savedPrefillSeconds = 0.0;
    /**
     * KV occupancy integral over all requests: blocks held x seconds
     * held (settled charges; requests still holding blocks have an
     * open interval not yet included).
     */
    double kvBlockSeconds = 0.0;
    /**
     * Interconnect + PCIe seconds spent moving migrated KV chains into
     * this node (importRequest). Off the step critical path: the
     * request is simply unavailable while its KV is in flight.
     */
    double migrationSeconds = 0.0;
    /**
     * Prefill GPU-seconds already invested in requests that were then
     * cancelled by a node failure (crash, or drain without migration)
     * — work a retry must repeat from scratch. Live migration exists
     * to keep this near zero.
     */
    double lostPrefillSeconds = 0.0;

    /**
     * Tool-call-aware parking: finished requests that announced an
     * expected park duration and had their chain demoted to the spill
     * tiers while the agent waits on its tool call.
     */
    std::int64_t parkedChains = 0;
    /** Blocks demoted by parking (freed HBM during the tool wait). */
    std::int64_t parkedBlocks = 0;
    /** Blocks promoted back to HBM by the pre-wake prefetch. */
    std::int64_t prefetchedBlocks = 0;
    /**
     * Background PCIe seconds writing parked chains to DRAM. Off the
     * step critical path: the GPU serves other work meanwhile.
     */
    double parkDemoteSeconds = 0.0;
    /**
     * Background restore seconds (PCIe and/or NVMe read) spent
     * prefetching parked chains before their continuation arrives.
     */
    double parkRestoreSeconds = 0.0;
};

/**
 * A request in flight between two engines during live migration:
 * opaque engine-internal state plus the KV chain snapshot needed to
 * rebuild (or recompute) it on the target. Produced by
 * LlmEngine::exportRequest(), consumed by importRequest() — or by
 * abortMigration() when no target can take it.
 */
struct MigratedRequest
{
    /** Engine-private request state (lifecycle, ledger, awaiter). */
    std::shared_ptr<void> state;
    /** Full token chain (prompt + generated output) for reallocation. */
    std::vector<kv::TokenId> chainTokens;
    /** Tokens whose KV was actually computed on the source — the part
     *  that must cross the interconnect (minus target cache hits). */
    std::int64_t computedTokens = 0;

    bool valid() const { return state != nullptr; }
};

/** What a graceful drain accomplished. */
struct DrainOutcome
{
    /** Requests that finished normally during the drain window. */
    std::int64_t completed = 0;
    /** Requests exported for migration at the drain deadline. */
    std::vector<MigratedRequest> leftovers;
    /** True if the drain was cut short by a concurrent crash. */
    bool crashed = false;
};

/**
 * The serving engine. One instance per serving node; single model.
 */
class LlmEngine
{
  public:
    LlmEngine(sim::Simulation &sim, const EngineConfig &config);

    LlmEngine(const LlmEngine &) = delete;
    LlmEngine &operator=(const LlmEngine &) = delete;

    /**
     * Destroys the engine loop's coroutine frame. The engine must not
     * be destroyed while its simulation still holds scheduled events
     * for it (destroy after the sim has drained): the run loop is
     * then parked on its wake completion and can be torn down safely
     * — merely detaching it would leak the frame, as an infinite
     * loop never reaches final suspend.
     */
    ~LlmEngine();

    /**
     * Submit a request and await its completion.
     *
     * Multiple concurrent generate() calls batch together — this is
     * the inter-request parallelism the paper's serving analysis
     * revolves around.
     *
     * @param handle_out optional: receives the engine-assigned request
     *        id (for cancel()) before the first suspension, i.e. it is
     *        valid as soon as generate() returns its task. Left 0 when
     *        the request is rejected up front (shed / offline / too
     *        long for the context window).
     */
    sim::Task<GenResult> generate(GenRequest request,
                                  std::uint64_t *handle_out = nullptr);

    /**
     * Cancel an in-flight request by id: its KV blocks are released
     * (whether it was waiting, prefilling or decoding) and its
     * awaiter resumes with result.cancelled set. @return false if the
     * id is unknown or the request already finished.
     */
    bool cancel(std::uint64_t request_id);

    /**
     * Simulate a node crash: every waiting and running request is
     * cancelled with nodeFailure set (clients should retry on another
     * node), the KV pool is reset — the prefix cache comes back cold —
     * and the engine rejects new requests until restart().
     */
    void crash();

    /** Bring a crashed engine back online (empty caches). */
    void restart();

    /**
     * Take an idle engine offline without the failure semantics of
     * crash(): no requests may be in flight (the caller drains
     * first), nothing is cancelled and no crash is counted. Used by
     * the autoscaler to park standby capacity; restart() brings the
     * node back (cold caches, as after any power cycle).
     */
    void standby();

    /** False between crash() and restart(). */
    bool online() const { return online_; }

    /**
     * Gracefully drain the node for planned maintenance: stop
     * admitting new requests immediately (generate() returns a
     * retryable nodeFailure, as for an offline node), let in-flight
     * work run to completion for up to @p deadline_seconds, then
     * handle the remainder — exported for live migration when
     * @p export_leftovers is set, cancelled with nodeFailure
     * otherwise. On completion the engine is offline (caches cold,
     * like any process restart); bring it back with restart().
     * A crash() during the drain window aborts the drain (the crash
     * already cancelled everything).
     */
    sim::Task<DrainOutcome> drain(double deadline_seconds,
                                  bool export_leftovers);

    /** True while drain() is waiting out its deadline. */
    bool draining() const { return draining_; }

    /** Online and not draining: the router may send traffic here. */
    bool accepting() const { return online_ && !draining_; }

    /**
     * Snapshot a waiting or running request for live migration: its
     * open KV/queue charges are settled, its block chain is exported
     * and released, and it leaves this engine's queues (the in-flight
     * step, if any, skips it). The caller owns getting the snapshot
     * to importRequest() on another node — or abortMigration().
     * @return nullopt if the id is unknown or already finished.
     */
    std::optional<MigratedRequest> exportRequest(std::uint64_t id);

    /**
     * Land a migrated request on this node. Its KV chain is
     * reallocated immediately (reusing any locally cached prefix);
     * the non-reused computed tokens pay an interconnect transfer at
     * @p interconnect_bandwidth bytes/s (plus PCIe for host-tier
     * restores), and the request activates — resuming decode or
     * chunked prefill exactly where it left off — once the transfer
     * completes. If the pool cannot hold the chain, falls back to
     * recompute-preemption semantics: generated tokens fold into the
     * prompt and the request requeues cold (the re-prefill below the
     * old watermark is charged as waste).
     */
    void importRequest(MigratedRequest migrated,
                       double interconnect_bandwidth);

    /**
     * Resolve an exported request that no node could import (whole
     * cluster draining/down): its awaiter resumes with a retryable
     * nodeFailure, exactly as if the source had crashed.
     */
    void abortMigration(MigratedRequest migrated);

    /**
     * Fault injection: extend the next engine step by @p seconds
     * (driver hiccup, garbage collection, a straggler all-reduce).
     * Accumulates if called repeatedly before a step runs.
     */
    void injectStall(double seconds);

    const EngineStats &stats() const { return stats_; }

    /** Read-only view of the block pool (tests, invariant checks). */
    const kv::BlockManager &blockManager() const { return blocks_; }

    /** KV pool statistics (hit rate, evictions). */
    const kv::CacheStats &cacheStats() const { return blocks_.stats(); }

    /** Used-KV-blocks gauge (time weighted, in blocks). */
    const stats::TimeWeightedGauge &kvUsageGauge() const
    {
        return kvUsed_;
    }

    /** Mutable gauge access for harness-level measurement windows. */
    stats::TimeWeightedGauge &kvUsageGaugeMut() { return kvUsed_; }

    /** Running-batch-size gauge (time weighted). */
    const stats::TimeWeightedGauge &batchGauge() const
    {
        return batchSize_;
    }

    /** Bytes of KV memory represented by one block. */
    std::int64_t blockBytes() const;

    /** Total KV pool size in blocks. */
    std::int64_t totalBlocks() const { return blocks_.totalBlocks(); }

    /** Requests waiting for admission. */
    std::size_t queueDepth() const { return waiting_.size(); }

    /** Requests currently running. */
    std::size_t runningCount() const { return running_.size(); }

    const EngineConfig &config() const { return config_; }
    const llm::PerfModel &perfModel() const { return perf_; }

    /** Per-iteration telemetry series (always collecting by default). */
    const telemetry::EngineSampler &sampler() const { return sampler_; }

    /**
     * Attach a cross-layer trace sink. The engine then emits one span
     * per iteration on the engine track, per-request lifecycle spans
     * (queued / prefill / decode, preemption instants) on request
     * tracks, and KV/batch counter series. Pass nullptr to detach.
     * The sink must outlive the engine (or be detached first).
     */
    void attachTrace(telemetry::TraceSink *sink);

    /**
     * Attach an online SLO tracker. The engine then feeds it TTFT (at
     * first-token emission), TBT (one observation per decoded token,
     * the step's wall time including restores and injected stalls) and
     * E2E (at completion); cancelled, timed-out and shed requests are
     * reported as unconditional violations. Pass nullptr to detach.
     * The tracker must outlive the engine (or be detached first).
     */
    void attachSlo(telemetry::SloTracker *slo);

    /**
     * Attach a causal span collector. Requests arriving with a valid
     * GenRequest::parentSpan then get Queue/Prefill/Decode phase
     * spans, Preempt markers, KvRestore and Migration transfer spans
     * attached under that parent, feeding per-request critical-path
     * blame (telemetry/critical_path.hh). Pass nullptr to detach.
     * The collector must outlive the engine (or be detached first).
     */
    void attachSpans(telemetry::SpanCollector *spans);

    /**
     * Export current engine/cache totals and occupancy gauges into a
     * metrics registry (Prometheus-style families, agentsim_ prefix).
     */
    void exportMetrics(telemetry::MetricsRegistry &registry) const;

    /**
     * Inject externally computed KV for a prompt prefix (KV arriving
     * from a disaggregated prefill node). @return blocks populated,
     * or -1 if the prefix cannot fit.
     */
    std::int64_t preloadPrefix(std::span<const kv::TokenId> tokens);

    /**
     * Node-wide GPU energy (joules) consumed up to @p now, including
     * idle draw between steps.
     */
    double energyJoules(sim::Tick now) const;

  private:
    /** Internal request state. */
    struct Req
    {
        std::uint64_t id = 0;
        std::uint64_t sessionId = 0;
        std::vector<kv::TokenId> prompt;
        std::int64_t maxNewTokens = 0;
        std::vector<kv::TokenId> output;
        /** Prompt tokens with KV in place (cached + prefilled). */
        std::int64_t prefillDone = 0;
        bool decoding = false;
        bool truncated = false;
        /** Completion already delivered; skip in any in-flight plan. */
        bool finished = false;
        /** Exported for migration; skip in any in-flight plan. */
        bool exported = false;
        /**
         * Engine currently responsible for this request. Changes on
         * live migration — the source's in-flight step plan still
         * references the Req after a same-tick re-import has cleared
         * `exported` and reassigned `id`, so plan consumers must also
         * check ownership before touching engine-local state.
         */
        LlmEngine *owner = nullptr;
        /**
         * Sitting in waiting_ as a re-admission (preemption victim or
         * migration fallback), not a fresh arrival — exempt from the
         * maxQueueDepth shed check, which guards against *new* load.
         */
        bool requeued = false;

        /** Absolute deadline tick (-1: none). */
        sim::Tick deadlineTick = -1;

        sim::Tick submitTick = 0;
        sim::Tick firstScheduleTick = -1;
        sim::Tick firstTokenTick = -1;
        double prefillSecondsAcc = 0.0;
        double decodeSecondsAcc = 0.0;
        /** PCIe seconds restoring this request's host-spilled KV. */
        double transferSecondsAcc = 0.0;
        double flopsAcc = 0.0;
        std::int64_t cachedPromptTokens = 0;
        std::int64_t firstPromptLen = 0;
        int preemptions = 0;
        /** Agent's expected tool-call wait after this request (s);
         *  > 0 arms tool-call-aware KV parking at completion. */
        double parkSeconds = 0.0;

        /** Attributed resource charges (serving/cost.hh). */
        CostLedger ledger;
        /** Blocks charged for since kvMarkTick (0 = none held). */
        std::int64_t heldBlocks = 0;
        /** Start of the open KV-occupancy charging interval. */
        sim::Tick kvMarkTick = 0;
        /**
         * Tokens of KV this request had computed when it was last
         * preempted; re-prefilling below this watermark is waste.
         */
        std::int64_t recomputeWatermark = 0;
        /** Entry tick of the current queueing episode (-1: none). */
        sim::Tick queuedSince = -1;

        /** Current lifecycle phase on the trace (nullptr = none). */
        const char *tracePhase = nullptr;
        sim::Tick tracePhaseStart = 0;

        /** Caller's span to attach engine phase spans under. */
        telemetry::SpanRef parentSpan;
        /** Open phase span mirroring tracePhase. */
        telemetry::SpanRef phaseSpan;

        sim::Completion<GenResult> done;

        Req(sim::Simulation &sim) : done(sim) {}
    };

    using ReqPtr = std::shared_ptr<Req>;

    /** Work selected for one engine step. */
    struct StepPlan
    {
        llm::StepWork work;
        /** Extra wall time for host->GPU KV restores, seconds. */
        double extraSeconds = 0.0;
        /** Injected stall time folded into this step, seconds. */
        double stallSeconds = 0.0;
        /** Requests receiving one decode token. */
        std::vector<ReqPtr> decoders;
        struct PrefillPart
        {
            ReqPtr req;
            std::int64_t tokens;
        };
        std::vector<PrefillPart> prefills;

        /** Empty the plan for reuse, keeping vector capacity — the
         *  step loop builds one of these per engine step, so the
         *  scratch plan amortizes to zero allocations. */
        void
        reset()
        {
            work.prefills.clear();
            work.decodeContexts.clear();
            extraSeconds = 0.0;
            stallSeconds = 0.0;
            decoders.clear();
            prefills.clear();
        }
    };

    sim::Simulation &sim_;
    EngineConfig config_;
    llm::PerfModel perf_;
    kv::BlockManager blocks_;

    std::deque<ReqPtr> waiting_;
    std::vector<ReqPtr> running_; // admission order
    std::optional<sim::Completion<int>> wake_;
    std::uint64_t nextId_ = 1;
    bool online_ = true;
    /** drain() in progress: admissions closed, work finishing. */
    bool draining_ = false;
    /** Entries of waiting_ that are re-admissions (Req::requeued). */
    std::size_t requeuedInWaiting_ = 0;
    /** Stall seconds awaiting the next step (injectStall). */
    double pendingStallSeconds_ = 0.0;
    /** Reusable step plan (see StepPlan::reset). */
    StepPlan planScratch_;
    /** Cumulative attributed GPU seconds per session (LAS policy). */
    std::unordered_map<std::uint64_t, double> sessionService_;

    EngineStats stats_;
    stats::TimeWeightedGauge kvUsed_;
    stats::TimeWeightedGauge batchSize_;
    telemetry::EngineSampler sampler_;
    telemetry::TraceSink *trace_ = nullptr;
    telemetry::SloTracker *slo_ = nullptr;
    telemetry::SpanCollector *spans_ = nullptr;

    sim::Task<void> loop_;

    sim::Task<void> runLoop();
    /** Select this step's work into planScratch_ (returned by
     *  reference; valid until the next buildStep call). */
    StepPlan &buildStep();

    /** Pick the next admission candidate per the scheduler policy. */
    std::deque<ReqPtr>::iterator nextAdmissionCandidate();
    void commitStep(const StepPlan &plan, const llm::StepCost &cost,
                    sim::Tick step_start);

    /** Open a request-lifecycle phase span (trace + span tree). */
    void tracePhaseBegin(Req &req, const char *phase,
                         telemetry::SpanKind kind);

    /** Close the request's open phase span, if any. */
    void tracePhaseEnd(Req &req);

    /** Preempt the latest-arrived running request (recompute). */
    void preemptOne(StepPlan &plan);

    /** Fail a request that can never be served. */
    void failRequest(const ReqPtr &req);

    /** Complete a request and release its sequence. */
    void finishRequest(const ReqPtr &req);

    /**
     * Tool-call-aware parking, run at request completion: when the
     * request announced an expected tool wait and a spill tier is
     * enabled, demote its now-idle chain out of HBM and schedule a
     * prefetch that promotes it back just before the continuation
     * wakes. Both transfers happen off the step critical path.
     */
    void maybeParkChain(const ReqPtr &req);

    /** Why a request is being cancelled. */
    enum class CancelCause
    {
        Client,      ///< explicit cancel()
        Deadline,    ///< per-request deadline expired
        NodeFailure, ///< engine crash
    };

    /**
     * Cancel a request: release its blocks (if allocated), remove it
     * from waiting_/running_, and resume its awaiter with the flags
     * for @p cause.
     */
    void cancelRequest(const ReqPtr &req, CancelCause cause);

    /** Cancel every request whose deadline has passed. */
    void expireDeadlines();

    /**
     * Bookkeeping for a request leaving waiting_ by any path: clears
     * its re-admission mark so the shed check's fresh-arrival count
     * stays exact.
     */
    void noteLeftWaiting(Req &req);

    /** Requeue a request with re-admission accounting and trace. */
    void requeueRequest(const ReqPtr &req, bool front);

    /** Activate an imported request once its KV transfer lands. */
    void activateImported(const ReqPtr &req,
                          std::vector<kv::TokenId> chain_tokens,
                          std::int64_t computed_tokens);

    /**
     * Settle the request's open KV-occupancy interval into its ledger
     * and restart the interval at the request's current block count.
     * Must run before any operation that changes the count (append,
     * release) so the elapsed time is charged at the old rate.
     */
    void chargeKv(Req &req);

    /** Settle the current queueing episode into the ledger. */
    void chargeQueue(Req &req);

    /** Report a request lost before completion to the SLO tracker. */
    void sloFailure(const Req &req);

    /** Produce the next synthetic output token for a request. */
    kv::TokenId genToken(Req &req);

    void updateGauges();

    static std::int64_t derivePoolBlocks(const EngineConfig &config);
};

} // namespace agentsim::serving

#endif // AGENTSIM_SERVING_ENGINE_HH
