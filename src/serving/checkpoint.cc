#include "serving/checkpoint.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace agentsim::serving
{

bool
CheckpointStore::shouldCheckpoint(std::uint64_t episode,
                                  int completed_iterations)
{
    if (!policy_.enabled)
        return false;
    if (completed_iterations < policy_.minIterations)
        return false;
    if (policy_.everyIterations > 1 &&
        completed_iterations % policy_.everyIterations != 0) {
        return false;
    }
    if (policy_.admitProb >= 1.0)
        return true;
    auto it = admitRng_.find(episode);
    if (it == admitRng_.end()) {
        it = admitRng_
                 .emplace(episode,
                          sim::Rng(seed_, "checkpoint", episode))
                 .first;
    }
    return it->second.bernoulli(policy_.admitProb);
}

void
CheckpointStore::put(std::uint64_t episode, EpisodeCheckpoint ckpt,
                     double bytes_per_token)
{
    AGENTSIM_ASSERT(bytes_per_token >= 0.0,
                    "negative checkpoint KV pricing");
    // Delta journaling: the previous snapshot's prefix bytes are
    // already in the store, so only newly appended chain tokens (plus
    // the fixed journal overhead) hit the wire. A shrinking chain
    // (e.g. a Reflexion trial boundary resetting the trajectory)
    // costs only the journal overhead.
    std::size_t prev_tokens = 0;
    if (const auto it = entries_.find(episode); it != entries_.end())
        prev_tokens = it->second.chainTokens.size();
    const auto delta_tokens = static_cast<double>(
        ckpt.chainTokens.size() > prev_tokens
            ? ckpt.chainTokens.size() - prev_tokens
            : 0);
    ckpt.snapshotBytes =
        policy_.journalBytes +
        static_cast<std::int64_t>(delta_tokens * bytes_per_token);
    ++stats_.checkpointsTaken;
    stats_.bytesWritten += ckpt.snapshotBytes;
    if (policy_.wireBandwidth > 0.0) {
        stats_.snapshotSeconds +=
            static_cast<double>(ckpt.snapshotBytes) /
            policy_.wireBandwidth;
    }
    entries_[episode] = std::move(ckpt);
}

const EpisodeCheckpoint *
CheckpointStore::find(std::uint64_t episode) const
{
    const auto it = entries_.find(episode);
    return it != entries_.end() ? &it->second : nullptr;
}

void
CheckpointStore::erase(std::uint64_t episode)
{
    entries_.erase(episode);
    admitRng_.erase(episode);
}

} // namespace agentsim::serving
