/**
 * @file
 * Episode checkpoint store — recover the *work*, not just the
 * request. A long agent rollout that dies at iteration 7 of 8
 * currently replays the whole episode on another node; yet the state
 * that reproduces it (workflow position, accumulated trace, the
 * conversation-prefix token chain) is tiny next to the GPU-seconds
 * that produced it. The store journals that state at iteration
 * boundaries so the cluster's retry path can resume instead of
 * restart.
 *
 * Layering: serving cannot see agent types, so the workflow snapshot
 * travels as an opaque shared_ptr tagged with the workflow kind; the
 * agent that wrote it casts it back on resume (the cluster guards the
 * tag against brownout downgrades). The KV side is explicit: the
 * checkpoint carries the prefix token chain, and the restore path
 * prices wiring those bytes back (migration-style) against
 * recomputing the prefill cold, taking whichever is cheaper.
 *
 * Snapshots are journal *deltas*: re-checkpointing an episode pays
 * only for the tokens appended since the previous checkpoint (the
 * prefix bytes are already in the store), plus a fixed journal
 * overhead. Write time is priced against `wireBandwidth` — a
 * host-DRAM-class path, never HBM residency — and accounted as
 * background bytes, not sim delay: snapshot writes overlap the next
 * iteration's decode exactly like PR 7's background tier demotions.
 *
 * Determinism: the probabilistic admission knob draws from a
 * dedicated per-episode `sim::Rng(seed, "checkpoint", episode)`
 * stream (the `"kv.tier"` idiom), so enabling checkpointing consumes
 * nothing from the fault, retry or workload streams. With the policy
 * disabled the store is never constructed and the run is
 * bit-identical to a build without this file.
 */

#ifndef AGENTSIM_SERVING_CHECKPOINT_HH
#define AGENTSIM_SERVING_CHECKPOINT_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/block_manager.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace agentsim::serving
{

/** When and how eagerly episodes are checkpointed. */
struct CheckpointPolicy
{
    /** Master switch. Off: no store, no draws, bit-identical runs. */
    bool enabled = false;
    /** Journal every k-th completed iteration (1 = every). */
    int everyIterations = 1;
    /**
     * Skip episodes younger than this many completed iterations: a
     * young episode is cheap to replay, so the snapshot overhead
     * cannot pay for itself yet.
     */
    int minIterations = 1;
    /**
     * Probability an eligible iteration is actually journaled, drawn
     * from the dedicated "checkpoint" stream (1 = always). Lets
     * operators shed snapshot bandwidth under pressure without
     * perturbing any other stream.
     */
    double admitProb = 1.0;
    /**
     * Snapshot/restore wire bandwidth, B/s. Checkpoints live in host
     * DRAM (spilling to NVMe under pressure), so the default is a
     * PCIe-class path, not the 200 GB/s inter-node interconnect.
     */
    double wireBandwidth = 25e9;
    /** Fixed journal overhead per snapshot (workflow state, trace),
     *  bytes. */
    std::int64_t journalBytes = 4096;
};

/**
 * One journaled episode snapshot: enough to resume the rollout at
 * the last completed iteration on any node.
 */
struct EpisodeCheckpoint
{
    /** Workflow kind that wrote `state` (agents::AgentKind value);
     *  a resume under a different kind must discard the snapshot. */
    int kindTag = -1;
    /** Completed iterations at snapshot time (resume starts here). */
    int iteration = 0;
    /** Sim time the snapshot was taken. */
    sim::Tick takenTick = 0;
    /** Opaque workflow state (agent-owned type; see file comment). */
    std::shared_ptr<const void> state;
    /**
     * Conversation-prefix token chain the next iteration will prefill
     * with — what the restore path warms (or recomputes) on the
     * surviving node.
     */
    std::vector<kv::TokenId> chainTokens;
    /** GPU-seconds invested in the episode up to this snapshot — the
     *  work a resume recovers. */
    double gpuSeconds = 0.0;
    /** Bytes this snapshot added to the store (delta-journaled). */
    std::int64_t snapshotBytes = 0;
};

/** Checkpoint/recovery accounting, store- and cluster-side. */
struct RecoveryStats
{
    /** Snapshots journaled. */
    std::int64_t checkpointsTaken = 0;
    /** Bytes written into the store (delta-journaled). */
    std::int64_t bytesWritten = 0;
    /** Background wire-seconds spent writing snapshots. */
    double snapshotSeconds = 0.0;
    /** Retries that resumed from a checkpoint instead of replaying. */
    std::int64_t resumes = 0;
    /** Resumes that warmed the prefix KV over the wire. */
    std::int64_t kvRestores = 0;
    /** Resumes that recomputed the prefix cold (priced cheaper, or
     *  nothing to restore). */
    std::int64_t coldFallbacks = 0;
    /** Wire-seconds spent restoring prefix KV on resume. */
    double restoreSeconds = 0.0;
    /** GPU-seconds of completed work a resume did *not* recompute. */
    double recoveredGpuSeconds = 0.0;
    /** GPU-seconds of work lost to retries anyway (invested since the
     *  last snapshot — with checkpointing off, the whole episode). */
    double lostGpuSeconds = 0.0;
    /** recoveredGpuSeconds split by failure cause. */
    double recoveredCrashGpuSeconds = 0.0;
    double recoveredShedGpuSeconds = 0.0;
};

/**
 * Keyed store of the latest checkpoint per in-flight episode. One
 * instance per cluster run; episodes are keyed by request index.
 * Entries are erased when the episode completes or is abandoned, so
 * steady-state footprint is proportional to in-flight episodes only.
 */
class CheckpointStore
{
  public:
    CheckpointStore(const CheckpointPolicy &policy, std::uint64_t seed)
        : policy_(policy), seed_(seed)
    {
    }

    const CheckpointPolicy &policy() const { return policy_; }

    /**
     * Policy gate: should an episode with @p completed_iterations
     * journal a snapshot now? Draws from the per-episode "checkpoint"
     * stream only when admitProb < 1 (and only for otherwise-eligible
     * iterations), so the knob cannot perturb other streams.
     */
    bool shouldCheckpoint(std::uint64_t episode,
                          int completed_iterations);

    /**
     * Journal @p ckpt as episode @p episode's latest snapshot,
     * replacing any previous one. @p bytes_per_token prices the KV
     * prefix; only tokens beyond the previous snapshot's chain are
     * charged (the store already holds the prefix).
     */
    void put(std::uint64_t episode, EpisodeCheckpoint ckpt,
             double bytes_per_token);

    /** Latest snapshot for @p episode, or null. */
    const EpisodeCheckpoint *find(std::uint64_t episode) const;

    /** Drop @p episode's snapshot (episode finished or abandoned). */
    void erase(std::uint64_t episode);

    /** Store-side accounting (taken/bytes/write-seconds). */
    const RecoveryStats &stats() const { return stats_; }

    std::size_t size() const { return entries_.size(); }

  private:
    CheckpointPolicy policy_;
    std::uint64_t seed_;
    std::unordered_map<std::uint64_t, EpisodeCheckpoint> entries_;
    /** Dedicated admission streams, one per episode, engaged lazily
     *  and only when admitProb < 1 (determinism: see file comment). */
    std::unordered_map<std::uint64_t, sim::Rng> admitRng_;
    RecoveryStats stats_;
};

} // namespace agentsim::serving

#endif // AGENTSIM_SERVING_CHECKPOINT_HH
