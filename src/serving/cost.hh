/**
 * @file
 * Per-request resource ledger — the cost-attribution currency of the
 * simulator.
 *
 * Every generation request is charged a ledger by the engine as it
 * moves through the serving pipeline. Unlike the wall-time fields of
 * GenResult (which report how long the request *overlapped* each
 * phase), the ledger's GPU-second fields are *attributed* shares of
 * each engine step, split across the step's participants so that the
 * sum of all request ledgers reconciles with the engine's aggregate
 * busy time and energy (within attribution slack from cancelled
 * requests). This is what makes per-agent / per-benchmark cost
 * breakdowns additive and therefore actionable.
 *
 * Rollups: agents::Trace folds LLM-call ledgers into the rollout's
 * AgentResult; core/probe and core/serving_system fold rollouts into
 * per-run totals; core/cost_report renders (agent, benchmark) tables
 * and agentsim_cost_* metric families.
 */

#ifndef AGENTSIM_SERVING_COST_HH
#define AGENTSIM_SERVING_COST_HH

namespace agentsim::serving
{

/** Attribution ledger of one request (all values cumulative). */
struct CostLedger
{
    /** Seconds spent waiting for admission, all queueing episodes
     *  (re-queues after preemption included). */
    double queueSeconds = 0.0;
    /** GPU-seconds of step time attributed to this request's prefill
     *  chunks (token-weighted share of each step's prefill part). */
    double prefillGpuSeconds = 0.0;
    /** GPU-seconds attributed to this request's decode tokens (equal
     *  share per decoded token of each step's decode part). */
    double decodeGpuSeconds = 0.0;
    /**
     * GPU-seconds spent re-prefilling tokens this request had already
     * computed before a recompute preemption discarded them — pure
     * waste. A subset of prefillGpuSeconds, not an addition to it.
     */
    double wastedGpuSeconds = 0.0;
    /**
     * Estimated standalone prefill seconds *avoided* because prompt
     * tokens were served from the prefix cache (GPU hits and host-tier
     * restores). Counterfactual savings — not part of gpuSeconds().
     */
    double savedPrefillSeconds = 0.0;
    /** KV-cache occupancy integral: blocks held x seconds held. */
    double kvBlockSeconds = 0.0;
    /** Host->GPU PCIe seconds restoring this request's spilled KV. */
    double transferSeconds = 0.0;
    /**
     * Busy-energy joules attributed to this request (its share of
     * each step's power x step time). Idle draw is not attributed.
     */
    double energyJoules = 0.0;

    /** Attributed GPU-seconds across both phases. */
    double
    gpuSeconds() const
    {
        return prefillGpuSeconds + decodeGpuSeconds;
    }

    CostLedger &
    operator+=(const CostLedger &other)
    {
        queueSeconds += other.queueSeconds;
        prefillGpuSeconds += other.prefillGpuSeconds;
        decodeGpuSeconds += other.decodeGpuSeconds;
        wastedGpuSeconds += other.wastedGpuSeconds;
        savedPrefillSeconds += other.savedPrefillSeconds;
        kvBlockSeconds += other.kvBlockSeconds;
        transferSeconds += other.transferSeconds;
        energyJoules += other.energyJoules;
        return *this;
    }
};

} // namespace agentsim::serving

#endif // AGENTSIM_SERVING_COST_HH
