/**
 * @file
 * Awaitable primitives for sim::Task coroutines: time delays, one-shot
 * completion events, and counting semaphores.
 */

#ifndef AGENTSIM_SIM_AWAITABLE_HH
#define AGENTSIM_SIM_AWAITABLE_HH

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace agentsim::sim
{

/**
 * Awaitable that resumes the coroutine after @p delay ticks.
 *
 * Zero-tick delays still round-trip through the event queue, so
 * same-time resumptions preserve FIFO order.
 */
struct Delay
{
    Simulation &sim;
    Tick delay;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        AGENTSIM_ASSERT(delay >= 0, "negative delay");
        sim.scheduleResume(delay, h);
    }

    void await_resume() const noexcept {}
};

/** Convenience: co_await delay(sim, ticks). */
inline Delay
delay(Simulation &sim, Tick ticks)
{
    return Delay{sim, ticks};
}

/** Convenience: co_await delaySec(sim, seconds). */
inline Delay
delaySec(Simulation &sim, double seconds)
{
    return Delay{sim, fromSeconds(seconds)};
}

/**
 * One-shot completion event carrying a value of type T.
 *
 * A producer (e.g. the LLM engine) calls set() exactly once; any number
 * of coroutines may co_await the completion, before or after set().
 * Copies share state (shared_ptr), so a Completion can be handed to the
 * producer while the consumer awaits its own copy.
 */
template <typename T>
class Completion
{
  public:
    explicit Completion(Simulation &sim)
        : state_(std::make_shared<State>(State{&sim, {}, {}}))
    {
    }

    /** Fulfil the completion; resumes all waiters at the current time. */
    void
    set(T value)
    {
        State &st = *state_;
        AGENTSIM_ASSERT(!st.value.has_value(), "Completion set twice");
        st.value.emplace(std::move(value));
        // Resume via the event queue so producers never re-enter
        // consumers synchronously.
        for (auto h : st.waiters)
            st.sim->scheduleResume(0, h);
        st.waiters.clear();
    }

    /** True once set() has been called. */
    bool ready() const { return state_->value.has_value(); }

    /** Access the value after completion (const reference). */
    const T &
    peek() const
    {
        AGENTSIM_ASSERT(state_->value.has_value(),
                        "Completion::peek before set");
        return *state_->value;
    }

    auto
    operator co_await() const noexcept
    {
        struct Awaiter
        {
            std::shared_ptr<State> st;

            bool
            await_ready() const noexcept
            {
                return st->value.has_value();
            }

            void
            await_suspend(std::coroutine_handle<> h) const
            {
                st->waiters.push_back(h);
            }

            const T &
            await_resume() const
            {
                return *st->value;
            }
        };
        return Awaiter{state_};
    }

  private:
    struct State
    {
        Simulation *sim;
        std::optional<T> value;
        std::vector<std::coroutine_handle<>> waiters;
    };

    std::shared_ptr<State> state_;
};

/**
 * Counting semaphore for modelling limited resources (tool concurrency,
 * worker pools). FIFO-fair: waiters acquire in arrival order.
 */
class Semaphore
{
  public:
    /**
     * @param sim owning simulation.
     * @param count initial number of available permits (>= 0).
     */
    Semaphore(Simulation &sim, int count) : sim_(sim), count_(count)
    {
        AGENTSIM_ASSERT(count >= 0, "negative semaphore count");
    }

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    /** Awaitable acquire of one permit. */
    auto
    acquire()
    {
        struct Awaiter
        {
            Semaphore &sem;

            bool
            await_ready() const noexcept
            {
                if (sem.count_ > 0) {
                    --sem.count_;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sem.waiters_.push_back(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    /** Release one permit; hands it to the oldest waiter if any. */
    void
    release()
    {
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            // The permit transfers directly to the waiter.
            sim_.scheduleResume(0, h);
        } else {
            ++count_;
        }
    }

    /** Currently available permits. */
    int available() const { return count_; }

    /** Number of coroutines blocked in acquire(). */
    std::size_t waiting() const { return waiters_.size(); }

  private:
    Simulation &sim_;
    int count_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * RAII permit holder: co_await ScopedPermit::acquire(sem) and the permit
 * releases when the holder goes out of scope.
 */
class ScopedPermit
{
  public:
    explicit ScopedPermit(Semaphore &sem) : sem_(&sem) {}

    ScopedPermit(ScopedPermit &&other) noexcept
        : sem_(std::exchange(other.sem_, nullptr))
    {
    }

    ScopedPermit(const ScopedPermit &) = delete;
    ScopedPermit &operator=(const ScopedPermit &) = delete;
    ScopedPermit &operator=(ScopedPermit &&) = delete;

    ~ScopedPermit()
    {
        if (sem_)
            sem_->release();
    }

  private:
    Semaphore *sem_;
};

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_AWAITABLE_HH
