/**
 * @file
 * ShardedSimulation — conservative-window parallel discrete-event
 * execution over per-shard sim::Simulation instances.
 *
 * Each shard owns a full Simulation (its own event queue, clock and
 * coroutine processes) and runs on its own worker thread. Time
 * advances in globally agreed windows [T, T+W): during a window every
 * shard drains its local events with timestamps below the window end
 * without any locking, because the *only* way shards interact is
 * post() — a cross-shard message that must be timestamped at least one
 * full window into the future. That is the classic conservative
 * (Chandy–Misra–Bryant style) synchronization argument: if every
 * cross-shard interaction has a latency lower bound L >= W, no message
 * sent during the current window can affect it, so no shard can ever
 * observe an event out of order.
 *
 * Between windows a single coordinator (the barrier's completion step)
 * drains all outboxes into the target shards in a canonical order —
 * sorted by (when, sending shard, sending sequence) — so the local
 * sequence numbers the messages receive are independent of thread
 * scheduling. Consequently:
 *
 *  - a run is *run-to-run deterministic* for a fixed shard count, and
 *  - parallel execution is bit-identical to sequential execution of
 *    the same sharded topology (Config::parallel = false runs the
 *    identical window loop round-robin on the calling thread — the
 *    determinism regression tests compare the two directly).
 *
 * Changing the shard count changes which events share a queue and
 * therefore their interleaving: results are deterministic per shard
 * count, not bit-identical across shard counts (docs/DETERMINISM.md).
 *
 * A single-shard ShardedSimulation never creates threads, ignores
 * windows, and delivers post() immediately — it *is* the legacy
 * single-threaded engine.
 */

#ifndef AGENTSIM_SIM_PARALLEL_HH
#define AGENTSIM_SIM_PARALLEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulation.hh"
#include "sim/types.hh"

namespace agentsim::sim
{

/** Parallel-engine configuration. */
struct ShardedConfig
{
    /** Number of shards (>= 1). One worker thread per shard. */
    int shards = 1;
    /**
     * Conservative window W, ticks. Every post() must be timestamped
     * >= the end of the window it is sent in, so W must be <= the
     * smallest cross-shard latency the model guarantees (routing /
     * migration / checkpoint wire time). Required > 0 when shards > 1.
     */
    Tick windowTicks = 0;
    /**
     * false: run the identical window loop on the calling thread,
     * shard 0 first. Bit-identical to parallel execution — used by the
     * determinism gates and as the honest single-core baseline.
     */
    bool parallel = true;
};

/** Per-shard execution counters (valid after run()). */
struct ShardStats
{
    std::uint64_t eventsProcessed = 0;
    /** Host seconds inside this shard's event loop. */
    double wallSeconds = 0.0;
    /** Host seconds this shard's worker spent waiting at window
     *  barriers (parallel mode only) — the load-imbalance signal. */
    double stallSeconds = 0.0;
    /** Cross-shard messages sent by / delivered to this shard. */
    std::uint64_t messagesOut = 0;
    std::uint64_t messagesIn = 0;
};

class ShardedSimulation
{
  public:
    explicit ShardedSimulation(const ShardedConfig &config);
    ~ShardedSimulation();

    ShardedSimulation(const ShardedSimulation &) = delete;
    ShardedSimulation &operator=(const ShardedSimulation &) = delete;

    int shardCount() const { return static_cast<int>(shards_.size()); }
    Tick windowTicks() const { return config_.windowTicks; }

    /** The shard's own simulation executive (build processes on it). */
    Simulation &shard(int i) { return *shards_[static_cast<size_t>(i)]; }

    /**
     * Cross-shard send: run @p fn on shard @p target's event loop at
     * absolute tick @p when. Legal from shard @p from's worker during
     * run() or from the owning thread before run() starts. @p when
     * must be >= the end of the window the send happens in — callers
     * satisfy this by adding their modelled cross-shard latency, which
     * the conservative window was sized under (asserted at delivery).
     * Single-shard mode delivers directly with no window constraint.
     */
    void post(int from, int target, Tick when, std::function<void()> fn);

    /**
     * Drain every shard to quiescence (no pending events anywhere, no
     * undelivered messages). @return the maximum shard clock.
     */
    Tick run();

    /** Per-shard counters; meaningful after run(). */
    const std::vector<ShardStats> &shardStats() const { return stats_; }

    /** Windows executed by the barrier loop. */
    std::uint64_t windowsExecuted() const { return windows_; }

    /** Events processed across all shards. */
    std::uint64_t totalEvents() const;

    /** Host wall-clock seconds of the run() loop. */
    double wallSeconds() const { return wallSeconds_; }

    /** Aggregate events per host wall-clock second (0 if unrun). */
    double
    eventsPerSecond() const
    {
        return wallSeconds_ > 0.0
                   ? static_cast<double>(totalEvents()) / wallSeconds_
                   : 0.0;
    }

  private:
    struct Message
    {
        Tick when = 0;
        int from = 0;
        int target = 0;
        /** Per-sending-shard sequence (canonical merge order). */
        std::uint64_t srcSeq = 0;
        /** Window end active when the message was sent (conservative
         *  lookahead check at delivery). */
        Tick sentWindowEnd = 0;
        std::function<void()> fn;
    };

    /** Outbox of one shard, touched only by its worker during a
     *  window and by the coordinator between windows. */
    struct Outbox
    {
        std::vector<Message> messages;
        std::uint64_t nextSeq = 0;
    };

    /** Deliver all outbox messages in canonical order; then pick the
     *  next window [start, start+W). @return false when quiescent. */
    bool coordinateWindow();

    void runSequential();
    void runParallel();

    ShardedConfig config_;
    std::vector<std::unique_ptr<Simulation>> shards_;
    std::vector<Outbox> outboxes_;
    std::vector<ShardStats> stats_;
    /** End (exclusive) of the window currently executing. */
    Tick windowEnd_ = 0;
    std::uint64_t windows_ = 0;
    double wallSeconds_ = 0.0;
    bool done_ = false;
};

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_PARALLEL_HH
