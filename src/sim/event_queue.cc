#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace agentsim::sim
{

EventQueue::Bucket *
EventQueue::bucketFor(Tick when)
{
    if (when == cachedTick_ && cachedBucket_ != nullptr)
        return cachedBucket_;
    auto [it, inserted] = buckets_.try_emplace(when);
    if (inserted) {
        if (!free_.empty()) {
            it->second = std::move(free_.back());
            free_.pop_back();
            ++bucketsRecycled_;
        } else {
            it->second = std::make_unique<Bucket>();
            ++bucketsAllocated_;
        }
        heap_.push_back(when);
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
    cachedTick_ = when;
    cachedBucket_ = it->second.get();
    return cachedBucket_;
}

void
EventQueue::push(Tick when, std::function<void()> action)
{
    AGENTSIM_ASSERT(action, "scheduling a null event action");
    Bucket *bucket = bucketFor(when);
    bucket->items.push_back(Item{nextSeq_++, std::move(action)});
    ++size_;
}

Event
EventQueue::pop()
{
    AGENTSIM_ASSERT(size_ > 0, "pop from empty event queue");
    const Tick when = heap_.front();
    auto it = buckets_.find(when);
    Bucket &bucket = *it->second;
    Item &item = bucket.items[bucket.head];
    Event ev{when, item.seq, std::move(item.action)};
    ++bucket.head;
    --size_;
    if (bucket.head == bucket.items.size()) {
        // Retire the bucket before the caller runs the action: if the
        // action schedules back onto this tick, a fresh bucket (with
        // later sequence numbers) is created, preserving order.
        bucket.head = 0;
        bucket.items.clear();
        if (free_.size() < kMaxFreeBuckets)
            free_.push_back(std::move(it->second));
        buckets_.erase(it);
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        heap_.pop_back();
        if (cachedTick_ == when) {
            cachedTick_ = -1;
            cachedBucket_ = nullptr;
        }
    }
    return ev;
}

} // namespace agentsim::sim
