#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace agentsim::sim
{

void
EventQueue::push(Tick when, std::function<void()> action)
{
    AGENTSIM_ASSERT(action, "scheduling a null event action");
    heap_.push(Event{when, nextSeq_++, std::move(action)});
}

Event
EventQueue::pop()
{
    AGENTSIM_ASSERT(!heap_.empty(), "pop from empty event queue");
    // std::priority_queue::top() is const; the event is copied out. The
    // action is a std::function so the copy is cheap relative to event
    // processing and keeps the queue's heap invariants simple.
    Event ev = heap_.top();
    heap_.pop();
    return ev;
}

} // namespace agentsim::sim
