/**
 * @file
 * Fundamental simulation types: the virtual-time tick and conversions.
 *
 * The simulator runs on a signed 64-bit microsecond clock. Microsecond
 * resolution comfortably covers the dynamic range of the reproduced
 * experiments (single LLM decode steps of a few milliseconds up to
 * multi-hundred-second agent rollouts) while keeping event ordering
 * exact and platform independent.
 */

#ifndef AGENTSIM_SIM_TYPES_HH
#define AGENTSIM_SIM_TYPES_HH

#include <cstdint>

namespace agentsim::sim
{

/** Virtual time, in microseconds since simulation start. */
using Tick = std::int64_t;

/** One microsecond, the base tick unit. */
constexpr Tick tickUs = 1;

/** Ticks per millisecond. */
constexpr Tick tickMs = 1000;

/** Ticks per second. */
constexpr Tick tickSec = 1000 * 1000;

/** Convert seconds (double) to ticks, rounding to nearest microsecond. */
constexpr Tick
fromSeconds(double s)
{
    return static_cast<Tick>(s * static_cast<double>(tickSec) + 0.5);
}

/** Convert milliseconds (double) to ticks. */
constexpr Tick
fromMillis(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(tickMs) + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickSec);
}

/** Convert ticks to milliseconds. */
constexpr double
toMillis(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickMs);
}

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_TYPES_HH
