/**
 * @file
 * sim::Task<T> — an eagerly-started coroutine process.
 *
 * Calling a coroutine function returning Task<T> starts it immediately;
 * it runs synchronously until its first suspension (typically a Delay or
 * an engine completion). The returned Task object is a handle used to
 * co_await the result from another coroutine, or to poll done()/result()
 * from plain code after draining the simulation.
 *
 * Lifetime rules:
 *  - A Task may have at most one awaiter.
 *  - Destroying a Task whose coroutine is still running *detaches* it:
 *    the coroutine keeps executing on the simulation clock and frees its
 *    own frame when it finishes. An exception escaping a detached task
 *    aborts the simulation (there is no one left to observe it).
 *  - Awaiting a Task requires keeping it alive until the await resumes
 *    (naturally satisfied by holding it in a local).
 */

#ifndef AGENTSIM_SIM_TASK_HH
#define AGENTSIM_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "sim/frame_pool.hh"
#include "sim/logging.hh"

namespace agentsim::sim
{

template <typename T>
class Task;

namespace detail
{

/** Promise state shared by all Task specializations. */
struct PromiseBase
{
    /**
     * Coroutine frames route through the thread-local frame pool
     * (sim/frame_pool.hh): freed frames are recycled per size class
     * instead of hitting the global allocator on every task spawn.
     * The compiler passes the exact frame size to the sized delete,
     * which is what lets the pool bin them.
     */
    static void *
    operator new(std::size_t bytes)
    {
        return framePoolAllocate(bytes);
    }

    static void
    operator delete(void *p, std::size_t bytes) noexcept
    {
        framePoolDeallocate(p, bytes);
    }

    /** Coroutine to resume when this one finishes (the awaiter). */
    std::coroutine_handle<> continuation;
    /** Set when the owning Task was destroyed before completion. */
    bool detached = false;
    /** Exception escaping the coroutine body, if any. */
    std::exception_ptr exception;

    std::suspend_never
    initial_suspend() noexcept
    {
        return {};
    }

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            PromiseBase &p = h.promise();
            if (p.detached) {
                if (p.exception) {
                    // No awaiter will ever observe this; failing loudly
                    // beats silently dropping a simulation error.
                    AGENTSIM_WARN("exception escaped a detached sim task");
                    std::terminate();
                }
                std::coroutine_handle<> next = std::noop_coroutine();
                h.destroy();
                return next;
            }
            if (p.continuation)
                return p.continuation;
            return std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    FinalAwaiter
    final_suspend() noexcept
    {
        return {};
    }

    void
    unhandled_exception() noexcept
    {
        exception = std::current_exception();
    }
};

template <typename T>
struct Promise : PromiseBase
{
    std::optional<T> value;

    Task<T> get_return_object();

    template <typename U>
    void
    return_value(U &&v)
    {
        value.emplace(std::forward<U>(v));
    }
};

template <>
struct Promise<void> : PromiseBase
{
    Task<void> get_return_object();

    void return_void() noexcept {}
};

} // namespace detail

/**
 * Handle to an eagerly-started simulation coroutine.
 *
 * @tparam T result type produced with co_return (void allowed).
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::Promise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            release();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    ~Task() { release(); }

    /** True if the coroutine ran to completion (or threw). */
    bool
    done() const
    {
        return !handle_ || handle_.done();
    }

    /** True if this handle still refers to a coroutine. */
    bool valid() const { return static_cast<bool>(handle_); }

    /**
     * Retrieve the result from non-coroutine code after the simulation
     * has drained. Panics if the task has not finished. Rethrows any
     * exception from the coroutine body. Valid once.
     */
    T
    result()
    {
        AGENTSIM_ASSERT(handle_ && handle_.done(),
                        "Task::result() before completion");
        auto &p = handle_.promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
        if constexpr (!std::is_void_v<T>) {
            AGENTSIM_ASSERT(p.value.has_value(),
                            "Task finished without a value");
            return std::move(*p.value);
        }
    }

    /**
     * Destroy the coroutine frame outright instead of detaching it.
     * Only legal while the coroutine is *suspended* and nothing else
     * will resume it — no pending simulation event, completion waiter
     * list, or awaiting parent may still hold its handle. Meant for
     * owners tearing down an infinite service loop (an engine's run
     * loop parked on its wake completion): detaching such a loop
     * would leak the frame, since it never reaches final suspend.
     */
    void
    destroy()
    {
        if (handle_)
            handle_.destroy();
        handle_ = nullptr;
    }

    /** Awaiter: resumes the awaiting coroutine when this task ends. */
    auto
    operator co_await() const noexcept
    {
        struct Awaiter
        {
            Handle h;

            bool
            await_ready() const noexcept
            {
                return !h || h.done();
            }

            void
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                AGENTSIM_ASSERT(!h.promise().continuation,
                                "Task awaited by two coroutines");
                h.promise().continuation = cont;
            }

            T
            await_resume()
            {
                auto &p = h.promise();
                if (p.exception)
                    std::rethrow_exception(p.exception);
                if constexpr (!std::is_void_v<T>)
                    return std::move(*p.value);
            }
        };
        return Awaiter{handle_};
    }

  private:
    void
    release()
    {
        if (!handle_)
            return;
        if (handle_.done()) {
            handle_.destroy();
        } else {
            // Detach: the frame frees itself at final suspend.
            handle_.promise().detached = true;
        }
        handle_ = nullptr;
    }

    Handle handle_;
};

namespace detail
{

template <typename T>
Task<T>
Promise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void>
Promise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<Promise<void>>::from_promise(*this));
}

} // namespace detail

/**
 * Await completion of every task in @p tasks and collect their results.
 *
 * The tasks are already running (eager start), so awaiting them in
 * sequence completes exactly when the last one does; virtual time is
 * unaffected by the awaiting order.
 *
 * Exception-safe fan-in: every sibling is awaited to completion before
 * the first captured exception is rethrown. Bailing out early would
 * destroy (detach) still-running siblings, and a detached task that
 * later throws — e.g. more branches of the same rollout hitting the
 * same crashed node — aborts the simulation.
 */
template <typename T>
Task<std::vector<T>>
allOf(std::vector<Task<T>> tasks)
{
    std::vector<T> results;
    results.reserve(tasks.size());
    std::exception_ptr first;
    for (auto &t : tasks) {
        try {
            results.push_back(co_await t);
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
    co_return results;
}

/** Await completion of every void task in @p tasks. */
inline Task<void>
allOf(std::vector<Task<void>> tasks)
{
    std::exception_ptr first;
    for (auto &t : tasks) {
        try {
            co_await t;
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_TASK_HH
