/**
 * @file
 * Deterministic fault injection for chaos experiments.
 *
 * Production agent serving must survive node crashes (KV cache lost,
 * in-flight requests dropped), engine stalls (driver hiccups, GC,
 * straggler collectives) and flaky external tools. The FaultInjector
 * drives those events on the simulation clock from named Rng streams,
 * so a chaos experiment is exactly reproducible from its seed and
 * adding one fault class never perturbs the schedule of another.
 *
 * The injector is deliberately layer-agnostic: it fires callbacks
 * (NodeHooks) instead of touching the serving engine directly, so the
 * sim layer stays free of upward dependencies. The cluster layer wires
 * the hooks to LlmEngine::crash()/restart()/injectStall(); tool-level
 * faults are sampled by the tools layer from the same config (see
 * tools::FaultProfile).
 */

#ifndef AGENTSIM_SIM_FAULT_HH
#define AGENTSIM_SIM_FAULT_HH

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "sim/simulation.hh"
#include "sim/task.hh"

namespace agentsim::sim
{

/** Chaos-experiment knobs. All rates are per node. */
struct FaultConfig
{
    /**
     * Mean time between node crashes, seconds (exponential). A crash
     * drops every in-flight request on the node and loses its KV
     * cache. 0 disables crashes.
     */
    double nodeMtbfSeconds = 0.0;
    /** Mean node downtime before restart, seconds (exponential). */
    double nodeRestartMeanSeconds = 10.0;

    /** Mean time between engine stalls, seconds. 0 disables. */
    double stallMtbfSeconds = 0.0;
    /** Mean injected stall length, seconds (exponential). */
    double stallMeanSeconds = 0.25;

    /** Probability a tool call fails outright. */
    double toolFailureProb = 0.0;
    /** Wall time burned by a failing tool call, seconds. */
    double toolFailureSeconds = 1.0;
    /** Probability a tool call suffers a latency spike. */
    double toolSlowdownProb = 0.0;
    /** Latency multiplier of a spiking tool call. */
    double toolSlowdownFactor = 4.0;

    /** Seed for the fault streams ("fault.node", "fault.stall"). */
    std::uint64_t seed = 1;

    /** True if any node-level fault class is active. */
    bool
    nodeFaultsEnabled() const
    {
        return nodeMtbfSeconds > 0 || stallMtbfSeconds > 0;
    }

    /** True if any tool-level fault class is active. */
    bool
    toolFaultsEnabled() const
    {
        return toolFailureProb > 0 || toolSlowdownProb > 0;
    }
};

/** What the injector has done so far. */
struct FaultStats
{
    std::int64_t crashes = 0;
    std::int64_t restarts = 0;
    std::int64_t stalls = 0;
    double stallSecondsInjected = 0.0;
    double downSecondsTotal = 0.0;
    /**
     * Sim time of each injected crash, in injection order. The fault
     * streams are independent of the workload, so two runs of the
     * same config must agree on every timestamp up to the shorter
     * run's drain point — the determinism check for features (like
     * checkpoint-resume) that change makespan but must not perturb
     * the schedule itself.
     */
    std::vector<double> crashSeconds;
};

/**
 * Drives crash/restart and stall events for a set of nodes. Create it
 * before sim.run(), attach every node, and call stop() once the
 * workload has drained so the driver coroutines exit at their next
 * wake (they hold pending timers; the simulation ends after those
 * fire and see the stop flag).
 */
class FaultInjector
{
  public:
    /** Callbacks into one node. crash/restart must be callable;
     *  stall may be empty when stalls are disabled. */
    struct NodeHooks
    {
        std::function<void()> crash;
        std::function<void()> restart;
        std::function<void(double)> stall;
    };

    FaultInjector(Simulation &sim, const FaultConfig &config);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Register one node; spawns its deterministic fault drivers
     * (streams "fault.node"/@p node_index, "fault.stall"/@p
     * node_index). No-op for fault classes disabled in the config.
     */
    void attachNode(std::size_t node_index, NodeHooks hooks);

    /** Ask every driver to exit at its next wake. */
    void stop() { stopped_ = true; }

    const FaultConfig &config() const { return config_; }
    const FaultStats &stats() const { return stats_; }

  private:
    Task<void> crashDriver(std::size_t node_index, NodeHooks hooks);
    Task<void> stallDriver(std::size_t node_index, NodeHooks hooks);

    Simulation &sim_;
    FaultConfig config_;
    FaultStats stats_;
    bool stopped_ = false;
    std::vector<Task<void>> drivers_;
};

/** How a MaintenanceSchedule takes a node out of service. */
enum class MaintenanceMode
{
    /** Hard restart: crash semantics (requests dropped, KV lost). */
    Crash,
    /** Graceful drain; leftovers at the deadline are cancelled. */
    Drain,
    /** Graceful drain; leftovers live-migrate to another node. */
    DrainMigrate,
};

std::string_view maintenanceModeName(MaintenanceMode mode);

/**
 * Planned-churn knobs: a rolling restart visits nodes round-robin at a
 * fixed cadence (maintenance is scheduled, not random — the stochastic
 * counterpart lives in FaultConfig).
 */
struct MaintenanceConfig
{
    /** Time between node maintenances, seconds. 0 disables. */
    double periodSeconds = 0.0;
    /** Drain deadline before leftovers are migrated or cancelled. */
    double drainDeadlineSeconds = 5.0;
    /** Offline time after the drain/crash before restart, seconds. */
    double downtimeSeconds = 2.0;
    MaintenanceMode mode = MaintenanceMode::DrainMigrate;

    bool enabled() const { return periodSeconds > 0; }
};

/** What the schedule has done so far. */
struct MaintenanceStats
{
    /** Maintenance cycles completed (one node each). */
    std::int64_t cycles = 0;
};

/**
 * Drives rolling restarts through a layer-supplied hook, one node per
 * period in round-robin order. Like FaultInjector, the sim layer
 * stays ignorant of engines: the cluster layer's hook performs the
 * actual crash-or-drain(-and-migrate) and the restart. Call stop()
 * once the workload has drained.
 */
class MaintenanceSchedule
{
  public:
    /** Performs one full maintenance of node @p index (take out of
     *  service, wait out the downtime, restart). */
    using MaintainHook = std::function<Task<void>(std::size_t index)>;

    MaintenanceSchedule(Simulation &sim, const MaintenanceConfig &config,
                        std::size_t num_nodes, MaintainHook hook);

    MaintenanceSchedule(const MaintenanceSchedule &) = delete;
    MaintenanceSchedule &operator=(const MaintenanceSchedule &) = delete;

    /** Ask the driver to exit at its next wake. */
    void stop() { stopped_ = true; }

    const MaintenanceConfig &config() const { return config_; }
    const MaintenanceStats &stats() const { return stats_; }

  private:
    Task<void> driver();

    Simulation &sim_;
    MaintenanceConfig config_;
    std::size_t numNodes_;
    MaintainHook hook_;
    MaintenanceStats stats_;
    bool stopped_ = false;
    Task<void> driver_;
};

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_FAULT_HH
