/**
 * @file
 * The simulation executive: a virtual clock draining an event queue.
 *
 * Coroutine processes (sim::Task) interact with the clock through the
 * awaitables in awaitable.hh; plain callbacks can be scheduled directly.
 */

#ifndef AGENTSIM_SIM_SIMULATION_HH
#define AGENTSIM_SIM_SIMULATION_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace agentsim::sim
{

/**
 * Single-threaded discrete-event simulation executive.
 *
 * Time only advances inside run()/runUntil()/step(); callbacks must not
 * block. Events scheduled in the past are a simulator bug (panic).
 */
class Simulation
{
  public:
    Simulation() = default;
    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current virtual time. */
    Tick now() const { return now_; }

    /** Current virtual time in seconds. */
    double nowSec() const { return toSeconds(now_); }

    /** Schedule @p action to run @p delay ticks from now (>= 0). */
    void schedule(Tick delay, std::function<void()> action);

    /** Schedule @p action at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, std::function<void()> action);

    /** Schedule resumption of a coroutine @p delay ticks from now. */
    void scheduleResume(Tick delay, std::coroutine_handle<> handle);

    /**
     * Run until the event queue is empty.
     * @return the final simulation time.
     */
    Tick run();

    /**
     * Run all events with time <= @p until; the clock is then advanced
     * to exactly @p until even if no event lands there.
     * @return the final simulation time (== until).
     */
    Tick runUntil(Tick until);

    /**
     * Run all events with time strictly below @p end, leaving the
     * clock at the last processed event (idle shards keep their old
     * clock — nothing drags time forward). This is the per-window
     * primitive of the parallel engine (sim/parallel.hh): a shard may
     * safely process [now, end) when every cross-shard message that
     * could still arrive is timestamped >= end.
     * @return events processed in this window.
     */
    std::uint64_t runWindow(Tick end);

    /** Process a single event. @return false if the queue was empty. */
    bool step();

    /** Number of pending events. */
    std::size_t pendingEvents() const { return events_.size(); }

    /** Tick of the earliest pending event; undefined if none pending
     *  (the parallel engine's window scheduler guards on
     *  pendingEvents() first). */
    Tick nextEventTime() const { return events_.nextTime(); }

    /** Event-queue pooling counters (sim_metrics export). */
    std::uint64_t
    queueBucketsAllocated() const
    {
        return events_.bucketsAllocated();
    }

    std::uint64_t
    queueBucketsRecycled() const
    {
        return events_.bucketsRecycled();
    }

    /** Total events ever processed. */
    std::uint64_t processedEvents() const { return processed_; }

    /**
     * Host wall-clock seconds spent inside run()/runUntil() loops —
     * simulator self-timing, so perf reports can cite events/sec
     * without external timer plumbing. step() called directly is not
     * timed (per-event timer reads would dominate it).
     */
    double wallSeconds() const { return wallSeconds_; }

    /** Events processed per host wall-clock second (0 if untimed). */
    double eventsPerSecond() const
    {
        return wallSeconds_ > 0.0
                   ? static_cast<double>(processed_) / wallSeconds_
                   : 0.0;
    }

  private:
    EventQueue events_;
    Tick now_ = 0;
    std::uint64_t processed_ = 0;
    double wallSeconds_ = 0.0;
};

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_SIMULATION_HH
