#include "sim/logging.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace agentsim::sim
{

namespace
{

LogLevel
initialLevel()
{
    const char *env = std::getenv("AGENTSIM_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Info;
    if (auto parsed = parseLogLevel(env))
        return *parsed;
    std::fprintf(stderr,
                 "warn: unrecognized AGENTSIM_LOG_LEVEL \"%s\"; "
                 "using \"info\"\n",
                 env);
    return LogLevel::Info;
}

LogLevel &
levelRef()
{
    static LogLevel level = initialLevel();
    return level;
}

/** Parse AGENTSIM_LOG_LEVEL at load so typos warn immediately. */
[[maybe_unused]] const LogLevel kLoadTimeLevel = levelRef();

} // namespace

std::optional<LogLevel>
parseLogLevel(std::string_view name)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "debug")
        return LogLevel::Debug;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "warn" || lower == "warning")
        return LogLevel::Warn;
    if (lower == "error" || lower == "quiet" || lower == "none")
        return LogLevel::Error;
    return std::nullopt;
}

LogLevel
logLevel()
{
    return levelRef();
}

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(levelRef());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace agentsim::sim
