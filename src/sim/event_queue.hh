/**
 * @file
 * The pending-event queue underlying the simulation clock.
 *
 * Events at the same tick fire in insertion order (a monotonically
 * increasing sequence number breaks ties), which keeps coroutine
 * scheduling deterministic.
 *
 * Layout: a min-heap of *distinct ticks* plus one FIFO bucket of
 * actions per tick (a bucketed calendar queue). Because the sequence
 * number increases monotonically, append order within a bucket *is*
 * (when, seq) order, so pop() still drains events in exactly the order
 * the previous binary-heap implementation did — the flattening is
 * bit-identical by construction. Heap operations are paid once per
 * distinct tick instead of once per event, and same-tick chains (the
 * zero-delay coroutine resumes that dominate engine scheduling) append
 * and drain in O(1). Exhausted buckets are recycled through a free
 * list, so steady-state pushes allocate nothing beyond what the
 * caller's std::function capture needs.
 */

#ifndef AGENTSIM_SIM_EVENT_QUEUE_HH
#define AGENTSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace agentsim::sim
{

/** A scheduled callback. */
struct Event
{
    Tick when = 0;
    std::uint64_t seq = 0;
    std::function<void()> action;
};

/**
 * Pending events ordered by (when, seq).
 *
 * Invariant: `heap_` holds exactly the keys of `buckets_`, each once,
 * so nextTime() is always the true minimum and no lazy deletion is
 * needed. A bucket is retired (recycled onto the free list) the moment
 * its last item is popped; a later push to the same tick simply
 * creates a fresh bucket with later sequence numbers, which preserves
 * global ordering.
 */
class EventQueue
{
  public:
    /** Schedule an action at absolute tick @p when. */
    void push(Tick when, std::function<void()> action);

    /** True if no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t size() const { return size_; }

    /** Tick of the earliest pending event; undefined if empty. */
    Tick nextTime() const { return heap_.front(); }

    /** Remove and return the earliest event. */
    Event pop();

    /** Total events ever scheduled (determinism/debug aid). */
    std::uint64_t scheduledCount() const { return nextSeq_; }

    /** Tick buckets constructed from scratch (allocation pressure). */
    std::uint64_t bucketsAllocated() const { return bucketsAllocated_; }

    /** Tick buckets reused from the free list instead of allocated. */
    std::uint64_t bucketsRecycled() const { return bucketsRecycled_; }

  private:
    struct Item
    {
        std::uint64_t seq = 0;
        std::function<void()> action;
    };

    /** FIFO of same-tick actions; `head` indexes the next to fire. */
    struct Bucket
    {
        std::size_t head = 0;
        std::vector<Item> items;
    };

    Bucket *bucketFor(Tick when);

    /** Min-heap (std::greater) over the distinct pending ticks. */
    std::vector<Tick> heap_;
    std::unordered_map<Tick, std::unique_ptr<Bucket>> buckets_;
    /** Retired buckets kept warm (capacity intact) for reuse. */
    std::vector<std::unique_ptr<Bucket>> free_;
    /** One-entry cache for repeated pushes to the same tick. */
    Tick cachedTick_ = -1;
    Bucket *cachedBucket_ = nullptr;

    std::size_t size_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t bucketsAllocated_ = 0;
    std::uint64_t bucketsRecycled_ = 0;

    /** Free-list cap: beyond this, retired buckets are freed. */
    static constexpr std::size_t kMaxFreeBuckets = 256;
};

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_EVENT_QUEUE_HH
