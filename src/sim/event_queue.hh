/**
 * @file
 * The pending-event priority queue underlying the simulation clock.
 *
 * Events at the same tick fire in insertion order (a monotonically
 * increasing sequence number breaks ties), which keeps coroutine
 * scheduling deterministic.
 */

#ifndef AGENTSIM_SIM_EVENT_QUEUE_HH
#define AGENTSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace agentsim::sim
{

/** A scheduled callback. */
struct Event
{
    Tick when = 0;
    std::uint64_t seq = 0;
    std::function<void()> action;
};

/**
 * Min-heap of events ordered by (when, seq).
 */
class EventQueue
{
  public:
    /** Schedule an action at absolute tick @p when. */
    void push(Tick when, std::function<void()> action);

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; undefined if empty. */
    Tick nextTime() const { return heap_.top().when; }

    /** Remove and return the earliest event. */
    Event pop();

    /** Total events ever scheduled (determinism/debug aid). */
    std::uint64_t scheduledCount() const { return nextSeq_; }

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_EVENT_QUEUE_HH
