#include "sim/fault.hh"

#include "sim/awaitable.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace agentsim::sim
{

FaultInjector::FaultInjector(Simulation &sim, const FaultConfig &config)
    : sim_(sim), config_(config)
{
}

void
FaultInjector::attachNode(std::size_t node_index, NodeHooks hooks)
{
    if (config_.nodeMtbfSeconds > 0) {
        AGENTSIM_ASSERT(hooks.crash && hooks.restart,
                        "crash faults need crash/restart hooks");
        drivers_.push_back(crashDriver(node_index, hooks));
    }
    if (config_.stallMtbfSeconds > 0) {
        AGENTSIM_ASSERT(static_cast<bool>(hooks.stall),
                        "stall faults need a stall hook");
        drivers_.push_back(stallDriver(node_index, hooks));
    }
}

Task<void>
FaultInjector::crashDriver(std::size_t node_index, NodeHooks hooks)
{
    Rng rng(config_.seed, "fault.node",
            static_cast<std::uint64_t>(node_index));
    for (;;) {
        co_await delaySec(sim_,
                          rng.exponential(config_.nodeMtbfSeconds));
        if (stopped_)
            co_return;
        hooks.crash();
        ++stats_.crashes;
        stats_.crashSeconds.push_back(sim_.nowSec());
        const double down =
            rng.exponential(config_.nodeRestartMeanSeconds);
        co_await delaySec(sim_, down);
        // Always restart a node we crashed, even when stopping:
        // leaving it offline would wedge any straggler retry loop.
        hooks.restart();
        ++stats_.restarts;
        stats_.downSecondsTotal += down;
        if (stopped_)
            co_return;
    }
}

std::string_view
maintenanceModeName(MaintenanceMode mode)
{
    switch (mode) {
      case MaintenanceMode::Crash:
        return "crash";
      case MaintenanceMode::Drain:
        return "drain";
      case MaintenanceMode::DrainMigrate:
        return "drain+migrate";
    }
    AGENTSIM_PANIC("unknown maintenance mode");
}

MaintenanceSchedule::MaintenanceSchedule(Simulation &sim,
                                         const MaintenanceConfig &config,
                                         std::size_t num_nodes,
                                         MaintainHook hook)
    : sim_(sim), config_(config), numNodes_(num_nodes),
      hook_(std::move(hook)), driver_(driver())
{
    AGENTSIM_ASSERT(config_.enabled(),
                    "maintenance schedule needs a positive period");
    AGENTSIM_ASSERT(num_nodes > 0, "maintenance schedule needs nodes");
    AGENTSIM_ASSERT(static_cast<bool>(hook_),
                    "maintenance schedule needs a maintain hook");
}

Task<void>
MaintenanceSchedule::driver()
{
    std::size_t next = 0;
    for (;;) {
        co_await delaySec(sim_, config_.periodSeconds);
        if (stopped_)
            co_return;
        co_await hook_(next);
        ++stats_.cycles;
        next = (next + 1) % numNodes_;
        if (stopped_)
            co_return;
    }
}

Task<void>
FaultInjector::stallDriver(std::size_t node_index, NodeHooks hooks)
{
    Rng rng(config_.seed, "fault.stall",
            static_cast<std::uint64_t>(node_index));
    for (;;) {
        co_await delaySec(sim_,
                          rng.exponential(config_.stallMtbfSeconds));
        if (stopped_)
            co_return;
        const double stall = rng.exponential(config_.stallMeanSeconds);
        hooks.stall(stall);
        ++stats_.stalls;
        stats_.stallSecondsInjected += stall;
    }
}

} // namespace agentsim::sim
