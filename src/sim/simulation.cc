#include "sim/simulation.hh"

#include <chrono>
#include <utility>

#include "sim/logging.hh"

namespace agentsim::sim
{

void
Simulation::schedule(Tick delay, std::function<void()> action)
{
    AGENTSIM_ASSERT(delay >= 0, "scheduling event %lld ticks in the past",
                    static_cast<long long>(-delay));
    events_.push(now_ + delay, std::move(action));
}

void
Simulation::scheduleAt(Tick when, std::function<void()> action)
{
    AGENTSIM_ASSERT(when >= now_, "scheduleAt(%lld) before now (%lld)",
                    static_cast<long long>(when),
                    static_cast<long long>(now_));
    events_.push(when, std::move(action));
}

void
Simulation::scheduleResume(Tick delay, std::coroutine_handle<> handle)
{
    schedule(delay, [handle] { handle.resume(); });
}

Tick
Simulation::run()
{
    const auto start = std::chrono::steady_clock::now();
    while (step()) {
    }
    wallSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return now_;
}

Tick
Simulation::runUntil(Tick until)
{
    AGENTSIM_ASSERT(until >= now_, "runUntil into the past");
    const auto start = std::chrono::steady_clock::now();
    while (!events_.empty() && events_.nextTime() <= until)
        step();
    wallSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    now_ = until;
    return now_;
}

std::uint64_t
Simulation::runWindow(Tick end)
{
    if (events_.empty() || events_.nextTime() >= end)
        return 0;
    const std::uint64_t before = processed_;
    const auto start = std::chrono::steady_clock::now();
    while (!events_.empty() && events_.nextTime() < end)
        step();
    wallSeconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return processed_ - before;
}

bool
Simulation::step()
{
    if (events_.empty())
        return false;
    Event ev = events_.pop();
    AGENTSIM_ASSERT(ev.when >= now_, "event time went backwards");
    now_ = ev.when;
    ++processed_;
    ev.action();
    return true;
}

} // namespace agentsim::sim
