#include "sim/parallel.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#if __has_include(<barrier>)
#include <barrier>
#endif

#include "sim/logging.hh"

namespace agentsim::sim
{

namespace
{

/** Shard whose worker thread is currently executing a window on this
 *  thread; -1 outside run() (post() provenance check). */
thread_local int t_runningShard = -1;

constexpr Tick kNever = std::numeric_limits<Tick>::max();

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

ShardedSimulation::ShardedSimulation(const ShardedConfig &config)
    : config_(config)
{
    AGENTSIM_ASSERT(config.shards >= 1, "ShardedSimulation needs >= 1 "
                                        "shard (got %d)",
                    config.shards);
    AGENTSIM_ASSERT(config.shards == 1 || config.windowTicks > 0,
                    "parallel shards need a positive conservative "
                    "window");
    shards_.reserve(static_cast<std::size_t>(config.shards));
    for (int i = 0; i < config.shards; ++i)
        shards_.push_back(std::make_unique<Simulation>());
    outboxes_.resize(static_cast<std::size_t>(config.shards));
    stats_.resize(static_cast<std::size_t>(config.shards));
}

ShardedSimulation::~ShardedSimulation() = default;

void
ShardedSimulation::post(int from, int target, Tick when,
                        std::function<void()> fn)
{
    AGENTSIM_ASSERT(from >= 0 && from < shardCount() && target >= 0 &&
                        target < shardCount(),
                    "post between unknown shards %d -> %d", from,
                    target);
    AGENTSIM_ASSERT(t_runningShard == -1 || t_runningShard == from,
                    "post(from=%d) issued from shard %d's worker",
                    from, t_runningShard);
    if (shardCount() == 1) {
        // Single-shard mode is the legacy engine: no window, no
        // latency floor — deliver straight into the queue.
        shards_[0]->scheduleAt(when, std::move(fn));
        return;
    }
    Outbox &out = outboxes_[static_cast<std::size_t>(from)];
    out.messages.push_back(Message{when, from, target, out.nextSeq++,
                                   windowEnd_, std::move(fn)});
    ++stats_[static_cast<std::size_t>(from)].messagesOut;
}

bool
ShardedSimulation::coordinateWindow()
{
    // Deliver everything sent during the last window, in an order
    // independent of thread scheduling: (when, sending shard, sending
    // sequence). Local event-queue sequence numbers are assigned in
    // this push order, so every shard's queue contents are canonical.
    std::vector<Message> pending;
    for (Outbox &out : outboxes_) {
        for (Message &m : out.messages)
            pending.push_back(std::move(m));
        out.messages.clear();
    }
    std::sort(pending.begin(), pending.end(),
              [](const Message &a, const Message &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.from != b.from)
                      return a.from < b.from;
                  return a.srcSeq < b.srcSeq;
              });
    for (Message &m : pending) {
        AGENTSIM_ASSERT(
            m.when >= m.sentWindowEnd,
            "conservative sync violated: shard %d posted an event "
            "%lld ticks before its window end — cross-shard latency "
            "must be >= the window",
            m.from,
            static_cast<long long>(m.sentWindowEnd - m.when));
        shards_[static_cast<std::size_t>(m.target)]->scheduleAt(
            m.when, std::move(m.fn));
        ++stats_[static_cast<std::size_t>(m.target)].messagesIn;
    }

    // Next window opens at the earliest pending event anywhere (empty
    // stretches of virtual time cost no barriers).
    Tick next = kNever;
    for (auto &shard : shards_) {
        if (shard->pendingEvents() > 0)
            next = std::min(next, shard->nextEventTime());
    }
    if (next == kNever) {
        done_ = true;
        return false;
    }
    windowEnd_ = next + config_.windowTicks;
    ++windows_;
    return true;
}

void
ShardedSimulation::runSequential()
{
    while (coordinateWindow()) {
        for (int i = 0; i < shardCount(); ++i) {
            t_runningShard = i;
            stats_[static_cast<std::size_t>(i)].eventsProcessed +=
                shards_[static_cast<std::size_t>(i)]->runWindow(
                    windowEnd_);
            t_runningShard = -1;
        }
    }
}

void
ShardedSimulation::runParallel()
{
    // One worker per shard; the barrier's completion step is the
    // coordinator. Workers only ever touch their own shard + outbox
    // during a window; the barrier orders those accesses against the
    // coordinator's drain, so the loop is lock-free and race-free.
    std::barrier barrier(shardCount(), [this]() noexcept {
        if (!coordinateWindow())
            done_ = true;
    });
    auto worker = [this, &barrier](int id) {
        ShardStats &st = stats_[static_cast<std::size_t>(id)];
        Simulation &sim = *shards_[static_cast<std::size_t>(id)];
        for (;;) {
            const auto wait = std::chrono::steady_clock::now();
            barrier.arrive_and_wait();
            st.stallSeconds += secondsSince(wait);
            if (done_)
                break;
            t_runningShard = id;
            st.eventsProcessed += sim.runWindow(windowEnd_);
            t_runningShard = -1;
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(shardCount()));
    for (int i = 0; i < shardCount(); ++i)
        threads.emplace_back(worker, i);
    for (auto &t : threads)
        t.join();
}

Tick
ShardedSimulation::run()
{
    const auto start = std::chrono::steady_clock::now();
    done_ = false;
    if (shardCount() == 1) {
        // Legacy engine: drain the lone shard with no windows at all.
        shards_[0]->run();
        stats_[0].eventsProcessed = shards_[0]->processedEvents();
    } else if (config_.parallel) {
        runParallel();
    } else {
        runSequential();
    }
    wallSeconds_ += secondsSince(start);
    for (std::size_t i = 0; i < shards_.size(); ++i)
        stats_[i].wallSeconds = shards_[i]->wallSeconds();
    Tick end = 0;
    for (auto &shard : shards_)
        end = std::max(end, shard->now());
    return end;
}

std::uint64_t
ShardedSimulation::totalEvents() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->processedEvents();
    return total;
}

} // namespace agentsim::sim
