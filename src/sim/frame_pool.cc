#include "sim/frame_pool.hh"

#include <array>
#include <cstdlib>
#include <new>
#include <vector>

namespace agentsim::sim
{

#if defined(AGENTSIM_FRAME_POOL_PASSTHROUGH)

void *
framePoolAllocate(std::size_t bytes)
{
    return ::operator new(bytes);
}

void
framePoolDeallocate(void *p, std::size_t bytes) noexcept
{
    ::operator delete(p, bytes);
}

FramePoolStats
framePoolStats()
{
    return {};
}

#else

namespace
{

/** Size classes: frames round up to the next class; larger requests
 *  fall through to the global allocator. */
constexpr std::array<std::size_t, 7> kClasses = {64,   128,  256, 512,
                                                 1024, 2048, 4096};
/** Per-class cap on parked blocks (bounds idle memory per thread). */
constexpr std::size_t kMaxPerClass = 128;

struct Pool
{
    std::array<std::vector<void *>, kClasses.size()> bins;
    FramePoolStats stats;

    ~Pool()
    {
        for (std::size_t c = 0; c < bins.size(); ++c) {
            for (void *p : bins[c])
                ::operator delete(p, kClasses[c]);
        }
    }
};

thread_local Pool t_pool;

/** Index of the smallest class holding @p bytes; kClasses.size() if
 *  the request is oversize. */
std::size_t
classFor(std::size_t bytes)
{
    for (std::size_t c = 0; c < kClasses.size(); ++c) {
        if (bytes <= kClasses[c])
            return c;
    }
    return kClasses.size();
}

} // namespace

void *
framePoolAllocate(std::size_t bytes)
{
    Pool &pool = t_pool;
    ++pool.stats.allocations;
    const std::size_t c = classFor(bytes);
    if (c == kClasses.size()) {
        ++pool.stats.oversize;
        return ::operator new(bytes);
    }
    auto &bin = pool.bins[c];
    if (!bin.empty()) {
        void *p = bin.back();
        bin.pop_back();
        ++pool.stats.poolHits;
        pool.stats.bytesHeld -= kClasses[c];
        return p;
    }
    return ::operator new(kClasses[c]);
}

void
framePoolDeallocate(void *p, std::size_t bytes) noexcept
{
    Pool &pool = t_pool;
    const std::size_t c = classFor(bytes);
    if (c == kClasses.size()) {
        ::operator delete(p, bytes);
        return;
    }
    auto &bin = pool.bins[c];
    if (bin.size() >= kMaxPerClass) {
        ::operator delete(p, kClasses[c]);
        return;
    }
    bin.push_back(p);
    pool.stats.bytesHeld += kClasses[c];
}

FramePoolStats
framePoolStats()
{
    return t_pool.stats;
}

#endif // AGENTSIM_FRAME_POOL_PASSTHROUGH

} // namespace agentsim::sim
