/**
 * @file
 * Minimal printf-style string formatting (std::format is unavailable on
 * the GCC 12 toolchain this project targets).
 */

#ifndef AGENTSIM_SIM_STRFMT_HH
#define AGENTSIM_SIM_STRFMT_HH

#include <cstdarg>
#include <cstdio>
#include <string>

namespace agentsim::sim
{

/**
 * Format a printf-style message into a std::string.
 *
 * @param fmt printf format string (may be empty).
 * @return the formatted string.
 */
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strfmt(const char *fmt = "", ...)
{
    if (fmt == nullptr || fmt[0] == '\0')
        return {};

    std::va_list args;
    va_start(args, fmt);
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args_copy);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(args_copy);
    return out;
}

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_STRFMT_HH
