/**
 * @file
 * Deterministic random-number streams.
 *
 * Every stochastic component of the simulator draws from a named Rng
 * stream derived from a global seed, so that experiments are exactly
 * reproducible and components are statistically independent of one
 * another (adding draws to one stream never perturbs another).
 *
 * The generator is xoshiro256**, seeded via SplitMix64 from an FNV-1a
 * hash of (global seed, stream name, stream index).
 *
 * Thread confinement (docs/DETERMINISM.md): an Rng is a plain value
 * with no shared or global state, so the parallel engine needs no RNG
 * locking — each shard's streams live in that shard's processes and
 * are only ever touched by its worker thread inside a window. The
 * draw *order within one stream* is part of the determinism contract;
 * keep a stream owned by exactly one coroutine/process and give new
 * consumers their own named stream instead of sharing one.
 */

#ifndef AGENTSIM_SIM_RNG_HH
#define AGENTSIM_SIM_RNG_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace agentsim::sim
{

/** 64-bit FNV-1a hash of a byte string. */
constexpr std::uint64_t
fnv1a(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ULL)
{
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Mix a 64-bit value into a hash (splitmix64 finalizer). */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit hashes. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return hashMix(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/**
 * A deterministic pseudo-random stream (xoshiro256**).
 *
 * Cheap to construct; copyable. Not thread safe — confine each
 * instance to one shard/process (see the file comment).
 */
class Rng
{
  public:
    /** Construct from a raw 64-bit seed. */
    explicit Rng(std::uint64_t seed);

    /**
     * Construct a named stream: hash(globalSeed, name, index).
     *
     * @param global_seed experiment-wide seed.
     * @param name stable component name, e.g. "tool.wikipedia".
     * @param index per-instance discriminator (task id, request id...).
     */
    Rng(std::uint64_t global_seed, std::string_view name,
        std::uint64_t index = 0);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Exponential with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with mean mu and standard deviation sigma. */
    double normal(double mu, double sigma);

    /**
     * Lognormal parameterized by its *arithmetic mean* and the sigma of
     * the underlying normal; convenient for "mean 1.2 s, heavy tail"
     * style tool-latency models.
     */
    double lognormalMean(double mean, double sigma);

    /** Sample an index proportional to non-negative weights. */
    std::size_t categorical(const std::vector<double> &weights);

    /** Poisson sample with the given mean (Knuth for small, normal
     *  approximation for large means). */
    std::int64_t poisson(double mean);

  private:
    std::array<std::uint64_t, 4> s_;
    /** Cached second Box-Muller variate. */
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_RNG_HH
