/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   — something questionable happened but simulation continues.
 * inform() — status messages.
 * debug()  — verbose diagnostics, off by default.
 *
 * warn/inform/debug are filtered by a severity threshold, settable
 * programmatically (setLogLevel) or via the AGENTSIM_LOG_LEVEL
 * environment variable ("debug", "info", "warn", "error"/"quiet").
 * panic/fatal are never filtered.
 */

#ifndef AGENTSIM_SIM_LOGGING_HH
#define AGENTSIM_SIM_LOGGING_HH

#include <optional>
#include <string>

#include "sim/strfmt.hh"

namespace agentsim::sim
{

/** Message severity, most verbose first. */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    /** Suppresses warn/info/debug; panic/fatal still print. */
    Error = 3,
};

/**
 * Current threshold: messages below it are dropped. Initialized from
 * AGENTSIM_LOG_LEVEL on first use (default: Info, matching the
 * historical always-print behaviour of warn/inform).
 */
LogLevel logLevel();

/** Override the threshold (also overrides the environment). */
void setLogLevel(LogLevel level);

/** True if a message at @p level would currently be printed. */
bool logEnabled(LogLevel level);

/**
 * Parse a level name ("debug", "info", "warn"/"warning",
 * "error"/"quiet"/"none"), case-insensitive. @return nullopt on an
 * unrecognized name.
 */
std::optional<LogLevel> parseLogLevel(std::string_view name);

/** Abort with a message: something that should never happen did. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(1) with a message: unusable user configuration. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr (subject to the level filter). */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr (filtered). */
void informImpl(const std::string &msg);

/** Print a verbose diagnostic to stderr (filtered). */
void debugImpl(const std::string &msg);

} // namespace agentsim::sim

#define AGENTSIM_PANIC(...) \
    ::agentsim::sim::panicImpl(__FILE__, __LINE__, \
                               ::agentsim::sim::strfmt(__VA_ARGS__))

#define AGENTSIM_FATAL(...) \
    ::agentsim::sim::fatalImpl(__FILE__, __LINE__, \
                               ::agentsim::sim::strfmt(__VA_ARGS__))

#define AGENTSIM_WARN(...) \
    do { \
        if (::agentsim::sim::logEnabled( \
                ::agentsim::sim::LogLevel::Warn)) { \
            ::agentsim::sim::warnImpl( \
                ::agentsim::sim::strfmt(__VA_ARGS__)); \
        } \
    } while (0)

#define AGENTSIM_INFORM(...) \
    do { \
        if (::agentsim::sim::logEnabled( \
                ::agentsim::sim::LogLevel::Info)) { \
            ::agentsim::sim::informImpl( \
                ::agentsim::sim::strfmt(__VA_ARGS__)); \
        } \
    } while (0)

#define AGENTSIM_DEBUG(...) \
    do { \
        if (::agentsim::sim::logEnabled( \
                ::agentsim::sim::LogLevel::Debug)) { \
            ::agentsim::sim::debugImpl( \
                ::agentsim::sim::strfmt(__VA_ARGS__)); \
        } \
    } while (0)

/** Panic unless a simulator invariant holds. */
#define AGENTSIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::agentsim::sim::panicImpl(__FILE__, __LINE__, \
                "assertion failed: " #cond " " \
                + ::agentsim::sim::strfmt(__VA_ARGS__)); \
        } \
    } while (0)

#endif // AGENTSIM_SIM_LOGGING_HH
