/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   — something questionable happened but simulation continues.
 * inform() — status messages.
 */

#ifndef AGENTSIM_SIM_LOGGING_HH
#define AGENTSIM_SIM_LOGGING_HH

#include <string>

#include "sim/strfmt.hh"

namespace agentsim::sim
{

/** Abort with a message: something that should never happen did. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit(1) with a message: unusable user configuration. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

} // namespace agentsim::sim

#define AGENTSIM_PANIC(...) \
    ::agentsim::sim::panicImpl(__FILE__, __LINE__, \
                               ::agentsim::sim::strfmt(__VA_ARGS__))

#define AGENTSIM_FATAL(...) \
    ::agentsim::sim::fatalImpl(__FILE__, __LINE__, \
                               ::agentsim::sim::strfmt(__VA_ARGS__))

#define AGENTSIM_WARN(...) \
    ::agentsim::sim::warnImpl(::agentsim::sim::strfmt(__VA_ARGS__))

#define AGENTSIM_INFORM(...) \
    ::agentsim::sim::informImpl(::agentsim::sim::strfmt(__VA_ARGS__))

/** Panic unless a simulator invariant holds. */
#define AGENTSIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::agentsim::sim::panicImpl(__FILE__, __LINE__, \
                "assertion failed: " #cond " " \
                + ::agentsim::sim::strfmt(__VA_ARGS__)); \
        } \
    } while (0)

#endif // AGENTSIM_SIM_LOGGING_HH
