/**
 * @file
 * Thread-local size-class pool for coroutine frames.
 *
 * Every sim::Task coroutine frame (engine run loops, agent rollouts,
 * drivers) is allocated through this pool: freed frames park on a
 * per-thread free list bucketed by size class and are handed back to
 * the next same-class allocation without touching the global
 * allocator. Agent workloads churn through millions of short-lived
 * frames (one per request worker, tool call, engine step helper), so
 * this removes the dominant allocation traffic from the simulator hot
 * path — see DESIGN.md §3k.
 *
 * Thread safety: pools are `thread_local`, so shards of the parallel
 * engine (sim/parallel.hh) never contend. A block freed on a different
 * thread than it was allocated on simply joins the freeing thread's
 * pool — blocks are plain malloc storage, not thread-owned.
 *
 * Determinism: allocation pooling is invisible to simulation results
 * by construction (it changes *where* frames live, never what they
 * compute). Under AddressSanitizer / ThreadSanitizer / MemorySanitizer
 * the pool compiles to a passthrough to the global allocator so frame
 * lifetime bugs stay visible to the sanitizer (the PR 4 / PR 9 chaos
 * gates rely on that).
 */

#ifndef AGENTSIM_SIM_FRAME_POOL_HH
#define AGENTSIM_SIM_FRAME_POOL_HH

#include <cstddef>
#include <cstdint>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AGENTSIM_FRAME_POOL_PASSTHROUGH 1
#endif
#if !defined(AGENTSIM_FRAME_POOL_PASSTHROUGH) && defined(__has_feature)
#if __has_feature(address_sanitizer) || \
    __has_feature(thread_sanitizer) || __has_feature(memory_sanitizer)
#define AGENTSIM_FRAME_POOL_PASSTHROUGH 1
#endif
#endif

namespace agentsim::sim
{

/** Per-thread pool counters (all zero in passthrough builds). */
struct FramePoolStats
{
    /** Allocations served, pool hits included. */
    std::uint64_t allocations = 0;
    /** Allocations served from a free list (no malloc). */
    std::uint64_t poolHits = 0;
    /** Requests larger than the largest size class (passthrough). */
    std::uint64_t oversize = 0;
    /** Bytes currently parked on this thread's free lists. */
    std::uint64_t bytesHeld = 0;
};

/** Allocate @p bytes of frame storage (never returns nullptr). */
void *framePoolAllocate(std::size_t bytes);

/** Return frame storage of @p bytes to the calling thread's pool. */
void framePoolDeallocate(void *p, std::size_t bytes) noexcept;

/** Counters for the calling thread's pool. */
FramePoolStats framePoolStats();

/** False when sanitizers forced the passthrough build. */
constexpr bool
framePoolEnabled()
{
#if defined(AGENTSIM_FRAME_POOL_PASSTHROUGH)
    return false;
#else
    return true;
#endif
}

} // namespace agentsim::sim

#endif // AGENTSIM_SIM_FRAME_POOL_HH
