#include "sim/rng.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace agentsim::sim
{

namespace
{

/** splitmix64 step, used for seeding. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // xoshiro must not be seeded with all zeros.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
        s_[0] = 1;
}

Rng::Rng(std::uint64_t global_seed, std::string_view name,
         std::uint64_t index)
    : Rng(hashCombine(hashCombine(global_seed, fnv1a(name)), index))
{
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    AGENTSIM_ASSERT(lo <= hi, "uniformInt: lo %lld > hi %lld",
                    static_cast<long long>(lo),
                    static_cast<long long>(hi));
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(next() % span);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < std::clamp(p, 0.0, 1.0);
}

double
Rng::exponential(double mean)
{
    AGENTSIM_ASSERT(mean > 0, "exponential: mean %f <= 0", mean);
    double u = uniform();
    // Avoid log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mu, double sigma)
{
    return mu + sigma * normal();
}

double
Rng::lognormalMean(double mean, double sigma)
{
    AGENTSIM_ASSERT(mean > 0, "lognormalMean: mean %f <= 0", mean);
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(normal(mu, sigma));
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    AGENTSIM_ASSERT(!weights.empty(), "categorical: empty weights");
    double total = 0.0;
    for (double w : weights) {
        AGENTSIM_ASSERT(w >= 0.0, "categorical: negative weight %f", w);
        total += w;
    }
    AGENTSIM_ASSERT(total > 0.0, "categorical: all-zero weights");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::int64_t
Rng::poisson(double mean)
{
    AGENTSIM_ASSERT(mean >= 0, "poisson: mean %f < 0", mean);
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's algorithm.
        const double limit = std::exp(-mean);
        double p = 1.0;
        std::int64_t k = 0;
        do {
            ++k;
            p *= uniform();
        } while (p > limit);
        return k - 1;
    }
    // Normal approximation for large means.
    const double x = normal(mean, std::sqrt(mean));
    return std::max<std::int64_t>(0, static_cast<std::int64_t>(x + 0.5));
}

} // namespace agentsim::sim
