#include "llm/perf_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace agentsim::llm
{

PerfModel::PerfModel(ModelSpec model, NodeSpec node)
    : model_(std::move(model)), node_(std::move(node))
{
    AGENTSIM_ASSERT(node_.numGpus > 0, "node with no GPUs");
    const auto need = model_.weightBytes();
    const auto have = node_.totalMemory();
    if (need > have) {
        AGENTSIM_FATAL("model %s (%lld weight bytes) does not fit on "
                       "%d x %s (%lld bytes)",
                       model_.name.c_str(), static_cast<long long>(need),
                       node_.numGpus, node_.gpu.name.c_str(),
                       static_cast<long long>(have));
    }
}

double
PerfModel::prefillFlops(std::int64_t tokens,
                        std::int64_t context_before) const
{
    AGENTSIM_ASSERT(tokens >= 0 && context_before >= 0,
                    "negative prefill work");
    if (tokens == 0)
        return 0.0;
    const double dense =
        static_cast<double>(tokens) * model_.denseFlopsPerToken();
    // Token at offset i attends over (context_before + i) positions;
    // sum over the chunk is an arithmetic series.
    const double pos_sum =
        static_cast<double>(tokens) * static_cast<double>(context_before) +
        0.5 * static_cast<double>(tokens) *
            static_cast<double>(tokens - 1);
    const double attn = model_.attentionFlops(1) * pos_sum;
    return dense + attn;
}

double
PerfModel::decodeFlops(std::int64_t context_len) const
{
    return model_.denseFlopsPerToken() +
           model_.attentionFlops(context_len);
}

StepCost
PerfModel::stepCost(const StepWork &work) const
{
    StepCost cost;
    if (work.empty())
        return cost;

    const double kv_per_token =
        static_cast<double>(model_.kvBytesPerToken());

    // Weights stream through the node once per step.
    double bytes = static_cast<double>(model_.weightBytes());
    double flops = 0.0;

    for (const auto &chunk : work.prefills) {
        flops += prefillFlops(chunk.tokens, chunk.contextBefore);
        cost.prefillTokens += chunk.tokens;
        // KV writes for the new tokens plus reads of the existing
        // prefix (attention streams the cached keys/values).
        bytes += kv_per_token * static_cast<double>(chunk.tokens);
        bytes += kv_per_token * static_cast<double>(chunk.contextBefore);
    }

    for (const auto ctx : work.decodeContexts) {
        flops += decodeFlops(ctx);
        cost.decodeTokens += 1;
        // Decode reads the whole KV history and writes one entry.
        bytes += kv_per_token * static_cast<double>(ctx + 1);
    }

    cost.flops = flops;
    cost.bytes = bytes;
    cost.computeSeconds = flops / node_.effectiveFlops();
    cost.memorySeconds = bytes / node_.effectiveBandwidth();
    const double seq_overhead =
        node_.perSeqOverheadSec *
        static_cast<double>(work.prefills.size() +
                            work.decodeContexts.size());
    cost.seconds = std::max(cost.computeSeconds, cost.memorySeconds) +
                   node_.stepOverheadSec + seq_overhead;
    return cost;
}

double
PerfModel::prefillSeconds(std::int64_t tokens,
                          std::int64_t context_before) const
{
    StepWork w;
    w.prefills.push_back({tokens, context_before});
    return stepCost(w).seconds;
}

double
PerfModel::decodeSecondsSingle(std::int64_t context_len) const
{
    StepWork w;
    w.decodeContexts.push_back(context_len);
    return stepCost(w).seconds;
}

} // namespace agentsim::llm
