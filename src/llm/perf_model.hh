/**
 * @file
 * Roofline performance model for one engine step.
 *
 * The serving engine batches work at iteration granularity (continuous
 * batching): each step carries some prefill chunks and one decode token
 * for every running sequence. The model prices a step as
 *     max(flops / effective_flops, bytes / effective_bandwidth)
 *     + fixed step overhead,
 * which makes prefill compute-bound and decode memory-bound — the
 * asymmetry at the heart of the paper's Fig 6, 10 and 11.
 */

#ifndef AGENTSIM_LLM_PERF_MODEL_HH
#define AGENTSIM_LLM_PERF_MODEL_HH

#include <cstdint>
#include <vector>

#include "llm/hardware.hh"
#include "llm/model_spec.hh"

namespace agentsim::llm
{

/** Work scheduled into one engine step. */
struct StepWork
{
    /** A contiguous run of prompt tokens being prefilled. */
    struct PrefillChunk
    {
        /** New tokens computed in this step. */
        std::int64_t tokens = 0;
        /** KV-cache tokens already in place before this chunk. */
        std::int64_t contextBefore = 0;
    };

    std::vector<PrefillChunk> prefills;
    /** Context length (tokens attended over) per decoding sequence. */
    std::vector<std::int64_t> decodeContexts;

    bool
    empty() const
    {
        return prefills.empty() && decodeContexts.empty();
    }
};

/** Priced cost of one engine step. */
struct StepCost
{
    double seconds = 0.0;
    double flops = 0.0;
    double bytes = 0.0;
    std::int64_t prefillTokens = 0;
    std::int64_t decodeTokens = 0;
    /** Roofline components (before taking the max). */
    double computeSeconds = 0.0;
    double memorySeconds = 0.0;

    /** True if the step was limited by FLOPs rather than bandwidth. */
    bool computeBound() const { return computeSeconds >= memorySeconds; }
};

/**
 * Prices StepWork for a (model, node) pair and attributes FLOPs to
 * individual requests.
 */
class PerfModel
{
  public:
    PerfModel(ModelSpec model, NodeSpec node);

    const ModelSpec &model() const { return model_; }
    const NodeSpec &node() const { return node_; }

    /** Price one engine step. */
    StepCost stepCost(const StepWork &work) const;

    /** FLOPs to prefill @p tokens new tokens after @p context_before. */
    double prefillFlops(std::int64_t tokens,
                        std::int64_t context_before) const;

    /** FLOPs to decode one token with @p context_len tokens of KV. */
    double decodeFlops(std::int64_t context_len) const;

    /**
     * Latency of a standalone prefill of @p tokens tokens (no batch
     * sharing) — used for calibration and unit checks.
     */
    double prefillSeconds(std::int64_t tokens,
                          std::int64_t context_before = 0) const;

    /**
     * Latency of one decode step for a single sequence at
     * @p context_len — used for calibration and unit checks.
     */
    double decodeSecondsSingle(std::int64_t context_len) const;

  private:
    ModelSpec model_;
    NodeSpec node_;
};

} // namespace agentsim::llm

#endif // AGENTSIM_LLM_PERF_MODEL_HH
