/**
 * @file
 * Transformer architecture descriptions used by the roofline
 * performance model. Parameter counts, per-token FLOPs and KV-cache
 * footprints are derived from the architecture, not hard-coded, so the
 * 8B/70B scaling behaviour of the paper emerges from first principles.
 */

#ifndef AGENTSIM_LLM_MODEL_SPEC_HH
#define AGENTSIM_LLM_MODEL_SPEC_HH

#include <cstdint>
#include <string>

namespace agentsim::llm
{

/**
 * Decoder-only transformer architecture (Llama-style, GQA attention).
 * All byte figures assume FP16/BF16 weights and KV cache.
 */
struct ModelSpec
{
    std::string name;
    int layers = 0;
    int hiddenDim = 0;
    int numQHeads = 0;
    int numKvHeads = 0;
    int headDim = 0;
    int ffnDim = 0;
    int vocabSize = 0;
    /** Maximum context length (prompt + generation), tokens. */
    std::int64_t contextWindow = 131072;
    /**
     * KV-cache compression ratio (1 = uncompressed FP16; 2 = e.g.
     * FP8/INT8 quantized KV). Shrinks both the cache footprint and
     * decode's KV memory traffic — the "KV cache compression"
     * direction of the paper's keytakeaway #9. First-order model:
     * dequantization cost is folded into the existing efficiency
     * factors.
     */
    double kvCompression = 1.0;

    /** Total parameter count (attention + gated FFN + embeddings). */
    std::int64_t paramCount() const;

    /** Bytes of model weights at 2 bytes/param. */
    std::int64_t weightBytes() const { return 2 * paramCount(); }

    /** KV-cache bytes appended per token (K and V, all layers, FP16). */
    std::int64_t kvBytesPerToken() const;

    /**
     * Matmul FLOPs to process one token through the dense layers
     * (weight GEMMs only; ~2 FLOPs per weight per token).
     */
    double denseFlopsPerToken() const;

    /**
     * Attention FLOPs for one token attending over @p context_len
     * previous positions (QK^T and PV, GQA-aware).
     */
    double attentionFlops(std::int64_t context_len) const;
};

/** Llama-3.1-8B-Instruct. */
ModelSpec llama31_8b();

/** Llama-3.1-70B-Instruct. */
ModelSpec llama31_70b();

} // namespace agentsim::llm

#endif // AGENTSIM_LLM_MODEL_SPEC_HH
