#include "llm/model_spec.hh"

namespace agentsim::llm
{

std::int64_t
ModelSpec::paramCount() const
{
    const std::int64_t h = hiddenDim;
    const std::int64_t q_dim =
        static_cast<std::int64_t>(numQHeads) * headDim;
    const std::int64_t kv_dim =
        static_cast<std::int64_t>(numKvHeads) * headDim;

    // Attention: Wq (h x q_dim), Wk/Wv (h x kv_dim each), Wo (q_dim x h).
    const std::int64_t attn = h * q_dim + 2 * h * kv_dim + q_dim * h;
    // Gated FFN: gate, up (h x ffn) and down (ffn x h).
    const std::int64_t ffn = 3 * h * static_cast<std::int64_t>(ffnDim);
    // RMSNorm scales (2 per layer) are negligible but counted.
    const std::int64_t norms = 2 * h;

    const std::int64_t per_layer = attn + ffn + norms;
    // Embedding + (untied) LM head + final norm.
    const std::int64_t embed =
        2 * static_cast<std::int64_t>(vocabSize) * h + h;

    return layers * per_layer + embed;
}

std::int64_t
ModelSpec::kvBytesPerToken() const
{
    // K and V, each numKvHeads*headDim values per layer, 2 bytes
    // each, shrunk by any KV quantization.
    const double raw = 2.0 * layers * numKvHeads * headDim * 2.0;
    return static_cast<std::int64_t>(raw / kvCompression);
}

double
ModelSpec::denseFlopsPerToken() const
{
    // 2 FLOPs (multiply + add) per weight; embeddings are lookups, the
    // LM head is a GEMM.
    const std::int64_t h = hiddenDim;
    const std::int64_t q_dim =
        static_cast<std::int64_t>(numQHeads) * headDim;
    const std::int64_t kv_dim =
        static_cast<std::int64_t>(numKvHeads) * headDim;
    const std::int64_t attn = h * q_dim + 2 * h * kv_dim + q_dim * h;
    const std::int64_t ffn = 3 * h * static_cast<std::int64_t>(ffnDim);
    const std::int64_t head = static_cast<std::int64_t>(vocabSize) * h;
    return 2.0 * (static_cast<double>(layers) *
                      static_cast<double>(attn + ffn) +
                  static_cast<double>(head));
}

double
ModelSpec::attentionFlops(std::int64_t context_len) const
{
    // QK^T: q_dim * context multiply-adds; PV: the same again.
    const double q_dim = static_cast<double>(numQHeads) * headDim;
    return 2.0 * 2.0 * layers * q_dim * static_cast<double>(context_len);
}

ModelSpec
llama31_8b()
{
    ModelSpec m;
    m.name = "Llama-3.1-8B-Instruct";
    m.layers = 32;
    m.hiddenDim = 4096;
    m.numQHeads = 32;
    m.numKvHeads = 8;
    m.headDim = 128;
    m.ffnDim = 14336;
    m.vocabSize = 128256;
    return m;
}

ModelSpec
llama31_70b()
{
    ModelSpec m;
    m.name = "Llama-3.1-70B-Instruct";
    m.layers = 80;
    m.hiddenDim = 8192;
    m.numQHeads = 64;
    m.numKvHeads = 8;
    m.headDim = 128;
    m.ffnDim = 28672;
    m.vocabSize = 128256;
    return m;
}

} // namespace agentsim::llm
