#include "llm/hardware.hh"

namespace agentsim::llm
{

GpuSpec
a100_40gb()
{
    GpuSpec g;
    g.name = "NVIDIA A100-SXM4-40GB";
    g.peakFlops = 312e12;        // dense FP16/BF16
    g.memBandwidth = 1555e9;     // HBM2e
    g.memCapacity = 40LL * 1000 * 1000 * 1000;
    g.tdp = 400.0;
    g.idlePower = 55.0;
    g.decodePower = 270.0;
    g.prefillPower = 360.0;
    return g;
}

GpuSpec
h100_80gb()
{
    GpuSpec g;
    g.name = "NVIDIA H100-SXM5-80GB";
    g.peakFlops = 989e12;     // dense BF16
    g.memBandwidth = 3350e9;  // HBM3
    g.memCapacity = 80LL * 1000 * 1000 * 1000;
    g.tdp = 700.0;
    g.idlePower = 90.0;
    g.decodePower = 420.0;
    g.prefillPower = 640.0;
    return g;
}

double
NodeSpec::effectiveFlops() const
{
    return gpu.peakFlops * numGpus * computeEfficiency * tpEfficiency;
}

double
NodeSpec::effectiveBandwidth() const
{
    return gpu.memBandwidth * numGpus * bandwidthEfficiency *
           tpEfficiency;
}

std::int64_t
NodeSpec::totalMemory() const
{
    return gpu.memCapacity * numGpus;
}

NodeSpec
singleA100()
{
    NodeSpec n;
    n.gpu = a100_40gb();
    n.numGpus = 1;
    n.computeEfficiency = 0.55;
    n.bandwidthEfficiency = 0.65;
    n.tpEfficiency = 1.0;
    return n;
}

NodeSpec
singleH100()
{
    NodeSpec n;
    n.gpu = h100_80gb();
    n.numGpus = 1;
    n.computeEfficiency = 0.55;
    n.bandwidthEfficiency = 0.65;
    n.tpEfficiency = 1.0;
    return n;
}

NodeSpec
octoA100()
{
    NodeSpec n;
    n.gpu = a100_40gb();
    n.numGpus = 8;
    n.computeEfficiency = 0.55;
    n.bandwidthEfficiency = 0.65;
    // All-reduce after every attention/FFN block costs ~25% at TP=8.
    n.tpEfficiency = 0.75;
    return n;
}

} // namespace agentsim::llm
