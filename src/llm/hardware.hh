/**
 * @file
 * GPU and serving-node hardware descriptions (paper §III: A100-40GB,
 * 1 GPU for the 8B model, 8-way tensor parallel for 70B).
 */

#ifndef AGENTSIM_LLM_HARDWARE_HH
#define AGENTSIM_LLM_HARDWARE_HH

#include <cstdint>
#include <string>

namespace agentsim::llm
{

/** A single accelerator's capabilities and power envelope. */
struct GpuSpec
{
    std::string name;
    /** Peak dense FP16 throughput, FLOP/s. */
    double peakFlops = 0.0;
    /** Peak HBM bandwidth, bytes/s. */
    double memBandwidth = 0.0;
    /** HBM capacity, bytes. */
    std::int64_t memCapacity = 0;
    /** Board power limit, watts. */
    double tdp = 0.0;
    /** Idle power draw, watts. */
    double idlePower = 0.0;
    /** Average draw during memory-bound decode, watts. */
    double decodePower = 0.0;
    /** Average draw during compute-bound prefill, watts. */
    double prefillPower = 0.0;
};

/** NVIDIA A100-SXM4-40GB. */
GpuSpec a100_40gb();

/** NVIDIA H100-SXM5-80GB (the Colossus-class GPU of the paper's
 *  introduction). */
GpuSpec h100_80gb();

/**
 * A tensor-parallel serving node: N identical GPUs plus the achieved
 * efficiency factors of the deployment.
 */
struct NodeSpec
{
    GpuSpec gpu;
    int numGpus = 1;

    /** Fraction of peak FLOP/s achieved on prefill GEMMs. */
    double computeEfficiency = 0.55;
    /** Fraction of peak bandwidth achieved on decode. */
    double bandwidthEfficiency = 0.65;
    /**
     * Multiplicative scaling penalty of tensor parallelism
     * (all-reduce overhead); 1.0 for a single GPU.
     */
    double tpEfficiency = 1.0;
    /** Fixed per-engine-step overhead (scheduling, launch), seconds. */
    double stepOverheadSec = 400e-6;
    /**
     * Additional per-scheduled-sequence overhead per step (sampling,
     * block-table updates, kernel launches — the vLLM 0.6-era CPU
     * costs that cap achievable batch throughput), seconds.
     */
    double perSeqOverheadSec = 300e-6;
    /**
     * Host-to-GPU transfer bandwidth for KV-cache restores from the
     * CPU-memory spill tier (PCIe 4.0 x16 effective), bytes/s.
     */
    double hostOffloadBandwidth = 25e9;
    /**
     * Sustained read bandwidth of the node's NVMe KV spill tier
     * (datacenter Gen4 SSD), bytes/s. Writes ride the same budget —
     * the simulator prices tier traffic symmetrically.
     */
    double nvmeReadBandwidth = 3.5e9;

    /** Aggregate achievable FLOP/s across the node. */
    double effectiveFlops() const;

    /** Aggregate achievable bytes/s across the node. */
    double effectiveBandwidth() const;

    /** Total HBM bytes across the node. */
    std::int64_t totalMemory() const;
};

/** Paper instance a2-highgpu-1g: one A100-40GB (8B model). */
NodeSpec singleA100();

/** Paper instance a2-highgpu-8g: eight A100-40GB, TP=8 (70B model). */
NodeSpec octoA100();

/** One H100-80GB (forward-looking single-GPU node). */
NodeSpec singleH100();

} // namespace agentsim::llm

#endif // AGENTSIM_LLM_HARDWARE_HH
