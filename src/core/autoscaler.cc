/**
 * @file
 * Autoscaler controller + predictive admission control implementation.
 */

#include "core/autoscaler.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "sim/logging.hh"
#include "sim/strfmt.hh"
#include "telemetry/flight_recorder.hh"

namespace agentsim::core
{

std::string_view
scaleDecisionName(ScaleDecision decision)
{
    switch (decision) {
      case ScaleDecision::Hold:
        return "hold";
      case ScaleDecision::ScaleOut:
        return "scale_out";
      case ScaleDecision::ScaleIn:
        return "scale_in";
    }
    AGENTSIM_PANIC("unknown ScaleDecision %d",
                   static_cast<int>(decision));
}

double
nodeWarmupSeconds(const AutoscalerConfig &config,
                  const llm::ModelSpec &model, const llm::NodeSpec &node)
{
    double bw = config.weightLoadBandwidth > 0.0
                    ? config.weightLoadBandwidth
                    : node.hostOffloadBandwidth;
    AGENTSIM_ASSERT(bw > 0.0,
                    "node warm-up needs a weight-load bandwidth");
    AGENTSIM_ASSERT(node.numGpus > 0, "node without GPUs");
    double shard_bytes =
        model.weightBytes() / static_cast<double>(node.numGpus);
    return config.nodeBootSeconds + shard_bytes / bw;
}

// ---------------------------------------------------------------------
// AutoscalerController
// ---------------------------------------------------------------------

AutoscalerController::AutoscalerController(const AutoscalerConfig &config)
    : config_(config), delay_(config.queueDelayQuantile)
{
}

void
AutoscalerController::recordArrival(sim::Tick now)
{
    if (lastArrival_ < 0) {
        lastArrival_ = now;
        return;
    }
    double dt = sim::toSeconds(now - lastArrival_);
    lastArrival_ = now;
    if (dt <= 0.0) {
        // Same-tick burst: the next spaced arrival carries the rate.
        return;
    }
    double inst = 1.0 / dt;
    double a = std::exp(-dt / config_.arrivalTauSeconds);
    arrivalRate_ = a * arrivalRate_ + (1.0 - a) * inst;
}

double
AutoscalerController::predictedQps(sim::Tick now) const
{
    if (lastArrival_ < 0)
        return 0.0;
    // Decay toward zero over quiet gaps, so a dead workload does not
    // hold capacity forever on a stale estimate.
    double idle = sim::toSeconds(std::max<sim::Tick>(0, now - lastArrival_));
    return arrivalRate_ * std::exp(-idle / config_.arrivalTauSeconds);
}

void
AutoscalerController::recordQueueDelay(double seconds)
{
    delay_.add(std::max(0.0, seconds));
    ++delaySamples_;
}

double
AutoscalerController::queueDelayPercentile() const
{
    if (delaySamples_ < config_.minDelaySamples)
        return 0.0;
    return delay_.value();
}

void
AutoscalerController::resetDelayEstimator()
{
    delay_ = stats::P2Quantile(config_.queueDelayQuantile);
    delaySamples_ = 0;
}

double
AutoscalerController::elapsedSeconds(sim::Tick now, sim::Tick since) const
{
    return sim::toSeconds(std::max<sim::Tick>(0, now - since));
}

ScaleDecision
AutoscalerController::evaluate(sim::Tick now, int active, int warming,
                               double burn_rate)
{
    int provisioned = active + warming;
    double qhat = predictedQps(now);
    double mu = config_.nodeServiceQps;
    double delay = queueDelayPercentile();

    bool capacity_pressure =
        mu > 0.0 &&
        qhat > config_.targetUtilization * mu *
                   static_cast<double>(provisioned);
    bool delay_pressure = delay > config_.queueDelayHighSeconds;
    bool burn_pressure = burn_rate >= config_.burnHighThreshold;

    if (capacity_pressure || delay_pressure || burn_pressure)
        lastPressure_ = now;

    double since_out = elapsedSeconds(now, lastScaleOut_);
    double since_in = elapsedSeconds(now, lastScaleIn_);
    bool out_cooled = (scaleOuts_ == 0 && scaleIns_ == 0) ||
                      (since_out >= config_.scaleOutCooldownSeconds &&
                       since_in >= config_.scaleOutCooldownSeconds);

    if ((capacity_pressure || delay_pressure || burn_pressure) &&
        provisioned < config_.maxNodes && out_cooled) {
        reason_ = capacity_pressure ? "capacity"
                  : delay_pressure  ? "queue_delay"
                                    : "burn";
        lastScaleOut_ = now;
        ++scaleOuts_;
        resetDelayEstimator();
        if (trace_) {
            trace_->instant(telemetry::TracePid::kResilience,
                            static_cast<std::uint64_t>(provisioned),
                            std::string("scale_out:") +
                                std::string(reason_),
                            "autoscale", now);
        }
        AGENTSIM_INFORM(
            "autoscaler: scale-out (%s) at %.1fs: qhat=%.2f/s "
            "delay_p%.0f=%.2fs burn=%.2f provisioned=%d",
            std::string(reason_).c_str(), sim::toSeconds(now), qhat,
            config_.queueDelayQuantile * 100.0, delay, burn_rate,
            provisioned);
        if (recorder_ != nullptr) {
            // A scale-out shortly after a scale-in is a flap — the
            // clearest sign the hysteresis thresholds are fighting
            // the workload, and worth its own incident label.
            const bool flap =
                scaleIns_ > 0 &&
                since_in < 3.0 * config_.scaleOutCooldownSeconds;
            recorder_->trigger(
                telemetry::IncidentTrigger::Autoscale, now,
                sim::strfmt("%s (%s) qhat=%.2f/s delay=%.2fs "
                            "burn=%.2f provisioned=%d",
                            flap ? "scale flap" : "scale-out",
                            std::string(reason_).c_str(), qhat, delay,
                            burn_rate, provisioned));
        }
        return ScaleDecision::ScaleOut;
    }

    bool relief =
        burn_rate <= config_.burnLowThreshold &&
        delay <= config_.queueDelayLowSeconds &&
        (mu <= 0.0 ||
         qhat < config_.scaleInUtilization * mu *
                    static_cast<double>(provisioned - 1));
    bool in_cooled =
        elapsedSeconds(now, lastPressure_) >=
            config_.scaleInCooldownSeconds &&
        since_out >= config_.scaleInCooldownSeconds &&
        since_in >= config_.scaleInCooldownSeconds;

    if (relief && warming == 0 && provisioned > config_.minNodes &&
        in_cooled) {
        reason_ = "idle";
        lastScaleIn_ = now;
        ++scaleIns_;
        resetDelayEstimator();
        if (trace_) {
            trace_->instant(telemetry::TracePid::kResilience,
                            static_cast<std::uint64_t>(provisioned),
                            "scale_in:idle", "autoscale", now);
        }
        AGENTSIM_INFORM(
            "autoscaler: scale-in at %.1fs: qhat=%.2f/s burn=%.2f "
            "provisioned=%d", sim::toSeconds(now), qhat, burn_rate,
            provisioned);
        return ScaleDecision::ScaleIn;
    }

    return ScaleDecision::Hold;
}

void
AutoscalerController::noteNodeReady(sim::Tick now)
{
    ++nodesReady_;
    if (trace_) {
        trace_->instant(telemetry::TracePid::kResilience,
                        static_cast<std::uint64_t>(nodesReady_),
                        "node_ready", "autoscale", now);
    }
}

void
AutoscalerController::exportMetrics(telemetry::MetricsRegistry &registry,
                                    sim::Tick now) const
{
    registry
        .counter("agentsim_autoscale_scale_outs_total",
                 "Scale-out decisions taken by the autoscaler")
        .set(static_cast<double>(scaleOuts_));
    registry
        .counter("agentsim_autoscale_scale_ins_total",
                 "Scale-in decisions taken by the autoscaler")
        .set(static_cast<double>(scaleIns_));
    registry
        .counter("agentsim_autoscale_nodes_ready_total",
                 "Scaled-out nodes that completed warm-up")
        .set(static_cast<double>(nodesReady_));
    registry
        .gauge("agentsim_autoscale_predicted_qps",
               "EWMA-predicted request arrival rate")
        .set(now, predictedQps(now));
}

// ---------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------

AdmissionController::AdmissionController(const AutoscalerConfig &config)
    : config_(config)
{
}

void
AdmissionController::recordCompletion(sim::Tick now)
{
    if (lastCompletion_ < 0) {
        lastCompletion_ = now;
        return;
    }
    double dt = sim::toSeconds(now - lastCompletion_);
    lastCompletion_ = now;
    if (dt <= 0.0)
        return;
    double inst = 1.0 / dt;
    double a = std::exp(-dt / config_.arrivalTauSeconds);
    completionRate_ = a * completionRate_ + (1.0 - a) * inst;
}

double
AdmissionController::projectedDelaySeconds(std::size_t queue_depth,
                                           int active,
                                           sim::Tick now) const
{
    (void)now;
    if (queue_depth == 0)
        return 0.0;
    double per_node;
    if (config_.nodeServiceQps > 0.0) {
        per_node = config_.nodeServiceQps;
    } else {
        per_node =
            completionRate_ / static_cast<double>(std::max(1, active));
    }
    if (per_node <= 1e-9) {
        // Cold start / unknown service rate: no evidence of doom yet.
        return 0.0;
    }
    // Little's law: the joining request waits for queue_depth requests
    // ahead of it to clear at the node's service rate.
    return static_cast<double>(queue_depth) / per_node;
}

bool
AdmissionController::admit(std::size_t queue_depth, int active,
                           double deadline_budget_seconds, sim::Tick now)
{
    ++decisions_;
    double budget =
        deadline_budget_seconds > 0.0
            ? deadline_budget_seconds * config_.admissionDeadlineFraction
            : config_.admissionMaxDelaySeconds;
    if (budget <= 0.0)
        return true;
    if (projectedDelaySeconds(queue_depth, active, now) > budget) {
        ++rejects_;
        return false;
    }
    return true;
}

} // namespace agentsim::core
