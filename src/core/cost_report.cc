#include "core/cost_report.hh"

#include <algorithm>
#include <cctype>

#include "energy/projection.hh"
#include "sim/logging.hh"
#include "sim/strfmt.hh"

namespace agentsim::core
{

CostReport::Row &
CostReport::rowFor(const std::string &label)
{
    for (Row &row : rows_) {
        if (row.label == label)
            return row;
    }
    rows_.push_back(Row{label, {}, 0});
    return rows_.back();
}

void
CostReport::add(const std::string &label,
                const serving::CostLedger &ledger)
{
    add(label, ledger, 1);
}

void
CostReport::add(const std::string &label,
                const serving::CostLedger &ledger, std::int64_t count)
{
    Row &row = rowFor(label);
    row.ledger += ledger;
    row.count += count;
}

serving::CostLedger
CostReport::total() const
{
    serving::CostLedger sum;
    for (const Row &row : rows_)
        sum += row.ledger;
    return sum;
}

const serving::CostLedger &
CostReport::ledger(const std::string &label) const
{
    for (const Row &row : rows_) {
        if (row.label == label)
            return row.ledger;
    }
    AGENTSIM_PANIC("cost report has no row labelled '%s'",
                   label.c_str());
}

Table
CostReport::render(const std::string &title) const
{
    Table table(title);
    table.header({"label", "n", "gpu_s", "prefill_s", "decode_s",
                  "wasted_s", "saved_s", "queue_s", "kv_blk_s",
                  "energy_wh"});
    auto emit = [&](const std::string &label,
                    const serving::CostLedger &l, std::int64_t n) {
        table.row({label, fmtCount(static_cast<double>(n)),
                   fmtDouble(l.gpuSeconds(), 3),
                   fmtDouble(l.prefillGpuSeconds, 3),
                   fmtDouble(l.decodeGpuSeconds, 3),
                   fmtDouble(l.wastedGpuSeconds, 3),
                   fmtDouble(l.savedPrefillSeconds, 3),
                   fmtDouble(l.queueSeconds, 3),
                   fmtDouble(l.kvBlockSeconds, 1),
                   fmtDouble(energy::wattHours(l.energyJoules), 3)});
    };
    std::int64_t total_count = 0;
    for (const Row &row : rows_) {
        emit(row.label, row.ledger, row.count);
        total_count += row.count;
    }
    emit("TOTAL", total(), total_count);
    for (const auto &[cause, seconds] : recovered_) {
        // Footer: work a resume did NOT recompute, by failure cause —
        // reads against TOTAL's gpu_s (what was actually paid).
        table.row({"RECOVERED (" + cause + ")", "-",
                   fmtDouble(seconds, 3), "-", "-", "-", "-", "-", "-",
                   "-"});
    }
    if (provisioned_ > 0.0) {
        const double busy = total().gpuSeconds();
        table.row({"PROVISIONED", "-", fmtDouble(provisioned_, 3), "-",
                   "-", "-", "-", "-", "-",
                   sim::strfmt("util %.0f%%",
                               100.0 * busy /
                                   std::max(provisioned_, 1e-12))});
    }
    return table;
}

void
CostReport::setProvisionedGpuSeconds(double seconds)
{
    AGENTSIM_ASSERT(seconds >= 0.0,
                    "negative provisioned GPU seconds");
    provisioned_ = seconds;
}

void
CostReport::addRecoveredGpuSeconds(const std::string &cause,
                                   double seconds)
{
    AGENTSIM_ASSERT(seconds >= 0.0, "negative recovered GPU seconds");
    for (auto &[name, total] : recovered_) {
        if (name == cause) {
            total += seconds;
            return;
        }
    }
    recovered_.emplace_back(cause, seconds);
}

double
CostReport::recoveredGpuSeconds() const
{
    double sum = 0.0;
    for (const auto &[name, seconds] : recovered_)
        sum += seconds;
    return sum;
}

void
CostReport::exportMetrics(telemetry::MetricsRegistry &registry,
                          sim::Tick now) const
{
    auto emit = [&](const std::string &suffix,
                    const serving::CostLedger &l) {
        auto set = [&](const char *family, const char *help,
                       double value) {
            registry.counter(sim::strfmt("%s%s_total", family,
                                         suffix.c_str()),
                             help)
                .set(value);
        };
        set("agentsim_cost_gpu_seconds", "Attributed GPU seconds",
            l.gpuSeconds());
        set("agentsim_cost_prefill_gpu_seconds",
            "Attributed prefill GPU seconds", l.prefillGpuSeconds);
        set("agentsim_cost_decode_gpu_seconds",
            "Attributed decode GPU seconds", l.decodeGpuSeconds);
        set("agentsim_cost_wasted_gpu_seconds",
            "GPU seconds re-prefilling preempted work",
            l.wastedGpuSeconds);
        set("agentsim_cost_saved_prefill_seconds",
            "Prefill seconds avoided by prefix caching",
            l.savedPrefillSeconds);
        set("agentsim_cost_queue_seconds",
            "Seconds spent waiting for admission", l.queueSeconds);
        set("agentsim_cost_kv_block_seconds",
            "KV occupancy integral (blocks x seconds)",
            l.kvBlockSeconds);
        set("agentsim_cost_energy_joules",
            "Attributed busy energy", l.energyJoules);
    };
    emit("", total());
    for (const Row &row : rows_)
        emit("_" + sanitizeMetricLabel(row.label), row.ledger);
    for (const auto &[cause, seconds] : recovered_) {
        registry
            .counter(sim::strfmt(
                         "agentsim_cost_recovered_gpu_seconds_%s_"
                         "total",
                         sanitizeMetricLabel(cause).c_str()),
                     "GPU seconds checkpoint-resume saved from "
                     "recomputation")
            .set(seconds);
    }
    if (provisioned_ > 0.0) {
        registry
            .counter("agentsim_cost_provisioned_gpu_seconds_total",
                     "GPU seconds provisioned (busy or idle, "
                     "including node warm-up)")
            .set(provisioned_);
        registry
            .gauge("agentsim_cost_provisioned_utilization",
                   "Attributed busy GPU seconds over provisioned")
            .set(now, total().gpuSeconds() / provisioned_);
    }
}

void
CostReport::clear()
{
    rows_.clear();
    provisioned_ = 0.0;
    recovered_.clear();
}

std::string
sanitizeMetricLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    bool last_underscore = false;
    for (char c : label) {
        const auto uc = static_cast<unsigned char>(c);
        if (std::isalnum(uc)) {
            out.push_back(
                static_cast<char>(std::tolower(uc)));
            last_underscore = false;
        } else if (!last_underscore && !out.empty()) {
            out.push_back('_');
            last_underscore = true;
        }
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out.empty() ? "unnamed" : out;
}

} // namespace agentsim::core
