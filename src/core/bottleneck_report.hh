/**
 * @file
 * Bottleneck report: the read side of the causal span subsystem
 * (telemetry/span.hh). Renders the per-workflow blame aggregates —
 * mean and p95 seconds per category — as a console table, exports
 * them as agentsim_blame_* metric families, and re-emits the retained
 * tail-exemplar span trees as a Perfetto-compatible async track so
 * "why was the p95 slow" can be answered visually.
 */

#ifndef AGENTSIM_CORE_BOTTLENECK_REPORT_HH
#define AGENTSIM_CORE_BOTTLENECK_REPORT_HH

#include <string>

#include "core/table.hh"
#include "telemetry/registry.hh"
#include "telemetry/span.hh"
#include "telemetry/trace_sink.hh"

namespace agentsim::core
{

/**
 * Blame table: one row per workflow label with request count, mean
 * and p95 latency, and mean/p95 seconds for every blame category.
 */
Table renderBlameTable(const telemetry::SpanCollector &spans,
                       const std::string &title = "Blame report");

/**
 * Export aggregates as metrics:
 *   agentsim_blame_mean_<category>_seconds_<label>
 *   agentsim_blame_p95_<category>_seconds_<label>
 *   agentsim_blame_requests_<label>
 * plus collector totals (agentsim_blame_requests_total,
 * agentsim_blame_exemplars_retained / _evicted).
 */
void exportBlameMetrics(const telemetry::SpanCollector &spans,
                        telemetry::MetricsRegistry &registry,
                        sim::Tick now);

/**
 * Emit the retained tail exemplars on the trace's kSpans track as
 * nestable async lanes (one id per exemplar). Sibling fan-out spans
 * genuinely overlap, which async events render correctly; each span
 * carries kind/category args and critical-path members are marked.
 */
void emitSpanExemplars(const telemetry::SpanCollector &spans,
                       telemetry::TraceSink &trace);

} // namespace agentsim::core

#endif // AGENTSIM_CORE_BOTTLENECK_REPORT_HH
