#include "core/cluster.hh"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>

#include "agents/accuracy.hh"
#include "core/bottleneck_report.hh"
#include "sim/logging.hh"
#include "workload/token_stream.hh"
#include "workload/toolset_factory.hh"

namespace agentsim::core
{

double
ArrivalPattern::rateAt(double t_seconds, double constant_qps) const
{
    if (kind == Kind::Constant)
        return constant_qps;
    const double cycles = t_seconds / periodSeconds;
    const double phase = cycles - std::floor(cycles);
    // Raised cosine: trough at phase 0, crest at phase 0.5.
    double rate = baseQps + (peakQps - baseQps) * 0.5 *
                                (1.0 - std::cos(2.0 * std::numbers::pi *
                                                phase));
    if (burstDurationSeconds > 0.0) {
        const double into =
            (phase - burstStartFraction) * periodSeconds;
        if (into >= 0.0 && into < burstDurationSeconds)
            rate *= burstMultiplier;
    }
    return rate;
}

double
ArrivalPattern::maxQps(double constant_qps) const
{
    if (kind == Kind::Constant)
        return constant_qps;
    return peakQps *
           (burstDurationSeconds > 0.0 ? burstMultiplier : 1.0);
}

std::string_view
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:
        return "round-robin";
      case RoutePolicy::LeastLoaded:
        return "least-loaded";
      case RoutePolicy::CacheAffinity:
        return "cache-affinity";
    }
    AGENTSIM_PANIC("unknown routing policy");
}

namespace
{

/** One serving node: an engine plus its per-benchmark tool belts. */
struct Node
{
    std::unique_ptr<serving::LlmEngine> engine;
    std::vector<std::unique_ptr<tools::ToolSet>> toolsByBenchmark;
    int assigned = 0;
    /** Part of the paid-for fleet (active, warming or chaos-downed —
     *  as opposed to parked standby capacity). */
    bool provisioned = false;
    sim::Tick provisionedSince = 0;
    /** Settled node-seconds from earlier provisioned episodes. */
    double provisionedSeconds = 0.0;

    tools::ToolSet &
    toolsFor(workload::Benchmark bench)
    {
        return *toolsByBenchmark[static_cast<std::size_t>(bench)];
    }

    /** In-flight load proxy: running batch + waiting queue. */
    std::size_t
    load() const
    {
        return engine->runningCount() + engine->queueDepth();
    }
};

struct ClusterState
{
    ClusterResult result;
    sim::Tick firstSubmit = -1;
    sim::Tick lastFinish = 0;
    /** Workload drained; periodic coroutines exit at next wake. */
    bool stopped = false;

    /** Flight recorder tee for deadline-miss spike detection (null
     *  unless a recorder is attached). */
    telemetry::FlightRecorder *recorder = nullptr;

    /** Episode checkpoint store (null unless checkpointing is
     *  enabled — workers then journal and resume through it). */
    serving::CheckpointStore *checkpoints = nullptr;

    /** Elasticity wiring (null unless the autoscaler is enabled). */
    AutoscalerController *autoscaler = nullptr;
    AdmissionController *admission = nullptr;
    /** Nodes currently serving traffic (not warming, not standby). */
    int activeNodes = 0;
    /** Scaled-out nodes still paying their warm-up. */
    int warmingNodes = 0;
    /** One scale-in (drain + migrate) at a time. */
    bool scaleInInFlight = false;
    /** Keeps in-flight scale-out/scale-in coroutine frames alive. */
    std::vector<sim::Task<void>> scaleOps;
};

/** Stable identity of a workload component (for affinity hashing). */
std::uint64_t
workloadKey(const WorkloadSpec &spec)
{
    if (spec.chatbot)
        return sim::fnv1a("chatbot");
    return sim::hashCombine(
        sim::fnv1a(agents::agentName(spec.agent)),
        sim::fnv1a(workload::benchmarkName(spec.bench)));
}

/**
 * Routing state shared by the driver and retrying workers. Nodes that
 * are not accepting (crashed or draining) are never picked, and nodes
 * whose circuit breaker is Open are skipped while accepting peers
 * exist; when every accepting node is breaker-denied the router fails
 * open rather than stalling the client. pick() returns -1 only when
 * the whole cluster is down and the caller should back off and
 * re-probe.
 */
struct Router
{
    RoutePolicy policy;
    std::vector<Node> &nodes;
    HealthRegistry &health;
    int rrNext = 0;

    bool
    accepting(int i) const
    {
        return nodes[static_cast<std::size_t>(i)].engine->accepting();
    }

    /** Accepting, and (when @p use_breakers) breaker-admitted. */
    bool
    available(int i, sim::Tick now, bool use_breakers)
    {
        if (!accepting(i))
            return false;
        return !use_breakers ||
               health.allows(static_cast<std::size_t>(i), now);
    }

    /** Least-loaded available node, or -1 if none qualifies. */
    int
    leastLoadedAvailable(sim::Tick now, bool use_breakers)
    {
        const int n = static_cast<int>(nodes.size());
        int best = -1;
        for (int i = 0; i < n; ++i) {
            if (!available(i, now, use_breakers))
                continue;
            if (best < 0 ||
                nodes[static_cast<std::size_t>(i)].load() <
                    nodes[static_cast<std::size_t>(best)].load()) {
                best = i;
            }
        }
        return best;
    }

    int
    pickFiltered(const WorkloadSpec &spec, sim::Tick now,
                 bool use_breakers)
    {
        const int n = static_cast<int>(nodes.size());
        switch (policy) {
          case RoutePolicy::RoundRobin: {
              for (int step = 0; step < n; ++step) {
                  const int candidate = rrNext;
                  rrNext = (rrNext + 1) % n;
                  if (available(candidate, now, use_breakers))
                      return candidate;
              }
              return -1;
          }
          case RoutePolicy::LeastLoaded:
            return leastLoadedAvailable(now, use_breakers);
          case RoutePolicy::CacheAffinity: {
              // Agent-aware: chatbot traffic has near-zero
              // cross-request prefix reuse, so it simply
              // load-balances; agent requests go to their workflow's
              // home node unless it is down or clearly overloaded
              // relative to the cluster minimum.
              const int least = leastLoadedAvailable(now, use_breakers);
              if (least < 0 || spec.chatbot)
                  return least;
              const int home = static_cast<int>(
                  workloadKey(spec) % static_cast<std::uint64_t>(n));
              if (!available(home, now, use_breakers))
                  return least;
              const std::size_t min_load =
                  nodes[static_cast<std::size_t>(least)].load();
              if (nodes[static_cast<std::size_t>(home)].load() >
                  min_load + 6) {
                  return least;
              }
              return home;
          }
        }
        AGENTSIM_PANIC("unknown routing policy");
    }

    int
    pick(const WorkloadSpec &spec, sim::Tick now)
    {
        int target = pickFiltered(spec, now, /*use_breakers=*/true);
        if (target >= 0)
            return target;
        // Every accepting node is breaker-denied (or none accepts):
        // fail open so a cluster-wide brown patch degrades to plain
        // availability routing instead of livelock.
        target = pickFiltered(spec, now, /*use_breakers=*/false);
        if (target >= 0)
            health.noteFailOpenPick();
        return target;
    }

    /**
     * Target for a live migration off @p source: the least-loaded
     * accepting peer, preferring breaker-admitted ones. -1 when no
     * other node can take the request.
     */
    int
    pickForImport(std::size_t source, sim::Tick now)
    {
        int best = -1;
        for (int pass = 0; pass < 2 && best < 0; ++pass) {
            const bool use_breakers = pass == 0;
            const int n = static_cast<int>(nodes.size());
            for (int i = 0; i < n; ++i) {
                if (i == static_cast<int>(source) ||
                    !available(i, now, use_breakers)) {
                    continue;
                }
                if (best < 0 ||
                    nodes[static_cast<std::size_t>(i)].load() <
                        nodes[static_cast<std::size_t>(best)].load()) {
                    best = i;
                }
            }
        }
        return best;
    }
};

void
noteCompletion(ClusterState &state, sim::Tick submit, sim::Tick finish,
               std::size_t workload_index)
{
    if (state.firstSubmit < 0)
        state.firstSubmit = submit;
    state.lastFinish = std::max(state.lastFinish, finish);
    const double seconds = sim::toSeconds(finish - submit);
    state.result.e2eSeconds.add(seconds);
    state.result.perWorkloadSeconds[workload_index].add(seconds);
    ++state.result.completed;
}

void
noteFailure(ClusterState &state, sim::Tick submit, sim::Tick finish,
            bool timed_out)
{
    if (state.firstSubmit < 0)
        state.firstSubmit = submit;
    state.lastFinish = std::max(state.lastFinish, finish);
    ++state.result.failed;
    if (timed_out) {
        ++state.result.timedOut;
        if (state.recorder != nullptr)
            state.recorder->noteDeadlineMiss(finish);
    }
}

/**
 * Shared retry bookkeeping: route (re-probing while the whole cluster
 * is down), count failovers, emit the failover trace instant.
 * @return the chosen node index.
 */
sim::Task<int>
routeWithFailover(const ClusterConfig &config, sim::Simulation &sim,
                  Router &router, const WorkloadSpec &spec,
                  std::uint64_t index, int prev_node,
                  ClusterState &state)
{
    int target;
    while ((target = router.pick(spec, sim.now())) < 0) {
        // Every node is down; poll until a restart brings one back.
        co_await sim::delaySec(sim, config.retry.allDownPollSeconds);
    }
    if (prev_node >= 0 && target != prev_node) {
        ++state.result.failovers;
        // Attribute why the previous node was avoided: gone entirely,
        // breaker-denied, or merely out-loaded by a peer. state() is
        // a pure query — unlike allows() it cannot consume a
        // half-open probe slot.
        if (!router.accepting(prev_node)) {
            ++state.result.failoversOffline;
        } else if (router.health.state(static_cast<std::size_t>(
                       prev_node)) == BreakerState::Open) {
            ++state.result.failoversBreaker;
        } else {
            ++state.result.failoversRebalance;
        }
        if (config.traceSink != nullptr) {
            config.traceSink->instant(telemetry::TracePid::kAgents,
                                      index, "failover", "cluster",
                                      sim.now());
        }
    }
    co_return target;
}

/** Jittered exponential backoff before retry @p attempt (1-based). */
double
retrySleepSeconds(const RetryPolicy &retry, int attempt, sim::Rng &rng)
{
    return retry.backoffSeconds(attempt) *
           (1.0 + rng.uniform(0.0, retry.jitter));
}

/**
 * Predictive admission gate for one routed attempt: reject-fast when
 * the projected queue delay on the chosen node would eat the
 * request's deadline budget. A reject is retryable (the client backs
 * off and re-routes) and is *not* reported to the node's breaker —
 * the node is overloaded, not broken. @return true to dispatch.
 */
bool
admitAttempt(const ClusterConfig &config, sim::Simulation &sim,
             const Node &node, std::uint64_t index,
             double budget_seconds, ClusterState &state)
{
    if (state.admission == nullptr)
        return true;
    if (state.admission->admit(node.engine->queueDepth(),
                               std::max(1, state.activeNodes),
                               budget_seconds, sim.now())) {
        return true;
    }
    ++state.result.admissionRejects;
    if (config.traceSink != nullptr) {
        config.traceSink->instant(telemetry::TracePid::kResilience,
                                  index, "admission_reject",
                                  "autoscale", sim.now());
    }
    return false;
}

sim::Task<void>
clusterAgentWorker(const ClusterConfig &config, sim::Simulation &sim,
                   std::vector<Node> &nodes, Router &router,
                   BrownoutController *brownout,
                   const WorkloadSpec &spec,
                   std::size_t workload_index, std::uint64_t index,
                   ClusterState &state)
{
    workload::TaskGenerator gen(spec.bench, config.seed);
    sim::Rng backoff(config.seed, "cluster.retry", index);
    const sim::Tick submit = sim.now();
    telemetry::SpanRef root;
    if (config.spans != nullptr) {
        root = config.spans->beginRequest(
            index,
            std::string(workload::benchmarkName(spec.bench)) + "/" +
                std::string(agents::agentName(spec.agent)),
            submit);
    }
    telemetry::SpanRef prev_attempt;
    int prev_node = -1;
    int attempt = 0;
    /** Checkpointed GPU-seconds already counted as recovered for this
     *  episode (a later crash only credits the delta). */
    double recovered_credit = 0.0;
    for (;;) {
        // A retry that finds a journaled snapshot is a resume, not a
        // from-scratch attempt; blame tooling sees the difference.
        const bool resuming = state.checkpoints != nullptr &&
                              attempt > 0 &&
                              state.checkpoints->find(index) != nullptr;
        telemetry::SpanRef attempt_span;
        if (config.spans != nullptr) {
            attempt_span = config.spans->child(
                root, telemetry::SpanKind::Attempt,
                resuming ? "resume" : "attempt", sim.now());
            config.spans->link(attempt_span, prev_attempt);
        }
        const int target = co_await routeWithFailover(
            config, sim, router, spec, index, prev_node, state);
        prev_node = target;
        ++attempt;
        Node &node = nodes[static_cast<std::size_t>(target)];

        // Agent rollouts have no end-to-end deadline; their admission
        // budget is the per-LLM-call deadline (the first call would
        // wait through the same queue).
        if (!admitAttempt(config, sim, node, index,
                          spec.agentConfig.llmDeadlineSeconds, state)) {
            if (config.spans != nullptr)
                config.spans->end(attempt_span, sim.now());
            if (attempt >= config.retry.maxAttempts) {
                if (state.checkpoints != nullptr)
                    state.checkpoints->erase(index);
                if (config.spans != nullptr)
                    config.spans->finishRequest(root, sim.now(), true);
                noteFailure(state, submit, sim.now(), false);
                co_return;
            }
            prev_attempt = attempt_span;
            ++state.result.retries;
            ++state.result.retriesAdmission;
            telemetry::SpanRef sleep_span;
            if (config.spans != nullptr) {
                sleep_span = config.spans->child(
                    root, telemetry::SpanKind::Backoff, "backoff",
                    sim.now());
            }
            co_await sim::delaySec(
                sim,
                retrySleepSeconds(config.retry, attempt, backoff));
            if (config.spans != nullptr)
                config.spans->end(sleep_span, sim.now());
            continue;
        }
        ++node.assigned;

        agents::AgentContext ctx;
        ctx.sim = &sim;
        ctx.engine = node.engine.get();
        ctx.tools = &node.toolsFor(spec.bench);
        ctx.task = gen.sample(index);
        ctx.config = spec.agentConfig;
        // Under brownout the dispatcher trims test-time-scaling width
        // and may downgrade deadline-less rollouts to a cheaper
        // workflow — degraded service instead of shed service.
        agents::AgentKind kind = spec.agent;
        if (brownout != nullptr)
            brownout->apply(kind, ctx.config, spec.bench);
        ctx.config.modelQuality =
            agents::modelQuality(config.engineConfig.model.name);
        ctx.kind = kind;
        ctx.seed = config.seed;
        ctx.traceSink = config.traceSink;
        ctx.traceTid = index;
        if (config.spans != nullptr) {
            ctx.spans = config.spans;
            ctx.spanParent = attempt_span;
        }

        // Episode recovery: hand the workflow the store and, on a
        // retry, the last journaled snapshot — unless brownout has
        // since downgraded the workflow kind, in which case the
        // journal no longer matches the code that would replay it.
        if (state.checkpoints != nullptr) {
            ctx.checkpoints = state.checkpoints;
            ctx.episodeKey = index;
            const serving::EpisodeCheckpoint *ckpt =
                state.checkpoints->find(index);
            if (ckpt != nullptr &&
                ckpt->kindTag != static_cast<int>(kind)) {
                state.checkpoints->erase(index);
                ckpt = nullptr;
            }
            ctx.resumeFrom = ckpt;
        }
        if (ctx.resumeFrom != nullptr) {
            auto &rec = state.result.recovery;
            ++rec.resumes;
            // Warm the conversation-prefix KV on the landing node —
            // or recompute it cold during the first prefill,
            // whichever the priced estimate says is cheaper
            // (migration-style wire vs PerfModel prefill).
            const auto &chain = ctx.resumeFrom->chainTokens;
            bool restored = false;
            if (!chain.empty()) {
                serving::LlmEngine &eng = *node.engine;
                const double wire_seconds =
                    static_cast<double>(chain.size()) *
                    agents::kvBytesPerToken(eng) /
                    config.migrationBandwidth;
                const double recompute_seconds =
                    eng.perfModel().prefillSeconds(
                        static_cast<std::int64_t>(chain.size()));
                if (wire_seconds < recompute_seconds) {
                    const std::int64_t blocks =
                        eng.preloadPrefix(chain);
                    if (blocks >= 0) {
                        // Pay wire time only for the blocks actually
                        // populated (the rest were cache-resident).
                        const double actual =
                            static_cast<double>(blocks) *
                            static_cast<double>(eng.blockBytes()) /
                            config.migrationBandwidth;
                        telemetry::SpanRef restore_span;
                        if (config.spans != nullptr) {
                            restore_span = config.spans->child(
                                attempt_span,
                                telemetry::SpanKind::KvRestore,
                                "checkpoint.restore", sim.now());
                        }
                        if (actual > 0.0)
                            co_await sim::delaySec(sim, actual);
                        if (config.spans != nullptr) {
                            config.spans->end(restore_span,
                                              sim.now());
                        }
                        rec.restoreSeconds += actual;
                        ++rec.kvRestores;
                        restored = true;
                    }
                }
            }
            if (!restored)
                ++rec.coldFallbacks;
            if (config.traceSink != nullptr) {
                config.traceSink->instant(telemetry::TracePid::kAgents,
                                          index, "resume", "cluster",
                                          sim.now());
            }
        }

        auto agent = agents::makeAgent(kind);
        bool retry_pending = false;
        try {
            agents::AgentResult result = co_await agent->run(ctx);
            if (config.spans != nullptr) {
                config.spans->end(attempt_span, sim.now());
                config.spans->finishRequest(root, sim.now());
            }
            if (state.autoscaler != nullptr && result.llmCalls > 0) {
                state.autoscaler->recordQueueDelay(
                    result.queueSeconds /
                    static_cast<double>(result.llmCalls));
            }
            if (state.admission != nullptr)
                state.admission->recordCompletion(sim.now());
            router.health.reportSuccess(
                static_cast<std::size_t>(target), sim.now());
            state.result.episodeCost += result.cost;
            if (state.checkpoints != nullptr)
                state.checkpoints->erase(index);
            noteCompletion(state, submit, sim.now(), workload_index);
            co_return;
        } catch (const agents::DeadlineExceededError &) {
            // The SLO is already blown; a retry cannot un-miss it.
            if (config.spans != nullptr) {
                config.spans->end(attempt_span, sim.now());
                config.spans->finishRequest(root, sim.now(), true);
            }
            router.health.reportFailure(
                static_cast<std::size_t>(target), sim.now());
            if (state.checkpoints != nullptr)
                state.checkpoints->erase(index);
            noteFailure(state, submit, sim.now(), true);
            co_return;
        } catch (const agents::NodeFailureError &e) {
            if (config.spans != nullptr)
                config.spans->end(attempt_span, sim.now());
            router.health.reportFailure(
                static_cast<std::size_t>(target), sim.now());
            if (attempt >= config.retry.maxAttempts) {
                if (state.checkpoints != nullptr)
                    state.checkpoints->erase(index);
                if (config.spans != nullptr)
                    config.spans->finishRequest(root, sim.now(), true);
                noteFailure(state, submit, sim.now(), false);
                co_return;
            }
            // Recovery accounting for the upcoming retry: work since
            // the last snapshot is recomputed (lost); the snapshotted
            // share survives (recovered — credited once per episode,
            // later crashes only add the delta). With checkpointing
            // off this degrades to lost = everything invested.
            auto &rec = state.result.recovery;
            const serving::EpisodeCheckpoint *ckpt =
                state.checkpoints != nullptr
                    ? state.checkpoints->find(index)
                    : nullptr;
            const double recoverable =
                ckpt != nullptr ? ckpt->gpuSeconds : 0.0;
            rec.lostGpuSeconds +=
                std::max(0.0, e.investedGpuSeconds - recoverable);
            const double newly =
                std::max(0.0, recoverable - recovered_credit);
            rec.recoveredGpuSeconds += newly;
            if (e.shed)
                rec.recoveredShedGpuSeconds += newly;
            else
                rec.recoveredCrashGpuSeconds += newly;
            recovered_credit = recoverable;
            if (e.shed)
                ++state.result.retriesShed;
            else
                ++state.result.retriesCrash;
            retry_pending = true; // co_await is illegal in a handler
        }
        if (retry_pending) {
            prev_attempt = attempt_span;
            ++state.result.retries;
            telemetry::SpanRef sleep_span;
            if (config.spans != nullptr) {
                sleep_span = config.spans->child(
                    root, telemetry::SpanKind::Backoff, "backoff",
                    sim.now());
            }
            co_await sim::delaySec(
                sim,
                retrySleepSeconds(config.retry, attempt, backoff));
            if (config.spans != nullptr)
                config.spans->end(sleep_span, sim.now());
            // Without a checkpoint the rollout restarts from scratch
            // on the next pick (cold workflow prefix on a different
            // node); with one, the next attempt resumes at the last
            // journaled iteration.
        }
    }
}

sim::Task<void>
clusterChatWorker(const ClusterConfig &config, sim::Simulation &sim,
                  std::vector<Node> &nodes, Router &router,
                  const WorkloadSpec &spec,
                  std::size_t workload_index, std::uint64_t index,
                  ClusterState &state)
{
    const workload::ShareGptSampler sampler(config.seed);
    const workload::ChatRequest chat = sampler.sample(index);
    constexpr std::int64_t system_tokens = 40;
    std::vector<kv::TokenId> prompt = workload::makeTokens(
        workload::streamId(config.seed, "chat.system"), system_tokens);
    const auto convo = workload::makeTokens(
        workload::substream(workload::streamId(config.seed,
                                               "chat.convo"),
                            index),
        std::max<std::int64_t>(1, chat.promptTokens - system_tokens));
    prompt.insert(prompt.end(), convo.begin(), convo.end());

    sim::Rng backoff(config.seed, "cluster.retry", index);
    const sim::Tick submit = sim.now();
    telemetry::SpanRef root;
    if (config.spans != nullptr)
        root = config.spans->beginRequest(index, "ShareGPT/chat",
                                          submit);
    telemetry::SpanRef prev_attempt;
    int prev_node = -1;
    int attempt = 0;
    for (;;) {
        telemetry::SpanRef attempt_span;
        if (config.spans != nullptr) {
            attempt_span = config.spans->child(
                root, telemetry::SpanKind::Attempt, "attempt",
                sim.now());
            config.spans->link(attempt_span, prev_attempt);
        }
        const int target = co_await routeWithFailover(
            config, sim, router, spec, index, prev_node, state);
        prev_node = target;
        ++attempt;
        Node &node = nodes[static_cast<std::size_t>(target)];

        const double budget =
            config.chatDeadlineSeconds > 0.0
                ? config.chatDeadlineSeconds -
                      sim::toSeconds(sim.now() - submit)
                : 0.0;
        bool admitted =
            admitAttempt(config, sim, node, index, budget, state);
        serving::GenResult gen;
        if (admitted) {
            ++node.assigned;

            serving::GenRequest req;
            req.prompt = prompt;
            req.maxNewTokens = chat.outputTokens;
            req.sessionId = sim::hashCombine(config.seed, index);
            req.deadlineSeconds = config.chatDeadlineSeconds;
            req.parentSpan = attempt_span;
            gen = co_await node.engine->generate(std::move(req));
        }
        if (config.spans != nullptr)
            config.spans->end(attempt_span, sim.now());

        if (admitted && (gen.ok() || gen.truncated)) {
            if (config.spans != nullptr)
                config.spans->finishRequest(root, sim.now());
            if (state.autoscaler != nullptr)
                state.autoscaler->recordQueueDelay(gen.queueSeconds);
            if (state.admission != nullptr)
                state.admission->recordCompletion(sim.now());
            router.health.reportSuccess(
                static_cast<std::size_t>(target), sim.now());
            noteCompletion(state, submit, sim.now(), workload_index);
            co_return;
        }
        if (admitted && (gen.timedOut || gen.failed)) {
            if (gen.timedOut) {
                // A context-window failure is the request's fault, a
                // deadline miss is (partly) the node's: only the
                // latter feeds the breaker.
                router.health.reportFailure(
                    static_cast<std::size_t>(target), sim.now());
            }
            if (config.spans != nullptr)
                config.spans->finishRequest(root, sim.now(), true);
            noteFailure(state, submit, sim.now(), gen.timedOut);
            co_return;
        }
        // Retryable: rejected by the admission gate, shed at the
        // engine or lost to a node failure.
        if (admitted) {
            router.health.reportFailure(
                static_cast<std::size_t>(target), sim.now());
        }
        if (attempt >= config.retry.maxAttempts) {
            if (config.spans != nullptr)
                config.spans->finishRequest(root, sim.now(), true);
            noteFailure(state, submit, sim.now(), false);
            co_return;
        }
        prev_attempt = attempt_span;
        ++state.result.retries;
        if (!admitted)
            ++state.result.retriesAdmission;
        else if (gen.shed)
            ++state.result.retriesShed;
        else
            ++state.result.retriesCrash;
        telemetry::SpanRef sleep_span;
        if (config.spans != nullptr) {
            sleep_span = config.spans->child(
                root, telemetry::SpanKind::Backoff, "backoff",
                sim.now());
        }
        co_await sim::delaySec(
            sim, retrySleepSeconds(config.retry, attempt, backoff));
        if (config.spans != nullptr)
            config.spans->end(sleep_span, sim.now());
    }
}

/**
 * One rolling-restart visit to node @p index: crash it (Crash mode)
 * or drain it, migrating the leftovers to the least-loaded accepting
 * peer (DrainMigrate) or cancelling them (Drain); then wait out the
 * downtime and restart. Skips nodes the chaos injector already holds
 * down — the injector's driver owns that restart.
 */
sim::Task<void>
maintainNode(const ClusterConfig &config, sim::Simulation &sim,
             std::vector<Node> &nodes, Router &router,
             std::size_t index)
{
    serving::LlmEngine &eng = *nodes[index].engine;
    const sim::MaintenanceMode mode = config.maintenance.mode;
    if (mode == sim::MaintenanceMode::Crash) {
        if (!eng.online() || eng.draining())
            co_return;
        eng.crash();
        co_await sim::delaySec(sim,
                               config.maintenance.downtimeSeconds);
        if (!eng.online())
            eng.restart();
        co_return;
    }

    if (!eng.online() || eng.draining())
        co_return;
    serving::DrainOutcome outcome = co_await eng.drain(
        config.maintenance.drainDeadlineSeconds,
        mode == sim::MaintenanceMode::DrainMigrate);
    if (outcome.crashed) {
        // The injector crashed the node mid-drain and will restart it.
        co_return;
    }
    for (auto &leftover : outcome.leftovers) {
        const int target = router.pickForImport(index, sim.now());
        if (target >= 0) {
            nodes[static_cast<std::size_t>(target)]
                .engine->importRequest(std::move(leftover),
                                       config.migrationBandwidth);
        } else {
            // Nowhere to land it: resolve with crash semantics so the
            // client's retry loop takes over.
            eng.abortMigration(std::move(leftover));
        }
    }
    co_await sim::delaySec(sim, config.maintenance.downtimeSeconds);
    if (!eng.online())
        eng.restart();
}

/**
 * Bring standby node @p index into service: pay the simulated warm-up
 * (instance boot + model-weight load) before the engine restarts,
 * then enter routing through a HalfOpen breaker. Provisioned time —
 * and therefore cost — starts at the scale-out decision, not at
 * readiness: capacity is paid for while it boots.
 */
sim::Task<void>
scaleOutNode(const ClusterConfig &config, sim::Simulation &sim,
             std::vector<Node> &nodes, Router &router,
             std::size_t index, double warmup_seconds,
             ClusterState &state)
{
    Node &node = nodes[index];
    AGENTSIM_ASSERT(!node.provisioned,
                    "scale-out of an already provisioned node");
    node.provisioned = true;
    node.provisionedSince = sim.now();
    ++state.warmingNodes;
    state.result.warmupSecondsTotal += warmup_seconds;
    AGENTSIM_INFORM("autoscaler: node %zu booting (%.1fs warm-up)",
                    index, warmup_seconds);
    if (config.traceSink != nullptr) {
        config.traceSink->instant(telemetry::TracePid::kResilience,
                                  index, "node_boot", "autoscale",
                                  sim.now());
    }
    co_await sim::delaySec(sim, warmup_seconds);
    --state.warmingNodes;
    if (state.stopped) {
        // The run ended mid-boot: the capacity was still paid for,
        // but the node never takes traffic.
        node.provisioned = false;
        node.provisionedSeconds +=
            sim::toSeconds(sim.now() - node.provisionedSince);
        co_return;
    }
    node.engine->restart();
    router.health.markProvisioned(index, sim.now());
    ++state.activeNodes;
    state.result.peakActiveNodes =
        std::max(state.result.peakActiveNodes, state.activeNodes);
    if (state.autoscaler != nullptr)
        state.autoscaler->noteNodeReady(sim.now());
}

/**
 * Decommission node @p index losslessly: graceful drain with the
 * leftovers live-migrated to the least-loaded accepting peer (the
 * same machinery as DrainMigrate maintenance — never the crash path,
 * so scale-in torches no in-flight prefill). The node leaves the
 * active count at the drain decision (admissions close immediately)
 * and stops being billed once the drain completes.
 */
sim::Task<void>
scaleInNode(const ClusterConfig &config, sim::Simulation &sim,
            std::vector<Node> &nodes, Router &router,
            std::size_t index, ClusterState &state)
{
    Node &node = nodes[index];
    serving::LlmEngine &eng = *node.engine;
    if (!eng.online() || eng.draining()) {
        // Chaos or maintenance got there first; that driver owns the
        // node's lifecycle now.
        state.scaleInInFlight = false;
        co_return;
    }
    --state.activeNodes;
    serving::DrainOutcome outcome = co_await eng.drain(
        config.autoscaler.drainDeadlineSeconds,
        /*export_leftovers=*/true);
    if (outcome.crashed) {
        // Crashed mid-drain: the fault injector restarts it later, so
        // the node stays provisioned and returns to service.
        ++state.activeNodes;
        state.scaleInInFlight = false;
        co_return;
    }
    for (auto &leftover : outcome.leftovers) {
        const int target = router.pickForImport(index, sim.now());
        if (target >= 0) {
            nodes[static_cast<std::size_t>(target)]
                .engine->importRequest(std::move(leftover),
                                       config.migrationBandwidth);
        } else {
            // Nowhere to land it: crash semantics, client retries.
            eng.abortMigration(std::move(leftover));
        }
    }
    // drain() left the engine powered down; settle the capacity bill.
    node.provisioned = false;
    node.provisionedSeconds +=
        sim::toSeconds(sim.now() - node.provisionedSince);
    state.scaleInInFlight = false;
}

/** Standby node to scale out next, or -1 when the pool is exhausted. */
int
findStandbyNode(const std::vector<Node> &nodes)
{
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i].provisioned)
            return static_cast<int>(i);
    }
    return -1;
}

/**
 * Scale-in victim: the least-loaded provisioned node that is online
 * and not draining (migrating the fewest requests), or -1.
 */
int
pickScaleInVictim(const std::vector<Node> &nodes)
{
    int best = -1;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const Node &node = nodes[i];
        if (!node.provisioned || !node.engine->accepting())
            continue;
        if (best < 0 ||
            node.load() <
                nodes[static_cast<std::size_t>(best)].load()) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

/**
 * Periodic pressure monitor: samples per-node queue depth into the
 * health EWMAs, feeds the brownout controller the cluster-max KV
 * utilization and SLO burn rate, and runs the autoscaler control
 * loop, spawning scale-out/scale-in operations on its decisions.
 */
sim::Task<void>
clusterMonitor(const ClusterConfig &config, sim::Simulation &sim,
               std::vector<Node> &nodes, Router &router,
               HealthRegistry &health, BrownoutController *brownout,
               ClusterState &state)
{
    for (;;) {
        co_await sim::delaySec(sim, config.monitorPeriodSeconds);
        if (state.stopped)
            co_return;
        const sim::Tick now = sim.now();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            health.recordQueueDepth(
                i, now,
                static_cast<double>(nodes[i].engine->queueDepth()));
        }
        if (brownout == nullptr && state.autoscaler == nullptr)
            continue;
        double kv_util = 0.0;
        for (const auto &node : nodes) {
            const auto &blocks = node.engine->blockManager();
            if (blocks.totalBlocks() > 0) {
                kv_util = std::max(
                    kv_util,
                    static_cast<double>(blocks.blocksInUse()) /
                        static_cast<double>(blocks.totalBlocks()));
            }
        }
        double burn = 0.0;
        if (config.slo != nullptr) {
            for (auto metric :
                 {telemetry::SloMetric::Ttft, telemetry::SloMetric::Tbt,
                  telemetry::SloMetric::E2e}) {
                burn = std::max(
                    burn, config.slo->windowBurnRate(metric, now));
            }
        }
        if (brownout != nullptr)
            brownout->observe(now, kv_util, burn);
        if (state.autoscaler == nullptr || state.scaleInInFlight)
            continue;
        const ScaleDecision decision = state.autoscaler->evaluate(
            now, state.activeNodes, state.warmingNodes, burn);
        if (decision == ScaleDecision::ScaleOut) {
            const int idx = findStandbyNode(nodes);
            AGENTSIM_ASSERT(idx >= 0,
                            "scale-out past the standby pool");
            state.scaleOps.push_back(scaleOutNode(
                config, sim, nodes, router,
                static_cast<std::size_t>(idx),
                nodeWarmupSeconds(config.autoscaler,
                                  config.engineConfig.model,
                                  config.engineConfig.node),
                state));
        } else if (decision == ScaleDecision::ScaleIn) {
            const int victim = pickScaleInVictim(nodes);
            if (victim >= 0) {
                state.scaleInInFlight = true;
                state.scaleOps.push_back(scaleInNode(
                    config, sim, nodes, router,
                    static_cast<std::size_t>(victim), state));
            }
        }
    }
}

/**
 * Read-only time-series sampler: records cluster vitals (queue
 * depths, running batches, KV pressure, burn rates, outcome counts)
 * and every registry scalar into the windowed store at a fixed
 * cadence. Consumes no RNG and mutates no sim state, so attaching it
 * never changes a run's outcome; it merely adds wake-up events. Not
 * spawned at all when no store is attached — recorder-off runs are
 * bit-identical.
 */
sim::Task<void>
timeseriesSampler(const ClusterConfig &config, sim::Simulation &sim,
                  std::vector<Node> &nodes, ClusterState &state)
{
    telemetry::TimeSeriesStore &ts = *config.timeseries;
    for (;;) {
        co_await sim::delaySec(sim, config.timeseriesPeriodSeconds);
        const sim::Tick now = sim.now();
        double queued = 0.0;
        double running = 0.0;
        double kv_util = 0.0;
        int online = 0;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const serving::LlmEngine &engine = *nodes[i].engine;
            const double depth =
                static_cast<double>(engine.queueDepth());
            queued += depth;
            running += static_cast<double>(engine.runningCount());
            if (engine.online())
                ++online;
            ts.record(sim::strfmt("node%zu_queue_depth", i), now,
                      depth);
            const auto &blocks = engine.blockManager();
            if (blocks.totalBlocks() > 0) {
                kv_util = std::max(
                    kv_util,
                    static_cast<double>(blocks.blocksInUse()) /
                        static_cast<double>(blocks.totalBlocks()));
            }
        }
        ts.record("cluster_queue_depth", now, queued);
        ts.record("cluster_running", now, running);
        ts.record("cluster_kv_util_max", now, kv_util);
        ts.record("cluster_online_nodes", now,
                  static_cast<double>(online));
        ts.record("cluster_completed", now,
                  static_cast<double>(state.result.completed));
        ts.record("cluster_failed", now,
                  static_cast<double>(state.result.failed));
        ts.record("cluster_timed_out", now,
                  static_cast<double>(state.result.timedOut));
        if (config.slo != nullptr) {
            ts.record("slo_burn_ttft", now,
                      config.slo->windowBurnRate(
                          telemetry::SloMetric::Ttft, now));
            ts.record("slo_burn_tbt", now,
                      config.slo->windowBurnRate(
                          telemetry::SloMetric::Tbt, now));
            ts.record("slo_burn_e2e", now,
                      config.slo->windowBurnRate(
                          telemetry::SloMetric::E2e, now));
        }
        if (config.metrics != nullptr)
            ts.sample(*config.metrics, now);
        if (state.stopped)
            co_return;
    }
}

sim::Task<void>
clusterDriver(const ClusterConfig &config, sim::Simulation &sim,
              std::vector<Node> &nodes, Router &router,
              BrownoutController *brownout, sim::FaultInjector *faults,
              sim::MaintenanceSchedule *maintenance,
              ClusterState &state)
{
    sim::Rng arrivals(config.seed, "cluster.arrivals", 0);
    sim::Rng mixer(config.seed, "cluster.mix", 0);
    std::vector<double> weights;
    weights.reserve(config.mix.size());
    for (const auto &spec : config.mix)
        weights.push_back(spec.weight);

    // Diurnal arrivals are a non-homogeneous Poisson process sampled
    // by thinning against the pattern's rate envelope; Constant keeps
    // the classic single-draw path (bit-identical RNG consumption to
    // the pre-autoscaler driver).
    const bool diurnal =
        config.arrival.kind == ArrivalPattern::Kind::Diurnal;
    const double rate_max = config.arrival.maxQps(config.qps);

    std::vector<sim::Task<void>> workers;
    workers.reserve(static_cast<std::size_t>(config.numRequests));
    for (int i = 0; i < config.numRequests; ++i) {
        if (i > 0) {
            if (!diurnal) {
                co_await sim::delaySec(
                    sim, arrivals.exponential(1.0 / config.qps));
            } else {
                for (;;) {
                    co_await sim::delaySec(
                        sim, arrivals.exponential(1.0 / rate_max));
                    const double rate = config.arrival.rateAt(
                        sim::toSeconds(sim.now()), config.qps);
                    if (arrivals.uniform(0.0, 1.0) * rate_max <= rate)
                        break;
                }
            }
        }
        if (state.autoscaler != nullptr)
            state.autoscaler->recordArrival(sim.now());
        const std::size_t which = mixer.categorical(weights);
        const WorkloadSpec &spec = config.mix[which];
        const auto index = static_cast<std::uint64_t>(i);
        if (spec.chatbot) {
            workers.push_back(clusterChatWorker(config, sim, nodes,
                                                router, spec, which,
                                                index, state));
        } else {
            workers.push_back(clusterAgentWorker(
                config, sim, nodes, router, brownout, spec, which,
                index, state));
        }
    }
    co_await sim::allOf(std::move(workers));
    // Workload drained: let the fault/maintenance/monitor drivers exit
    // at their next wake so the event queue can empty.
    state.stopped = true;
    if (faults != nullptr)
        faults->stop();
    if (maintenance != nullptr)
        maintenance->stop();
}

} // namespace

double
ClusterResult::aggregateHitRate() const
{
    double weighted = 0.0;
    int total = 0;
    for (const auto &node : nodes) {
        weighted += node.cacheHitRate * node.requests;
        total += node.requests;
    }
    return total > 0 ? weighted / total : 0.0;
}

void
validateClusterConfig(const ClusterConfig &config)
{
    if (config.numNodes <= 0) {
        AGENTSIM_FATAL("cluster config: numNodes must be >= 1 "
                       "(got %d)", config.numNodes);
    }
    if (config.mix.empty())
        AGENTSIM_FATAL("cluster config: workload mix is empty");
    for (const auto &spec : config.mix) {
        if (!(spec.weight > 0)) {
            AGENTSIM_FATAL("cluster config: workload weight must be "
                           "> 0 (got %g)", spec.weight);
        }
        if (!spec.chatbot &&
            !agents::agentSupports(spec.agent, spec.bench)) {
            AGENTSIM_FATAL("cluster config: unsupported "
                           "agent/benchmark pair in mix");
        }
    }
    if (!(config.qps > 0))
        AGENTSIM_FATAL("cluster config: qps must be > 0");
    if (config.numRequests <= 0)
        AGENTSIM_FATAL("cluster config: numRequests must be >= 1");
    if (config.retry.maxAttempts < 1)
        AGENTSIM_FATAL("cluster config: retry.maxAttempts must be >= 1");
    if (!(config.monitorPeriodSeconds > 0))
        AGENTSIM_FATAL("cluster config: monitor period must be > 0");
    if (!(config.migrationBandwidth > 0))
        AGENTSIM_FATAL("cluster config: migration bandwidth must be "
                       "> 0");
    if (config.chatDeadlineSeconds < 0)
        AGENTSIM_FATAL("cluster config: negative chat deadline");

    const serving::EngineConfig &eng = config.engineConfig;
    if (eng.hostCacheBlocks < 0)
        AGENTSIM_FATAL("kv tiers: negative DRAM tier capacity");
    if (eng.nvmeCacheBlocks < 0)
        AGENTSIM_FATAL("kv tiers: negative NVMe tier capacity");
    if (eng.kvDramAdmitProb < 0 || eng.kvDramAdmitProb > 1) {
        AGENTSIM_FATAL("kv tiers: dram admit probability outside "
                       "[0, 1] (got %g)", eng.kvDramAdmitProb);
    }
    if (eng.kvNvmeAdmitProb < 0 || eng.kvNvmeAdmitProb > 1) {
        AGENTSIM_FATAL("kv tiers: nvme admit probability outside "
                       "[0, 1] (got %g)", eng.kvNvmeAdmitProb);
    }
    if ((eng.hostCacheBlocks > 0 || eng.nvmeCacheBlocks > 0) &&
        !eng.enablePrefixCaching) {
        AGENTSIM_FATAL("kv tiers: spill tiers need prefix caching "
                       "(tier entries are identified by chain hash)");
    }
    if (!(eng.node.hostOffloadBandwidth > 0))
        AGENTSIM_FATAL("kv tiers: host offload bandwidth must be > 0");
    if (!(eng.node.nvmeReadBandwidth > 0))
        AGENTSIM_FATAL("kv tiers: NVMe read bandwidth must be > 0");

    const ArrivalPattern &arr = config.arrival;
    if (arr.kind == ArrivalPattern::Kind::Diurnal) {
        if (!(arr.periodSeconds > 0))
            AGENTSIM_FATAL("arrival pattern: period must be > 0");
        if (!(arr.baseQps > 0) || arr.peakQps < arr.baseQps) {
            AGENTSIM_FATAL("arrival pattern: need 0 < baseQps <= "
                           "peakQps (got %g..%g)",
                           arr.baseQps, arr.peakQps);
        }
        if (arr.burstMultiplier < 1)
            AGENTSIM_FATAL("arrival pattern: burst multiplier < 1");
        if (arr.burstStartFraction < 0 || arr.burstStartFraction >= 1)
            AGENTSIM_FATAL("arrival pattern: burst start fraction "
                           "outside [0, 1)");
        if (arr.burstDurationSeconds < 0 ||
            arr.burstDurationSeconds >
                (1.0 - arr.burstStartFraction) * arr.periodSeconds) {
            AGENTSIM_FATAL("arrival pattern: burst window overruns "
                           "its period");
        }
    }

    const BrownoutConfig &b = config.brownout;
    if (b.enabled) {
        if (b.kvLowWatermark >= b.kvHighWatermark)
            AGENTSIM_FATAL("brownout: KV watermarks inverted "
                           "(low %g >= high %g)",
                           b.kvLowWatermark, b.kvHighWatermark);
        if (b.burnLowThreshold >= b.burnHighThreshold)
            AGENTSIM_FATAL("brownout: burn thresholds inverted");
        if (b.maxLevel < 1 || b.maxLevel > 2)
            AGENTSIM_FATAL("brownout: maxLevel must be 1 or 2");
        if (b.holdSeconds < 0)
            AGENTSIM_FATAL("brownout: negative dwell time");
    }

    const AutoscalerConfig &a = config.autoscaler;
    if (a.enabled) {
        if (a.minNodes < 1) {
            AGENTSIM_FATAL("autoscaler: a 0-node floor cannot serve "
                           "(minNodes %d)", a.minNodes);
        }
        if (a.minNodes > a.maxNodes) {
            AGENTSIM_FATAL("autoscaler: minNodes %d > maxNodes %d",
                           a.minNodes, a.maxNodes);
        }
        if (config.numNodes < a.minNodes ||
            config.numNodes > a.maxNodes) {
            AGENTSIM_FATAL("autoscaler: initial fleet (%d) outside "
                           "[minNodes %d, maxNodes %d]",
                           config.numNodes, a.minNodes, a.maxNodes);
        }
        if (!(a.targetUtilization > 0) || a.targetUtilization > 1)
            AGENTSIM_FATAL("autoscaler: target utilization outside "
                           "(0, 1]");
        if (!(a.queueDelayQuantile > 0) || a.queueDelayQuantile >= 1)
            AGENTSIM_FATAL("autoscaler: queue-delay quantile outside "
                           "(0, 1)");
        if (a.minDelaySamples < 1)
            AGENTSIM_FATAL("autoscaler: minDelaySamples must be >= 1");
        if (a.queueDelayLowSeconds > a.queueDelayHighSeconds)
            AGENTSIM_FATAL("autoscaler: queue-delay thresholds "
                           "inverted");
        if (a.burnLowThreshold > a.burnHighThreshold)
            AGENTSIM_FATAL("autoscaler: burn thresholds inverted");
        if (a.nodeServiceQps < 0)
            AGENTSIM_FATAL("autoscaler: negative node service rate");
        if (a.nodeServiceQps > 0 &&
            a.scaleInUtilization >= a.targetUtilization) {
            AGENTSIM_FATAL("autoscaler: scale-in utilization %g must "
                           "sit below target %g (hysteresis)",
                           a.scaleInUtilization, a.targetUtilization);
        }
        if (a.scaleOutCooldownSeconds < 0 ||
            a.scaleInCooldownSeconds < 0) {
            AGENTSIM_FATAL("autoscaler: negative cooldown");
        }
        if (a.nodeBootSeconds < 0 || a.weightLoadBandwidth < 0)
            AGENTSIM_FATAL("autoscaler: negative warm-up parameter");
        if (a.drainDeadlineSeconds < 0)
            AGENTSIM_FATAL("autoscaler: negative drain deadline");
        if (!(a.admissionDeadlineFraction > 0) ||
            a.admissionDeadlineFraction > 1) {
            AGENTSIM_FATAL("autoscaler: admission deadline fraction "
                           "outside (0, 1]");
        }
        if (a.admissionMaxDelaySeconds < 0)
            AGENTSIM_FATAL("autoscaler: negative admission delay cap");
        if (!(a.arrivalTauSeconds > 0))
            AGENTSIM_FATAL("autoscaler: arrival EWMA tau must be > 0");
    }
    if (config.checkpoint.enabled) {
        const auto &ck = config.checkpoint;
        if (ck.everyIterations < 1)
            AGENTSIM_FATAL("checkpoint: everyIterations must be >= 1");
        if (ck.minIterations < 1)
            AGENTSIM_FATAL("checkpoint: minIterations must be >= 1");
        if (ck.admitProb < 0 || ck.admitProb > 1)
            AGENTSIM_FATAL("checkpoint: admitProb outside [0, 1]");
        if (!(ck.wireBandwidth > 0))
            AGENTSIM_FATAL("checkpoint: wire bandwidth must be > 0");
        if (ck.journalBytes < 0)
            AGENTSIM_FATAL("checkpoint: negative journal overhead");
    }
}

ClusterResult
runCluster(const ClusterConfig &config)
{
    validateClusterConfig(config);

    const bool autoscaled = config.autoscaler.enabled;
    const int total_nodes =
        autoscaled ? config.autoscaler.maxNodes : config.numNodes;

    sim::Simulation sim;
    std::vector<Node> nodes;
    nodes.reserve(static_cast<std::size_t>(total_nodes));
    for (int i = 0; i < total_nodes; ++i) {
        Node node;
        auto engine_cfg = config.engineConfig;
        engine_cfg.seed =
            sim::hashCombine(config.seed,
                             static_cast<std::uint64_t>(i));
        node.engine =
            std::make_unique<serving::LlmEngine>(sim, engine_cfg);
        if (config.traceSink != nullptr)
            node.engine->attachTrace(config.traceSink);
        if (config.slo != nullptr)
            node.engine->attachSlo(config.slo);
        if (config.spans != nullptr)
            node.engine->attachSpans(config.spans);
        for (int b = 0; b <= static_cast<int>(
                                 workload::Benchmark::HumanEval);
             ++b) {
            node.toolsByBenchmark.push_back(workload::makeToolSet(
                static_cast<workload::Benchmark>(b), sim,
                *node.engine, config.seed));
        }
        nodes.push_back(std::move(node));
    }
    // Autoscaled runs pre-build the whole [0, maxNodes) pool and park
    // the surplus in standby (offline, empty, unbilled); the initial
    // numNodes serve — and are billed — from t = 0.
    for (int i = config.numNodes; i < total_nodes; ++i)
        nodes[static_cast<std::size_t>(i)].engine->standby();
    for (int i = 0; i < config.numNodes; ++i) {
        nodes[static_cast<std::size_t>(i)].provisioned = true;
        nodes[static_cast<std::size_t>(i)].provisionedSince = 0;
    }

    // Health + breakers are always wired (with no failures every
    // breaker stays Closed and routing degenerates to the pure
    // availability-based behaviour); brownout is opt-in.
    HealthRegistry health(config.health, nodes.size());
    if (config.traceSink != nullptr)
        health.attachTrace(config.traceSink);
    std::optional<BrownoutController> brownout;
    if (config.brownout.enabled) {
        brownout.emplace(config.brownout);
        if (config.traceSink != nullptr)
            brownout->attachTrace(config.traceSink);
    }

    ClusterState state;
    state.result.perWorkloadSeconds.resize(config.mix.size());
    state.activeNodes = config.numNodes;
    state.result.peakActiveNodes = config.numNodes;
    Router router{config.policy, nodes, health, 0};

    // Episode checkpoint store: only constructed when enabled, so a
    // disabled run touches no new state (bit-identity with the
    // pre-checkpoint builds).
    std::optional<serving::CheckpointStore> checkpoints;
    if (config.checkpoint.enabled) {
        checkpoints.emplace(config.checkpoint, config.seed);
        state.checkpoints = &*checkpoints;
    }

    std::optional<AutoscalerController> autoscaler;
    std::optional<AdmissionController> admission;
    if (autoscaled) {
        autoscaler.emplace(config.autoscaler);
        if (config.traceSink != nullptr)
            autoscaler->attachTrace(config.traceSink);
        state.autoscaler = &*autoscaler;
        if (config.autoscaler.admissionControl) {
            admission.emplace(config.autoscaler);
            state.admission = &*admission;
        }
    }

    // Flight-recorder wiring: tee trace events and span completions
    // into the retroactive rings and arm every anomaly trigger. The
    // sink/collector attach calls run even with a null recorder so a
    // session reused across sweep points detaches cleanly when this
    // run records nothing.
    if (config.traceSink != nullptr)
        config.traceSink->attachRecorder(config.recorder);
    if (config.spans != nullptr)
        config.spans->attachRecorder(config.recorder);
    if (config.slo != nullptr)
        config.slo->attachRecorder(config.recorder);
    if (config.recorder != nullptr) {
        config.recorder->attachTimeSeries(config.timeseries);
        health.attachRecorder(config.recorder);
        if (brownout)
            brownout->attachRecorder(config.recorder);
        if (autoscaler)
            autoscaler->attachRecorder(config.recorder);
        state.recorder = config.recorder;
    }

    // Chaos wiring: node-level faults drive the engines through the
    // injector's hooks; tool-level faults are sampled inside each
    // tool from its own deterministic stream. The hooks are guarded
    // against colliding with a concurrent maintenance drain: a
    // draining engine is not crashed again, and a node someone else
    // already restarted is left alone.
    std::optional<sim::FaultInjector> faults;
    if (config.faults.nodeFaultsEnabled()) {
        faults.emplace(sim, config.faults);
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            serving::LlmEngine *engine = nodes[i].engine.get();
            faults->attachNode(
                i, sim::FaultInjector::NodeHooks{
                       [engine] {
                           if (engine->online())
                               engine->crash();
                       },
                       [engine] {
                           if (!engine->online())
                               engine->restart();
                       },
                       [engine](double s) { engine->injectStall(s); },
                   });
        }
    }
    if (config.faults.toolFaultsEnabled()) {
        tools::FaultProfile profile;
        profile.failureProb = config.faults.toolFailureProb;
        profile.failureSeconds = config.faults.toolFailureSeconds;
        profile.slowdownProb = config.faults.toolSlowdownProb;
        profile.slowdownFactor = config.faults.toolSlowdownFactor;
        profile.seed = config.faults.seed;
        for (auto &node : nodes) {
            for (auto &set : node.toolsByBenchmark) {
                for (std::size_t t = 0; t < set->size(); ++t)
                    set->at(t).setFaults(profile);
            }
        }
    }

    // Planned churn: the maintenance schedule takes nodes out of
    // service round-robin, through crash or (migrating) drain.
    std::optional<sim::MaintenanceSchedule> maintenance;
    if (config.maintenance.enabled()) {
        maintenance.emplace(
            sim, config.maintenance, nodes.size(),
            [&config, &sim, &nodes, &router](std::size_t index) {
                return maintainNode(config, sim, nodes, router, index);
            });
    }

    std::optional<sim::Task<void>> monitor;
    if (config.brownout.enabled || config.maintenance.enabled() ||
        autoscaled) {
        monitor.emplace(clusterMonitor(config, sim, nodes, router,
                                       health,
                                       brownout ? &*brownout : nullptr,
                                       state));
    }
    std::optional<sim::Task<void>> sampler;
    if (config.timeseries != nullptr)
        sampler.emplace(timeseriesSampler(config, sim, nodes, state));

    auto drive = clusterDriver(config, sim, nodes, router,
                               brownout ? &*brownout : nullptr,
                               faults ? &*faults : nullptr,
                               maintenance ? &*maintenance : nullptr,
                               state);
    sim.run();
    AGENTSIM_ASSERT(drive.done(), "cluster driver did not finish");
    AGENTSIM_ASSERT(state.result.completed + state.result.failed ==
                        config.numRequests,
                    "cluster lost requests");

    ClusterResult out = std::move(state.result);
    out.makespanSeconds = sim::toSeconds(
        state.lastFinish - std::max<sim::Tick>(0, state.firstSubmit));
    if (faults)
        out.faultStats = faults->stats();
    if (maintenance)
        out.maintenanceStats = maintenance->stats();
    out.breakerOpens = health.opens();
    out.breakerCloses = health.closes();
    out.failOpenPicks = health.failOpenPicks();
    if (brownout) {
        out.brownoutEscalations = brownout->escalations();
        out.brownoutRestorations = brownout->restorations();
        out.brownoutDegradedRollouts = brownout->degradedRollouts();
        out.brownoutMaxLevel = brownout->maxLevelReached();
    }
    // Settle the capacity bill for nodes still provisioned at the
    // end (static fleets: every node, for the whole run).
    const sim::Tick sim_end = sim.now();
    for (auto &node : nodes) {
        if (node.provisioned) {
            node.provisionedSeconds +=
                sim::toSeconds(sim_end - node.provisionedSince);
            node.provisioned = false;
        }
        out.provisionedNodeSeconds += node.provisionedSeconds;
    }
    out.provisionedGpuSeconds =
        out.provisionedNodeSeconds * config.engineConfig.node.numGpus;
    if (autoscaler) {
        out.scaleOuts = autoscaler->scaleOuts();
        out.scaleIns = autoscaler->scaleIns();
    }
    if (config.recorder != nullptr)
        out.incidentBundles = config.recorder->incidentsDumped();
    if (checkpoints) {
        // Merge store-side accounting (snapshots/bytes/write time)
        // into the worker-accumulated resume/recovered/lost figures.
        const auto &cs = checkpoints->stats();
        out.recovery.checkpointsTaken = cs.checkpointsTaken;
        out.recovery.bytesWritten = cs.bytesWritten;
        out.recovery.snapshotSeconds = cs.snapshotSeconds;
    }
    for (const auto &node : nodes) {
        // Every cancelled/crashed/finished request must have returned
        // its blocks; chaos runs exercise this hard.
        node.engine->blockManager().checkInvariants();
    }
    for (const auto &node : nodes) {
        NodeResult nr;
        nr.requests = node.assigned;
        nr.cacheHitRate = node.engine->cacheStats().hitRate();
        nr.engineStats = node.engine->stats();
        out.drains += nr.engineStats.drains;
        out.migratedRequests += nr.engineStats.requestsMigratedOut;
        out.migrationFallbacks += nr.engineStats.migrationFallbacks;
        out.migrationSeconds += nr.engineStats.migrationSeconds;
        out.lostPrefillSeconds += nr.engineStats.lostPrefillSeconds;
        out.nodes.push_back(nr);
    }
    if (config.metrics != nullptr) {
        serving::EngineStats sum;
        for (const auto &nr : out.nodes) {
            sum.requestsCancelled += nr.engineStats.requestsCancelled;
            sum.requestsTimedOut += nr.engineStats.requestsTimedOut;
            sum.requestsShed += nr.engineStats.requestsShed;
            sum.crashes += nr.engineStats.crashes;
        }
        auto set = [&](const char *name, const char *help, double v) {
            config.metrics->counter(name, help).set(v);
        };
        set("agentsim_client_retries_total",
            "Client retry attempts across all requests", out.retries);
        // Per-cause splits (the registry has no label dimension, so
        // causes are family suffixes; see sanitizeMetricLabel).
        set("agentsim_client_retries_crash_total",
            "Retries caused by node failure or offline routing",
            out.retriesCrash);
        set("agentsim_client_retries_shed_total",
            "Retries caused by engine admission shedding",
            out.retriesShed);
        set("agentsim_client_retries_admission_total",
            "Retries caused by predictive admission reject-fast",
            out.retriesAdmission);
        set("agentsim_client_failovers_total",
            "Retries rerouted to a different node", out.failovers);
        set("agentsim_client_failovers_offline_total",
            "Failovers off a crashed or draining node",
            out.failoversOffline);
        set("agentsim_client_failovers_breaker_total",
            "Failovers off a breaker-open node",
            out.failoversBreaker);
        set("agentsim_client_failovers_rebalance_total",
            "Failovers to a less-loaded peer (previous node healthy)",
            out.failoversRebalance);
        set("agentsim_cluster_requests_cancelled_total",
            "Requests cancelled across all nodes",
            static_cast<double>(sum.requestsCancelled));
        set("agentsim_cluster_requests_timed_out_total",
            "Requests that missed their deadline across all nodes",
            static_cast<double>(sum.requestsTimedOut));
        set("agentsim_cluster_requests_shed_total",
            "Requests shed by admission control across all nodes",
            static_cast<double>(sum.requestsShed));
        set("agentsim_cluster_node_crashes_total",
            "Injected node crashes across the cluster",
            static_cast<double>(sum.crashes));
        set("agentsim_resilience_drains_total",
            "Graceful node drains across the cluster",
            static_cast<double>(out.drains));
        set("agentsim_resilience_migrations_total",
            "Requests live-migrated between nodes",
            static_cast<double>(out.migratedRequests));
        set("agentsim_resilience_migration_fallbacks_total",
            "Migrations that landed cold (target lacked free blocks)",
            static_cast<double>(out.migrationFallbacks));
        set("agentsim_resilience_migration_seconds_total",
            "Interconnect+PCIe seconds spent moving KV between nodes",
            out.migrationSeconds);
        set("agentsim_resilience_lost_prefill_seconds_total",
            "Prefill GPU-s thrown away by crash-cancelled requests",
            out.lostPrefillSeconds);
        set("agentsim_recovery_lost_gpu_seconds_total",
            "Episode GPU-seconds recomputed by retries (work since "
            "the last checkpoint; everything when checkpointing is "
            "off)",
            out.recovery.lostGpuSeconds);
        if (config.checkpoint.enabled) {
            set("agentsim_recovery_checkpoints_total",
                "Episode snapshots journaled",
                static_cast<double>(out.recovery.checkpointsTaken));
            set("agentsim_recovery_snapshot_bytes_total",
                "Bytes written into the checkpoint store "
                "(delta-journaled)",
                static_cast<double>(out.recovery.bytesWritten));
            set("agentsim_recovery_snapshot_seconds_total",
                "Background wire-seconds spent writing snapshots",
                out.recovery.snapshotSeconds);
            set("agentsim_recovery_resumes_total",
                "Retries that resumed from a checkpoint",
                static_cast<double>(out.recovery.resumes));
            set("agentsim_recovery_kv_restores_total",
                "Resumes that warmed prefix KV over the wire",
                static_cast<double>(out.recovery.kvRestores));
            set("agentsim_recovery_cold_fallbacks_total",
                "Resumes that recomputed the prefix cold",
                static_cast<double>(out.recovery.coldFallbacks));
            set("agentsim_recovery_restore_seconds_total",
                "Wire-seconds spent restoring prefix KV on resume",
                out.recovery.restoreSeconds);
            set("agentsim_recovery_recovered_gpu_seconds_total",
                "Episode GPU-seconds checkpoint-resume did not "
                "recompute",
                out.recovery.recoveredGpuSeconds);
            set("agentsim_recovery_recovered_crash_gpu_seconds_total",
                "Recovered GPU-seconds attributed to node crashes",
                out.recovery.recoveredCrashGpuSeconds);
            set("agentsim_recovery_recovered_shed_gpu_seconds_total",
                "Recovered GPU-seconds attributed to load shedding",
                out.recovery.recoveredShedGpuSeconds);
        }
        health.exportMetrics(*config.metrics, sim.now());
        if (brownout)
            brownout->exportMetrics(*config.metrics, sim.now());
        if (config.recorder != nullptr)
            config.recorder->exportMetrics(*config.metrics);
        if (config.slo != nullptr)
            config.slo->exportMetrics(*config.metrics, sim.now());
        if (config.spans != nullptr && !config.spans->empty()) {
            exportBlameMetrics(*config.spans, *config.metrics,
                               sim.now());
            if (config.traceSink != nullptr)
                emitSpanExemplars(*config.spans, *config.traceSink);
        }
        if (config.traceSink != nullptr) {
            config.metrics
                ->gauge("agentsim_trace_dropped_events",
                        "Trace events dropped by the sink's memory "
                        "cap")
                .set(sim.now(), static_cast<double>(
                                    config.traceSink->droppedEvents()));
        }
        if (autoscaler) {
            autoscaler->exportMetrics(*config.metrics, sim.now());
            set("agentsim_autoscale_admission_rejects_total",
                "Attempts reject-fast'd by predictive admission "
                "control",
                static_cast<double>(out.admissionRejects));
            set("agentsim_autoscale_provisioned_node_seconds_total",
                "Node-seconds provisioned (busy or idle, warm-up "
                "included)",
                out.provisionedNodeSeconds);
            set("agentsim_autoscale_provisioned_gpu_seconds_total",
                "GPU-seconds provisioned (node-seconds x GPUs per "
                "node)",
                out.provisionedGpuSeconds);
            set("agentsim_autoscale_warmup_seconds_total",
                "Warm-up seconds charged to scaled-out nodes",
                out.warmupSecondsTotal);
            config.metrics
                ->gauge("agentsim_autoscale_active_nodes",
                        "Nodes currently serving traffic")
                .set(sim.now(), state.activeNodes);
        }
    }
    out.sloAlerts =
        config.slo != nullptr ? config.slo->alertsFired() : 0;
    return out;
}

} // namespace agentsim::core
